package pka

import (
	"errors"
	"testing"
)

func TestPublicAPIPipeline(t *testing.T) {
	w := FindWorkload("Rodinia/gauss_208")
	if w == nil {
		t.Fatal("study workload missing")
	}
	cfg := Config{Device: VoltaV100()}
	ev, err := Evaluate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Selection.K < 1 || ev.PKA.SimWarpInstrs <= 0 {
		t.Errorf("degenerate evaluation: %+v", ev.Selection)
	}
	if ev.Selection.SelectionErrorPct > 5 {
		t.Errorf("selection error %.2f%% over target", ev.Selection.SelectionErrorPct)
	}
}

func TestPublicAPICustomWorkload(t *testing.T) {
	// A downstream user's own application: two alternating kernels.
	kernels := []KernelDesc{}
	for i := 0; i < 40; i++ {
		k := KernelDesc{
			Name:  "stage_a",
			Grid:  D1(320),
			Block: D1(256),
			Mix:   InstrMix{Compute: 80, GlobalLoads: 4},

			CoalescingFactor: 4,
			WorkingSetBytes:  4 << 20,
			StridedFraction:  0.9,
			DivergenceEff:    1,
			Seed:             uint64(i + 1),
		}
		if i%2 == 1 {
			k.Name = "stage_b"
			k.Mix = InstrMix{Compute: 10, GlobalLoads: 30}
			k.WorkingSetBytes = 256 << 20
			k.StridedFraction = 0.3
		}
		kernels = append(kernels, k)
	}
	w := &Workload{
		Suite: "user", Name: "custom", N: len(kernels),
		Gen: func(i int) KernelDesc { return kernels[i] },
	}
	sel, err := Select(VoltaV100(), w, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 2 {
		t.Errorf("K = %d, want 2 for two alternating kernel shapes", sel.K)
	}
	cg, err := ProjectOnDevice(TuringRTX2060(), w, sel)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Truth <= 0 || cg.Projected <= 0 {
		t.Error("cross-generation projection degenerate")
	}
}

func TestPublicAPISimulatorAndProjector(t *testing.T) {
	k := KernelDesc{
		Name: "probe", Grid: D1(3200), Block: D1(256),
		Mix:              InstrMix{Compute: 100, GlobalLoads: 4},
		CoalescingFactor: 4, WorkingSetBytes: 1 << 20, StridedFraction: 0.9,
		DivergenceEff: 1, Seed: 7,
	}
	p := NewProjector(ProjectorOptions{})
	res, err := NewSimulator(VoltaV100()).RunKernel(&k, SimOptions{Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stable() {
		t.Skip("kernel did not stabilize; acceptable for the API smoke test")
	}
	proj := p.Projection(res)
	if proj.Cycles < res.Cycles {
		t.Error("projection shrank the kernel")
	}
	sil, err := ExecuteSilicon(VoltaV100(), &k)
	if err != nil {
		t.Fatal(err)
	}
	if sil.Cycles <= 0 {
		t.Error("silicon returned no cycles")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	w := FindWorkload("Rodinia/gauss_mat4")
	if _, err := FullSim(VoltaV100(), w, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := FirstN(VoltaV100(), w, 100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := TBPointSelect(VoltaV100(), w); err != nil {
		t.Fatal(err)
	}
	huge := FindWorkload("MLPerf/ssd_training")
	if _, err := FullSim(VoltaV100(), huge, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestStudySurface(t *testing.T) {
	s := NewStudy()
	ws := AllWorkloads()
	if len(ws) != 147 {
		t.Fatalf("workload count = %d", len(ws))
	}
	s.SetWorkloads(ws[:3])
	tab, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("Table 3 empty")
	}
	if WorkloadsBySuite("MLPerf") == nil || FindWorkload("nope/nope") != nil {
		t.Error("lookup helpers misbehave")
	}
}
