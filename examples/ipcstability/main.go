// IPC stability: visualize the observation Principal Kernel Projection is
// built on (paper Section 3.2 / Figure 5) — the instantaneous IPC of GPU
// kernels, even irregular ones, stabilizes around its final average. The
// example traces two kernels, draws their IPC/L2/DRAM series as ASCII
// charts, and marks where PKP would stop at each threshold.
//
//	go run ./examples/ipcstability
package main

import (
	"fmt"
	"log"

	"pka"
	"pka/internal/report"
)

func main() {
	dev := pka.VoltaV100()
	for _, spec := range []struct {
		label, wname string
		kernelID     int
	}{
		{"regular: atax matvec", "Polybench/atax", 0},
		{"irregular: bfs frontier", "Rodinia/bfs65536", 8},
	} {
		w := pka.FindWorkload(spec.wname)
		if w == nil {
			log.Fatalf("missing %s", spec.wname)
		}
		k := w.Kernel(spec.kernelID)
		full, err := pka.NewSimulator(dev).RunKernel(&k, pka.SimOptions{TraceEvery: 250})
		if err != nil {
			log.Fatal(err)
		}

		chart := &pka.Chart{
			Title:  spec.label,
			YLabel: "normalized IPC / rates",
		}
		var ipc, l2, dram []float64
		peak := 1.0
		for _, s := range full.Trace {
			if s.IPC > peak {
				peak = s.IPC
			}
		}
		for _, s := range full.Trace {
			ipc = append(ipc, s.IPC/peak)
			l2 = append(l2, s.L2Miss)
			dram = append(dram, s.DRAMUtil)
		}
		chart.Series = []report.Series{
			{Name: "IPC / peak", Values: ipc},
			{Name: "L2 miss rate", Values: l2},
			{Name: "DRAM utilization", Values: dram},
		}
		fmt.Println(chart)

		fmt.Printf("full kernel: %d cycles, %d/%d blocks\n", full.Cycles, full.BlocksCompleted, full.BlocksTotal)
		for _, s := range []float64{2.5, 0.25, 0.025} {
			p := pka.NewProjector(pka.ProjectorOptions{Threshold: s})
			res, err := pka.NewSimulator(dev).RunKernel(&k, pka.SimOptions{Controller: p})
			if err != nil {
				log.Fatal(err)
			}
			proj := p.Projection(res)
			errPct := 100 * abs(float64(proj.Cycles)-float64(full.Cycles)) / float64(full.Cycles)
			fmt.Printf("  s=%-6g stop@%-8d cycles  projection %-8d  error %5.1f%%  speedup %.1fx\n",
				s, res.Cycles, proj.Cycles, errPct, float64(full.Cycles)/float64(res.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("smaller s waits longer for confidence: more cycles, less error — the paper's tunable tradeoff.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
