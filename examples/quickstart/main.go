// Quickstart: run the complete Principal Kernel Analysis pipeline on one
// study workload and on a custom user-defined workload, entirely through
// the public pka API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pka"
)

func main() {
	// --- Part 1: a study workload. gaussian elimination launches 414
	// near-identical kernels; PKS collapses them into one group.
	w := pka.FindWorkload("Rodinia/gauss_208")
	if w == nil {
		log.Fatal("study workload missing")
	}
	cfg := pka.Config{Device: pka.VoltaV100()}
	ev, err := pka.Evaluate(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d kernels -> %d group(s)\n", w.FullName(), w.N, ev.Selection.K)
	fmt.Printf("  selection error (silicon)  %.2f%%\n", ev.Selection.SelectionErrorPct)
	fmt.Printf("  silicon speedup            %.0fx\n", ev.Selection.SiliconSpeedup)
	if ev.Full != nil {
		fmt.Printf("  full simulation error      %.1f%% vs silicon\n", ev.FullErrorPct)
	}
	fmt.Printf("  PKA simulation error       %.1f%% vs silicon\n", ev.PKA.ErrorPct)
	fmt.Printf("  PKA simulated-work cut     %.0fx\n\n", ev.PKA.SpeedupVsFull)

	// --- Part 2: your own application. Describe each kernel launch (grid,
	// block, instruction mix, memory behaviour) and PKA does the rest.
	myApp := &pka.Workload{
		Suite: "example",
		Name:  "alternating-pipeline",
		N:     60,
		Gen: func(i int) pka.KernelDesc {
			if i%3 == 2 { // every third launch is a bandwidth-bound reduce
				return pka.KernelDesc{
					Name: "reduce_pass", Grid: pka.D1(512), Block: pka.D1(256),
					Mix:              pka.InstrMix{Compute: 12, GlobalLoads: 24, GlobalStores: 1},
					CoalescingFactor: 4, WorkingSetBytes: 512 << 20,
					StridedFraction: 0.4, DivergenceEff: 1, Seed: uint64(i),
				}
			}
			return pka.KernelDesc{
				Name: "map_pass", Grid: pka.D1(640), Block: pka.D1(256),
				Mix:              pka.InstrMix{Compute: 150, GlobalLoads: 4, GlobalStores: 1},
				CoalescingFactor: 4, WorkingSetBytes: 8 << 20,
				StridedFraction: 0.95, DivergenceEff: 1, Seed: uint64(i),
			}
		},
	}
	sel, err := pka.Select(pka.VoltaV100(), myApp, pka.SelectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d kernels -> %d group(s), error %.2f%%\n",
		myApp.FullName(), myApp.N, sel.K, sel.SelectionErrorPct)
	for gi, g := range sel.Groups {
		fmt.Printf("  group %d: rep kernel %d (%s), population %d\n",
			gi, g.RepIndex, g.Representative.Name, g.Count())
	}

	// Reuse the selection across GPU generations, as the paper validates.
	cg, err := pka.ProjectOnDevice(pka.TuringRTX2060(), myApp, sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Volta-selected kernels on Turing: error %.2f%%, speedup %.0fx\n",
		cg.ErrorPct(), cg.Speedup())
}
