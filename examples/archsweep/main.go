// Archsweep: the relative-accuracy case study architects care about
// (paper Section 5.3 / Figure 10). Halve the V100's SMs MPS-style and ask
// whether PKA predicts the same speedup ranking silicon does — without
// full simulation.
//
//	go run ./examples/archsweep
package main

import (
	"fmt"
	"log"

	"pka"
)

func main() {
	full := pka.VoltaV100()
	half := full.WithSMs(40)

	workloads := []string{
		"Rodinia/srad_v1",  // compute-lean stencil
		"Parboil/histo",    // atomic-heavy
		"Polybench/gemm",   // dense compute
		"Rodinia/bfs65536", // irregular graph
		"Cutlass/256x256x256_sgemm",
	}
	fmt.Printf("%-30s %10s %10s %10s\n", "workload", "silicon", "PKA", "delta")
	var maeSum float64
	var n int
	for _, name := range workloads {
		w := pka.FindWorkload(name)
		if w == nil {
			log.Fatalf("missing workload %s", name)
		}
		// Silicon: the ground truth speedup of 80 SMs over 40.
		silFull, err := appSilicon(full, w)
		if err != nil {
			log.Fatal(err)
		}
		silHalf, err := appSilicon(half, w)
		if err != nil {
			log.Fatal(err)
		}
		silSpeed := silHalf / silFull

		// PKA: selection on the full device, sampled simulation on both.
		sel, err := pka.Select(full, w, pka.SelectOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pkaFull, err := pka.RunSampled(pka.Config{Device: full}, w, sel, true)
		if err != nil {
			log.Fatal(err)
		}
		pkaHalf, err := pka.RunSampled(pka.Config{Device: half}, w, sel, true)
		if err != nil {
			log.Fatal(err)
		}
		pkaSpeed := float64(pkaHalf.ProjCycles) / float64(pkaFull.ProjCycles)

		delta := 100 * (pkaSpeed - silSpeed) / silSpeed
		if delta < 0 {
			delta = -delta
		}
		maeSum += delta
		n++
		fmt.Printf("%-30s %9.2fx %9.2fx %9.1f%%\n", name, silSpeed, pkaSpeed, delta)
	}
	fmt.Printf("\nmean absolute speedup error vs silicon: %.1f%% (paper Figure 10: PKA 10.1%%)\n", maeSum/float64(n))
	fmt.Println("bandwidth-bound workloads should show ~1x; compute-bound ones approach 2x")
}

// appSilicon returns the workload's total silicon kernel seconds.
func appSilicon(dev pka.Device, w *pka.Workload) (float64, error) {
	var sec float64
	next := w.Iterator()
	for k := next(); k != nil; k = next() {
		r, err := pka.ExecuteSilicon(dev, k)
		if err != nil {
			return 0, err
		}
		sec += r.TimeSeconds
	}
	return sec, nil
}
