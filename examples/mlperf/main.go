// MLPerf: the paper's headline scenario — workloads with hundreds of
// thousands of kernel launches whose detailed profiling would take longer
// than a week, forcing two-level profiling: detailed metrics for a prefix,
// name+dims for the rest, and an SGD/NaiveBayes/MLP ensemble mapping the
// lightly-profiled kernels onto the detailed groups.
//
//	go run ./examples/mlperf
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pka"
)

func main() {
	dev := pka.VoltaV100()
	for _, name := range []string{
		"MLPerf/resnet50_64b_inf", // fully profileable, like the paper
		"MLPerf/ssd_training",     // the launch-count monster: two-level
	} {
		w := pka.FindWorkload(name)
		if w == nil {
			log.Fatalf("workload %s missing", name)
		}
		fmt.Printf("%s: %d kernel launches\n", w.FullName(), w.N)

		t0 := time.Now()
		sel, err := pka.Select(dev, w, pka.SelectOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  selection wall time        %v\n", time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  two-level profiling        %v (%d of %d kernels detailed)\n",
			sel.TwoLevel, sel.DetailedKernels, sel.TotalKernels)
		if sel.TwoLevel {
			fmt.Printf("  classifier accuracy        %.3f (SGD+GNB+MLP ensemble)\n", sel.ClassifierAccuracy)
		}
		fmt.Printf("  modeled profiling cost     %.1f days\n", sel.ProfilingSeconds/86400)
		fmt.Printf("  groups (K)                 %d\n", sel.K)
		fmt.Printf("  selection error            %.1f%% vs silicon\n", sel.SelectionErrorPct)
		fmt.Printf("  silicon speedup            %.0fx\n", sel.SiliconSpeedup)

		// Per-group composition, Figure-4 style.
		type gc struct {
			rep   string
			count int
		}
		var gcs []gc
		for _, g := range sel.Groups {
			gcs = append(gcs, gc{g.Representative.Name, g.Count()})
		}
		sort.Slice(gcs, func(i, j int) bool { return gcs[i].count > gcs[j].count })
		for i, g := range gcs {
			if i == 5 {
				fmt.Printf("    ... and %d more groups\n", len(gcs)-5)
				break
			}
			fmt.Printf("    group rep %-28s population %d\n", g.rep, g.count)
		}

		// PKA: simulate only the representatives, stopping each at IPC
		// stability, and project the whole application.
		cfg := pka.Config{Device: dev}
		pkaSim, err := pka.RunSampled(cfg, w, sel, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  PKA simulated work         %d warp-instructions (projected sim time %s at the modeled Accel-Sim rate)\n",
			pkaSim.SimWarpInstrs, fmtHours(pkaSim.SimHours))
		fmt.Printf("  PKA projected cycles       %d\n\n", pkaSim.ProjCycles)
	}
}

func fmtHours(h float64) string {
	if h < 1 {
		return fmt.Sprintf("%.0f min", h*60)
	}
	return fmt.Sprintf("%.1f h", h)
}
