// Baselines: the paper's Section 5.1 comparison in miniature — full
// simulation, the first-N-instructions heuristic, TBPoint, and PKA on one
// workload, reporting each method's simulated work and application-cycle
// error against silicon.
//
//	go run ./examples/baselines [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"pka"
)

func main() {
	name := "Polybench/fdtd2d"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w := pka.FindWorkload(name)
	if w == nil {
		log.Fatalf("unknown workload %q (see cmd/pka -list)", name)
	}
	dev := pka.VoltaV100()
	fmt.Printf("%s: %d kernels on %s\n\n", w.FullName(), w.N, dev.Name)

	// Ground truth.
	var silCycles int64
	next := w.Iterator()
	for k := next(); k != nil; k = next() {
		r, err := pka.ExecuteSilicon(dev, k)
		if err != nil {
			log.Fatal(err)
		}
		silCycles += r.Cycles + 2500 // launch overhead, as the models charge it
	}

	errPct := func(proj int64) float64 {
		d := float64(proj-silCycles) / float64(silCycles) * 100
		if d < 0 {
			d = -d
		}
		return d
	}
	fmt.Printf("%-22s %16s %14s %10s\n", "method", "simulated warpinstr", "proj cycles", "err vs sil")

	full, err := pka.FullSim(dev, w, 0)
	if err != nil {
		log.Fatalf("full simulation: %v", err)
	}
	fmt.Printf("%-22s %16d %14d %9.1f%%\n", "full simulation", full.SimWarpInstrs, full.ProjCycles, errPct(full.ProjCycles))

	oneB, err := pka.FirstN(dev, w, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %16d %14d %9.1f%%\n", "first-N instructions", oneB.SimWarpInstrs, oneB.ProjCycles, errPct(oneB.ProjCycles))

	sel, err := pka.Select(dev, w, pka.SelectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := pka.Config{Device: dev}
	pksSim, err := pka.RunSampled(cfg, w, sel, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %16d %14d %9.1f%%\n", "PKS", pksSim.SimWarpInstrs, pksSim.ProjCycles, errPct(pksSim.ProjCycles))

	pkaSim, err := pka.RunSampled(cfg, w, sel, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %16d %14d %9.1f%%\n", "PKA (PKS+PKP)", pkaSim.SimWarpInstrs, pkaSim.ProjCycles, errPct(pkaSim.ProjCycles))

	fmt.Printf("\nPKA reduced simulated work %.0fx vs full simulation (K=%d groups of %d kernels)\n",
		float64(full.SimWarpInstrs)/float64(pkaSim.SimWarpInstrs), sel.K, w.N)
	fmt.Println("TBPoint comparison: see `go test -bench=BenchmarkFigure7 -benchtime=1x .`")
}
