module pka

go 1.22
