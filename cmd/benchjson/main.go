// Command benchjson converts `go test -bench` output on stdin into a JSON
// snapshot so the repository can track its performance trajectory in a
// diffable artifact (`make bench` writes BENCH_study.json with it). It
// keeps every reported measurement: ns/op, B/op, allocs/op, and custom
// b.ReportMetric units (Mwi/s, warp-instr/cycle, speedup "x", ...).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_study.json
//
// It can also gate on a committed snapshot: with -baseline and -check it
// compares the named benchmarks' ns/op against the baseline file and exits
// nonzero when any regresses by more than -tolerance percent, so CI can
// catch performance regressions with one short bench run:
//
//	go test -bench 'SimulatorThroughput|KMeansSweep' . | \
//	  benchjson -baseline BENCH_study.json -check SimulatorThroughput,KMeansSweep
//
// -check-ratio gates on relative speed between two benchmarks of the
// current run (no baseline needed): each spec NUM:DEN:MIN[:MINCPU]
// requires ns/op(NUM) / ns/op(DEN) >= MIN, i.e. DEN is at least MIN times
// faster than NUM. Specs with a MINCPU are skipped on machines with fewer
// CPUs — scaling ratios are meaningless on a single-core runner:
//
//	go test -bench StudyParallel . | benchjson \
//	  -check-ratio 'StudyParallel/p=1:StudyParallel/p=4:1.5:4'
//
// -check-max-ratio is the mirror image: NUM:DEN:MAX[:MINCPU] requires
// ns/op(NUM) / ns/op(DEN) <= MAX, i.e. NUM may be at most MAX times
// slower than DEN. It bounds overhead rather than demanding speedup —
// e.g. the serving tier must not cost more than a small multiple of the
// batch path it wraps:
//
//	go test -bench Serve . | benchjson \
//	  -check-max-ratio 'Serve/served:Serve/direct:3'
//
// -check-metric-ratio gates on a custom b.ReportMetric unit instead of
// ns/op: METRIC:NUM:DEN:MIN[:MINCPU] requires METRIC(NUM) / METRIC(DEN)
// >= MIN. This expresses work-reduction gates — e.g. the suite-dedup
// bench reports total simulated warp-instructions per arm, and CI pins
// the per-app arm at >= 1.3x the dedup arm's work:
//
//	go test -bench StudySuiteDedup -benchtime 1x . | benchjson \
//	  -check-metric-ratio 'warp-instrs:StudySuiteDedup/perapp:StudySuiteDedup/dedup:1.3'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file layout of BENCH_study.json.
type Snapshot struct {
	GoVersion string `json:"go_version"`
	CPU       string `json:"cpu,omitempty"`
	MaxProcs  int    `json:"gomaxprocs"`
	// Note is free-form context about the recording machine that the
	// numbers can't carry themselves (e.g. why parallel sub-benches look
	// inverted on a single-CPU recorder).
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed snapshot to compare against")
	check := flag.String("check", "", "comma-separated benchmark names to gate on ns/op")
	tolerance := flag.Float64("tolerance", 25, "allowed ns/op regression vs baseline, percent")
	checkRatio := flag.String("check-ratio", "", "comma-separated NUM:DEN:MIN[:MINCPU] specs requiring ns/op(NUM)/ns/op(DEN) >= MIN in this run")
	checkMaxRatio := flag.String("check-max-ratio", "", "comma-separated NUM:DEN:MAX[:MINCPU] specs requiring ns/op(NUM)/ns/op(DEN) <= MAX in this run")
	checkMetricRatio := flag.String("check-metric-ratio", "", "comma-separated METRIC:NUM:DEN:MIN[:MINCPU] specs requiring METRIC(NUM)/METRIC(DEN) >= MIN in this run")
	note := flag.String("note", "", "free-form note recorded in the snapshot (machine context, caveats)")
	flag.Parse()

	snap := Snapshot{GoVersion: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0), Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	// Summarize before writing: when -o and -baseline name the same file
	// (make bench re-recording over the committed snapshot) the deltas must
	// reflect the committed numbers, not the ones just written.
	printSummary(&snap, *baseline)
	if *out != "" || *check == "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *out == "" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	if *check != "" {
		if *baseline == "" {
			fatal(fmt.Errorf("-check requires -baseline"))
		}
		if err := checkRegressions(&snap, *baseline, *check, *tolerance); err != nil {
			fatal(err)
		}
	}
	if *checkRatio != "" {
		if err := checkRatios(&snap, *checkRatio, runtime.NumCPU()); err != nil {
			fatal(err)
		}
	}
	if *checkMaxRatio != "" {
		if err := checkMaxRatios(&snap, *checkMaxRatio, runtime.NumCPU()); err != nil {
			fatal(err)
		}
	}
	if *checkMetricRatio != "" {
		if err := checkMetricRatios(&snap, *checkMetricRatio, runtime.NumCPU()); err != nil {
			fatal(err)
		}
	}
}

// printSummary writes the human-readable run overview to stderr: one row
// per benchmark with its ns/op and — when a baseline snapshot is readable —
// a signed percent delta against the same benchmark there ("new" when the
// baseline doesn't have it). The JSON on stdout stays the machine record;
// this is the at-a-glance view for the person running `make bench`.
func printSummary(snap *Snapshot, baselinePath string) {
	var base *Snapshot
	if baselinePath != "" {
		if raw, err := os.ReadFile(baselinePath); err == nil {
			var b Snapshot
			if json.Unmarshal(raw, &b) == nil {
				base = &b
			}
		}
	}
	w := 4
	for _, b := range snap.Benchmarks {
		if len(b.Name) > w {
			w = len(b.Name)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (%s, gomaxprocs %d)\n",
		len(snap.Benchmarks), snap.GoVersion, snap.MaxProcs)
	if base != nil {
		fmt.Fprintf(os.Stderr, "  %-*s  %14s  %s\n", w, "name", "ns/op", "vs "+baselinePath)
	} else {
		fmt.Fprintf(os.Stderr, "  %-*s  %14s\n", w, "name", "ns/op")
	}
	for _, b := range snap.Benchmarks {
		delta := ""
		if base != nil {
			delta = "new"
			for i := range base.Benchmarks {
				old := &base.Benchmarks[i]
				if old.Name == b.Name && old.NsPerOp > 0 && b.NsPerOp > 0 {
					delta = fmt.Sprintf("%+.2f%%", (b.NsPerOp/old.NsPerOp-1)*100)
					break
				}
			}
		}
		fmt.Fprintf(os.Stderr, "  %-*s  %14.0f  %s\n", w, b.Name, b.NsPerOp, delta)
	}
}

// checkRatios enforces NUM:DEN:MIN[:MINCPU] specs against the current
// snapshot: the DEN benchmark must be at least MIN times faster than NUM.
// A spec with a MINCPU field is skipped (with a notice) when the machine
// has fewer CPUs, because parallel-speedup ratios only mean something with
// cores to spread across. Absent benchmark names are hard errors, same as
// the regression gate.
func checkRatios(snap *Snapshot, specs string, ncpu int) error {
	return checkRatioSpecs(snap, specs, ncpu, false)
}

// checkMaxRatios enforces NUM:DEN:MAX[:MINCPU] specs: the NUM benchmark
// may be at most MAX times slower than DEN. Where checkRatios demands a
// speedup, this bounds an overhead.
func checkMaxRatios(snap *Snapshot, specs string, ncpu int) error {
	return checkRatioSpecs(snap, specs, ncpu, true)
}

func checkRatioSpecs(snap *Snapshot, specs string, ncpu int, upper bool) error {
	find := func(name string) *Benchmark {
		for i := range snap.Benchmarks {
			if snap.Benchmarks[i].Name == name {
				return &snap.Benchmarks[i]
			}
		}
		return nil
	}
	var failures []string
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 3 && len(parts) != 4 {
			return fmt.Errorf("ratio spec %q: want NUM:DEN:BOUND[:MINCPU]", spec)
		}
		bound, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || bound <= 0 {
			return fmt.Errorf("ratio spec %q: bad bound %q", spec, parts[2])
		}
		if len(parts) == 4 {
			minCPU, err := strconv.Atoi(parts[3])
			if err != nil || minCPU < 1 {
				return fmt.Errorf("ratio spec %q: bad MINCPU %q", spec, parts[3])
			}
			if ncpu < minCPU {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %s: %d CPUs < required %d\n", spec, ncpu, minCPU)
				continue
			}
		}
		num, den := find(parts[0]), find(parts[1])
		if num == nil {
			return fmt.Errorf("benchmark %q not in current run", parts[0])
		}
		if den == nil {
			return fmt.Errorf("benchmark %q not in current run", parts[1])
		}
		if num.NsPerOp <= 0 || den.NsPerOp <= 0 {
			return fmt.Errorf("ratio spec %q: missing ns/op", spec)
		}
		ratio := num.NsPerOp / den.NsPerOp
		if upper {
			if ratio > bound {
				failures = append(failures, fmt.Sprintf(
					"%s is %.2fx slower than %s, want <= %.2fx (%.0f vs %.0f ns/op)",
					parts[0], ratio, parts[1], bound, num.NsPerOp, den.NsPerOp))
				continue
			}
			fmt.Fprintf(os.Stderr, "benchjson: %s ok: %s is %.2fx of %s (<= %.2fx)\n",
				spec, parts[0], ratio, parts[1], bound)
			continue
		}
		if ratio < bound {
			failures = append(failures, fmt.Sprintf(
				"%s is only %.2fx faster than %s, want >= %.2fx (%.0f vs %.0f ns/op)",
				parts[1], ratio, parts[0], bound, den.NsPerOp, num.NsPerOp))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s ok: %s is %.2fx faster than %s (>= %.2fx)\n",
			spec, parts[1], ratio, parts[0], bound)
	}
	if len(failures) > 0 {
		return fmt.Errorf("ratio gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// checkMetricRatios enforces METRIC:NUM:DEN:MIN[:MINCPU] specs against a
// custom b.ReportMetric unit instead of ns/op: the NUM benchmark's METRIC
// value must be at least MIN times the DEN benchmark's. This is how
// work-reduction gates are expressed — e.g. the suite-dedup bench reports
// total simulated warp-instructions, and CI requires the per-app arm to
// simulate >= 1.3x more than the dedup arm:
//
//	warp-instrs:StudySuiteDedup/perapp:StudySuiteDedup/dedup:1.3
//
// Absent benchmarks or missing metrics are hard errors, same as the
// ns/op gates.
func checkMetricRatios(snap *Snapshot, specs string, ncpu int) error {
	find := func(name string) *Benchmark {
		for i := range snap.Benchmarks {
			if snap.Benchmarks[i].Name == name {
				return &snap.Benchmarks[i]
			}
		}
		return nil
	}
	var failures []string
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 4 && len(parts) != 5 {
			return fmt.Errorf("metric ratio spec %q: want METRIC:NUM:DEN:MIN[:MINCPU]", spec)
		}
		metric := parts[0]
		bound, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || bound <= 0 {
			return fmt.Errorf("metric ratio spec %q: bad bound %q", spec, parts[3])
		}
		if len(parts) == 5 {
			minCPU, err := strconv.Atoi(parts[4])
			if err != nil || minCPU < 1 {
				return fmt.Errorf("metric ratio spec %q: bad MINCPU %q", spec, parts[4])
			}
			if ncpu < minCPU {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %s: %d CPUs < required %d\n", spec, ncpu, minCPU)
				continue
			}
		}
		num, den := find(parts[1]), find(parts[2])
		if num == nil {
			return fmt.Errorf("benchmark %q not in current run", parts[1])
		}
		if den == nil {
			return fmt.Errorf("benchmark %q not in current run", parts[2])
		}
		nv, nok := num.Metrics[metric]
		dv, dok := den.Metrics[metric]
		if !nok || !dok || nv <= 0 || dv <= 0 {
			return fmt.Errorf("metric ratio spec %q: metric %q missing or non-positive", spec, metric)
		}
		ratio := nv / dv
		if ratio < bound {
			failures = append(failures, fmt.Sprintf(
				"%s(%s) is only %.2fx %s(%s), want >= %.2fx (%.0f vs %.0f)",
				metric, parts[1], ratio, metric, parts[2], bound, nv, dv))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s ok: %s(%s) is %.2fx %s(%s) (>= %.2fx)\n",
			spec, metric, parts[1], ratio, metric, parts[2], bound)
	}
	if len(failures) > 0 {
		return fmt.Errorf("metric ratio gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// checkRegressions compares the named benchmarks' ns/op in snap against
// the baseline snapshot, failing when any is more than tolerance percent
// slower. Names absent from either side are hard errors — a gate that
// silently skips a renamed benchmark is worse than no gate.
func checkRegressions(snap *Snapshot, baselinePath, names string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	find := func(bs []Benchmark, name string) *Benchmark {
		for i := range bs {
			if bs[i].Name == name {
				return &bs[i]
			}
		}
		return nil
	}
	var failures []string
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b := find(base.Benchmarks, name)
		if b == nil {
			return fmt.Errorf("benchmark %q not in baseline %s", name, baselinePath)
		}
		cur := find(snap.Benchmarks, name)
		if cur == nil {
			return fmt.Errorf("benchmark %q not in current run", name)
		}
		if b.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q has no ns/op to compare", name)
		}
		limit := b.NsPerOp * (1 + tolerance/100)
		pct := (cur.NsPerOp/b.NsPerOp - 1) * 100
		if cur.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s regressed %.1f%%: %.0f ns/op vs baseline %.0f ns/op (tolerance %.0f%%)",
				name, pct, cur.NsPerOp, b.NsPerOp, tolerance))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s ok: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%)\n",
			name, cur.NsPerOp, b.NsPerOp, pct)
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// parseBenchLine parses one `BenchmarkName-8   N   V unit   V unit ...`
// line. Lines that don't look like benchmark results report ok=false.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			vv := v
			b.AllocsPerOp = &vv
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
