package main

import (
	"strings"
	"testing"
)

func ratioSnap() *Snapshot {
	return &Snapshot{Benchmarks: []Benchmark{
		{Name: "Serve/direct", NsPerOp: 100},
		{Name: "Serve/served", NsPerOp: 150},
		{Name: "Study/p=1", NsPerOp: 400},
		{Name: "Study/p=4", NsPerOp: 100},
	}}
}

func TestCheckRatios(t *testing.T) {
	snap := ratioSnap()
	if err := checkRatios(snap, "Study/p=1:Study/p=4:3", 8); err != nil {
		t.Errorf("4x speedup fails a 3x floor: %v", err)
	}
	err := checkRatios(snap, "Study/p=1:Study/p=4:5", 8)
	if err == nil || !strings.Contains(err.Error(), "only 4.00x faster") {
		t.Errorf("4x speedup passes a 5x floor: %v", err)
	}
	// MINCPU skips the spec — including one that would fail.
	if err := checkRatios(snap, "Study/p=1:Study/p=4:5:4", 2); err != nil {
		t.Errorf("2-CPU machine enforced a MINCPU=4 spec: %v", err)
	}
	if err := checkRatios(snap, "Study/p=1:NoSuchBench:2", 8); err == nil {
		t.Error("absent benchmark name passed silently")
	}
	if err := checkRatios(snap, "Study/p=1:Study/p=4", 8); err == nil {
		t.Error("malformed spec accepted")
	}
	if err := checkRatios(snap, "Study/p=1:Study/p=4:zero", 8); err == nil {
		t.Error("non-numeric bound accepted")
	}
}

func TestCheckMaxRatios(t *testing.T) {
	snap := ratioSnap()
	if err := checkMaxRatios(snap, "Serve/served:Serve/direct:2", 8); err != nil {
		t.Errorf("1.5x overhead fails a 2x ceiling: %v", err)
	}
	err := checkMaxRatios(snap, "Serve/served:Serve/direct:1.2", 8)
	if err == nil || !strings.Contains(err.Error(), "1.50x slower") {
		t.Errorf("1.5x overhead passes a 1.2x ceiling: %v", err)
	}
	if err := checkMaxRatios(snap, "Serve/served:Serve/direct:1.2:16", 2); err != nil {
		t.Errorf("2-CPU machine enforced a MINCPU=16 spec: %v", err)
	}
	if err := checkMaxRatios(snap, "NoSuchBench:Serve/direct:2", 8); err == nil {
		t.Error("absent benchmark name passed silently")
	}
}

func TestCheckMetricRatios(t *testing.T) {
	snap := &Snapshot{Benchmarks: []Benchmark{
		{Name: "SuiteDedup/perapp", NsPerOp: 100, Metrics: map[string]float64{"warp-instrs": 216}},
		{Name: "SuiteDedup/dedup", NsPerOp: 100, Metrics: map[string]float64{"warp-instrs": 72}},
	}}
	if err := checkMetricRatios(snap, "warp-instrs:SuiteDedup/perapp:SuiteDedup/dedup:1.3", 8); err != nil {
		t.Errorf("3x reduction fails a 1.3x floor: %v", err)
	}
	err := checkMetricRatios(snap, "warp-instrs:SuiteDedup/perapp:SuiteDedup/dedup:5", 8)
	if err == nil || !strings.Contains(err.Error(), "only 3.00x") {
		t.Errorf("3x reduction passes a 5x floor: %v", err)
	}
	// MINCPU skips the spec — including one that would fail.
	if err := checkMetricRatios(snap, "warp-instrs:SuiteDedup/perapp:SuiteDedup/dedup:5:4", 2); err != nil {
		t.Errorf("2-CPU machine enforced a MINCPU=4 spec: %v", err)
	}
	if err := checkMetricRatios(snap, "mwi-s:SuiteDedup/perapp:SuiteDedup/dedup:1.3", 8); err == nil {
		t.Error("absent metric passed silently")
	}
	if err := checkMetricRatios(snap, "warp-instrs:NoSuchBench:SuiteDedup/dedup:1.3", 8); err == nil {
		t.Error("absent benchmark name passed silently")
	}
	if err := checkMetricRatios(snap, "warp-instrs:SuiteDedup/perapp:SuiteDedup/dedup", 8); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkServe/qps=64-8 \t 1\t246153132 ns/op\t58.03 p50-ms\t84.47 p99-ms")
	if !ok {
		t.Fatal("bench line rejected")
	}
	if b.Name != "Serve/qps=64" || b.NsPerOp != 246153132 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["p50-ms"] != 58.03 || b.Metrics["p99-ms"] != 84.47 {
		t.Errorf("custom metrics lost: %v", b.Metrics)
	}
	if _, ok := parseBenchLine("ok  \tpka\t0.961s"); ok {
		t.Error("non-bench line accepted")
	}
}
