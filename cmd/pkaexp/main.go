// Command pkaexp regenerates the paper's tables and figures from the
// reproduced system.
//
// Usage:
//
//	pkaexp -list
//	pkaexp -exp fig1,table3
//	pkaexp -exp all [-out results.txt]
//	pkaexp -exp table4 -suite Rodinia     # restrict to one suite
//
// Generating everything sweeps all 147 workloads through profiling,
// selection, and (where feasible) full simulation. Per-workload artifacts
// fan out across GOMAXPROCS workers by default (tune with -p; -p 1 forces
// the old serial behaviour); output is byte-identical at every setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"pka/internal/cli"
	"pka/internal/experiments"
	"pka/internal/report"
	"pka/internal/workload"
)

type generator struct {
	name string
	desc string
	run  func(s *experiments.Study, out io.Writer) error
}

func generators() []generator {
	return []generator{
		{"fig1", "execution vs profiling vs projected simulation time", func(s *experiments.Study, out io.Writer) error {
			chart, tab, err := experiments.Figure1(s)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, chart)
			fmt.Fprintln(out, tab)
			return nil
		}},
		{"table3", "PKS selection examples", func(s *experiments.Study, out io.Writer) error {
			tab, err := experiments.Table3(s)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, tab)
			return nil
		}},
		{"fig4", "ResNet per-group kernel composition", func(s *experiments.Study, out io.Writer) error {
			tab, err := experiments.Figure4(s)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, tab)
			return nil
		}},
		{"fig5", "PKP stopping points on atax and bfs", func(s *experiments.Study, out io.Writer) error {
			charts, tab, err := experiments.Figure5(s)
			if err != nil {
				return err
			}
			for _, c := range charts {
				fmt.Fprintln(out, c)
			}
			fmt.Fprintln(out, tab)
			return nil
		}},
		{"fig6", "simulation time: full vs PKS vs PKA", chartAndTable(experiments.Figure6)},
		{"fig7", "speedup vs TBPoint and 1B", chartAndTable(experiments.Figure7)},
		{"fig8", "error vs TBPoint and 1B", chartAndTable(experiments.Figure8)},
		{"table4", "the full results table", func(s *experiments.Study, out io.Writer) error {
			tab, err := experiments.Table4(s)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, tab)
			summary, err := experiments.Table4SuiteSummary(s)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, summary)
			return nil
		}},
		{"fig9", "V100 vs RTX 2060 relative accuracy", chartAndTable(experiments.Figure9)},
		{"fig10", "80 vs 40 SM relative accuracy", chartAndTable(experiments.Figure10)},
		{"ablation-rep", "representative policy ablation", tableOnly(experiments.AblationRepPolicy)},
		{"ablation-pkp", "PKP threshold ablation", tableOnly(experiments.AblationPKPThreshold)},
		{"ablation-wave", "PKP wave-constraint ablation", tableOnly(experiments.AblationWaveConstraint)},
		{"ablation-pca", "PCA on/off ablation", tableOnly(experiments.AblationPCA)},
		{"ablation-cluster", "clustering scalability ablation", tableOnly(experiments.AblationClusteringScale)},
		{"ablation-classifier", "two-level classifier ablation", tableOnly(experiments.AblationClassifier)},
	}
}

func chartAndTable(f func(*experiments.Study) (*report.Chart, *report.Table, error)) func(*experiments.Study, io.Writer) error {
	return func(s *experiments.Study, out io.Writer) error {
		chart, tab, err := f(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, chart)
		fmt.Fprintln(out, tab)
		return nil
	}
}

func tableOnly(f func(*experiments.Study) (*report.Table, error)) func(*experiments.Study, io.Writer) error {
	return func(s *experiments.Study, out io.Writer) error {
		tab, err := f(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tab)
		return nil
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment names, or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		outPath  = flag.String("out", "", "write results to this file instead of stdout")
		suite    = flag.String("suite", "", "restrict the study to one suite (Rodinia, Parboil, ...)")
		workname = flag.String("workloads", "", "comma-separated full workload names to restrict to")
		par      = flag.Int("p", 0, "parallelism: concurrent per-workload artifact computations (0 = GOMAXPROCS, 1 = serial)")
		obsFl    cli.ObsFlags
		cacheFl  cli.CacheFlags
		remoteFl cli.RemoteFlags
	)
	obsFl.Register(nil)
	cacheFl.Register(nil)
	remoteFl.Register(nil)
	flag.Parse()

	gens := generators()
	if *list || *expFlag == "" {
		fmt.Println("available experiments:")
		for _, g := range gens {
			fmt.Printf("  %-20s %s\n", g.name, g.desc)
		}
		if *expFlag == "" && !*list {
			fmt.Println("\nrun with -exp <name>[,<name>...] or -exp all")
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	s := experiments.New()
	s.Cfg.Parallelism = *par
	observer, err := obsFl.Start()
	if err != nil {
		fatal(err)
	}
	s.Cfg.Obs = observer
	store, err := cacheFl.Open()
	if err != nil {
		fatal(err)
	}
	s.SetArtifactStore(store)
	dispatcher, err := remoteFl.Start(store, observer)
	if err != nil {
		fatal(err)
	}
	if dispatcher != nil {
		s.SetRemote(dispatcher)
		fmt.Fprintf(os.Stderr, "dispatching kernel tasks to %d worker(s)\n", dispatcher.Workers())
	}
	if sc := remoteFl.ShardClient(); sc != nil {
		s.SetShard(sc)
	}
	observer.RegisterCacheStats(s.CacheStats)
	if *suite != "" {
		ws := workload.BySuite(*suite)
		if ws == nil {
			fatal(fmt.Errorf("unknown suite %q", *suite))
		}
		s.SetWorkloads(ws)
	}
	if *workname != "" {
		ws, err := cli.Workloads(*workname)
		if err != nil {
			fatal(err)
		}
		s.SetWorkloads(ws)
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, g := range gens {
			want[g.name] = true
		}
	} else {
		for _, n := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	known := map[string]bool{}
	for _, g := range gens {
		known[g.name] = true
	}
	var unknown []string
	for n := range want {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fatal(fmt.Errorf("unknown experiments: %s", strings.Join(unknown, ", ")))
	}

	for _, g := range gens {
		if !want[g.name] {
			continue
		}
		t0 := time.Now()
		fmt.Fprintf(out, "### %s — %s\n\n", g.name, g.desc)
		sp := observer.StartSpan("experiment", g.name)
		err := g.run(s, out)
		sp.End()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", g.name, err))
		}
		fmt.Fprintf(out, "[%s generated in %s]\n\n", g.name, time.Since(t0).Round(time.Millisecond))
	}
	if err := obsFl.Finish(); err != nil {
		fatal(err)
	}
	if err := cacheFl.Finish(s.CacheStats); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkaexp:", err)
	os.Exit(1)
}
