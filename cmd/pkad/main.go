// Command pkad is the PKA kernel-task worker daemon: it serves the
// internal/remote exec protocol so pka/pkaexp studies can scale their
// simulation work out across machines. Each request is one kernel task —
// a pure function of (device, kernel features, task spec) — so a worker
// holds no study state at all; it just burns cycles and, when -cache-dir
// points at a (possibly shared) directory, persists every outcome in the
// same content-addressed artifact store the clients use.
//
// Typical fleet member:
//
//	pkad -serve 0.0.0.0:9377 -worker-cap 8 -cache-dir /shared/pka-cache
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pka/internal/artifact"
	"pka/internal/cli"
	"pka/internal/obs"
	"pka/internal/remote"
	"pka/internal/sampling"
)

func main() {
	var (
		serve    = flag.String("serve", "127.0.0.1:9377", "host:port to serve kernel-task execution on")
		cap      = flag.Int("worker-cap", 4, "maximum tasks executing concurrently; extra requests are rejected 429 for the dispatcher to place elsewhere")
		quiet    = flag.Bool("quiet", false, "suppress the per-request access log on stderr")
		name     = flag.String("name", "", "worker name reported in traces, health, and shipped spans (default pkad)")
		ring     = flag.String("ring", "", "comma-separated fleet member URLs forming the consistent-hash cache ring (peer cache sharding; include this worker)")
		ringSelf = flag.String("ring-self", "", "this worker's own URL on the -ring (skipped on peer lookups; reported in /v1/health)")
	)
	var cacheFl cli.CacheFlags
	cacheFl.Register(nil)
	flag.Parse()

	if err := run(*serve, *cap, *quiet, *name, *ring, *ringSelf, &cacheFl); err != nil {
		fmt.Fprintln(os.Stderr, "pkad:", err)
		os.Exit(1)
	}
}

func run(addr string, capacity int, quiet bool, name, ringCSV, ringSelf string, cacheFl *cli.CacheFlags) error {
	store, err := cacheFl.Open()
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "pkad ", log.LstdFlags|log.Lmicroseconds)

	// The daemon is always observed — /metrics is part of its API — with
	// build identity and per-tier exec attribution in the exposition.
	observer := obs.NewObserver()
	observer.RegisterBuildInfo()

	// The worker-side Exec layers mem-singleflight and the disk store over
	// the local simulator but never a remote tier: workers execute, they do
	// not forward (see sampling.Exec.RunKernelTask).
	exec := sampling.NewExec(nil, store)
	exec.SetMetrics(observer.ExecMetrics())

	// When the fleet runs with per-worker (private) cache dirs, the ring
	// makes the fleet's caches one sharded store: this worker answers peer
	// GET/PUTs for the key ranges it owns and reads its peers' shards
	// before simulating. Peer lookups are pure cache reads, so the
	// no-forwarding invariant (workers never dispatch work) holds.
	var shard *remote.ShardClient
	var fleetRing *artifact.Ring
	if ringCSV != "" {
		var members []string
		for _, u := range strings.Split(ringCSV, ",") {
			if u = strings.TrimSpace(u); u != "" {
				members = append(members, u)
			}
		}
		fleetRing = artifact.NewRing(members, 0, 0)
		if fleetRing == nil {
			return fmt.Errorf("-ring: no member URLs in %q", ringCSV)
		}
		shard = remote.NewShardClient(remote.ShardOptions{
			Peers:   members,
			Self:    ringSelf,
			Metrics: observer.ShardMetrics(),
			Logf:    logger.Printf,
		})
		if shard != nil {
			exec.SetShard(shard)
		}
		logger.Printf("cache ring: %d member(s), replication %d, self %q",
			len(fleetRing.Members()), fleetRing.Replicas(), ringSelf)
	}

	observer.RegisterCacheStats(func() map[string]obs.CacheCounts {
		h, m := exec.MemStats()
		out := map[string]obs.CacheCounts{"kernel_mem": {Hits: h, Misses: m}}
		if store != nil {
			a := store.Stats()
			out["artifact"] = obs.CacheCounts{Hits: a.Hits, Misses: a.Misses, Evictions: a.Evictions, Corrupt: a.Corrupt}
		}
		if shard != nil {
			out["shard"] = shard.CacheCounts()
		}
		return out
	})
	srv := remote.NewServer(exec, capacity)
	srv.Name = name
	srv.Obs = observer
	if fleetRing != nil {
		srv.SetRing(fleetRing, ringSelf)
	}
	if !quiet {
		srv.Logf = logger.Printf
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("serving kernel tasks on http://%s (capacity %d, cache %q)", ln.Addr(), capacity, cacheFl.Dir)

	errc := make(chan error, 1)
	go func() { errc <- http.Serve(ln, srv.Handler()) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("caught %v, shutting down", s)
	case err := <-errc:
		_ = cacheFl.Finish(nil)
		return err
	}
	_ = ln.Close()
	return cacheFl.Finish(nil)
}
