// Command pkaload drives a pkaserve instance with open-loop Poisson
// traffic: arrivals are scheduled up front from a seeded exponential
// process and fired on schedule regardless of completions, the pattern
// independent clients produce. The schedule is a pure function of the
// seed, so a run is byte-reproducible (-plan prints it without firing).
//
// Usage:
//
//	pkaload -target http://127.0.0.1:9380 -qps 8 -requests 64
//	pkaload -w Rodinia/gauss_mat4,Rodinia/bfs4096 -tenants prod=3,batch=1
//	pkaload -seed 7 -plan          # print the request schedule, send nothing
//	pkaload -report latency.json   # machine-readable percentiles
//
// Exit status is 1 when any request failed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pka/internal/cli"
	"pka/internal/serve"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:9380", "pkaserve base URL")
		qps      = flag.Float64("qps", 4, "mean Poisson arrival rate (requests/second)")
		requests = flag.Int("requests", 32, "total requests to fire")
		seed     = flag.Uint64("seed", 1, "schedule seed (same seed, same schedule)")
		wcsv     = flag.String("w", "Rodinia/gauss_mat4", "comma-separated workloads to draw from")
		tenants  = flag.String("tenants", "anon=1", "tenants and draw weights, e.g. prod=3,batch=1")
		mode     = flag.String("mode", "pka", "study mode: pka | pks | full")
		device   = flag.String("device", "volta", cli.DeviceNames)
		plan     = flag.Bool("plan", false, "print the request schedule as JSON and exit without sending")
		report   = flag.String("report", "", "write the latency report as JSON to this file")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()

	ws, err := cli.Workloads(*wcsv)
	if err != nil {
		fatal(err)
	}
	weights, err := cli.ParseWeights(*tenants)
	if err != nil {
		fatal(err)
	}
	if len(weights) == 0 {
		weights = map[string]int{"anon": 1}
	}
	// The template pool is the tenant×workload cross product with each
	// tenant repeated by its weight, so the generator's uniform draw
	// produces weighted traffic. Deterministic order: tenants sorted.
	var names []string
	for t := range weights {
		names = append(names, t)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var templates []serve.StudyRequest
	for _, t := range names {
		for i := 0; i < weights[t]; i++ {
			for _, w := range ws {
				templates = append(templates, serve.StudyRequest{
					Tenant: t, Workload: w.FullName(), Device: *device, Mode: *mode,
				})
			}
		}
	}

	gen := &serve.LoadGen{
		Rate:      *qps,
		Requests:  *requests,
		Seed:      *seed,
		Templates: templates,
		Do:        poster(*target, *timeout),
	}
	if *plan {
		enc := json.NewEncoder(os.Stdout)
		for _, a := range gen.Plan() {
			if err := enc.Encode(a); err != nil {
				fatal(err)
			}
		}
		return
	}
	rep, err := gen.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
	if *report != "" {
		doc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*report, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// poster returns a Do that POSTs one study request and drains the reply.
func poster(base string, timeout time.Duration) func(*serve.StudyRequest) error {
	client := &http.Client{Timeout: timeout}
	return func(req *serve.StudyRequest) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+serve.StudyPath, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
		}
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkaload:", err)
	os.Exit(1)
}
