// Command pkaserve runs the PKA study engine as a long-running service:
// clients POST study requests, the server admits them through a bounded
// weighted-fair queue, executes them on the shared Exec ladder (memory →
// disk cache → pkad workers → fresh simulation), and answers with the
// same bytes the batch pka CLI would print for the same inputs.
//
// Usage:
//
//	pkaserve                                       # loopback on :9380
//	pkaserve -addr :9380 -study-workers 4 -queue-depth 128
//	pkaserve -cache-dir /var/pka -workers http://gpu1:9377,http://gpu2:9377
//	pkaserve -tenants prod=3,batch=1               # prod drains 3:1 under load
//
// Endpoints: POST /v1/study, POST /v1/stream, GET /v1/latency (?text=1),
// GET /v1/health, GET /metrics. SIGINT/SIGTERM drains gracefully: queued
// studies finish, new ones get 503.
//
// /v1/stream is the progressive form of /v1/study: the body is NDJSON — a
// study-request line (no workload field), then a kernel-event stream as
// written by `pka -emit-events`. The server profiles, clusters, and
// speculatively simulates likely representatives while events arrive,
// answers progress lines as it goes, and ends with a line byte-identical
// to the /v1/study response for the same workload and parameters. Streams
// bypass the fair queue but respect drain and the -study-workers cap.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pka/internal/cli"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/sampling"
	"pka/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9380", "host:port to serve the study API on")
		workers    = flag.Int("study-workers", 2, "concurrently executing studies (each study fans kernels out further on -p)")
		queueDepth = flag.Int("queue-depth", 64, "bounded admission queue; requests beyond it are rejected with 429")
		tenants    = flag.String("tenants", "", "per-tenant fair-share weights, e.g. prod=3,batch=1 (unlisted tenants weigh 1)")
		par        = flag.Int("p", 0, "per-study kernel parallelism (0 = GOMAXPROCS, 1 = serial)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain at shutdown")
		quiet      = flag.Bool("quiet", false, "suppress the startup and shutdown notes")
		obsFl      cli.ObsFlags
		cacheFl    cli.CacheFlags
		remoteFl   cli.RemoteFlags
		predictFl  cli.PredictFlags
	)
	obsFl.Register(nil)
	cacheFl.Register(nil)
	remoteFl.Register(nil)
	predictFl.Register(nil)
	flag.Parse()

	if predictFl.Train != "" {
		fatal(fmt.Errorf("-predict-train is an offline pka mode; the service only serves with -predict"))
	}

	weights, err := cli.ParseWeights(*tenants)
	if err != nil {
		fatal(err)
	}
	// The server is always observed — /metrics and /v1/latency are part of
	// its API — so build the observer up front and let the flag bundle
	// adopt it for the -trace/-metrics/-audit artifact writers.
	observer := obs.NewObserver()
	observer.RegisterBuildInfo()
	obsFl.Use(observer)
	if _, err := obsFl.Start(); err != nil {
		fatal(err)
	}
	store, err := cacheFl.Open()
	if err != nil {
		fatal(err)
	}
	exec := sampling.NewExec(parallel.NewScheduler(*par), store)
	exec.SetMetrics(observer.ExecMetrics())
	if err := predictFl.Start(exec, observer); err != nil {
		fatal(err)
	}
	dispatcher, err := remoteFl.Start(store, observer)
	if err != nil {
		fatal(err)
	}
	if dispatcher != nil {
		exec.SetRemote(dispatcher)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "dispatching kernel tasks to %d worker(s)\n", dispatcher.Workers())
		}
	}
	shard := remoteFl.ShardClient()
	if shard != nil {
		exec.SetShard(shard)
	}
	cacheStats := func() map[string]obs.CacheCounts {
		h, m := exec.MemStats()
		out := map[string]obs.CacheCounts{"kernel_mem": {Hits: h, Misses: m}}
		if store != nil {
			a := store.Stats()
			out["artifact"] = obs.CacheCounts{Hits: a.Hits, Misses: a.Misses, Evictions: a.Evictions, Corrupt: a.Corrupt}
		}
		if shard != nil {
			out["shard"] = shard.CacheCounts()
		}
		return out
	}
	observer.RegisterCacheStats(cacheStats)

	srv := serve.New(serve.Options{
		Exec:          exec,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		TenantWeights: weights,
		Obs:           observer,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // reported via Shutdown
	if !*quiet {
		fmt.Fprintf(os.Stderr, "study service on http://%s%s (%d study workers, queue %d)\n",
			ln.Addr(), serve.StudyPath, *workers, *queueDepth)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if !*quiet {
		fmt.Fprintln(os.Stderr, "draining: queued studies will finish, new requests get 503")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pkaserve: drain:", err)
	}
	_ = hs.Shutdown(ctx)
	if !*quiet {
		fmt.Fprint(os.Stderr, srv.LatencyReport().String())
	}
	if err := predictFl.Finish(exec); err != nil {
		fatal(err)
	}
	if err := obsFl.Finish(); err != nil {
		fatal(err)
	}
	if err := cacheFl.Finish(cacheStats); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkaserve:", err)
	os.Exit(1)
}
