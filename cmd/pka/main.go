// Command pka runs the Principal Kernel Analysis pipeline on one workload:
// silicon ground truth, Principal Kernel Selection, and sampled simulation
// with and without Principal Kernel Projection, reporting errors, speedups
// and projected simulation times.
//
// Usage:
//
//	pka -list                             # list study workloads
//	pka -w Rodinia/gauss_208              # full pipeline on one workload
//	pka -w Polybench/fdtd2d -target 2 -s 0.1
//	pka -w MLPerf/ssd_training -device turing -selection-only
//	pka -w Rodinia/gauss_208 -trace t.json -metrics m.prom -audit a.ndjson
//	pka -w Rodinia/gauss_208 -emit-events ev.ndjson   # record an event stream
//	pka -stream ev.ndjson                             # replay it, streaming
//
// -stream runs the streaming pipeline: kernel launch events are read as
// NDJSON (one per line, '-' = stdin), profiling and advisory clustering
// run as events arrive, and likely representatives are simulated
// speculatively before the stream ends. The printed study is byte-identical
// to the batch run on the same workload.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pka/internal/cli"
	"pka/internal/core"
	"pka/internal/dedup"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/predict"
	"pka/internal/report"
	"pka/internal/sampling"
	"pka/internal/stats"
	"pka/internal/workload"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the 147 study workloads")
		wname     = flag.String("w", "", "workload full name (suite/name)")
		device    = flag.String("device", "volta", cli.DeviceNames)
		target    = flag.Float64("target", 5, "PKS target selection error (%)")
		sThresh   = flag.Float64("s", pkp.DefaultThreshold, "PKP stability threshold s")
		window    = flag.Int("n", pkp.DefaultWindow, "PKP rolling window (cycles)")
		selOnly   = flag.Bool("selection-only", false, "stop after Principal Kernel Selection")
		maxK      = flag.Int("maxk", 20, "K-Means sweep bound")
		jsonOut   = flag.String("json", "", "write the selection (groups, representatives, weights) to this JSON file")
		wfile     = flag.String("workload-file", "", "analyze a user-defined workload from a JSON document instead of -w")
		par       = flag.Int("p", 0, "parallelism: concurrent pipeline stages (0 = GOMAXPROCS, 1 = serial)")
		explain   = flag.Bool("explain", false, "print the per-tier execution provenance report (which ladder tier served each kernel launch) after the study")
		flightF   = flag.String("flight", "", "write the per-kernel execution provenance (flight recorder) as NDJSON to this file")
		suiteDed  = flag.String("suite-dedup", "", "run a suite-level dedup study over this comma-separated workload list: cluster all apps in one shared PCA space, simulate one representative per cross-workload group, and report per-app errors plus the warp-instruction savings vs per-app PKS")
		stream    = flag.String("stream", "", "read NDJSON kernel launch events from this file ('-' = stdin) and run the streaming pipeline; output matches the batch run byte for byte")
		emitEv    = flag.String("emit-events", "", "with -w or -workload-file: write the workload as an NDJSON kernel-event stream to this file ('-' = stdout) and exit")
		obsFl     cli.ObsFlags
		cacheFl   cli.CacheFlags
		remoteFl  cli.RemoteFlags
		predictFl cli.PredictFlags
	)
	obsFl.Register(nil)
	cacheFl.Register(nil)
	remoteFl.Register(nil)
	predictFl.Register(nil)
	flag.Parse()

	// -stream brings its own workload (the event header names it) and is a
	// single-app pipeline, so the batch workload selectors and the
	// multi-app dedup study are incoherent alongside it. -predict-train is
	// an offline mode of its own: it mines the artifact cache and exits, so
	// it can't serve a model or run any study alongside.
	if err := cli.FlagConflicts(nil,
		[2]string{"stream", "suite-dedup"},
		[2]string{"stream", "w"},
		[2]string{"stream", "workload-file"},
		[2]string{"stream", "emit-events"},
		[2]string{"stream", "selection-only"},
		[2]string{"predict-train", "predict"},
		[2]string{"predict-train", "stream"},
		[2]string{"predict-train", "suite-dedup"},
		[2]string{"predict-train", "selection-only"},
		[2]string{"predict-train", "emit-events"},
	); err != nil {
		fatal(err)
	}

	if *list {
		bysuite := map[string][]string{}
		var suites []string
		for _, w := range workload.All() {
			if len(bysuite[w.Suite]) == 0 {
				suites = append(suites, w.Suite)
			}
			bysuite[w.Suite] = append(bysuite[w.Suite], fmt.Sprintf("%-40s %8d kernels", w.FullName(), w.N))
		}
		for _, s := range suites {
			fmt.Printf("%s (%d workloads)\n", s, len(bysuite[s]))
			sort.Strings(bysuite[s])
			for _, l := range bysuite[s] {
				fmt.Println("  " + l)
			}
		}
		return
	}
	var w *workload.Workload
	switch {
	case *suiteDed != "":
		// Suite-dedup mode resolves its own workload list below.
	case *stream != "":
		// Streaming mode learns its workload from the event header below.
	case *wfile != "":
		var err error
		w, err = workload.LoadJSON(*wfile)
		if err != nil {
			fatal(err)
		}
	case *wname != "":
		var err error
		w, err = cli.FindWorkload(*wname)
		if err != nil {
			fatal(err)
		}
	case predictFl.Train != "":
		// Training without a workload selector scans the whole study set.
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *emitEv != "" {
		if w == nil {
			fatal(fmt.Errorf("-emit-events needs -w or -workload-file"))
		}
		if err := emitEventStream(w, *emitEv); err != nil {
			fatal(err)
		}
		return
	}

	dev, err := cli.Device(*device)
	if err != nil {
		fatal(err)
	}
	observer, err := obsFl.Start()
	if err != nil {
		fatal(err)
	}
	store, err := cacheFl.Open()
	if err != nil {
		fatal(err)
	}

	if predictFl.Train != "" {
		ws := workload.All()
		if w != nil {
			ws = []*workload.Workload{w}
		}
		if err := predictFl.TrainAndSave(dev, store, ws, predict.ScanOptions{
			PKP: pkp.Options{Threshold: *sThresh, Window: *window},
		}); err != nil {
			fatal(err)
		}
		if err := obsFl.Finish(); err != nil {
			fatal(err)
		}
		if err := cacheFl.Finish(nil); err != nil {
			fatal(err)
		}
		return
	}

	exec := sampling.NewExec(parallel.NewScheduler(*par), store)
	dispatcher, err := remoteFl.Start(store, observer)
	if err != nil {
		fatal(err)
	}
	if dispatcher != nil {
		exec.SetRemote(dispatcher)
		fmt.Fprintf(os.Stderr, "dispatching kernel tasks to %d worker(s)\n", dispatcher.Workers())
	}
	shard := remoteFl.ShardClient()
	if shard != nil {
		exec.SetShard(shard)
	}
	cacheStats := func() map[string]obs.CacheCounts {
		h, m := exec.MemStats()
		out := map[string]obs.CacheCounts{"kernel_mem": {Hits: h, Misses: m}}
		if store != nil {
			a := store.Stats()
			out["artifact"] = obs.CacheCounts{Hits: a.Hits, Misses: a.Misses, Evictions: a.Evictions, Corrupt: a.Corrupt}
		}
		if shard != nil {
			out["shard"] = shard.CacheCounts()
		}
		return out
	}
	observer.RegisterCacheStats(cacheStats)

	exec.SetMetrics(observer.ExecMetrics())
	if err := predictFl.Start(exec, observer); err != nil {
		fatal(err)
	}

	cfg := core.Config{
		Device:      dev,
		PKS:         pks.Options{TargetErrorPct: *target, MaxK: *maxK},
		PKP:         pkp.Options{Threshold: *sThresh, Window: *window},
		Parallelism: *par,
		Obs:         observer,
		Exec:        exec,
	}
	var flight *sampling.FlightRecorder
	if *explain || *flightF != "" {
		flight = sampling.NewFlightRecorder()
		cfg.Flight = flight
	}
	if obsFl.Trace != "" {
		// A Chrome-trace run is a traced run: give the study a root trace
		// context so remote workers' spans link back under one trace ID and
		// merge into the written trace, with this process as its own track.
		ids := obs.NewIDGen(0)
		cfg.Trace = ids.NewTrace()
		cfg.TraceIDs = ids
		observer.Tracer.SetProcessName("pka")
	}

	if *stream != "" {
		if err := streamStudy(cfg, *stream, *target, *jsonOut); err != nil {
			fatal(err)
		}
		if *explain {
			fmt.Println()
			if err := flight.WriteReport(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *flightF != "" {
			if err := writeFlight(flight, *flightF); err != nil {
				fatal(err)
			}
		}
		if err := obsFl.Finish(); err != nil {
			fatal(err)
		}
		if err := cacheFl.Finish(cacheStats); err != nil {
			fatal(err)
		}
		return
	}

	if *suiteDed != "" {
		ws, err := cli.Workloads(*suiteDed)
		if err != nil {
			fatal(err)
		}
		if err := suiteDedupStudy(cfg, ws); err != nil {
			fatal(err)
		}
		if *explain {
			fmt.Println()
			if err := flight.WriteReport(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *flightF != "" {
			if err := writeFlight(flight, *flightF); err != nil {
				fatal(err)
			}
		}
		if err := obsFl.Finish(); err != nil {
			fatal(err)
		}
		if err := cacheFl.Finish(cacheStats); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("workload   %s (%d kernels) on %s\n", w.FullName(), w.N, dev.Name)
	if w.Quirk != "" {
		fmt.Printf("quirk      %s (the paper excludes this workload from some result columns)\n", w.Quirk)
	}

	selSpan := observer.StartSpan("pks-select", w.FullName())
	sel, err := pks.Select(dev, w, cfg.PKSOptions())
	selSpan.End()
	if err != nil {
		fatal(err)
	}
	if err := printSelection(sel, *target, *jsonOut); err != nil {
		fatal(err)
	}
	if *selOnly {
		if err := obsFl.Finish(); err != nil {
			fatal(err)
		}
		if err := cacheFl.Finish(cacheStats); err != nil {
			fatal(err)
		}
		return
	}

	ev, err := core.Evaluate(cfg, w)
	if err != nil {
		fatal(err)
	}
	printSimulation(ev)
	if *explain {
		fmt.Println()
		if err := flight.WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *flightF != "" {
		if err := writeFlight(flight, *flightF); err != nil {
			fatal(err)
		}
	}
	if err := predictFl.Finish(exec); err != nil {
		fatal(err)
	}
	if err := obsFl.Finish(); err != nil {
		fatal(err)
	}
	if err := cacheFl.Finish(cacheStats); err != nil {
		fatal(err)
	}
}

// suiteDedupStudy runs the -suite-dedup mode: one shared selection over
// every workload in the suite, one simulation per cross-workload
// representative, and a per-app comparison against the per-app PKS
// pipeline — selection errors, end-to-end errors, and the total
// warp-instruction savings the shared representatives buy.
func suiteDedupStudy(cfg core.Config, ws []*workload.Workload) error {
	dev := cfg.Device
	fmt.Printf("suite      %d workloads on %s\n", len(ws), dev.Name)
	for _, w := range ws {
		fmt.Printf("  %-40s %8d kernels\n", w.FullName(), w.N)
	}

	opts := dedup.Options{
		TargetErrorPct: cfg.PKS.TargetErrorPct,
		MaxK:           cfg.PKS.MaxK,
		Seed:           cfg.PKS.Seed,
	}
	if cfg.Obs != nil {
		opts.Audit = cfg.Obs.Audit
		opts.Metrics = cfg.Obs.DedupMetrics()
	}
	suite, err := dedup.Select(dev, ws, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nSuite-level dedup selection\n")
	fmt.Printf("  pooled kernels        %d of %d launches\n", suite.PooledKernels, suite.TotalKernels)
	fmt.Printf("  shared groups (K)     %d\n", suite.K)
	fmt.Printf("  suite error           %.2f%% (silicon, target %.1f%%, per-app bound %.1f%%)\n",
		suite.SuiteErrorPct, suite.TargetErrorPct, suite.PerAppErrorPct)
	fmt.Printf("  profiling time        %s (modeled)\n", report.Seconds(suite.ProfilingSeconds))

	run, err := dedup.Run(cfg, ws, suite, false)
	if err != nil {
		return err
	}

	// Per-app baseline: each workload's own PKS selection and sampled run,
	// the "before" column of every number below.
	tab := &report.Table{Columns: []string{"Workload", "Kernels", "PKS K", "PKS err%", "Dedup reps", "Dedup err%"}}
	var perAppWork int64
	for a, w := range ws {
		sel, err := pks.Select(dev, w, cfg.PKSOptions())
		if err != nil {
			return err
		}
		solo, err := core.RunSampled(cfg, w, sel, false)
		if err != nil {
			return err
		}
		perAppWork += solo.SimWarpInstrs
		sil, err := sampling.SiliconTotal(dev, w)
		if err != nil {
			return err
		}
		soloErr := stats.AbsPctErr(float64(solo.ProjCycles), float64(sil.Cycles))
		dedupErr := stats.AbsPctErr(float64(run.Apps[a].ProjCycles), float64(sil.Cycles))
		tab.AddRow(w.FullName(), fmt.Sprint(w.N),
			fmt.Sprint(sel.K), fmt.Sprintf("%.2f", soloErr),
			fmt.Sprint(suite.Apps[a].ActiveReps), fmt.Sprintf("%.2f", dedupErr))
	}
	fmt.Println()
	fmt.Println(tab)

	fmt.Printf("simulated warp instructions\n")
	fmt.Printf("  per-app PKS           %d\n", perAppWork)
	fmt.Printf("  suite dedup           %d\n", run.SimWarpInstrs)
	if run.SimWarpInstrs > 0 {
		fmt.Printf("  savings               %.2fx fewer (%s -> %s at the modeled rate)\n",
			float64(perAppWork)/float64(run.SimWarpInstrs),
			report.Hours(cfg.SimHours(perAppWork)), report.Hours(run.SimHours))
	}
	return nil
}

// printSelection renders the Principal Kernel Selection block. Both the
// batch and streaming paths go through it, so a streamed study's stdout
// stays byte-identical to the batch run.
func printSelection(sel *pks.Selection, target float64, jsonOut string) error {
	fmt.Printf("\nPrincipal Kernel Selection\n")
	fmt.Printf("  groups (K)            %d\n", sel.K)
	fmt.Printf("  two-level profiling   %v (%d of %d kernels detailed)\n", sel.TwoLevel, sel.DetailedKernels, sel.TotalKernels)
	if sel.TwoLevel {
		fmt.Printf("  classifier accuracy   %.3f\n", sel.ClassifierAccuracy)
	}
	fmt.Printf("  profiling time        %s (modeled)\n", report.Seconds(sel.ProfilingSeconds))
	fmt.Printf("  selection error       %.2f%% (silicon, target %.1f%%)\n", sel.SelectionErrorPct, target)
	fmt.Printf("  silicon speedup       %.1fx\n", sel.SiliconSpeedup)
	tab := &report.Table{Columns: []string{"Group", "Rep kernel ID", "Rep name", "Population"}}
	for gi, g := range sel.Groups {
		tab.AddRow(fmt.Sprint(gi), fmt.Sprint(g.RepIndex), g.Representative.Name, fmt.Sprint(g.Count()))
	}
	fmt.Println()
	fmt.Println(tab)
	if jsonOut != "" {
		if err := sel.SaveJSON(jsonOut); err != nil {
			return err
		}
		fmt.Printf("selection written to %s\n\n", jsonOut)
	}
	return nil
}

// printSimulation renders the sampled-simulation block, shared between the
// batch and streaming paths.
func printSimulation(ev *core.Evaluation) {
	fmt.Printf("simulation (modeled Accel-Sim rate %.0f warp-instr/s)\n", core.DefaultSimRate)
	if ev.Full != nil {
		fmt.Printf("  full simulation       %s, error %.1f%% vs silicon\n",
			report.Hours(ev.FullSimHours), ev.FullErrorPct)
	} else {
		fmt.Printf("  full simulation       infeasible (projected %s)\n", report.Hours(ev.FullSimHours))
	}
	fmt.Printf("  PKS                   %s (%.1fx), error %.1f%%\n",
		report.Hours(ev.PKS.SimHours), ev.PKS.SpeedupVsFull, ev.PKS.ErrorPct)
	fmt.Printf("  PKA (PKS+PKP)         %s (%.1fx), error %.1f%%\n",
		report.Hours(ev.PKA.SimHours), ev.PKA.SpeedupVsFull, ev.PKA.ErrorPct)
	fmt.Printf("  PKA projected DRAM    %.1f%%\n", ev.PKA.DRAMUtil*100)
}

// streamStudy runs the -stream mode: decode the NDJSON event stream, push
// every launch through the streaming runner (profiling, advisory
// clustering, and speculative simulation overlap event arrival), then
// reconcile and print the study through the exact same rendering as the
// batch path. The speculation scorecard goes to stderr so stdout diffs
// clean against the batch run.
func streamStudy(cfg core.Config, path string, target float64, jsonOut string) error {
	var rd io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	dec := workload.NewEventDecoder(rd)
	h, err := dec.Header()
	if err != nil {
		return err
	}
	fmt.Printf("workload   %s/%s (%d kernels) on %s\n", h.Suite, h.Name, h.Kernels, cfg.Device.Name)
	if reg := workload.Find(h.Suite + "/" + h.Name); reg != nil && reg.Quirk != "" {
		fmt.Printf("quirk      %s (the paper excludes this workload from some result columns)\n", reg.Quirk)
	}

	r, err := core.NewStreamRunner(cfg, h.Suite, h.Name, h.Kernels, core.StreamOptions{})
	if err != nil {
		return err
	}
	for {
		k, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := r.Push(k); err != nil {
			return err
		}
	}
	if n := dec.Missing(); n > 0 {
		return fmt.Errorf("event stream ended with %d of %d launches missing", n, h.Kernels)
	}
	res, err := r.Finish()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stream: %d cluster revision(s), %d speculative warm(s): %d hit, %d demoted, overlap %.0f%%\n",
		res.Resweeps, res.Spec.Launched, res.Spec.Hits, res.Spec.Demoted, res.Spec.OverlapFraction*100)
	if err := printSelection(res.Selection, target, jsonOut); err != nil {
		return err
	}
	printSimulation(res.Evaluation)
	return nil
}

// emitEventStream writes the workload as an NDJSON kernel-event stream.
func emitEventStream(w *workload.Workload, path string) error {
	if path == "-" {
		return workload.WriteEvents(os.Stdout, w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteEvents(f, w); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "event stream written to %s\n", path)
	return nil
}

// writeFlight persists the provenance recorder as NDJSON.
func writeFlight(flight *sampling.FlightRecorder, path string) error {
	g, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := flight.WriteNDJSON(g); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	fmt.Printf("flight recorder written to %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pka:", err)
	os.Exit(1)
}
