package pkp

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/sim"
)

// TestAuditRecordsReproduceStopCondition runs a kernel that reliably
// stabilizes and checks that the decision-audit stream carries enough
// evidence to re-derive the stop from the log alone: the recorded drift CV
// actually satisfies the recorded threshold, the wave constraint was met
// in the recorded wave state, and the stop cycle matches the projector.
func TestAuditRecordsReproduceStopCondition(t *testing.T) {
	audit := obs.NewAudit()
	pm := obs.NewObserver().PKPMetrics()
	p := New(Options{Audit: audit, AuditSubject: "steady", Metrics: pm})
	k := steadyKernel(6400)
	res, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stable() || !res.StoppedEarly {
		t.Fatalf("steady kernel never stabilized (completed %d/%d)", res.BlocksCompleted, res.BlocksTotal)
	}

	stops := audit.Filter("pkp", "stop")
	if len(stops) != 1 {
		t.Fatalf("got %d stop records, want 1", len(stops))
	}
	r := stops[0]
	if r.Subject != "steady" {
		t.Errorf("stop subject = %q, want steady", r.Subject)
	}
	if r.Cycle != p.StableAt() {
		t.Errorf("stop record cycle %d != StableAt %d", r.Cycle, p.StableAt())
	}
	// The stop condition, re-derived from the record's own fields.
	if r.Fields["threshold"] != DefaultThreshold {
		t.Errorf("recorded threshold %v, want default %v", r.Fields["threshold"], DefaultThreshold)
	}
	if cv := r.Fields["drift_cv"]; cv < 0 || cv >= r.Fields["threshold"] {
		t.Errorf("recorded drift CV %v does not satisfy recorded threshold %v", cv, r.Fields["threshold"])
	}
	// 6400 blocks is >= 2 waves, so the wave constraint required the second
	// wave to have completed before the stop fired.
	if ws := r.Fields["wave_size"]; r.Fields["blocks_total"] >= 2*ws {
		if r.Fields["wave2_at"] < 0 || r.Fields["blocks_completed"] < 2*ws {
			t.Errorf("stop fired before second wave: wave2_at=%v blocks_completed=%v wave_size=%v",
				r.Fields["wave2_at"], r.Fields["blocks_completed"], ws)
		}
	} else {
		t.Fatalf("test kernel not >= 2 waves deep (total=%v wave=%v)", r.Fields["blocks_total"], ws)
	}

	// The projection record ties the extrapolation back to the same stop.
	proj := p.Projection(res)
	projRecs := audit.Filter("pkp", "projection")
	if len(projRecs) != 1 {
		t.Fatalf("got %d projection records, want 1", len(projRecs))
	}
	pf := projRecs[0].Fields
	if pf["stable"] != 1 || pf["truncated"] != 1 {
		t.Errorf("projection record stable=%v truncated=%v, want 1/1", pf["stable"], pf["truncated"])
	}
	if pf["stable_at"] != float64(p.StableAt()) {
		t.Errorf("projection stable_at %v != StableAt %d", pf["stable_at"], p.StableAt())
	}
	if pf["simulated_cycles"] != float64(res.Cycles) || pf["projected_cycles"] != float64(proj.Cycles) {
		t.Errorf("projection record cycles %v/%v != result %d/%d",
			pf["simulated_cycles"], pf["projected_cycles"], res.Cycles, proj.Cycles)
	}
	if pf["projected_cycles"] <= pf["simulated_cycles"] {
		t.Error("projection record shows no extrapolated work")
	}

	// Metrics moved in lockstep with the audit stream.
	if pm.Stops.Value() != 1 {
		t.Errorf("stops counter = %d, want 1", pm.Stops.Value())
	}
	if pm.StopCycle.Count() != 1 || pm.DriftCV.Count() != 1 {
		t.Errorf("stop histograms count %d/%d, want 1/1", pm.StopCycle.Count(), pm.DriftCV.Count())
	}
}
