// Package pkp implements Principal Kernel Projection, the paper's
// intra-kernel reduction (Section 3.2). A Projector rides along inside the
// cycle-level simulator as a Controller, tracking the rolling standard
// deviation of the kernel's IPC over the last n cycles (n = 3000). Once the
// normalized deviation drops below the stability threshold s (default
// 0.25) — and, for kernels larger than one wave, enough thread blocks have
// retired that steady-state resource contention is captured — simulation
// stops and the remaining cycles are projected linearly from the
// unfinished thread blocks. The method is borrowed from stock-price
// stability detection; its GPU justification is that thread lifetimes are
// short and grids execute one code phase, so aggregate IPC converges even
// for irregular programs (paper Figure 5).
//
// Two signal-processing details matter on a cycle-accurate substrate:
//
//   - The raw per-cycle issue count of any memory-bound kernel is bursty
//     (warps convoy behind the DRAM queue), so the detector smooths the
//     signal into fixed-size cycle buckets and then watches the *drift* of
//     the n-cycle rolling mean — the moving-average convergence the
//     stock-price analogy actually describes. A stationary-but-noisy IPC
//     is stable; a ramping one is not.
//
//   - Uniform kernels retire thread blocks in synchronized wave bursts,
//     so a completion rate measured over any window shorter than a wave
//     aliases badly. When the grid is at least two waves deep, the
//     projector times the gap between the first and second wave
//     completions and projects from that; for shallower grids it falls
//     back to the lifetime average, and for sub-wave grids (no completions
//     at all when stability fires) it projects from instruction progress.
package pkp

import (
	"pka/internal/obs"
	"pka/internal/sim"
	"pka/internal/stats"
)

// Defaults from the paper: one threshold and one window for all 147
// workloads — no per-workload tuning.
const (
	DefaultThreshold = 0.25
	DefaultWindow    = 3000
	// BucketCycles is the smoothing granularity of the IPC signal.
	BucketCycles = 100
	// driftSpan is how many rolling-mean observations the drift detector
	// compares (driftSpan * BucketCycles cycles of mean history).
	driftSpan = 15
)

// Options configures a Projector.
type Options struct {
	// Threshold is s: the normalized dispersion of the windowed IPC below
	// which the signal is quasi-stable. Zero applies DefaultThreshold.
	Threshold float64
	// Window is n, the rolling window length in cycles. Zero applies
	// DefaultWindow.
	Window int
	// DisableWaveConstraint drops the requirement that full waves of
	// thread blocks retire before stopping (ablation; the paper argues
	// the constraint is needed to capture contention).
	DisableWaveConstraint bool

	// Audit, when non-nil, receives a decision record for the first
	// wave-constraint hold, the stop decision itself (cycle, rolling-mean
	// drift, wave state), and the projection computed from the truncated
	// run. Records are emitted at most a handful of times per kernel —
	// never on the per-cycle path — so auditing cannot slow the detector.
	Audit *obs.Audit
	// AuditSubject labels this projector's audit records (typically the
	// kernel name).
	AuditSubject string
	// Metrics, when non-nil, receives stop counters and stop-cycle /
	// drift-CV histograms.
	Metrics *obs.PKPMetrics
}

func (o Options) filled() Options {
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	return o
}

// Projector detects IPC stability online. It implements sim.Controller.
type Projector struct {
	opts    Options
	rolling *stats.Rolling // window of bucket-mean IPC samples
	drift   *stats.Rolling // recent history of the rolling mean

	bucketInstr  float64
	bucketCycles int64

	// Wave timing: cycle at which the first and second full waves of
	// thread blocks completed (-1 = not yet).
	wave1At, wave2At int64

	stableAt   int64
	sawStable  bool
	waveHeldAt int64 // first cycle a stable signal was held by the wave constraint (-1 = never)
}

// New returns a Projector with the given options.
func New(opts Options) *Projector {
	o := opts.filled()
	buckets := o.Window / BucketCycles
	if buckets < 2 {
		buckets = 2
	}
	return &Projector{
		opts:       o,
		rolling:    stats.NewRolling(buckets),
		drift:      stats.NewRolling(driftSpan),
		stableAt:   -1,
		wave1At:    -1,
		wave2At:    -1,
		waveHeldAt: -1,
	}
}

// Tick implements sim.Controller.
func (p *Projector) Tick(t *sim.Telemetry) bool {
	p.bucketInstr += t.IssuedThisCycle
	p.bucketCycles += 1 + t.IdleGap // idle cycles are genuine zero-IPC time

	if p.bucketCycles >= BucketCycles {
		p.rolling.Push(p.bucketInstr / float64(p.bucketCycles))
		p.bucketInstr = 0
		p.bucketCycles = 0
		if p.rolling.Full() {
			p.drift.Push(p.rolling.Mean())
		}
	}

	if t.WaveSize > 0 {
		if p.wave1At < 0 && t.BlocksCompleted >= t.WaveSize {
			p.wave1At = t.Cycle
		}
		if p.wave2At < 0 && t.BlocksCompleted >= 2*t.WaveSize {
			p.wave2At = t.Cycle
		}
	}

	if !p.drift.Full() {
		return false
	}
	if p.drift.CoefVar() >= p.opts.Threshold {
		return false
	}
	// Quasi-stable. Enforce the wave constraint unless the grid is
	// smaller than a wave (paper: small grids never reach a full wave and
	// are stopped on stability alone). Grids at least two waves deep wait
	// for the second wave so the completion rate can be measured free of
	// the cold-start wave.
	if !p.opts.DisableWaveConstraint && t.BlocksTotal > t.WaveSize {
		held := false
		if t.BlocksTotal >= 2*t.WaveSize {
			held = p.wave2At < 0
		} else {
			held = p.wave1At < 0
		}
		if held {
			if p.waveHeldAt < 0 {
				p.waveHeldAt = t.Cycle
				if m := p.opts.Metrics; m != nil {
					m.WaveHolds.Inc()
				}
				p.audit("wave-hold", t)
			}
			return false
		}
	}
	p.sawStable = true
	p.stableAt = t.Cycle
	if m := p.opts.Metrics; m != nil {
		m.Stops.Inc()
		m.StopCycle.Observe(float64(t.Cycle))
		m.DriftCV.Observe(p.drift.CoefVar())
	}
	p.audit("stop", t)
	return true
}

// audit logs one decision record carrying everything the stop condition
// was evaluated on, so the decision can be re-derived from the log alone.
func (p *Projector) audit(event string, t *sim.Telemetry) {
	if p.opts.Audit == nil {
		return
	}
	p.opts.Audit.Record("pkp", event, p.opts.AuditSubject, t.Cycle, map[string]float64{
		"drift_cv":         p.drift.CoefVar(),
		"threshold":        p.opts.Threshold,
		"window_cycles":    float64(p.opts.Window),
		"rolling_mean_ipc": p.rolling.Mean(),
		"blocks_completed": float64(t.BlocksCompleted),
		"blocks_total":     float64(t.BlocksTotal),
		"wave_size":        float64(t.WaveSize),
		"wave1_at":         float64(p.wave1At),
		"wave2_at":         float64(p.wave2At),
		"warp_instrs":      float64(t.WarpInstrs),
	})
}

// Stable reports whether stability was detected before kernel completion.
func (p *Projector) Stable() bool { return p.sawStable }

// StableAt returns the cycle stability fired at, or -1.
func (p *Projector) StableAt() int64 { return p.stableAt }

// Projection extrapolates full-kernel statistics from a (possibly
// truncated) simulation result.
type Projection struct {
	// Cycles is the projected end-to-end kernel cycle count.
	Cycles int64
	// ThreadInstrs is the projected executed thread instructions.
	ThreadInstrs float64
	// IPC is the projected kernel IPC.
	IPC float64
	// DRAMUtil and L2MissRate carry the measured steady-state rates
	// forward (rates, unlike counts, need no scaling).
	DRAMUtil   float64
	L2MissRate float64
	// SimulatedCycles and SimulatedWarpInstrs are what was actually
	// simulated — the cost side of the speedup ledger.
	SimulatedCycles     int64
	SimulatedWarpInstrs int64
	// Truncated reports whether any extrapolation happened.
	Truncated bool
}

// Projection extrapolates the result of the run this Projector controlled.
// When the run saw two complete waves, the per-block rate comes from the
// inter-wave gap (immune to both the launch ramp and wave-burst aliasing);
// otherwise it degrades like Project.
func (p *Projector) Projection(res *sim.KernelResult) Projection {
	pr := baseProjection(res)
	waveGap := pr.Truncated && p.wave1At >= 0 && p.wave2At > p.wave1At && res.WaveSize > 0
	if waveGap {
		perBlock := float64(p.wave2At-p.wave1At) / float64(res.WaveSize)
		unfinished := res.BlocksTotal - res.BlocksCompleted
		pr.Cycles = res.Cycles + int64(perBlock*float64(unfinished))
		if res.BlocksCompleted > 0 {
			pr.ThreadInstrs = res.ThreadInstrs * float64(res.BlocksTotal) / float64(res.BlocksCompleted)
		}
		if pr.Cycles > 0 {
			pr.IPC = pr.ThreadInstrs / float64(pr.Cycles)
		}
	}
	if p.opts.Audit != nil {
		truncated, wg, stable := 0.0, 0.0, 0.0
		if pr.Truncated {
			truncated = 1
		}
		if waveGap {
			wg = 1
		}
		if p.sawStable {
			stable = 1
		}
		// The record carries the detector's full stop condition (drift CV
		// versus threshold, stability verdict, stop cycle) alongside the
		// projection, so stop and no-stop decisions alike can be re-derived
		// from the log.
		p.opts.Audit.Record("pkp", "projection", p.opts.AuditSubject, res.Cycles, map[string]float64{
			"truncated":        truncated,
			"wave_gap_rate":    wg,
			"stable":           stable,
			"stable_at":        float64(p.stableAt),
			"drift_cv":         p.drift.CoefVar(),
			"threshold":        p.opts.Threshold,
			"simulated_cycles": float64(pr.SimulatedCycles),
			"projected_cycles": float64(pr.Cycles),
			"projected_ipc":    pr.IPC,
			"blocks_completed": float64(res.BlocksCompleted),
			"blocks_total":     float64(res.BlocksTotal),
		})
	}
	return pr
}

// Project converts a simulation result into full-kernel projections
// without online state: lifetime-average block rate when completions
// exist, instruction-progress scaling otherwise (cyclesLeft =
// unfinishedBlocks * elapsed / finishedBlocks, per the paper). It serves
// results truncated by other means (instruction budgets, cycle caps);
// prefer Projector.Projection for PKP-controlled runs.
func Project(res *sim.KernelResult) Projection {
	return baseProjection(res)
}

func baseProjection(res *sim.KernelResult) Projection {
	pr := Projection{
		Cycles:              res.Cycles,
		ThreadInstrs:        res.ThreadInstrs,
		IPC:                 res.IPC,
		DRAMUtil:            res.DRAMUtil,
		L2MissRate:          res.L2MissRate,
		SimulatedCycles:     res.Cycles,
		SimulatedWarpInstrs: res.WarpInstrs,
	}
	if !res.StoppedEarly || res.BlocksCompleted >= res.BlocksTotal {
		return pr
	}
	pr.Truncated = true
	unfinished := res.BlocksTotal - res.BlocksCompleted
	switch {
	case res.BlocksCompleted > 0:
		perBlock := float64(res.Cycles) / float64(res.BlocksCompleted)
		pr.Cycles = res.Cycles + int64(perBlock*float64(unfinished))
		scale := float64(res.BlocksTotal) / float64(res.BlocksCompleted)
		pr.ThreadInstrs = res.ThreadInstrs * scale
	case res.WarpInstrs > 0 && res.ExpectedWarpInstrs > res.WarpInstrs:
		// No block ever retired (sub-wave grids stopped on stability
		// alone): blocks run concurrently, so block-granularity scaling
		// would massively overestimate. Scale by instruction progress
		// instead.
		scale := float64(res.ExpectedWarpInstrs) / float64(res.WarpInstrs)
		pr.Cycles = int64(float64(res.Cycles) * scale)
		pr.ThreadInstrs = res.ThreadInstrs * scale
	default:
		pr.Cycles = res.Cycles * int64(res.BlocksTotal)
		pr.ThreadInstrs = res.ThreadInstrs * float64(res.BlocksTotal)
	}
	if pr.Cycles > 0 {
		pr.IPC = pr.ThreadInstrs / float64(pr.Cycles)
	}
	return pr
}
