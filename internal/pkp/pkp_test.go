package pkp

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/sim"
	"pka/internal/trace"
)

func steadyKernel(blocks int) trace.KernelDesc {
	return trace.KernelDesc{
		Name: "steady", Grid: trace.D1(blocks), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 120, GlobalLoads: 4},
		CoalescingFactor: 4, WorkingSetBytes: 1 << 20, StridedFraction: 0.95,
		DivergenceEff: 1, Seed: 5,
	}
}

func irregularKernel(blocks int) trace.KernelDesc {
	return trace.KernelDesc{
		Name: "irregular", Grid: trace.D1(blocks), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 20, GlobalLoads: 10, GlobalAtomics: 1},
		CoalescingFactor: 14, WorkingSetBytes: 256 << 20, StridedFraction: 0.2,
		DivergenceEff: 0.5, BlockImbalance: 1.0, Seed: 6,
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Options{})
	if p.opts.Threshold != DefaultThreshold || p.opts.Window != DefaultWindow {
		t.Errorf("defaults not applied: %+v", p.opts)
	}
	if p.StableAt() != -1 || p.Stable() {
		t.Error("fresh projector claims stability")
	}
}

func TestStopsSteadyKernelEarly(t *testing.T) {
	k := steadyKernel(6400) // 10 waves at 640-block occupancy
	s := sim.New(gpu.VoltaV100())
	p := New(Options{})
	res, err := s.RunKernel(&k, sim.Options{Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stable() || !res.StoppedEarly {
		t.Fatalf("steady kernel never stabilized (completed %d/%d)", res.BlocksCompleted, res.BlocksTotal)
	}
	if res.BlocksCompleted < res.WaveSize {
		t.Errorf("stopped before a full wave: %d < %d", res.BlocksCompleted, res.WaveSize)
	}
	if res.BlocksCompleted >= res.BlocksTotal {
		t.Error("no work was actually skipped")
	}
}

func TestProjectionAccuracyOnSteadyKernel(t *testing.T) {
	k := steadyKernel(6400)
	full, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{})
	truncated, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Projection(truncated)
	if !proj.Truncated {
		t.Fatal("projection not marked truncated")
	}
	errPct := 100 * abs(float64(proj.Cycles)-float64(full.Cycles)) / float64(full.Cycles)
	if errPct > 15 {
		t.Errorf("steady-kernel projection error %.1f%% (proj %d vs full %d)", errPct, proj.Cycles, full.Cycles)
	}
	if proj.SimulatedCycles >= full.Cycles {
		t.Error("projection did not save simulation work")
	}
}

func TestIrregularKernelStillStabilizes(t *testing.T) {
	// Paper Figure 5b: BFS stabilizes in aggregate despite divergence.
	k := irregularKernel(12800)
	p := New(Options{})
	res, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stable() {
		t.Fatalf("irregular kernel did not stabilize at s=%v (completed %d/%d)",
			DefaultThreshold, res.BlocksCompleted, res.BlocksTotal)
	}
	proj := p.Projection(res)
	full, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 5 reports 68.1% mean error at s=0.25 on its
	// irregular example; anything in that regime is faithful.
	errPct := 100 * abs(float64(proj.Cycles)-float64(full.Cycles)) / float64(full.Cycles)
	if errPct > 100 {
		t.Errorf("irregular projection error %.1f%%, want <= 100%%", errPct)
	}
}

func TestTighterThresholdRunsLonger(t *testing.T) {
	k := steadyKernel(6400)
	stops := map[float64]int64{}
	for _, s := range []float64{2.5, 0.25, 0.025} {
		p := New(Options{Threshold: s})
		res, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: p})
		if err != nil {
			t.Fatal(err)
		}
		stops[s] = res.Cycles
	}
	if !(stops[2.5] <= stops[0.25] && stops[0.25] <= stops[0.025]) {
		t.Errorf("stop cycles not monotone in threshold: %v", stops)
	}
}

func TestWaveConstraintDelaysStop(t *testing.T) {
	k := steadyKernel(6400)
	with := New(Options{})
	rWith, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: with})
	if err != nil {
		t.Fatal(err)
	}
	without := New(Options{DisableWaveConstraint: true})
	rWithout, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: without})
	if err != nil {
		t.Fatal(err)
	}
	if rWithout.Cycles > rWith.Cycles {
		t.Errorf("disabling the wave constraint should stop no later (%d vs %d)", rWithout.Cycles, rWith.Cycles)
	}
	if rWith.BlocksCompleted < rWith.WaveSize {
		t.Error("wave constraint violated")
	}
}

func TestSubWaveGridIgnoresWaveConstraint(t *testing.T) {
	// 100 blocks is far less than a wave (640): the paper drops the
	// constraint for such kernels. Give the kernel enough per-block work
	// that 3000 stable cycles can elapse before it finishes.
	k := steadyKernel(100)
	k.Mix.Compute = 6000
	p := New(Options{})
	res, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{Controller: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksTotal > res.WaveSize {
		t.Fatalf("test setup wrong: %d blocks vs wave %d", res.BlocksTotal, res.WaveSize)
	}
	if p.Stable() && res.BlocksCompleted >= res.WaveSize {
		t.Error("sub-wave grid should be stoppable before a wave completes")
	}
}

func TestProjectCompletedRunIsIdentity(t *testing.T) {
	k := steadyKernel(320)
	res, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	proj := Project(res)
	if proj.Truncated || proj.Cycles != res.Cycles || proj.ThreadInstrs != res.ThreadInstrs {
		t.Errorf("identity projection violated: %+v vs %+v", proj, res)
	}
}

func TestProjectZeroCompletedBlocks(t *testing.T) {
	res := &sim.KernelResult{
		Cycles: 1000, ThreadInstrs: 5000, BlocksCompleted: 0, BlocksTotal: 4,
		StoppedEarly: true,
	}
	proj := Project(res)
	if proj.Cycles != 4000 || proj.ThreadInstrs != 20000 {
		t.Errorf("zero-completion projection: %+v", proj)
	}
}

func TestProjectedMetricsScale(t *testing.T) {
	res := &sim.KernelResult{
		Cycles: 1000, ThreadInstrs: 10000, WarpInstrs: 400,
		BlocksCompleted: 10, BlocksTotal: 40,
		DRAMUtil: 0.7, L2MissRate: 0.4, StoppedEarly: true,
	}
	proj := Project(res)
	if proj.Cycles != 4000 {
		t.Errorf("cycles = %d, want 4000", proj.Cycles)
	}
	if proj.ThreadInstrs != 40000 {
		t.Errorf("thread instrs = %v, want 40000", proj.ThreadInstrs)
	}
	if proj.DRAMUtil != 0.7 || proj.L2MissRate != 0.4 {
		t.Error("rate metrics should carry forward unscaled")
	}
	if proj.SimulatedCycles != 1000 || proj.SimulatedWarpInstrs != 400 {
		t.Error("simulated-cost fields wrong")
	}
	if proj.IPC != 10 {
		t.Errorf("projected IPC = %v", proj.IPC)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
