package cluster

import "math"

// SweepEval scores one fitted clustering during a K sweep. It returns the
// clustering's error metric and whether the sweep should stop here (the
// error met its target). Implementations own whatever telemetry they want
// to attach per step — audits, counters — which keeps this file free of
// policy.
type SweepEval func(k int, res *KMeansResult) (errPct float64, stop bool)

// Sweep is the paper's K-selection loop, shared by per-workload PKS and
// the suite-level dedup pass: fit K = 1..maxK over the dataset, score
// each clustering with eval, and choose the first K whose score stops the
// sweep — or, if none does, the lowest-scoring K tried. seedFor derives
// the k-means++ seed per K so sweeps are reproducible.
//
// The Dataset's scratch buffers are reused across every fit, which is
// why the sweep lives on Dataset rather than refitting throwaway copies.
// Returns the chosen clustering and the per-K error trace (index 0 is
// K=1).
func (ds *Dataset) Sweep(maxK int, seedFor func(k int) uint64, eval SweepEval) (*KMeansResult, []float64, error) {
	if maxK > ds.N() {
		maxK = ds.N()
	}
	var (
		sweep   []float64
		best    *KMeansResult
		bestErr = math.Inf(1)
	)
	for k := 1; k <= maxK; k++ {
		res, err := ds.KMeans(k, KMeansOptions{Seed: seedFor(k)})
		if err != nil {
			return nil, nil, err
		}
		errPct, stop := eval(k, res)
		sweep = append(sweep, errPct)
		if errPct < bestErr {
			bestErr, best = errPct, res
		}
		if stop {
			best = res
			break
		}
	}
	return best, sweep, nil
}
