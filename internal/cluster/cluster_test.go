package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"pka/internal/stats"
)

// threeBlobs returns 3*per points in well-separated clusters around the
// given centers.
func threeBlobs(per int, seed uint64) ([][]float64, [][]float64) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 8}}
	rng := stats.NewRNG(seed)
	var pts [][]float64
	for _, c := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5})
		}
	}
	return pts, centers
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts, trueCenters := threeBlobs(50, 1)
	res, err := KMeans(pts, 3, KMeansOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// Each blob of 50 consecutive points must be in a single cluster.
	for b := 0; b < 3; b++ {
		first := res.Assignment[b*50]
		for i := 1; i < 50; i++ {
			if res.Assignment[b*50+i] != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	// Each fitted center should be near some true center.
	for _, ctr := range res.Centers {
		best := math.Inf(1)
		for _, tc := range trueCenters {
			best = math.Min(best, math.Sqrt(sqDist(ctr, tc)))
		}
		if best > 1.0 {
			t.Errorf("fitted center %v far from any true center (%.2f)", ctr, best)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := threeBlobs(30, 9)
	a, err := KMeans(pts, 4, KMeansOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 4, KMeansOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 2, KMeansOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 0, KMeansOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, 1, KMeansOptions{}); err == nil {
		t.Error("ragged points accepted")
	}
	// k greater than n clamps to n.
	res, err := KMeans([][]float64{{0}, {5}}, 10, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Errorf("K clamped to %d, want 2", res.K)
	}
	// All-identical points: must not loop forever or produce NaNs.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	res, err = KMeans(same, 2, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}

func TestKMeansK1EqualsMean(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}, {4, 4}}
	res, err := KMeans(pts, 1, KMeansOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centers[0][0]-2) > 1e-9 || math.Abs(res.Centers[0][1]-2) > 1e-9 {
		t.Errorf("k=1 center = %v, want [2 2]", res.Centers[0])
	}
	for _, a := range res.Assignment {
		if a != 0 {
			t.Fatal("k=1 produced assignment != 0")
		}
	}
}

func TestKMeansMembersAndNearest(t *testing.T) {
	pts, _ := threeBlobs(10, 4)
	res, err := KMeans(pts, 3, KMeansOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < res.K; c++ {
		ms := res.Members(c)
		total += len(ms)
		for _, i := range ms {
			if res.Assignment[i] != c {
				t.Fatal("Members returned a point assigned elsewhere")
			}
		}
	}
	if total != len(pts) {
		t.Errorf("Members cover %d points, want %d", total, len(pts))
	}
	if got := res.NearestCenter(pts[0]); got != res.Assignment[0] {
		t.Errorf("NearestCenter = %d, assignment = %d", got, res.Assignment[0])
	}
}

// Property: every cluster returned by KMeans is non-empty whenever there
// are at least k distinct points, and inertia never exceeds the k=1
// inertia.
func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed uint32, kRaw uint8) bool {
		rng := stats.NewRNG(uint64(seed))
		n := 20 + rng.Intn(30)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		}
		k := int(kRaw%5) + 1
		res, err := KMeans(pts, k, KMeansOptions{Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		for _, s := range res.Sizes {
			if s == 0 {
				return false
			}
		}
		base, err := KMeans(pts, 1, KMeansOptions{Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		return res.Inertia <= base.Inertia+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAgglomerativeMergesBlobs(t *testing.T) {
	pts, _ := threeBlobs(15, 5)
	assign, k, err := Agglomerative(pts, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("clusters = %d, want 3", k)
	}
	for b := 0; b < 3; b++ {
		first := assign[b*15]
		for i := 1; i < 15; i++ {
			if assign[b*15+i] != first {
				t.Fatalf("blob %d split", b)
			}
		}
	}
}

func TestAgglomerativeThresholdExtremes(t *testing.T) {
	pts, _ := threeBlobs(5, 6)
	// Tiny threshold: nothing merges.
	_, k, err := Agglomerative(pts, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if k != len(pts) {
		t.Errorf("tiny threshold gave %d clusters, want %d", k, len(pts))
	}
	// Huge threshold: everything merges.
	_, k, err = Agglomerative(pts, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("huge threshold gave %d clusters, want 1", k)
	}
}

func TestAgglomerativeScalingWall(t *testing.T) {
	pts := make([][]float64, MaxHierarchicalPoints+1)
	for i := range pts {
		pts[i] = []float64{0}
	}
	if _, _, err := Agglomerative(pts, 1); err != ErrTooManyPoints {
		t.Errorf("err = %v, want ErrTooManyPoints", err)
	}
	if _, _, err := Agglomerative(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAgglomerativeSinglePoint(t *testing.T) {
	assign, k, err := Agglomerative([][]float64{{1, 2}}, 1)
	if err != nil || k != 1 || assign[0] != 0 {
		t.Errorf("single point: assign=%v k=%d err=%v", assign, k, err)
	}
}
