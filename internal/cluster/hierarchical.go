package cluster

import (
	"errors"
	"math"
)

// MaxHierarchicalPoints bounds hierarchical clustering's input size. At
// this size the distance matrix alone costs ~3.2 GB of float64s; beyond it
// the TBPoint baseline is declared intractable, mirroring the paper's
// scalability argument against hierarchical approaches.
const MaxHierarchicalPoints = 20000

// ErrTooManyPoints reports that hierarchical clustering was asked to
// handle more points than its quadratic memory footprint allows.
var ErrTooManyPoints = errors.New("cluster: too many points for hierarchical clustering")

// Merge records one dendrogram join: clusters rooted at A and B (original
// point indices) joined at the given average-linkage height.
type Merge struct {
	A, B   int
	Height float64
}

// Dendrogram is the full average-linkage merge tree of a point set. Build
// it once, then Cut it at any number of thresholds — the access pattern of
// TBPoint's 20-point threshold sweep.
type Dendrogram struct {
	n      int
	merges []Merge
}

// BuildDendrogram computes the average-linkage dendrogram using a
// nearest-neighbour cache over an explicit distance matrix (O(n²) memory).
func BuildDendrogram(points [][]float64) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: no points")
	}
	if n > MaxHierarchicalPoints {
		return nil, ErrTooManyPoints
	}

	size := make([]int, n)
	active := make([]bool, n)
	for i := range size {
		size[i] = 1
		active[i] = true
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := math.Sqrt(sqDist(points[i], points[j]))
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	nn := make([]int, n)
	nnDist := make([]float64, n)
	refreshNN := func(i int) {
		nn[i] = -1
		nnDist[i] = math.Inf(1)
		row := dist[i]
		for j := 0; j < n; j++ {
			if j == i || !active[j] {
				continue
			}
			if row[j] < nnDist[i] {
				nn[i], nnDist[i] = j, row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		refreshNN(i)
	}

	d := &Dendrogram{n: n, merges: make([]Merge, 0, n-1)}
	for remaining := n; remaining > 1; remaining-- {
		bi, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if active[i] && nn[i] >= 0 && nnDist[i] < bd {
				bi, bd = i, nnDist[i]
			}
		}
		if bi < 0 {
			break
		}
		bj := nn[bi]
		d.merges = append(d.merges, Merge{A: bi, B: bj, Height: bd})

		// Lance-Williams average-linkage update, folding bj into bi.
		ni, nj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			v := (ni*dist[bi][k] + nj*dist[bj][k]) / (ni + nj)
			dist[bi][k] = v
			dist[k][bi] = v
		}
		size[bi] += size[bj]
		active[bj] = false

		refreshNN(bi)
		for k := 0; k < n; k++ {
			if !active[k] || k == bi {
				continue
			}
			if nn[k] == bi || nn[k] == bj {
				refreshNN(k)
			} else if dist[k][bi] < nnDist[k] {
				nn[k], nnDist[k] = bi, dist[k][bi]
			}
		}
	}
	return d, nil
}

// Cut returns the flat clustering obtained by applying every merge at or
// below the threshold: an assignment vector (cluster ids are dense,
// 0-based, ordered by first appearance) and the cluster count.
func (d *Dendrogram) Cut(threshold float64) ([]int, int) {
	parent := make([]int, d.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.merges {
		if m.Height > threshold {
			// Average-linkage merge heights are monotone non-decreasing,
			// so everything beyond this point is above the cut.
			break
		}
		ra, rb := find(m.A), find(m.B)
		if ra != rb {
			parent[rb] = ra
		}
	}
	assign := make([]int, d.n)
	label := map[int]int{}
	k := 0
	for i := 0; i < d.n; i++ {
		r := find(i)
		id, ok := label[r]
		if !ok {
			id = k
			label[r] = id
			k++
		}
		assign[i] = id
	}
	return assign, k
}

// NumPoints returns the size of the clustered point set.
func (d *Dendrogram) NumPoints() int { return d.n }

// Agglomerative performs average-linkage hierarchical clustering, merging
// until the nearest pair of clusters is farther apart than threshold. It
// returns the assignment vector and the number of clusters formed. For
// repeated cuts of the same point set, build a Dendrogram once instead.
func Agglomerative(points [][]float64, threshold float64) ([]int, int, error) {
	d, err := BuildDendrogram(points)
	if err != nil {
		return nil, 0, err
	}
	assign, k := d.Cut(threshold)
	return assign, k, nil
}
