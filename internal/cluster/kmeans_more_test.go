package cluster

import (
	"testing"

	"pka/internal/stats"
)

// TestPickWeightedFallback pins the k-means++ sampling edge: when
// accumulated rounding leaves the running sum short of the target, the
// draw must fall back to the last point with nonzero weight instead of
// silently returning index 0.
func TestPickWeightedFallback(t *testing.T) {
	d2 := []float64{1, 2, 0, 3, 0}
	// Normal operation: target inside the mass picks by running sum.
	if got := pickWeighted(d2, 0.5); got != 0 {
		t.Errorf("target 0.5: picked %d, want 0", got)
	}
	if got := pickWeighted(d2, 1.5); got != 1 {
		t.Errorf("target 1.5: picked %d, want 1", got)
	}
	if got := pickWeighted(d2, 6.0); got != 3 {
		t.Errorf("target 6.0 (== total): picked %d, want 3", got)
	}
	// Unreachable target (only possible through float rounding): must land
	// on the last nonzero-weight point, here index 3, not index 0.
	if got := pickWeighted(d2, 7.0); got != 3 {
		t.Errorf("unreachable target: picked %d, want 3 (last nonzero weight)", got)
	}
	// Degenerate all-zero weights: index 0 is the only sane answer.
	if got := pickWeighted([]float64{0, 0}, 1.0); got != 0 {
		t.Errorf("all-zero weights: picked %d, want 0", got)
	}
}

// TestRepairEmptyRefreshesDistances pins the empty-cluster repair: after
// the first empty cluster is re-seeded, the distances used to choose the
// next repair point must reflect the new center. Points 1 (at x=10) and 2
// (at x=10.1) are both far from center 0; under stale distances the second
// repair would pick point 2 (10.1 > 10 from origin), but after the first
// repair plants a center at x=20, point 2 sits nearer that center than
// point 1 does, so the refreshed metric picks point 1.
func TestRepairEmptyRefreshesDistances(t *testing.T) {
	pts := [][]float64{{0}, {10}, {10.1}, {20}}
	ds, err := NewDataset(pts)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	ds.centers = growF(ds.centers, k*ds.dim)
	ds.centers[0] = 0 // cluster 0 centered at origin; clusters 1, 2 empty
	assign := []int{0, 0, 0, 0}
	sizes := []int{4, 0, 0}
	dist := []float64{0, 100, 102.01, 400}

	if got := ds.repairEmpty(k, assign, sizes, dist); got != 2 {
		t.Fatalf("repaired %d clusters, want 2", got)
	}
	// First repair: the globally farthest point (x=20) seeds cluster 1.
	if ds.centers[1] != 20 {
		t.Errorf("cluster 1 center = %v, want 20", ds.centers[1])
	}
	// Second repair: with distances refreshed against the new center,
	// point 1 (x=10) is farther from everything than point 2 (x=10.1).
	if ds.centers[2] != 10 {
		t.Errorf("cluster 2 center = %v, want 10 (stale distances would give 10.1)", ds.centers[2])
	}
	for c, want := range []int{2, 1, 1} {
		if sizes[c] != want {
			t.Errorf("sizes[%d] = %d, want %d", c, sizes[c], want)
		}
	}
	if assign[3] != 1 || assign[1] != 2 {
		t.Errorf("assignments after repair = %v", assign)
	}
	// The repaired points' own distances are now zero.
	if dist[3] != 0 || dist[1] != 0 {
		t.Errorf("repaired points keep nonzero dist: %v", dist)
	}
}

// TestKMeansRepairsSurfaced verifies the Repairs counter: a dataset with
// far more requested clusters than natural ones forces re-seeding, and the
// result still has no empty cluster.
func TestKMeansRepairsSurfaced(t *testing.T) {
	// Two tight blobs, k=6: at least four clusters start empty-prone.
	rng := stats.NewRNG(3)
	var pts [][]float64
	for i := 0; i < 40; i++ {
		base := 0.0
		if i >= 20 {
			base = 100
		}
		pts = append(pts, []float64{base + rng.NormFloat64()*0.01})
	}
	res, err := KMeans(pts, 6, KMeansOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Sizes {
		if s == 0 {
			t.Errorf("cluster %d empty despite repair", c)
		}
	}
	if res.Repairs == 0 {
		t.Log("no repairs triggered for this seed; counter still zero-valid")
	}
}

// TestKMeansWorkerInvariance verifies the parallel assignment step: any
// worker count must produce results bit-identical to the serial run.
func TestKMeansWorkerInvariance(t *testing.T) {
	rng := stats.NewRNG(21)
	pts := make([][]float64, 3000) // > assignChunk so chunking engages
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.Float64()}
	}
	for k := 1; k <= 5; k++ {
		serial, err := KMeans(pts, k, KMeansOptions{Seed: uint64(k), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			par, err := KMeans(pts, k, KMeansOptions{Seed: uint64(k), Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if kmHash(par) != kmHash(serial) {
				t.Errorf("k=%d workers=%d: result differs from serial run", k, w)
			}
		}
	}
}

// TestDatasetReuseAcrossSweep verifies that interleaved fits on one
// Dataset match fresh-Dataset fits: scratch reuse must not leak state
// between calls.
func TestDatasetReuseAcrossSweep(t *testing.T) {
	pts, _ := threeBlobs(40, 13)
	ds, err := NewDataset(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Descending then ascending k stresses buffer shrink/grow paths.
	for _, k := range []int{6, 2, 5, 1, 6, 3} {
		got, err := ds.KMeans(k, KMeansOptions{Seed: uint64(10 + k)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := KMeans(pts, k, KMeansOptions{Seed: uint64(10 + k)})
		if err != nil {
			t.Fatal(err)
		}
		if kmHash(got) != kmHash(want) {
			t.Errorf("k=%d: reused Dataset differs from fresh fit", k)
		}
	}
}
