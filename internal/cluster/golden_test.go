package cluster

import (
	"math"
	"testing"

	"pka/internal/stats"
)

// kmHash folds a fitted clustering into an FNV-1a hash: every assignment,
// every center coordinate (bit pattern), sizes, inertia, and iteration
// count. Pinned constants below were recorded from the reference
// implementation (the straightforward full-scan Lloyd), so the
// bound-accelerated implementation must reproduce it bit for bit.
func kmHash(r *KMeansResult) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(r.K))
	mix(uint64(r.Iterations))
	mix(math.Float64bits(r.Inertia))
	for _, a := range r.Assignment {
		mix(uint64(a))
	}
	for _, s := range r.Sizes {
		mix(uint64(s))
	}
	for _, c := range r.Centers {
		for _, v := range c {
			mix(math.Float64bits(v))
		}
	}
	return h
}

// goldenPoints builds the three datasets the pins run over: separated
// blobs, a uniform cloud (no structure, exercises many Lloyd iterations),
// and a duplicate-heavy set (exercises ties and the k > distinct clamp).
func goldenPoints() map[string][][]float64 {
	blobs, _ := threeBlobs(60, 11)
	rng := stats.NewRNG(77)
	uniform := make([][]float64, 400)
	for i := range uniform {
		uniform[i] = []float64{rng.Float64() * 50, rng.Float64() * 50, rng.Float64() * 50}
	}
	dupes := make([][]float64, 0, 120)
	for i := 0; i < 120; i++ {
		v := float64(i % 7)
		dupes = append(dupes, []float64{v, -v})
	}
	return map[string][][]float64{"blobs": blobs, "uniform": uniform, "dupes": dupes}
}

func TestKMeansGoldenHashes(t *testing.T) {
	want := map[string][]uint64{
		"blobs":   {0x36fac25807975ec9, 0xa35c9ca3f67d4eb6, 0xaff1e591d4f2bef4, 0x098c19ae16c60339, 0x9f60e3a5b30f34bc, 0xc1e49757e16fa5bf},
		"uniform": {0x0fd54e1dcb4f1273, 0xffeb34fae89c7e22, 0xb82e26706dfef7cb, 0x6e1559f43eafaa5c, 0xfd65e7282aedbe88, 0xaab1cf05d5cd1180},
		"dupes":   {0x9e33d0302666389a, 0xaa030b2ffdfe70db, 0xc0587086229e30c7, 0x2b817c53bfc74082, 0x16ca04b95b22457a, 0xacb262e4c9faa1fa},
	}
	pts := goldenPoints()
	for name, hashes := range want {
		ds, err := NewDataset(pts[name])
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= len(hashes); k++ {
			res, err := ds.KMeans(k, KMeansOptions{Seed: uint64(100 + k)})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if got := kmHash(res); got != hashes[k-1] {
				t.Errorf("%s k=%d: hash %#016x, want %#016x (clustering output changed)", name, k, got, hashes[k-1])
			}
			// The convenience wrapper must agree with the Dataset path.
			res2, err := KMeans(pts[name], k, KMeansOptions{Seed: uint64(100 + k)})
			if err != nil {
				t.Fatal(err)
			}
			if kmHash(res2) != kmHash(res) {
				t.Errorf("%s k=%d: KMeans wrapper disagrees with Dataset.KMeans", name, k)
			}
		}
	}
}
