package cluster

import (
	"math"
	"testing"

	"pka/internal/stats"
)

// TestAppendMatchesBatchDataset pins that a Dataset grown point by point
// fits exactly the same clustering as one built in a single shot — the
// streaming layer relies on Append being invisible to KMeans.
func TestAppendMatchesBatchDataset(t *testing.T) {
	pts, _ := threeBlobs(40, 3)
	batch, err := NewDataset(pts)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewEmptyDataset(2)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave appends with fits, as the streaming layer does: scratch
	// grown by an early fit must not perturb later ones.
	for i, p := range pts {
		if err := grown.Append(p); err != nil {
			t.Fatal(err)
		}
		if i == 20 {
			if _, err := grown.KMeans(2, KMeansOptions{Seed: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := batch.KMeans(3, KMeansOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := grown.KMeans(3, KMeansOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Inertia != want.Inertia || got.Iterations != want.Iterations {
		t.Fatalf("grown fit diverged: inertia %v vs %v, iters %d vs %d",
			got.Inertia, want.Inertia, got.Iterations, want.Iterations)
	}
	for i := range want.Assignment {
		if got.Assignment[i] != want.Assignment[i] {
			t.Fatalf("assignment[%d] = %d, want %d", i, got.Assignment[i], want.Assignment[i])
		}
	}
	if err := grown.Append([]float64{1}); err == nil {
		t.Fatal("wrong-dimension append accepted")
	}
}

// TestOnlineAssignMatchesFullScan drives an OnlineKMeans through a point
// stream and checks every early-exiting Hamerly-bounded assignment against
// a brute-force scan over the learner's current centers.
func TestOnlineAssignMatchesFullScan(t *testing.T) {
	pts, _ := threeBlobs(60, 11)
	seedRes, err := KMeans(pts[:60], 3, KMeansOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnlineKMeans(seedRes)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	for i := 0; i < 500; i++ {
		p := []float64{rng.NormFloat64() * 8, rng.NormFloat64() * 8}
		// Brute force against the centers as they stand *before* Observe
		// moves them.
		want, wantD := 0, math.Inf(1)
		for c := 0; c < o.K(); c++ {
			if d := sqDist(p, o.Center(c)); d < wantD {
				want, wantD = c, d
			}
		}
		if got := o.Observe(p); got != want {
			t.Fatalf("event %d: online assigned %d, full scan says %d", i, got, want)
		}
	}
}

// TestOnlineObserveTracksDrift checks the mini-batch update actually moves
// centers toward a drifting distribution.
func TestOnlineObserveTracksDrift(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	res, err := KMeans(pts, 2, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnlineKMeans(res)
	if err != nil {
		t.Fatal(err)
	}
	// Stream many points near (14, 14): whichever center owns the (10,10)
	// blob must migrate toward the new mass.
	target := []float64{14, 14}
	c := o.Assign(target)
	before := math.Sqrt(sqDist(o.Center(c), target))
	for i := 0; i < 200; i++ {
		o.Observe(target)
	}
	after := math.Sqrt(sqDist(o.Center(c), target))
	if after >= before {
		t.Fatalf("center never moved toward drifted mass: %.3f -> %.3f", before, after)
	}
}

// TestNearestCenterAllocFree pins the streaming hot path at zero
// allocations per call, on both the flat fast path (results from KMeans)
// and the row fallback (hand-built results).
func TestNearestCenterAllocFree(t *testing.T) {
	pts, _ := threeBlobs(30, 7)
	res, err := KMeans(pts, 3, KMeansOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	manual := &KMeansResult{K: res.K, Centers: res.Centers}
	p := []float64{1.5, -2.5}
	if got, want := res.NearestCenter(p), manual.NearestCenter(p); got != want {
		t.Fatalf("flat path picked %d, row path %d", got, want)
	}
	for name, r := range map[string]*KMeansResult{"flat": res, "rows": manual} {
		if allocs := testing.AllocsPerRun(100, func() { r.NearestCenter(p) }); allocs != 0 {
			t.Errorf("%s NearestCenter allocates %.0f per call, want 0", name, allocs)
		}
	}
}

// BenchmarkNearestCenter measures the per-event cost of the streaming
// layer's nearest-center lookup at a PKS-typical K and dimensionality.
func BenchmarkNearestCenter(b *testing.B) {
	rng := stats.NewRNG(21)
	pts := make([][]float64, 4096)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
	}
	res, err := KMeans(pts, 16, KMeansOptions{Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	p := []float64{0.5, -1.5, 2.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.NearestCenter(p)
	}
}
