// Package cluster implements the two clustering algorithms the paper
// contrasts: K-Means (used by Principal Kernel Selection, chosen because it
// scales to millions of kernels and exposes an interpretable K parameter)
// and agglomerative hierarchical clustering (used by the TBPoint baseline,
// which the paper shows does not scale).
package cluster

import (
	"errors"
	"math"

	"pka/internal/parallel"
	"pka/internal/stats"
)

// KMeansResult holds a fitted clustering.
type KMeansResult struct {
	K          int
	Centers    [][]float64
	Assignment []int   // Assignment[i] is the cluster of point i
	Sizes      []int   // points per cluster
	Inertia    float64 // sum of squared distances to assigned centers
	Iterations int
	Repairs    int // empty clusters re-seeded during the run

	// flat is the contiguous backing array behind Centers when the result
	// came out of KMeans (Centers[c] == flat[c*dim:(c+1)*dim]). It lets
	// NearestCenter walk the centers with one bounds check per coordinate
	// instead of a slice-header load per center — the per-event hot path of
	// the streaming layer. Hand-built results leave it nil and fall back to
	// the row walk.
	flat []float64
}

// KMeansOptions controls the Lloyd iteration.
type KMeansOptions struct {
	MaxIterations int    // default 100
	Seed          uint64 // RNG seed for k-means++ initialization
	Tolerance     float64
	// Workers bounds the parallelism of the assignment step; <= 0 uses
	// GOMAXPROCS. The result is byte-identical for any worker count.
	Workers int
}

func (o *KMeansOptions) fill() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-7
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// boundsPad is the relative safety margin applied to the Hamerly bounds:
// upper bounds are inflated and lower bounds deflated by this factor so
// that floating-point rounding in sqDist/Sqrt can never make a bound claim
// more than the exact arithmetic would. It dwarfs the ~dim·2⁻⁵² relative
// error of the distance computations while still pruning essentially every
// settled point.
const boundsPad = 1e-10

// assignChunk is the row range one assignment task covers. Chosen so a
// chunk's points, bounds, and assignments stay cache-resident within one
// worker while leaving enough chunks to balance load.
const assignChunk = 1024

// Dataset is a set of points flattened to contiguous row-major storage,
// plus the scratch buffers a K-Means run needs. Reusing one Dataset across
// the K-sweep (k = 1..maxK over the same points) reuses every buffer, so
// later fits allocate only their returned result.
//
// A Dataset is not safe for concurrent KMeans calls; the engine gives each
// sweep its own.
type Dataset struct {
	n, dim int
	data   []float64 // n*dim, row i at data[i*dim : (i+1)*dim]

	// Per-run scratch, grown on demand and reused across calls.
	centers []float64 // k*dim current centers
	next    []float64 // k*dim update-step accumulator
	s       []float64 // k: half distance to each center's nearest neighbor
	moved   []float64 // k: center movement in the latest update step
	u       []float64 // n: upper bound on distance to assigned center
	l       []float64 // n: lower bound on distance to second-closest center
	dist    []float64 // n: squared distance to assigned center (repair only)
	d2      []float64 // n: k-means++ squared distances
	chunks  []int     // assignment chunk start offsets
}

// NewDataset validates points and copies them into contiguous storage.
func NewDataset(points [][]float64) (*Dataset, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: no points")
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, errors.New("cluster: ragged point dimensions")
		}
	}
	ds := &Dataset{n: n, dim: dim, data: make([]float64, n*dim)}
	for i, p := range points {
		copy(ds.data[i*dim:], p)
	}
	return ds, nil
}

// N returns the number of points.
func (ds *Dataset) N() int { return ds.n }

// Dim returns the point dimensionality.
func (ds *Dataset) Dim() int { return ds.dim }

func (ds *Dataset) row(i int) []float64 { return ds.data[i*ds.dim : (i+1)*ds.dim] }

func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// KMeans clusters points into k groups using k-means++ seeding followed by
// Lloyd's iterations. Empty clusters are repaired by re-seeding them with
// the point farthest from every current center, so the result always has
// exactly k non-degenerate groups when k <= len(points) distinct points
// exist. The run is deterministic for a given seed.
//
// This is the convenience form; it builds a throwaway Dataset. Sweeps over
// k should build one Dataset and call its KMeans method so scratch buffers
// carry over.
func KMeans(points [][]float64, k int, opts KMeansOptions) (*KMeansResult, error) {
	if k < 1 {
		return nil, errors.New("cluster: k must be >= 1")
	}
	ds, err := NewDataset(points)
	if err != nil {
		return nil, err
	}
	return ds.KMeans(k, opts)
}

// KMeans fits k clusters over the dataset. See the package-level KMeans.
//
// The Lloyd loop is accelerated with Hamerly-style center-movement bounds:
// a point whose upper bound to its assigned center is strictly below both
// half the gap to the nearest other center and its lower bound on the
// second-closest center provably cannot change assignment, and is skipped
// without touching any center. Strict inequalities plus the boundsPad
// margin mean a skip never overrides the exact scan's lowest-index
// tie-breaking, so assignments — and therefore every returned float — are
// bit-identical to the plain full-scan implementation.
func (ds *Dataset) KMeans(k int, opts KMeansOptions) (*KMeansResult, error) {
	n, dim := ds.n, ds.dim
	if k < 1 {
		return nil, errors.New("cluster: k must be >= 1")
	}
	if k > n {
		k = n
	}
	opts.fill()
	rng := stats.NewRNG(opts.Seed ^ 0xC0FFEE)

	ds.centers = growF(ds.centers, k*dim)
	ds.next = growF(ds.next, k*dim)
	ds.s = growF(ds.s, k)
	ds.moved = growF(ds.moved, k)
	ds.u = growF(ds.u, n)
	ds.l = growF(ds.l, n)
	ds.dist = growF(ds.dist, n)
	ds.seedPlusPlus(k, rng)

	centers, next := ds.centers, ds.next
	u, l, dist := ds.u, ds.l, ds.dist
	for i := 0; i < n; i++ {
		u[i] = math.Inf(1)
		l[i] = 0
	}
	assign := make([]int, n)
	sizes := make([]int, k)
	repairs := 0

	workers := parallel.Workers(opts.Workers)
	if workers > 1 && n > assignChunk {
		nchunks := (n + assignChunk - 1) / assignChunk
		if cap(ds.chunks) >= nchunks {
			ds.chunks = ds.chunks[:nchunks]
		} else {
			ds.chunks = make([]int, nchunks)
		}
		for c := range ds.chunks {
			ds.chunks[c] = c * assignChunk
		}
	}

	var iter int
	for iter = 0; iter < opts.MaxIterations; iter++ {
		// Half distance from each center to its nearest other center: any
		// point closer to its center than this cannot prefer another one.
		for c := 0; c < k; c++ {
			minD := math.Inf(1)
			cc := centers[c*dim : (c+1)*dim]
			for o := 0; o < k; o++ {
				if o == c {
					continue
				}
				if d := sqDist(cc, centers[o*dim:(o+1)*dim]); d < minD {
					minD = d
				}
			}
			ds.s[c] = 0.5 * math.Sqrt(minD) * (1 - boundsPad)
		}

		// Assignment step: per-point writes are independent and the merge
		// of per-chunk changed flags is an OR, so the outcome is identical
		// for any worker count or interleaving.
		changed := false
		if workers > 1 && n > assignChunk {
			chg, err := parallel.Map(workers, ds.chunks, func(_ int, lo int) (bool, error) {
				hi := lo + assignChunk
				if hi > n {
					hi = n
				}
				return ds.assignRange(lo, hi, k, assign), nil
			})
			if err != nil {
				return nil, err
			}
			for _, c := range chg {
				changed = changed || c
			}
		} else {
			changed = ds.assignRange(0, n, k, assign)
		}

		for c := range sizes {
			sizes[c] = 0
		}
		for _, a := range assign {
			sizes[a]++
		}

		// Repair empty clusters. dist is materialized lazily — identical
		// values to what the full scan would have cached, recomputed only
		// on the rare iteration that actually repairs.
		repaired := false
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				for i := 0; i < n; i++ {
					dist[i] = sqDist(ds.row(i), centers[assign[i]*dim:(assign[i]+1)*dim])
				}
				r := ds.repairEmpty(k, assign, sizes, dist)
				repairs += r
				if r > 0 {
					changed = true
					repaired = true
				}
				break
			}
		}

		// Update step: serial, in the same point and coordinate order as
		// the reference implementation, so the float64 summations round
		// identically.
		for j := range next[:k*dim] {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			c := next[assign[i]*dim : (assign[i]+1)*dim]
			for j, v := range ds.row(i) {
				c[j] += v
			}
		}
		var shift, maxMoved float64
		for c := 0; c < k; c++ {
			nc := next[c*dim : (c+1)*dim]
			oc := centers[c*dim : (c+1)*dim]
			if sizes[c] == 0 {
				copy(nc, oc)
				ds.moved[c] = 0
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range nc {
				nc[j] *= inv
			}
			ms := sqDist(nc, oc)
			shift += ms
			m := math.Sqrt(ms) * (1 + boundsPad)
			ds.moved[c] = m
			if m > maxMoved {
				maxMoved = m
			}
		}
		centers, next = next, centers
		ds.centers, ds.next = centers, next
		if !changed || shift < opts.Tolerance {
			iter++
			break
		}

		if repaired {
			// A re-seeded center teleported; movement-based bound updates
			// do not cover that, so force a full scan next iteration.
			for i := 0; i < n; i++ {
				u[i] = math.Inf(1)
				l[i] = 0
			}
		} else {
			for i := 0; i < n; i++ {
				u[i] += ds.moved[assign[i]]
				l[i] -= maxMoved
			}
		}
	}

	var inertia float64
	for i := 0; i < n; i++ {
		inertia += sqDist(ds.row(i), centers[assign[i]*dim:(assign[i]+1)*dim])
	}
	// Materialize the centers as an independent snapshot (one flat backing
	// array) so the result survives subsequent fits on this Dataset.
	flat := make([]float64, k*dim)
	copy(flat, centers[:k*dim])
	rows := make([][]float64, k)
	for c := range rows {
		rows[c] = flat[c*dim : (c+1)*dim : (c+1)*dim]
	}
	return &KMeansResult{
		K:          k,
		Centers:    rows,
		Assignment: assign,
		Sizes:      sizes,
		Inertia:    inertia,
		Iterations: iter,
		Repairs:    repairs,
		flat:       flat,
	}, nil
}

// assignRange runs the assignment step over points [lo, hi), returning
// whether any assignment changed. Writes only to assign/u/l rows in the
// range, so disjoint ranges can run concurrently.
func (ds *Dataset) assignRange(lo, hi, k int, assign []int) bool {
	dim := ds.dim
	centers, s, u, l := ds.centers, ds.s, ds.u, ds.l
	changed := false
	for i := lo; i < hi; i++ {
		a := assign[i]
		if ui := u[i]; ui < s[a] || ui < l[i] {
			// Strictly closer to its center than any other can be: the
			// full scan would keep a, with the same tie-breaking.
			continue
		}
		p := ds.data[i*dim : (i+1)*dim]
		best, bestD := 0, math.Inf(1)
		second := math.Inf(1)
		for c := 0; c < k; c++ {
			d := sqDist(p, centers[c*dim:(c+1)*dim])
			if d < bestD {
				second = bestD
				best, bestD = c, d
			} else if d < second {
				second = d
			}
		}
		if best != a {
			changed = true
		}
		assign[i] = best
		u[i] = math.Sqrt(bestD) * (1 + boundsPad)
		l[i] = math.Sqrt(second) * (1 - boundsPad)
	}
	return changed
}

// repairEmpty re-seeds every empty cluster with the point farthest from
// all current centers, preferring points whose donor cluster keeps at
// least one member. dist must hold each point's squared distance to its
// assigned center; repairEmpty keeps it current as centers are re-seeded —
// after each repair, dist[i] is lowered to the distance to the new center
// when that is nearer, so a second repair in the same pass ranks points
// against the post-repair geometry instead of stale distances. Returns the
// number of clusters repaired.
func (ds *Dataset) repairEmpty(k int, assign, sizes []int, dist []float64) int {
	n, dim := ds.n, ds.dim
	repairs := 0
	for c := 0; c < k; c++ {
		if sizes[c] > 0 {
			continue
		}
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			if sizes[assign[i]] > 1 && dist[i] > farD {
				far, farD = i, dist[i]
			}
		}
		if far < 0 {
			continue // fewer distinct points than clusters
		}
		sizes[assign[far]]--
		assign[far] = c
		sizes[c] = 1
		ctr := ds.centers[c*dim : (c+1)*dim]
		copy(ctr, ds.row(far))
		dist[far] = 0
		for i := 0; i < n; i++ {
			if d := sqDist(ds.row(i), ctr); d < dist[i] {
				dist[i] = d
			}
		}
		repairs++
	}
	return repairs
}

// seedPlusPlus implements k-means++ initialization into ds.centers.
func (ds *Dataset) seedPlusPlus(k int, rng *stats.RNG) {
	n, dim := ds.n, ds.dim
	ds.d2 = growF(ds.d2, n)
	d2 := ds.d2
	first := rng.Intn(n)
	copy(ds.centers[:dim], ds.row(first))
	for i := 0; i < n; i++ {
		d2[i] = sqDist(ds.row(i), ds.centers[:dim])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all points coincide with some center
		} else {
			idx = pickWeighted(d2, rng.Float64()*total)
		}
		ctr := ds.centers[c*dim : (c+1)*dim]
		copy(ctr, ds.row(idx))
		for i := 0; i < n; i++ {
			if d := sqDist(ds.row(i), ctr); d < d2[i] {
				d2[i] = d
			}
		}
	}
}

// pickWeighted samples an index proportionally to the weights in d2, given
// target uniform in [0, sum(d2)): the first index where the running sum
// reaches target. If accumulated rounding leaves the running sum short of
// target even at the end, the draw falls back to the last index with
// nonzero weight — never silently index 0, which would bias re-seeding
// toward whatever point happens to be first.
func pickWeighted(d2 []float64, target float64) int {
	var cum float64
	for i, d := range d2 {
		cum += d
		if cum >= target {
			return i
		}
	}
	for i := len(d2) - 1; i >= 0; i-- {
		if d2[i] > 0 {
			return i
		}
	}
	return 0
}

// NearestCenter returns the index of the center closest to p. It performs
// no allocations: the streaming layer calls it once per kernel event, so
// its cost must stay at "K small dot products". Results produced by KMeans
// take the flat-backing fast path; hand-built results fall back to walking
// the center rows, with identical tie-breaking (lowest index wins).
func (r *KMeansResult) NearestCenter(p []float64) int {
	if flat := r.flat; flat != nil {
		dim := len(p)
		best, bestD := 0, math.Inf(1)
		for c := 0; c*dim < len(flat); c++ {
			ctr := flat[c*dim : (c+1)*dim]
			var d float64
			for j, v := range p {
				diff := v - ctr[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		return best
	}
	best, bestD := 0, math.Inf(1)
	for c, ctr := range r.Centers {
		if d := sqDist(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Members returns the point indices belonging to cluster c, in input order.
func (r *KMeansResult) Members(c int) []int {
	var out []int
	for i, a := range r.Assignment {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}
