// Package cluster implements the two clustering algorithms the paper
// contrasts: K-Means (used by Principal Kernel Selection, chosen because it
// scales to millions of kernels and exposes an interpretable K parameter)
// and agglomerative hierarchical clustering (used by the TBPoint baseline,
// which the paper shows does not scale).
package cluster

import (
	"errors"
	"math"

	"pka/internal/stats"
)

// KMeansResult holds a fitted clustering.
type KMeansResult struct {
	K          int
	Centers    [][]float64
	Assignment []int   // Assignment[i] is the cluster of point i
	Sizes      []int   // points per cluster
	Inertia    float64 // sum of squared distances to assigned centers
	Iterations int
}

// KMeansOptions controls the Lloyd iteration.
type KMeansOptions struct {
	MaxIterations int    // default 100
	Seed          uint64 // RNG seed for k-means++ initialization
	Tolerance     float64
}

func (o *KMeansOptions) fill() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-7
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points into k groups using k-means++ seeding followed by
// Lloyd's iterations. Empty clusters are repaired by re-seeding them with
// the point farthest from its current center, so the result always has
// exactly k non-degenerate groups when k <= len(points) distinct points
// exist. The run is deterministic for a given seed.
func KMeans(points [][]float64, k int, opts KMeansOptions) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: no points")
	}
	if k < 1 {
		return nil, errors.New("cluster: k must be >= 1")
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, errors.New("cluster: ragged point dimensions")
		}
	}
	opts.fill()
	rng := stats.NewRNG(opts.Seed ^ 0xC0FFEE)

	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	sizes := make([]int, k)
	dist := make([]float64, n)

	var iter int
	for iter = 0; iter < opts.MaxIterations; iter++ {
		// Assignment step.
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				changed = true
			}
			assign[i] = best
			dist[i] = bestD
			sizes[best]++
		}

		// Repair empty clusters with the globally farthest point.
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				continue
			}
			far, farD := -1, -1.0
			for i := range points {
				if sizes[assign[i]] > 1 && dist[i] > farD {
					far, farD = i, dist[i]
				}
			}
			if far < 0 {
				continue // fewer distinct points than clusters
			}
			sizes[assign[far]]--
			assign[far] = c
			sizes[c] = 1
			centers[c] = append([]float64(nil), points[far]...)
			changed = true
		}

		// Update step.
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := next[assign[i]]
			for j, v := range p {
				c[j] += v
			}
		}
		var shift float64
		for c := range next {
			if sizes[c] == 0 {
				copy(next[c], centers[c])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range next[c] {
				next[c][j] *= inv
			}
			shift += sqDist(next[c], centers[c])
		}
		centers = next
		if !changed || shift < opts.Tolerance {
			iter++
			break
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centers[assign[i]])
	}
	return &KMeansResult{
		K:          k,
		Centers:    centers,
		Assignment: assign,
		Sizes:      sizes,
		Inertia:    inertia,
		Iterations: iter,
	}, nil
}

// seedPlusPlus implements k-means++ initialization.
func seedPlusPlus(points [][]float64, k int, rng *stats.RNG) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))

	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all points coincide with some center
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if cum >= target {
					idx = i
					break
				}
			}
		}
		ctr := append([]float64(nil), points[idx]...)
		centers = append(centers, ctr)
		for i, p := range points {
			if d := sqDist(p, ctr); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// NearestCenter returns the index of the center closest to p.
func (r *KMeansResult) NearestCenter(p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range r.Centers {
		if d := sqDist(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Members returns the point indices belonging to cluster c, in input order.
func (r *KMeansResult) Members(c int) []int {
	var out []int
	for i, a := range r.Assignment {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}
