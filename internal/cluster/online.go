// Streaming clustering support: an appendable Dataset plus a mini-batch
// online K-Means learner that tracks cluster structure between full
// K-sweeps. The streaming PKS layer appends each kernel's projected
// feature point as it arrives, lets OnlineKMeans assign and drift the
// centers per event, and only re-runs the (exact, deterministic) Sweep
// when its running error estimate degrades — so the expensive machinery
// runs rarely while the per-event cost stays at one early-exiting nearest-
// center scan.
//
// Everything here is advisory by construction: the streaming layer uses
// online assignments only to pick speculation targets, and the final
// reconciliation pass re-runs the exact batch sweep. Nothing in this file
// can therefore influence study results.
package cluster

import (
	"errors"
	"math"
)

// NewEmptyDataset returns a Dataset with no points, ready for Append. The
// dimensionality is fixed up front; KMeans and Sweep require at least one
// appended point.
func NewEmptyDataset(dim int) (*Dataset, error) {
	if dim < 1 {
		return nil, errors.New("cluster: dataset dimension must be >= 1")
	}
	return &Dataset{n: 0, dim: dim}, nil
}

// Append adds one point to the dataset. Scratch buffers are grown lazily
// by the next KMeans call, so appending between fits of a K-sweep reuses
// all previously grown scratch — the reason the streaming layer keeps one
// Dataset alive across cluster revisions instead of rebuilding it.
// Append must not run concurrently with a KMeans call on the same Dataset.
func (ds *Dataset) Append(p []float64) error {
	if len(p) != ds.dim {
		return errors.New("cluster: appended point has wrong dimension")
	}
	ds.data = append(ds.data, p...)
	ds.n++
	return nil
}

// OnlineKMeans is a mini-batch (one point per batch) K-Means learner
// seeded from a fitted KMeansResult. Observe assigns each new point to its
// nearest center and moves that center toward the point with a 1/count
// learning rate — the classic Sculley web-scale update — so centers track
// distribution drift between full sweeps.
//
// The nearest-center scan reuses the Hamerly half-distance bound from the
// batch Lloyd loop: s[c] is half the distance from center c to its nearest
// other center, so as soon as the scan holds a candidate whose distance is
// below s[candidate] minus the accumulated center movement, no remaining
// center can be closer and the scan stops. Bounds are recomputed lazily
// when cumulative movement erodes their slack.
//
// OnlineKMeans is deterministic (a pure function of the seed result and
// the observation sequence) and not safe for concurrent use.
type OnlineKMeans struct {
	k, dim  int
	centers []float64 // k*dim, row-major
	counts  []int64   // per-center observation weight (seeded from Sizes)
	s       []float64 // Hamerly half-distance to nearest other center
	sMin    float64   // min over s, gates lazy recomputation
	slack   float64   // max cumulative per-center movement since s was computed
}

// NewOnlineKMeans seeds a learner from a fitted clustering. The result's
// centers are copied; the learner never aliases or mutates res.
func NewOnlineKMeans(res *KMeansResult) (*OnlineKMeans, error) {
	if res == nil || res.K < 1 || len(res.Centers) != res.K {
		return nil, errors.New("cluster: online seed needs a fitted result")
	}
	dim := len(res.Centers[0])
	o := &OnlineKMeans{
		k:       res.K,
		dim:     dim,
		centers: make([]float64, res.K*dim),
		counts:  make([]int64, res.K),
		s:       make([]float64, res.K),
	}
	for c, ctr := range res.Centers {
		if len(ctr) != dim {
			return nil, errors.New("cluster: ragged centers in online seed")
		}
		copy(o.centers[c*dim:], ctr)
		if c < len(res.Sizes) {
			o.counts[c] = int64(res.Sizes[c])
		}
		if o.counts[c] < 1 {
			o.counts[c] = 1
		}
	}
	o.refreshBounds()
	return o, nil
}

// K returns the number of centers.
func (o *OnlineKMeans) K() int { return o.k }

// Center returns a copy of center c.
func (o *OnlineKMeans) Center(c int) []float64 {
	out := make([]float64, o.dim)
	copy(out, o.centers[c*o.dim:(c+1)*o.dim])
	return out
}

// refreshBounds recomputes the Hamerly half-distances and resets the
// movement slack.
func (o *OnlineKMeans) refreshBounds() {
	o.sMin = math.Inf(1)
	for c := 0; c < o.k; c++ {
		minD := math.Inf(1)
		cc := o.centers[c*o.dim : (c+1)*o.dim]
		for n := 0; n < o.k; n++ {
			if n == c {
				continue
			}
			if d := sqDist(cc, o.centers[n*o.dim:(n+1)*o.dim]); d < minD {
				minD = d
			}
		}
		o.s[c] = 0.5 * math.Sqrt(minD) * (1 - boundsPad)
		if o.s[c] < o.sMin {
			o.sMin = o.s[c]
		}
	}
	o.slack = 0
}

// Assign returns the nearest center to p without updating anything. The
// scan early-exits on the Hamerly bound: if the best candidate so far is
// within s[best]-slack of p, no other center can beat it. Ties break to
// the lowest index, matching the batch assignment step. Allocation-free.
func (o *OnlineKMeans) Assign(p []float64) int {
	// Centers have drifted by at most slack each since s was computed, so
	// every pairwise half-gap is still at least s[c]-slack. Once the slack
	// eats half the smallest gap the bound stops pruning; refresh it.
	if o.slack > 0.5*o.sMin {
		o.refreshBounds()
	}
	dim := o.dim
	best, bestD := 0, math.Inf(1)
	for c := 0; c < o.k; c++ {
		ctr := o.centers[c*dim : (c+1)*dim]
		var d float64
		for j, v := range p {
			diff := v - ctr[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
			if math.Sqrt(d) < o.s[c]-o.slack {
				// p is strictly inside best's Hamerly radius: every other
				// center is provably farther, stop scanning.
				break
			}
		}
	}
	return best
}

// Observe assigns p to its nearest center, moves that center toward p with
// a 1/count learning rate, and returns the assignment.
func (o *OnlineKMeans) Observe(p []float64) int {
	c := o.Assign(p)
	o.counts[c]++
	eta := 1 / float64(o.counts[c])
	ctr := o.centers[c*o.dim : (c+1)*o.dim]
	var moved float64
	for j := range ctr {
		d := eta * (p[j] - ctr[j])
		ctr[j] += d
		moved += d * d
	}
	o.slack += math.Sqrt(moved) * (1 + boundsPad)
	return c
}
