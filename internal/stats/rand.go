package stats

import "math"

// RNG is a small, allocation-free SplitMix64 pseudo-random generator. The
// whole reproduction pipeline is deterministic: every workload generator,
// clustering seed, and synthetic address stream derives from explicit RNG
// seeds, so two runs of any experiment produce byte-identical tables.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// transform (the polar form is avoided to keep the call count per sample
// fixed, preserving stream alignment across code changes).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential sample with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = 1 - 1e-16
	}
	return -math.Log(1 - u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from this one. Forked streams are
// used so that, e.g., adding a workload never shifts the random stream seen
// by an unrelated workload.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
