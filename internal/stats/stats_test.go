package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEq(got, 4, 1e-9) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// Non-positive entries are clamped, not fatal.
	if got := GeoMean([]float64{0, 4}); got <= 0 {
		t.Errorf("GeoMean with zero entry = %v, want > 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestAbsPctErr(t *testing.T) {
	if got := AbsPctErr(110, 100); !almostEq(got, 10, 1e-12) {
		t.Errorf("AbsPctErr = %v, want 10", got)
	}
	if got := AbsPctErr(90, 100); !almostEq(got, 10, 1e-12) {
		t.Errorf("AbsPctErr = %v, want 10", got)
	}
	if got := AbsPctErr(0, 0); got != 0 {
		t.Errorf("AbsPctErr(0,0) = %v, want 0", got)
	}
	if got := AbsPctErr(5, 0); got != 100 {
		t.Errorf("AbsPctErr(5,0) = %v, want 100", got)
	}
}

func TestMAPEAndMAE(t *testing.T) {
	m, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil || !almostEq(m, 10, 1e-12) {
		t.Errorf("MAPE = %v, %v; want 10, nil", m, err)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MAPE length mismatch did not error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Error("MAPE on empty input did not error")
	}
	a, err := MAE([]float64{1, 2}, []float64{2, 4})
	if err != nil || !almostEq(a, 1.5, 1e-12) {
		t.Errorf("MAE = %v, %v; want 1.5, nil", a, err)
	}
}

func TestRollingWindowSemantics(t *testing.T) {
	r := NewRolling(3)
	if r.Full() {
		t.Error("fresh window reports full")
	}
	r.Push(1)
	r.Push(2)
	if r.Full() || r.Count() != 2 {
		t.Errorf("count = %d, full = %v; want 2, false", r.Count(), r.Full())
	}
	r.Push(3)
	if !r.Full() {
		t.Error("window of 3 after 3 pushes not full")
	}
	if got := r.Mean(); !almostEq(got, 2, 1e-12) {
		t.Errorf("mean = %v, want 2", got)
	}
	r.Push(10) // evicts the 1 -> window {2,3,10}
	if got := r.Mean(); !almostEq(got, 5, 1e-12) {
		t.Errorf("mean after eviction = %v, want 5", got)
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 || r.StdDev() != 0 {
		t.Error("Reset did not clear window state")
	}
}

func TestRollingMatchesBatch(t *testing.T) {
	rng := NewRNG(7)
	const window = 50
	r := NewRolling(window)
	var series []float64
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*3 + 10
		series = append(series, x)
		r.Push(x)
		lo := 0
		if len(series) > window {
			lo = len(series) - window
		}
		tail := series[lo:]
		if !almostEq(r.Mean(), Mean(tail), 1e-9) {
			t.Fatalf("step %d: rolling mean %v != batch %v", i, r.Mean(), Mean(tail))
		}
		if !almostEq(r.StdDev(), StdDev(tail), 1e-7) {
			t.Fatalf("step %d: rolling std %v != batch %v", i, r.StdDev(), StdDev(tail))
		}
	}
}

func TestRollingCoefVar(t *testing.T) {
	r := NewRolling(4)
	for i := 0; i < 4; i++ {
		r.Push(5)
	}
	if got := r.CoefVar(); got != 0 {
		t.Errorf("constant window CoefVar = %v, want 0", got)
	}
	r2 := NewRolling(2)
	r2.Push(-1)
	r2.Push(1)
	if got := r2.CoefVar(); !math.IsInf(got, 1) {
		t.Errorf("zero-mean window CoefVar = %v, want +Inf", got)
	}
	if got := NewRolling(3).CoefVar(); got != 0 {
		t.Errorf("empty window CoefVar = %v, want 0", got)
	}
}

func TestNewRollingPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRolling(0) did not panic")
		}
	}()
	NewRolling(0)
}

// Property: the rolling mean always lies within the min/max of the window
// contents, for any input sequence.
func TestRollingMeanBoundedProperty(t *testing.T) {
	f := func(raw []int16, w uint8) bool {
		window := int(w%32) + 1
		r := NewRolling(window)
		var series []float64
		for _, v := range raw {
			x := float64(v)
			series = append(series, x)
			r.Push(x)
			lo := 0
			if len(series) > window {
				lo = len(series) - window
			}
			minV, maxV := math.Inf(1), math.Inf(-1)
			for _, y := range series[lo:] {
				minV = math.Min(minV, y)
				maxV = math.Max(maxV, y)
			}
			m := r.Mean()
			if m < minV-1e-9 || m > maxV+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean of positive inputs lies between min and max and is
// scale-equivariant: GeoMean(c*xs) == c*GeoMean(xs).
func TestGeoMeanProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		minV, maxV := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v%1000) + 1
			minV = math.Min(minV, xs[i])
			maxV = math.Max(maxV, xs[i])
		}
		g := GeoMean(xs)
		if g < minV-1e-9 || g > maxV+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return almostEq(GeoMean(scaled), 3*g, 1e-6*g+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identically seeded RNGs diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(123).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("differently seeded RNGs look identical")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d frequency %v far from 0.1", b, frac)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("sibling forks produced identical first values")
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
