// Package stats provides the small statistical toolkit the PKA pipeline is
// built on: descriptive statistics, error metrics, geometric means, and the
// O(1) rolling-window moments that drive Principal Kernel Projection's
// online IPC-stability detector.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by N), or 0 when
// fewer than two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs. Non-positive values are clamped
// to a tiny epsilon so that a single zero speedup cannot zero the aggregate;
// this mirrors how simulation-speedup geomeans are reported in practice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-12
	var logSum float64
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// AbsPctErr returns |measured-reference| / |reference| * 100. A zero
// reference with a non-zero measurement reports 100% error; zero vs. zero is
// a perfect 0%.
func AbsPctErr(measured, reference float64) float64 {
	if reference == 0 {
		if measured == 0 {
			return 0
		}
		return 100
	}
	return math.Abs(measured-reference) / math.Abs(reference) * 100
}

// MAPE returns the mean absolute percentage error between the measured and
// reference series, which must have equal length.
func MAPE(measured, reference []float64) (float64, error) {
	if len(measured) != len(reference) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(measured) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range measured {
		sum += AbsPctErr(measured[i], reference[i])
	}
	return sum / float64(len(measured)), nil
}

// MAE returns the mean absolute error between two equal-length series.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// Rolling maintains the mean and standard deviation of the last Window
// samples in O(1) time per Push. It is the online detector behind Principal
// Kernel Projection: the simulator pushes one IPC sample per cycle and asks
// whether the windowed signal has stabilized.
type Rolling struct {
	window int
	buf    []float64
	head   int
	count  int
	sum    float64
	sumSq  float64
}

// NewRolling returns a rolling-moment tracker over the given window size.
// It panics if window < 1; the window is a structural parameter, not data.
func NewRolling(window int) *Rolling {
	if window < 1 {
		panic("stats: rolling window must be >= 1")
	}
	return &Rolling{window: window, buf: make([]float64, window)}
}

// Window returns the configured window length.
func (r *Rolling) Window() int { return r.window }

// Count returns how many samples currently populate the window.
func (r *Rolling) Count() int { return r.count }

// Full reports whether the window has been completely filled at least once.
func (r *Rolling) Full() bool { return r.count == r.window }

// Push adds a sample, evicting the oldest one once the window is full.
func (r *Rolling) Push(x float64) {
	if r.count == r.window {
		old := r.buf[r.head]
		r.sum -= old
		r.sumSq -= old * old
	} else {
		r.count++
	}
	r.buf[r.head] = x
	r.sum += x
	r.sumSq += x * x
	r.head++
	if r.head == r.window {
		r.head = 0
	}
}

// Mean returns the mean of the samples currently in the window.
func (r *Rolling) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// StdDev returns the population standard deviation of the window. Floating
// point cancellation can drive the raw variance estimate slightly negative;
// it is clamped at zero.
func (r *Rolling) StdDev() float64 {
	if r.count == 0 {
		return 0
	}
	n := float64(r.count)
	m := r.sum / n
	v := r.sumSq/n - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// CoefVar returns the coefficient of variation (stddev / mean) of the
// window. A zero-mean window reports +Inf unless it is also zero-variance,
// which reports 0. PKP compares this normalized dispersion against its
// stability threshold s so the criterion is scale-free across kernels whose
// IPC ranges from single digits to thousands.
func (r *Rolling) CoefVar() float64 {
	sd := r.StdDev()
	m := r.Mean()
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Reset empties the window while retaining its capacity.
func (r *Rolling) Reset() {
	r.head = 0
	r.count = 0
	r.sum = 0
	r.sumSq = 0
}
