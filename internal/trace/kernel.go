// Package trace defines the kernel-launch representation shared by every
// execution substrate in the repository. A KernelDesc captures what the
// paper's tooling observes about a CUDA kernel launch — grid/block shape,
// resource usage, dynamic instruction mix, and memory behaviour — without
// any program semantics. PKA itself never looks deeper than this: both
// Principal Kernel Selection's feature vectors (Table 2) and the simulator's
// synthetic instruction streams derive from it.
package trace

import (
	"fmt"

	"pka/internal/gpu"
)

// Dim3 is a CUDA launch dimension.
type Dim3 struct {
	X, Y, Z int
}

// D1 is shorthand for a one-dimensional Dim3.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 is shorthand for a two-dimensional Dim3.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Count returns the total element count of the dimension.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x < 1 {
		x = 1
	}
	if y < 1 {
		y = 1
	}
	if z < 1 {
		z = 1
	}
	return x * y * z
}

// String implements fmt.Stringer.
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// InstrMix holds per-thread dynamic instruction counts for one kernel.
type InstrMix struct {
	GlobalLoads   int
	GlobalStores  int
	LocalLoads    int
	SharedLoads   int
	SharedStores  int
	GlobalAtomics int
	Compute       int // ALU/FPU instructions
	TensorOps     int // tensor-core MMA instructions
}

// Total returns the per-thread dynamic instruction count.
func (m InstrMix) Total() int {
	return m.GlobalLoads + m.GlobalStores + m.LocalLoads + m.SharedLoads +
		m.SharedStores + m.GlobalAtomics + m.Compute + m.TensorOps
}

// MemoryOps returns the per-thread count of memory instructions.
func (m InstrMix) MemoryOps() int {
	return m.GlobalLoads + m.GlobalStores + m.LocalLoads + m.SharedLoads +
		m.SharedStores + m.GlobalAtomics
}

// GlobalOps returns per-thread global-memory instructions (the ones that
// traverse L1/L2/DRAM).
func (m InstrMix) GlobalOps() int {
	return m.GlobalLoads + m.GlobalStores + m.LocalLoads + m.GlobalAtomics
}

// KernelDesc describes one kernel launch.
type KernelDesc struct {
	ID   int    // chronological launch index within the workload
	Name string // mangled-ish kernel name (clusters are name-independent)

	Grid  Dim3
	Block Dim3

	RegsPerThread     int
	SharedMemPerBlock int // bytes

	Mix InstrMix

	// CoalescingFactor is the average number of 32-byte sectors touched by
	// one warp-level global access: 1 for perfectly coalesced unit-stride
	// float4 loads up to 32 for fully scattered access.
	CoalescingFactor float64

	// WorkingSetBytes is the kernel's resident data footprint, which
	// drives cache hit rates in both execution models.
	WorkingSetBytes int64

	// StridedFraction is the probability that a global access follows a
	// streaming (unit-stride) pattern rather than an irregular one.
	StridedFraction float64

	// DivergenceEff is average active lanes per warp instruction divided
	// by warp size, i.e. Nsight's thread_inst_executed_per_inst_executed
	// ratio normalized to [0, 1]. 1 means no control divergence.
	DivergenceEff float64

	// BlockImbalance is the coefficient of variation of per-block work.
	// Regular kernels are ~0; graph workloads can exceed 1.
	BlockImbalance float64

	// Seed makes the kernel's synthetic address/imbalance streams
	// deterministic and distinct between kernels.
	Seed uint64
}

// Validate reports structural problems that would make a kernel
// unexecutable on any substrate.
func (k *KernelDesc) Validate() error {
	if k.Grid.X < 1 || k.Grid.Y < 1 || k.Grid.Z < 1 {
		return fmt.Errorf("trace: kernel %q has empty grid %s", k.Name, k.Grid)
	}
	if k.Block.X < 1 || k.Block.Y < 1 || k.Block.Z < 1 {
		return fmt.Errorf("trace: kernel %q has empty block %s", k.Name, k.Block)
	}
	tpb := k.Block.Count()
	if tpb > 1024 {
		return fmt.Errorf("trace: kernel %q has invalid block size %d", k.Name, tpb)
	}
	if k.Mix.Total() < 1 {
		return fmt.Errorf("trace: kernel %q executes no instructions", k.Name)
	}
	if k.CoalescingFactor < 1 || k.CoalescingFactor > 32 {
		return fmt.Errorf("trace: kernel %q coalescing factor %.2f outside [1,32]", k.Name, k.CoalescingFactor)
	}
	if k.DivergenceEff <= 0 || k.DivergenceEff > 1 {
		return fmt.Errorf("trace: kernel %q divergence efficiency %.2f outside (0,1]", k.Name, k.DivergenceEff)
	}
	if k.StridedFraction < 0 || k.StridedFraction > 1 {
		return fmt.Errorf("trace: kernel %q strided fraction %.2f outside [0,1]", k.Name, k.StridedFraction)
	}
	if k.BlockImbalance < 0 {
		return fmt.Errorf("trace: kernel %q negative block imbalance", k.Name)
	}
	return nil
}

// Resources adapts the kernel to the gpu package's occupancy input.
func (k *KernelDesc) Resources() gpu.KernelResources {
	return gpu.KernelResources{
		ThreadsPerBlock:   k.Block.Count(),
		RegsPerThread:     k.RegsPerThread,
		SharedMemPerBlock: k.SharedMemPerBlock,
	}
}

// Threads returns the total thread count of the launch.
func (k *KernelDesc) Threads() int { return k.Grid.Count() * k.Block.Count() }

// WarpsPerBlock returns warps per thread block on a 32-lane machine.
func (k *KernelDesc) WarpsPerBlock() int { return (k.Block.Count() + 31) / 32 }

// TotalWarpInstructions returns the dynamic warp-level instruction count of
// the launch on the given device generation (per-thread mix × warps, scaled
// by the generation's ISA representation).
func (k *KernelDesc) TotalWarpInstructions(dev gpu.Device) int64 {
	warps := int64(k.Grid.Count()) * int64(k.WarpsPerBlock())
	return int64(float64(warps*int64(k.Mix.Total())) * dev.ISAScale)
}
