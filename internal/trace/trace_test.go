package trace

import (
	"testing"
	"testing/quick"

	"pka/internal/gpu"
)

func validKernel() KernelDesc {
	return KernelDesc{
		ID:    0,
		Name:  "test_kernel",
		Grid:  D1(100),
		Block: D1(256),
		Mix: InstrMix{
			GlobalLoads: 8, GlobalStores: 4, SharedLoads: 6, SharedStores: 2,
			Compute: 60,
		},
		CoalescingFactor: 4,
		WorkingSetBytes:  1 << 20,
		StridedFraction:  0.8,
		DivergenceEff:    1.0,
	}
}

func TestDim3(t *testing.T) {
	if D1(5).Count() != 5 || D2(3, 4).Count() != 12 {
		t.Error("Dim3 counts wrong")
	}
	if (Dim3{X: 2, Y: 0, Z: 3}).Count() != 6 {
		t.Error("zero components should count as 1")
	}
	if D2(3, 4).String() != "(3,4,1)" {
		t.Errorf("String = %q", D2(3, 4).String())
	}
}

func TestInstrMixTotals(t *testing.T) {
	m := InstrMix{GlobalLoads: 1, GlobalStores: 2, LocalLoads: 3, SharedLoads: 4,
		SharedStores: 5, GlobalAtomics: 6, Compute: 7, TensorOps: 8}
	if m.Total() != 36 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.MemoryOps() != 21 {
		t.Errorf("MemoryOps = %d", m.MemoryOps())
	}
	if m.GlobalOps() != 12 {
		t.Errorf("GlobalOps = %d", m.GlobalOps())
	}
}

func TestValidateAcceptsGoodKernel(t *testing.T) {
	k := validKernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := map[string]func(*KernelDesc){
		"empty grid":      func(k *KernelDesc) { k.Grid = Dim3{} },
		"huge block":      func(k *KernelDesc) { k.Block = D1(2048) },
		"no instructions": func(k *KernelDesc) { k.Mix = InstrMix{} },
		"bad coalescing":  func(k *KernelDesc) { k.CoalescingFactor = 0.5 },
		"coalescing high": func(k *KernelDesc) { k.CoalescingFactor = 64 },
		"bad divergence":  func(k *KernelDesc) { k.DivergenceEff = 0 },
		"divergence high": func(k *KernelDesc) { k.DivergenceEff = 1.5 },
		"bad strided":     func(k *KernelDesc) { k.StridedFraction = -0.1 },
		"neg imbalance":   func(k *KernelDesc) { k.BlockImbalance = -1 },
	}
	for name, mutate := range mutations {
		k := validKernel()
		mutate(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid kernel", name)
		}
	}
}

func TestThreadsAndWarps(t *testing.T) {
	k := validKernel()
	if k.Threads() != 25600 {
		t.Errorf("Threads = %d", k.Threads())
	}
	if k.WarpsPerBlock() != 8 {
		t.Errorf("WarpsPerBlock = %d", k.WarpsPerBlock())
	}
	k.Block = D1(33)
	if k.WarpsPerBlock() != 2 {
		t.Errorf("33-thread block warps = %d, want 2", k.WarpsPerBlock())
	}
}

func TestResources(t *testing.T) {
	k := validKernel()
	k.RegsPerThread = 40
	k.SharedMemPerBlock = 1024
	r := k.Resources()
	if r.ThreadsPerBlock != 256 || r.RegsPerThread != 40 || r.SharedMemPerBlock != 1024 {
		t.Errorf("Resources = %+v", r)
	}
}

func TestTotalWarpInstructionsScalesWithISA(t *testing.T) {
	k := validKernel()
	v := k.TotalWarpInstructions(gpu.VoltaV100())
	warps := int64(100 * 8)
	if v != warps*int64(k.Mix.Total()) {
		t.Errorf("Volta warp instructions = %d", v)
	}
	tu := k.TotalWarpInstructions(gpu.TuringRTX2060())
	if tu >= v {
		t.Errorf("Turing (ISA 0.97) should execute fewer instructions: %d vs %d", tu, v)
	}
}

func TestFeatureVectorShapeAndNames(t *testing.T) {
	k := validKernel()
	f := k.FeatureVector(gpu.VoltaV100())
	if len(f) != NumFeatures || len(FeatureNames) != NumFeatures {
		t.Fatalf("feature length %d, names %d", len(f), len(FeatureNames))
	}
	// Blocks and divergence are ISA-independent and exactly known.
	if f[11] != 100 {
		t.Errorf("thread_blocks = %v", f[11])
	}
	if f[10] != 32 {
		t.Errorf("divergence_efficiency = %v, want 32 lanes", f[10])
	}
	// No local loads or atomics in this kernel.
	if f[2] != 0 || f[5] != 0 || f[8] != 0 {
		t.Error("zero-mix features should be zero")
	}
	// Coalesced sectors = warps * loads * factor.
	want := float64(100*8) * 8 * 4
	if f[0] != want {
		t.Errorf("coalesced_global_loads = %v, want %v", f[0], want)
	}
}

func TestFeatureVectorISAInvariance(t *testing.T) {
	k := validKernel()
	fv := k.FeatureVector(gpu.VoltaV100())
	fa := k.FeatureVector(gpu.AmpereRTX3070())
	// Instruction-derived metrics scale; structural metrics do not.
	if fa[9] <= fv[9] {
		t.Error("Ampere instruction count should exceed Volta (ISA 1.04)")
	}
	if fa[11] != fv[11] || fa[10] != fv[10] {
		t.Error("grid size and divergence must be generation-invariant")
	}
}

// Property: every feature is non-negative and scales linearly in the grid
// dimension (doubling blocks doubles count metrics, leaves ratios fixed).
func TestFeatureVectorScalingProperty(t *testing.T) {
	f := func(blocks uint8, loads, computeRaw uint8) bool {
		b := int(blocks%200) + 1
		k := validKernel()
		k.Grid = D1(b)
		k.Mix.GlobalLoads = int(loads % 20)
		k.Mix.Compute = int(computeRaw%50) + 1
		fv := k.FeatureVector(gpu.VoltaV100())
		for _, v := range fv {
			if v < 0 {
				return false
			}
		}
		k2 := k
		k2.Grid = D1(2 * b)
		fv2 := k2.FeatureVector(gpu.VoltaV100())
		for i := 0; i < 10; i++ { // count-type features
			if fv[i] == 0 {
				if fv2[i] != 0 {
					return false
				}
				continue
			}
			ratio := fv2[i] / fv[i]
			if ratio < 1.999 || ratio > 2.001 {
				return false
			}
		}
		return fv2[10] == fv[10] && fv2[11] == 2*fv[11]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
