package trace

import "pka/internal/gpu"

// NumFeatures is the length of the Table-2 feature vector.
const NumFeatures = 12

// FeatureNames lists the microarchitecture-agnostic metrics of the paper's
// Table 2, in vector order, with their Nsight Compute counterparts.
var FeatureNames = [NumFeatures]string{
	"coalesced_global_loads",  // l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum
	"coalesced_global_stores", // l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum
	"coalesced_local_loads",   // l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum
	"thread_global_loads",     // smsp__inst_executed_op_global_ld.sum
	"thread_global_stores",    // smsp__inst_executed_op_global_st.sum
	"thread_local_loads",      // smsp__inst_executed_op_local_ld.sum
	"thread_shared_loads",     // smsp__inst_executed_op_shared_ld.sum
	"thread_shared_stores",    // smsp__inst_executed_op_shared_st.sum
	"thread_global_atomics",   // smsp__sass_inst_executed_op_global_atom.sum
	"instructions",            // smsp__inst_executed.sum
	"divergence_efficiency",   // smsp__thread_inst_executed_per_inst_executed.ratio
	"thread_blocks",           // launch_grid_size
}

// FeatureVector computes the kernel's Table-2 metric vector as it would be
// reported by detailed profiling on the given device. Counts scale with the
// generation's ISA representation, reproducing the paper's caveat that
// instruction makeup varies slightly across machine ISAs; the divergence
// ratio and grid size are ISA-independent.
func (k *KernelDesc) FeatureVector(dev gpu.Device) []float64 {
	warps := float64(k.Grid.Count()) * float64(k.WarpsPerBlock())
	threads := float64(k.Threads()) * k.DivergenceEff // executed thread-instruction scale
	isa := dev.ISAScale

	f := make([]float64, NumFeatures)
	f[0] = warps * float64(k.Mix.GlobalLoads) * k.CoalescingFactor * isa
	f[1] = warps * float64(k.Mix.GlobalStores) * k.CoalescingFactor * isa
	f[2] = warps * float64(k.Mix.LocalLoads) * k.CoalescingFactor * isa
	f[3] = threads * float64(k.Mix.GlobalLoads) * isa
	f[4] = threads * float64(k.Mix.GlobalStores) * isa
	f[5] = threads * float64(k.Mix.LocalLoads) * isa
	f[6] = threads * float64(k.Mix.SharedLoads) * isa
	f[7] = threads * float64(k.Mix.SharedStores) * isa
	f[8] = threads * float64(k.Mix.GlobalAtomics) * isa
	f[9] = warps * float64(k.Mix.Total()) * isa
	f[10] = k.DivergenceEff * float64(dev.WarpSize)
	f[11] = float64(k.Grid.Count())
	return f
}
