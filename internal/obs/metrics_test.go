package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

// TestHistogramBucketEdges pins the Prometheus `le` semantics: bucket i is
// an inclusive upper bound, values above the last bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{20, 10}) // unsorted on purpose
	if got := h.Bounds(); got[0] != 10 || got[1] != 20 {
		t.Fatalf("bounds not sorted: %v", got)
	}
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0},      // below everything
		{10, 0},      // exactly on a bound is inclusive
		{10.0001, 1}, // just above a bound spills to the next
		{20, 1},
		{20.0001, 2}, // above the last bound -> +Inf
	}
	for _, c := range cases {
		before := h.BucketCount(c.bucket)
		h.Observe(c.v)
		if got := h.BucketCount(c.bucket); got != before+1 {
			t.Errorf("Observe(%v): bucket %d count %d, want %d", c.v, c.bucket, got, before+1)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	wantSum := -5 + 10 + 10.0001 + 20 + 20.0001
	if got := h.Sum(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this doubles as the data-race check.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{100})
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if lo, hi := h.BucketCount(0), h.BucketCount(1); lo+hi != total {
		t.Errorf("bucket counts %d+%d != %d", lo, hi, total)
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{9}) // bounds ignored on refetch
	if h1 != h2 {
		t.Error("re-registration returned a different histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil || r.Histogram("c", "", nil) != nil {
		t.Error("nil registry returned live instruments")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
}

// TestPrometheusGolden pins the exact text exposition.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "a counter").Add(3)
	r.Gauge("test_gauge", "a gauge").Set(2.5)
	h := r.Histogram("test_hist", "a histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP test_gauge a gauge",
		"# TYPE test_gauge gauge",
		"test_gauge 2.5",
		"# HELP test_hist a histogram",
		"# TYPE test_hist histogram",
		`test_hist_bucket{le="1"} 1`,
		`test_hist_bucket{le="2"} 2`,
		`test_hist_bucket{le="+Inf"} 3`,
		"test_hist_sum 5.5",
		"test_hist_count 3",
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(2)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(5)
	snap := r.Snapshot()
	if snap["c_total"] != int64(2) {
		t.Errorf("snapshot counter = %v", snap["c_total"])
	}
	hs, ok := snap["h"].(map[string]interface{})
	if !ok {
		t.Fatalf("snapshot histogram shape: %T", snap["h"])
	}
	if hs["count"] != int64(2) {
		t.Errorf("snapshot histogram count = %v", hs["count"])
	}
	buckets := hs["buckets"].(map[string]int64)
	if buckets["1"] != 1 || buckets["+Inf"] != 1 {
		t.Errorf("snapshot buckets = %v", buckets)
	}
}
