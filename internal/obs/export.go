// Span shipping: a worker process exports its per-request spans as a
// ProcessTrace (timestamps rebased to wall-clock microseconds so separate
// processes share a time axis) and the client merges them into its own
// tracer with AddProcess. WriteChromeTrace then renders each foreign
// process under its own pid with per-process tracks, so one request opens
// in chrome://tracing as a single tree spanning every process it touched.
package obs

// maxExportEvents bounds how many events one ExportProcess call ships —
// a worker serves one kernel task per request, so this is generous;
// overflow is counted in ProcessTrace.Dropped, never silently lost.
const maxExportEvents = 1 << 12

// EventRecord is one trace event in wire form. Ts is wall-clock
// microseconds (time.Time.UnixMicro at the recording process), not
// tracer-relative — the merging tracer rebases onto its own epoch.
type EventRecord struct {
	Track string `json:"track"`
	Name  string `json:"name"`
	Ph    string `json:"ph"`
	Ts    int64  `json:"ts"`
	Dur   int64  `json:"dur,omitempty"`
	Args  []Arg  `json:"args,omitempty"`
}

// ProcessTrace is one process's exported span buffer.
type ProcessTrace struct {
	Process string        `json:"process"`
	Dropped int64         `json:"dropped,omitempty"`
	Events  []EventRecord `json:"events"`
}

// ExportProcess snapshots the tracer's events as a ProcessTrace named
// process, with timestamps rebased to wall-clock microseconds. Track
// metadata events are skipped (track names travel on each record) and the
// tracer's own drop count is carried along.
func (t *Tracer) ExportProcess(process string) ProcessTrace {
	pt := ProcessTrace{Process: process}
	if t == nil {
		return pt
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make(map[int64]string, len(t.tracks))
	for name, tid := range t.tracks {
		names[tid] = name
	}
	t0micros := t.t0.UnixMicro()
	pt.Dropped = t.dropped
	for _, ev := range t.events {
		if ev.ph == "M" {
			continue
		}
		if len(pt.Events) >= maxExportEvents {
			pt.Dropped++
			continue
		}
		rec := EventRecord{
			Track: names[ev.tid],
			Name:  ev.name,
			Ph:    ev.ph,
			Ts:    t0micros + ev.ts,
			Dur:   ev.dur,
		}
		if len(ev.args) > 0 {
			rec.Args = append([]Arg(nil), ev.args...)
		}
		pt.Events = append(pt.Events, rec)
	}
	return pt
}

// AddProcess merges a foreign process's exported spans into this tracer.
// Traces from the same process name accumulate into one process section;
// WriteChromeTrace renders each as its own pid. Safe for concurrent use.
func (t *Tracer) AddProcess(pt ProcessTrace) {
	if t == nil || pt.Process == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.foreign == nil {
		t.foreign = map[string]*ProcessTrace{}
	}
	dst, ok := t.foreign[pt.Process]
	if !ok {
		dst = &ProcessTrace{Process: pt.Process}
		t.foreign[pt.Process] = dst
	}
	dst.Events = append(dst.Events, pt.Events...)
	dst.Dropped += pt.Dropped
}

// ForeignProcesses returns the names of processes merged in so far,
// sorted, for tests and reports.
func (t *Tracer) ForeignProcesses() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return sortedProcessNames(t.foreign)
}

func sortedProcessNames(m map[string]*ProcessTrace) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
