package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestAuditRecordAndFilter(t *testing.T) {
	a := NewAudit()
	a.Record("pkp", "stop", "k1", 100, map[string]float64{"cv": 0.1})
	a.Record("pks", "sweep-step", "w1", 0, map[string]float64{"k": 4})
	a.Record("pkp", "projection", "k1", 100, nil)

	recs := a.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Errorf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if got := a.Filter("pkp", ""); len(got) != 2 {
		t.Errorf("Filter(pkp,) = %d records, want 2", len(got))
	}
	if got := a.Filter("", "stop"); len(got) != 1 || got[0].Subject != "k1" {
		t.Errorf("Filter(,stop) = %+v, want the one k1 stop", got)
	}
	if got := a.Filter("", ""); len(got) != 3 {
		t.Errorf("Filter(,) = %d records, want all 3", len(got))
	}
	if a.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", a.Dropped())
	}
}

// TestAuditNDJSONGolden pins the serialized record layout, including the
// omitted zero cycle and encoding/json's sorted field keys.
func TestAuditNDJSONGolden(t *testing.T) {
	a := NewAudit()
	a.Record("pkp", "stop", "k1", 42, map[string]float64{"b": 2.5, "a": 1})
	a.Record("pks", "selected", "w1", 0, nil)

	var buf bytes.Buffer
	if err := a.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"seq":1,"component":"pkp","event":"stop","subject":"k1","cycle":42,"fields":{"a":1,"b":2.5}}`,
		`{"seq":2,"component":"pks","event":"selected","subject":"w1"}`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("NDJSON mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestAuditNilInert(t *testing.T) {
	var a *Audit
	a.Record("c", "e", "s", 1, nil)
	if a.Records() != nil || a.Filter("", "") != nil || a.Dropped() != 0 {
		t.Error("nil audit returned data")
	}
	var buf bytes.Buffer
	if err := a.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil audit wrote %q", buf.String())
	}
}

// TestAuditConcurrent records from many goroutines; under -race this is
// the audit stream's thread-safety check. Sequence numbers must come out
// dense and unique.
func TestAuditConcurrent(t *testing.T) {
	a := NewAudit()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Record("pkp", "stop", "k", int64(i), nil)
			}
		}()
	}
	wg.Wait()
	recs := a.Records()
	if len(recs) != workers*perWorker {
		t.Fatalf("got %d records, want %d", len(recs), workers*perWorker)
	}
	seen := make(map[int64]bool, len(recs))
	for _, r := range recs {
		if r.Seq < 1 || r.Seq > int64(len(recs)) || seen[r.Seq] {
			t.Fatalf("bad or duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}
