// Metrics: a zero-dependency registry of atomic counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition and a JSON
// snapshot. All instrument operations are lock-free atomics and nil-safe
// (operating on a nil instrument is a no-op), so instrumented code never
// needs to guard on whether telemetry is enabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n. Negative deltas are ignored to keep the
// counter monotone.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus `le` semantics:
// bucket i counts observations v with v <= bounds[i] (and, for i > 0,
// v > bounds[i-1]); observations above the last bound land in the implicit
// +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v; equal-to-bound observations are inclusive upper.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(bounds) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i].Load()
}

// Bounds returns the histogram's upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name of the same kind returns the existing instrument; a kind
// mismatch panics (a programming error, not a runtime condition). A nil
// *Registry is inert: every constructor returns nil, every writer writes
// nothing.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	}
	r.byName[name] = m
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter).counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge).gauge
}

// Histogram registers (or fetches) a histogram with the given upper bounds
// (the +Inf bucket is implicit). Bounds are only applied on first
// registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[name]; ok {
		if existing.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return existing.hist
	}
	m := &metric{name: name, help: help, kind: kindHistogram, hist: newHistogram(bounds)}
	r.byName[name] = m
	return m.hist
}

func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

// fmtFloat renders a float the way the Prometheus text format expects:
// shortest round-trip representation, +Inf spelled "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.sorted() {
		typ := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[m.kind]
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gauge.Value()))
		case kindHistogram:
			h := m.hist
			var cum int64
			for i, b := range h.bounds {
				cum += h.BucketCount(i)
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", m.name, fmtFloat(b), cum); err != nil {
					return err
				}
			}
			cum += h.BucketCount(len(h.bounds))
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", m.name, fmtFloat(h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", m.name, h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a JSON-friendly view of every metric: counters and
// gauges map to their value, histograms to {count, sum, buckets}.
func (r *Registry) Snapshot() map[string]interface{} {
	if r == nil {
		return nil
	}
	out := map[string]interface{}{}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindHistogram:
			h := m.hist
			buckets := map[string]int64{}
			for i, b := range h.bounds {
				buckets[fmtFloat(b)] = h.BucketCount(i)
			}
			buckets["+Inf"] = h.BucketCount(len(h.bounds))
			out[m.name] = map[string]interface{}{
				"count":   h.Count(),
				"sum":     h.Sum(),
				"buckets": buckets,
			}
		}
	}
	return out
}
