package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock returns a fake clock that advances by step on every reading.
// NewTracerAt consumes the first reading as t0, so the first stamped event
// lands at exactly one step.
func stepClock(step time.Duration) func() time.Time {
	base := time.Unix(1000, 0)
	n := -1
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

// TestChromeTraceGolden pins the exact trace_event JSON: thread_name
// metadata on first track use, complete and instant events, (tid, ts, name)
// ordering, and ordered span args.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracerAt(stepClock(100 * time.Microsecond))
	phase := tr.Track("phase")
	sp := phase.Start("build", Arg{Key: "k", Val: 1}) // ts=100
	sp.Arg("ok", true)
	sp.End() // ts=200 -> dur=100
	audit := tr.Track("audit")
	audit.Instant("mark", Arg{Key: "s", Val: "x"}) // ts=300

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` + "\n" + strings.Join([]string{
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"phase"}}`,
		`{"name":"build","ph":"X","pid":1,"tid":1,"ts":100,"dur":100,"args":{"k":1,"ok":true}}`,
		`{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"audit"}}`,
		`{"name":"mark","ph":"i","pid":1,"tid":2,"ts":300,"s":"t","args":{"s":"x"}}`,
	}, ",\n") + "\n]}\n"
	if got := buf.String(); got != want {
		t.Errorf("trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 4 {
		t.Errorf("parsed %d events, want 4", len(parsed.TraceEvents))
	}
}

// TestObserverTraceMergesAudit pins that WriteChromeTrace renders audit
// records as instants on per-component audit tracks, fields sorted by key.
func TestObserverTraceMergesAudit(t *testing.T) {
	o := NewObserverAt(stepClock(100 * time.Microsecond))
	o.StartSpan("phase", "build").End() // ts=100..200
	o.Audit.Record("pkp", "stop", "k1", 42, map[string]float64{"drift_cv": 0.1})

	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` + "\n" + strings.Join([]string{
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"phase"}}`,
		`{"name":"build","ph":"X","pid":1,"tid":1,"ts":100,"dur":100}`,
		`{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"audit:pkp"}}`,
		`{"name":"pkp:stop","ph":"i","pid":1,"tid":2,"ts":300,"s":"t","args":{"subject":"k1","seq":1,"cycle":42,"drift_cv":0.1}}`,
	}, ",\n") + "\n]}\n"
	if got := buf.String(); got != want {
		t.Errorf("trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	times := []time.Duration{0, 500 * time.Microsecond, 300 * time.Microsecond}
	i := -1
	tr := NewTracerAt(func() time.Time {
		i++
		return time.Unix(1000, 0).Add(times[i])
	})
	tr.Track("t").Start("backwards").End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":0`) {
		t.Errorf("backwards clock did not clamp duration to 0:\n%s", buf.String())
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("x")
	if tk != nil {
		t.Error("nil tracer returned a live track")
	}
	sp := tk.Start("y")
	sp.Arg("k", 1)
	sp.End()
	tk.Instant("z")
	if tr.Dropped() != 0 {
		t.Error("nil tracer reported drops")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"traceEvents":[]}` {
		t.Errorf("nil tracer trace = %q", got)
	}

	var o *Observer
	o.StartSpan("a", "b").End()
	if o.SimObs("t") != nil || o.SimMetrics() != nil || o.PKPMetrics() != nil ||
		o.PKSMetrics() != nil || o.PoolMetrics() != nil {
		t.Error("nil observer returned live components")
	}
	var so *SimObs
	so.StartKernel("k").End()
	buf.Reset()
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"traceEvents":[]}` {
		t.Errorf("nil observer trace = %q", got)
	}
}

// TestConcurrentTracks exercises the tracer from many goroutines (the race
// detector turns this into the thread-safety check) and confirms the
// export stays valid JSON with every event accounted for.
func TestConcurrentTracks(t *testing.T) {
	tr := NewTracer()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := tr.Track("worker-" + string(rune('a'+w)))
			for i := 0; i < perWorker; i++ {
				sp := tk.Start("task", Arg{Key: "i", Val: i})
				tk.Instant("tick")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	// workers metadata events + per worker: perWorker spans + instants.
	want := workers * (1 + 2*perWorker)
	if len(parsed.TraceEvents) != want {
		t.Errorf("exported %d events, want %d", len(parsed.TraceEvents), want)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped %d events below the cap", tr.Dropped())
	}
}

// TestPoolMetricsLifecycle checks the queued/active bookkeeping through a
// task's life and that the high-water mark sticks.
func TestPoolMetricsLifecycle(t *testing.T) {
	o := NewObserverAt(stepClock(time.Microsecond))
	pm := o.PoolMetrics()
	pm.TaskQueued()
	pm.TaskQueued()
	if pm.Queued.Value() != 2 {
		t.Errorf("queue depth = %v, want 2", pm.Queued.Value())
	}
	pm.TaskStarted()
	pm.TaskStarted()
	if pm.Queued.Value() != 0 || pm.Active.Value() != 2 {
		t.Errorf("after start: queued=%v active=%v, want 0/2", pm.Queued.Value(), pm.Active.Value())
	}
	pm.TaskDone()
	pm.TaskDone()
	if pm.Active.Value() != 0 || pm.Tasks.Value() != 2 || pm.MaxSeen.Value() != 2 {
		t.Errorf("after done: active=%v tasks=%v max=%v, want 0/2/2",
			pm.Active.Value(), pm.Tasks.Value(), pm.MaxSeen.Value())
	}
	var nilPM *PoolMetrics
	nilPM.TaskQueued()
	nilPM.TaskStarted()
	nilPM.TaskDone()
}
