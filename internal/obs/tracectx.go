// Cross-process trace identity: a W3C trace-context style traceparent
// header carries (trace ID, parent span ID) from the serve tier through
// the dispatcher to every pkad worker, so spans recorded in separate
// processes can be stitched into one tree. IDs come from an IDGen that is
// crypto-seeded in production and deterministically seeded in golden
// tests — the ID scheme itself never influences execution, only labeling.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
)

// TraceContext identifies one request's position in a distributed trace:
// the trace it belongs to and the span that is its parent. The zero value
// is "not traced" and propagates as a no-op.
type TraceContext struct {
	TraceID string // 32 lowercase hex chars, not all-zero
	SpanID  string // 16 lowercase hex chars, not all-zero
}

// Valid reports whether the context carries a well-formed, non-zero
// trace ID and span ID.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Child returns a context in the same trace whose span ID is a fresh ID
// drawn from g — the caller's new span, to be used as the parent of
// whatever it propagates further. Invalid contexts stay invalid.
func (tc TraceContext) Child(g *IDGen) TraceContext {
	if !tc.Valid() {
		return TraceContext{}
	}
	return TraceContext{TraceID: tc.TraceID, SpanID: g.SpanID()}
}

// Traceparent renders the context as a W3C traceparent header value:
// version 00, sampled flag set. Invalid contexts render as "".
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent parses a version-00 traceparent header value. It
// returns the zero TraceContext and false for anything malformed — an
// unparseable header means "not traced", never an error surfaced to the
// request path.
func ParseTraceparent(s string) (TraceContext, bool) {
	// 00-<32 hex trace id>-<16 hex span id>-<2 hex flags> = 55 bytes.
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !tc.Valid() || !isHex(s[53:55]) {
		return TraceContext{}, false
	}
	return tc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isHexID(s string, n int) bool {
	return len(s) == n && isHex(s) && strings.Trim(s, "0") != ""
}

// IDGen generates trace and span IDs. Production generators are seeded
// from crypto/rand; tests pass a fixed seed for reproducible IDs (the
// deterministic-ID mode the golden trace tests rely on). The generator is
// a splitmix64 stream — cheap, well-distributed, and safe for concurrent
// use under its mutex.
type IDGen struct {
	mu    sync.Mutex
	state uint64
}

// NewIDGen returns a generator. Seed 0 requests a crypto/rand seed;
// any other seed makes the ID stream fully deterministic.
func NewIDGen(seed uint64) *IDGen {
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		if seed == 0 {
			seed = 0x9e3779b97f4a7c15
		}
	}
	return &IDGen{state: seed}
}

func (g *IDGen) next() uint64 {
	g.mu.Lock()
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	g.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TraceID returns a fresh 32-hex-char non-zero trace ID.
func (g *IDGen) TraceID() string {
	for {
		hi, lo := g.next(), g.next()
		if hi|lo != 0 {
			return fmt.Sprintf("%016x%016x", hi, lo)
		}
	}
}

// SpanID returns a fresh 16-hex-char non-zero span ID.
func (g *IDGen) SpanID() string {
	for {
		if v := g.next(); v != 0 {
			return fmt.Sprintf("%016x", v)
		}
	}
}

// NewTrace starts a fresh trace: a new trace ID with a new root span ID.
func (g *IDGen) NewTrace() TraceContext {
	return TraceContext{TraceID: g.TraceID(), SpanID: g.SpanID()}
}
