// Span tracing: named tracks of timed spans and instant events, exported
// as Chrome trace_event JSON so a study run opens directly in
// chrome://tracing or Perfetto. The clock is injectable for deterministic
// golden tests. Tracing happens strictly outside hot loops — callers open
// a span around a pipeline phase or a whole kernel simulation, never
// around a cycle.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxTraceEvents bounds tracer memory on very large studies; events beyond
// the cap are counted in Dropped and omitted from the export.
const maxTraceEvents = 1 << 22

// Arg is one key/value annotation on a span or instant event. Values must
// be JSON-marshalable (numbers, strings, bools).
type Arg struct {
	Key string
	Val interface{}
}

type traceEvent struct {
	name string
	ph   string // "X" complete, "i" instant, "M" metadata
	ts   int64  // microseconds since tracer start
	dur  int64  // complete events only
	tid  int64
	args []Arg
}

// Tracer collects trace events. All methods are safe for concurrent use.
// A nil *Tracer is inert.
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Time
	t0      time.Time
	events  []traceEvent
	tracks  map[string]int64
	nextTID int64
	dropped int64
}

// NewTracer returns a tracer on the real clock.
func NewTracer() *Tracer { return NewTracerAt(time.Now) }

// NewTracerAt returns a tracer reading timestamps from now — inject a fake
// clock for deterministic traces in tests.
func NewTracerAt(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, t0: now(), tracks: map[string]int64{}, nextTID: 1}
}

func (t *Tracer) stamp() int64 { return t.now().Sub(t.t0).Microseconds() }

func (t *Tracer) push(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Dropped returns how many events were discarded at the memory cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Track is a named row in the trace (a trace_event thread). Spans on one
// track should not overlap in time — give concurrent producers their own
// tracks.
type Track struct {
	t   *Tracer
	tid int64
}

// Track returns the track with the given name, creating it (and emitting
// its thread_name metadata event) on first use.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tid, ok := t.tracks[name]
	if !ok {
		tid = t.nextTID
		t.nextTID++
		t.tracks[name] = tid
		if len(t.events) < maxTraceEvents {
			t.events = append(t.events, traceEvent{
				name: "thread_name", ph: "M", tid: tid,
				args: []Arg{{Key: "name", Val: name}},
			})
		} else {
			t.dropped++
		}
	}
	t.mu.Unlock()
	return &Track{t: t, tid: tid}
}

// Span is an open interval on a track. End closes it; a nil *Span is
// inert, so instrumentation can be written unconditionally.
type Span struct {
	t     *Tracer
	tid   int64
	name  string
	start int64
	args  []Arg
}

// Start opens a span on the track.
func (tk *Track) Start(name string, args ...Arg) *Span {
	if tk == nil || tk.t == nil {
		return nil
	}
	return &Span{t: tk.t, tid: tk.tid, name: name, start: tk.t.stamp(), args: args}
}

// Instant records a zero-duration event on the track.
func (tk *Track) Instant(name string, args ...Arg) {
	if tk == nil || tk.t == nil {
		return
	}
	tk.t.push(traceEvent{name: name, ph: "i", ts: tk.t.stamp(), tid: tk.tid, args: args})
}

// Arg attaches an annotation to the span and returns it for chaining.
func (s *Span) Arg(key string, val interface{}) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
	return s
}

// End closes the span, recording it as a complete event.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.stamp()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.push(traceEvent{name: s.name, ph: "X", ts: s.start, dur: dur, tid: s.tid, args: s.args})
}

// writeArgs renders an ordered arg list as a JSON object.
func writeArgs(w io.Writer, args []Arg) error {
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, a := range args {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return err
		}
		v, err := json.Marshal(a.Val)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s:%s", k, v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// WriteChromeTrace renders the collected events (plus any extra instant
// events the caller merges in, e.g. audit records) as a Chrome trace_event
// JSON object. Events are sorted by (tid, ts, name) for a stable layout.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].tid != events[j].tid {
			return events[i].tid < events[j].tid
		}
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].name < events[j].name
	})
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		name, err := json.Marshal(ev.name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, `{"name":%s,"ph":%q,"pid":1,"tid":%d`, name, ev.ph, ev.tid); err != nil {
			return err
		}
		if ev.ph != "M" {
			if _, err := fmt.Fprintf(w, `,"ts":%d`, ev.ts); err != nil {
				return err
			}
		}
		if ev.ph == "X" {
			if _, err := fmt.Fprintf(w, `,"dur":%d`, ev.dur); err != nil {
				return err
			}
		}
		if ev.ph == "i" {
			// Thread-scoped instant events render as ticks on the track.
			if _, err := io.WriteString(w, `,"s":"t"`); err != nil {
				return err
			}
		}
		if len(ev.args) > 0 {
			if _, err := io.WriteString(w, `,"args":`); err != nil {
				return err
			}
			if err := writeArgs(w, ev.args); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
