// Span tracing: named tracks of timed spans and instant events, exported
// as Chrome trace_event JSON so a study run opens directly in
// chrome://tracing or Perfetto. The clock is injectable for deterministic
// golden tests. Tracing happens strictly outside hot loops — callers open
// a span around a pipeline phase or a whole kernel simulation, never
// around a cycle.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxTraceEvents bounds tracer memory on very large studies; events beyond
// the cap are counted in Dropped and omitted from the export. A var only
// so tests can lower the cap without allocating millions of events.
var maxTraceEvents = 1 << 22

// Arg is one key/value annotation on a span or instant event. Values must
// be JSON-marshalable (numbers, strings, bools). The tags are the wire
// form used when spans ship between processes (see export.go).
type Arg struct {
	Key string      `json:"k"`
	Val interface{} `json:"v"`
}

type traceEvent struct {
	name string
	ph   string // "X" complete, "i" instant, "M" metadata
	ts   int64  // microseconds since tracer start
	dur  int64  // complete events only
	tid  int64
	args []Arg
}

// Tracer collects trace events. All methods are safe for concurrent use.
// A nil *Tracer is inert.
type Tracer struct {
	mu       sync.Mutex
	now      func() time.Time
	t0       time.Time
	events   []traceEvent
	tracks   map[string]int64
	nextTID  int64
	dropped  int64
	dropCtr  *Counter
	procName string
	foreign  map[string]*ProcessTrace
}

// NewTracer returns a tracer on the real clock.
func NewTracer() *Tracer { return NewTracerAt(time.Now) }

// NewTracerAt returns a tracer reading timestamps from now — inject a fake
// clock for deterministic traces in tests.
func NewTracerAt(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, t0: now(), tracks: map[string]int64{}, nextTID: 1}
}

func (t *Tracer) stamp() int64 { return t.now().Sub(t.t0).Microseconds() }

func (t *Tracer) push(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
		t.dropCtr.Add(1)
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Dropped returns how many events were discarded at the memory cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetDropCounter installs a counter that is bumped every time an event is
// discarded at the memory cap, so span loss shows up in the metrics
// exposition instead of only in a post-hoc Dropped() call.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropCtr = c
	t.mu.Unlock()
}

// SetProcessName names this tracer's own process in merged multi-process
// output. Without it (and without any merged foreign processes) the
// exported trace stays in the legacy single-process form.
func (t *Tracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procName = name
	t.mu.Unlock()
}

// Track is a named row in the trace (a trace_event thread). Spans on one
// track should not overlap in time — give concurrent producers their own
// tracks.
type Track struct {
	t   *Tracer
	tid int64
}

// Track returns the track with the given name, creating it (and emitting
// its thread_name metadata event) on first use.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tid, ok := t.tracks[name]
	if !ok {
		tid = t.nextTID
		t.nextTID++
		t.tracks[name] = tid
		if len(t.events) < maxTraceEvents {
			t.events = append(t.events, traceEvent{
				name: "thread_name", ph: "M", tid: tid,
				args: []Arg{{Key: "name", Val: name}},
			})
		} else {
			t.dropped++
			t.dropCtr.Add(1)
		}
	}
	t.mu.Unlock()
	return &Track{t: t, tid: tid}
}

// Span is an open interval on a track. End closes it; a nil *Span is
// inert, so instrumentation can be written unconditionally.
type Span struct {
	t     *Tracer
	tid   int64
	name  string
	start int64
	args  []Arg
}

// Start opens a span on the track.
func (tk *Track) Start(name string, args ...Arg) *Span {
	if tk == nil || tk.t == nil {
		return nil
	}
	return &Span{t: tk.t, tid: tk.tid, name: name, start: tk.t.stamp(), args: args}
}

// Instant records a zero-duration event on the track.
func (tk *Track) Instant(name string, args ...Arg) {
	if tk == nil || tk.t == nil {
		return
	}
	tk.t.push(traceEvent{name: name, ph: "i", ts: tk.t.stamp(), tid: tk.tid, args: args})
}

// Arg attaches an annotation to the span and returns it for chaining.
func (s *Span) Arg(key string, val interface{}) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
	return s
}

// End closes the span, recording it as a complete event.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.stamp()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.push(traceEvent{name: s.name, ph: "X", ts: s.start, dur: dur, tid: s.tid, args: s.args})
}

// writeArgs renders an ordered arg list as a JSON object.
func writeArgs(w io.Writer, args []Arg) error {
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, a := range args {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return err
		}
		v, err := json.Marshal(a.Val)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s:%s", k, v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// pidEvent is one event ready for rendering: a traceEvent assigned to a
// Chrome trace process.
type pidEvent struct {
	pid int64
	ev  traceEvent
}

func sortEvents(events []traceEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].tid != events[j].tid {
			return events[i].tid < events[j].tid
		}
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].name < events[j].name
	})
}

// WriteChromeTrace renders the collected events (plus any extra instant
// events the caller merges in, e.g. audit records) as a Chrome trace_event
// JSON object. Local events are sorted by (tid, ts, name) for a stable
// layout. When foreign processes have been merged in with AddProcess (or a
// process name was set), each process renders under its own pid with
// process_name metadata and per-process tracks, timestamps rebased onto
// this tracer's epoch; and when any events were dropped at the memory cap,
// a trace_dropped metadata note records the count.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	procName := t.procName
	foreignNames := sortedProcessNames(t.foreign)
	foreign := make([]ProcessTrace, 0, len(foreignNames))
	totalDropped := t.dropped
	for _, n := range foreignNames {
		foreign = append(foreign, *t.foreign[n])
		totalDropped += t.foreign[n].Dropped
	}
	t0micros := t.t0.UnixMicro()
	t.mu.Unlock()

	sortEvents(events)
	multi := procName != "" || len(foreign) > 0

	out := make([]pidEvent, 0, len(events)+16)
	if multi {
		localName := procName
		if localName == "" {
			localName = "client"
		}
		out = append(out, pidEvent{pid: 1, ev: traceEvent{
			name: "process_name", ph: "M",
			args: []Arg{{Key: "name", Val: localName}},
		}})
	}
	for _, ev := range events {
		out = append(out, pidEvent{pid: 1, ev: ev})
	}
	for i, pt := range foreign {
		pid := int64(i + 2)
		out = append(out, pidEvent{pid: pid, ev: traceEvent{
			name: "process_name", ph: "M",
			args: []Arg{{Key: "name", Val: pt.Process}},
		}})
		// Tracks get per-process tids in order of first appearance.
		tids := map[string]int64{}
		evs := make([]traceEvent, 0, len(pt.Events))
		var meta []traceEvent
		for _, rec := range pt.Events {
			tid, ok := tids[rec.Track]
			if !ok {
				tid = int64(len(tids) + 1)
				tids[rec.Track] = tid
				meta = append(meta, traceEvent{
					name: "thread_name", ph: "M", tid: tid,
					args: []Arg{{Key: "name", Val: rec.Track}},
				})
			}
			evs = append(evs, traceEvent{
				name: rec.Name, ph: rec.Ph, ts: rec.Ts - t0micros,
				dur: rec.Dur, tid: tid, args: rec.Args,
			})
		}
		sortEvents(evs)
		for _, ev := range append(meta, evs...) {
			out = append(out, pidEvent{pid: pid, ev: ev})
		}
	}
	if totalDropped > 0 {
		out = append(out, pidEvent{pid: 1, ev: traceEvent{
			name: "trace_dropped", ph: "M",
			args: []Arg{{Key: "dropped", Val: totalDropped}},
		}})
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, pe := range out {
		ev := pe.ev
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		name, err := json.Marshal(ev.name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, `{"name":%s,"ph":%q,"pid":%d,"tid":%d`, name, ev.ph, pe.pid, ev.tid); err != nil {
			return err
		}
		if ev.ph != "M" {
			if _, err := fmt.Fprintf(w, `,"ts":%d`, ev.ts); err != nil {
				return err
			}
		}
		if ev.ph == "X" {
			if _, err := fmt.Fprintf(w, `,"dur":%d`, ev.dur); err != nil {
				return err
			}
		}
		if ev.ph == "i" {
			// Thread-scoped instant events render as ticks on the track.
			if _, err := io.WriteString(w, `,"s":"t"`); err != nil {
				return err
			}
		}
		if len(ev.args) > 0 {
			if _, err := io.WriteString(w, `,"args":`); err != nil {
				return err
			}
			if err := writeArgs(w, ev.args); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
