// Build identity: every daemon in the fleet reports what binary it is —
// module version, Go toolchain, and VCS revision — on /metrics (as a
// pka_build_info gauge) and in its health payload, so a mixed-version
// fleet is visible from the outside.
package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary.
type BuildInfo struct {
	Version  string `json:"version"`
	Go       string `json:"go"`
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read once from
// debug.ReadBuildInfo. Binaries built outside a module (or without VCS
// stamping) report version "devel" with no revision.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "devel", Go: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			buildInfo.Version = v
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo publishes the pka_build_info gauge: value pinned to 1,
// build identity carried in the help text (the registry has no label
// support). Daemons call this explicitly; it is not part of NewObserver
// because the environment-dependent help line would break byte-pinned
// golden expositions.
func (o *Observer) RegisterBuildInfo() BuildInfo {
	b := Build()
	if o == nil || o.Metrics == nil {
		return b
	}
	help := "build identity (value always 1): version=" + b.Version + " go=" + b.Go
	if b.Revision != "" {
		help += " revision=" + b.Revision
		if b.Modified {
			help += "+dirty"
		}
	}
	o.Metrics.Gauge("pka_build_info", help).Set(1)
	return b
}
