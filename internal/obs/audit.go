// Decision-audit stream: an append-only log of structured records
// explaining the pipeline's online decisions — every PKP stop (cycle,
// rolling-mean drift, wave state, projection inputs) and every PKS sweep
// step (K tried, projected error, chosen K). The stream exists because an
// online truncation policy is only trustworthy if its runtime decisions
// are inspectable after the fact (cf. Pac-Sim); records are plain data so
// tests can re-derive a decision from what was logged.
package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// maxAuditRecords bounds audit memory on very large studies; records
// beyond the cap are counted and dropped.
const maxAuditRecords = 1 << 20

// AuditRecord is one logged decision. Fields holds the numeric evidence
// the decision was made on; encoding/json sorts map keys, so serialized
// records are deterministic.
type AuditRecord struct {
	Seq       int64              `json:"seq"`
	Component string             `json:"component"` // "pkp", "pks", ...
	Event     string             `json:"event"`     // "stop", "wave-hold", "projection", "sweep-step", "selected"
	Subject   string             `json:"subject"`   // workload or kernel the decision is about
	Cycle     int64              `json:"cycle,omitempty"`
	Fields    map[string]float64 `json:"fields,omitempty"`
}

// Audit collects decision records. All methods are safe for concurrent
// use; a nil *Audit discards everything.
type Audit struct {
	mu      sync.Mutex
	seq     int64
	recs    []AuditRecord
	dropped int64
}

// NewAudit returns an empty audit stream.
func NewAudit() *Audit { return &Audit{} }

// Record appends one decision. The fields map is stored as-is and must
// not be mutated by the caller afterwards.
func (a *Audit) Record(component, event, subject string, cycle int64, fields map[string]float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if len(a.recs) >= maxAuditRecords {
		a.dropped++
		a.mu.Unlock()
		return
	}
	a.seq++
	a.recs = append(a.recs, AuditRecord{
		Seq: a.seq, Component: component, Event: event,
		Subject: subject, Cycle: cycle, Fields: fields,
	})
	a.mu.Unlock()
}

// Records returns a copy of every record in append order.
func (a *Audit) Records() []AuditRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AuditRecord(nil), a.recs...)
}

// Filter returns records matching the given component and event; empty
// strings match anything.
func (a *Audit) Filter(component, event string) []AuditRecord {
	var out []AuditRecord
	for _, r := range a.Records() {
		if (component == "" || r.Component == component) && (event == "" || r.Event == event) {
			out = append(out, r)
		}
	}
	return out
}

// Dropped returns how many records were discarded at the memory cap.
func (a *Audit) Dropped() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// WriteNDJSON renders the stream as newline-delimited JSON, one record
// per line.
func (a *Audit) WriteNDJSON(w io.Writer) error {
	for _, r := range a.Records() {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
