// Package obs is the PKA stack's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus text exposition and JSON snapshot), span tracing exported as
// Chrome trace_event JSON, and a structured decision-audit stream for the
// PKP/PKS online policies.
//
// The layer is strictly observe-only: nothing in it feeds back into the
// pipeline, so enabling every output must leave study results
// byte-identical (the golden determinism tests pin this). It is also
// hot-loop-free by construction — the simulator aggregates telemetry once
// per kernel, never per cycle, and every instrument is nil-safe so
// disabled telemetry costs a nil check at kernel granularity.
package obs

import (
	"io"
	"sync"
	"time"
)

// Observer bundles the three telemetry facets. Any field may be nil to
// disable that facet; a nil *Observer disables everything. All helper
// accessors are nil-safe.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	Audit   *Audit

	sim    *SimMetrics
	pkp    *PKPMetrics
	pks    *PKSMetrics
	pool   *PoolMetrics
	remote *RemoteMetrics
	serve  *ServeMetrics
	exec   *ExecMetrics
	shard  *ShardMetrics
	dedup  *DedupMetrics
	stream *StreamMetrics
	pred   *PredictorMetrics

	cacheMu    sync.Mutex
	cacheSrcs  []func() map[string]CacheCounts
	remoteSrcs []func() []RemoteWorkerStats
}

// NewObserver returns an Observer with all three facets enabled on the
// real clock.
func NewObserver() *Observer { return NewObserverAt(time.Now) }

// NewObserverAt is NewObserver with an injectable clock for the tracer.
func NewObserverAt(now func() time.Time) *Observer {
	o := &Observer{Metrics: NewRegistry(), Tracer: NewTracerAt(now), Audit: NewAudit()}
	// Register every metric family eagerly so expositions always contain
	// them, populated or not.
	o.SimMetrics()
	o.PKPMetrics()
	o.PKSMetrics()
	o.PoolMetrics()
	o.RemoteMetrics()
	o.ServeMetrics()
	o.ExecMetrics()
	o.ShardMetrics()
	o.DedupMetrics()
	o.StreamMetrics()
	o.PredictorMetrics()
	// Span loss at the tracer's memory cap lands in the exposition instead
	// of vanishing silently.
	o.Tracer.SetDropCounter(o.Metrics.Counter(
		"pka_trace_dropped_total", "trace events discarded at the tracer memory cap"))
	return o
}

// StartSpan opens a span named name on the given track, or returns an
// inert nil span when tracing is disabled.
func (o *Observer) StartSpan(track, name string, args ...Arg) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Track(track).Start(name, args...)
}

// WriteChromeTrace renders the tracer's spans plus the audit stream
// (as instant events on per-component "audit:" tracks) in Chrome
// trace_event JSON.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil || o.Tracer == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	if o.Audit != nil {
		for _, r := range o.Audit.Records() {
			tk := o.Tracer.Track("audit:" + r.Component)
			args := make([]Arg, 0, len(r.Fields)+3)
			args = append(args, Arg{Key: "subject", Val: r.Subject}, Arg{Key: "seq", Val: r.Seq})
			if r.Cycle != 0 {
				args = append(args, Arg{Key: "cycle", Val: r.Cycle})
			}
			for _, k := range sortedFieldKeys(r.Fields) {
				args = append(args, Arg{Key: k, Val: r.Fields[k]})
			}
			tk.Instant(r.Component+":"+r.Event, args...)
		}
	}
	return o.Tracer.WriteChromeTrace(w)
}

func sortedFieldKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: field maps are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// --- Component metric bundles -------------------------------------------
//
// Bundles pre-resolve their instruments once so instrumented code pays a
// field load, not a registry lookup, when it reports.

// SimMetrics is the cycle-level simulator's metric family. Counters are
// updated once per kernel at kernel end — never inside the cycle loop.
type SimMetrics struct {
	Kernels      *Counter
	StoppedEarly *Counter
	Cycles       *Counter
	WarpInstrs   *Counter
	L1Hits       *Counter
	L1Misses     *Counter
	L2Hits       *Counter
	L2Misses     *Counter
	DRAMBytes    *Counter
	KernelCycles *Histogram
}

// SimMetrics lazily builds (and then reuses) the simulator bundle.
func (o *Observer) SimMetrics() *SimMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.sim == nil {
		r := o.Metrics
		o.sim = &SimMetrics{
			Kernels:      r.Counter("pka_sim_kernels_total", "kernel launches simulated"),
			StoppedEarly: r.Counter("pka_sim_kernels_stopped_early_total", "kernels truncated by a controller or cycle cap"),
			Cycles:       r.Counter("pka_sim_cycles_total", "simulated cycles across all kernels"),
			WarpInstrs:   r.Counter("pka_sim_warp_instrs_total", "warp instructions issued across all kernels"),
			L1Hits:       r.Counter("pka_sim_l1_hits_total", "L1 cache hits"),
			L1Misses:     r.Counter("pka_sim_l1_misses_total", "L1 cache misses"),
			L2Hits:       r.Counter("pka_sim_l2_hits_total", "L2 cache hits"),
			L2Misses:     r.Counter("pka_sim_l2_misses_total", "L2 cache misses"),
			DRAMBytes:    r.Counter("pka_sim_dram_bytes_total", "bytes moved through the DRAM channel"),
			KernelCycles: r.Histogram("pka_sim_kernel_cycles", "per-kernel simulated cycle counts",
				[]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}),
		}
	}
	return o.sim
}

// PKPMetrics is Principal Kernel Projection's metric family.
type PKPMetrics struct {
	Stops     *Counter
	WaveHolds *Counter
	StopCycle *Histogram
	DriftCV   *Histogram
}

// PKPMetrics lazily builds (and then reuses) the projector bundle.
func (o *Observer) PKPMetrics() *PKPMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pkp == nil {
		r := o.Metrics
		o.pkp = &PKPMetrics{
			Stops:     r.Counter("pka_pkp_stops_total", "stability stop decisions fired"),
			WaveHolds: r.Counter("pka_pkp_wave_holds_total", "stable signals held back by the wave constraint"),
			StopCycle: r.Histogram("pka_pkp_stop_cycle", "cycle at which stability fired",
				[]float64{1e3, 1e4, 1e5, 1e6, 1e7}),
			DriftCV: r.Histogram("pka_pkp_stop_drift_cv", "rolling-mean drift CV at the stop decision",
				[]float64{0.01, 0.025, 0.05, 0.1, 0.25}),
		}
	}
	return o.pkp
}

// PKSMetrics is Principal Kernel Selection's metric family.
type PKSMetrics struct {
	Selections *Counter
	SweepSteps *Counter
	ChosenK    *Histogram
	ErrorPct   *Histogram
}

// PKSMetrics lazily builds (and then reuses) the selection bundle.
func (o *Observer) PKSMetrics() *PKSMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pks == nil {
		r := o.Metrics
		o.pks = &PKSMetrics{
			Selections: r.Counter("pka_pks_selections_total", "selection runs completed"),
			SweepSteps: r.Counter("pka_pks_sweep_steps_total", "K values tried across all sweeps"),
			ChosenK: r.Histogram("pka_pks_chosen_k", "K chosen per selection",
				[]float64{1, 2, 4, 8, 16, 20}),
			ErrorPct: r.Histogram("pka_pks_selection_error_pct", "selection error at the chosen K",
				[]float64{1, 2, 5, 10, 25}),
		}
	}
	return o.pks
}

// PoolMetrics reports worker-pool occupancy. It structurally implements
// internal/parallel's Observer interface; its methods are nil-safe so a
// typed-nil can be installed harmlessly.
type PoolMetrics struct {
	Tasks   *Counter
	Queued  *Gauge
	Active  *Gauge
	MaxSeen *Gauge
}

// PoolMetrics lazily builds (and then reuses) the pool bundle.
func (o *Observer) PoolMetrics() *PoolMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pool == nil {
		r := o.Metrics
		o.pool = &PoolMetrics{
			Tasks:   r.Counter("pka_pool_tasks_total", "tasks completed by worker pools"),
			Queued:  r.Gauge("pka_pool_queue_depth", "tasks submitted but not yet running"),
			Active:  r.Gauge("pka_pool_active_workers", "tasks currently running"),
			MaxSeen: r.Gauge("pka_pool_active_workers_max", "high-water mark of concurrently running tasks"),
		}
	}
	return o.pool
}

// TaskQueued records a task waiting for a worker slot.
func (m *PoolMetrics) TaskQueued() {
	if m == nil {
		return
	}
	m.Queued.Add(1)
}

// TaskStarted records a task acquiring a worker slot.
func (m *PoolMetrics) TaskStarted() {
	if m == nil {
		return
	}
	m.Queued.Add(-1)
	m.Active.Add(1)
	// Racy read-then-write high-water mark: good enough for a debug gauge.
	if a := m.Active.Value(); a > m.MaxSeen.Value() {
		m.MaxSeen.Set(a)
	}
}

// TaskDone records a task finishing.
func (m *PoolMetrics) TaskDone() {
	if m == nil {
		return
	}
	m.Active.Add(-1)
	m.Tasks.Add(1)
}

// RemoteMetrics is the scale-out dispatcher's metric family: every RPC it
// issues, every hedge it launches, every breaker it trips, and — the one
// number that must stay zero for results to be trusted — how many tasks it
// quietly ran locally because the pool could not serve them. All fields
// are nil-safe instruments, so a zero-value bundle records nothing.
type RemoteMetrics struct {
	RPCs          *Counter
	RPCSuccess    *Counter
	RPCFailures   *Counter
	Busy          *Counter
	Hedges        *Counter
	HedgeWins     *Counter
	BreakerOpens  *Counter
	Tasks         *Counter
	FallbackLocal *Counter
	RPCLatency    *Histogram
}

// RemoteMetrics lazily builds (and then reuses) the dispatcher bundle.
func (o *Observer) RemoteMetrics() *RemoteMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.remote == nil {
		r := o.Metrics
		o.remote = &RemoteMetrics{
			RPCs:          r.Counter("pka_remote_rpc_total", "task-execution RPCs issued to workers (hedges included)"),
			RPCSuccess:    r.Counter("pka_remote_rpc_success_total", "RPCs that returned a valid outcome"),
			RPCFailures:   r.Counter("pka_remote_rpc_failures_total", "RPCs that failed (transport, timeout, 5xx, malformed response)"),
			Busy:          r.Counter("pka_remote_busy_total", "RPCs rejected by a worker at capacity (transient, not a failure)"),
			Hedges:        r.Counter("pka_remote_hedges_total", "hedged duplicate RPCs launched after the latency quantile"),
			HedgeWins:     r.Counter("pka_remote_hedge_wins_total", "tasks whose hedge finished before the primary"),
			BreakerOpens:  r.Counter("pka_remote_breaker_opens_total", "per-worker circuit-breaker open transitions"),
			Tasks:         r.Counter("pka_remote_tasks_total", "kernel tasks satisfied by the remote tier"),
			FallbackLocal: r.Counter("pka_remote_fallback_local_total", "tasks that fell back to local simulation"),
			RPCLatency: r.Histogram("pka_remote_rpc_latency_seconds", "successful RPC round-trip latency",
				[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}),
		}
	}
	return o.remote
}

// ServeMetrics is the study server's metric family: the admission
// funnel (accepted → completed, with invalid/rejected/drain-rejected
// spill paths), point-in-time occupancy, and the two latency
// distributions the SLO is written against — time queued and total time
// in system. All fields are nil-safe instruments.
type ServeMetrics struct {
	Requests     *Counter
	Completed    *Counter
	Errors       *Counter
	Invalid      *Counter
	Rejected     *Counter
	DrainRejects *Counter
	QueueDepth   *Gauge
	InFlight     *Gauge
	QueueWait    *Histogram
	Latency      *Histogram
}

// ServeMetrics lazily builds (and then reuses) the study-server bundle.
func (o *Observer) ServeMetrics() *ServeMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.serve == nil {
		r := o.Metrics
		o.serve = &ServeMetrics{
			Requests:     r.Counter("pka_serve_requests_total", "study requests admitted to the queue"),
			Completed:    r.Counter("pka_serve_completed_total", "study requests that returned a result"),
			Errors:       r.Counter("pka_serve_errors_total", "admitted requests that failed in execution"),
			Invalid:      r.Counter("pka_serve_invalid_total", "requests rejected by the decoder/validator"),
			Rejected:     r.Counter("pka_serve_rejected_total", "requests rejected with 429 by the full queue"),
			DrainRejects: r.Counter("pka_serve_drain_rejects_total", "requests rejected with 503 while draining"),
			QueueDepth:   r.Gauge("pka_serve_queue_depth", "study requests waiting for a runner"),
			InFlight:     r.Gauge("pka_serve_inflight", "study requests currently executing"),
			QueueWait: r.Histogram("pka_serve_queue_wait_seconds", "time from admission to execution start",
				[]float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}),
			Latency: r.Histogram("pka_serve_latency_seconds", "time from admission to completion",
				[]float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 10}),
		}
	}
	return o.serve
}

// ExecTierNames names the Exec ladder's serving tiers in ladder order;
// index i is the tier with numeric value i in internal/sampling.
var ExecTierNames = [6]string{"predict", "mem", "disk", "shard", "worker", "sim"}

// ExecMetrics is the Exec ladder's tier-attribution family: for each of
// the six serving tiers (learned predictor, mem singleflight, disk
// artifact store, owner-shard peer, remote worker, fresh simulation), how
// many kernel tasks it satisfied and the service-latency distribution.
// The registry has no label support, so each tier is its own
// counter/histogram pair; summed across tiers the counters equal the
// study's kernel-launch count.
type ExecMetrics struct {
	Tasks   [6]*Counter
	Latency [6]*Histogram
}

// ExecMetrics lazily builds (and then reuses) the Exec-ladder bundle.
func (o *Observer) ExecMetrics() *ExecMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.exec == nil {
		r := o.Metrics
		m := &ExecMetrics{}
		bounds := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
		for i, tier := range ExecTierNames {
			m.Tasks[i] = r.Counter("pka_exec_tier_"+tier+"_total",
				"kernel tasks satisfied by the "+tier+" tier")
			m.Latency[i] = r.Histogram("pka_exec_tier_"+tier+"_seconds",
				"service latency of kernel tasks satisfied by the "+tier+" tier", bounds)
		}
		o.exec = m
	}
	return o.exec
}

// Observe records one kernel task served by tier (0..5) in sec seconds.
// Nil-safe; out-of-range tiers are ignored.
func (m *ExecMetrics) Observe(tier int, sec float64) {
	if m == nil || tier < 0 || tier >= len(m.Tasks) {
		return
	}
	m.Tasks[tier].Inc()
	m.Latency[tier].Observe(sec)
}

// ShardMetrics is the sharded fleet cache's metric family: peer-lookup
// traffic against the consistent-hash ring (hits, misses, transport
// errors), replication writes, and — the health signal the fleet operator
// watches — ring rebalances after a peer is evicted for repeated
// failures. All fields are nil-safe instruments.
type ShardMetrics struct {
	Lookups       *Counter
	PeerHits      *Counter
	PeerMisses    *Counter
	PeerErrors    *Counter
	Puts          *Counter
	PutErrors     *Counter
	Rebalances    *Counter
	LookupLatency *Histogram
}

// ShardMetrics lazily builds (and then reuses) the sharded-cache bundle.
func (o *Observer) ShardMetrics() *ShardMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.shard == nil {
		r := o.Metrics
		o.shard = &ShardMetrics{
			Lookups:    r.Counter("pka_shard_lookups_total", "content keys looked up against the shard ring"),
			PeerHits:   r.Counter("pka_shard_peer_hits_total", "lookups served by an owner or replica shard"),
			PeerMisses: r.Counter("pka_shard_peer_misses_total", "lookups no owner shard held"),
			PeerErrors: r.Counter("pka_shard_peer_errors_total", "peer GETs that failed in transport"),
			Puts:       r.Counter("pka_shard_puts_total", "outcome replications written to owner shards"),
			PutErrors:  r.Counter("pka_shard_put_errors_total", "peer PUTs that failed in transport"),
			Rebalances: r.Counter("pka_shard_rebalance_total", "ring rebalances after evicting an unreachable shard"),
			LookupLatency: r.Histogram("pka_shard_lookup_latency_seconds", "peer-lookup round-trip latency",
				[]float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}),
		}
	}
	return o.shard
}

// DedupMetrics is the suite-level dedup pass's metric family: how many
// kernels were pooled across the suite, the K-sweep's work, and the
// resulting representative count — the number whose ratio to the pooled
// per-app representative count is the suite's dedup win.
type DedupMetrics struct {
	Selections    *Counter
	KernelsPooled *Counter
	SweepSteps    *Counter
	Reps          *Counter
	ChosenK       *Histogram
	SuiteErrorPct *Histogram
}

// DedupMetrics lazily builds (and then reuses) the suite-dedup bundle.
func (o *Observer) DedupMetrics() *DedupMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.dedup == nil {
		r := o.Metrics
		o.dedup = &DedupMetrics{
			Selections:    r.Counter("pka_dedup_selections_total", "suite-level dedup selections performed"),
			KernelsPooled: r.Counter("pka_dedup_kernels_pooled_total", "kernels pooled into the shared PCA space"),
			SweepSteps:    r.Counter("pka_dedup_sweep_steps_total", "suite K-sweep clustering steps evaluated"),
			Reps:          r.Counter("pka_dedup_reps_total", "cross-workload representatives elected"),
			ChosenK: r.Histogram("pka_dedup_chosen_k", "K chosen by the suite sweep",
				[]float64{2, 4, 8, 16, 32, 64, 128}),
			SuiteErrorPct: r.Histogram("pka_dedup_suite_error_pct", "suite-level projected-cycle error at selection",
				[]float64{0.5, 1, 2, 5, 10, 20, 50}),
		}
	}
	return o.dedup
}

// StreamMetrics is the streaming-PKS pipeline's metric family: how many
// kernel events flowed through, how often the advisory clustering forced a
// re-sweep, and how the speculation gamble paid off — hits are
// representative simulations already warm at reconciliation, wasted
// warp-instrs are work spent on reps a later cluster revision demoted.
type StreamMetrics struct {
	Events          *Counter
	Resweeps        *Counter
	Speculated      *Counter
	SpecHits        *Counter
	SpecWastedInstr *Counter
	OverlapFraction *Gauge
}

// StreamMetrics lazily builds (and then reuses) the streaming bundle.
func (o *Observer) StreamMetrics() *StreamMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.stream == nil {
		r := o.Metrics
		o.stream = &StreamMetrics{
			Events:          r.Counter("pka_stream_events_total", "kernel launch events consumed by the streaming pipeline"),
			Resweeps:        r.Counter("pka_stream_resweeps_total", "advisory K re-sweeps triggered by estimate degradation"),
			Speculated:      r.Counter("pka_stream_speculated_total", "speculative warms dispatched down the exec ladder"),
			SpecHits:        r.Counter("pka_stream_spec_hits_total", "final representatives whose simulation was speculatively warmed"),
			SpecWastedInstr: r.Counter("pka_stream_spec_wasted_warp_instrs_total", "warp instructions simulated for reps later demoted by a cluster revision"),
			OverlapFraction: r.Gauge("pka_stream_overlap_fraction", "fraction of final representative work completed before reconciliation began"),
		}
	}
	return o.stream
}

// PredictorMetrics is the tier-0 learned predictor's metric family: the
// gate funnel (requests → served, with low-confidence and stale-model
// fall-throughs), the asynchronous verifier's sampled re-simulations and
// their observed relative error, and the auto-disable trip. Served plus
// the fall-through counters equals Requests; Served also equals the
// pka_exec_tier_predict_total counter, because a served prediction IS the
// predict tier satisfying a task. Verifier re-simulations are deliberately
// absent from the pka_exec_tier_* family so tier counts keep summing to
// the launch count.
type PredictorMetrics struct {
	Requests     *Counter
	Served       *Counter
	LowConf      *Counter
	ModelMiss    *Counter
	Verified     *Counter
	AutoDisabled *Counter
	Confidence   *Histogram
	VerifyRelErr *Histogram
}

// PredictorMetrics lazily builds (and then reuses) the predictor bundle.
func (o *Observer) PredictorMetrics() *PredictorMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pred == nil {
		r := o.Metrics
		o.pred = &PredictorMetrics{
			Requests:     r.Counter("pka_predictor_requests_total", "kernel tasks offered to the predictor tier"),
			Served:       r.Counter("pka_predictor_served_total", "kernel tasks answered by the predictor (confidence above the gate)"),
			LowConf:      r.Counter("pka_predictor_lowconf_total", "tasks that fell through the gate on low confidence"),
			ModelMiss:    r.Counter("pka_predictor_model_miss_total", "tasks the model could not score (device mismatch or tier disabled)"),
			Verified:     r.Counter("pka_predictor_verified_total", "served predictions re-simulated by the async verifier"),
			AutoDisabled: r.Counter("pka_predictor_auto_disabled_total", "times the tier disabled itself on observed error above the bound"),
			Confidence: r.Histogram("pka_predictor_confidence", "per-task predictor confidence at the gate",
				[]float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999}),
			VerifyRelErr: r.Histogram("pka_predictor_verify_rel_error", "relative projected-cycle error of verified predictions",
				[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}),
		}
	}
	return o.pred
}

// RemoteWorkerStats is one worker's dispatcher-side state, published
// through RegisterRemoteStats the same pull-on-exposition way cache
// counters are.
type RemoteWorkerStats struct {
	URL         string `json:"url"`
	InFlight    int    `json:"in_flight"`
	PendingCost int64  `json:"pending_cost"`
	Sent        uint64 `json:"sent"`
	Failures    uint64 `json:"failures"`
	Busy        uint64 `json:"busy"`
	BreakerOpen bool   `json:"breaker_open"`
}

// RegisterRemoteStats installs a source of per-worker dispatcher state,
// polled by SyncRemoteStats. The registry has no label support, so each
// worker lands under an index-suffixed gauge family.
func (o *Observer) RegisterRemoteStats(src func() []RemoteWorkerStats) {
	if o == nil || o.Metrics == nil || src == nil {
		return
	}
	o.cacheMu.Lock()
	o.remoteSrcs = append(o.remoteSrcs, src)
	o.cacheMu.Unlock()
}

// SyncRemoteStats polls every registered per-worker source and copies the
// state into pka_remote_worker<i>_* gauges. Like SyncCacheStats, call it
// just before rendering an exposition.
func (o *Observer) SyncRemoteStats() {
	if o == nil || o.Metrics == nil {
		return
	}
	o.cacheMu.Lock()
	srcs := append([]func() []RemoteWorkerStats(nil), o.remoteSrcs...)
	o.cacheMu.Unlock()
	r := o.Metrics
	for _, src := range srcs {
		for i, w := range src() {
			p := "pka_remote_worker" + itoa(i)
			r.Gauge(p+"_in_flight", "requests in flight to worker "+w.URL).Set(float64(w.InFlight))
			r.Gauge(p+"_pending_cost", "outstanding warp-instruction cost at worker "+w.URL).Set(float64(w.PendingCost))
			r.Gauge(p+"_sent", "RPCs sent to worker "+w.URL).Set(float64(w.Sent))
			r.Gauge(p+"_failures", "RPC failures at worker "+w.URL).Set(float64(w.Failures))
			r.Gauge(p+"_busy", "busy rejections from worker "+w.URL).Set(float64(w.Busy))
			open := 0.0
			if w.BreakerOpen {
				open = 1
			}
			r.Gauge(p+"_breaker_open", "1 while worker "+w.URL+"'s circuit breaker is open").Set(open)
		}
	}
}

// itoa is strconv.Itoa for the small non-negative ints used in gauge
// names, avoiding a strconv import in this file.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// --- Cache statistics -----------------------------------------------------

// CacheCounts is one cache family's counters as published through
// RegisterCacheStats. The disk-backed artifact family also reports
// evictions and corrupt-entry recoveries; in-memory singleflight families
// leave those zero.
type CacheCounts struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions,omitempty"`
	Corrupt   uint64 `json:"corrupt,omitempty"`
}

// RegisterCacheStats installs a source of per-family cache counters.
// Sources are polled by SyncCacheStats, which lands every family in
// pka_cache_<family>_* gauges — putting the in-memory singleflight caches
// and the on-disk artifact store side by side in one exposition. Multiple
// sources compose; families with the same name overwrite last-wins.
func (o *Observer) RegisterCacheStats(src func() map[string]CacheCounts) {
	if o == nil || o.Metrics == nil || src == nil {
		return
	}
	o.cacheMu.Lock()
	o.cacheSrcs = append(o.cacheSrcs, src)
	o.cacheMu.Unlock()
}

// SyncCacheStats polls every registered cache-stats source and copies the
// counters into pka_cache_<family>_{hits,misses,evictions,corrupt} gauges.
// Call it just before rendering an exposition; cache counters are pulled,
// not pushed, so hot cache paths never touch the registry.
func (o *Observer) SyncCacheStats() {
	if o == nil || o.Metrics == nil {
		return
	}
	o.cacheMu.Lock()
	srcs := append([]func() map[string]CacheCounts(nil), o.cacheSrcs...)
	o.cacheMu.Unlock()
	r := o.Metrics
	for _, src := range srcs {
		for family, c := range src() {
			r.Gauge("pka_cache_"+family+"_hits", "cache hits in the "+family+" family").Set(float64(c.Hits))
			r.Gauge("pka_cache_"+family+"_misses", "cache misses in the "+family+" family").Set(float64(c.Misses))
			r.Gauge("pka_cache_"+family+"_evictions", "entries evicted from the "+family+" family").Set(float64(c.Evictions))
			r.Gauge("pka_cache_"+family+"_corrupt", "corrupt entries recovered in the "+family+" family").Set(float64(c.Corrupt))
		}
	}
}

// --- Simulator hookup ----------------------------------------------------

// SimObs is what one Simulator reports into: a track for per-kernel spans
// (one Simulator is single-threaded, so its spans never overlap) and the
// shared sim metric family. A nil *SimObs disables both.
type SimObs struct {
	Track   *Track
	Metrics *SimMetrics
}

// SimObs builds a simulator hookup whose spans land on the named track.
func (o *Observer) SimObs(track string) *SimObs {
	if o == nil {
		return nil
	}
	var tk *Track
	if o.Tracer != nil {
		tk = o.Tracer.Track(track)
	}
	return &SimObs{Track: tk, Metrics: o.SimMetrics()}
}

// StartKernel opens the per-kernel span; safe on a nil receiver.
func (s *SimObs) StartKernel(name string) *Span {
	if s == nil {
		return nil
	}
	return s.Track.Start(name)
}
