// Package obs is the PKA stack's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus text exposition and JSON snapshot), span tracing exported as
// Chrome trace_event JSON, and a structured decision-audit stream for the
// PKP/PKS online policies.
//
// The layer is strictly observe-only: nothing in it feeds back into the
// pipeline, so enabling every output must leave study results
// byte-identical (the golden determinism tests pin this). It is also
// hot-loop-free by construction — the simulator aggregates telemetry once
// per kernel, never per cycle, and every instrument is nil-safe so
// disabled telemetry costs a nil check at kernel granularity.
package obs

import (
	"io"
	"sync"
	"time"
)

// Observer bundles the three telemetry facets. Any field may be nil to
// disable that facet; a nil *Observer disables everything. All helper
// accessors are nil-safe.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	Audit   *Audit

	sim  *SimMetrics
	pkp  *PKPMetrics
	pks  *PKSMetrics
	pool *PoolMetrics

	cacheMu   sync.Mutex
	cacheSrcs []func() map[string]CacheCounts
}

// NewObserver returns an Observer with all three facets enabled on the
// real clock.
func NewObserver() *Observer { return NewObserverAt(time.Now) }

// NewObserverAt is NewObserver with an injectable clock for the tracer.
func NewObserverAt(now func() time.Time) *Observer {
	o := &Observer{Metrics: NewRegistry(), Tracer: NewTracerAt(now), Audit: NewAudit()}
	// Register every metric family eagerly so expositions always contain
	// them, populated or not.
	o.SimMetrics()
	o.PKPMetrics()
	o.PKSMetrics()
	o.PoolMetrics()
	return o
}

// StartSpan opens a span named name on the given track, or returns an
// inert nil span when tracing is disabled.
func (o *Observer) StartSpan(track, name string, args ...Arg) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Track(track).Start(name, args...)
}

// WriteChromeTrace renders the tracer's spans plus the audit stream
// (as instant events on per-component "audit:" tracks) in Chrome
// trace_event JSON.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil || o.Tracer == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	if o.Audit != nil {
		for _, r := range o.Audit.Records() {
			tk := o.Tracer.Track("audit:" + r.Component)
			args := make([]Arg, 0, len(r.Fields)+3)
			args = append(args, Arg{Key: "subject", Val: r.Subject}, Arg{Key: "seq", Val: r.Seq})
			if r.Cycle != 0 {
				args = append(args, Arg{Key: "cycle", Val: r.Cycle})
			}
			for _, k := range sortedFieldKeys(r.Fields) {
				args = append(args, Arg{Key: k, Val: r.Fields[k]})
			}
			tk.Instant(r.Component+":"+r.Event, args...)
		}
	}
	return o.Tracer.WriteChromeTrace(w)
}

func sortedFieldKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: field maps are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// --- Component metric bundles -------------------------------------------
//
// Bundles pre-resolve their instruments once so instrumented code pays a
// field load, not a registry lookup, when it reports.

// SimMetrics is the cycle-level simulator's metric family. Counters are
// updated once per kernel at kernel end — never inside the cycle loop.
type SimMetrics struct {
	Kernels      *Counter
	StoppedEarly *Counter
	Cycles       *Counter
	WarpInstrs   *Counter
	L1Hits       *Counter
	L1Misses     *Counter
	L2Hits       *Counter
	L2Misses     *Counter
	DRAMBytes    *Counter
	KernelCycles *Histogram
}

// SimMetrics lazily builds (and then reuses) the simulator bundle.
func (o *Observer) SimMetrics() *SimMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.sim == nil {
		r := o.Metrics
		o.sim = &SimMetrics{
			Kernels:      r.Counter("pka_sim_kernels_total", "kernel launches simulated"),
			StoppedEarly: r.Counter("pka_sim_kernels_stopped_early_total", "kernels truncated by a controller or cycle cap"),
			Cycles:       r.Counter("pka_sim_cycles_total", "simulated cycles across all kernels"),
			WarpInstrs:   r.Counter("pka_sim_warp_instrs_total", "warp instructions issued across all kernels"),
			L1Hits:       r.Counter("pka_sim_l1_hits_total", "L1 cache hits"),
			L1Misses:     r.Counter("pka_sim_l1_misses_total", "L1 cache misses"),
			L2Hits:       r.Counter("pka_sim_l2_hits_total", "L2 cache hits"),
			L2Misses:     r.Counter("pka_sim_l2_misses_total", "L2 cache misses"),
			DRAMBytes:    r.Counter("pka_sim_dram_bytes_total", "bytes moved through the DRAM channel"),
			KernelCycles: r.Histogram("pka_sim_kernel_cycles", "per-kernel simulated cycle counts",
				[]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}),
		}
	}
	return o.sim
}

// PKPMetrics is Principal Kernel Projection's metric family.
type PKPMetrics struct {
	Stops     *Counter
	WaveHolds *Counter
	StopCycle *Histogram
	DriftCV   *Histogram
}

// PKPMetrics lazily builds (and then reuses) the projector bundle.
func (o *Observer) PKPMetrics() *PKPMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pkp == nil {
		r := o.Metrics
		o.pkp = &PKPMetrics{
			Stops:     r.Counter("pka_pkp_stops_total", "stability stop decisions fired"),
			WaveHolds: r.Counter("pka_pkp_wave_holds_total", "stable signals held back by the wave constraint"),
			StopCycle: r.Histogram("pka_pkp_stop_cycle", "cycle at which stability fired",
				[]float64{1e3, 1e4, 1e5, 1e6, 1e7}),
			DriftCV: r.Histogram("pka_pkp_stop_drift_cv", "rolling-mean drift CV at the stop decision",
				[]float64{0.01, 0.025, 0.05, 0.1, 0.25}),
		}
	}
	return o.pkp
}

// PKSMetrics is Principal Kernel Selection's metric family.
type PKSMetrics struct {
	Selections *Counter
	SweepSteps *Counter
	ChosenK    *Histogram
	ErrorPct   *Histogram
}

// PKSMetrics lazily builds (and then reuses) the selection bundle.
func (o *Observer) PKSMetrics() *PKSMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pks == nil {
		r := o.Metrics
		o.pks = &PKSMetrics{
			Selections: r.Counter("pka_pks_selections_total", "selection runs completed"),
			SweepSteps: r.Counter("pka_pks_sweep_steps_total", "K values tried across all sweeps"),
			ChosenK: r.Histogram("pka_pks_chosen_k", "K chosen per selection",
				[]float64{1, 2, 4, 8, 16, 20}),
			ErrorPct: r.Histogram("pka_pks_selection_error_pct", "selection error at the chosen K",
				[]float64{1, 2, 5, 10, 25}),
		}
	}
	return o.pks
}

// PoolMetrics reports worker-pool occupancy. It structurally implements
// internal/parallel's Observer interface; its methods are nil-safe so a
// typed-nil can be installed harmlessly.
type PoolMetrics struct {
	Tasks   *Counter
	Queued  *Gauge
	Active  *Gauge
	MaxSeen *Gauge
}

// PoolMetrics lazily builds (and then reuses) the pool bundle.
func (o *Observer) PoolMetrics() *PoolMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	if o.pool == nil {
		r := o.Metrics
		o.pool = &PoolMetrics{
			Tasks:   r.Counter("pka_pool_tasks_total", "tasks completed by worker pools"),
			Queued:  r.Gauge("pka_pool_queue_depth", "tasks submitted but not yet running"),
			Active:  r.Gauge("pka_pool_active_workers", "tasks currently running"),
			MaxSeen: r.Gauge("pka_pool_active_workers_max", "high-water mark of concurrently running tasks"),
		}
	}
	return o.pool
}

// TaskQueued records a task waiting for a worker slot.
func (m *PoolMetrics) TaskQueued() {
	if m == nil {
		return
	}
	m.Queued.Add(1)
}

// TaskStarted records a task acquiring a worker slot.
func (m *PoolMetrics) TaskStarted() {
	if m == nil {
		return
	}
	m.Queued.Add(-1)
	m.Active.Add(1)
	// Racy read-then-write high-water mark: good enough for a debug gauge.
	if a := m.Active.Value(); a > m.MaxSeen.Value() {
		m.MaxSeen.Set(a)
	}
}

// TaskDone records a task finishing.
func (m *PoolMetrics) TaskDone() {
	if m == nil {
		return
	}
	m.Active.Add(-1)
	m.Tasks.Add(1)
}

// --- Cache statistics -----------------------------------------------------

// CacheCounts is one cache family's counters as published through
// RegisterCacheStats. The disk-backed artifact family also reports
// evictions and corrupt-entry recoveries; in-memory singleflight families
// leave those zero.
type CacheCounts struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions,omitempty"`
	Corrupt   uint64 `json:"corrupt,omitempty"`
}

// RegisterCacheStats installs a source of per-family cache counters.
// Sources are polled by SyncCacheStats, which lands every family in
// pka_cache_<family>_* gauges — putting the in-memory singleflight caches
// and the on-disk artifact store side by side in one exposition. Multiple
// sources compose; families with the same name overwrite last-wins.
func (o *Observer) RegisterCacheStats(src func() map[string]CacheCounts) {
	if o == nil || o.Metrics == nil || src == nil {
		return
	}
	o.cacheMu.Lock()
	o.cacheSrcs = append(o.cacheSrcs, src)
	o.cacheMu.Unlock()
}

// SyncCacheStats polls every registered cache-stats source and copies the
// counters into pka_cache_<family>_{hits,misses,evictions,corrupt} gauges.
// Call it just before rendering an exposition; cache counters are pulled,
// not pushed, so hot cache paths never touch the registry.
func (o *Observer) SyncCacheStats() {
	if o == nil || o.Metrics == nil {
		return
	}
	o.cacheMu.Lock()
	srcs := append([]func() map[string]CacheCounts(nil), o.cacheSrcs...)
	o.cacheMu.Unlock()
	r := o.Metrics
	for _, src := range srcs {
		for family, c := range src() {
			r.Gauge("pka_cache_"+family+"_hits", "cache hits in the "+family+" family").Set(float64(c.Hits))
			r.Gauge("pka_cache_"+family+"_misses", "cache misses in the "+family+" family").Set(float64(c.Misses))
			r.Gauge("pka_cache_"+family+"_evictions", "entries evicted from the "+family+" family").Set(float64(c.Evictions))
			r.Gauge("pka_cache_"+family+"_corrupt", "corrupt entries recovered in the "+family+" family").Set(float64(c.Corrupt))
		}
	}
}

// --- Simulator hookup ----------------------------------------------------

// SimObs is what one Simulator reports into: a track for per-kernel spans
// (one Simulator is single-threaded, so its spans never overlap) and the
// shared sim metric family. A nil *SimObs disables both.
type SimObs struct {
	Track   *Track
	Metrics *SimMetrics
}

// SimObs builds a simulator hookup whose spans land on the named track.
func (o *Observer) SimObs(track string) *SimObs {
	if o == nil {
		return nil
	}
	var tk *Track
	if o.Tracer != nil {
		tk = o.Tracer.Track(track)
	}
	return &SimObs{Track: tk, Metrics: o.SimMetrics()}
}

// StartKernel opens the per-kernel span; safe on a nil receiver.
func (s *SimObs) StartKernel(name string) *Span {
	if s == nil {
		return nil
	}
	return s.Track.Start(name)
}
