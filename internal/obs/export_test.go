package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int64                  `json:"pid"`
	Tid  int64                  `json:"tid"`
	Ts   int64                  `json:"ts"`
	Args map[string]interface{} `json:"args"`
}

func parseChrome(t *testing.T, b []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b)
	}
	return doc.TraceEvents
}

// TestExportProcessRebasesToWallClock pins the wire timestamp contract:
// exported events carry t0.UnixMicro()+relative-ts so processes with
// different epochs share one time axis.
func TestExportProcessRebasesToWallClock(t *testing.T) {
	tr := NewTracerAt(stepClock(50 * time.Microsecond)) // t0 = Unix(1000, 0)
	sp := tr.Track("task").Start("exec k")              // ts=50
	sp.End()                                            // ts=100 -> dur=50
	pt := tr.ExportProcess("worker-a")
	if pt.Process != "worker-a" {
		t.Fatalf("process = %q", pt.Process)
	}
	if len(pt.Events) != 1 {
		t.Fatalf("exported %d events (metadata must be skipped), want 1", len(pt.Events))
	}
	ev := pt.Events[0]
	wantTs := time.Unix(1000, 0).UnixMicro() + 50
	if ev.Track != "task" || ev.Name != "exec k" || ev.Ph != "X" || ev.Ts != wantTs || ev.Dur != 50 {
		t.Fatalf("exported event %+v, want track=task name=\"exec k\" ph=X ts=%d dur=50", ev, wantTs)
	}
}

// TestCrossProcessMerge is the merge golden: a client tracer that absorbed
// a worker's exported spans renders one Chrome trace with per-process
// tracks — the client on pid 1, each foreign process on its own pid with
// its own thread names, timestamps rebased onto the client's epoch.
func TestCrossProcessMerge(t *testing.T) {
	client := NewTracerAt(stepClock(100 * time.Microsecond))
	client.SetProcessName("client")
	sp := client.Track("serve").Start("study") // ts=100
	sp.End()                                   // ts=200

	worker := NewTracerAt(stepClock(50 * time.Microsecond))
	ws := worker.Track("task").Start("exec k") // ts=50
	ws.End()
	client.AddProcess(worker.ExportProcess("worker-b"))
	client.AddProcess(worker.ExportProcess("worker-a"))
	if got := client.ForeignProcesses(); len(got) != 2 || got[0] != "worker-a" || got[1] != "worker-b" {
		t.Fatalf("ForeignProcesses() = %v", got)
	}

	var buf bytes.Buffer
	if err := client.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := parseChrome(t, buf.Bytes())

	procs := map[string]int64{} // process name -> pid
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Args["name"].(string)] = ev.Pid
		}
	}
	if procs["client"] != 1 {
		t.Fatalf("client process_name on pid %d, want 1 (procs %v)", procs["client"], procs)
	}
	// Foreign pids are assigned in sorted-name order after the client.
	if procs["worker-a"] != 2 || procs["worker-b"] != 3 {
		t.Fatalf("foreign pids %v, want worker-a=2 worker-b=3", procs)
	}

	// The worker span appears under each foreign pid, rebased onto the
	// client epoch (same t0 here, so its relative ts survives).
	found := 0
	for _, ev := range events {
		if ev.Name == "exec k" && ev.Ph == "X" {
			if ev.Pid != procs["worker-a"] && ev.Pid != procs["worker-b"] {
				t.Fatalf("worker span on pid %d", ev.Pid)
			}
			if ev.Ts != 50 {
				t.Fatalf("worker span ts = %d, want 50", ev.Ts)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("found %d worker spans, want 2", found)
	}
	// The local span stays on pid 1 with its original timestamps.
	for _, ev := range events {
		if ev.Name == "study" && (ev.Pid != 1 || ev.Ts != 100) {
			t.Fatalf("local span moved: pid=%d ts=%d", ev.Pid, ev.Ts)
		}
	}
}

// TestLegacySingleProcessUnchanged pins that a tracer that never touched
// the multi-process surface still renders the exact historical output: no
// process_name metadata, no pid changes.
func TestLegacySingleProcessUnchanged(t *testing.T) {
	tr := NewTracerAt(stepClock(100 * time.Microsecond))
	tr.Track("phase").Start("build").End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, ev := range parseChrome(t, buf.Bytes()) {
		if ev.Name == "process_name" || ev.Name == "trace_dropped" {
			t.Fatalf("single-process trace grew %q metadata", ev.Name)
		}
		if ev.Pid != 1 {
			t.Fatalf("single-process event on pid %d", ev.Pid)
		}
	}
}

// TestDropAccounting pins the silent-loss fix: events past the memory cap
// increment the registered counter and surface as trace_dropped metadata.
func TestDropAccounting(t *testing.T) {
	old := maxTraceEvents
	maxTraceEvents = 3
	defer func() { maxTraceEvents = old }()
	tr := NewTracerAt(stepClock(time.Microsecond))
	ctr := NewRegistry().Counter("pka_trace_dropped_total", "t")
	tr.SetDropCounter(ctr)
	tr.Track("x").Instant("kept")      // thread_name meta + event: 2 of 3
	tr.Track("x").Instant("also kept") // 3 of 3: at the cap now
	tr.Track("x").Instant("overflow")
	tr.Track("x").Start("span").End()
	if got := ctr.Value(); got != 2 {
		t.Fatalf("drop counter = %d, want 2", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	// Foreign drops accumulate into the same metadata note.
	tr.AddProcess(ProcessTrace{Process: "worker-a", Dropped: 3})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	foundDropped := false
	for _, ev := range parseChrome(t, buf.Bytes()) {
		if ev.Name == "trace_dropped" {
			foundDropped = true
			if n := ev.Args["dropped"].(float64); int64(n) != 5 {
				t.Fatalf("trace_dropped = %v, want 5", n)
			}
		}
	}
	if !foundDropped {
		t.Fatal("no trace_dropped metadata in trace with drops")
	}
}
