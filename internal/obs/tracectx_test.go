package obs

import "testing"

// TestTraceparentGolden pins the wire format: version 00, lowercase hex,
// sampled flag, 55 bytes.
func TestTraceparentGolden(t *testing.T) {
	tc := TraceContext{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "00f067aa0ba902b7"}
	const want = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if got := tc.Traceparent(); got != want {
		t.Fatalf("Traceparent() = %q, want %q", got, want)
	}
	back, ok := ParseTraceparent(want)
	if !ok || back != tc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v, true", want, back, ok, tc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := map[string]string{
		"empty":         "",
		"truncated":     "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"bad version":   "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"zero trace id": "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":  "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"uppercase hex": "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"bad dash":      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"non-hex flags": "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
		"extra data":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
	}
	for name, s := range bad {
		if tc, ok := ParseTraceparent(s); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted as %+v", name, s, tc)
		}
	}
	// An invalid context renders as "" and its parse round-trip stays
	// invalid — "not traced" is stable under propagation.
	var zero TraceContext
	if zero.Traceparent() != "" {
		t.Errorf("zero context rendered %q", zero.Traceparent())
	}
	if zero.Child(NewIDGen(1)).Valid() {
		t.Error("child of an invalid context became valid")
	}
}

// TestIDGenDeterministic pins the deterministic-ID mode golden traces
// rely on: equal seeds yield equal streams, and every ID is well-formed.
func TestIDGenDeterministic(t *testing.T) {
	a, b := NewIDGen(42), NewIDGen(42)
	for i := 0; i < 16; i++ {
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb {
			t.Fatalf("step %d: seeded streams diverged: %s vs %s", i, sa, sb)
		}
		if !isHexID(sa, 16) {
			t.Fatalf("step %d: malformed span ID %q", i, sa)
		}
	}
	tc := NewIDGen(7).NewTrace()
	if !tc.Valid() {
		t.Fatalf("NewTrace produced invalid context %+v", tc)
	}
	if tc != (NewIDGen(7).NewTrace()) {
		t.Fatal("same seed produced different traces")
	}
	if NewIDGen(7).TraceID() == NewIDGen(8).TraceID() {
		t.Fatal("different seeds produced the same trace ID")
	}
	// Seed 0 is the crypto-seeded production mode: two generators must
	// not collide.
	if NewIDGen(0).TraceID() == NewIDGen(0).TraceID() {
		t.Fatal("crypto-seeded generators produced the same trace ID")
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	g := NewIDGen(3)
	root := g.NewTrace()
	child := root.Child(g)
	if child.TraceID != root.TraceID {
		t.Fatalf("child changed trace ID: %s -> %s", root.TraceID, child.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child kept the parent's span ID")
	}
	if !child.Valid() {
		t.Fatalf("child invalid: %+v", child)
	}
}
