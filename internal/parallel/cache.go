package parallel

import "sync"

// Cache is a generic per-key memoization cache with singleflight
// semantics: when several goroutines ask for the same missing key, exactly
// one runs the compute function and the rest block until its result is
// ready. Successful results are memoized forever; failed computes are NOT
// cached, so a later call retries (concurrent callers of the failing
// flight still share its error). A panic inside compute is contained as a
// *PanicError and shared with the waiters like any other failure.
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*flight[V]
	hits   uint64
	misses uint64
}

// flight is one in-progress or completed computation.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the cached value for key, computing it with compute on the
// first call. Concurrent calls for the same key coalesce into a single
// compute invocation.
func (c *Cache[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[K]*flight[V]{}
	}
	if f, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.err = protect(compute)
	if f.err != nil {
		// Do not memoize failures: drop the entry so the next caller
		// retries, then release the waiters that joined this flight.
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(f.done)
	return f.val, f.err
}

// Get returns the memoized value for key without computing, and reports
// whether a completed successful entry exists.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	f, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	select {
	case <-f.done:
		return f.val, f.err == nil
	default:
		var zero V
		return zero, false
	}
}

// Len returns the number of cached (or in-flight) keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns how many Do calls joined an existing entry (hits) and how
// many started a compute (misses). misses therefore counts compute
// invocations — the singleflight regression tests assert on it.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
