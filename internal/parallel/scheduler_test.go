package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedMapOrderAndResults: results come back in input order regardless
// of execution order.
func TestSchedMapOrderAndResults(t *testing.T) {
	s := NewScheduler(4)
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	got, err := SchedMap(s, items, func(v int) int64 { return int64(v) }, func(i, v int) (int, error) {
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*2)
		}
	}
}

// TestSchedMapNilSchedulerInline: a nil scheduler runs serially in input
// order on the calling goroutine.
func TestSchedMapNilSchedulerInline(t *testing.T) {
	var order []int
	_, err := SchedMap[int, struct{}](nil, []int{0, 1, 2, 3}, nil, func(i, _ int) (struct{}, error) {
		order = append(order, i) // no lock: must be the calling goroutine
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v not input order", order)
		}
	}
}

// TestSchedulerLongestFirst: with one worker, queued tasks run in
// descending cost order (FIFO on ties).
func TestSchedulerLongestFirst(t *testing.T) {
	s := NewScheduler(1)
	var mu sync.Mutex
	var order []int

	// Occupy the single worker so the rest of the submissions queue up
	// behind it, then release it and watch the drain order.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	s.submit(1<<40, func() { defer wg.Done(); <-release })
	costs := []int64{10, 50, 30, 50, 20}
	for i, c := range costs {
		i, c := i, c
		wg.Add(1)
		s.submit(c, func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	close(release)
	wg.Wait()

	want := []int{1, 3, 2, 4, 0} // 50 (seq 1), 50 (seq 3), 30, 20, 10
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("drain order %v, want %v (longest-first, FIFO ties)", order, want)
	}
}

// TestSchedulerConcurrencyBound: at most width tasks run at once, and the
// bound is actually reached when enough work is queued.
func TestSchedulerConcurrencyBound(t *testing.T) {
	const width = 3
	s := NewScheduler(width)
	var active, maxSeen atomic.Int64
	items := make([]int, 100)
	_, err := SchedMap(s, items, func(int) int64 { return 1 }, func(i, _ int) (struct{}, error) {
		a := active.Add(1)
		for {
			m := maxSeen.Load()
			if a <= m || maxSeen.CompareAndSwap(m, a) {
				break
			}
		}
		active.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := maxSeen.Load(); m > width {
		t.Fatalf("observed %d concurrent tasks, width is %d", m, width)
	}
}

// TestSchedMapErrorSemantics: every item is attempted and the error is the
// lowest-indexed failure; panics are contained.
func TestSchedMapErrorSemantics(t *testing.T) {
	s := NewScheduler(4)
	var attempted atomic.Int64
	boom := errors.New("boom")
	_, err := SchedMap(s, []int{0, 1, 2, 3, 4, 5}, func(int) int64 { return 1 }, func(i, _ int) (int, error) {
		attempted.Add(1)
		switch i {
		case 4:
			return 0, boom
		case 2:
			return 0, fmt.Errorf("first by index")
		case 3:
			panic("contained?")
		}
		return i, nil
	})
	if attempted.Load() != 6 {
		t.Fatalf("attempted %d items, want all 6", attempted.Load())
	}
	if err == nil || err.Error() != "first by index" {
		t.Fatalf("error = %v, want the lowest-indexed failure", err)
	}

	// A panic at the lowest failing index surfaces as *PanicError.
	_, err = SchedMap(s, []int{0, 1}, func(int) int64 { return 1 }, func(i, _ int) (int, error) {
		if i == 0 {
			panic("zero")
		}
		return 0, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
}

// TestSchedulerIdleHoldsNoWorkers: running drops to zero after the queue
// drains, so an idle scheduler leaks no goroutines.
func TestSchedulerIdleHoldsNoWorkers(t *testing.T) {
	s := NewScheduler(8)
	items := make([]int, 32)
	if _, err := SchedMap(s, items, func(int) int64 { return 1 }, func(i, _ int) (struct{}, error) {
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Workers decrement running just after the final task's result is
	// published, so give them a moment to park.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		running, depth := s.running, s.queue.Len()
		s.mu.Unlock()
		if running == 0 && depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle scheduler still has running=%d queue=%d", running, depth)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedMapSharedScheduler: two concurrent SchedMaps on one scheduler
// both complete with correct per-call results.
func TestSchedMapSharedScheduler(t *testing.T) {
	s := NewScheduler(4)
	var wg sync.WaitGroup
	for call := 0; call < 8; call++ {
		call := call
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := make([]int, 50)
			got, err := SchedMap(s, items, func(int) int64 { return int64(call) }, func(i, _ int) (int, error) {
				return call*1000 + i, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range got {
				if v != call*1000+i {
					t.Errorf("call %d result[%d] = %d", call, i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSchedMapCtxCancelDrains: cancelling the context with tasks still
// queued must drain the queue without deadlock and return partial results
// in input order — started tasks finish and keep their results, unstarted
// tasks are skipped with ctx.Err() and their zero value.
func TestSchedMapCtxCancelDrains(t *testing.T) {
	s := NewScheduler(1) // single worker: everything else stays queued behind the gate task
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	gate := make(chan struct{})
	const n = 32
	items := make([]int, n)
	for i := range items {
		items[i] = i + 1
	}
	// Equal costs -> FIFO: item 0 runs first, signals, and blocks the lone
	// worker until we cancel, guaranteeing items 1..n-1 are still queued
	// when the context dies.
	done := make(chan struct{})
	var got []int
	var gotErr error
	go func() {
		defer close(done)
		got, gotErr = SchedMapCtx(ctx, s, items, func(int) int64 { return 1 }, func(i, v int) (int, error) {
			if i == 0 {
				close(started)
				<-gate
			}
			return v * 10, nil
		})
	}()
	<-started
	cancel()
	close(gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled SchedMapCtx did not drain: deadlock")
	}
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", gotErr)
	}
	if len(got) != n {
		t.Fatalf("len(results) = %d, want %d (partial results must keep input order)", len(got), n)
	}
	if got[0] != 10 {
		t.Fatalf("result[0] = %d, want 10 (the started task ran to completion)", got[0])
	}
	for i := 1; i < n; i++ {
		if got[i] != 0 {
			t.Fatalf("result[%d] = %d, want zero value: task was queued at cancel time", i, got[i])
		}
	}
	// The scheduler must be reusable afterwards: the cancelled call left no
	// queued tasks or stuck workers behind.
	again, err := SchedMap(s, []int{1, 2, 3}, func(int) int64 { return 1 }, func(i, v int) (int, error) { return v, nil })
	if err != nil || len(again) != 3 {
		t.Fatalf("scheduler unusable after cancel: %v %v", again, err)
	}
}

// TestSchedMapCtxUncancelled: a background context changes nothing.
func TestSchedMapCtxUncancelled(t *testing.T) {
	s := NewScheduler(4)
	got, err := SchedMapCtx(context.Background(), s, []int{5, 6, 7}, func(int) int64 { return 1 }, func(i, v int) (int, error) {
		return v + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != []int{6, 7, 8}[i] {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}
