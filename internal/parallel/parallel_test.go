package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderPreserved checks that results come back in input order no
// matter how workers interleave.
func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	out, err := Map(8, items, func(i, v int) (int, error) {
		if v%7 == 0 {
			time.Sleep(time.Millisecond) // perturb completion order
		}
		return v * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(items) {
		t.Fatalf("got %d results, want %d", len(out), len(items))
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

// TestMapBoundsWorkers checks the peak number of in-flight fn calls never
// exceeds the requested width.
func TestMapBoundsWorkers(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(limit, items, func(i, _ int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("peak in-flight %d exceeds limit %d", p, limit)
	}
}

// TestMapFirstError checks the returned error is the lowest-indexed
// failure, independent of scheduling, and that every item is attempted.
func TestMapFirstError(t *testing.T) {
	var attempts atomic.Int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for trial := 0; trial < 10; trial++ {
		attempts.Store(0)
		_, err := Map(8, items, func(i, v int) (int, error) {
			attempts.Add(1)
			if v == 13 || v == 61 {
				return 0, fmt.Errorf("item %d failed", v)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 13 failed" {
			t.Fatalf("trial %d: err = %v, want first-indexed failure (item 13)", trial, err)
		}
		if n := attempts.Load(); n != int64(len(items)) {
			t.Fatalf("trial %d: %d attempts, want %d (all items attempted)", trial, n, len(items))
		}
	}
}

// TestMapPanicContained checks a panicking item surfaces as *PanicError
// instead of crashing the process, and does not poison other items.
func TestMapPanicContained(t *testing.T) {
	items := []int{0, 1, 2, 3}
	out, err := Map(2, items, func(i, v int) (int, error) {
		if v == 1 {
			panic("boom")
		}
		return v, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if out[2] != 2 || out[3] != 3 {
		t.Errorf("healthy items lost: %v", out)
	}
}

// TestMapSerialMatchesParallel checks serial (workers=1) and parallel runs
// produce identical outputs — the determinism contract the experiment
// generators rely on.
func TestMapSerialMatchesParallel(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i, v int) (string, error) { return fmt.Sprintf("%d:%d", i, v), nil }
	serial, err := Map(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(16, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, serial[i], par[i])
		}
	}
}

func TestMapEmptyAndWorkersDefaults(t *testing.T) {
	out, err := Map(4, nil, func(i, v int) (int, error) { return v, nil })
	if err != nil || out != nil {
		t.Errorf("empty map: out=%v err=%v", out, err)
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("Workers must default to at least one worker")
	}
	if Workers(7) != 7 {
		t.Error("explicit worker counts must pass through")
	}
}

// TestPoolBounds checks Pool.Go never runs more than Size tasks at once
// and that Wait drains everything.
func TestPoolBounds(t *testing.T) {
	p := NewPool(4)
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	var inFlight, peak, ran atomic.Int64
	for i := 0; i < 50; i++ {
		p.Go(func() error {
			n := inFlight.Add(1)
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			ran.Add(1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("peak in-flight %d exceeds pool size 4", p)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", ran.Load())
	}
}

// TestPoolErrorAndPanic checks Wait reports task failures, panics
// included.
func TestPoolErrorAndPanic(t *testing.T) {
	p := NewPool(2)
	p.Go(func() error { return nil })
	p.Go(func() error { return errors.New("task failed") })
	if err := p.Wait(); err == nil {
		t.Error("Wait did not surface the task error")
	}
	p2 := NewPool(2)
	p2.Go(func() error { panic("pool boom") })
	err := p2.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

// TestCacheStampede is the singleflight stress test: 64 goroutines hit the
// same cold key and exactly one compute must run.
func TestCacheStampede(t *testing.T) {
	var c Cache[string, int]
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			v, err := c.Do("key", func() (int, error) {
				computes.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the stampede window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("%d computes for one key, want exactly 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

// TestCacheDistinctKeys checks keys do not serialize behind each other and
// each computes once.
func TestCacheDistinctKeys(t *testing.T) {
	var c Cache[int, int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, err := c.Do(k, func() (int, error) {
					computes.Add(1)
					return k * k, nil
				})
				if err != nil || v != k*k {
					t.Errorf("key %d: v=%d err=%v", k, v, err)
				}
			}(i)
		}
	}
	wg.Wait()
	if n := computes.Load(); n != 16 {
		t.Errorf("%d computes, want 16 (one per key)", n)
	}
	if c.Len() != 16 {
		t.Errorf("Len = %d, want 16", c.Len())
	}
}

// TestCacheErrorNotMemoized checks failed computes are retried while their
// concurrent waiters still share the failure.
func TestCacheErrorNotMemoized(t *testing.T) {
	var c Cache[string, int]
	fail := errors.New("transient")
	if _, err := c.Do("k", func() (int, error) { return 0, fail }); !errors.Is(err, fail) {
		t.Fatalf("first call err = %v", err)
	}
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after failure: v=%d err=%v", v, err)
	}
	// The successful value is now memoized.
	v, err = c.Do("k", func() (int, error) { return 0, errors.New("must not run") })
	if err != nil || v != 7 {
		t.Fatalf("memoized value lost: v=%d err=%v", v, err)
	}
}

// TestCachePanicContained checks a panicking compute releases waiters with
// a *PanicError instead of deadlocking them.
func TestCachePanicContained(t *testing.T) {
	var c Cache[string, int]
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do("k", func() (int, error) {
				time.Sleep(time.Millisecond)
				panic("cache boom")
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			// A goroutine may have started a fresh flight after the panic
			// cleared the entry and panicked again; every outcome must be
			// an error here since compute always panics.
			t.Errorf("caller %d: nil error after panicking compute", i)
		}
	}
	var pe *PanicError
	if !errors.As(errs[0], &pe) {
		t.Errorf("err = %v, want *PanicError", errs[0])
	}
}

// TestCacheGet checks Get only reports completed successful entries.
func TestCacheGet(t *testing.T) {
	var c Cache[string, int]
	if _, ok := c.Get("missing"); ok {
		t.Error("Get reported a missing key")
	}
	if _, err := c.Do("k", func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get("k"); !ok || v != 5 {
		t.Errorf("Get = (%d,%v), want (5,true)", v, ok)
	}
}
