// Package parallel provides the bounded-concurrency primitives behind the
// experiment engine: a bounded worker Pool, a deterministic
// order-preserving Map, and a generic per-key singleflight Cache (see
// cache.go). The package exists so the 147-workload × 3-device artifact
// sweep can use every core while keeping rendered output byte-identical to
// a serial run: Map preserves input order and first-error semantics no
// matter how the scheduler interleaves workers, and Cache guarantees each
// expensive artifact is computed exactly once per key.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Observer receives worker-occupancy events from every Pool and Map in
// the process: queue depth (submitted but not running) and active-worker
// transitions. Implementations must be cheap and concurrency-safe; they
// observe scheduling only and can never influence results.
type Observer interface {
	TaskQueued()  // task submitted, waiting for a worker slot
	TaskStarted() // worker slot acquired
	TaskDone()    // task finished (success, error, or contained panic)
}

// observerRef wraps the interface so it can live in an atomic.Pointer.
type observerRef struct{ o Observer }

var globalObserver atomic.Pointer[observerRef]

// SetObserver installs the process-wide pool observer (nil uninstalls).
// Typically wired once at CLI startup from internal/obs; the default is
// no observation.
func SetObserver(o Observer) {
	if o == nil {
		globalObserver.Store(nil)
		return
	}
	globalObserver.Store(&observerRef{o: o})
}

func observer() Observer {
	if ref := globalObserver.Load(); ref != nil {
		return ref.o
	}
	return nil
}

// Workers normalizes a parallelism knob: n > 0 is used as-is, anything
// else falls back to GOMAXPROCS (the pool's default width).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError reports a panic recovered inside a worker. Containing panics
// as errors keeps one faulty item from tearing down a whole sweep and
// keeps -race stress tests from aborting mid-flight.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v", e.Value)
}

// protect invokes fn, converting a panic into a *PanicError.
func protect[R any](fn func() (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Map applies fn to every item with at most Workers(workers) concurrent
// calls and returns the results in input order. Every item is attempted
// even when some fail, and the returned error is the lowest-indexed
// failure — so the (results, error) pair is deterministic regardless of
// goroutine scheduling. A panic inside fn is contained and surfaces as a
// *PanicError for that index.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]R, n)
	errs := make([]error, n)
	obs := observer()
	if w == 1 {
		for i := range items {
			i := i
			if obs != nil {
				obs.TaskStarted()
			}
			results[i], errs[i] = protect(func() (R, error) { return fn(i, items[i]) })
			if obs != nil {
				obs.TaskDone()
			}
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					i := i
					if obs != nil {
						obs.TaskStarted()
					}
					results[i], errs[i] = protect(func() (R, error) { return fn(i, items[i]) })
					if obs != nil {
						obs.TaskDone()
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			if obs != nil {
				obs.TaskQueued()
			}
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Pool is a bounded worker pool: at most Size tasks run concurrently, and
// Wait blocks until every submitted task finishes. The zero value is not
// usable; construct with NewPool.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error // first task error observed, panics included
}

// NewPool returns a pool running at most Workers(workers) tasks at once.
func NewPool(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Size returns the pool's concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// Go submits a task. It blocks until a worker slot is free, then runs the
// task on its own goroutine; panics are contained as *PanicError.
func (p *Pool) Go(fn func() error) {
	obs := observer()
	if obs != nil {
		obs.TaskQueued()
	}
	p.sem <- struct{}{}
	if obs != nil {
		obs.TaskStarted()
	}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
			if obs != nil {
				obs.TaskDone()
			}
		}()
		if _, err := protect(func() (struct{}, error) { return struct{}{}, fn() }); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.mu.Unlock()
		}
	}()
}

// Wait blocks until all submitted tasks finish and returns the first error
// any of them produced (in completion order, not submission order — use
// Map when deterministic error selection matters).
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
