package parallel

import (
	"container/heap"
	"context"
	"sync"
)

// Scheduler is a process-wide bounded work queue that runs submitted tasks
// longest-first: each task carries an estimated cost (the study layer uses
// a kernel's dynamic warp-instruction count) and, whenever a worker frees
// up, the most expensive queued task runs next. Longest-task-first keeps a
// huge kernel from being dequeued last and pinning the whole study's
// wall-clock to one straggler — the big workload's kernels interleave with
// everyone else's instead of queuing behind them.
//
// A Scheduler spawns workers on demand up to its width and lets them exit
// when the queue drains, so an idle Scheduler holds no goroutines and
// needs no Close. Ties in cost break FIFO (submission order), which keeps
// the execution order deterministic for a given submission order. The
// scheduler only chooses *when* tasks run; callers that need deterministic
// results merge task outputs by submission index (see SchedMap), so the
// output is byte-identical at any width.
type Scheduler struct {
	width int

	mu      sync.Mutex
	queue   taskHeap
	seq     uint64
	running int
}

// NewScheduler returns a scheduler running at most Workers(workers) tasks
// concurrently.
func NewScheduler(workers int) *Scheduler {
	return &Scheduler{width: Workers(workers)}
}

// Width returns the scheduler's concurrency bound.
func (s *Scheduler) Width() int {
	if s == nil {
		return 1
	}
	return s.width
}

// submit enqueues one task and spawns a worker for it when the pool is
// not already at width.
func (s *Scheduler) submit(cost int64, run func()) {
	obs := observer()
	if obs != nil {
		obs.TaskQueued()
	}
	wrapped := func() {
		if obs != nil {
			obs.TaskStarted()
		}
		run()
		if obs != nil {
			obs.TaskDone()
		}
	}
	s.mu.Lock()
	heap.Push(&s.queue, schedTask{cost: cost, seq: s.seq, run: wrapped})
	s.seq++
	spawn := s.running < s.width
	if spawn {
		s.running++
	}
	s.mu.Unlock()
	if spawn {
		go s.work()
	}
}

// work drains the queue highest-cost-first and exits when it is empty.
func (s *Scheduler) work() {
	for {
		s.mu.Lock()
		if s.queue.Len() == 0 {
			s.running--
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.queue).(schedTask)
		s.mu.Unlock()
		t.run()
	}
}

// SchedMap applies fn to every item through the scheduler, prioritized by
// cost (descending), and returns the results in input order with Map's
// deterministic error semantics: every item is attempted, panics are
// contained as *PanicError, and the returned error is the lowest-indexed
// failure. A nil scheduler (or nil cost) degrades to an inline serial loop
// in input order — the same results, computed on the calling goroutine.
//
// The caller's goroutine blocks until every item finishes; items run on
// the scheduler's workers, interleaved with tasks from any other SchedMap
// in flight on the same Scheduler.
func SchedMap[T, R any](s *Scheduler, items []T, cost func(item T) int64, fn func(i int, item T) (R, error)) ([]R, error) {
	return SchedMapCtx(context.Background(), s, items, cost, fn)
}

// SchedMapCtx is SchedMap with cancellation: once ctx is done, items that
// have not started yet are skipped (their slot reports ctx.Err()) while
// items already running finish normally. The queue always drains — every
// submitted task settles its WaitGroup slot whether it ran or was skipped —
// so a cancelled call returns (never deadlocks) with the partial results
// still in input order: completed items carry real values, skipped ones
// their zero value. The returned error is the lowest-indexed failure,
// which for a cancellation mid-run is the first skipped item's ctx.Err().
func SchedMapCtx[T, R any](ctx context.Context, s *Scheduler, items []T, cost func(item T) int64, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	results := make([]R, n)
	errs := make([]error, n)
	if s == nil || cost == nil {
		obs := observer()
		for i := range items {
			i := i
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			if obs != nil {
				obs.TaskStarted()
			}
			results[i], errs[i] = protect(func() (R, error) { return fn(i, items[i]) })
			if obs != nil {
				obs.TaskDone()
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := range items {
			i := i
			s.submit(cost(items[i]), func() {
				defer wg.Done()
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				results[i], errs[i] = protect(func() (R, error) { return fn(i, items[i]) })
			})
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// schedTask is one queued unit of work.
type schedTask struct {
	cost int64
	seq  uint64
	run  func()
}

// taskHeap is a max-heap on cost with FIFO sequence tiebreak.
type taskHeap []schedTask

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost > h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(schedTask)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = schedTask{}
	*h = old[:n-1]
	return t
}
