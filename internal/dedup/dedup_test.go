package dedup

import (
	"reflect"
	"testing"

	"pka/internal/core"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/stats"
	"pka/internal/workload"
)

// gaussSuite is the canonical dedup suite: three size variants of the
// same Rodinia benchmark, whose kernel populations overlap heavily.
func gaussSuite(t *testing.T) []*workload.Workload {
	t.Helper()
	names := []string{"Rodinia/gauss_s16", "Rodinia/gauss_s64", "Rodinia/gauss_s256"}
	ws := make([]*workload.Workload, len(names))
	for i, n := range names {
		if ws[i] = workload.Find(n); ws[i] == nil {
			t.Fatalf("missing workload %s", n)
		}
	}
	return ws
}

// The headline property: per-app projections from the shared selection
// stay inside the documented error envelope while the suite simulates
// well under the per-app PKS total — the ≥1.3× the CI bench gate pins.
func TestSuiteDedupEnvelope(t *testing.T) {
	dev := gpu.VoltaV100()
	ws := gaussSuite(t)
	suite, err := Select(dev, ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if suite.K == 0 || len(suite.Reps) != suite.K {
		t.Fatalf("suite K=%d with %d reps", suite.K, len(suite.Reps))
	}
	if suite.SuiteErrorPct > suite.TargetErrorPct {
		t.Errorf("suite selection error %.2f%% above target %.1f%%",
			suite.SuiteErrorPct, suite.TargetErrorPct)
	}
	for _, app := range suite.Apps {
		if app.SelectionErrorPct > suite.PerAppErrorPct {
			t.Errorf("%s selection error %.2f%% outside the %.1f%% envelope",
				app.Workload, app.SelectionErrorPct, suite.PerAppErrorPct)
		}
		if got := sum(app.GroupCounts); got != app.TotalKernels {
			t.Errorf("%s group counts sum to %d, want %d", app.Workload, got, app.TotalKernels)
		}
	}

	cfg := core.Config{Device: dev}
	run, err := Run(cfg, ws, suite, false)
	if err != nil {
		t.Fatal(err)
	}

	// Per-app comparison against the per-app PKS pipeline: the shared
	// selection must not degrade any app's end-to-end cycle error by more
	// than the envelope allows, and must simulate strictly less in total.
	var perAppWork int64
	for a, w := range ws {
		sel, err := pks.Select(dev, w, pks.Options{})
		if err != nil {
			t.Fatal(err)
		}
		solo, err := core.RunSampled(cfg, w, sel, false)
		if err != nil {
			t.Fatal(err)
		}
		perAppWork += solo.SimWarpInstrs

		sil, err := sampling.SiliconTotal(dev, w)
		if err != nil {
			t.Fatal(err)
		}
		dedupErr := stats.AbsPctErr(float64(run.Apps[a].ProjCycles), float64(sil.Cycles))
		soloErr := stats.AbsPctErr(float64(solo.ProjCycles), float64(sil.Cycles))
		t.Logf("%s: dedup err %.2f%% (solo PKS %.2f%%), active reps %d (solo K %d)",
			w.FullName(), dedupErr, soloErr, suite.Apps[a].ActiveReps, sel.K)
		// End to end, the simulator's own model error is common to both
		// pipelines; what the envelope bounds is the *additional* error the
		// shared selection may introduce over the app's own PKS.
		if dedupErr > soloErr+suite.PerAppErrorPct {
			t.Errorf("%s dedup error %.2f%% degrades solo PKS %.2f%% by more than the %.1f%% envelope",
				w.FullName(), dedupErr, soloErr, suite.PerAppErrorPct)
		}
	}
	if run.SimWarpInstrs <= 0 || perAppWork <= 0 {
		t.Fatal("no simulated work recorded")
	}
	ratio := float64(perAppWork) / float64(run.SimWarpInstrs)
	t.Logf("suite warp instrs: per-app %d vs dedup %d (%.2fx)", perAppWork, run.SimWarpInstrs, ratio)
	if ratio < 1.3 {
		t.Errorf("dedup reduced simulated work only %.2fx, want >= 1.3x", ratio)
	}
}

// Selection and simulation must be byte-deterministic at any parallelism
// and cache state — the same invariant the per-app pipeline holds.
func TestSuiteDedupDeterminism(t *testing.T) {
	dev := gpu.VoltaV100()
	ws := gaussSuite(t)

	base, err := Select(dev, ws, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Select(dev, ws, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("repeated Select differs")
	}

	var runs []RunResult
	for _, p := range []int{1, 8} {
		cfg := core.Config{
			Device: dev,
			Exec:   sampling.NewExec(parallel.NewScheduler(p), nil),
		}
		r, err := Run(cfg, ws, base, true)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("dedup run differs across parallelism: %+v vs %+v", runs[0], runs[1])
	}
}

// Forcing two-level profiling (tiny detailed caps) must keep every app's
// population fully accounted and the projections finite and sane.
func TestSuiteDedupTwoLevel(t *testing.T) {
	dev := gpu.VoltaV100()
	ws := gaussSuite(t)
	suite, err := Select(dev, ws, Options{MaxDetailedPerApp: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range suite.Apps {
		if !app.TwoLevel && app.TotalKernels > 12 {
			t.Errorf("%s should be two-level at cap 12", app.Workload)
		}
		if got := sum(app.GroupCounts); got != app.TotalKernels {
			t.Errorf("%s group counts sum to %d, want %d", app.Workload, got, app.TotalKernels)
		}
	}
	cfg := core.Config{Device: dev}
	run, err := Run(cfg, ws, suite, false)
	if err != nil {
		t.Fatal(err)
	}
	for a, w := range ws {
		sel, err := pks.Select(dev, w, pks.Options{})
		if err != nil {
			t.Fatal(err)
		}
		solo, err := core.RunSampled(cfg, w, sel, false)
		if err != nil {
			t.Fatal(err)
		}
		sil, err := sampling.SiliconTotal(dev, w)
		if err != nil {
			t.Fatal(err)
		}
		e := stats.AbsPctErr(float64(run.Apps[a].ProjCycles), float64(sil.Cycles))
		soloErr := stats.AbsPctErr(float64(solo.ProjCycles), float64(sil.Cycles))
		t.Logf("%s two-level dedup error %.2f%% (solo PKS %.2f%%)", w.FullName(), e, soloErr)
		// Classifier mapping adds error on top of the selection envelope;
		// relative to the per-app pipeline it must stay within 2x of it.
		if e > soloErr+2*suite.PerAppErrorPct {
			t.Errorf("%s two-level error %.2f%% degrades solo %.2f%% past 2x the envelope",
				w.FullName(), e, soloErr)
		}
	}
}

// Telemetry and audit must record the pass: pooled kernels, sweep steps,
// elected reps, and the selected-K audit trail under component "dedup".
func TestSuiteDedupTelemetry(t *testing.T) {
	dev := gpu.VoltaV100()
	ws := gaussSuite(t)
	o := obs.NewObserver()
	suite, err := Select(dev, ws, Options{Audit: o.Audit, Metrics: o.DedupMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	m := o.DedupMetrics()
	if m.Selections.Value() != 1 {
		t.Errorf("selections = %d, want 1", m.Selections.Value())
	}
	if m.KernelsPooled.Value() != int64(suite.PooledKernels) {
		t.Errorf("pooled = %d, want %d", m.KernelsPooled.Value(), suite.PooledKernels)
	}
	if m.Reps.Value() != int64(suite.K) {
		t.Errorf("reps = %d, want %d", m.Reps.Value(), suite.K)
	}
	if m.SweepSteps.Value() != int64(len(suite.SweepErrors)) {
		t.Errorf("sweep steps = %d, want %d", m.SweepSteps.Value(), len(suite.SweepErrors))
	}
	var selected, steps int
	for _, r := range o.Audit.Records() {
		if r.Component != "dedup" {
			continue
		}
		switch r.Event {
		case "selected":
			selected++
			if int(r.Fields["k"]) != suite.K {
				t.Errorf("audit k = %v, want %d", r.Fields["k"], suite.K)
			}
		case "sweep-step":
			steps++
		}
	}
	if selected != 1 || steps != len(suite.SweepErrors) {
		t.Errorf("audit: %d selected / %d steps, want 1 / %d", selected, steps, len(suite.SweepErrors))
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
