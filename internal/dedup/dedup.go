// Package dedup implements suite-level principal kernel deduplication:
// a cross-workload extension of Principal Kernel Selection for studies
// that sweep an entire benchmark suite at once. Per-app PKS clusters each
// workload in isolation, so two apps that launch near-identical kernels
// (size variants of the same benchmark, shared library kernels, repeated
// layers across models) each pay for their own representative. The dedup
// pass instead pools every workload's detailed Table-2 feature vectors,
// projects them into one shared PCA space, sweeps K over the pooled
// population, and elects ONE simulated representative per cross-workload
// cluster. Per-app group weights are re-derived from each app's own
// cluster membership, so every app's projected cycles, IPC, and DRAM
// tables remain statistically faithful while the total warp instructions
// actually simulated drops well below the sum of per-app selections.
//
// Error envelope: the K sweep stops only when the suite-level projected
// cycle error is under Options.TargetErrorPct (default 5%) AND every
// app's own projection error over the pooled sample is under
// Options.PerAppErrorPct (default 2× the suite target, i.e. 10%) — the
// per-app bound is what keeps a small app from being silently absorbed
// into a big app's clusters. The envelope holds at selection time against
// silicon; end to end the suite tests pin it RELATIVE to the per-app
// pipeline — the simulator's own model error is common to both, so dedup
// may not degrade any app's projection by more than the envelope over
// what per-app PKS already produces.
//
// Determinism: pooling order is app-major and chronological within each
// app, sampling is strided, k-means seeds derive from Options.Seed, and
// the runner folds outcomes in fixed (app, representative) order — so a
// dedup study is byte-identical at any parallelism and any cache state,
// exactly like the per-app pipeline.
package dedup

import (
	"errors"
	"fmt"

	"pka/internal/classify"
	"pka/internal/cluster"
	"pka/internal/core"
	"pka/internal/gpu"
	"pka/internal/linalg"
	"pka/internal/obs"
	"pka/internal/pks"
	"pka/internal/profiler"
	"pka/internal/sampling"
	"pka/internal/silicon"
	"pka/internal/sim"
	"pka/internal/stats"
	"pka/internal/trace"
	"pka/internal/workload"
)

// Options configures a suite-level dedup selection. The zero value
// reproduces the per-app PKS defaults lifted to the suite.
type Options struct {
	// TargetErrorPct is the suite-level projected-cycle error threshold
	// that (together with PerAppErrorPct) ends the K sweep. Zero applies 5.
	TargetErrorPct float64
	// PerAppErrorPct bounds every app's own projection error over the
	// pooled sample before the sweep may stop — the envelope documented in
	// the package comment. Zero applies 2× TargetErrorPct.
	PerAppErrorPct float64
	// MaxK bounds the sweep. Zero applies 20 plus 5 per additional
	// workload: a suite needs headroom over a single app's 20, but far
	// less than the sum of per-app Ks — that gap is the dedup win.
	MaxK int
	// PCAVarianceTarget is the explained-variance fraction kept (0.9).
	PCAVarianceTarget float64
	// DetailedBudgetSeconds bounds modeled detailed-profiling time per
	// workload before two-level profiling engages. Zero applies the
	// paper's one week.
	DetailedBudgetSeconds float64
	// MaxDetailedPerApp caps detailed-profiled kernels per workload
	// outright (0 = budget only).
	MaxDetailedPerApp int
	// ClusterSampleMax subsamples the pooled set for the K sweep; the
	// rest are nearest-center assigned afterwards. Zero applies 20000.
	ClusterSampleMax int
	// Seed drives k-means++ and the classifier ensemble.
	Seed uint64

	// Audit, when non-nil, receives one "sweep-step" record per K tried
	// and a "selected" record for the chosen K, component "dedup".
	Audit *obs.Audit
	// Metrics, when non-nil, receives the pka_dedup_* family.
	Metrics *obs.DedupMetrics
}

func (o Options) filled(napps int) Options {
	if o.TargetErrorPct <= 0 {
		o.TargetErrorPct = 5
	}
	if o.PerAppErrorPct <= 0 {
		o.PerAppErrorPct = 2 * o.TargetErrorPct
	}
	if o.MaxK <= 0 {
		o.MaxK = 20 + 5*(napps-1)
	}
	if o.PCAVarianceTarget <= 0 || o.PCAVarianceTarget > 1 {
		o.PCAVarianceTarget = 0.9
	}
	if o.DetailedBudgetSeconds <= 0 {
		o.DetailedBudgetSeconds = profiler.DefaultDetailedBudgetSeconds
	}
	if o.ClusterSampleMax <= 0 {
		o.ClusterSampleMax = 20000
	}
	return o
}

// Rep is one cross-workload representative: a single kernel, owned by one
// app, that stands in for its whole suite cluster — including members
// from other apps.
type Rep struct {
	// App indexes the suite's workload slice; Workload is its full name.
	App      int
	Workload string
	// KernelID is the representative's chronological launch index within
	// its app; Name its kernel name; Cycles its detailed silicon cycles.
	KernelID int
	Name     string
	Cycles   int64
}

// AppSelection is one workload's view of the suite selection: how its
// kernel population distributes over the shared representatives.
type AppSelection struct {
	Workload string
	// TotalKernels and DetailedKernels mirror pks.Selection; TwoLevel
	// reports that the classifier mapped this app's tail.
	TotalKernels    int
	DetailedKernels int
	TwoLevel        bool
	// GroupCounts[r] is how many of this app's kernels cluster under
	// suite representative r (len == len(Suite.Reps)).
	GroupCounts []int
	// ActiveReps counts representatives this app actually uses — its
	// effective per-app K under the shared selection.
	ActiveReps int
	// SiliconTotalCycles, ProjectedCycles, and SelectionErrorPct are the
	// per-app ground truth, Σ rep-cycles × count, and their error.
	SiliconTotalCycles int64
	ProjectedCycles    int64
	SelectionErrorPct  float64
}

// Suite is the output of a suite-level dedup selection.
type Suite struct {
	Device         string
	TargetErrorPct float64
	PerAppErrorPct float64

	// K is the chosen cluster count; Reps the elected representatives
	// (one per non-empty cluster, first-chronological by (app, kernel)).
	K    int
	Reps []Rep
	// Apps holds one selection view per input workload, same order.
	Apps []AppSelection

	// PooledKernels is the size of the shared clustering population;
	// TotalKernels the suite's full launch count.
	PooledKernels int
	TotalKernels  int
	// SuiteErrorPct is the suite-total projection error at selection.
	SuiteErrorPct float64
	// SweepErrors records the suite error at each K tried (index 0: K=1).
	SweepErrors []float64
	// ProfilingSeconds is the modeled cost of both profiling passes.
	ProfilingSeconds float64
}

// pooledKernel is one detailed record tagged with its owning app.
type pooledKernel struct {
	app       int
	rec       profiler.DetailedRecord
	sharedMem int
}

// Select runs suite-level dedup selection over the workloads on the
// device. Workload order is significant only for tie-breaking (reps are
// first-chronological by (app, kernel)); the statistics are order-free.
func Select(dev gpu.Device, ws []*workload.Workload, opts Options) (*Suite, error) {
	if len(ws) == 0 {
		return nil, errors.New("dedup: empty suite")
	}
	o := opts.filled(len(ws))
	suite := &Suite{
		Device:         dev.Name,
		TargetErrorPct: o.TargetErrorPct,
		PerAppErrorPct: o.PerAppErrorPct,
		Apps:           make([]AppSelection, len(ws)),
	}

	// Pass 1: detailed-profile each app under its own budget, pooling the
	// records app-major so pool index order is (app, kernelID) order —
	// the property representative election relies on.
	var pool []pooledKernel
	for a, w := range ws {
		app := &suite.Apps[a]
		app.Workload = w.FullName()
		app.TotalKernels = w.N
		suite.TotalKernels += w.N
		budget := o.DetailedBudgetSeconds
		next := w.Iterator()
		for k := next(); k != nil; k = next() {
			rec, cost, err := profiler.Detailed(dev, k)
			if err != nil {
				return nil, fmt.Errorf("dedup: detailed profiling %s: %w", app.Workload, err)
			}
			pool = append(pool, pooledKernel{app: a, rec: rec, sharedMem: k.SharedMemPerBlock})
			app.DetailedKernels++
			app.SiliconTotalCycles += rec.Cycles
			suite.ProfilingSeconds += cost
			budget -= cost
			if budget <= 0 || (o.MaxDetailedPerApp > 0 && app.DetailedKernels >= o.MaxDetailedPerApp) {
				break
			}
		}
		if app.DetailedKernels == 0 {
			return nil, fmt.Errorf("dedup: workload %s has no kernels", app.Workload)
		}
		app.TwoLevel = app.DetailedKernels < w.N
	}
	suite.PooledKernels = len(pool)

	// Shared PCA space over a strided sample of the pool, scaled exactly
	// like per-app PKS so the cluster geometry is comparable.
	sample := pks.SampleIndices(len(pool), o.ClusterSampleMax)
	feat := linalg.NewMatrix(len(sample), trace.NumFeatures)
	for r, idx := range sample {
		pks.ScaleFeatures(feat.Row(r), pool[idx].rec.Features)
	}
	pca, err := linalg.FitPCA(feat, o.PCAVarianceTarget, 2)
	if err != nil {
		return nil, fmt.Errorf("dedup: PCA: %w", err)
	}
	proj, err := pca.Transform(feat)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, proj.Rows)
	for i := range points {
		points[i] = proj.Row(i)
	}

	// Per-app and suite silicon totals over the sample — the denominators
	// of the sweep's stop criteria.
	var totalSample int64
	appSample := make([]int64, len(ws))
	for _, idx := range sample {
		totalSample += pool[idx].rec.Cycles
		appSample[pool[idx].app] += pool[idx].rec.Cycles
	}

	ds, err := cluster.NewDataset(points)
	if err != nil {
		return nil, fmt.Errorf("dedup: kmeans dataset: %w", err)
	}
	best, sweep, err := ds.Sweep(minInt(o.MaxK, len(points)),
		func(k int) uint64 { return o.Seed + uint64(k) },
		func(k int, res *cluster.KMeansResult) (float64, bool) {
			suiteErr, maxAppErr := suiteProjectionError(res, pool, sample, totalSample, appSample)
			if m := o.Metrics; m != nil {
				m.SweepSteps.Inc()
			}
			stop := suiteErr <= o.TargetErrorPct && maxAppErr <= o.PerAppErrorPct
			if o.Audit != nil {
				under := 0.0
				if stop {
					under = 1
				}
				o.Audit.Record("dedup", "sweep-step", suiteSubject(ws), 0, map[string]float64{
					"k":                 float64(k),
					"error_pct":         suiteErr,
					"max_app_error_pct": maxAppErr,
					"target_error_pct":  o.TargetErrorPct,
					"per_app_bound_pct": o.PerAppErrorPct,
					"under_target":      under,
					"pooled_kernels":    float64(len(points)),
				})
			}
			return suiteErr, stop
		})
	if err != nil {
		return nil, fmt.Errorf("dedup: kmeans sweep: %w", err)
	}
	suite.SweepErrors = sweep

	// Elect representatives from the sampled members: first chronological
	// by (app, kernelID) == minimal pool index, since the pool is
	// app-major chronological.
	clusterToRep := make(map[int]int, best.K)
	for c := 0; c < best.K; c++ {
		members := best.Members(c)
		if len(members) == 0 {
			continue
		}
		repIdx := sample[members[0]]
		for _, m := range members[1:] {
			if sample[m] < repIdx {
				repIdx = sample[m]
			}
		}
		pk := pool[repIdx]
		clusterToRep[c] = len(suite.Reps)
		suite.Reps = append(suite.Reps, Rep{
			App:      pk.app,
			Workload: suite.Apps[pk.app].Workload,
			KernelID: pk.rec.KernelID,
			Name:     pk.rec.Name,
			Cycles:   pk.rec.Cycles,
		})
	}
	if len(suite.Reps) == 0 {
		return nil, errors.New("dedup: clustering produced no representatives")
	}
	suite.K = len(suite.Reps)

	// Assign every pooled kernel (sampled or not) to a representative and
	// accumulate each app's group counts.
	repOf := make([]int, len(pool))
	samplePos := make(map[int]int, len(sample))
	for pos, idx := range sample {
		samplePos[idx] = pos
	}
	for i := range pool {
		var c int
		if pos, ok := samplePos[i]; ok {
			c = best.Assignment[pos]
		} else {
			row := pks.ScaleFeatures(nil, pool[i].rec.Features)
			p, err := pca.TransformRow(row)
			if err != nil {
				return nil, err
			}
			c = best.NearestCenter(p)
		}
		r, ok := clusterToRep[c]
		if !ok {
			r = 0 // nearest-center landed on a sample-empty cluster
		}
		repOf[i] = r
	}
	for a := range suite.Apps {
		suite.Apps[a].GroupCounts = make([]int, suite.K)
	}
	for i, pk := range pool {
		suite.Apps[pk.app].GroupCounts[repOf[i]]++
	}

	// Pass 2 (two-level apps only): one suite-wide ensemble, trained on
	// pooled launch features with representative labels, maps every
	// lightly-profiled tail kernel onto a shared group.
	if err := mapLightTails(dev, ws, suite, pool, repOf, o); err != nil {
		return nil, err
	}

	// Per-app and suite accounting.
	var suiteProjected, suiteSilicon int64
	for a := range suite.Apps {
		app := &suite.Apps[a]
		for r, n := range app.GroupCounts {
			if n == 0 {
				continue
			}
			app.ActiveReps++
			app.ProjectedCycles += suite.Reps[r].Cycles * int64(n)
		}
		app.SelectionErrorPct = stats.AbsPctErr(float64(app.ProjectedCycles), float64(app.SiliconTotalCycles))
		suiteProjected += app.ProjectedCycles
		suiteSilicon += app.SiliconTotalCycles
	}
	suite.SuiteErrorPct = stats.AbsPctErr(float64(suiteProjected), float64(suiteSilicon))

	if m := o.Metrics; m != nil {
		m.Selections.Inc()
		m.KernelsPooled.Add(int64(suite.PooledKernels))
		m.Reps.Add(int64(suite.K))
		m.ChosenK.Observe(float64(suite.K))
		m.SuiteErrorPct.Observe(suite.SuiteErrorPct)
	}
	if o.Audit != nil {
		o.Audit.Record("dedup", "selected", suiteSubject(ws), 0, map[string]float64{
			"k":                 float64(suite.K),
			"apps":              float64(len(ws)),
			"pooled_kernels":    float64(suite.PooledKernels),
			"total_kernels":     float64(suite.TotalKernels),
			"suite_error_pct":   suite.SuiteErrorPct,
			"target_error_pct":  o.TargetErrorPct,
			"per_app_bound_pct": o.PerAppErrorPct,
			"profiling_seconds": suite.ProfilingSeconds,
		})
	}
	return suite, nil
}

// suiteProjectionError scores one clustering: the suite-total projected
// cycle error and the worst single-app error, both over the sample.
func suiteProjectionError(res *cluster.KMeansResult, pool []pooledKernel, sample []int, totalSample int64, appSample []int64) (suiteErr, maxAppErr float64) {
	appProj := make([]int64, len(appSample))
	var projected int64
	for c := 0; c < res.K; c++ {
		members := res.Members(c)
		if len(members) == 0 {
			continue
		}
		repIdx := sample[members[0]]
		for _, m := range members[1:] {
			if sample[m] < repIdx {
				repIdx = sample[m]
			}
		}
		repCycles := pool[repIdx].rec.Cycles
		for _, m := range members {
			projected += repCycles
			appProj[pool[sample[m]].app] += repCycles
		}
	}
	suiteErr = stats.AbsPctErr(float64(projected), float64(totalSample))
	for a, total := range appSample {
		if total == 0 {
			continue
		}
		if e := stats.AbsPctErr(float64(appProj[a]), float64(total)); e > maxAppErr {
			maxAppErr = e
		}
	}
	return suiteErr, maxAppErr
}

// mapLightTails is the suite's second profiling pass: for every app whose
// detailed prefix stopped short of its launch count, light-profile the
// tail and classify each kernel onto a shared representative. One
// ensemble serves the whole suite — it is trained on the pooled detailed
// launch features, so an app's tail kernel can legitimately map onto a
// representative owned by a different app.
func mapLightTails(dev gpu.Device, ws []*workload.Workload, suite *Suite, pool []pooledKernel, repOf []int, o Options) error {
	anyTail := false
	for a := range suite.Apps {
		if suite.Apps[a].TwoLevel {
			anyTail = true
			break
		}
	}
	if !anyTail {
		return nil
	}
	var ens *classify.Ensemble
	if suite.K > 1 {
		const classifierTrainMax = 20000
		trainIdx := pks.SampleIndices(len(pool), classifierTrainMax)
		X := make([][]float64, len(trainIdx))
		labels := make([]int, len(trainIdx))
		for i, idx := range trainIdx {
			X[i] = profiler.FeaturesOfDetailed(pool[idx].rec, pool[idx].sharedMem)
			labels[i] = repOf[idx]
		}
		ens = classify.NewEnsemble(o.Seed)
		if err := ens.Fit(X, labels, suite.K); err != nil {
			return fmt.Errorf("dedup: classifier training: %w", err)
		}
	}
	for a, w := range ws {
		app := &suite.Apps[a]
		if !app.TwoLevel {
			continue
		}
		for i := app.DetailedKernels; i < w.N; i++ {
			k := w.Kernel(i)
			rec, cost, err := profiler.Light(dev, &k)
			if err != nil {
				return fmt.Errorf("dedup: light profiling %s kernel %d: %w", app.Workload, i, err)
			}
			suite.ProfilingSeconds += cost
			g := 0
			if ens != nil {
				g = ens.Predict(profiler.FeaturesOfLight(rec))
			}
			app.GroupCounts[g]++
			app.SiliconTotalCycles += rec.Cycles
		}
	}
	return nil
}

// RunResult is the outcome of simulating a dedup suite: per-app sampled
// projections plus the suite's unique simulated work — the number whose
// ratio against the per-app total is the dedup speedup.
type RunResult struct {
	// Apps holds one projection per input workload, same order. Per-app
	// SimWarpInstrs/SimHours are zero by construction: representatives
	// are shared, so simulated work is only attributable suite-wide.
	Apps []core.SampledSim
	// SimWarpInstrs is the total warp instructions actually simulated —
	// each shared representative counted exactly once.
	SimWarpInstrs int64
	// SimHours is the projected simulation wall time at the modeled rate.
	SimHours float64
	// Capped reports that some representative hit the runaway guard.
	Capped bool
}

// Run simulates each suite representative exactly once (with PKP when
// usePKP is set) and projects every app's metrics from its own group
// counts. Outcomes resolve through cfg.Exec's tier ladder and fold in
// fixed (app, representative) order, so the result is byte-identical at
// any parallelism and cache state.
func Run(cfg core.Config, ws []*workload.Workload, suite *Suite, usePKP bool) (RunResult, error) {
	var out RunResult
	if suite == nil || len(suite.Reps) == 0 {
		return out, errors.New("dedup: empty suite selection")
	}
	if len(ws) != len(suite.Apps) {
		return out, fmt.Errorf("dedup: suite has %d apps, got %d workloads", len(suite.Apps), len(ws))
	}
	dev := cfg.Device
	capCycles := cfg.KernelCapCycles
	if capCycles <= 0 {
		capCycles = sim.DefaultMaxCycles
	}
	mode := "dedup-pks"
	if usePKP {
		mode = "dedup-pka"
	}
	span := cfg.Obs.StartSpan("sampled:"+mode, suiteSubject(ws))
	defer span.End()
	var simObs *obs.SimObs
	if cfg.Obs != nil {
		simObs = cfg.Obs.SimObs("sim:" + mode)
	}

	task := sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: capCycles}
	if usePKP {
		task = sampling.KernelTask{Mode: sampling.ModePKA, MaxCycles: capCycles, PKP: sampling.NewPKPSpec(cfg.PKP)}
	}
	kernels := make([]trace.KernelDesc, len(suite.Reps))
	for i, rep := range suite.Reps {
		kernels[i] = ws[rep.App].Kernel(rep.KernelID)
	}
	tobs := func(i int) sampling.TaskObs {
		to := cfg.TaskTrace(mode)
		to.Sim = simObs
		to.Index = i
		if usePKP {
			po := cfg.PKPOptions(suite.Reps[i].Workload + "/" + kernels[i].Name)
			to.Audit, to.AuditSubject, to.PKPMetrics = po.Audit, po.AuditSubject, po.Metrics
		}
		return to
	}
	outs, err := cfg.Exec.RunKernels(dev, task, kernels, tobs)
	if err != nil {
		return out, fmt.Errorf("dedup: suite representatives: %w", err)
	}

	out.Apps = make([]core.SampledSim, len(ws))
	for _, oc := range outs {
		out.SimWarpInstrs += oc.SimWarpInstrs
		if oc.Capped {
			out.Capped = true
		}
	}
	for a := range ws {
		app := &out.Apps[a]
		var kernelCycles int64
		var threadInstrs, dramWeighted float64
		for r, oc := range outs {
			weight := int64(suite.Apps[a].GroupCounts[r])
			if weight == 0 {
				continue
			}
			if oc.Capped {
				app.Capped = true
			}
			kernelCycles += oc.ProjCycles * weight
			threadInstrs += oc.ThreadInstrs * float64(weight)
			dramWeighted += oc.DRAMUtil * float64(oc.ProjCycles*weight)
		}
		app.ProjCycles = kernelCycles + int64(suite.Apps[a].TotalKernels)*silicon.KernelLaunchOverheadCycles
		if kernelCycles > 0 {
			app.IPC = threadInstrs / float64(kernelCycles)
			app.DRAMUtil = dramWeighted / float64(kernelCycles)
		}
	}
	out.SimHours = cfg.SimHours(out.SimWarpInstrs)
	return out, nil
}

// suiteSubject labels audit records and spans for a suite.
func suiteSubject(ws []*workload.Workload) string {
	if len(ws) == 0 {
		return "suite"
	}
	s := ws[0].FullName()
	for _, w := range ws[1:] {
		s += "," + w.FullName()
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
