package predict

import (
	"reflect"
	"testing"

	"pka/internal/artifact"
	"pka/internal/core"
	"pka/internal/gpu"
	"pka/internal/parallel"
	"pka/internal/sampling"
	"pka/internal/workload"
)

// TestStudyDeterministicWithPredictor pins satellite invariants end to
// end: warm a store by running a study, train a model from the store,
// then re-run the study with the predictor tier on at different
// parallelism levels. Every kernel task hits a training key, so the tier
// serves the stored exact outcomes and the study is byte-identical to the
// predictor-off baseline at any -p.
func TestStudyDeterministicWithPredictor(t *testing.T) {
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	dev := gpu.VoltaV100()
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	baseCfg := func(par int) core.Config {
		return core.Config{
			Device:      dev,
			Parallelism: par,
			Exec:        sampling.NewExec(parallel.NewScheduler(par), store),
		}
	}
	want, err := core.Evaluate(baseCfg(4), w)
	if err != nil {
		t.Fatal(err)
	}

	samples, sum := ScanStore(dev, store, []*workload.Workload{w}, ScanOptions{})
	if sum.Hits == 0 {
		t.Fatalf("store scan found no samples: %+v", sum)
	}
	model, err := Train(dev, samples, TrainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 8} {
		cfg := baseCfg(par)
		// Fresh exec with NO store: only the predictor can avoid
		// re-simulating, so tier attribution below proves it served.
		cfg.Exec = sampling.NewExec(parallel.NewScheduler(par), nil)
		tier := NewTier(model, TierOptions{VerifyFraction: -1})
		cfg.Exec.SetPredictor(tier)
		fr := sampling.NewFlightRecorder()
		cfg.Flight = fr

		got, err := core.Evaluate(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Exec.DrainVerify()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("p=%d: predictor-on study diverged from baseline\ngot:  %+v\nwant: %+v", par, got, want)
		}
		counts := fr.TierCounts()
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != fr.Len() {
			t.Fatalf("p=%d: tier counts sum %d != %d launches", par, total, fr.Len())
		}
		if counts["predict"] == 0 {
			t.Fatalf("p=%d: predictor served nothing: %v", par, counts)
		}
		if counts["sim"] != 0 || counts["worker"] != 0 {
			t.Fatalf("p=%d: warm study still simulated: %v", par, counts)
		}
		if s := tier.Stats(); s.Served != int64(counts["predict"]) {
			t.Fatalf("p=%d: tier served %d but provenance says %d", par, s.Served, counts["predict"])
		}
	}
}

// TestLowConfidenceFallThrough pins the gate's fail-open contract: a
// model whose training keys never match the study's task specs, behind a
// MinConfidence > 1, serves nothing — every kernel falls through to the
// exact ladder and the study result is unchanged.
func TestLowConfidenceFallThrough(t *testing.T) {
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	dev := gpu.VoltaV100()

	want, err := core.Evaluate(core.Config{Device: dev, Parallelism: 2,
		Exec: sampling.NewExec(parallel.NewScheduler(2), nil)}, w)
	if err != nil {
		t.Fatal(err)
	}

	// Train on task specs no study issues (odd cycle cap), so the study's
	// keys can't exact-match and the >1 gate blocks every regression serve.
	samples := testSamples(t, dev)
	model, err := Train(dev, samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTier(model, TierOptions{MinConfidence: 1.5, VerifyFraction: -1})

	exec := sampling.NewExec(parallel.NewScheduler(2), nil)
	exec.SetPredictor(tier)
	fr := sampling.NewFlightRecorder()
	got, err := core.Evaluate(core.Config{Device: dev, Parallelism: 2, Exec: exec, Flight: fr}, w)
	if err != nil {
		t.Fatal(err)
	}
	exec.DrainVerify()

	if !reflect.DeepEqual(got, want) {
		t.Fatal("fall-through study diverged from baseline")
	}
	counts := fr.TierCounts()
	if counts["predict"] != 0 {
		t.Fatalf("gated predictor served %d tasks", counts["predict"])
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != fr.Len() {
		t.Fatalf("tier counts sum %d != %d launches", total, fr.Len())
	}
	s := tier.Stats()
	if s.Requests == 0 || s.Served != 0 {
		t.Fatalf("tier stats %+v: want requests > 0, served == 0", s)
	}
}

// TestVerifierResimulatesAndWarmsCache drives the async verifier: a
// regression-served prediction (non-exact, permissive gate, verify-all)
// must trigger a background re-simulation whose exact outcome lands in
// the caches, while the launch itself stays attributed to the predict
// tier exactly once.
func TestVerifierResimulatesAndWarmsCache(t *testing.T) {
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	dev := gpu.VoltaV100()
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Warm the store with real outcomes under one task spec, train on it.
	exec := sampling.NewExec(nil, store)
	trainTask := sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: 1 << 22}
	for i := 0; i < w.N; i++ {
		k := w.Kernel(i)
		if _, err := exec.RunKernelTask(dev, &k, trainTask); err != nil {
			t.Fatal(err)
		}
	}
	var samples []Sample
	for i := 0; i < w.N; i++ {
		k := w.Kernel(i)
		key := sampling.TaskKey(dev, &k, trainTask)
		raw, ok := store.Get(key)
		if !ok {
			t.Fatalf("store missing %s", key)
		}
		oc, err := sampling.DecodeOutcome(raw)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{Key: key, Kernel: k, Task: trainTask, Outcome: oc})
	}
	model, err := Train(dev, samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Query a spec the model never saw: regression serve + verify-all.
	tier := NewTier(model, TierOptions{MinConfidence: 1e-12, VerifyFraction: 1, MinVerified: 1 << 30})
	exec2 := sampling.NewExec(nil, store)
	exec2.SetPredictor(tier)
	fr := sampling.NewFlightRecorder()
	queryTask := sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: 1 << 21}
	k := w.Kernel(0)
	queryKey := sampling.TaskKey(dev, &k, queryTask)
	if _, ok := store.Get(queryKey); ok {
		t.Fatal("query key unexpectedly pre-cached")
	}
	if _, err := exec2.RunKernelTaskObs(dev, &k, queryTask, sampling.TaskObs{Flight: fr, Phase: "q"}); err != nil {
		t.Fatal(err)
	}
	exec2.DrainVerify()

	counts := fr.TierCounts()
	if counts["predict"] != 1 || fr.Len() != 1 {
		t.Fatalf("provenance %v (len %d): want exactly one predict entry", counts, fr.Len())
	}
	s := tier.Stats()
	if s.Verified != 1 {
		t.Fatalf("verifier ran %d times, want 1", s.Verified)
	}
	// The verifier's exact result must have warmed the artifact store.
	raw, ok := store.Get(queryKey)
	if !ok {
		t.Fatal("verifier did not warm the artifact store")
	}
	actual, err := sampling.DecodeOutcome(raw)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sampling.NewExec(nil, nil).RunKernelTask(dev, &k, queryTask)
	if err != nil {
		t.Fatal(err)
	}
	if actual != direct {
		t.Fatalf("verifier cached %+v, ladder says %+v", actual, direct)
	}
}
