package predict

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pka/internal/gpu"
	"pka/internal/sampling"
	"pka/internal/trace"
	"pka/internal/workload"
)

// testSamples builds a training set from a workload's kernels with
// synthetic-but-consistent outcomes (no simulation needed).
func testSamples(t *testing.T, dev gpu.Device) []Sample {
	t.Helper()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	task := sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: 1 << 20}
	var samples []Sample
	for i := 0; i < w.N; i++ {
		k := w.Kernel(i)
		oc := sampling.KernelOutcome{
			ProjCycles:    int64(1000 * (i + 1)),
			SimWarpInstrs: int64(500 * (i + 1)),
			ThreadInstrs:  float64(32000 * (i + 1)),
			DRAMUtil:      0.25,
			Truncated:     true,
		}
		samples = append(samples, Sample{
			Key:     sampling.TaskKey(dev, &k, task),
			Kernel:  k,
			Task:    task,
			Outcome: oc,
		})
	}
	if len(samples) < 2 {
		t.Fatalf("workload too small for training test: %d kernels", len(samples))
	}
	return samples
}

func TestTrainExactMatchServesStoredOutcome(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m, err := Train(dev, samples, TrainOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		oc, conf, exact, ok := m.Predict(dev, &s.Kernel, s.Task, s.Key)
		if !ok || !exact {
			t.Fatalf("exact key not served: ok=%v exact=%v", ok, exact)
		}
		if conf != 1 {
			t.Fatalf("exact-match confidence %v, want 1", conf)
		}
		if oc != s.Outcome {
			t.Fatalf("exact-match outcome mutated: %+v vs %+v", oc, s.Outcome)
		}
	}
}

func TestModelRejectsOtherDevice(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m, err := Train(dev, samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	other := gpu.VoltaV100()
	other.NumSMs *= 2
	if _, _, _, ok := m.Predict(other, &samples[0].Kernel, samples[0].Task, ""); ok {
		t.Fatal("model served a device it was not trained on")
	}
	// The device-check cache must not poison subsequent matching queries.
	if _, _, _, ok := m.Predict(dev, &samples[0].Kernel, samples[0].Task, samples[0].Key); !ok {
		t.Fatal("trained device rejected after mismatch was cached")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m, err := Train(dev, samples, TrainOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Rows() != m.Rows() || m2.DeviceFingerprint() != m.DeviceFingerprint() {
		t.Fatalf("round trip changed shape: %d/%s vs %d/%s",
			m2.Rows(), m2.DeviceFingerprint(), m.Rows(), m.DeviceFingerprint())
	}
	// Both exact-match and regression paths must be bit-identical across
	// the round trip.
	novel := samples[0].Kernel
	novel.Grid.X *= 3
	for _, q := range []struct {
		k   *trace.KernelDesc
		key string
	}{{&samples[1].Kernel, samples[1].Key}, {&novel, ""}} {
		oc1, c1, e1, ok1 := m.Predict(dev, q.k, samples[0].Task, q.key)
		oc2, c2, e2, ok2 := m2.Predict(dev, q.k, samples[0].Task, q.key)
		if ok1 != ok2 || e1 != e2 || c1 != c2 || oc1 != oc2 {
			t.Fatalf("loaded model diverges: (%+v %v %v %v) vs (%+v %v %v %v)",
				oc1, c1, e1, ok1, oc2, c2, e2, ok2)
		}
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"pka-predictor-model-v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load accepted wrong schema: %v", err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m1, err := Train(dev, samples, TrainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(dev, samples, TrainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	novel := samples[0].Kernel
	novel.Grid.X += 17
	oc1, c1, _, _ := m1.Predict(dev, &novel, samples[0].Task, "")
	oc2, c2, _, _ := m2.Predict(dev, &novel, samples[0].Task, "")
	if oc1 != oc2 || c1 != c2 {
		t.Fatalf("same seed diverged: %+v/%v vs %+v/%v", oc1, c1, oc2, c2)
	}
}

func TestTierConfidenceGate(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m, err := Train(dev, samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// MinConfidence above 1 means only exact-key matches can serve.
	tier := NewTier(m, TierOptions{MinConfidence: 1.5, VerifyFraction: -1})
	if _, _, ok := tier.Predict(dev, &samples[0].Kernel, samples[0].Task, samples[0].Key); !ok {
		t.Fatal("exact match blocked by gate")
	}
	novel := samples[0].Kernel
	novel.Grid.X *= 5
	if _, _, ok := tier.Predict(dev, &novel, samples[0].Task, ""); ok {
		t.Fatal("non-exact prediction served above a >1 confidence gate")
	}
	s := tier.Stats()
	if s.Requests != 2 || s.Served != 1 || s.Exact != 1 || s.LowConf != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTierAutoDisable(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m, err := Train(dev, samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTier(m, TierOptions{MinConfidence: 1e-9, VerifyFraction: 1, ErrorBound: 0.05, MinVerified: 1})
	oc, verify, ok := tier.Predict(dev, &samples[0].Kernel, samples[0].Task, samples[0].Key)
	if !ok {
		t.Fatal("prediction not served")
	}
	if verify {
		t.Fatal("exact-key serve scheduled for verification")
	}
	novel := samples[0].Kernel
	novel.Grid.X *= 2
	oc, verify, ok = tier.Predict(dev, &novel, samples[0].Task, "")
	if !ok || !verify {
		t.Fatalf("non-exact serve at VerifyFraction=1: ok=%v verify=%v", ok, verify)
	}
	// Report a verification 10x off: the tier must latch disabled.
	actual := oc
	actual.ProjCycles = oc.ProjCycles*10 + 100
	tier.Verified("k", oc, actual)
	if !tier.Disabled() {
		t.Fatal("tier did not auto-disable past the error bound")
	}
	if _, _, ok := tier.Predict(dev, &samples[0].Kernel, samples[0].Task, samples[0].Key); ok {
		t.Fatal("disabled tier still serving")
	}
	s := tier.Stats()
	if !s.Disabled || s.Verified != 1 || s.MeanRelErr < 0.05 {
		t.Fatalf("stats %+v", s)
	}
	var sb strings.Builder
	if err := tier.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "AUTO-DISABLED") {
		t.Fatalf("report missing auto-disable notice:\n%s", sb.String())
	}
}

func TestVerifySamplerDeterministicFraction(t *testing.T) {
	dev := gpu.VoltaV100()
	samples := testSamples(t, dev)
	m, err := Train(dev, samples, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTier(m, TierOptions{VerifyFraction: 0.5, VerifySeed: 9})
	n, hits := 4096, 0
	for i := 0; i < n; i++ {
		key := sampling.TaskKey(dev, &samples[0].Kernel, sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: int64(i + 1)})
		if tier.wantVerify(key) {
			hits++
		}
		if tier.wantVerify(key) != tier.wantVerify(key) {
			t.Fatal("verify draw not deterministic per key")
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("verify sampler fraction %v, want ~0.5", frac)
	}
}
