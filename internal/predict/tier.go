package predict

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/sampling"
	"pka/internal/trace"
)

// Tier defaults applied by NewTier for zero-valued options.
const (
	DefaultMinConfidence = 0.9
	DefaultVerifyFrac    = 0.05
	DefaultErrorBound    = 0.05
	DefaultMinVerified   = 8
)

// TierOptions configures the serving tier around a trained model.
type TierOptions struct {
	// MinConfidence gates serving: predictions below it fall through to
	// the real ladder. Values > 1 serve only exact training-key matches.
	MinConfidence float64
	// VerifyFraction of served predictions are re-simulated down the real
	// ladder by the async verifier. 0 disables verification entirely
	// (negative values also mean 0); >= 1 verifies everything.
	VerifyFraction float64
	// VerifySeed decorrelates the key-hash verify sampler across runs.
	VerifySeed uint64
	// ErrorBound is the mean relative projected-cycle error over verified
	// predictions above which the tier auto-disables.
	ErrorBound float64
	// MinVerified is how many verifications must accumulate before the
	// error bound is enforced, so one early outlier can't kill the tier.
	MinVerified int
	// Metrics receives pka_predictor_* observations; nil disables them.
	Metrics *obs.PredictorMetrics
}

// Tier serves model predictions as Exec ladder tier 0, implementing
// sampling.Predictor. Safe for concurrent use.
type Tier struct {
	model *Model
	opt   TierOptions
	m     *obs.PredictorMetrics

	disabled atomic.Bool
	requests atomic.Int64
	served   atomic.Int64
	exact    atomic.Int64
	lowConf  atomic.Int64
	miss     atomic.Int64

	mu        sync.Mutex
	nVerified int
	sumRelErr float64
	maxRelErr float64
}

// NewTier wraps a trained model with serving policy. Zero options take
// the package defaults (a negative VerifyFraction means no verification).
func NewTier(model *Model, o TierOptions) *Tier {
	if o.MinConfidence == 0 {
		o.MinConfidence = DefaultMinConfidence
	}
	if o.VerifyFraction == 0 {
		o.VerifyFraction = DefaultVerifyFrac
	}
	if o.VerifyFraction < 0 {
		o.VerifyFraction = 0
	}
	if o.ErrorBound <= 0 {
		o.ErrorBound = DefaultErrorBound
	}
	if o.MinVerified <= 0 {
		o.MinVerified = DefaultMinVerified
	}
	return &Tier{model: model, opt: o, m: o.Metrics}
}

// Predict implements sampling.Predictor: score the task, serve it if the
// model is confident enough, and decide whether this serve is in the
// verification sample. Every path is deterministic in (model, options,
// task) — the only stateful input is the disabled latch, which only ever
// trips when the model is measurably wrong.
func (t *Tier) Predict(dev gpu.Device, k *trace.KernelDesc, task sampling.KernelTask, key string) (sampling.KernelOutcome, bool, bool) {
	t.requests.Add(1)
	if t.m != nil {
		t.m.Requests.Inc()
	}
	if t.disabled.Load() {
		return sampling.KernelOutcome{}, false, false
	}
	oc, conf, exact, ok := t.model.Predict(dev, k, task, key)
	if !ok {
		t.miss.Add(1)
		if t.m != nil {
			t.m.ModelMiss.Inc()
		}
		return sampling.KernelOutcome{}, false, false
	}
	if t.m != nil {
		t.m.Confidence.Observe(conf)
	}
	// Exact training-key matches replay a stored ladder outcome verbatim;
	// they bypass the gate, which is why MinConfidence > 1 means
	// "exact-only" rather than "off".
	if !exact && conf < t.opt.MinConfidence {
		t.lowConf.Add(1)
		if t.m != nil {
			t.m.LowConf.Inc()
		}
		return sampling.KernelOutcome{}, false, false
	}
	t.served.Add(1)
	if exact {
		t.exact.Add(1)
	}
	if t.m != nil {
		t.m.Served.Inc()
	}
	// Exact-match serves replay a stored ladder outcome verbatim; spending
	// verification simulations on them would measure nothing but noise.
	verify := !exact && t.wantVerify(key)
	return oc, verify, true
}

// wantVerify hashes (seed, key) to a uniform [0,1) draw — a deterministic
// per-key coin so the verified subset is reproducible for a given seed
// and independent of execution order.
func (t *Tier) wantVerify(key string) bool {
	frac := t.opt.VerifyFraction
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(t.opt.VerifySeed >> (8 * i))
	}
	h.Write(seed[:])
	io.WriteString(h, key)
	u := float64(h.Sum64()>>11) / (1 << 53)
	return u < frac
}

// Verified implements sampling.Predictor: fold one verifier result into
// the online error estimate and trip the auto-disable latch if the mean
// relative error exceeds the bound with enough evidence behind it.
func (t *Tier) Verified(key string, predicted, actual sampling.KernelOutcome) {
	relErr := math.Abs(float64(predicted.ProjCycles)-float64(actual.ProjCycles)) /
		math.Max(1, math.Abs(float64(actual.ProjCycles)))
	if t.m != nil {
		t.m.Verified.Inc()
		t.m.VerifyRelErr.Observe(relErr)
	}
	t.mu.Lock()
	t.nVerified++
	t.sumRelErr += relErr
	if relErr > t.maxRelErr {
		t.maxRelErr = relErr
	}
	trip := t.nVerified >= t.opt.MinVerified && t.sumRelErr/float64(t.nVerified) > t.opt.ErrorBound
	t.mu.Unlock()
	if trip && !t.disabled.Swap(true) {
		if t.m != nil {
			t.m.AutoDisabled.Inc()
		}
	}
}

// TierStats is a point-in-time accuracy/coverage snapshot.
type TierStats struct {
	Requests int64 `json:"requests"`
	Served   int64 `json:"served"`
	Exact    int64 `json:"exact"`
	LowConf  int64 `json:"low_confidence"`
	Miss     int64 `json:"model_miss"`

	Verified   int     `json:"verified"`
	MeanRelErr float64 `json:"mean_rel_error"`
	MaxRelErr  float64 `json:"max_rel_error"`
	Disabled   bool    `json:"auto_disabled"`
}

// Stats snapshots the tier's counters and error estimate.
func (t *Tier) Stats() TierStats {
	s := TierStats{
		Requests: t.requests.Load(),
		Served:   t.served.Load(),
		Exact:    t.exact.Load(),
		LowConf:  t.lowConf.Load(),
		Miss:     t.miss.Load(),
		Disabled: t.disabled.Load(),
	}
	t.mu.Lock()
	s.Verified = t.nVerified
	if t.nVerified > 0 {
		s.MeanRelErr = t.sumRelErr / float64(t.nVerified)
	}
	s.MaxRelErr = t.maxRelErr
	t.mu.Unlock()
	return s
}

// Disabled reports whether the auto-disable latch has tripped.
func (t *Tier) Disabled() bool { return t.disabled.Load() }

// WriteReport renders the human-readable accuracy/coverage report.
func (t *Tier) WriteReport(w io.Writer) error {
	s := t.Stats()
	coverage := 0.0
	if s.Requests > 0 {
		coverage = float64(s.Served) / float64(s.Requests)
	}
	if _, err := fmt.Fprintf(w, "predictor: %d requests, %d served (%.1f%% coverage, %d exact-key)\n",
		s.Requests, s.Served, 100*coverage, s.Exact); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  fell through: %d low-confidence, %d model-miss\n",
		s.LowConf, s.Miss); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  verified: %d re-simulated, mean rel err %.4f, max %.4f (bound %.4f after %d)\n",
		s.Verified, s.MeanRelErr, s.MaxRelErr, t.opt.ErrorBound, t.opt.MinVerified); err != nil {
		return err
	}
	if s.Disabled {
		if _, err := fmt.Fprintf(w, "  AUTO-DISABLED: observed error exceeded bound; tier fell back to exact ladder\n"); err != nil {
			return err
		}
	}
	return nil
}
