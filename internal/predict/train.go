package predict

import (
	"pka/internal/artifact"
	"pka/internal/gpu"
	"pka/internal/pkp"
	"pka/internal/sampling"
	"pka/internal/sim"
	"pka/internal/workload"
)

// ScanOptions parameterizes ScanStore. The cap/PKP fields must match the
// study configuration whose warm cache is being mined — they determine
// which task specs (and so which content keys) the scan probes.
type ScanOptions struct {
	// KernelCapCycles is the sampled-mode cycle cap (0 applies
	// sim.DefaultMaxCycles), exactly as the study layer resolves it.
	KernelCapCycles int64
	// PKP parameterizes the ModePKA spec.
	PKP pkp.Options
	// FullSimBudget bounds which workloads get ModeFull probes (0 applies
	// sampling.DefaultFullSimBudget).
	FullSimBudget int64
}

// ScanSummary reports what a store scan covered.
type ScanSummary struct {
	Workloads int
	Kernels   int
	Probed    int // distinct content keys probed
	Hits      int // keys the store held a decodable outcome for
}

// ScanStore mines the content-addressed artifact store for training
// samples: for every kernel of every workload it probes the store under
// each task spec a study would issue (full simulation where feasible,
// PKS, and PKA), and each hit becomes one (features → outcome) example.
// Only outcomes the exact ladder produced ever enter the store, so the
// training set is simulation ground truth by construction.
func ScanStore(dev gpu.Device, store *artifact.Store, ws []*workload.Workload, o ScanOptions) ([]Sample, ScanSummary) {
	capCycles := o.KernelCapCycles
	if capCycles <= 0 {
		capCycles = sim.DefaultMaxCycles
	}
	budget := o.FullSimBudget
	if budget <= 0 {
		budget = sampling.DefaultFullSimBudget
	}

	var samples []Sample
	var sum ScanSummary
	seen := map[string]bool{}
	for _, w := range ws {
		sum.Workloads++
		tasks := []sampling.KernelTask{
			{Mode: sampling.ModePKS, MaxCycles: capCycles},
			{Mode: sampling.ModePKA, MaxCycles: capCycles, PKP: sampling.NewPKPSpec(o.PKP)},
		}
		if w.ApproxWarpInstructions(budget) <= budget {
			tasks = append(tasks, sampling.KernelTask{Mode: sampling.ModeFull})
		}
		for i := 0; i < w.N; i++ {
			k := w.Kernel(i)
			sum.Kernels++
			for _, task := range tasks {
				key := sampling.TaskKey(dev, &k, task)
				if seen[key] {
					continue
				}
				seen[key] = true
				sum.Probed++
				raw, ok := store.Get(key)
				if !ok {
					continue
				}
				oc, err := sampling.DecodeOutcome(raw)
				if err != nil {
					continue
				}
				sum.Hits++
				samples = append(samples, Sample{Key: key, Kernel: k, Task: task, Outcome: oc})
			}
		}
	}
	return samples, sum
}
