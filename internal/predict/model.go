// Package predict implements the Exec ladder's opt-in tier 0: a learned
// regressor that maps (device configuration, kernel Table-2 features,
// task spec) straight to a KernelOutcome, skipping simulation entirely
// for kernels a trained model already knows. The package follows the
// NeuroScalar observation that small learned models can stand in for
// cycle-level simulation when their confidence is measured honestly: a
// model artifact is trained offline from the content-addressed artifact
// store's accumulated (features → outcome) pairs, and at serve time a
// confidence gate — ensemble disagreement plus distance to the training
// manifold — decides per kernel whether to answer or fall through to the
// real ladder. An asynchronous verifier re-simulates a sampled fraction
// of served predictions and auto-disables the tier when observed error
// exceeds its bound, so a stale or over-extrapolating model degrades to
// exact simulation instead of silently wrong studies.
package predict

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"pka/internal/classify"
	"pka/internal/gpu"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/stats"
	"pka/internal/trace"
)

// ModelSchema versions the persisted model artifact; Load rejects files
// written under any other schema.
const ModelSchema = "pka-predictor-model-v1"

// ensembleSize is the number of bootstrap-resampled ridge regressors per
// target. Their disagreement on a query is the model's own uncertainty
// signal: members agree where training data was dense and consistent,
// and fan out where the query extrapolates.
const ensembleSize = 4

// Regression targets, in index order: log-cycles, log simulated warp
// instructions, log thread instructions, and raw DRAM utilization.
const (
	tgtCycles = iota
	tgtSimWarpInstrs
	tgtThreadInstrs
	tgtDRAMUtil
	numTargets
)

// DefaultLambda is the ridge regularizer applied when TrainOptions leaves
// Lambda zero.
const DefaultLambda = 1e-3

// taskFeatures is how many task-spec features extend the Table-2 vector.
const taskFeatures = 5

// featureDim is the model's full input dimensionality.
const featureDim = trace.NumFeatures + taskFeatures

// Sample is one training example: a kernel task whose exact outcome is
// known (usually because the artifact store holds it).
type Sample struct {
	Key     string
	Kernel  trace.KernelDesc
	Task    sampling.KernelTask
	Outcome sampling.KernelOutcome
}

// featureRow builds the model input for one task: the kernel's Table-2
// vector compressed exactly like the PKS cluster space (log1p counts via
// pks.ScaleFeatures), extended with the task spec — mode, log cycle cap,
// and the PKP parameters — so the same kernel under different policies
// occupies different points.
func featureRow(dev gpu.Device, k *trace.KernelDesc, task sampling.KernelTask) []float64 {
	row := make([]float64, featureDim)
	pks.ScaleFeatures(row[:trace.NumFeatures], k.FeatureVector(dev))
	row[trace.NumFeatures] = float64(task.Mode)
	row[trace.NumFeatures+1] = math.Log1p(float64(task.MaxCycles))
	row[trace.NumFeatures+2] = task.PKP.Threshold
	row[trace.NumFeatures+3] = float64(task.PKP.Window)
	if task.PKP.DisableWaveConstraint {
		row[trace.NumFeatures+4] = 1
	}
	return row
}

// Model is a trained outcome predictor for one device configuration. It
// is immutable after Train/Load and safe for concurrent use.
type Model struct {
	deviceName string
	deviceFP   string
	seed       uint64
	lambda     float64

	scaler   *classify.Scaler
	rows     [][]float64 // standardized training inputs
	outcomes []sampling.KernelOutcome
	keys     []string
	byKey    map[string]int
	// weights[t][b] is member b's ridge solution for target t, length
	// featureDim+1 with the bias last.
	weights [numTargets][ensembleSize][]float64

	// devCheck caches the last device-fingerprint comparison; studies are
	// single-device, so Predict pays one hash per run, not per kernel.
	devCheck atomic.Pointer[deviceCheck]
}

type deviceCheck struct {
	dev gpu.Device
	ok  bool
}

// TrainOptions parameterizes Train. Zero values apply defaults.
type TrainOptions struct {
	Seed   uint64
	Lambda float64
}

// Train fits a model for dev on the given samples. Samples are deduped by
// content key (the store can only hold one outcome per key anyway), and
// the ensemble's bootstrap resampling is fully determined by Seed — the
// same samples and seed always produce the identical model.
func Train(dev gpu.Device, samples []Sample, o TrainOptions) (*Model, error) {
	if o.Lambda <= 0 {
		o.Lambda = DefaultLambda
	}
	m := &Model{
		deviceName: dev.Name,
		deviceFP:   sampling.DeviceFingerprint(dev),
		seed:       o.Seed,
		lambda:     o.Lambda,
		byKey:      map[string]int{},
	}
	for _, s := range samples {
		key := s.Key
		if key == "" {
			key = sampling.TaskKey(dev, &s.Kernel, s.Task)
		}
		if _, dup := m.byKey[key]; dup {
			continue
		}
		m.byKey[key] = len(m.rows)
		m.keys = append(m.keys, key)
		m.rows = append(m.rows, featureRow(dev, &s.Kernel, s.Task))
		m.outcomes = append(m.outcomes, s.Outcome)
	}
	if len(m.rows) == 0 {
		return nil, errors.New("predict: no training samples")
	}

	m.scaler = classify.FitScaler(m.rows)
	for _, row := range m.rows {
		m.scaler.ApplyInto(row, row)
	}

	targets := targetMatrix(m.outcomes)
	n := len(m.rows)
	for t := 0; t < numTargets; t++ {
		for b := 0; b < ensembleSize; b++ {
			rng := stats.NewRNG(o.Seed ^ (uint64(t)<<32 | uint64(b)<<16) ^ 0xC0FFEE)
			idx := make([]int, n)
			if b == 0 {
				// Member 0 always sees the full training set, so a
				// single-sample model still interpolates its own data.
				for i := range idx {
					idx[i] = i
				}
			} else {
				for i := range idx {
					idx[i] = rng.Intn(n)
				}
			}
			w, err := ridgeFit(m.rows, targets[t], idx, o.Lambda)
			if err != nil {
				return nil, fmt.Errorf("predict: target %d member %d: %w", t, b, err)
			}
			m.weights[t][b] = w
		}
	}
	return m, nil
}

// targetMatrix extracts the regression targets from the outcomes: log1p
// for the count-type targets, raw utilization for DRAM.
func targetMatrix(ocs []sampling.KernelOutcome) [numTargets][]float64 {
	var y [numTargets][]float64
	for t := range y {
		y[t] = make([]float64, len(ocs))
	}
	for i, oc := range ocs {
		y[tgtCycles][i] = math.Log1p(float64(oc.ProjCycles))
		y[tgtSimWarpInstrs][i] = math.Log1p(float64(oc.SimWarpInstrs))
		y[tgtThreadInstrs][i] = math.Log1p(oc.ThreadInstrs)
		y[tgtDRAMUtil][i] = oc.DRAMUtil
	}
	return y
}

// ridgeFit solves the regularized least squares (XᵀX + λI)w = Xᵀy over
// the selected row indices, with an appended bias column, by Gaussian
// elimination with partial pivoting. The normal-equations system is
// (featureDim+1)² — tiny — so exact elimination beats any iterative
// scheme and is bit-deterministic.
func ridgeFit(rows [][]float64, y []float64, idx []int, lambda float64) ([]float64, error) {
	d := featureDim + 1
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d+1) // augmented column holds Xᵀy
		A[i][i] = lambda
	}
	xi := make([]float64, d)
	for _, r := range idx {
		copy(xi, rows[r])
		xi[d-1] = 1
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				A[i][j] += xi[i] * xi[j]
			}
			A[i][d] += xi[i] * y[r]
		}
	}
	for i := 1; i < d; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}
	// Elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if A[piv][col] == 0 {
			return nil, errors.New("singular normal equations")
		}
		A[col], A[piv] = A[piv], A[col]
		for r := col + 1; r < d; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= d; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	w := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		s := A[i][d]
		for j := i + 1; j < d; j++ {
			s -= A[i][j] * w[j]
		}
		w[i] = s / A[i][i]
	}
	return w, nil
}

// dot evaluates one ridge member on a standardized row.
func dot(w, row []float64) float64 {
	s := w[len(w)-1] // bias
	for j, v := range row {
		s += w[j] * v
	}
	return s
}

// Rows reports the training-set size.
func (m *Model) Rows() int { return len(m.rows) }

// DeviceName names the device the model was trained for.
func (m *Model) DeviceName() string { return m.deviceName }

// DeviceFingerprint returns the trained device's content fingerprint.
func (m *Model) DeviceFingerprint() string { return m.deviceFP }

// matches reports whether dev is the device the model was trained on,
// caching the fingerprint comparison for the (single-device) common case.
func (m *Model) matches(dev gpu.Device) bool {
	if c := m.devCheck.Load(); c != nil && c.dev == dev {
		return c.ok
	}
	ok := sampling.DeviceFingerprint(dev) == m.deviceFP
	m.devCheck.Store(&deviceCheck{dev: dev, ok: ok})
	return ok
}

// Predict scores one task. exact reports the query hit a training key, in
// which case the stored outcome is returned verbatim with confidence 1 —
// the warm-path case where the predictor is a microsecond replacement for
// the disk tier. ok=false means the model cannot score this task at all
// (wrong device). conf is in (0, 1]: the minimum of an ensemble-agreement
// score and a training-manifold proximity score, so either extrapolation
// signal alone is enough to drop below a gate.
func (m *Model) Predict(dev gpu.Device, k *trace.KernelDesc, task sampling.KernelTask, key string) (oc sampling.KernelOutcome, conf float64, exact, ok bool) {
	if !m.matches(dev) {
		return sampling.KernelOutcome{}, 0, false, false
	}
	if key == "" {
		key = sampling.TaskKey(dev, k, task)
	}
	if i, hit := m.byKey[key]; hit {
		return m.outcomes[i], 1, true, true
	}

	row := featureRow(dev, k, task)
	m.scaler.ApplyInto(row, row)

	// Nearest training row: manifold distance for the gate, flag source
	// for the outcome. Linear scan — training sets are thousands of rows
	// and queries off the exact-match path are rare by construction.
	nearest, minSq := 0, math.Inf(1)
	for i, tr := range m.rows {
		var sq float64
		for j, v := range tr {
			d := row[j] - v
			sq += d * d
		}
		if sq < minSq {
			nearest, minSq = i, sq
		}
	}
	dist := math.Sqrt(minSq / featureDim) // RMS per-dimension distance

	var preds [numTargets]float64
	var spread float64
	for t := 0; t < numTargets; t++ {
		lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
		for b := 0; b < ensembleSize; b++ {
			p := dot(m.weights[t][b], row)
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		preds[t] = sum / ensembleSize
		if s := hi - lo; s > spread {
			spread = s
		}
	}
	agree := 1 / (1 + spread)
	near := 1 / (1 + dist)
	conf = agree
	if near < conf {
		conf = near
	}

	src := m.outcomes[nearest]
	oc = sampling.KernelOutcome{
		ProjCycles:    clampCount(math.Expm1(preds[tgtCycles])),
		SimWarpInstrs: clampCount(math.Expm1(preds[tgtSimWarpInstrs])),
		ThreadInstrs:  math.Max(0, math.Expm1(preds[tgtThreadInstrs])),
		DRAMUtil:      clamp01(preds[tgtDRAMUtil]),
		Capped:        src.Capped,
		Truncated:     src.Truncated,
	}
	return oc, conf, false, true
}

// FitError returns the regression's mean relative projected-cycle error
// over the training set, bypassing the exact-match shortcut — the
// in-sample accuracy the train CLI reports.
func (m *Model) FitError() float64 {
	if len(m.rows) == 0 {
		return 0
	}
	var sum float64
	for i, row := range m.rows {
		var p float64
		for b := 0; b < ensembleSize; b++ {
			p += dot(m.weights[tgtCycles][b], row)
		}
		pred := math.Expm1(p / ensembleSize)
		actual := float64(m.outcomes[i].ProjCycles)
		sum += math.Abs(pred-actual) / math.Max(1, math.Abs(actual))
	}
	return sum / float64(len(m.rows))
}

func clampCount(v float64) int64 {
	if v < 0 {
		return 0
	}
	return int64(math.Round(v))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// --- Persistence ---------------------------------------------------------

// modelFile is the versioned JSON layout of a persisted model artifact.
type modelFile struct {
	Schema     string                              `json:"schema"`
	DeviceName string                              `json:"device_name"`
	DeviceFP   string                              `json:"device_fingerprint"`
	Seed       uint64                              `json:"seed"`
	Lambda     float64                             `json:"lambda"`
	Scaler     *classify.Scaler                    `json:"scaler"`
	Keys       []string                            `json:"keys"`
	Rows       [][]float64                         `json:"rows"`
	Outcomes   []outcomeJSON                       `json:"outcomes"`
	Weights    [numTargets][ensembleSize][]float64 `json:"weights"`
}

// outcomeJSON persists a KernelOutcome exactly: counts as integers,
// floats as IEEE-754 bit patterns so save/load round-trips bit-for-bit
// and exact-match serving stays byte-identical across processes.
type outcomeJSON struct {
	ProjCycles    int64  `json:"proj_cycles"`
	SimWarpInstrs int64  `json:"sim_warp_instrs"`
	ThreadInstrs  uint64 `json:"thread_instrs_bits"`
	DRAMUtil      uint64 `json:"dram_util_bits"`
	Capped        bool   `json:"capped,omitempty"`
	Truncated     bool   `json:"truncated,omitempty"`
}

// Save writes the model artifact as versioned JSON.
func (m *Model) Save(path string) error {
	f := modelFile{
		Schema:     ModelSchema,
		DeviceName: m.deviceName,
		DeviceFP:   m.deviceFP,
		Seed:       m.seed,
		Lambda:     m.lambda,
		Scaler:     m.scaler,
		Keys:       m.keys,
		Rows:       m.rows,
		Weights:    m.weights,
	}
	f.Outcomes = make([]outcomeJSON, len(m.outcomes))
	for i, oc := range m.outcomes {
		f.Outcomes[i] = outcomeJSON{
			ProjCycles:    oc.ProjCycles,
			SimWarpInstrs: oc.SimWarpInstrs,
			ThreadInstrs:  math.Float64bits(oc.ThreadInstrs),
			DRAMUtil:      math.Float64bits(oc.DRAMUtil),
			Capped:        oc.Capped,
			Truncated:     oc.Truncated,
		}
	}
	raw, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("predict: encode model: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Load reads a model artifact written by Save, rejecting other schemas.
func Load(path string) (*Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	var f modelFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("predict: parse model %s: %w", path, err)
	}
	if f.Schema != ModelSchema {
		return nil, fmt.Errorf("predict: model %s has schema %q, want %q", path, f.Schema, ModelSchema)
	}
	if len(f.Keys) != len(f.Rows) || len(f.Keys) != len(f.Outcomes) || len(f.Keys) == 0 {
		return nil, fmt.Errorf("predict: model %s is inconsistent (%d keys, %d rows, %d outcomes)",
			path, len(f.Keys), len(f.Rows), len(f.Outcomes))
	}
	if f.Scaler == nil || len(f.Scaler.Mean) != featureDim || len(f.Scaler.Scale) != featureDim {
		return nil, fmt.Errorf("predict: model %s scaler has wrong dimensionality", path)
	}
	m := &Model{
		deviceName: f.DeviceName,
		deviceFP:   f.DeviceFP,
		seed:       f.Seed,
		lambda:     f.Lambda,
		scaler:     f.Scaler,
		keys:       f.Keys,
		rows:       f.Rows,
		weights:    f.Weights,
		byKey:      make(map[string]int, len(f.Keys)),
	}
	for i, row := range f.Rows {
		if len(row) != featureDim {
			return nil, fmt.Errorf("predict: model %s row %d has %d features, want %d", path, i, len(row), featureDim)
		}
	}
	for t := range m.weights {
		for b := range m.weights[t] {
			if len(m.weights[t][b]) != featureDim+1 {
				return nil, fmt.Errorf("predict: model %s weight vector %d/%d malformed", path, t, b)
			}
		}
	}
	m.outcomes = make([]sampling.KernelOutcome, len(f.Outcomes))
	for i, oc := range f.Outcomes {
		m.outcomes[i] = sampling.KernelOutcome{
			ProjCycles:    oc.ProjCycles,
			SimWarpInstrs: oc.SimWarpInstrs,
			ThreadInstrs:  math.Float64frombits(oc.ThreadInstrs),
			DRAMUtil:      math.Float64frombits(oc.DRAMUtil),
			Capped:        oc.Capped,
			Truncated:     oc.Truncated,
		}
	}
	for i, k := range f.Keys {
		m.byKey[k] = i
	}
	return m, nil
}
