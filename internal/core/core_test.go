package core

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/pks"
	"pka/internal/workload"
)

func cfg() Config { return Config{Device: gpu.VoltaV100()} }

func TestEvaluateGaussian(t *testing.T) {
	w := workload.Find("Rodinia/gauss_208")
	ev, err := Evaluate(cfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Full == nil {
		t.Fatal("gauss_208 should complete in full simulation")
	}
	if ev.PKS.SimWarpInstrs >= ev.Full.SimWarpInstrs {
		t.Error("PKS did not reduce simulated work")
	}
	if ev.PKS.SpeedupVsFull < 50 {
		t.Errorf("PKS speedup %.1fx, want large for 414 similar kernels", ev.PKS.SpeedupVsFull)
	}
	if ev.PKA.SimWarpInstrs > ev.PKS.SimWarpInstrs {
		t.Error("PKA simulated more than PKS")
	}
	// PKS's sampled-sim error should stay in the neighbourhood of the
	// simulator's own error vs silicon (Table 4's pattern).
	if diff := ev.PKS.ErrorPct - ev.FullErrorPct; diff > 40 {
		t.Errorf("PKS error %.1f%% far above sim error %.1f%%", ev.PKS.ErrorPct, ev.FullErrorPct)
	}
}

func TestEvaluateSingleKernelApp(t *testing.T) {
	w := workload.Find("Rodinia/hots_512")
	ev, err := Evaluate(cfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Full == nil {
		t.Fatal("hotspot should complete in full simulation")
	}
	// One kernel, one group: PKS == full simulation.
	if ev.PKS.SpeedupVsFull < 0.99 || ev.PKS.SpeedupVsFull > 1.01 {
		t.Errorf("single-kernel PKS speedup = %.3f, want 1.0", ev.PKS.SpeedupVsFull)
	}
	if ev.PKS.ErrorPct > ev.FullErrorPct+1 {
		t.Errorf("PKS error %.2f%% vs sim error %.2f%%", ev.PKS.ErrorPct, ev.FullErrorPct)
	}
}

func TestEvaluateInfeasibleWorkloadStillProjects(t *testing.T) {
	w := workload.Find("MLPerf/3dunet_inf")
	c := cfg()
	// Keep the PKS profiling light for test speed.
	c.PKS = pks.Options{ClusterSampleMax: 2000}
	ev, err := Evaluate(c, w)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Full != nil {
		t.Skip("3dunet unexpectedly feasible; adjust budget expectations")
	}
	if ev.FullSimHours <= 0 {
		t.Error("infeasible workload should still get projected full-sim hours")
	}
	if ev.PKA.ProjCycles <= 0 || ev.PKA.SimWarpInstrs <= 0 {
		t.Error("PKA produced no projection")
	}
	if ev.PKA.SpeedupVsFull <= 1 {
		t.Errorf("PKA speedup %.2f on a huge workload", ev.PKA.SpeedupVsFull)
	}
	if ev.PKA.SimHours >= ev.FullSimHours {
		t.Error("PKA projected time should undercut full simulation")
	}
}

func TestSimHoursConversion(t *testing.T) {
	c := Config{}
	if got := c.SimHours(3000 * 3600); got != 1 {
		t.Errorf("SimHours = %v, want 1", got)
	}
	c.SimRate = 6000
	if got := c.SimHours(6000 * 3600 * 2); got != 2 {
		t.Errorf("SimHours = %v, want 2", got)
	}
}

func TestRunSampledWeightsGroups(t *testing.T) {
	w := workload.Find("Parboil/spmv") // 50 identical launches, 1 group
	c := cfg()
	sel, err := pks.Select(c.Device, w, c.PKS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSampled(c, w, sel, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProjCycles <= 0 {
		t.Fatal("no projection")
	}
	// One rep simulated, weighted ~50x: projected cycles should be on
	// the order of 50x the simulated kernel cycles.
	if sel.K == 1 {
		perKernel := (got.ProjCycles - int64(w.N)*2500) / int64(w.N)
		if perKernel <= 0 {
			t.Errorf("per-kernel projection %d", perKernel)
		}
	}
	if got.DRAMUtil < 0 || got.DRAMUtil > 1 {
		t.Errorf("DRAM util %v", got.DRAMUtil)
	}
}

func TestEvaluateNilWorkload(t *testing.T) {
	if _, err := Evaluate(cfg(), nil); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestPKAFasterOnLongKernels(t *testing.T) {
	// syrk is one long kernel: PKS gains nothing, PKP is the only lever
	// (the paper's syr2k/syrk rows).
	w := workload.Find("Polybench/syrk")
	c := cfg()
	sel, err := pks.Select(c.Device, w, c.PKS)
	if err != nil {
		t.Fatal(err)
	}
	noPKP, err := RunSampled(c, w, sel, false)
	if err != nil {
		t.Fatal(err)
	}
	withPKP, err := RunSampled(c, w, sel, true)
	if err != nil {
		t.Fatal(err)
	}
	if withPKP.SimWarpInstrs >= noPKP.SimWarpInstrs {
		t.Errorf("PKP did not cut the long kernel: %d vs %d warp instrs",
			withPKP.SimWarpInstrs, noPKP.SimWarpInstrs)
	}
}
