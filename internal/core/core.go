// Package core assembles the full Principal Kernel Analysis pipeline the
// paper evaluates: silicon ground truth → Principal Kernel Selection →
// sampled cycle-level simulation of the representative kernels (optionally
// cut short by Principal Kernel Projection) → application-level projections
// of cycles, IPC, and DRAM utilization, with error and speedup accounting
// against both silicon and full simulation.
package core

import (
	"errors"
	"fmt"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/silicon"
	"pka/internal/sim"
	"pka/internal/stats"
	"pka/internal/trace"
	"pka/internal/workload"
)

// DefaultSimRate is the modeled Accel-Sim simulation speed in warp
// instructions per second, used to convert simulated work into the
// "SimTime [H]" projections of Table 4 and the time axes of Figures 1 and
// 6. Accel-Sim executes a few thousand instructions per second per the
// paper's Figure 1 projections; the tables in EXPERIMENTS.md use this
// constant throughout.
const DefaultSimRate = 3000.0

// Config parameterizes an evaluation.
type Config struct {
	Device gpu.Device
	PKS    pks.Options
	PKP    pkp.Options
	// SimRate converts simulated warp instructions to projected
	// simulation wall time. Zero applies DefaultSimRate.
	SimRate float64
	// FullSimBudget bounds the warp instructions actually simulated for
	// full-simulation baselines. Zero applies the sampling default.
	FullSimBudget int64
	// KernelCapCycles is a per-kernel runaway guard for sampled runs;
	// capped kernels are linearly extrapolated and flagged. Zero applies
	// sim.DefaultMaxCycles.
	KernelCapCycles int64
	// Parallelism bounds how many independent pipeline stages or
	// per-workload artifacts run concurrently (Evaluate's stages here,
	// the experiment generators' per-workload fan-out in
	// internal/experiments). Zero means GOMAXPROCS; 1 forces serial
	// execution. Results are identical at every setting: each unit of
	// work is self-contained and deterministic, parallelism only changes
	// wall-clock time.
	Parallelism int
	// Obs, when non-nil, receives pipeline telemetry: a span per
	// pipeline phase, a span and counter batch per simulated kernel, and
	// PKS/PKP decision-audit records. Telemetry is observe-only — results
	// are byte-identical with or without it.
	Obs *obs.Observer
	// Exec, when non-nil, runs every per-kernel simulation as a task on
	// its kernel-granular scheduler and resolves outcomes through its
	// tier ladder: the in-memory singleflight cache, then the persistent
	// content-addressed artifact store, then (when configured) a remote
	// worker pool, then a fresh local simulation. Results are
	// byte-identical with or without it — and at any tier mix — because
	// task outcomes are pure and merged back in kernel-launch order.
	Exec *sampling.Exec
	// Trace is the distributed-tracing context this evaluation belongs to;
	// with a valid context (and an observer tracer) kernel tasks propagate
	// it through the remote tier so worker spans link back under one trace
	// ID. TraceIDs generates child span IDs (nil falls back to the
	// dispatcher's own generator). Observe-only.
	Trace    obs.TraceContext
	TraceIDs *obs.IDGen
	// Tracer, when non-nil, overrides Obs.Tracer as the destination for
	// kernel-task trace spans. The serving tier sets a per-request tracer
	// here so each study's merged cross-process trace contains only its own
	// spans while metrics keep flowing to the shared observer.
	Tracer *obs.Tracer
	// Flight, when non-nil, records one provenance entry per kernel task —
	// tier, worker, queue-wait and service durations — folded in launch
	// order. Observe-only.
	Flight *sampling.FlightRecorder
}

// TaskTrace returns the trace/provenance fields every kernel task in this
// evaluation shares; phase labels the study phase ("full", "pks", "pka",
// "dedup-pks", "dedup-pka").
func (c Config) TaskTrace(phase string) sampling.TaskObs {
	to := sampling.TaskObs{Flight: c.Flight, Phase: phase}
	to.Tracer = c.Tracer
	if to.Tracer == nil && c.Obs != nil {
		to.Tracer = c.Obs.Tracer
	}
	to.Trace = c.Trace
	to.IDs = c.TraceIDs
	return to
}

// PKSOptions returns cfg.PKS with the observer's audit stream and metric
// family filled in when the caller has not wired its own.
func (c Config) PKSOptions() pks.Options {
	o := c.PKS
	if c.Obs != nil {
		if o.Audit == nil {
			o.Audit = c.Obs.Audit
		}
		if o.Metrics == nil {
			o.Metrics = c.Obs.PKSMetrics()
		}
	}
	return o
}

// PKPOptions returns cfg.PKP wired to the observer for one kernel,
// defaulting the audit subject to the kernel's qualified name.
func (c Config) PKPOptions(subject string) pkp.Options {
	o := c.PKP
	if c.Obs != nil {
		if o.Audit == nil {
			o.Audit = c.Obs.Audit
		}
		if o.Metrics == nil {
			o.Metrics = c.Obs.PKPMetrics()
		}
		if o.AuditSubject == "" {
			o.AuditSubject = subject
		}
	}
	return o
}

// SimHours converts simulated work into projected simulation wall-clock
// hours at the configured rate.
func (c Config) SimHours(warpInstrs int64) float64 {
	rate := c.SimRate
	if rate <= 0 {
		rate = DefaultSimRate
	}
	return float64(warpInstrs) / rate / 3600
}

// SampledSim is the outcome of simulating only the selected kernels.
type SampledSim struct {
	// ProjCycles is the projected application cycle count (kernels
	// weighted by group population, plus launch overheads).
	ProjCycles int64
	// SimWarpInstrs is the work actually simulated.
	SimWarpInstrs int64
	// ErrorPct is the cycle error versus silicon.
	ErrorPct float64
	// IPC is the cycle-weighted projected IPC.
	IPC float64
	// DRAMUtil is the population-weighted projected DRAM utilization.
	DRAMUtil float64
	// SimHours is the projected simulation time at the modeled rate.
	SimHours float64
	// SpeedupVsFull is full-simulation work divided by sampled work. For
	// workloads whose full simulation is infeasible it is computed from
	// the workload's total instruction mass.
	SpeedupVsFull float64
	// Capped reports that some representative hit the runaway guard.
	Capped bool
}

// Evaluation bundles everything Table 4 reports for one workload.
type Evaluation struct {
	Workload  *workload.Workload
	Silicon   silicon.AppResult
	Selection *pks.Selection

	// Full is the full-simulation outcome, nil when infeasible.
	Full *sampling.Result
	// FullErrorPct is "SimError": full simulation versus silicon.
	FullErrorPct float64
	// FullSimHours is the projected full-simulation time; for infeasible
	// workloads it is projected from total instruction mass.
	FullSimHours float64

	PKS SampledSim // selection only
	PKA SampledSim // selection + projection
}

// RunSampled simulates one representative kernel per group (with PKP when
// usePKP is set) and projects application-level metrics from the group
// weights.
func RunSampled(cfg Config, w *workload.Workload, sel *pks.Selection, usePKP bool) (SampledSim, error) {
	dev := cfg.Device
	cap := cfg.KernelCapCycles
	if cap <= 0 {
		cap = sim.DefaultMaxCycles
	}
	mode := "pks"
	if usePKP {
		mode = "pka"
	}
	span := cfg.Obs.StartSpan("sampled:"+mode, w.FullName())
	defer span.End()
	var simObs *obs.SimObs
	if cfg.Obs != nil {
		simObs = cfg.Obs.SimObs("sim:" + mode + ":" + w.FullName())
	}

	// One kernel task per group representative, fanned out on the
	// kernel-granular scheduler (inline and serial when cfg.Exec is nil)
	// and folded back in group order, so the accumulation below performs
	// the same float operations in the same order at any parallelism.
	task := sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: cap}
	if usePKP {
		task = sampling.KernelTask{Mode: sampling.ModePKA, MaxCycles: cap, PKP: sampling.NewPKPSpec(cfg.PKP)}
	}
	kernels := make([]trace.KernelDesc, len(sel.Groups))
	for i, g := range sel.Groups {
		kernels[i] = w.Kernel(g.RepIndex)
	}
	tobs := func(i int) sampling.TaskObs {
		to := cfg.TaskTrace(mode)
		to.Sim = simObs
		to.Index = i
		if usePKP {
			po := cfg.PKPOptions(w.FullName() + "/" + kernels[i].Name)
			to.Audit, to.AuditSubject, to.PKPMetrics = po.Audit, po.AuditSubject, po.Metrics
		}
		return to
	}
	outs, err := cfg.Exec.RunKernels(dev, task, kernels, tobs)
	out := SampledSim{}
	if err != nil {
		return out, fmt.Errorf("core: rep kernels of %s: %w", w.FullName(), err)
	}
	var kernelCycles int64
	var threadInstrs, dramWeighted float64
	for i, g := range sel.Groups {
		oc := outs[i]
		if oc.Capped {
			out.Capped = true
		}
		weight := int64(g.Count())
		kernelCycles += oc.ProjCycles * weight
		out.SimWarpInstrs += oc.SimWarpInstrs
		threadInstrs += oc.ThreadInstrs * float64(weight)
		dramWeighted += oc.DRAMUtil * float64(oc.ProjCycles*weight)
	}
	out.ProjCycles = kernelCycles + int64(w.N)*silicon.KernelLaunchOverheadCycles
	if kernelCycles > 0 {
		out.IPC = threadInstrs / float64(kernelCycles)
		out.DRAMUtil = dramWeighted / float64(kernelCycles)
	}
	out.SimHours = cfg.SimHours(out.SimWarpInstrs)
	return out, nil
}

// Evaluate runs the complete pipeline for one workload: silicon ground
// truth, PKS, full simulation when feasible, and the sampled PKS/PKA
// simulations with error and speedup accounting. Independent stages run
// concurrently up to cfg.Parallelism; every stage is self-contained, so
// the result is identical at any parallelism level.
func Evaluate(cfg Config, w *workload.Workload) (*Evaluation, error) {
	return EvaluateWithSelection(cfg, w, nil)
}

// EvaluateWithSelection is Evaluate with an optional precomputed selection.
// When sel is non-nil the PKS stage is skipped and sel is used verbatim —
// the streaming pipeline hands in the selection it reconciled while events
// were still arriving; because that selection is byte-identical to what
// pks.Select would have produced, so is the Evaluation. A nil sel is
// exactly Evaluate.
func EvaluateWithSelection(cfg Config, w *workload.Workload, sel *pks.Selection) (*Evaluation, error) {
	if w == nil {
		return nil, errors.New("core: nil workload")
	}
	ev := &Evaluation{Workload: w}

	// Stage 1: silicon walk, selection, and full simulation share no
	// state and fan out together.
	var (
		silErr, selErr, fullErr error
		sil                     silicon.AppResult
		full                    *sampling.Result
	)
	pool := parallel.NewPool(cfg.Parallelism)
	pool.Go(func() error {
		sp := cfg.Obs.StartSpan("silicon", w.FullName())
		defer sp.End()
		sil, silErr = sampling.SiliconTotal(cfg.Device, w)
		return nil
	})
	if sel == nil {
		pool.Go(func() error {
			sp := cfg.Obs.StartSpan("pks-select", w.FullName())
			defer sp.End()
			sel, selErr = pks.Select(cfg.Device, w, cfg.PKSOptions())
			return nil
		})
	}
	pool.Go(func() error {
		sp := cfg.Obs.StartSpan("full-sim", w.FullName())
		defer sp.End()
		var tobs func(i int) sampling.TaskObs
		if cfg.Flight != nil || cfg.Trace.Valid() {
			tobs = func(i int) sampling.TaskObs {
				to := cfg.TaskTrace("full")
				to.Index = i
				return to
			}
		}
		full, fullErr = cfg.Exec.FullSimObs(cfg.Device, w, cfg.FullSimBudget, tobs)
		return nil
	})
	if err := pool.Wait(); err != nil {
		return nil, err // a stage panicked
	}
	if silErr != nil {
		return nil, silErr
	}
	ev.Silicon = sil
	if selErr != nil {
		return nil, selErr
	}
	ev.Selection = sel
	switch {
	case fullErr == nil:
		ev.Full = full
		ev.FullErrorPct = stats.AbsPctErr(float64(full.ProjCycles), float64(sil.Cycles))
		ev.FullSimHours = cfg.SimHours(full.SimWarpInstrs)
	case errors.Is(fullErr, sampling.ErrInfeasible):
		// Projected time only; no error column (the paper's MLPerf rows).
		ev.FullSimHours = cfg.SimHours(TotalWarpWork(cfg.Device, w))
	default:
		return nil, fullErr
	}

	// Stage 2: the PKS and PKA sampled runs both need the selection but
	// not each other.
	var pksErr, pkaErr error
	pool.Go(func() error { ev.PKS, pksErr = RunSampled(cfg, w, sel, false); return nil })
	pool.Go(func() error { ev.PKA, pkaErr = RunSampled(cfg, w, sel, true); return nil })
	if err := pool.Wait(); err != nil {
		return nil, err
	}
	if pksErr != nil {
		return nil, pksErr
	}
	if pkaErr != nil {
		return nil, pkaErr
	}
	ev.PKS.ErrorPct = stats.AbsPctErr(float64(ev.PKS.ProjCycles), float64(sil.Cycles))
	ev.PKA.ErrorPct = stats.AbsPctErr(float64(ev.PKA.ProjCycles), float64(sil.Cycles))

	fullWork := TotalWarpWork(cfg.Device, w)
	if ev.Full != nil {
		fullWork = ev.Full.SimWarpInstrs
	}
	if ev.PKS.SimWarpInstrs > 0 {
		ev.PKS.SpeedupVsFull = float64(fullWork) / float64(ev.PKS.SimWarpInstrs)
	}
	if ev.PKA.SimWarpInstrs > 0 {
		ev.PKA.SpeedupVsFull = float64(fullWork) / float64(ev.PKA.SimWarpInstrs)
	}
	return ev, nil
}

// TotalWarpWork returns the workload's full dynamic warp-instruction mass
// on the device — the denominator of every speedup-vs-full figure, and
// the before/after axis of the suite-dedup bench.
func TotalWarpWork(dev gpu.Device, w *workload.Workload) int64 {
	return int64(float64(w.ApproxWarpInstructions(1<<62)) * dev.ISAScale)
}
