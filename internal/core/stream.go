// Streaming evaluation: the incremental counterpart of Evaluate. Kernel
// launch events are pushed one at a time; profiling and advisory
// clustering run as they arrive (pks.Stream), and likely representatives
// are dispatched speculatively down the Exec ladder while later events are
// still being profiled. Finish reconciles: the stream's Finalize produces
// a selection byte-identical to batch pks.Select, the speculative warms
// are scored, and EvaluateWithSelection folds outcomes in launch order —
// every cache hit on a speculative warm is pure wall-clock overlap, and a
// rep demoted by a late cluster revision cost only the work it simulated.
package core

import (
	"errors"
	"fmt"

	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/sim"
	"pka/internal/trace"
	"pka/internal/workload"
)

// StreamOptions tunes the streaming pipeline. The zero value is a sensible
// default; none of these knobs can change results, only wall-clock.
type StreamOptions struct {
	// Window, MinDetailed, ResweepDegradePct, and ResweepEvery pass
	// through to pks.StreamOptions.
	Window            int
	MinDetailed       int
	ResweepDegradePct float64
	ResweepEvery      int
	// SpecWorkers bounds concurrent speculative simulations. Zero applies 2.
	SpecWorkers int
	// NoFullSpeculate disables warming full-simulation kernel tasks while
	// events arrive. By default every event's ModeFull task is warmed as
	// long as the cumulative workload mass stays inside the full-sim
	// budget (past it the workload is infeasible and the warms would be
	// pure waste).
	NoFullSpeculate bool
}

// StreamRunner drives one workload's streaming evaluation.
type StreamRunner struct {
	cfg  Config
	opts StreamOptions

	suite, name string
	n           int
	kernels     []trace.KernelDesc
	stream      *pks.Stream
	spec        *sampling.Speculator
	tasks       []sampling.KernelTask // sampled-mode task specs, TaskKey-exact

	fullTask sampling.KernelTask
	fullWork int64 // cumulative approx warp instrs, gates full-sim warming
	fullStop bool
}

// NewStreamRunner starts a streaming evaluation of a workload named
// suite/name with n kernel launches. Speculation engages only when
// cfg.Exec is non-nil — without an Exec there is no cache to warm.
func NewStreamRunner(cfg Config, suite, name string, n int, opts StreamOptions) (*StreamRunner, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: stream needs at least one kernel, got %d", n)
	}
	if opts.SpecWorkers <= 0 {
		opts.SpecWorkers = 2
	}
	r := &StreamRunner{
		cfg:      cfg,
		opts:     opts,
		suite:    suite,
		name:     name,
		n:        n,
		kernels:  make([]trace.KernelDesc, n),
		fullTask: sampling.KernelTask{Mode: sampling.ModeFull},
	}

	// The speculative task specs must be byte-for-byte the tasks RunSampled
	// will fold, or the content keys won't match and warming buys nothing.
	capCycles := cfg.KernelCapCycles
	if capCycles <= 0 {
		capCycles = sim.DefaultMaxCycles
	}
	r.tasks = []sampling.KernelTask{
		{Mode: sampling.ModePKS, MaxCycles: capCycles},
		{Mode: sampling.ModePKA, MaxCycles: capCycles, PKP: sampling.NewPKPSpec(cfg.PKP)},
	}

	so := pks.StreamOptions{
		Select:            cfg.PKSOptions(),
		Window:            opts.Window,
		MinDetailed:       opts.MinDetailed,
		ResweepDegradePct: opts.ResweepDegradePct,
		ResweepEvery:      opts.ResweepEvery,
	}
	if cfg.Obs != nil {
		so.Metrics = cfg.Obs.StreamMetrics()
	}
	if cfg.Exec != nil {
		r.spec = sampling.NewSpeculator(cfg.Exec, cfg.Device, r.tasks, opts.SpecWorkers)
		so.Speculate = func(k trace.KernelDesc) { r.spec.Speculate(k) }
	}
	stream, err := pks.NewStream(cfg.Device, suite, name, n, so)
	if err != nil {
		return nil, err
	}
	r.stream = stream
	return r, nil
}

// Push feeds one kernel launch event (k.ID is the launch index; arrival
// order may vary within the stream's reorder window).
func (r *StreamRunner) Push(k trace.KernelDesc) error {
	if err := r.stream.Push(k); err != nil {
		return err
	}
	r.kernels[k.ID] = k
	// Warm the full-simulation ladder too, while the workload still fits
	// the budget the reconciliation's full-sim stage will enforce.
	if r.spec != nil && !r.opts.NoFullSpeculate && !r.fullStop {
		budget := r.cfg.FullSimBudget
		if budget <= 0 {
			budget = sampling.DefaultFullSimBudget
		}
		warps := int64(k.Grid.Count()) * int64(k.WarpsPerBlock())
		r.fullWork += warps * int64(k.Mix.Total())
		if r.fullWork > budget {
			r.fullStop = true
		} else {
			r.spec.SpeculateTask(k, r.fullTask)
		}
	}
	return nil
}

// StreamResult is a finished streaming evaluation plus the speculation
// scorecard.
type StreamResult struct {
	*Evaluation
	Spec sampling.SpecStats
	// Resweeps is how many advisory cluster revisions ran.
	Resweeps int
}

// Finish reconciles the stream and completes the evaluation. The returned
// Evaluation is byte-identical to Evaluate on the same workload and
// config: the stream's Finalize replays the exact batch selection over
// its buffered records, and the fold only ever reads outcomes from the
// content-keyed ladder, where a speculative warm and a fresh simulation
// are indistinguishable.
func (r *StreamRunner) Finish() (*StreamResult, error) {
	sel, err := r.stream.Finalize()
	if err != nil {
		return nil, err
	}
	w, err := workload.FromKernels(r.suite, r.name, r.kernels)
	if err != nil {
		return nil, err
	}

	if r.spec != nil {
		// Final reconciliation warming: the elected reps' sampled tasks are
		// what the fold is about to need — launch them (duplicates of
		// earlier warms dedupe away) before marking the overlap cutoff.
		for _, g := range sel.Groups {
			r.spec.Speculate(r.kernels[g.RepIndex])
		}
		r.spec.Seal()
	}

	ev, err := EvaluateWithSelection(r.cfg, w, sel)
	if err != nil {
		return nil, err
	}
	out := &StreamResult{Evaluation: ev, Resweeps: r.stream.Resweeps()}
	if r.spec != nil {
		r.spec.Wait()
		// Score against the keys the fold actually consumed: the elected
		// reps' sampled tasks, plus every kernel's full-sim task when the
		// full simulation ran.
		finalKeys := map[string]bool{}
		for _, g := range sel.Groups {
			k := r.kernels[g.RepIndex]
			for _, task := range r.tasks {
				finalKeys[sampling.TaskKey(r.cfg.Device, &k, task)] = true
			}
		}
		if ev.Full != nil {
			for i := range r.kernels {
				finalKeys[sampling.TaskKey(r.cfg.Device, &r.kernels[i], r.fullTask)] = true
			}
		}
		out.Spec = r.spec.Resolve(finalKeys)
	}
	if r.cfg.Obs != nil {
		if m := r.cfg.Obs.StreamMetrics(); m != nil {
			m.Speculated.Add(int64(out.Spec.Launched))
			m.SpecHits.Add(int64(out.Spec.Hits))
			m.SpecWastedInstr.Add(out.Spec.WastedWarpInstrs)
			m.OverlapFraction.Set(out.Spec.OverlapFraction)
		}
	}
	return out, nil
}

// RunStream evaluates a workload end-to-end through the streaming
// pipeline, pushing its launches in order — the in-process equivalent of
// feeding pka -stream an event file. Evaluate and RunStream return
// identical Evaluations.
func RunStream(cfg Config, w *workload.Workload, opts StreamOptions) (*StreamResult, error) {
	if w == nil {
		return nil, errors.New("core: nil workload")
	}
	r, err := NewStreamRunner(cfg, w.Suite, w.Name, w.N, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < w.N; i++ {
		if err := r.Push(w.Kernel(i)); err != nil {
			return nil, err
		}
	}
	return r.Finish()
}
