package core

import (
	"reflect"
	"testing"

	"pka/internal/parallel"
	"pka/internal/sampling"
	"pka/internal/stats"
	"pka/internal/workload"
)

// sameEvaluation compares two evaluations field by field, skipping the
// Workload pointer (the streamed run rebuilds its workload from events, so
// the generator closures differ while every kernel they serve is equal).
func sameEvaluation(t *testing.T, label string, got, want *Evaluation) {
	t.Helper()
	if got.Silicon != want.Silicon {
		t.Errorf("%s: silicon differs: %+v vs %+v", label, got.Silicon, want.Silicon)
	}
	if !reflect.DeepEqual(got.Selection, want.Selection) {
		t.Errorf("%s: selection differs:\ngot:  %+v\nwant: %+v", label, got.Selection, want.Selection)
	}
	if !reflect.DeepEqual(got.Full, want.Full) {
		t.Errorf("%s: full sim differs: %+v vs %+v", label, got.Full, want.Full)
	}
	if got.FullErrorPct != want.FullErrorPct || got.FullSimHours != want.FullSimHours {
		t.Errorf("%s: full accounting differs", label)
	}
	if got.PKS != want.PKS {
		t.Errorf("%s: PKS differs: %+v vs %+v", label, got.PKS, want.PKS)
	}
	if got.PKA != want.PKA {
		t.Errorf("%s: PKA differs: %+v vs %+v", label, got.PKA, want.PKA)
	}
}

// TestStreamDeterminism pins the tentpole invariant: the streaming
// pipeline's output is byte-identical to batch Evaluate at any
// parallelism, across event arrival orders within the launch window, and
// under forced speculative misprediction (advisory cluster revisions every
// few events) — speculation and overlap are pure wall-clock effects.
func TestStreamDeterminism(t *testing.T) {
	for _, name := range []string{"Rodinia/gauss_208", "Rodinia/hots_512"} {
		w := workload.Find(name)
		if w == nil {
			t.Fatalf("workload %s not registered", name)
		}
		want, err := Evaluate(cfg(), w)
		if err != nil {
			t.Fatal(err)
		}

		arms := []struct {
			label string
			par   int
			shuf  int
			opts  StreamOptions
		}{
			{"in-order/p=1", 1, 0, StreamOptions{}},
			{"in-order/p=4", 4, 0, StreamOptions{}},
			{"shuffled/p=4", 4, 16, StreamOptions{Window: 32}},
			{"misprediction/p=4", 4, 16, StreamOptions{Window: 32, MinDetailed: 8, ResweepEvery: 8}},
		}
		for _, arm := range arms {
			c := cfg()
			c.Parallelism = arm.par
			c.Exec = sampling.NewExec(parallel.NewScheduler(arm.par), nil)
			r, err := NewStreamRunner(c, w.Suite, w.Name, w.N, arm.opts)
			if err != nil {
				t.Fatal(err)
			}
			order := make([]int, w.N)
			for i := range order {
				order[i] = i
			}
			if arm.shuf > 1 {
				rng := stats.NewRNG(13)
				for base := 0; base < w.N; base += arm.shuf {
					end := base + arm.shuf
					if end > w.N {
						end = w.N
					}
					for i := end - 1; i > base; i-- {
						j := base + rng.Intn(i-base+1)
						order[i], order[j] = order[j], order[i]
					}
				}
			}
			for _, i := range order {
				if err := r.Push(w.Kernel(i)); err != nil {
					t.Fatalf("%s/%s: push %d: %v", name, arm.label, i, err)
				}
			}
			res, err := r.Finish()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, arm.label, err)
			}
			sameEvaluation(t, name+"/"+arm.label, res.Evaluation, want)
			// hots_512 is a single-kernel app: the advisory clustering never
			// warms up, so only the multi-kernel workload asserts revisions.
			if arm.label == "misprediction/p=4" && w.N > 8 && res.Resweeps < 2 {
				t.Errorf("%s: misprediction arm revised clusters only %d times", name, res.Resweeps)
			}
		}
	}
}

// TestRunStreamSpeculationPaysOff checks the speculation scorecard: with a
// warm-capable Exec, the final representatives' sampled tasks should have
// been warmed before reconciliation (overlap fraction 1 on an in-order
// stream of a small app), and the evaluation still matches batch.
func TestRunStreamSpeculationPaysOff(t *testing.T) {
	w := workload.Find("Rodinia/gauss_208")
	c := cfg()
	c.Exec = sampling.NewExec(parallel.NewScheduler(2), nil)
	res, err := RunStream(c, w, StreamOptions{MinDetailed: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(cfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	sameEvaluation(t, "speculative", res.Evaluation, want)
	if res.Spec.Launched == 0 {
		t.Fatal("no speculation happened despite a warm-capable Exec")
	}
	// How much of the warm queue drains before reconciliation is a pure
	// timing question (this box's profiler is analytic-fast), so the
	// overlap fraction is only pinned to its range; what must hold is the
	// accounting: some warms were for keys the fold consumed.
	if res.Spec.OverlapFraction < 0 || res.Spec.OverlapFraction > 1 {
		t.Errorf("overlap fraction %v outside [0,1]", res.Spec.OverlapFraction)
	}
	if hit := res.Spec.Launched - res.Spec.Demoted; hit == 0 {
		t.Errorf("every one of %d warms was demoted; expected the full-sim and rep warms to match final keys", res.Spec.Launched)
	}
}
