package remote

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pka/internal/artifact"
	"pka/internal/obs"
)

// Shard-client defaults.
const (
	// DefaultShardTimeout bounds one peer cache RPC. Peer GETs move 33
	// bytes; anything slow is a peer worth evicting, not waiting for.
	DefaultShardTimeout = 2 * time.Second
	// DefaultShardEvictAfter is how many consecutive transport failures a
	// peer gets before it is evicted from the ring (a rebalance).
	DefaultShardEvictAfter = 3
)

// ShardOptions configures a ShardClient.
type ShardOptions struct {
	// Peers are the fleet's worker base URLs — the ring members. Order
	// does not matter; placement is a pure function of the set.
	Peers []string
	// Self, when non-empty, names this process's own URL on the ring. The
	// client skips Self on lookups and stores (its payloads already live
	// in the local artifact store, which the Exec ladder checks first).
	Self string
	// Replicas and VNodes parameterize the ring (defaults
	// artifact.DefaultReplicas / artifact.DefaultVNodes).
	Replicas int
	VNodes   int
	// Timeout bounds one peer RPC (default DefaultShardTimeout).
	Timeout time.Duration
	// EvictAfter is the consecutive-failure eviction threshold (default
	// DefaultShardEvictAfter).
	EvictAfter int
	// Metrics receives shard-tier telemetry (optional, nil-safe).
	Metrics *obs.ShardMetrics
	// Logf, when set, receives rebalance log lines.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// ShardClient implements sampling.ShardTier over the pkad fleet: it
// builds the same consistent-hash ring every ring-aware worker builds,
// answers "who owns this key" locally, and does peer GET/PUT against the
// owner set. Failure handling is availability-first: a peer that keeps
// failing transport is evicted and the ring rebalanced (counted in
// pka_shard_rebalance_total), after which its key range resolves to the
// surviving replicas — the property the kill-one-worker smoke pins.
// Lookup misses and peer failures are never errors; the Exec ladder just
// falls through to the next tier.
type ShardClient struct {
	opts   ShardOptions
	client *http.Client

	mu    sync.Mutex
	ring  *artifact.Ring
	fails map[string]int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewShardClient builds a shard client over the given fleet. Returns nil
// when no peers remain after dropping Self, matching the nil-safe
// ShardTier wiring in sampling.Exec.
func NewShardClient(opts ShardOptions) *ShardClient {
	ring := artifact.NewRing(opts.Peers, opts.VNodes, opts.Replicas)
	if ring == nil {
		return nil
	}
	if m := ring.Members(); len(m) == 1 && m[0] == opts.Self {
		// A ring of only ourselves has nobody to ask.
		return nil
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultShardTimeout
	}
	if opts.EvictAfter <= 0 {
		opts.EvictAfter = DefaultShardEvictAfter
	}
	if opts.Metrics == nil {
		opts.Metrics = &obs.ShardMetrics{} // nil-safe instruments
	}
	c := opts.Client
	if c == nil {
		c = &http.Client{}
	}
	return &ShardClient{opts: opts, client: c, ring: ring, fails: map[string]int{}}
}

// Ring returns the client's current ring (post-evictions).
func (c *ShardClient) Ring() *artifact.Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// CacheCounts publishes the peer-lookup hit/miss counters in the shape
// RegisterCacheStats wants, so the shard tier lands beside the mem and
// artifact families as pka_cache_shard_* instead of silently reading
// zero while peers serve traffic.
func (c *ShardClient) CacheCounts() obs.CacheCounts {
	if c == nil {
		return obs.CacheCounts{}
	}
	return obs.CacheCounts{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// owners snapshots the current owner list for key, excluding Self.
func (c *ShardClient) owners(key string) []string {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	owners := ring.Owners(key)
	if c.opts.Self == "" {
		return owners
	}
	out := owners[:0]
	for _, o := range owners {
		if o != c.opts.Self {
			out = append(out, o)
		}
	}
	return out
}

// noteOK resets a peer's consecutive-failure count after any successful
// round trip (a 404 miss is a healthy answer).
func (c *ShardClient) noteOK(peer string) {
	c.mu.Lock()
	delete(c.fails, peer)
	c.mu.Unlock()
}

// noteFailure counts a transport failure against peer and evicts it from
// the ring at the threshold — the rebalance the fleet operator sees in
// the log and in pka_shard_rebalance_total.
func (c *ShardClient) noteFailure(peer string) {
	c.mu.Lock()
	c.fails[peer]++
	evict := c.fails[peer] >= c.opts.EvictAfter
	var members int
	if evict {
		delete(c.fails, peer)
		c.ring = c.ring.Without(peer)
		members = len(c.ring.Members())
	}
	c.mu.Unlock()
	if evict {
		c.opts.Metrics.Rebalances.Inc()
		if c.opts.Logf != nil {
			c.opts.Logf("shard %s evicted after %d consecutive failures; ring rebalanced to %d members",
				peer, c.opts.EvictAfter, members)
		}
	}
}

// Lookup implements sampling.ShardTier: ask key's owners for the cached
// payload, primary first, then replicas. Peers answering 404 are healthy
// misses; peers failing transport are counted toward eviction and the
// next replica is tried — which is exactly the fallback that keeps a
// study byte-identical when an owner dies mid-run.
func (c *ShardClient) Lookup(key string) (payload []byte, peer string, ok bool) {
	if c == nil {
		return nil, "", false
	}
	m := c.opts.Metrics
	m.Lookups.Inc()
	start := time.Now()
	for _, owner := range c.owners(key) {
		raw, status, err := c.get(owner, key)
		if err != nil {
			m.PeerErrors.Inc()
			c.noteFailure(owner)
			continue
		}
		c.noteOK(owner)
		if status == http.StatusOK && len(raw) > 0 {
			c.hits.Add(1)
			m.PeerHits.Inc()
			m.LookupLatency.Observe(time.Since(start).Seconds())
			return raw, owner, true
		}
		// 404 (or any non-200): the owner doesn't hold the key; a replica
		// might after a partial replication, so keep walking the owner set.
	}
	c.misses.Add(1)
	m.PeerMisses.Inc()
	m.LookupLatency.Observe(time.Since(start).Seconds())
	return nil, "", false
}

// Store implements sampling.ShardTier: best-effort replication of the
// payload to every owner of key. Idempotent (owners may already hold the
// bytes) and never an error — a failed PUT only costs a future peer hit.
func (c *ShardClient) Store(key string, payload []byte) {
	if c == nil || len(payload) == 0 {
		return
	}
	m := c.opts.Metrics
	for _, owner := range c.owners(key) {
		if err := c.put(owner, key, payload); err != nil {
			m.PutErrors.Inc()
			c.noteFailure(owner)
			continue
		}
		c.noteOK(owner)
		m.Puts.Inc()
	}
}

func (c *ShardClient) get(peer, key string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+CachePathPrefix+key, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain so the connection is reusable; a non-200 is an answer, not
		// a transport failure.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, MaxCachePayloadBytes))
		return nil, resp.StatusCode, nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxCachePayloadBytes+1))
	if err != nil || len(raw) > MaxCachePayloadBytes {
		return nil, 0, errTruncated
	}
	return raw, resp.StatusCode, nil
}

func (c *ShardClient) put(peer, key string, payload []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+CachePathPrefix+key, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, MaxCachePayloadBytes))
	resp.Body.Close()
	return nil
}

// errTruncated marks a peer response that exceeded the payload bound.
var errTruncated = &truncatedError{}

type truncatedError struct{}

func (*truncatedError) Error() string { return "remote: peer cache payload truncated or oversized" }
