package remote

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"

	"pka/internal/sampling"
)

// Server executes kernel tasks on behalf of remote dispatchers. It wraps a
// worker-side sampling.Exec — which layers the mem-singleflight and disk
// artifact tiers over the local simulator but deliberately never a remote
// tier of its own (see Exec.RunKernelTask), so a misconfigured fleet
// cannot forward requests in a loop.
//
// Admission is a plain semaphore: at most capacity tasks execute at once,
// and requests beyond that are rejected immediately with 429 rather than
// queued. Dispatchers treat 429 as "place it somewhere else", which keeps
// the queueing (and its placement intelligence) on the client where the
// cost estimates live.
type Server struct {
	exec *sampling.Exec
	cap  int
	sem  chan struct{}

	served atomic.Uint64
	busy   atomic.Uint64
	failed atomic.Uint64

	// Logf, when set, receives one line per exec request (access log).
	Logf func(format string, args ...any)
}

// NewServer builds a worker around exec with the given concurrent-task
// capacity (minimum 1).
func NewServer(exec *sampling.Exec, capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	return &Server{exec: exec, cap: capacity, sem: make(chan struct{}, capacity)}
}

// Handler returns the worker's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ExecPath, s.handleExec)
	mux.HandleFunc(HealthPath, s.handleHealth)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.busy.Add(1)
		s.logf("busy reject (capacity %d)", s.cap)
		http.Error(w, "worker at capacity", http.StatusTooManyRequests)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil || len(body) > MaxRequestBytes {
		s.failed.Add(1)
		http.Error(w, "unreadable or oversized body", http.StatusBadRequest)
		return
	}
	var req ExecRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.failed.Add(1)
		s.logf("bad request: %v", err)
		http.Error(w, "malformed request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		s.failed.Add(1)
		s.logf("rejected request: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	oc, err := s.exec.RunKernelTask(req.Device, &req.Kernel, req.Task)
	if err != nil {
		s.failed.Add(1)
		s.logf("task %s failed: %v", req.Key[:12], err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.served.Add(1)
	s.logf("served %s kernel=%q mode=%d", req.Key[:12], req.Kernel.Name, req.Task.Mode)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ExecResponse{Outcome: sampling.EncodeOutcome(oc)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Capacity:    s.cap,
		InFlight:    len(s.sem),
		Served:      s.served.Load(),
		BusyRejects: s.busy.Load(),
		Failed:      s.failed.Load(),
	}
	if st := s.exec.Store(); st != nil {
		cs := st.Stats()
		h.Cache = CacheHealth{Hits: cs.Hits, Misses: cs.Misses, Writes: cs.Writes, Entries: cs.Entries}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}
