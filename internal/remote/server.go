package remote

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"pka/internal/artifact"
	"pka/internal/obs"
	"pka/internal/sampling"
)

// maxParkedSpans bounds the worker's parked-span ring: spans whose
// response never reached the client wait here for a /debug/spans drain;
// beyond the cap the oldest are dropped and counted.
const maxParkedSpans = 1 << 12

// Server executes kernel tasks on behalf of remote dispatchers. It wraps a
// worker-side sampling.Exec — which layers the mem-singleflight and disk
// artifact tiers over the local simulator but deliberately never a remote
// tier of its own (see Exec.RunKernelTask), so a misconfigured fleet
// cannot forward requests in a loop.
//
// Admission is a plain semaphore: at most capacity tasks execute at once,
// and requests beyond that are rejected immediately with 429 rather than
// queued. Dispatchers treat 429 as "place it somewhere else", which keeps
// the queueing (and its placement intelligence) on the client where the
// cost estimates live.
type Server struct {
	exec *sampling.Exec
	cap  int
	sem  chan struct{}

	served atomic.Uint64
	busy   atomic.Uint64
	failed atomic.Uint64

	// Shard-ring membership (nil/"" when the daemon runs unsharded): the
	// ring this worker believes it is part of, its own member name on it,
	// and the peer cache traffic it has served.
	ring     *artifact.Ring
	ringSelf string
	peerGets atomic.Uint64
	peerPuts atomic.Uint64

	ids *obs.IDGen

	spanMu      sync.Mutex
	parked      []obs.EventRecord
	parkDropped int64

	// Logf, when set, receives one line per exec request (access log).
	Logf func(format string, args ...any)
	// Name identifies this worker process in traces, health, and span
	// shipping (default "pkad").
	Name string
	// Obs, when set, serves the daemon's Prometheus exposition on
	// MetricsPath.
	Obs *obs.Observer
}

// NewServer builds a worker around exec with the given concurrent-task
// capacity (minimum 1).
func NewServer(exec *sampling.Exec, capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	return &Server{exec: exec, cap: capacity, sem: make(chan struct{}, capacity), ids: obs.NewIDGen(0)}
}

// SetRing declares this worker a member of a shard ring under the given
// member name; /v1/health then reports its owned key-range fraction and
// replica peers. The ring only describes membership — the worker answers
// peer GET/PUT for any valid key regardless, because consistent hashing
// is advisory placement, not an ACL, and a client mid-rebalance may ask
// a former owner.
func (s *Server) SetRing(ring *artifact.Ring, self string) {
	s.ring = ring
	s.ringSelf = self
}

// SetIDGen replaces the span-ID generator — tests install a seeded one
// for deterministic IDs.
func (s *Server) SetIDGen(g *obs.IDGen) {
	if g != nil {
		s.ids = g
	}
}

func (s *Server) name() string {
	if s.Name != "" {
		return s.Name
	}
	return "pkad"
}

// Handler returns the worker's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ExecPath, s.handleExec)
	mux.HandleFunc(CachePathPrefix, s.handleCache)
	mux.HandleFunc(HealthPath, s.handleHealth)
	mux.HandleFunc(SpansPath, s.handleSpans)
	mux.HandleFunc(MetricsPath, s.handleMetrics)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.busy.Add(1)
		s.logf("busy reject (capacity %d)", s.cap)
		http.Error(w, "worker at capacity", http.StatusTooManyRequests)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil || len(body) > MaxRequestBytes {
		s.failed.Add(1)
		http.Error(w, "unreadable or oversized body", http.StatusBadRequest)
		return
	}
	var req ExecRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.failed.Add(1)
		s.logf("bad request: %v", err)
		http.Error(w, "malformed request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		s.failed.Add(1)
		s.logf("rejected request: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A valid traceparent turns on per-request tracing: spans land in a
	// request-local tracer and ship back inside the response. Tracing is
	// observe-only — the execution path is identical either way.
	var (
		tr     *obs.Tracer
		span   *obs.Span
		flight *sampling.FlightRecorder
		to     sampling.TaskObs
	)
	parent, traced := obs.ParseTraceparent(r.Header.Get(TraceparentHeader))
	if traced {
		tr = obs.NewTracer()
		flight = sampling.NewFlightRecorder()
		to = sampling.TaskObs{
			Flight: flight,
			Sim:    &obs.SimObs{Track: tr.Track("sim")},
		}
		span = tr.Track("task").Start("exec "+req.Kernel.Name,
			obs.Arg{Key: "trace_id", Val: parent.TraceID},
			obs.Arg{Key: "parent_id", Val: parent.SpanID},
			obs.Arg{Key: "span_id", Val: s.ids.SpanID()},
			obs.Arg{Key: "key", Val: req.Key[:12]},
			obs.Arg{Key: "mode", Val: int(req.Task.Mode)},
		)
	}
	oc, err := s.exec.RunKernelTaskObs(req.Device, &req.Kernel, req.Task, to)
	if err != nil {
		span.End()
		s.failed.Add(1)
		s.logf("task %s failed: %v", req.Key[:12], err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := ExecResponse{Outcome: sampling.EncodeOutcome(oc)}
	if traced {
		tier := sampling.TierSim
		if es := flight.Entries(); len(es) > 0 {
			tier = es[0].Tier
		}
		span.Arg("tier", tier.String()).End()
		pt := tr.ExportProcess(s.name())
		resp.Process = pt.Process
		resp.Spans = pt.Events
		resp.SpansDropped = pt.Dropped
	}
	s.served.Add(1)
	s.logf("served %s kernel=%q mode=%d", req.Key[:12], req.Kernel.Name, req.Task.Mode)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil || r.Context().Err() != nil {
		// The client never saw this response — a hedged loser's cancelled
		// RPC, usually. Park the spans for a /debug/spans drain instead of
		// losing that side of the race.
		if traced {
			s.parkSpans(resp.Spans, resp.SpansDropped)
		}
	}
}

// handleCache serves the sharded fleet cache's peer traffic straight from
// the worker's artifact store: GET returns the payload under a content
// key, PUT stores one. No execution ever happens here — peers exchanging
// cache entries cannot create work for each other, only save it.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	store := s.exec.Store()
	if store == nil {
		http.Error(w, "worker has no artifact store", http.StatusNotFound)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, CachePathPrefix)
	if key == "" || strings.ContainsRune(key, '/') {
		http.Error(w, "bad cache key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.peerGets.Add(1)
		raw, ok := store.Get(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(raw)
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxCachePayloadBytes+1))
		if err != nil || len(body) == 0 || len(body) > MaxCachePayloadBytes {
			http.Error(w, "unreadable, empty, or oversized payload", http.StatusBadRequest)
			return
		}
		if err := store.Put(key, body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.peerPuts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT only", http.StatusMethodNotAllowed)
	}
}

// parkSpans buffers spans whose response did not reach the client.
func (s *Server) parkSpans(events []obs.EventRecord, dropped int64) {
	s.spanMu.Lock()
	defer s.spanMu.Unlock()
	s.parkDropped += dropped
	for _, ev := range events {
		if len(s.parked) >= maxParkedSpans {
			// Drop the oldest: recent spans are the ones a live drain wants.
			copy(s.parked, s.parked[1:])
			s.parked = s.parked[:len(s.parked)-1]
			s.parkDropped++
		}
		s.parked = append(s.parked, ev)
	}
}

// handleSpans drains the parked-span buffer as a ProcessTrace, so a
// client can collect the spans of requests whose responses it cancelled.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	s.spanMu.Lock()
	pt := obs.ProcessTrace{Process: s.name(), Events: s.parked, Dropped: s.parkDropped}
	s.parked = nil
	s.parkDropped = 0
	s.spanMu.Unlock()
	if pt.Events == nil {
		pt.Events = []obs.EventRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(pt)
}

// handleMetrics serves the daemon observer's Prometheus exposition; 404
// when the daemon runs without one.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.Obs == nil {
		http.NotFound(w, r)
		return
	}
	s.Obs.SyncCacheStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.Obs.Metrics.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Capacity:    s.cap,
		InFlight:    len(s.sem),
		Served:      s.served.Load(),
		BusyRejects: s.busy.Load(),
		Failed:      s.failed.Load(),
		Process:     s.name(),
		Build:       obs.Build(),
	}
	if st := s.exec.Store(); st != nil {
		cs := st.Stats()
		h.Cache = CacheHealth{Hits: cs.Hits, Misses: cs.Misses, Writes: cs.Writes, Entries: cs.Entries}
	}
	if s.ring != nil {
		h.Ring = &RingHealth{
			Members:       len(s.ring.Members()),
			Replicas:      s.ring.Replicas(),
			OwnedFraction: s.ring.OwnedFraction(s.ringSelf),
			ReplicaPeers:  s.ring.ReplicaPeersOf(s.ringSelf),
			PeerGets:      s.peerGets.Load(),
			PeerPuts:      s.peerPuts.Load(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}
