package remote_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pka/internal/artifact"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/remote"
	"pka/internal/sampling"
	"pka/internal/workload"
)

// testKey returns a valid (lowercase-hex) content key derived from s.
func testKey(s string) string {
	return artifact.Key([]byte(s))
}

// shardFleet builds n ring workers over private stores plus a client
// spanning them.
func shardFleet(t *testing.T, n int, opts remote.ShardOptions) ([]*httptest.Server, []*artifact.Store, *remote.ShardClient) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	stores := make([]*artifact.Store, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i], stores[i] = worker(t, t.TempDir(), nil)
		urls[i] = servers[i].URL
	}
	opts.Peers = urls
	c := remote.NewShardClient(opts)
	if c == nil {
		t.Fatal("NewShardClient returned nil for a populated fleet")
	}
	return servers, stores, c
}

// Store must replicate to every owner, Lookup must read back from one,
// and the hit must name a true owner of the key.
func TestShardStoreLookup(t *testing.T) {
	_, stores, c := shardFleet(t, 3, remote.ShardOptions{})
	payload := sampling.EncodeOutcome(sampling.KernelOutcome{ProjCycles: 42, SimWarpInstrs: 7})
	key := testKey("task-1")
	c.Store(key, payload)

	owners := c.Ring().Owners(key)
	if len(owners) != 2 {
		t.Fatalf("want 2 owners at default replication, got %v", owners)
	}
	got, peer, ok := c.Lookup(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Lookup = (%x, %v), want stored payload", got, ok)
	}
	if peer != owners[0] {
		t.Errorf("hit served by %s, want primary owner %s", peer, owners[0])
	}
	// The payload landed on the owners' stores and nowhere else.
	replicated := 0
	for _, st := range stores {
		if raw, ok := st.Get(key); ok {
			replicated++
			if !bytes.Equal(raw, payload) {
				t.Error("owner store holds different bytes")
			}
		}
	}
	if replicated != 2 {
		t.Errorf("payload on %d stores, want 2 (the owner set)", replicated)
	}

	if _, _, ok := c.Lookup(testKey("never-stored")); ok {
		t.Error("Lookup of an unstored key reported a hit")
	}
	cc := c.CacheCounts()
	if cc.Hits != 1 || cc.Misses != 1 {
		t.Errorf("CacheCounts = %+v, want 1 hit / 1 miss", cc)
	}
}

// Killing a key's primary owner must not lose the key: the lookup walks
// to the surviving replica. This is the replica-fallback property the CI
// kill-one-worker smoke depends on.
func TestShardReplicaFallback(t *testing.T) {
	servers, _, c := shardFleet(t, 3, remote.ShardOptions{})
	payload := sampling.EncodeOutcome(sampling.KernelOutcome{ProjCycles: 99})
	key := testKey("task-fallback")
	c.Store(key, payload)
	owners := c.Ring().Owners(key)

	for _, s := range servers {
		if s.URL == owners[0] {
			s.Close()
		}
	}
	got, peer, ok := c.Lookup(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("lookup after killing primary: ok=%v", ok)
	}
	if peer != owners[1] {
		t.Errorf("served by %s, want surviving replica %s", peer, owners[1])
	}
}

// A peer that keeps failing transport is evicted: the ring rebalances
// (counted and logged) and later placements stop routing to it.
func TestShardEvictionRebalance(t *testing.T) {
	o := obs.NewObserver()
	var logbuf strings.Builder
	servers, _, c := shardFleet(t, 3, remote.ShardOptions{
		EvictAfter: 2,
		Metrics:    o.ShardMetrics(),
		Logf:       func(f string, a ...any) { fmt.Fprintf(&logbuf, f+"\n", a...) },
	})
	dead := servers[0].URL
	servers[0].Close()

	// Hammer lookups until every key route touching the dead peer has
	// failed it out. 16 distinct keys guarantee ≥2 route through it.
	for i := 0; i < 16; i++ {
		c.Lookup(testKey(fmt.Sprintf("evict-%d", i)))
	}
	members := c.Ring().Members()
	if len(members) != 2 {
		t.Fatalf("ring still has %v, want the dead peer evicted", members)
	}
	for _, m := range members {
		if m == dead {
			t.Fatal("dead peer survived eviction")
		}
	}
	if got := o.ShardMetrics().Rebalances.Value(); got != 1 {
		t.Errorf("pka_shard_rebalance_total = %v, want 1", got)
	}
	if !strings.Contains(logbuf.String(), "ring rebalanced to 2 members") {
		t.Errorf("no rebalance log line, got %q", logbuf.String())
	}
}

// The worker's health report must expose ring membership: owned
// fraction, replica peers, and peer traffic counters.
func TestShardRingHealth(t *testing.T) {
	st, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(sampling.NewExec(nil, st), 2)
	members := []string{"http://a:9377", "http://b:9377", "http://c:9377"}
	srv.SetRing(artifact.NewRing(members, 0, 0), members[0])
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	key := testKey("health-roundtrip")
	payload := sampling.EncodeOutcome(sampling.KernelOutcome{ProjCycles: 5})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+remote.CachePathPrefix+key, bytes.NewReader(payload))
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("peer PUT: %v %v", resp, err)
	}
	if resp, err := http.Get(ts.URL + remote.CachePathPrefix + key); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("peer GET: %v %v", resp, err)
	}

	var h remote.Health
	resp, err := http.Get(ts.URL + remote.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	r := h.Ring
	if r == nil {
		t.Fatal("health has no ring block")
	}
	if r.Members != 3 || r.Replicas != 2 {
		t.Errorf("ring block = %+v, want 3 members / 2 replicas", r)
	}
	if r.OwnedFraction < 0.2 || r.OwnedFraction > 0.5 {
		t.Errorf("owned fraction %.3f implausible for a 3-member ring", r.OwnedFraction)
	}
	if len(r.ReplicaPeers) != 2 {
		t.Errorf("replica peers = %v, want both other members", r.ReplicaPeers)
	}
	if r.PeerGets != 1 || r.PeerPuts != 1 {
		t.Errorf("peer traffic = %d gets / %d puts, want 1/1", r.PeerGets, r.PeerPuts)
	}
}

// The Exec ladder with a shard tier: a second process's exec over an
// empty local store must be served from the fleet (TierShard, with the
// serving peer recorded in provenance), not by re-simulating.
func TestShardExecTier(t *testing.T) {
	_, _, c := shardFleet(t, 3, remote.ShardOptions{})
	dev := gpu.VoltaV100()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("missing workload")
	}
	kernels := w.Kernels()
	task := sampling.KernelTask{Mode: sampling.ModeFull}

	localStore := func() *artifact.Store {
		st, err := artifact.Open(t.TempDir(), artifact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}

	// First process: simulate and replicate to the fleet.
	exec1 := sampling.NewExec(nil, localStore())
	exec1.SetShard(c)
	want, err := exec1.RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Second process: private empty store, same fleet.
	exec2 := sampling.NewExec(nil, localStore())
	exec2.SetShard(c)
	fr := sampling.NewFlightRecorder()
	got, err := exec2.RunKernels(dev, task, kernels, func(i int) sampling.TaskObs {
		return sampling.TaskObs{Flight: fr, Phase: "shard", Index: i}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("kernel %d: shard-served outcome differs: %+v vs %+v", i, want[i], got[i])
		}
	}
	counts := fr.TierCounts()
	if counts["shard"] == 0 {
		t.Fatalf("no kernels served from the shard tier: %v", counts)
	}
	if counts["sim"] != 0 || counts["worker"] != 0 {
		t.Fatalf("fleet-cached kernels were re-executed: %v", counts)
	}
	for _, e := range fr.Entries() {
		if e.Tier == sampling.TierShard && e.Worker == "" {
			t.Error("shard-served entry missing the serving peer")
		}
	}
}
