package remote_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/remote"
	"pka/internal/sampling"
	"pka/internal/workload"
)

type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int64                  `json:"pid"`
	Args map[string]interface{} `json:"args"`
}

func parseChrome(t *testing.T, b []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b)
	}
	return doc.TraceEvents
}

func argStr(ev chromeEvent, key string) string {
	s, _ := ev.Args[key].(string)
	return s
}

// TestDistributedTraceLoopback is the cross-process tracing golden: a
// traced task dispatched to an in-process worker yields one merged Chrome
// trace holding both processes' spans under a single trace ID, with the
// worker's span parented to the dispatcher's RPC span.
func TestDistributedTraceLoopback(t *testing.T) {
	srv := remote.NewServer(sampling.NewExec(nil, nil), 4)
	srv.Name = "worker-a"
	srv.SetIDGen(obs.NewIDGen(101))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	d := remote.NewDispatcher(remote.DispatcherOptions{
		Workers: []string{ts.URL},
		IDs:     obs.NewIDGen(7),
	})

	tr := obs.NewTracer()
	tr.SetProcessName("pka")
	ids := obs.NewIDGen(5)
	root := ids.NewTrace()
	ro := &sampling.RemoteObs{Trace: root, Tracer: tr, IDs: ids}

	dev := gpu.VoltaV100()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	k := w.Kernel(0)
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	key := sampling.TaskKey(dev, &k, task)

	oc, ok := d.ExecTask(key, dev, &k, task, 100, ro)
	if !ok {
		t.Fatal("dispatch failed")
	}
	// Tracing is observe-only: the traced outcome must equal a plain local
	// execution of the same task.
	want, err := sampling.NewExec(nil, nil).RunKernelTask(dev, &k, task)
	if err != nil {
		t.Fatal(err)
	}
	if oc != want {
		t.Fatalf("traced remote outcome %+v != local %+v", oc, want)
	}
	if ro.Worker != ts.URL {
		t.Fatalf("RemoteObs.Worker = %q, want %q", ro.Worker, ts.URL)
	}

	if fp := tr.ForeignProcesses(); len(fp) != 1 || fp[0] != "worker-a" {
		t.Fatalf("foreign processes %v, want [worker-a]", fp)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := parseChrome(t, buf.Bytes())

	procs := map[string]int64{}
	var rpc, workerSpan *chromeEvent
	for i, ev := range events {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[argStr(ev, "name")] = ev.Pid
		case ev.Ph == "X" && ev.Name == "rpc "+ts.URL:
			rpc = &events[i]
		case ev.Ph == "X" && ev.Name == "exec "+k.Name:
			workerSpan = &events[i]
		}
	}
	if procs["pka"] == 0 || procs["worker-a"] == 0 {
		t.Fatalf("merged trace names processes %v, want both pka and worker-a", procs)
	}
	if rpc == nil || workerSpan == nil {
		t.Fatalf("missing spans: rpc=%v worker=%v\n%s", rpc, workerSpan, buf.String())
	}
	if workerSpan.Pid != procs["worker-a"] {
		t.Fatalf("worker span on pid %d, want %d", workerSpan.Pid, procs["worker-a"])
	}

	// One trace ID end to end, and parent/child linkage across the
	// process boundary: root -> dispatcher RPC span -> worker exec span.
	if got := argStr(*rpc, "trace_id"); got != root.TraceID {
		t.Errorf("rpc trace_id %s, want %s", got, root.TraceID)
	}
	if got := argStr(*workerSpan, "trace_id"); got != root.TraceID {
		t.Errorf("worker trace_id %s, want %s", got, root.TraceID)
	}
	if got := argStr(*rpc, "parent_id"); got != root.SpanID {
		t.Errorf("rpc parent_id %s, want root span %s", got, root.SpanID)
	}
	childID := argStr(*rpc, "span_id")
	if childID == "" || childID == root.SpanID {
		t.Fatalf("rpc span_id %q not a fresh child", childID)
	}
	if got := argStr(*workerSpan, "parent_id"); got != childID {
		t.Errorf("worker parent_id %s, want dispatcher child span %s", got, childID)
	}
	if tier := argStr(*workerSpan, "tier"); tier != "sim" {
		t.Errorf("worker tier %q, want sim (no cache on this worker)", tier)
	}
}

// TestUntracedRequestShipsNoSpans pins that the span fields stay empty —
// and the response bytes unchanged — when no traceparent is sent.
func TestUntracedRequestShipsNoSpans(t *testing.T) {
	srv := remote.NewServer(sampling.NewExec(nil, nil), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	d := remote.NewDispatcher(remote.DispatcherOptions{Workers: []string{ts.URL}})
	dev := gpu.VoltaV100()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	k := w.Kernel(0)
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	key := sampling.TaskKey(dev, &k, task)

	// A RemoteObs without a tracer or valid context must not turn tracing
	// on; it still collects worker identity.
	ro := &sampling.RemoteObs{}
	if _, ok := d.ExecTask(key, dev, &k, task, 100, ro); !ok {
		t.Fatal("dispatch failed")
	}
	if ro.Worker != ts.URL {
		t.Fatalf("worker identity %q not recorded", ro.Worker)
	}
}
