// Package remote is the PKA study engine's scale-out execution tier: a
// worker daemon (cmd/pkad) that serves kernel-task execution over a
// minimal HTTP/JSON protocol, and a client-side Dispatcher that plugs into
// the sampling.Exec ladder between the disk artifact cache and the fresh
// local simulator.
//
// The protocol leans entirely on the purity property the task layer
// established: a task outcome is a function of (device, kernel features,
// task spec) and nothing else, and the content key fixes the encoding
// version. That makes the tier free to be sloppy about delivery — requests
// can be hedged, duplicated, retried on another worker, or abandoned to
// the local simulator — without ever changing a study's results. Workers
// persist outcomes in the same content-addressed artifact store the client
// uses (same SHA-256 keys, same 33-byte payload), so a fleet pointed at a
// shared directory warms one cache.
//
// When workers have private disks instead, the sharded fleet cache makes
// them behave like one: a consistent-hash ring (artifact.Ring) assigns
// every content key a small owner set among the workers, clients and
// workers replicate outcomes to the owners over CachePathPrefix, and the
// ShardClient answers "who owns this key" locally and peer-GETs owners
// (primary first, then replicas) before the Exec ladder falls back to
// dispatching or simulating.
package remote

import (
	"fmt"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/sampling"
	"pka/internal/trace"
)

// Protocol endpoints and limits.
const (
	// ExecPath executes one kernel task (POST, JSON body).
	ExecPath = "/v1/exec"
	// HealthPath reports worker occupancy and cache statistics (GET).
	HealthPath = "/v1/health"
	// SpansPath drains the worker's parked span buffer (GET) — spans from
	// requests whose response never reached the client (hedged losers,
	// cancelled RPCs) wait here instead of vanishing.
	SpansPath = "/debug/spans"
	// MetricsPath serves the worker's Prometheus exposition (GET) when the
	// daemon runs with an observer.
	MetricsPath = "/metrics"
	// CachePathPrefix serves the sharded fleet cache's peer traffic. GET
	// /v1/cache/<key> returns the raw artifact payload stored under the
	// content key (404 on miss); PUT stores the request body under it.
	// Both are pure cache operations — a peer GET can never trigger
	// execution on the serving worker, which is what makes the shard tier
	// loop-free by construction.
	CachePathPrefix = "/v1/cache/"
	// TraceparentHeader carries the W3C-style trace context on exec
	// requests; absent or malformed means "not traced".
	TraceparentHeader = "traceparent"
	// MaxRequestBytes bounds an exec request body. A kernel descriptor plus
	// device config is a few hundred bytes; anything near the limit is
	// garbage, not a bigger kernel.
	MaxRequestBytes = 1 << 20
	// MaxCachePayloadBytes bounds a peer cache PUT body. Kernel outcomes
	// are 33 bytes; the slack leaves room for payload growth without a
	// protocol change.
	MaxCachePayloadBytes = 1 << 12
)

// ExecRequest asks a worker to execute one kernel task. Key is the
// client-computed content key; the worker recomputes it from the decoded
// fields and rejects on mismatch, which turns silent schema drift between
// client and worker builds into an immediate, observable error instead of
// a poisoned shared cache.
type ExecRequest struct {
	Key    string              `json:"key"`
	Device gpu.Device          `json:"device"`
	Kernel trace.KernelDesc    `json:"kernel"`
	Task   sampling.KernelTask `json:"task"`
}

// ExecResponse carries one task outcome back. Outcome is the
// sampling.EncodeOutcome payload (base64 inside JSON), the exact bytes the
// artifact store holds under the request key. On traced requests the
// worker also ships the spans it recorded (timestamps in wall-clock
// microseconds) so the client can merge them into one cross-process
// trace; untraced requests leave the span fields empty and the response
// bytes unchanged.
type ExecResponse struct {
	Outcome      []byte            `json:"outcome"`
	Process      string            `json:"process,omitempty"`
	Spans        []obs.EventRecord `json:"spans,omitempty"`
	SpansDropped int64             `json:"spans_dropped,omitempty"`
}

// Health is the worker's self-report.
type Health struct {
	Capacity    int           `json:"capacity"`
	InFlight    int           `json:"in_flight"`
	Served      uint64        `json:"served"`
	BusyRejects uint64        `json:"busy_rejects"`
	Failed      uint64        `json:"failed"`
	Cache       CacheHealth   `json:"cache"`
	Ring        *RingHealth   `json:"ring,omitempty"`
	Process     string        `json:"process,omitempty"`
	Build       obs.BuildInfo `json:"build"`
}

// RingHealth is the worker's view of its shard-ring membership: how much
// of the key space it primarily owns, which peers replicate that range,
// and how much peer cache traffic it has served. Present only when the
// daemon runs with -ring.
type RingHealth struct {
	Members       int      `json:"members"`
	Replicas      int      `json:"replicas"`
	OwnedFraction float64  `json:"owned_fraction"`
	ReplicaPeers  []string `json:"replica_peers"`
	PeerGets      uint64   `json:"peer_gets"`
	PeerPuts      uint64   `json:"peer_puts"`
}

// CacheHealth is the worker-local artifact store's counters (zero when the
// worker runs without a store).
type CacheHealth struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Writes  uint64 `json:"writes"`
	Entries int64  `json:"entries"`
}

// Validate checks an ExecRequest for the errors worth a distinct message.
func (r *ExecRequest) Validate() error {
	if r.Key == "" {
		return fmt.Errorf("remote: request missing key")
	}
	if want := sampling.TaskKey(r.Device, &r.Kernel, r.Task); want != r.Key {
		return fmt.Errorf("remote: key mismatch (client %s, worker derives %s): client and worker builds disagree on task semantics", r.Key, want)
	}
	return nil
}
