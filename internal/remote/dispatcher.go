package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/sampling"
	"pka/internal/trace"
)

// DispatcherOptions configures a Dispatcher. Zero values take the listed
// defaults.
type DispatcherOptions struct {
	// Workers is the pool's base URLs (e.g. "http://10.0.0.7:9377"). An
	// empty pool is legal: every task falls back to local simulation.
	Workers []string
	// CapPerWorker bounds in-flight requests per worker (default 4). It
	// should not exceed the worker's -worker-cap, or the surplus is spent
	// on 429 round trips.
	CapPerWorker int
	// HedgeAfter is the floor of the hedge delay (default 100ms). The
	// effective delay is max(HedgeAfter, observed p95 RPC latency), so
	// hedges chase stragglers, not the steady state.
	HedgeAfter time.Duration
	// Timeout caps one RPC round trip (default 30s).
	Timeout time.Duration
	// BreakAfter is the consecutive-failure count that opens a worker's
	// circuit breaker (default 3).
	BreakAfter int
	// Cooldown is how long an open breaker excludes its worker before the
	// next trial request (default 5s).
	Cooldown time.Duration
	// Metrics receives the pka_remote_* counters (nil records nothing).
	Metrics *obs.RemoteMetrics
	// Client overrides the HTTP client (tests); nil builds a pooled one.
	Client *http.Client
	// IDs generates child span IDs for traced tasks; nil builds a
	// crypto-seeded one. Tests install a seeded generator.
	IDs *obs.IDGen
}

// latWindow is the ring of recent successful RPC latencies the hedge
// quantile is computed over.
const latWindow = 256

// workerState is the dispatcher's book-keeping for one worker.
type workerState struct {
	url         string
	inflight    int
	pendingCost int64 // sum of outstanding requests' warp-instruction costs
	consecFails int
	brokenUntil time.Time
	sent        uint64
	fails       uint64
	busy        uint64
}

// Dispatcher places kernel tasks on a worker pool. It implements
// sampling.RemoteTier and is safe for concurrent use.
//
// Placement is weighted least-loaded: among workers that are not
// circuit-broken and have in-flight headroom, it picks the one with the
// smallest outstanding warp-instruction cost — the same estimate the local
// scheduler prioritizes by — so one slow giant task does not queue ahead
// of a dozen small ones on the same worker. Slow requests are hedged to a
// second worker after a latency quantile; the first result wins and the
// loser is cancelled. Workers that fail repeatedly are circuit-broken for
// a cooldown. When nothing is placeable the task reports ok=false and the
// Exec ladder runs it locally — degradation is always graceful, never an
// error.
type Dispatcher struct {
	capPer     int
	hedgeFloor time.Duration
	timeout    time.Duration
	breakAfter int
	cooldown   time.Duration
	m          *obs.RemoteMetrics
	client     *http.Client
	now        func() time.Time
	ids        *obs.IDGen

	mu      sync.Mutex
	workers []*workerState
	lat     [latWindow]float64 // seconds
	latN    int                // total successes recorded (ring cursor = latN % latWindow)
}

// NewDispatcher builds a dispatcher over opts.Workers.
func NewDispatcher(opts DispatcherOptions) *Dispatcher {
	if opts.CapPerWorker <= 0 {
		opts.CapPerWorker = 4
	}
	if opts.HedgeAfter <= 0 {
		opts.HedgeAfter = 100 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.BreakAfter <= 0 {
		opts.BreakAfter = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.Metrics == nil {
		opts.Metrics = &obs.RemoteMetrics{} // nil-safe instruments
	}
	if opts.IDs == nil {
		opts.IDs = obs.NewIDGen(0)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 2 * opts.CapPerWorker,
		}}
	}
	d := &Dispatcher{
		capPer:     opts.CapPerWorker,
		hedgeFloor: opts.HedgeAfter,
		timeout:    opts.Timeout,
		breakAfter: opts.BreakAfter,
		cooldown:   opts.Cooldown,
		m:          opts.Metrics,
		client:     client,
		now:        time.Now,
		ids:        opts.IDs,
	}
	for _, u := range opts.Workers {
		if u != "" {
			d.workers = append(d.workers, &workerState{url: u})
		}
	}
	return d
}

// Workers returns the pool size.
func (d *Dispatcher) Workers() int { return len(d.workers) }

// Stats snapshots per-worker dispatcher state for the obs pull pattern.
func (d *Dispatcher) Stats() []obs.RemoteWorkerStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	out := make([]obs.RemoteWorkerStats, len(d.workers))
	for i, w := range d.workers {
		out[i] = obs.RemoteWorkerStats{
			URL:         w.url,
			InFlight:    w.inflight,
			PendingCost: w.pendingCost,
			Sent:        w.sent,
			Failures:    w.fails,
			Busy:        w.busy,
			BreakerOpen: w.brokenUntil.After(now),
		}
	}
	return out
}

// reserve picks the eligible worker with the least outstanding cost (ties
// to the lowest index), reserves an in-flight slot on it, and marks it
// tried so hedges and retries of the same task spread across the pool. It
// returns nil when no worker is placeable, plus how many untried workers
// an open circuit breaker excluded from this pick (provenance records the
// count per task).
func (d *Dispatcher) reserve(tried map[int]bool, cost int64) (*workerState, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	best := -1
	skips := 0
	for i, w := range d.workers {
		if tried[i] || w.inflight >= d.capPer {
			continue
		}
		if w.brokenUntil.After(now) {
			skips++
			continue
		}
		if best < 0 || w.pendingCost < d.workers[best].pendingCost {
			best = i
		}
	}
	if best < 0 {
		return nil, skips
	}
	tried[best] = true
	w := d.workers[best]
	w.inflight++
	w.pendingCost += cost
	w.sent++
	return w, skips
}

func (d *Dispatcher) release(w *workerState, cost int64) {
	d.mu.Lock()
	w.inflight--
	w.pendingCost -= cost
	d.mu.Unlock()
}

// hedgeDelay returns max(floor, p95 of the recent-success latency ring).
func (d *Dispatcher) hedgeDelay() time.Duration {
	d.mu.Lock()
	n := d.latN
	if n > latWindow {
		n = latWindow
	}
	samples := append([]float64(nil), d.lat[:n]...)
	d.mu.Unlock()
	if len(samples) < 8 {
		return d.hedgeFloor
	}
	sort.Float64s(samples)
	p95 := time.Duration(samples[(len(samples)*95)/100] * float64(time.Second))
	if p95 > d.hedgeFloor {
		return p95
	}
	return d.hedgeFloor
}

type rpcStatus int

const (
	rpcOK rpcStatus = iota
	rpcBusy
	rpcFailed
)

// rpc performs one exec round trip against w and settles the worker's
// breaker state. The in-flight reservation made by reserve is released
// here, whatever the outcome. On traced tasks (ro carries a tracer and a
// valid trace context) each RPC gets a child span ID, propagates it in
// the traceparent header, records a dispatcher-side span, and merges the
// worker's shipped spans into the tracer — all observe-only. rpc runs on
// attempt goroutines, so it only touches the thread-safe tracer, never
// ro's report fields (the single-threaded race loop owns those).
func (d *Dispatcher) rpc(ctx context.Context, w *workerState, body []byte, cost int64, ro *sampling.RemoteObs, hedged bool) (sampling.KernelOutcome, rpcStatus) {
	defer d.release(w, cost)
	d.m.RPCs.Inc()
	var tp string
	var span *obs.Span
	if ro != nil && ro.Tracer != nil && ro.Trace.Valid() {
		g := ro.IDs
		if g == nil {
			g = d.ids
		}
		child := ro.Trace.Child(g)
		tp = child.Traceparent()
		span = ro.Tracer.Track("dispatch:"+w.url).Start("rpc "+w.url,
			obs.Arg{Key: "trace_id", Val: child.TraceID},
			obs.Arg{Key: "parent_id", Val: ro.Trace.SpanID},
			obs.Arg{Key: "span_id", Val: child.SpanID},
			obs.Arg{Key: "hedge", Val: hedged},
		)
	}
	start := d.now()
	oc, er, st := d.roundTrip(ctx, w.url, body, tp)
	if span != nil {
		span.Arg("status", int(st)).End()
	}
	if st == rpcOK && ro != nil && ro.Tracer != nil && er.Process != "" {
		ro.Tracer.AddProcess(obs.ProcessTrace{
			Process: er.Process, Events: er.Spans, Dropped: er.SpansDropped,
		})
	}
	switch st {
	case rpcOK:
		d.m.RPCSuccess.Inc()
		sec := d.now().Sub(start).Seconds()
		d.m.RPCLatency.Observe(sec)
		d.mu.Lock()
		d.lat[d.latN%latWindow] = sec
		d.latN++
		w.consecFails = 0
		d.mu.Unlock()
	case rpcBusy:
		// The worker is healthy, just full: count it, but a full worker
		// must not trip the breaker or the pool collapses under load.
		d.m.Busy.Inc()
		d.mu.Lock()
		w.busy++
		d.mu.Unlock()
	case rpcFailed:
		d.m.RPCFailures.Inc()
		d.mu.Lock()
		w.fails++
		w.consecFails++
		if w.consecFails >= d.breakAfter {
			w.brokenUntil = d.now().Add(d.cooldown)
			w.consecFails = 0
			d.m.BreakerOpens.Inc()
		}
		d.mu.Unlock()
	}
	return oc, st
}

// roundTrip is the bare HTTP exchange: anything other than a 200 carrying
// a decodable outcome under the expected key is a failure (except 429,
// which is the distinct "busy" signal). A non-empty traceparent travels in
// the request header.
func (d *Dispatcher) roundTrip(ctx context.Context, base string, body []byte, traceparent string) (sampling.KernelOutcome, ExecResponse, rpcStatus) {
	ctx, cancel := context.WithTimeout(ctx, d.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+ExecPath, bytes.NewReader(body))
	if err != nil {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcFailed
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(TraceparentHeader, traceparent)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcFailed
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcBusy
	}
	if resp.StatusCode != http.StatusOK {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcFailed
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes))
	if err != nil {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcFailed
	}
	var er ExecResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcFailed
	}
	oc, err := sampling.DecodeOutcome(er.Outcome)
	if err != nil {
		return sampling.KernelOutcome{}, ExecResponse{}, rpcFailed
	}
	return oc, er, rpcOK
}

type attemptResult struct {
	oc    sampling.KernelOutcome
	st    rpcStatus
	hedge bool
	url   string
}

// ExecTask implements sampling.RemoteTier. Each task runs as a sequence of
// "waves": a primary RPC to the least-loaded eligible worker, plus — if
// the primary outlives the hedge delay — one hedged duplicate on another
// untried worker, first valid result winning and the loser cancelled.
// Failed waves retry on remaining workers until the pool is exhausted;
// only then does the task fall back to the caller's local simulator. ro
// (nil when nothing observes) collects the winning worker's identity and
// hedge/retry/breaker-skip counts, and carries the trace context the RPCs
// propagate — all writes to it happen on this goroutine.
func (d *Dispatcher) ExecTask(key string, dev gpu.Device, k *trace.KernelDesc, task sampling.KernelTask, cost int64, ro *sampling.RemoteObs) (sampling.KernelOutcome, bool) {
	if d == nil {
		// A typed-nil Dispatcher installed as a RemoteTier behaves like no
		// remote tier at all.
		return sampling.KernelOutcome{}, false
	}
	if len(d.workers) == 0 {
		d.m.FallbackLocal.Inc()
		return sampling.KernelOutcome{}, false
	}
	body, err := json.Marshal(ExecRequest{Key: key, Device: dev, Kernel: *k, Task: task})
	if err != nil {
		d.m.FallbackLocal.Inc()
		return sampling.KernelOutcome{}, false
	}
	tried := make(map[int]bool, len(d.workers))
	waves := 0
	for {
		w, skips := d.reserve(tried, cost)
		if ro != nil {
			ro.BreakerSkips += skips
		}
		if w == nil {
			break
		}
		waves++
		if ro != nil {
			ro.Retries = waves - 1
		}
		if oc, ok := d.race(w, tried, body, cost, ro); ok {
			d.m.Tasks.Inc()
			return oc, true
		}
	}
	d.m.FallbackLocal.Inc()
	return sampling.KernelOutcome{}, false
}

// race runs one wave: the already-reserved primary w, hedged once onto a
// different worker if w is slow. It returns ok=false only when every RPC
// it launched has settled without a valid outcome. race runs on the
// ExecTask goroutine, so it is the single writer of ro's report fields.
func (d *Dispatcher) race(w *workerState, tried map[int]bool, body []byte, cost int64, ro *sampling.RemoteObs) (sampling.KernelOutcome, bool) {
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	// Buffered to the maximum attempts in flight, so a losing RPC's send
	// never blocks after the winner returns.
	ch := make(chan attemptResult, 2)
	go func() {
		oc, st := d.rpc(ctx, w, body, cost, ro, false)
		ch <- attemptResult{oc: oc, st: st, url: w.url}
	}()
	hedge := time.NewTimer(d.hedgeDelay())
	defer hedge.Stop()
	outstanding := 1
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.st == rpcOK {
				if r.hedge {
					d.m.HedgeWins.Inc()
				}
				if ro != nil {
					ro.Worker = r.url
				}
				return r.oc, true
			}
			if outstanding == 0 {
				return sampling.KernelOutcome{}, false
			}
		case <-hedge.C:
			// The primary has outlived the p95 of recent successes: launch
			// one duplicate on a different worker. The timer fires once, so
			// a wave is at most two RPCs wide.
			w2, skips := d.reserve(tried, cost)
			if ro != nil {
				ro.BreakerSkips += skips
			}
			if w2 == nil {
				continue
			}
			d.m.Hedges.Inc()
			if ro != nil {
				ro.Hedges++
			}
			outstanding++
			go func() {
				oc, st := d.rpc(ctx, w2, body, cost, ro, true)
				ch <- attemptResult{oc: oc, st: st, hedge: true, url: w2.url}
			}()
		}
	}
}
