package remote_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pka/internal/artifact"
	"pka/internal/experiments"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/remote"
	"pka/internal/sampling"
	"pka/internal/workload"
)

// worker spins up one in-process pkad-equivalent over its own artifact
// store, optionally wrapped by mw (fault injection).
func worker(t *testing.T, dir string, mw func(http.Handler) http.Handler) (*httptest.Server, *artifact.Store) {
	t.Helper()
	var st *artifact.Store
	if dir != "" {
		var err error
		st, err = artifact.Open(dir, artifact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
	}
	h := remote.NewServer(sampling.NewExec(nil, st), 4).Handler()
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, st
}

func remoteStudy(t *testing.T, d *remote.Dispatcher) *experiments.Study {
	t.Helper()
	s := experiments.New()
	s.Cfg.Parallelism = 4
	var ws []*workload.Workload
	for _, name := range []string{"Rodinia/gauss_mat4", "Rodinia/bfs4096"} {
		w := workload.Find(name)
		if w == nil {
			t.Fatalf("missing study workload %s", name)
		}
		ws = append(ws, w)
	}
	s.SetWorkloads(ws)
	if d != nil {
		s.SetRemote(d)
	}
	return s
}

func render(t *testing.T, s *experiments.Study) string {
	t.Helper()
	var sb strings.Builder
	c6, t6, err := experiments.Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(c6.String())
	sb.WriteString(t6.String())
	tab4, err := experiments.Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(tab4.String())
	return sb.String()
}

// TestRemoteDeterminism is the scale-out golden test: a serial local
// study, a study dispatched to one healthy worker, and a study dispatched
// to a degenerate three-worker pool — one healthy, one that fails every
// third request, one killed mid-study — must render byte-identical
// figures. The remote tier may only change where cycles are spent.
func TestRemoteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the study pipeline three times")
	}
	serial := render(t, remoteStudy(t, nil))

	// One healthy worker.
	o1 := obs.NewObserver()
	ts1, st1 := worker(t, t.TempDir(), nil)
	d1 := remote.NewDispatcher(remote.DispatcherOptions{
		Workers: []string{ts1.URL},
		Metrics: o1.RemoteMetrics(),
	})
	one := render(t, remoteStudy(t, d1))
	if one != serial {
		t.Errorf("1-worker output diverges from serial:\n--- serial ---\n%s\n--- remote ---\n%s", serial, one)
	}
	if got := o1.RemoteMetrics().Tasks.Value(); got == 0 {
		t.Error("1-worker study served no tasks remotely — the tier never engaged")
	}
	if st1.Stats().Writes == 0 {
		t.Error("worker persisted nothing to its artifact store")
	}

	// Three workers: healthy, flaky (every 3rd exec request 500s), and one
	// killed after its 4th request — mid-study worker death.
	o3 := obs.NewObserver()
	healthy, _ := worker(t, "", nil)
	var flakyN atomic.Int64
	flaky, _ := worker(t, "", func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if flakyN.Add(1)%3 == 0 {
				http.Error(w, "injected fault", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	dying, _ := worker(t, "", nil)
	d3 := remote.NewDispatcher(remote.DispatcherOptions{
		Workers:    []string{healthy.URL, flaky.URL, dying.URL},
		HedgeAfter: 25 * time.Millisecond,
		BreakAfter: 2,
		Cooldown:   100 * time.Millisecond,
		Metrics:    o3.RemoteMetrics(),
	})
	// Kill the dying worker after a few tasks land anywhere in the pool.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for i := 0; i < 200; i++ {
			if o3.RemoteMetrics().RPCs.Value() >= 4 {
				dying.CloseClientConnections()
				dying.Close()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	three := render(t, remoteStudy(t, d3))
	<-killed
	if three != serial {
		t.Errorf("3-worker (flaky + killed) output diverges from serial:\n--- serial ---\n%s\n--- degraded ---\n%s", serial, three)
	}
	m := o3.RemoteMetrics()
	if m.Tasks.Value() == 0 {
		t.Error("3-worker study served no tasks remotely")
	}
	t.Logf("3-worker degraded pool: rpcs=%d success=%d failures=%d hedges=%d breaker_opens=%d fallback_local=%d",
		m.RPCs.Value(), m.RPCSuccess.Value(), m.RPCFailures.Value(),
		m.Hedges.Value(), m.BreakerOpens.Value(), m.FallbackLocal.Value())
}

func testKernelRequest(t *testing.T) ([]byte, string) {
	t.Helper()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("missing study workload")
	}
	dev := gpu.VoltaV100()
	k := w.Gen(0)
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	key := sampling.TaskKey(dev, &k, task)
	body, err := json.Marshal(remote.ExecRequest{Key: key, Device: dev, Kernel: k, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	return body, key
}

// TestServerRejectsKeyMismatch: a client whose key derivation disagrees
// with the worker's must get a 400, not a silently cache-poisoning 200.
func TestServerRejectsKeyMismatch(t *testing.T) {
	ts, _ := worker(t, "", nil)
	body, _ := testKernelRequest(t)
	bad := strings.Replace(string(body), `"key":"`, `"key":"00`, 1)
	resp, err := http.Post(ts.URL+remote.ExecPath, "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for a key mismatch", resp.StatusCode)
	}
}

// TestServerExecServes: the happy path returns the exact EncodeOutcome
// payload for a locally computed outcome.
func TestServerExecServes(t *testing.T) {
	ts, _ := worker(t, "", nil)
	body, _ := testKernelRequest(t)
	resp, err := http.Post(ts.URL+remote.ExecPath, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var er remote.ExecResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	got, err := sampling.DecodeOutcome(er.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Find("Rodinia/gauss_mat4")
	k := w.Gen(0)
	want, err := (*sampling.Exec)(nil).RunKernelTask(gpu.VoltaV100(), &k, sampling.KernelTask{Mode: sampling.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("remote outcome %+v != local %+v", got, want)
	}
}

// TestDispatcherEmptyPool: no workers means immediate, counted fallback.
func TestDispatcherEmptyPool(t *testing.T) {
	o := obs.NewObserver()
	d := remote.NewDispatcher(remote.DispatcherOptions{Metrics: o.RemoteMetrics()})
	w := workload.Find("Rodinia/gauss_mat4")
	k := w.Gen(0)
	dev := gpu.VoltaV100()
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	if _, ok := d.ExecTask(sampling.TaskKey(dev, &k, task), dev, &k, task, 1, nil); ok {
		t.Fatal("empty pool claimed to execute a task")
	}
	if o.RemoteMetrics().FallbackLocal.Value() != 1 {
		t.Fatal("fallback not counted")
	}
}

// TestDispatcherMalformedResponse: a worker speaking garbage is a counted
// failure and a graceful fallback, never an error or a bogus outcome.
func TestDispatcherMalformedResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"outcome":"AAA`)) // truncated JSON
	}))
	t.Cleanup(ts.Close)
	o := obs.NewObserver()
	d := remote.NewDispatcher(remote.DispatcherOptions{Workers: []string{ts.URL}, Metrics: o.RemoteMetrics()})
	w := workload.Find("Rodinia/gauss_mat4")
	k := w.Gen(0)
	dev := gpu.VoltaV100()
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	if _, ok := d.ExecTask(sampling.TaskKey(dev, &k, task), dev, &k, task, 1, nil); ok {
		t.Fatal("malformed response accepted as an outcome")
	}
	m := o.RemoteMetrics()
	if m.RPCFailures.Value() == 0 {
		t.Fatal("malformed response not counted as an RPC failure")
	}
	if m.FallbackLocal.Value() != 1 {
		t.Fatal("fallback not counted")
	}
}

// TestDispatcherBusyDoesNotTripBreaker: 429 is back-pressure, not failure.
func TestDispatcherBusyDoesNotTripBreaker(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "full", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	o := obs.NewObserver()
	d := remote.NewDispatcher(remote.DispatcherOptions{Workers: []string{ts.URL}, BreakAfter: 2, Metrics: o.RemoteMetrics()})
	w := workload.Find("Rodinia/gauss_mat4")
	k := w.Gen(0)
	dev := gpu.VoltaV100()
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	key := sampling.TaskKey(dev, &k, task)
	for i := 0; i < 5; i++ {
		if _, ok := d.ExecTask(key, dev, &k, task, 1, nil); ok {
			t.Fatal("busy worker produced an outcome")
		}
	}
	m := o.RemoteMetrics()
	if m.Busy.Value() != 5 {
		t.Fatalf("busy count = %d, want 5", m.Busy.Value())
	}
	if m.BreakerOpens.Value() != 0 {
		t.Fatal("busy rejections tripped the breaker")
	}
	if m.RPCFailures.Value() != 0 {
		t.Fatal("busy rejections counted as failures")
	}
}

// TestDispatcherBreaker: a dead worker is excluded after BreakAfter
// consecutive failures and probed again only after the cooldown.
func TestDispatcherBreaker(t *testing.T) {
	o := obs.NewObserver()
	d := remote.NewDispatcher(remote.DispatcherOptions{
		Workers:    []string{"http://127.0.0.1:1"}, // reserved port: instant connection refused
		BreakAfter: 2,
		Cooldown:   250 * time.Millisecond,
		Timeout:    2 * time.Second,
		Metrics:    o.RemoteMetrics(),
	})
	w := workload.Find("Rodinia/gauss_mat4")
	k := w.Gen(0)
	dev := gpu.VoltaV100()
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	key := sampling.TaskKey(dev, &k, task)
	for i := 0; i < 4; i++ {
		d.ExecTask(key, dev, &k, task, 1, nil)
	}
	m := o.RemoteMetrics()
	if m.BreakerOpens.Value() == 0 {
		t.Fatal("breaker never opened on a dead worker")
	}
	rpcsWhenOpen := m.RPCs.Value()
	if rpcsWhenOpen >= 4 {
		t.Fatalf("breaker did not exclude the dead worker: %d RPCs for 4 tasks", rpcsWhenOpen)
	}
	st := d.Stats()
	if len(st) != 1 || !st[0].BreakerOpen {
		t.Fatalf("Stats does not report the open breaker: %+v", st)
	}
	// Broken worker -> no RPC at all, immediate fallback.
	d.ExecTask(key, dev, &k, task, 1, nil)
	if m.RPCs.Value() != rpcsWhenOpen {
		t.Fatal("dispatcher sent an RPC while the breaker was open")
	}
	// After the cooldown the worker is probed again.
	time.Sleep(300 * time.Millisecond)
	d.ExecTask(key, dev, &k, task, 1, nil)
	if m.RPCs.Value() == rpcsWhenOpen {
		t.Fatal("breaker never half-opened after the cooldown")
	}
}

// TestDispatcherHedgeWins: when the least-loaded worker (index 0 on a
// fresh pool) sits on a request past the hedge delay, the duplicate on the
// second worker must win and the task must still succeed.
func TestDispatcherHedgeWins(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read starts and
		// r.Context() is cancelled when the dispatcher abandons the loser.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		http.Error(w, "too late", http.StatusInternalServerError)
	}))
	t.Cleanup(slow.Close)
	// Cleanups run LIFO: release the handler before slow.Close waits on it.
	t.Cleanup(func() { close(release) })
	fast, _ := worker(t, "", nil)
	o := obs.NewObserver()
	d := remote.NewDispatcher(remote.DispatcherOptions{
		Workers:    []string{slow.URL, fast.URL}, // ties break to index 0: the stuck worker gets the primary
		HedgeAfter: 20 * time.Millisecond,
		Metrics:    o.RemoteMetrics(),
	})
	w := workload.Find("Rodinia/gauss_mat4")
	k := w.Gen(0)
	dev := gpu.VoltaV100()
	task := sampling.KernelTask{Mode: sampling.ModeFull}
	oc, ok := d.ExecTask(sampling.TaskKey(dev, &k, task), dev, &k, task, 1, nil)
	if !ok {
		t.Fatal("hedged task failed")
	}
	if oc.ProjCycles <= 0 {
		t.Fatalf("hedge returned an empty outcome: %+v", oc)
	}
	m := o.RemoteMetrics()
	if m.Hedges.Value() != 1 {
		t.Fatalf("hedges = %d, want 1", m.Hedges.Value())
	}
	if m.HedgeWins.Value() != 1 {
		t.Fatalf("hedge wins = %d, want 1", m.HedgeWins.Value())
	}
}

// TestSharedCacheTier: two workers over the same artifact directory form
// one cache — work done through worker A is served from disk by worker B.
func TestSharedCacheTier(t *testing.T) {
	dir := t.TempDir()
	a, storeA := worker(t, dir, nil)
	body, _ := testKernelRequest(t)
	resp, err := http.Post(a.URL+remote.ExecPath, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker A status %d", resp.StatusCode)
	}
	if storeA.Stats().Writes == 0 {
		t.Fatal("worker A did not persist the outcome")
	}

	b, storeB := worker(t, dir, nil)
	resp, err = http.Post(b.URL+remote.ExecPath, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker B status %d", resp.StatusCode)
	}
	st := storeB.Stats()
	if st.Hits == 0 {
		t.Fatal("worker B recomputed an outcome worker A already persisted in the shared store")
	}
	if st.Writes != 0 {
		t.Fatalf("worker B wrote %d entries that were already in the shared store", st.Writes)
	}
}
