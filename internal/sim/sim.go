// Package sim implements a from-scratch cycle-level GPU simulator in the
// spirit of Accel-Sim: streaming multiprocessors with per-scheduler warp
// issue, scoreboarded warp latencies, set-associative L1 caches per SM, a
// shared L2, a bandwidth-constrained DRAM channel, and a thread-block
// dispatcher. It executes the synthetic warp instruction streams derived
// from trace.KernelDesc and exposes per-cycle telemetry so that online
// policies — Principal Kernel Projection in particular — can observe the
// instantaneous IPC signal and stop simulation once it stabilizes.
//
// The model is single-threaded and deterministic: the same kernel on the
// same device always produces the same cycle count. The study layer runs
// every kernel on a fresh Simulator (cold caches), which makes each
// result a pure function of (device, kernel, options) — the property the
// kernel-task scheduler and the content-addressed artifact cache in
// internal/sampling and internal/artifact are built on. Code that reuses
// one Simulator across kernels (cache state carries over) must not be
// cached under those content keys — unless it calls Flush between
// kernels, which restores the cold-cache state of a fresh Simulator.
package sim

import (
	"fmt"
	"math"
	"math/bits"

	"pka/internal/gpu"
	"pka/internal/mem"
	"pka/internal/obs"
	"pka/internal/trace"
)

// Instruction class codes used in synthetic warp streams.
const (
	opCompute = iota
	opGlobalLoad
	opGlobalStore
	opLocalLoad
	opSharedLoad
	opSharedStore
	opAtomic
	opTensor
)

// Memory accesses are modeled at 32-byte sector granularity.
const (
	sectorBytes      = 32
	sectorShiftBytes = 5 // log2(sectorBytes)
)

// Telemetry is the per-cycle view handed to a Controller. Fields are
// cumulative unless stated otherwise.
type Telemetry struct {
	Cycle           int64
	IdleGap         int64   // cycles skipped since the previous tick (no warp was ready)
	ThreadInstrs    float64 // cumulative executed thread instructions
	WarpInstrs      int64   // cumulative issued warp instructions
	IssuedThisCycle float64 // thread instructions issued on this cycle
	BlocksCompleted int
	BlocksTotal     int
	WaveSize        int // blocks that fill the device at this kernel's occupancy
}

// Controller observes simulation progress once per active cycle and may
// stop the kernel early by returning true. PKP is a Controller; so is the
// first-N-instructions baseline.
type Controller interface {
	Tick(t *Telemetry) (stop bool)
}

// ControllerFunc adapts a function to the Controller interface.
type ControllerFunc func(t *Telemetry) bool

// Tick implements Controller.
func (f ControllerFunc) Tick(t *Telemetry) bool { return f(t) }

// IPCSample is one bucket of the optional IPC/L2/DRAM trace.
type IPCSample struct {
	Cycle    int64
	IPC      float64 // thread instructions per cycle over the bucket
	L2Miss   float64 // cumulative L2 miss rate at bucket end
	DRAMUtil float64 // cumulative DRAM utilization at bucket end
}

// KernelResult aggregates one kernel simulation.
type KernelResult struct {
	Kernel     *trace.KernelDesc
	Cycles     int64
	WarpInstrs int64
	// ExpectedWarpInstrs is the full launch's dynamic warp-instruction
	// count (what WarpInstrs would reach if the run completed); truncation
	// policies project progress against it.
	ExpectedWarpInstrs int64
	ThreadInstrs       float64
	IPC                float64 // thread instructions per cycle
	L2MissRate         float64
	DRAMUtil           float64
	BlocksCompleted    int
	BlocksTotal        int
	WaveSize           int
	StoppedEarly       bool
	Trace              []IPCSample // populated when Options.TraceEvery > 0
}

// Options tunes a simulation run.
type Options struct {
	// Controller may stop the kernel early; nil runs to completion.
	Controller Controller
	// TraceEvery > 0 records an IPCSample every TraceEvery cycles.
	TraceEvery int64
	// MaxCycles caps runaway kernels. Zero applies DefaultMaxCycles.
	MaxCycles int64
	// Obs, when non-nil, receives one wall-clock span and one batch of
	// counter updates per kernel, emitted at kernel end. The cycle loop
	// itself is never touched, so enabling telemetry cannot perturb
	// determinism or the loop's zero-allocation guarantee.
	Obs *obs.SimObs
}

// DefaultMaxCycles bounds a single kernel simulation.
const DefaultMaxCycles = 200_000_000

// Simulator owns the device state. The L2 and DRAM persist across kernels
// within one Simulator (warm caches), while per-kernel statistics are
// isolated via ResetStats.
type Simulator struct {
	dev  gpu.Device
	l2   *mem.Cache
	dram *mem.DRAM
	l1   []*mem.Cache
	sms  []smState
}

type warpSlot struct {
	nextReady  int64
	pending    int64 // completion time of the older in-flight load (0 = none)
	instrLeft  int32
	patPos     int32
	active     bool
	cursor     uint64 // strided address cursor (in sectors)
	base       uint64 // strided base address
	rng        uint64 // per-warp xorshift state
	blockSlot  int32
	wakeNext   int32   // intrusive link in the timing wheel's bucket list
	threadsPer float64 // thread instructions per warp instruction
}

type blockSlotState struct {
	live      bool
	warpsLeft int
}

type smState struct {
	warps    []warpSlot
	blocks   []blockSlotState
	minReady int64
	resident int // live blocks
	rrPtr    int
	// Event-driven scheduler state (see sched.go): ready holds warps whose
	// stall has expired; sleeping warps sit either in the timing wheel
	// (wakes within wheelSize cycles — ALU, shared-memory, cache-hit
	// stalls) or in the wake heap (far wakes: DRAM and L2 round trips).
	ready     readySet
	wake      wakeHeap
	wheel     []int32 // wheelSize bucket heads (-1 = empty), linked via wakeNext
	wheelLive int     // warps currently in the wheel
	lastDrain int64   // cycle up to which wheel buckets have been emptied
}

// runCtx holds the per-kernel constants of the cycle loop, precomputed
// once per launch so the memory path does no repeated int/uint/float
// conversions, divisions by known powers of two, or modulo operations on
// power-of-two working sets.
type runCtx struct {
	l1Lat, l2Lat  int64
	lineBytes     int
	lineBytesU    uint64
	wsLines       uint64
	wsMask        uint64 // wsLines-1 when wsLines is a power of two, else 0
	sectorShift   uint   // log2(sectors per line)
	nSectors      int
	stridedThresh float64 // StridedFraction * 2^53, compared against rng>>11
}

// New creates a simulator for the given device.
func New(dev gpu.Device) *Simulator {
	s := &Simulator{
		dev:  dev,
		l2:   mem.NewCache(dev.L2SizeBytes, 16, dev.CacheLineBytes),
		dram: mem.NewDRAM(dev.BytesPerCycle(), dev.DRAMLatency),
		l1:   make([]*mem.Cache, dev.NumSMs),
		sms:  make([]smState, dev.NumSMs),
	}
	for i := range s.l1 {
		s.l1[i] = mem.NewCache(dev.L1SizeBytes, 8, dev.CacheLineBytes)
	}
	return s
}

// Device returns the simulated device configuration.
func (s *Simulator) Device() gpu.Device { return s.dev }

// Flush restores the simulator to the state of a freshly constructed one:
// all cache lines invalidated, statistics zeroed, and the DRAM pipe
// re-aligned to cycle zero. RunKernel already resets every other piece of
// per-kernel state at launch (SM arrays are zeroed, the wheel and heaps
// cleared), so after Flush a reused Simulator is observationally identical
// to sim.New(dev) — which is what lets the study layer pool simulators
// across kernel tasks without breaking the pure-function property the
// content-addressed cache keys rely on.
func (s *Simulator) Flush() {
	s.l2.Flush()
	for _, c := range s.l1 {
		c.Flush()
	}
	s.dram.ResetStats()
	s.dram.Rebase()
}

// buildPattern produces the kernel's per-thread instruction-class sequence,
// deterministically shuffled so memory operations interleave with compute
// the way compiled kernels do.
func buildPattern(k *trace.KernelDesc) []uint8 {
	m := k.Mix
	pattern := make([]uint8, 0, m.Total())
	appendN := func(op uint8, n int) {
		for i := 0; i < n; i++ {
			pattern = append(pattern, op)
		}
	}
	appendN(opCompute, m.Compute)
	appendN(opGlobalLoad, m.GlobalLoads)
	appendN(opGlobalStore, m.GlobalStores)
	appendN(opLocalLoad, m.LocalLoads)
	appendN(opSharedLoad, m.SharedLoads)
	appendN(opSharedStore, m.SharedStores)
	appendN(opAtomic, m.GlobalAtomics)
	appendN(opTensor, m.TensorOps)
	// Fisher-Yates with a per-kernel seed.
	st := k.Seed ^ 0xDEADBEEFCAFE
	next := func() uint64 {
		st ^= st << 13
		st ^= st >> 7
		st ^= st << 17
		return st
	}
	for i := len(pattern) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		pattern[i], pattern[j] = pattern[j], pattern[i]
	}
	return pattern
}

// blockWorkScale returns the per-block instruction multiplier implementing
// BlockImbalance as a lognormal distribution with unit mean.
func blockWorkScale(k *trace.KernelDesc, blockID int) float64 {
	cv := k.BlockImbalance
	if cv <= 0 {
		return 1
	}
	sigma2 := math.Log(1 + cv*cv)
	sigma := math.Sqrt(sigma2)
	// Two independent hashes -> Box-Muller normal.
	h := k.Seed + uint64(blockID)*0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	u1 := float64(h>>11) / (1 << 53)
	h2 := h*0x94D049BB133111EB + 0x2545F4914F6CDD1D
	h2 ^= h2 >> 31
	u2 := float64(h2>>11) / (1 << 53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sigma*z - sigma2/2)
}

// RunKernel simulates one kernel launch and returns its result. It returns
// an error if the kernel fails validation or cannot be scheduled on the
// device at all.
func (s *Simulator) RunKernel(k *trace.KernelDesc, opts Options) (*KernelResult, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	occ := s.dev.ComputeOccupancy(k.Resources())
	if occ.BlocksPerSM == 0 {
		return nil, fmt.Errorf("sim: kernel %q does not fit on %s", k.Name, s.dev.Name)
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	span := opts.Obs.StartKernel(k.Name)

	pattern := patternFor(k)
	patLen := int32(len(pattern))
	wpb := k.WarpsPerBlock()
	blocksTotal := k.Grid.Count()
	wave := occ.BlocksPerSM * s.dev.NumSMs
	threadsPer := float64(s.dev.WarpSize) * k.DivergenceEff
	isa := s.dev.ISAScale
	baseInstr := float64(k.Mix.Total()) * isa
	wsLines := uint64(k.WorkingSetBytes / int64(s.dev.CacheLineBytes))
	if wsLines < 1 {
		wsLines = 1
	}

	// Reset per-kernel statistics and re-align the DRAM pipe to the fresh
	// cycle clock; retain warmed cache contents.
	s.l2.ResetStats()
	s.dram.ResetStats()
	s.dram.Rebase()
	for _, c := range s.l1 {
		c.ResetStats()
	}

	// Initialize SM state for this kernel's occupancy shape, reusing the
	// previous kernel's backing arrays when they are large enough.
	numSMs := s.dev.NumSMs
	for i := 0; i < numSMs; i++ {
		sm := &s.sms[i]
		slots := occ.BlocksPerSM
		nw := slots * wpb
		if cap(sm.warps) >= nw {
			sm.warps = sm.warps[:nw]
			for j := range sm.warps {
				sm.warps[j] = warpSlot{}
			}
		} else {
			sm.warps = make([]warpSlot, nw)
		}
		if cap(sm.blocks) >= slots {
			sm.blocks = sm.blocks[:slots]
			for j := range sm.blocks {
				sm.blocks[j] = blockSlotState{}
			}
		} else {
			sm.blocks = make([]blockSlotState, slots)
		}
		words := (nw + 63) / 64
		if cap(sm.ready) >= words {
			sm.ready = sm.ready[:words]
			for j := range sm.ready {
				sm.ready[j] = 0
			}
		} else {
			sm.ready = make(readySet, words)
		}
		if cap(sm.wake) >= nw {
			sm.wake = sm.wake[:0]
		} else {
			sm.wake = make(wakeHeap, 0, nw)
		}
		if sm.wheel == nil {
			sm.wheel = make([]int32, wheelSize)
		}
		for j := range sm.wheel {
			sm.wheel[j] = -1
		}
		sm.wheelLive = 0
		sm.lastDrain = 0
		sm.minReady = 0
		sm.resident = 0
		sm.rrPtr = 0
	}

	nextBlock := 0
	completed := 0
	dispatch := func(smIdx, slot int, now int64) {
		sm := &s.sms[smIdx]
		blockID := nextBlock
		nextBlock++
		scale := blockWorkScale(k, blockID)
		instr := int32(baseInstr*scale + 0.5)
		if instr < 1 {
			instr = 1
		}
		sm.blocks[slot] = blockSlotState{live: true, warpsLeft: wpb}
		sm.resident++
		for w := 0; w < wpb; w++ {
			gw := uint64(blockID)*uint64(wpb) + uint64(w)
			idx := slot*wpb + w
			ws := &sm.warps[idx]
			*ws = warpSlot{
				nextReady:  now + 20, // block launch / pipe fill latency
				instrLeft:  instr,
				active:     true,
				base:       (gw * 517) % wsLines * uint64(s.dev.CacheLineBytes),
				rng:        k.Seed ^ (gw+1)*0xA24BAED4963EE407,
				blockSlot:  int32(slot),
				threadsPer: threadsPer,
			}
			sm.sleep(now+20, now, int32(idx))
		}
		sm.minReady = now
	}

	// Fill the initial wave breadth-first across SMs, the way the hardware
	// block scheduler distributes a partial grid.
	for slot := 0; slot < occ.BlocksPerSM && nextBlock < blocksTotal; slot++ {
		for i := 0; i < numSMs && nextBlock < blocksTotal; i++ {
			dispatch(i, slot, 0)
		}
	}

	var (
		now          int64
		warpInstrs   int64
		threadInstrs float64
		idleGap      int64
		stopped      bool
		traceBuf     []IPCSample
		bucketInstr  float64
		bucketStart  int64
	)
	tele := Telemetry{BlocksTotal: blocksTotal, WaveSize: wave}
	lineBytes := s.dev.CacheLineBytes
	sectorsPerLine := uint(lineBytes / sectorBytes)
	nSectors := int(k.CoalescingFactor + 0.5)
	if nSectors < 1 {
		nSectors = 1
	}
	rc := runCtx{
		l1Lat:         int64(s.dev.L1LatencyCycles),
		l2Lat:         int64(s.dev.L2LatencyCycles),
		lineBytes:     lineBytes,
		lineBytesU:    uint64(lineBytes),
		wsLines:       wsLines,
		sectorShift:   uint(bits.TrailingZeros(sectorsPerLine)),
		nSectors:      nSectors,
		stridedThresh: k.StridedFraction * (1 << 53),
	}
	if wsLines&(wsLines-1) == 0 {
		rc.wsMask = wsLines - 1
	}
	aluLat := int64(s.dev.ALULatencyCycles)
	smemLat := int64(s.dev.SMemLatency)
	schedulers := s.dev.SchedulersPerSM

	for completed < blocksTotal && now < maxCycles {
		issuedCycle := 0

		for i := 0; i < numSMs; i++ {
			sm := &s.sms[i]
			if sm.resident == 0 || sm.minReady > now {
				continue
			}
			// Wake every warp whose stall expires at or before now: O(1)
			// per wake, once per issued instruction over the whole run —
			// not once per warp per cycle.
			sm.drain(now)
			l1 := s.l1[i]
			issueBudget := schedulers
			dispatched := false
			// deadMin carries the post-issue nextReady of warps that retire
			// on this cycle: the linear-scan implementation min-folded that
			// value into minReady before noticing the warp had finished, so
			// the SM gets one extra (no-op) pass that advances rrPtr. Issue
			// order depends on rrPtr, so this quirk is load-bearing.
			deadMin := int64(math.MaxInt64)
			n := len(sm.warps)
			// Issue in round-robin order: ready warps in [rrPtr, n), then
			// [0, rrPtr) — the exact order of the original full scan.
			pos, limit := sm.rrPtr, n
			for seg := 0; seg < 2; seg++ {
				for issueBudget > 0 {
					idx := sm.ready.next(pos, limit)
					if idx < 0 {
						break
					}
					pos = idx + 1
					w := &sm.warps[idx]
					sm.ready.clear(idx)
					issueBudget--
					issuedCycle++
					op := pattern[w.patPos]
					w.patPos++
					if w.patPos == patLen {
						w.patPos = 0
					}
					switch op {
					case opCompute:
						w.nextReady = now + aluLat
					case opTensor:
						w.nextReady = now + aluLat*2
					case opSharedLoad, opSharedStore:
						w.nextReady = now + smemLat
					case opAtomic:
						done := s.memAccess(l1, w, now, 1, &rc, false)
						w.nextReady = done + 16 // serialization penalty
					default: // global/local loads & stores
						strided := float64(w.nextUint()>>11) < rc.stridedThresh && op != opLocalLoad
						done := s.memAccess(l1, w, now, nSectors, &rc, strided)
						if op == opGlobalStore {
							// Stores retire through the write queue without
							// stalling the warp.
							w.nextReady = now + 1
						} else if w.pending <= now {
							// Scoreboard with two outstanding loads per warp:
							// the first miss does not block issue, the second
							// stalls until the older one returns.
							w.pending = done
							w.nextReady = now + 1
						} else {
							w.nextReady = w.pending
							w.pending = done
						}
					}
					w.instrLeft--
					if w.instrLeft != 0 {
						// Still live: sleep until the stall expires
						// (nextReady > now always holds here).
						sm.sleep(w.nextReady, now, int32(idx))
						continue
					}
					if w.nextReady < deadMin {
						deadMin = w.nextReady
					}
					w.active = false
					bs := &sm.blocks[w.blockSlot]
					bs.warpsLeft--
					if bs.warpsLeft == 0 {
						bs.live = false
						sm.resident--
						completed++
						if nextBlock < blocksTotal {
							dispatch(i, int(w.blockSlot), now)
							dispatched = true
						}
					}
				}
				if issueBudget == 0 {
					break
				}
				pos, limit = 0, sm.rrPtr
			}
			sm.rrPtr++
			if sm.rrPtr >= n {
				sm.rrPtr = 0
			}
			if dispatched || sm.ready.any() {
				// A fresh block or an unserved ready warp: revisit next
				// cycle (matches the linear scan's newMin <= now cases).
				sm.minReady = now
			} else {
				newMin := deadMin
				if wk := sm.nextWake(now); wk < newMin {
					newMin = wk
				}
				if newMin == math.MaxInt64 {
					newMin = now + 1
				}
				sm.minReady = newMin
			}
			warpInstrs += int64(schedulers - issueBudget)
		}

		issuedThreads := float64(issuedCycle) * threadsPer
		threadInstrs += issuedThreads
		bucketInstr += issuedThreads

		if issuedCycle > 0 {
			tele.Cycle = now
			tele.IdleGap = idleGap
			tele.ThreadInstrs = threadInstrs
			tele.WarpInstrs = warpInstrs
			tele.IssuedThisCycle = issuedThreads
			tele.BlocksCompleted = completed
			idleGap = 0
			if opts.Controller != nil && opts.Controller.Tick(&tele) {
				stopped = true
				now++
				break
			}
			now++
		} else {
			// Nothing ready anywhere: jump to the next event.
			next := int64(math.MaxInt64)
			for i := 0; i < numSMs; i++ {
				sm := &s.sms[i]
				if sm.resident > 0 && sm.minReady < next {
					next = sm.minReady
				}
			}
			if next == math.MaxInt64 || next <= now {
				next = now + 1
			}
			idleGap += next - now
			now = next
		}

		if opts.TraceEvery > 0 && now-bucketStart >= opts.TraceEvery {
			traceBuf = append(traceBuf, IPCSample{
				Cycle:    now,
				IPC:      bucketInstr / float64(now-bucketStart),
				L2Miss:   s.l2.MissRate(),
				DRAMUtil: s.dram.Utilization(now),
			})
			bucketStart = now
			bucketInstr = 0
		}
	}

	res := &KernelResult{
		Kernel:             k,
		Cycles:             now,
		WarpInstrs:         warpInstrs,
		ExpectedWarpInstrs: k.TotalWarpInstructions(s.dev),
		ThreadInstrs:       threadInstrs,
		L2MissRate:         s.l2.MissRate(),
		DRAMUtil:           s.dram.Utilization(now),
		BlocksCompleted:    completed,
		BlocksTotal:        blocksTotal,
		WaveSize:           wave,
		StoppedEarly:       stopped || completed < blocksTotal,
		Trace:              traceBuf,
	}
	if now > 0 {
		res.IPC = threadInstrs / float64(now)
	}
	if opts.Obs != nil {
		s.reportKernel(opts.Obs, span, res)
	}
	return res, nil
}

// reportKernel emits the per-kernel telemetry batch: the kernel span
// (annotated with the headline statistics) and the sim counter family.
// It runs once per kernel, after the cycle loop has fully retired.
func (s *Simulator) reportKernel(o *obs.SimObs, span *obs.Span, res *KernelResult) {
	span.Arg("cycles", res.Cycles).
		Arg("warp_instrs", res.WarpInstrs).
		Arg("ipc", res.IPC).
		Arg("blocks", res.BlocksCompleted).
		Arg("blocks_total", res.BlocksTotal).
		Arg("stopped_early", res.StoppedEarly).
		End()
	m := o.Metrics
	if m == nil {
		return
	}
	m.Kernels.Inc()
	if res.StoppedEarly {
		m.StoppedEarly.Inc()
	}
	m.Cycles.Add(res.Cycles)
	m.WarpInstrs.Add(res.WarpInstrs)
	var l1Hits, l1Misses int64
	for _, c := range s.l1 {
		l1Hits += c.Hits()
		l1Misses += c.Misses()
	}
	m.L1Hits.Add(l1Hits)
	m.L1Misses.Add(l1Misses)
	m.L2Hits.Add(s.l2.Hits())
	m.L2Misses.Add(s.l2.Misses())
	m.DRAMBytes.Add(s.dram.BytesMoved())
	m.KernelCycles.Observe(float64(res.Cycles))
}

// memAccess performs one warp-level global access touching nSectors
// 32-byte sectors, returning the completion cycle. The hot conversions —
// sector and line arithmetic on known powers of two, latency widths — are
// precomputed in rc once per kernel launch.
func (s *Simulator) memAccess(l1 *mem.Cache, w *warpSlot, now int64, nSectors int, rc *runCtx, strided bool) int64 {
	done := now
	if strided {
		// Consecutive sectors starting at the warp's cursor.
		startSector := w.base>>sectorShiftBytes + w.cursor
		w.cursor += uint64(nSectors)
		firstLine := startSector >> rc.sectorShift
		lastLine := (startSector + uint64(nSectors) - 1) >> rc.sectorShift
		if rc.wsMask != 0 {
			for line := firstLine; line <= lastLine; line++ {
				d := s.lineAccess(l1, line&rc.wsMask*rc.lineBytesU, now, rc.lineBytes, rc)
				if d > done {
					done = d
				}
			}
			return done
		}
		for line := firstLine; line <= lastLine; line++ {
			d := s.lineAccess(l1, line%rc.wsLines*rc.lineBytesU, now, rc.lineBytes, rc)
			if d > done {
				done = d
			}
		}
		return done
	}
	if rc.wsMask != 0 {
		for i := 0; i < nSectors; i++ {
			d := s.lineAccess(l1, w.nextUint()&rc.wsMask*rc.lineBytesU, now, sectorBytes, rc)
			if d > done {
				done = d
			}
		}
		return done
	}
	for i := 0; i < nSectors; i++ {
		d := s.lineAccess(l1, w.nextUint()%rc.wsLines*rc.lineBytesU, now, sectorBytes, rc)
		if d > done {
			done = d
		}
	}
	return done
}

// lineAccess walks one address through L1 -> L2 -> DRAM and returns the
// completion cycle. fillBytes is the DRAM transfer size on a full miss.
func (s *Simulator) lineAccess(l1 *mem.Cache, addr uint64, now int64, fillBytes int, rc *runCtx) int64 {
	if l1.Access(addr) {
		return now + rc.l1Lat
	}
	if s.l2.Access(addr) {
		return now + rc.l2Lat
	}
	return s.dram.Request(now+rc.l2Lat, fillBytes)
}

// nextUint advances the warp's xorshift address stream.
func (w *warpSlot) nextUint() uint64 {
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	return w.rng
}
