// Zero-allocation guarantee for the simulator's cycle loop. The telemetry
// hookup (Options.Obs) reports once per kernel, so the marginal cost of an
// extra simulated cycle must be zero heap allocations even with every hook
// installed — BenchmarkSimTick reports it and TestSimTickZeroAlloc pins it.
//
// This file is an external test (package sim_test) so it can drive the
// loop through the real PKP controller, which lives downstream of sim.
package sim_test

import (
	"runtime"
	"runtime/debug"
	"testing"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/pkp"
	"pka/internal/sim"
	"pka/internal/trace"
)

// tickKernel is far too large to finish inside any run below, so MaxCycles
// alone bounds the loop and every measured cycle exercises the steady-state
// path: issue, memory system, controller. Blocks are small so hundreds
// complete within the first few thousand cycles — the per-kernel span args
// then box identically for every run length (boxing an int into an `any`
// is free only below 256), keeping the per-kernel report's allocation
// count constant so run-length differencing isolates the loop.
func tickKernel() trace.KernelDesc {
	return trace.KernelDesc{
		Name:             "tick-bench",
		Grid:             trace.D1(1 << 20),
		Block:            trace.D1(64),
		Mix:              trace.InstrMix{Compute: 60, GlobalLoads: 2, SharedLoads: 2},
		CoalescingFactor: 4,
		WorkingSetBytes:  1 << 20,
		StridedFraction:  0.7,
		DivergenceEff:    0.95,
		Seed:             42,
	}
}

// neverStop runs PKP's full per-cycle bookkeeping but discards its verdict,
// so the kernel is never truncated. Audit stays unwired: PKP emits audit
// records only at the stop decision, which this wrapper suppresses.
func neverStop() sim.Controller {
	p := pkp.New(pkp.Options{})
	return sim.ControllerFunc(func(t *sim.Telemetry) bool {
		p.Tick(t)
		return false
	})
}

// mallocsForCycles simulates exactly `cycles` cycles with a fresh
// simulator, observer, and controller, and returns the heap objects the
// whole run allocated. Per-run setup (SM state, the kernel span, the track
// metadata) is identical across calls, so differencing two calls isolates
// the loop's marginal allocations.
func mallocsForCycles(tb testing.TB, cycles int64) uint64 {
	tb.Helper()
	k := tickKernel()
	s := sim.New(gpu.VoltaV100())
	o := obs.NewObserver()
	so := o.SimObs("alloc-test")
	ctrl := neverStop()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := s.RunKernel(&k, sim.Options{Controller: ctrl, MaxCycles: cycles, Obs: so})
	runtime.ReadMemStats(&after)
	if err != nil {
		tb.Fatal(err)
	}
	if res.Cycles < cycles {
		tb.Fatalf("kernel finished in %d cycles, want >= %d (enlarge tickKernel)", res.Cycles, cycles)
	}
	// Boxing the per-kernel span args is allocation-free below 256, so a
	// too-short run would report fewer kernel-end allocations and skew the
	// difference the caller takes.
	if res.BlocksCompleted <= 255 {
		tb.Fatalf("only %d blocks completed at %d cycles, want > 255 (shrink tickKernel blocks)", res.BlocksCompleted, cycles)
	}
	return after.Mallocs - before.Mallocs
}

// TestSimTickZeroAlloc asserts allocs/op == 0 for the cycle loop with all
// telemetry hooks installed: growing the run 16x must not allocate a
// single additional heap object.
func TestSimTickZeroAlloc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// A concurrent GC cycle mid-measurement allocates a few runtime-owned
	// objects that would be misattributed to the loop; the runs below
	// allocate only KBs of setup, so pausing collection is safe.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	base := mallocsForCycles(t, 8192)
	big := mallocsForCycles(t, 16*8192)
	if big > base {
		t.Fatalf("cycle loop allocates: %d extra heap objects over %d extra cycles (setup baseline %d)",
			big-base, 15*8192, base)
	}
}

// BenchmarkSimTick measures one simulated cycle per benchmark op, with the
// obs hooks and the PKP detector installed. The per-kernel setup cost
// amortizes across b.N, so allocs/op must report 0.
func BenchmarkSimTick(b *testing.B) {
	k := tickKernel()
	s := sim.New(gpu.VoltaV100())
	o := obs.NewObserver()
	so := o.SimObs("bench")
	ctrl := neverStop()
	b.ReportAllocs()
	b.ResetTimer()
	res, err := s.RunKernel(&k, sim.Options{Controller: ctrl, MaxCycles: int64(b.N), Obs: so})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.WarpInstrs)/float64(res.Cycles), "warp-instr/cycle")
}
