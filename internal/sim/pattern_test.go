package sim

import (
	"sync"
	"testing"

	"pka/internal/gpu"
	"pka/internal/trace"
)

func patternKernel(seed uint64, mix trace.InstrMix) trace.KernelDesc {
	return trace.KernelDesc{
		Name: "pat", Grid: trace.D1(16), Block: trace.D1(128),
		Mix: mix, CoalescingFactor: 4, WorkingSetBytes: 1 << 20,
		StridedFraction: 0.5, DivergenceEff: 1, Seed: seed,
	}
}

// TestPatternCacheSharing verifies that two kernels with the same (mix,
// seed) receive the same backing pattern slice — built once, shared
// read-only — and that the shared pattern matches a fresh build.
func TestPatternCacheSharing(t *testing.T) {
	mix := trace.InstrMix{Compute: 30, GlobalLoads: 7, SharedLoads: 5}
	k1 := patternKernel(42, mix)
	k2 := patternKernel(42, mix)
	k2.Name = "other-name"
	k2.Grid = trace.D1(99) // launch geometry must not affect the pattern

	p1 := patternFor(&k1)
	p2 := patternFor(&k2)
	if len(p1) == 0 || &p1[0] != &p2[0] {
		t.Fatalf("same (mix, seed) did not share one cached pattern")
	}
	fresh := buildPattern(&k1)
	if len(fresh) != len(p1) {
		t.Fatalf("cached pattern length %d, fresh build %d", len(p1), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != p1[i] {
			t.Fatalf("cached pattern diverges from fresh build at %d", i)
		}
	}
}

// TestPatternCacheKeying verifies that differing seeds or mixes do not
// alias to the same cache entry.
func TestPatternCacheKeying(t *testing.T) {
	mix := trace.InstrMix{Compute: 30, GlobalLoads: 7, SharedLoads: 5}
	base := patternKernel(1, mix)
	otherSeed := patternKernel(2, mix)
	otherMix := patternKernel(1, trace.InstrMix{Compute: 30, GlobalLoads: 7, SharedStores: 5})

	p := patternFor(&base)
	if q := patternFor(&otherSeed); len(q) == len(p) && &q[0] == &p[0] {
		t.Fatalf("different seeds aliased to one cached pattern")
	}
	if q := patternFor(&otherMix); len(q) == len(p) && &q[0] == &p[0] {
		t.Fatalf("different mixes aliased to one cached pattern")
	}
	// Same seed, different mix order of the same total must also differ in
	// content, not just identity (sanity check on the key fields).
	if q := patternFor(&otherSeed); equalPatterns(p, q) {
		t.Fatalf("seed change produced an identical shuffle; key too weak?")
	}
}

func equalPatterns(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPatternCacheConcurrentSims runs many simulators over a handful of
// kernels sharing cached patterns; under -race this proves the shared
// slice is read-only in the cycle loop and the cache is safe for
// concurrent first launches.
func TestPatternCacheConcurrentSims(t *testing.T) {
	mixes := []trace.InstrMix{
		{Compute: 20, GlobalLoads: 5},
		{Compute: 10, GlobalLoads: 2, SharedLoads: 3, GlobalStores: 1},
	}
	var wg sync.WaitGroup
	results := make([]int64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := New(gpu.VoltaV100())
			k := patternKernel(uint64(1000+g%2), mixes[g%2])
			res, err := s.RunKernel(&k, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res.Cycles
		}(g)
	}
	wg.Wait()
	// Goroutines with identical kernels must agree exactly.
	for g := 2; g < 8; g++ {
		if results[g] != results[g-2] {
			t.Fatalf("concurrent identical sims diverged: cycles[%d]=%d cycles[%d]=%d",
				g, results[g], g-2, results[g-2])
		}
	}
}
