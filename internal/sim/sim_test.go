package sim

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/trace"
)

// computeKernel is a small compute-bound kernel.
func computeKernel(blocks int) trace.KernelDesc {
	return trace.KernelDesc{
		Name:  "compute",
		Grid:  trace.D1(blocks),
		Block: trace.D1(256),
		Mix: trace.InstrMix{
			Compute:     200,
			GlobalLoads: 2,
		},
		CoalescingFactor: 4,
		WorkingSetBytes:  64 * 1024,
		StridedFraction:  1,
		DivergenceEff:    1,
		Seed:             1,
	}
}

// memoryKernel streams a large working set through DRAM.
func memoryKernel(blocks int) trace.KernelDesc {
	return trace.KernelDesc{
		Name:  "memory",
		Grid:  trace.D1(blocks),
		Block: trace.D1(256),
		Mix: trace.InstrMix{
			Compute:     10,
			GlobalLoads: 40,
		},
		CoalescingFactor: 8,
		WorkingSetBytes:  512 * 1024 * 1024,
		StridedFraction:  0.2,
		DivergenceEff:    1,
		Seed:             2,
	}
}

func TestRunKernelCompletes(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(160)
	res, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksCompleted != 160 || res.StoppedEarly {
		t.Errorf("completed %d/%d, early=%v", res.BlocksCompleted, res.BlocksTotal, res.StoppedEarly)
	}
	if res.Cycles <= 0 || res.IPC <= 0 {
		t.Errorf("cycles=%d ipc=%v", res.Cycles, res.IPC)
	}
	// All blocks execute ~202 warp instructions per warp * 8 warps.
	wantWarp := int64(160 * 8 * 202)
	if res.WarpInstrs != wantWarp {
		t.Errorf("warp instrs = %d, want %d", res.WarpInstrs, wantWarp)
	}
}

func TestDeterminism(t *testing.T) {
	k := memoryKernel(100)
	a, err := New(gpu.VoltaV100()).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(gpu.VoltaV100()).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.WarpInstrs != b.WarpInstrs || a.L2MissRate != b.L2MissRate {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRejectsInvalidKernel(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(10)
	k.DivergenceEff = 0
	if _, err := s.RunKernel(&k, Options{}); err == nil {
		t.Error("invalid kernel accepted")
	}
	k2 := computeKernel(10)
	k2.SharedMemPerBlock = 1 << 30 // cannot fit on any SM
	if _, err := s.RunKernel(&k2, Options{}); err == nil {
		t.Error("unschedulable kernel accepted")
	}
}

func TestComputeKernelIsComputeBound(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(640)
	res, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMUtil > 0.5 {
		t.Errorf("compute kernel DRAM util = %v", res.DRAMUtil)
	}
	// Peak thread IPC on V100 = 80 SMs * 4 schedulers * 32 lanes = 10240.
	// A compute-bound kernel with full occupancy should get a large share.
	if res.IPC < 2000 {
		t.Errorf("compute kernel IPC = %v, want >= 2000", res.IPC)
	}
}

func TestMemoryKernelIsMemoryBound(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := memoryKernel(640)
	res, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMUtil < 0.5 {
		t.Errorf("memory kernel DRAM util = %v, want >= 0.5", res.DRAMUtil)
	}
	if res.L2MissRate < 0.3 {
		t.Errorf("streaming kernel L2 miss rate = %v", res.L2MissRate)
	}
	cRes, _ := s.RunKernel(&trace.KernelDesc{
		Name: "c", Grid: trace.D1(640), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 50, GlobalLoads: 2},
		CoalescingFactor: 4, WorkingSetBytes: 64 * 1024, StridedFraction: 1,
		DivergenceEff: 1, Seed: 9,
	}, Options{})
	if res.IPC >= cRes.IPC {
		t.Errorf("memory-bound IPC %v should be below compute-bound IPC %v", res.IPC, cRes.IPC)
	}
}

func TestSmallWorkingSetHitsCache(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(320)
	k.WorkingSetBytes = 16 * 1024 // fits in L1
	res, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMUtil > 0.2 {
		t.Errorf("cache-resident kernel DRAM util = %v", res.DRAMUtil)
	}
}

func TestMoreSMsIsFaster(t *testing.T) {
	k := computeKernel(640)
	full, err := New(gpu.VoltaV100()).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := New(gpu.VoltaV100().WithSMs(40)).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(half.Cycles) / float64(full.Cycles)
	if speedup < 1.5 {
		t.Errorf("80-vs-40 SM speedup = %.2f, want >= 1.5 for compute-bound", speedup)
	}
}

func TestBandwidthBoundInsensitiveToSMs(t *testing.T) {
	k := memoryKernel(640)
	full, err := New(gpu.VoltaV100()).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := New(gpu.VoltaV100().WithSMs(40)).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(half.Cycles) / float64(full.Cycles)
	if speedup > 1.6 {
		t.Errorf("bandwidth-bound kernel sped up %.2fx with SM doubling", speedup)
	}
}

func TestControllerStopsEarly(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(640)
	var ticks int
	res, err := s.RunKernel(&k, Options{
		Controller: ControllerFunc(func(tl *Telemetry) bool {
			ticks++
			return tl.BlocksCompleted >= 100
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Error("controller stop not reported")
	}
	if res.BlocksCompleted < 100 || res.BlocksCompleted >= 640 {
		t.Errorf("stopped at %d blocks", res.BlocksCompleted)
	}
	if ticks == 0 {
		t.Error("controller never ticked")
	}
}

func TestTelemetryMonotone(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := memoryKernel(80)
	var lastCycle int64 = -1
	var lastInstr float64 = -1
	_, err := s.RunKernel(&k, Options{
		Controller: ControllerFunc(func(tl *Telemetry) bool {
			if tl.Cycle < lastCycle {
				t.Fatal("cycle went backwards")
			}
			if tl.ThreadInstrs < lastInstr {
				t.Fatal("instruction count went backwards")
			}
			if tl.WaveSize <= 0 || tl.BlocksTotal != 80 {
				t.Fatalf("bad telemetry: %+v", tl)
			}
			lastCycle, lastInstr = tl.Cycle, tl.ThreadInstrs
			return false
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceCollection(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(320)
	res, err := s.RunKernel(&k, Options{TraceEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	for i, smp := range res.Trace {
		if smp.IPC < 0 || smp.L2Miss < 0 || smp.L2Miss > 1 || smp.DRAMUtil < 0 || smp.DRAMUtil > 1 {
			t.Fatalf("sample %d out of range: %+v", i, smp)
		}
		if i > 0 && smp.Cycle <= res.Trace[i-1].Cycle {
			t.Fatalf("trace cycles not increasing at %d", i)
		}
	}
}

func TestMaxCyclesCap(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := memoryKernel(10000)
	res, err := s.RunKernel(&k, Options{MaxCycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 6000 {
		t.Errorf("cap ignored: %d cycles", res.Cycles)
	}
	if !res.StoppedEarly {
		t.Error("capped run not marked early")
	}
}

func TestBlockImbalanceExtendsTail(t *testing.T) {
	reg := computeKernel(320)
	irr := computeKernel(320)
	irr.BlockImbalance = 1.5
	irr.Seed = 77
	r1, err := New(gpu.VoltaV100()).RunKernel(&reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(gpu.VoltaV100()).RunKernel(&irr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles <= r1.Cycles {
		t.Errorf("imbalanced kernel (%d cycles) not slower than regular (%d)", r2.Cycles, r1.Cycles)
	}
}

func TestIPCRampVisibleInTrace(t *testing.T) {
	// Long kernel: early trace buckets (cache warmup) should differ from
	// the steady state, which is what PKP's windowed detector keys on.
	s := New(gpu.VoltaV100())
	k := computeKernel(3200)
	k.WorkingSetBytes = 8 * 1024 * 1024
	k.StridedFraction = 0.5
	res, err := s.RunKernel(&k, Options{TraceEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 5 {
		t.Skipf("trace too short: %d buckets", len(res.Trace))
	}
	mid := res.Trace[len(res.Trace)/2].IPC
	if mid <= 0 {
		t.Error("zero steady-state IPC")
	}
}

func TestFewerBlocksThanWaveStillRuns(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := computeKernel(3) // far fewer blocks than SMs
	res, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksCompleted != 3 {
		t.Errorf("completed %d, want 3", res.BlocksCompleted)
	}
	if res.WaveSize <= 3 {
		t.Errorf("wave %d should exceed block count", res.WaveSize)
	}
}
