package sim

import (
	"math"
	"testing"

	"pka/internal/gpu"
	"pka/internal/trace"
)

// This file pins the simulator's observable behavior bit-for-bit: for a
// battery of kernels covering every instruction class, device, and loop
// feature (idle jumps, truncation, trace buckets, warm caches, block
// imbalance), it folds the complete per-cycle telemetry stream and the
// final KernelResult into one FNV-1a hash and compares against recorded
// constants. Any change to issue order, cycle counts, cache behavior, or
// the telemetry a Controller observes shifts the hash — the event-driven
// scheduler must reproduce the original round-robin scan exactly, and this
// is the test that holds it to that.

type goldenHash struct{ h uint64 }

func newGoldenHash() *goldenHash { return &goldenHash{h: 14695981039346656037} }

func (g *goldenHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		g.h ^= v & 0xFF
		g.h *= 1099511628211
		v >>= 8
	}
}

func (g *goldenHash) i64(v int64)   { g.u64(uint64(v)) }
func (g *goldenHash) f64(v float64) { g.u64(math.Float64bits(v)) }
func (g *goldenHash) boolean(v bool) {
	if v {
		g.u64(1)
	} else {
		g.u64(0)
	}
}

// tickHash returns a Controller that folds every telemetry field of every
// tick into the hash, optionally stopping when stop returns true.
func (g *goldenHash) controller(stop func(*Telemetry) bool) Controller {
	return ControllerFunc(func(t *Telemetry) bool {
		g.i64(t.Cycle)
		g.i64(t.IdleGap)
		g.f64(t.ThreadInstrs)
		g.i64(t.WarpInstrs)
		g.f64(t.IssuedThisCycle)
		g.u64(uint64(t.BlocksCompleted))
		g.u64(uint64(t.BlocksTotal))
		g.u64(uint64(t.WaveSize))
		return stop != nil && stop(t)
	})
}

func (g *goldenHash) result(r *KernelResult) {
	g.i64(r.Cycles)
	g.i64(r.WarpInstrs)
	g.i64(r.ExpectedWarpInstrs)
	g.f64(r.ThreadInstrs)
	g.f64(r.IPC)
	g.f64(r.L2MissRate)
	g.f64(r.DRAMUtil)
	g.u64(uint64(r.BlocksCompleted))
	g.u64(uint64(r.BlocksTotal))
	g.u64(uint64(r.WaveSize))
	g.boolean(r.StoppedEarly)
	g.u64(uint64(len(r.Trace)))
	for _, s := range r.Trace {
		g.i64(s.Cycle)
		g.f64(s.IPC)
		g.f64(s.L2Miss)
		g.f64(s.DRAMUtil)
	}
}

// goldenCase is one pinned scenario: the kernels run back-to-back on ONE
// simulator (warm L2/DRAM state across kernels is part of the pin).
type goldenCase struct {
	name    string
	dev     gpu.Device
	kernels []trace.KernelDesc
	opts    func(g *goldenHash) Options
	want    uint64
}

func goldenCases() []goldenCase {
	allOps := trace.KernelDesc{
		Name: "all-ops", Grid: trace.D1(320), Block: trace.D1(192),
		Mix: trace.InstrMix{
			Compute: 40, GlobalLoads: 8, GlobalStores: 4, LocalLoads: 3,
			SharedLoads: 6, SharedStores: 5, GlobalAtomics: 2, TensorOps: 7,
		},
		CoalescingFactor: 3.3, WorkingSetBytes: 24 << 20, StridedFraction: 0.55,
		DivergenceEff: 0.87, Seed: 1234,
	}
	memory := trace.KernelDesc{
		Name: "memory", Grid: trace.D1(640), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 10, GlobalLoads: 40},
		CoalescingFactor: 8, WorkingSetBytes: 512 << 20, StridedFraction: 0.2,
		DivergenceEff: 1, Seed: 2,
	}
	compute := trace.KernelDesc{
		Name: "compute", Grid: trace.D1(410), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 200, GlobalLoads: 2},
		CoalescingFactor: 4, WorkingSetBytes: 64 << 10, StridedFraction: 1,
		DivergenceEff: 1, Seed: 1,
	}
	imbalanced := compute
	imbalanced.Name = "imbalanced"
	imbalanced.BlockImbalance = 1.5
	imbalanced.Seed = 77
	tiny := compute
	tiny.Name = "tiny"
	tiny.Grid = trace.D1(3)
	oddWS := trace.KernelDesc{
		// Non-power-of-two working set exercises the modulo (not mask)
		// address-wrap path.
		Name: "odd-ws", Grid: trace.D1(200), Block: trace.D1(160),
		Mix:              trace.InstrMix{Compute: 30, GlobalLoads: 12, GlobalStores: 6},
		CoalescingFactor: 4, WorkingSetBytes: 3*(1<<20) + 128*37, StridedFraction: 0.5,
		DivergenceEff: 0.93, Seed: 909,
	}

	return []goldenCase{
		{
			name: "all-ops-volta", dev: gpu.VoltaV100(),
			kernels: []trace.KernelDesc{allOps},
			want:    0xcb72922f74f7d5d3,
		},
		{
			name: "warm-sequence-volta", dev: gpu.VoltaV100(),
			// Same kernel twice (warm caches), then a different one: pins
			// cross-kernel L2/DRAM state handling.
			kernels: []trace.KernelDesc{compute, compute, memory},
			want:    0x0f6dd5bd33b9ad4c,
		},
		{
			name: "memory-turing", dev: gpu.TuringRTX2060(),
			kernels: []trace.KernelDesc{memory, oddWS},
			want:    0xfd5bf7e949670194,
		},
		{
			name: "imbalanced-ampere", dev: gpu.AmpereRTX3070(),
			kernels: []trace.KernelDesc{imbalanced, tiny},
			want:    0x33c813a2744fbf7e,
		},
		{
			name: "truncated-volta", dev: gpu.VoltaV100(),
			kernels: []trace.KernelDesc{memory},
			opts: func(g *goldenHash) Options {
				return Options{
					Controller: g.controller(func(t *Telemetry) bool {
						return t.WarpInstrs > 40000
					}),
					TraceEvery: 150,
				}
			},
			want: 0x37f13b7b9b0765f3,
		},
		{
			name: "traced-maxcycles-volta", dev: gpu.VoltaV100(),
			kernels: []trace.KernelDesc{allOps},
			opts: func(g *goldenHash) Options {
				return Options{TraceEvery: 97, MaxCycles: 20000}
			},
			want: 0x0bdcff9fe6381cd3,
		},
	}
}

func TestGoldenTelemetryHashes(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := newGoldenHash()
			s := New(tc.dev)
			for i := range tc.kernels {
				var opts Options
				if tc.opts != nil {
					opts = tc.opts(g)
				}
				if opts.Controller == nil {
					opts.Controller = g.controller(nil)
				}
				res, err := s.RunKernel(&tc.kernels[i], opts)
				if err != nil {
					t.Fatal(err)
				}
				g.result(res)
			}
			if g.h != tc.want {
				t.Errorf("telemetry/result hash = %#016x, want %#016x (simulator output changed)", g.h, tc.want)
			}
		})
	}
}
