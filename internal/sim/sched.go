package sim

import (
	"math"
	"math/bits"
)

// This file holds the event-driven scheduler's two data structures. The
// cycle loop used to rescan every warp slot of an SM on every active cycle
// — O(warps) work to find the ≤SchedulersPerSM warps that can actually
// issue. Instead, each SM now keeps:
//
//   - a readySet bitset of warps whose stall has expired (nextReady <= now),
//     iterated in round-robin index order starting at rrPtr so the issue
//     order is identical to the old linear scan's, and
//   - a wakeHeap of sleeping warps keyed on nextReady, so advancing the
//     clock touches only the warps whose stalls expire this cycle and the
//     SM's next-event time (minReady) is the heap top, for free.
//
// Both are sized once per kernel (each warp occupies at most one heap slot
// and one bit), so the cycle loop stays allocation-free.

// wheelSize is the horizon of the per-SM timing wheel. Stalls shorter than
// this (ALU, tensor, shared memory, L1/scoreboard — the overwhelming
// majority of issues) are parked in an O(1) bucket ring instead of the
// heap; only far wakes (L2 and DRAM round trips) pay the O(log n) heap.
const wheelSize = 64

// sleep parks warp idx until cycle at (> now). Wake order within a cycle
// is irrelevant — drain moves every due warp to the ready set before any
// issue decision — so bucket lists need no internal ordering.
func (sm *smState) sleep(at, now int64, idx int32) {
	if at-now < wheelSize {
		b := at & (wheelSize - 1)
		sm.warps[idx].wakeNext = sm.wheel[b]
		sm.wheel[b] = idx
		sm.wheelLive++
		return
	}
	sm.wake.push(at, idx)
}

// drain moves every warp due at or before now into the ready set. Wheel
// entries always satisfy at ∈ (lastDrain, lastDrain+wheelSize) — sleeps
// only happen while the SM is being processed, i.e. after a drain at the
// same cycle — so scanning the buckets for (lastDrain, now] clipped to the
// last wheelSize cycles visits every due entry exactly once.
func (sm *smState) drain(now int64) {
	if sm.wheelLive > 0 {
		from := now - wheelSize + 1
		if l := sm.lastDrain + 1; l > from {
			from = l
		}
		for c := from; c <= now; c++ {
			b := c & (wheelSize - 1)
			for idx := sm.wheel[b]; idx >= 0; idx = sm.warps[idx].wakeNext {
				sm.ready.set(int(idx))
				sm.wheelLive--
			}
			sm.wheel[b] = -1
		}
	}
	sm.lastDrain = now
	for len(sm.wake) > 0 && sm.wake[0].at <= now {
		sm.ready.set(int(sm.wake.pop().idx))
	}
}

// nextWake returns the earliest pending wake time after now, or
// math.MaxInt64 when no warp is sleeping. Called only when the SM idles
// (no ready warp, no fresh block), which is rare on busy SMs.
func (sm *smState) nextWake(now int64) int64 {
	min := int64(math.MaxInt64)
	if sm.wheelLive > 0 {
		for off := int64(1); off < wheelSize; off++ {
			if sm.wheel[(now+off)&(wheelSize-1)] >= 0 {
				min = now + off
				break
			}
		}
	}
	if len(sm.wake) > 0 && sm.wake[0].at < min {
		min = sm.wake[0].at
	}
	return min
}

// wakeEvent schedules one sleeping warp's return to the ready set.
type wakeEvent struct {
	at  int64 // cycle at which the warp's nextReady elapses
	idx int32 // warp slot index within the SM
}

// wakeHeap is a binary min-heap on wakeEvent.at. Wake order among equal
// cycles is irrelevant: all warps with at <= now are drained into the
// ready set before any issue decision, and issue order is governed by the
// ready set's index order alone.
type wakeHeap []wakeEvent

// push inserts an event. The backing array is pre-sized to the SM's warp
// count (a warp has at most one pending wake), so append never grows it.
func (h *wakeHeap) push(at int64, idx int32) {
	q := append(*h, wakeEvent{at: at, idx: idx})
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].at <= q[i].at {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	*h = q
}

// pop removes and returns the earliest event. Callers check len > 0 first.
func (h *wakeHeap) pop() wakeEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q[r].at < q[l].at {
			m = r
		}
		if q[i].at <= q[m].at {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// readySet is a bitset over an SM's warp slots.
type readySet []uint64

func (r readySet) set(i int)   { r[i>>6] |= 1 << (uint(i) & 63) }
func (r readySet) clear(i int) { r[i>>6] &^= 1 << (uint(i) & 63) }

// any reports whether any warp is ready.
func (r readySet) any() bool {
	for _, w := range r {
		if w != 0 {
			return true
		}
	}
	return false
}

// next returns the lowest set bit in [from, limit), or -1. The cycle loop
// calls it with [rrPtr, n) then [0, rrPtr) to reproduce the round-robin
// scan order of the original implementation exactly.
func (r readySet) next(from, limit int) int {
	if from >= limit {
		return -1
	}
	wi := from >> 6
	last := (limit - 1) >> 6
	w := r[wi] >> (uint(from) & 63) << (uint(from) & 63)
	for {
		if wi == last {
			if rem := uint(limit) & 63; rem != 0 {
				w &= 1<<rem - 1
			}
		}
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi > last {
			return -1
		}
		w = r[wi]
	}
}
