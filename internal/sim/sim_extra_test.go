package sim

import (
	"testing"
	"testing/quick"

	"pka/internal/gpu"
	"pka/internal/trace"
)

// Conservation: a completed run with no block imbalance issues exactly the
// expected warp-instruction count, for arbitrary small kernels.
func TestWarpInstructionConservationProperty(t *testing.T) {
	s := New(gpu.VoltaV100())
	f := func(blocksRaw, computeRaw, loadsRaw uint8, seed uint16) bool {
		k := trace.KernelDesc{
			Name:  "prop",
			Grid:  trace.D1(int(blocksRaw%50) + 1),
			Block: trace.D1(128),
			Mix: trace.InstrMix{
				Compute:     int(computeRaw%40) + 1,
				GlobalLoads: int(loadsRaw % 8),
			},
			CoalescingFactor: 4,
			WorkingSetBytes:  1 << 20,
			StridedFraction:  0.8,
			DivergenceEff:    1,
			Seed:             uint64(seed) + 1,
		}
		res, err := s.RunKernel(&k, Options{})
		if err != nil {
			return false
		}
		return res.WarpInstrs == res.ExpectedWarpInstrs &&
			res.BlocksCompleted == res.BlocksTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExpectedWarpInstrsOnTruncatedRun(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := trace.KernelDesc{
		Name: "trunc", Grid: trace.D1(640), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 100},
		CoalescingFactor: 4, WorkingSetBytes: 1 << 20, StridedFraction: 1,
		DivergenceEff: 1, Seed: 3,
	}
	res, err := s.RunKernel(&k, Options{
		Controller: ControllerFunc(func(t *Telemetry) bool { return t.WarpInstrs > 10000 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Fatal("not truncated")
	}
	want := int64(640 * 8 * 100)
	if res.ExpectedWarpInstrs != want {
		t.Errorf("expected warp instrs = %d, want %d", res.ExpectedWarpInstrs, want)
	}
	if res.WarpInstrs >= res.ExpectedWarpInstrs {
		t.Error("truncated run executed everything")
	}
}

// Warm caches: running the same cache-friendly kernel twice on one
// Simulator must not be slower the second time.
func TestWarmCachesDoNotSlowDown(t *testing.T) {
	s := New(gpu.VoltaV100())
	k := trace.KernelDesc{
		Name: "warm", Grid: trace.D1(320), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 40, GlobalLoads: 10},
		CoalescingFactor: 4, WorkingSetBytes: 2 << 20, StridedFraction: 0.9,
		DivergenceEff: 1, Seed: 5,
	}
	first, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cycles > first.Cycles+first.Cycles/10 {
		t.Errorf("warm run slower: %d vs %d cycles", second.Cycles, first.Cycles)
	}
}

// Memory-level parallelism: back-to-back loads must overlap (the 2-deep
// scoreboard), so a load-pair kernel finishes in well under 2x the
// single-load latency chain.
func TestLoadOverlap(t *testing.T) {
	mk := func(loads int) trace.KernelDesc {
		return trace.KernelDesc{
			Name: "mlp", Grid: trace.D1(80), Block: trace.D1(32), // 1 warp per block
			Mix:              trace.InstrMix{GlobalLoads: loads, Compute: 1},
			CoalescingFactor: 4, WorkingSetBytes: 1 << 30, StridedFraction: 0,
			DivergenceEff: 1, Seed: 7,
		}
	}
	one := mk(8)
	two := mk(16)
	r1, err := New(gpu.VoltaV100()).RunKernel(&one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(gpu.VoltaV100()).RunKernel(&two, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r2.Cycles) / float64(r1.Cycles)
	if ratio > 2.4 {
		t.Errorf("doubling loads scaled cycles %.2fx; scoreboard overlap missing", ratio)
	}
}

func TestDivergenceReducesThreadIPC(t *testing.T) {
	mk := func(div float64) trace.KernelDesc {
		return trace.KernelDesc{
			Name: "div", Grid: trace.D1(640), Block: trace.D1(256),
			Mix:              trace.InstrMix{Compute: 100, GlobalLoads: 2},
			CoalescingFactor: 4, WorkingSetBytes: 1 << 20, StridedFraction: 1,
			DivergenceEff: div, Seed: 11,
		}
	}
	full := mk(1.0)
	half := mk(0.5)
	rf, err := New(gpu.VoltaV100()).RunKernel(&full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := New(gpu.VoltaV100()).RunKernel(&half, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rh.IPC >= rf.IPC {
		t.Errorf("divergent kernel thread IPC %.0f >= convergent %.0f", rh.IPC, rf.IPC)
	}
	if rh.WarpInstrs != rf.WarpInstrs {
		t.Error("divergence should not change warp instruction count")
	}
}

func TestGenerationsRankOnComputeKernel(t *testing.T) {
	k := trace.KernelDesc{
		Name: "rank", Grid: trace.D1(1280), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: 200, GlobalLoads: 2},
		CoalescingFactor: 4, WorkingSetBytes: 1 << 20, StridedFraction: 1,
		DivergenceEff: 1, Seed: 13,
	}
	v, err := New(gpu.VoltaV100()).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := New(gpu.TuringRTX2060()).RunKernel(&k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The 2060 has 30 SMs vs the V100's 80: a compute-bound kernel must
	// take substantially more cycles there.
	if float64(tu.Cycles) < 1.5*float64(v.Cycles) {
		t.Errorf("RTX 2060 cycles %d vs V100 %d; SM scaling missing", tu.Cycles, v.Cycles)
	}
}
