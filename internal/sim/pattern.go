package sim

import (
	"pka/internal/parallel"
	"pka/internal/trace"
)

// A kernel's instruction pattern depends only on its instruction mix and
// its seed, and a study simulates the same few representative kernels
// thousands of times (once per PKS group per configuration, plus every
// ablation variant). Building the pattern — an O(mix total) fill plus a
// Fisher-Yates shuffle — on every launch was pure rework, so patterns are
// memoized process-wide, keyed on exactly the fields that determine them.
//
// The cached slice is shared between concurrent simulators; that is safe
// because the cycle loop only ever reads it. parallel.Cache gives
// singleflight semantics, so concurrent first launches of the same kernel
// build the pattern once.
type patternKey struct {
	mix  trace.InstrMix
	seed uint64
}

var patternCache parallel.Cache[patternKey, []uint8]

// patternFor returns the (shared, read-only) instruction pattern for k.
func patternFor(k *trace.KernelDesc) []uint8 {
	p, _ := patternCache.Do(patternKey{mix: k.Mix, seed: k.Seed}, func() ([]uint8, error) {
		return buildPattern(k), nil
	})
	return p
}

// patternCacheStats exposes hit/miss counts to tests.
func patternCacheStats() (hits, misses uint64) { return patternCache.Stats() }
