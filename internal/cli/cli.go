// Package cli carries the plumbing the pka and pkaexp commands share:
// device and workload resolution for the common flag spellings, and the
// telemetry flag bundle (-trace, -metrics, -audit, -debug-addr) that turns
// an internal/obs Observer on, wires it into the worker pools, and writes
// the artifacts out at exit. Keeping this here means both binaries expose
// identical observability surfaces without duplicating the glue.
package cli

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"pka/internal/artifact"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/predict"
	"pka/internal/remote"
	"pka/internal/sampling"
	"pka/internal/workload"
)

// DeviceNames lists the accepted -device spellings.
const DeviceNames = "volta | turing | ampere | volta40"

// Device resolves a -device flag value to a modeled GPU.
func Device(name string) (gpu.Device, error) {
	switch name {
	case "volta":
		return gpu.VoltaV100(), nil
	case "turing":
		return gpu.TuringRTX2060(), nil
	case "ampere":
		return gpu.AmpereRTX3070(), nil
	case "volta40":
		return gpu.VoltaV100().WithSMs(40), nil
	default:
		return gpu.Device{}, fmt.Errorf("unknown device %q (want %s)", name, DeviceNames)
	}
}

// FindWorkload resolves one full workload name ("suite/name") from the
// study set.
func FindWorkload(name string) (*workload.Workload, error) {
	w := workload.Find(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q (try -list)", name)
	}
	return w, nil
}

// Workloads resolves a comma-separated list of full workload names.
func Workloads(csv string) ([]*workload.Workload, error) {
	var ws []*workload.Workload
	for _, n := range strings.Split(csv, ",") {
		w, err := FindWorkload(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// FlagConflicts rejects incompatible flag combinations after parsing: each
// pair names two flags that must not both be set on the command line. It
// returns a single clear error naming the first conflicting pair, so
// mutually exclusive modes (-stream with -suite-dedup, say) fail at flag
// validation instead of somewhere deep in the pipeline. A nil fs checks
// the default flag set.
func FlagConflicts(fs *flag.FlagSet, pairs ...[2]string) error {
	if fs == nil {
		fs = flag.CommandLine
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, p := range pairs {
		if set[p[0]] && set[p[1]] {
			return fmt.Errorf("-%s and -%s are mutually exclusive", p[0], p[1])
		}
	}
	return nil
}

// ParseWeights parses a "tenant=weight,tenant=weight" list (the -tenants
// spelling shared by pkaserve and pkaload). Weights must be positive
// integers; an empty string is an empty map.
func ParseWeights(csv string) (map[string]int, error) {
	out := map[string]int{}
	if strings.TrimSpace(csv) == "" {
		return out, nil
	}
	for _, pair := range strings.Split(csv, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant weight %q: want name=weight", pair)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 1 {
			return nil, fmt.Errorf("tenant weight %q: weight must be a positive integer", pair)
		}
		out[name] = w
	}
	return out, nil
}

// ObsFlags is the telemetry flag bundle both CLIs register. Telemetry is
// off (and the Observer nil) unless at least one flag is set; everything
// it records is observe-only, so results are byte-identical either way.
type ObsFlags struct {
	Trace     string // Chrome trace_event JSON output path
	Metrics   string // Prometheus text exposition output path
	Audit     string // decision-audit NDJSON output path
	DebugAddr string // host:port for pprof + expvar + /metrics

	observer *obs.Observer
}

// Register installs the telemetry flags on the flag set (the default set
// when fs is nil).
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace (chrome://tracing, Perfetto) of pipeline spans to this file")
	fs.StringVar(&f.Metrics, "metrics", "", "write Prometheus text-format metrics to this file at exit")
	fs.StringVar(&f.Audit, "audit", "", "write PKS/PKP decision-audit records (NDJSON) to this file")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof, expvar and /metrics on this host:port")
}

// Active reports whether any telemetry output was requested.
func (f *ObsFlags) Active() bool {
	return f.Trace != "" || f.Metrics != "" || f.Audit != "" || f.DebugAddr != ""
}

// Use installs a pre-built Observer for Start to adopt instead of
// creating its own. Commands that are always observed (the study server)
// use this to share one observer between their serving surfaces and the
// flag bundle's artifact writers. Call it before Start.
func (f *ObsFlags) Use(o *obs.Observer) { f.observer = o }

// Start builds the Observer when telemetry was requested (or adopts the
// one Use installed), installs it as the process-wide pool observer, and
// starts the debug server when asked. It returns nil (telemetry fully
// disabled) when no flag was set and no observer was installed.
func (f *ObsFlags) Start() (*obs.Observer, error) {
	if f.observer == nil && !f.Active() {
		return nil, nil
	}
	o := f.observer
	if o == nil {
		o = obs.NewObserver()
		f.observer = o
	}
	o.RegisterBuildInfo()
	parallel.SetObserver(o.PoolMetrics())
	if f.DebugAddr != "" {
		ln, err := net.Listen("tcp", f.DebugAddr)
		if err != nil {
			return nil, fmt.Errorf("debug server: %w", err)
		}
		go http.Serve(ln, debugMux(o)) //nolint:errcheck // best-effort debug endpoint
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ (pprof, expvar, /metrics)\n", ln.Addr())
	}
	return o, nil
}

// debugMux serves the standard pprof and expvar handlers plus the obs
// registry's Prometheus exposition on its own mux, so enabling the debug
// server never touches http.DefaultServeMux.
func debugMux(o *obs.Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.SyncCacheStats()
		o.SyncRemoteStats()
		o.Metrics.WritePrometheus(w) //nolint:errcheck // client went away
	})
	return mux
}

// Finish writes every requested artifact from the Observer Start built.
// It is a no-op when telemetry was never started.
func (f *ObsFlags) Finish() error {
	o := f.observer
	if o == nil {
		return nil
	}
	o.SyncCacheStats()
	o.SyncRemoteStats()
	if f.Trace != "" {
		if err := writeFile(f.Trace, o.WriteChromeTrace); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if f.Metrics != "" {
		if err := writeFile(f.Metrics, o.Metrics.WritePrometheus); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if f.Audit != "" {
		if err := writeFile(f.Audit, o.Audit.WriteNDJSON); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
	}
	return nil
}

// CacheFlags is the persistent-artifact-cache flag bundle both CLIs
// register: -cache-dir enables the on-disk content-addressed store of
// per-kernel simulation outcomes, -cache-max-mb bounds it, and
// -cache-stats dumps end-of-run cache counters as JSON. The cache only
// changes wall-clock time — cached and fresh runs render byte-identical
// output, because every entry is keyed by the full simulation input.
type CacheFlags struct {
	Dir   string // artifact store directory; empty disables the disk cache
	MaxMB int64  // size bound in MiB; 0 applies the store default
	Stats string // cache-counter JSON output path ("-" for stdout)

	store *artifact.Store
}

// Register installs the cache flags on the flag set (the default set when
// fs is nil).
func (f *CacheFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Dir, "cache-dir", "", "persist per-kernel simulation outcomes in this directory (content-addressed; reused across runs)")
	fs.Int64Var(&f.MaxMB, "cache-max-mb", 0, "artifact cache size bound in MiB (0 = default)")
	fs.StringVar(&f.Stats, "cache-stats", "", "write end-of-run cache hit/miss counters as JSON to this file (\"-\" for stdout)")
}

// Open opens the artifact store when -cache-dir was given; it returns
// (nil, nil) when the disk cache is disabled, and the returned store is
// nil-safe everywhere it is consumed.
func (f *CacheFlags) Open() (*artifact.Store, error) {
	if f.Dir == "" {
		return nil, nil
	}
	st, err := artifact.Open(f.Dir, artifact.Options{MaxBytes: f.MaxMB << 20})
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	f.store = st
	return st, nil
}

// Finish writes the -cache-stats JSON (families from the study-level
// caches plus the artifact store's own counters) and closes the store.
// Safe to call when the cache was never opened.
func (f *CacheFlags) Finish(families func() map[string]obs.CacheCounts) error {
	if f.Stats != "" {
		doc := struct {
			Families map[string]obs.CacheCounts `json:"families,omitempty"`
			Artifact *artifact.Stats            `json:"artifact,omitempty"`
		}{}
		if families != nil {
			doc.Families = families()
		}
		if f.store != nil {
			st := f.store.Stats()
			doc.Artifact = &st
		}
		render := func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		}
		if f.Stats == "-" {
			if err := render(os.Stdout); err != nil {
				return fmt.Errorf("cache stats: %w", err)
			}
		} else if err := writeFile(f.Stats, render); err != nil {
			return fmt.Errorf("cache stats: %w", err)
		}
	}
	if f.store != nil {
		return f.store.Close()
	}
	return nil
}

// RemoteFlags is the scale-out flag bundle both CLIs register: -workers
// points the study's Exec ladder at a pool of pkad workers, -serve runs an
// in-process worker alongside the study (handy for loopback smoke tests
// and for donating this machine's spare capacity to a fleet sharing one
// cache directory), and -hedge-after / -worker-cap tune the dispatcher.
// -shard adds the sharded fleet-cache tier on top: outcomes replicate to
// their consistent-hash owners across the fleet and the Exec ladder asks
// the owner shard before dispatching. Like the artifact cache, the remote
// and shard tiers only change where cycles are spent: output stays
// byte-identical with or without them.
type RemoteFlags struct {
	Workers    string        // comma-separated worker base URLs; empty disables the remote tier
	Serve      string        // host:port to serve an in-process worker on; empty disables
	HedgeAfter time.Duration // hedge-delay floor
	WorkerCap  int           // per-worker in-flight bound (dispatch) and serve capacity

	// Shard enables the sharded fleet-cache tier: the listed pkad URLs
	// form a consistent-hash ring over which cached kernel outcomes are
	// content-addressed, and the Exec ladder asks a key's owner shard
	// before dispatching work (mem → disk → shard → workers → sim).
	Shard         string // comma-separated ring member URLs; empty disables
	ShardReplicas int    // ring replication factor (0 = artifact.DefaultReplicas)
	ShardVNodes   int    // virtual nodes per member (0 = artifact.DefaultVNodes)

	dispatcher *remote.Dispatcher
	shard      *remote.ShardClient
}

// Register installs the remote flags on the flag set (the default set when
// fs is nil).
func (f *RemoteFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Workers, "workers", "", "comma-separated pkad worker URLs to dispatch kernel tasks to (e.g. http://host:9377,http://host2:9377)")
	fs.StringVar(&f.Serve, "serve", "", "also serve kernel-task execution as a pkad worker on this host:port")
	fs.DurationVar(&f.HedgeAfter, "hedge-after", 100*time.Millisecond, "hedge a slow worker RPC onto a second worker after max(this, observed p95 latency)")
	fs.IntVar(&f.WorkerCap, "worker-cap", 4, "bound on concurrent tasks per worker (both dispatching and serving)")
	fs.StringVar(&f.Shard, "shard", "", "comma-separated pkad URLs forming the consistent-hash fleet-cache ring (usually the same list as -workers)")
	fs.IntVar(&f.ShardReplicas, "shard-replicas", 0, "fleet-cache ring replication factor (0 = default 2)")
	fs.IntVar(&f.ShardVNodes, "shard-vnodes", 0, "virtual nodes per fleet-cache ring member (0 = default 128)")
}

// Start wires the remote tier up. When -serve is set it starts an
// in-process worker whose Exec shares the given artifact store but has no
// remote tier of its own (workers never forward work, so fleets cannot
// loop). When -workers is set it builds the hedging dispatcher, registers
// its per-worker stats with the observer, and returns it for
// Exec.SetRemote; otherwise it returns nil.
func (f *RemoteFlags) Start(store *artifact.Store, o *obs.Observer) (*remote.Dispatcher, error) {
	if f.Serve != "" {
		srv := remote.NewServer(sampling.NewExec(nil, store), f.WorkerCap)
		srv.Obs = o
		ln, err := net.Listen("tcp", f.Serve)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		go http.Serve(ln, srv.Handler()) //nolint:errcheck // lives until process exit
		fmt.Fprintf(os.Stderr, "worker serving kernel tasks on http://%s%s (capacity %d)\n", ln.Addr(), remote.ExecPath, f.WorkerCap)
	}
	if f.Shard != "" {
		peers := splitURLs(f.Shard)
		if len(peers) == 0 {
			return nil, fmt.Errorf("-shard: no ring member URLs in %q", f.Shard)
		}
		f.shard = remote.NewShardClient(remote.ShardOptions{
			Peers:    peers,
			Replicas: f.ShardReplicas,
			VNodes:   f.ShardVNodes,
			Metrics:  o.ShardMetrics(),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if f.shard != nil {
			ring := f.shard.Ring()
			fmt.Fprintf(os.Stderr, "fleet cache sharded over %d peer(s), replication %d\n",
				len(ring.Members()), ring.Replicas())
		}
	}
	if f.Workers == "" {
		return nil, nil
	}
	urls := splitURLs(f.Workers)
	if len(urls) == 0 {
		return nil, fmt.Errorf("-workers: no worker URLs in %q", f.Workers)
	}
	d := remote.NewDispatcher(remote.DispatcherOptions{
		Workers:      urls,
		CapPerWorker: f.WorkerCap,
		HedgeAfter:   f.HedgeAfter,
		Metrics:      o.RemoteMetrics(),
	})
	o.RegisterRemoteStats(d.Stats)
	f.dispatcher = d
	return d, nil
}

// Dispatcher returns the dispatcher Start built (nil without -workers).
func (f *RemoteFlags) Dispatcher() *remote.Dispatcher { return f.dispatcher }

// ShardClient returns the fleet-cache shard client Start built (nil
// without -shard). Wire it with Exec.SetShard, and fold its CacheCounts
// into the -cache-stats families as "shard".
func (f *RemoteFlags) ShardClient() *remote.ShardClient { return f.shard }

// PredictFlags is the learned-predictor flag bundle both CLIs register.
// -predict loads a trained model artifact and installs it as the Exec
// ladder's opt-in tier 0: kernels the model answers confidently skip
// simulation entirely, everything else falls through to the exact ladder.
// -predict-train mines the artifact cache (-cache-dir) for accumulated
// outcomes, fits a model, writes the versioned artifact, and exits.
// Without -predict the tier does not exist and output is byte-identical
// to earlier builds; with it, an async verifier re-simulates a sampled
// fraction of served predictions and auto-disables the tier when the
// observed error exceeds -predict-err-bound.
type PredictFlags struct {
	Model      string  // model artifact to serve from; empty disables the tier
	Train      string  // train a model from the artifact cache into this path, then exit
	Conf       float64 // minimum confidence to serve a non-exact prediction
	VerifyFrac float64 // fraction of served predictions to re-simulate (0 = none)
	VerifySeed uint64  // seed for the deterministic verify sampler
	ErrBound   float64 // mean relative cycle error that auto-disables the tier
	MinVerify  int     // verifications required before the bound is enforced
	Seed       uint64  // training seed (-predict-train)
	Report     string  // accuracy/coverage report path ("-" for stdout)

	tier *predict.Tier
}

// Register installs the predictor flags on the flag set (the default set
// when fs is nil).
func (f *PredictFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Model, "predict", "", "serve kernel outcomes from this trained predictor model as Exec ladder tier 0 (see -predict-train)")
	fs.StringVar(&f.Train, "predict-train", "", "train a predictor model from the -cache-dir artifact store, write it to this path, and exit")
	fs.Float64Var(&f.Conf, "predict-conf", predict.DefaultMinConfidence, "minimum model confidence to serve a non-exact prediction (>1 = exact training keys only)")
	fs.Float64Var(&f.VerifyFrac, "predict-verify-frac", predict.DefaultVerifyFrac, "fraction of served predictions re-simulated by the async verifier (0 disables verification)")
	fs.Uint64Var(&f.VerifySeed, "predict-verify-seed", 0, "seed for the deterministic per-key verify sampler")
	fs.Float64Var(&f.ErrBound, "predict-err-bound", predict.DefaultErrorBound, "mean relative projected-cycle error over verified predictions that auto-disables the tier")
	fs.IntVar(&f.MinVerify, "predict-min-verify", predict.DefaultMinVerified, "verifications required before -predict-err-bound is enforced")
	fs.Uint64Var(&f.Seed, "predict-seed", 0, "training seed for -predict-train (same store + seed = identical model)")
	fs.StringVar(&f.Report, "predict-report", "", "write the predictor accuracy/coverage report to this file (\"-\" for stdout)")
}

// Active reports whether -predict was given.
func (f *PredictFlags) Active() bool { return f.Model != "" }

// Start loads the model named by -predict and installs the serving tier
// on the exec. A no-op without -predict, so the default ladder is exactly
// the pre-predictor one.
func (f *PredictFlags) Start(exec *sampling.Exec, o *obs.Observer) error {
	if f.Model == "" {
		return nil
	}
	model, err := predict.Load(f.Model)
	if err != nil {
		return err
	}
	vf := f.VerifyFrac
	if vf <= 0 {
		vf = -1 // NewTier treats negative as "no verification"
	}
	opts := predict.TierOptions{
		MinConfidence:  f.Conf,
		VerifyFraction: vf,
		VerifySeed:     f.VerifySeed,
		ErrorBound:     f.ErrBound,
		MinVerified:    f.MinVerify,
	}
	if o != nil {
		opts.Metrics = o.PredictorMetrics()
	}
	f.tier = predict.NewTier(model, opts)
	exec.SetPredictor(f.tier)
	fmt.Fprintf(os.Stderr, "predictor: serving from %s (%d training keys, device %s)\n",
		f.Model, model.Rows(), model.DeviceName())
	return nil
}

// Tier returns the serving tier Start installed (nil without -predict).
func (f *PredictFlags) Tier() *predict.Tier { return f.tier }

// TrainAndSave runs the -predict-train mode: mine the store for training
// samples over the workloads' task specs, fit a model, and persist it.
func (f *PredictFlags) TrainAndSave(dev gpu.Device, store *artifact.Store, ws []*workload.Workload, scan predict.ScanOptions) error {
	if store == nil {
		return fmt.Errorf("predict-train: needs -cache-dir (the model is trained from the artifact store)")
	}
	samples, sum := predict.ScanStore(dev, store, ws, scan)
	fmt.Printf("predictor training scan: %d workloads, %d kernels, %d keys probed, %d outcomes found\n",
		sum.Workloads, sum.Kernels, sum.Probed, sum.Hits)
	model, err := predict.Train(dev, samples, predict.TrainOptions{Seed: f.Seed})
	if err != nil {
		return err
	}
	if err := model.Save(f.Train); err != nil {
		return err
	}
	fmt.Printf("predictor model written to %s (%d training rows, in-sample rel err %.4f)\n",
		f.Train, model.Rows(), model.FitError())
	return nil
}

// Finish drains the exec's async verifier and writes the -predict-report.
// Safe to call when the tier was never installed.
func (f *PredictFlags) Finish(exec *sampling.Exec) error {
	if f.tier == nil {
		return nil
	}
	exec.DrainVerify()
	if f.Report == "" {
		return nil
	}
	if f.Report == "-" {
		return f.tier.WriteReport(os.Stdout)
	}
	return writeFile(f.Report, f.tier.WriteReport)
}

// splitURLs splits a comma-separated URL list, dropping blanks.
func splitURLs(csv string) []string {
	var urls []string
	for _, u := range strings.Split(csv, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

func writeFile(path string, render func(w io.Writer) error) error {
	g, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(g); err != nil {
		g.Close()
		return err
	}
	return g.Close()
}
