// Package cli carries the plumbing the pka and pkaexp commands share:
// device and workload resolution for the common flag spellings, and the
// telemetry flag bundle (-trace, -metrics, -audit, -debug-addr) that turns
// an internal/obs Observer on, wires it into the worker pools, and writes
// the artifacts out at exit. Keeping this here means both binaries expose
// identical observability surfaces without duplicating the glue.
package cli

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/workload"
)

// DeviceNames lists the accepted -device spellings.
const DeviceNames = "volta | turing | ampere | volta40"

// Device resolves a -device flag value to a modeled GPU.
func Device(name string) (gpu.Device, error) {
	switch name {
	case "volta":
		return gpu.VoltaV100(), nil
	case "turing":
		return gpu.TuringRTX2060(), nil
	case "ampere":
		return gpu.AmpereRTX3070(), nil
	case "volta40":
		return gpu.VoltaV100().WithSMs(40), nil
	default:
		return gpu.Device{}, fmt.Errorf("unknown device %q (want %s)", name, DeviceNames)
	}
}

// FindWorkload resolves one full workload name ("suite/name") from the
// study set.
func FindWorkload(name string) (*workload.Workload, error) {
	w := workload.Find(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q (try -list)", name)
	}
	return w, nil
}

// Workloads resolves a comma-separated list of full workload names.
func Workloads(csv string) ([]*workload.Workload, error) {
	var ws []*workload.Workload
	for _, n := range strings.Split(csv, ",") {
		w, err := FindWorkload(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// ObsFlags is the telemetry flag bundle both CLIs register. Telemetry is
// off (and the Observer nil) unless at least one flag is set; everything
// it records is observe-only, so results are byte-identical either way.
type ObsFlags struct {
	Trace     string // Chrome trace_event JSON output path
	Metrics   string // Prometheus text exposition output path
	Audit     string // decision-audit NDJSON output path
	DebugAddr string // host:port for pprof + expvar + /metrics

	observer *obs.Observer
}

// Register installs the telemetry flags on the flag set (the default set
// when fs is nil).
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace (chrome://tracing, Perfetto) of pipeline spans to this file")
	fs.StringVar(&f.Metrics, "metrics", "", "write Prometheus text-format metrics to this file at exit")
	fs.StringVar(&f.Audit, "audit", "", "write PKS/PKP decision-audit records (NDJSON) to this file")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof, expvar and /metrics on this host:port")
}

// Active reports whether any telemetry output was requested.
func (f *ObsFlags) Active() bool {
	return f.Trace != "" || f.Metrics != "" || f.Audit != "" || f.DebugAddr != ""
}

// Start builds the Observer when telemetry was requested, installs it as
// the process-wide pool observer, and starts the debug server when asked.
// It returns nil (telemetry fully disabled) when no flag was set.
func (f *ObsFlags) Start() (*obs.Observer, error) {
	if !f.Active() {
		return nil, nil
	}
	o := obs.NewObserver()
	f.observer = o
	parallel.SetObserver(o.PoolMetrics())
	if f.DebugAddr != "" {
		ln, err := net.Listen("tcp", f.DebugAddr)
		if err != nil {
			return nil, fmt.Errorf("debug server: %w", err)
		}
		go http.Serve(ln, debugMux(o)) //nolint:errcheck // best-effort debug endpoint
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ (pprof, expvar, /metrics)\n", ln.Addr())
	}
	return o, nil
}

// debugMux serves the standard pprof and expvar handlers plus the obs
// registry's Prometheus exposition on its own mux, so enabling the debug
// server never touches http.DefaultServeMux.
func debugMux(o *obs.Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics.WritePrometheus(w) //nolint:errcheck // client went away
	})
	return mux
}

// Finish writes every requested artifact from the Observer Start built.
// It is a no-op when telemetry was never started.
func (f *ObsFlags) Finish() error {
	o := f.observer
	if o == nil {
		return nil
	}
	if f.Trace != "" {
		if err := writeFile(f.Trace, o.WriteChromeTrace); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if f.Metrics != "" {
		if err := writeFile(f.Metrics, o.Metrics.WritePrometheus); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if f.Audit != "" {
		if err := writeFile(f.Audit, o.Audit.WriteNDJSON); err != nil {
			return fmt.Errorf("audit: %w", err)
		}
	}
	return nil
}

func writeFile(path string, render func(w io.Writer) error) error {
	g, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(g); err != nil {
		g.Close()
		return err
	}
	return g.Close()
}
