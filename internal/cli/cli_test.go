package cli

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func conflictSet(t *testing.T, args ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.String("stream", "", "")
	fs.Bool("suite-dedup", false, "")
	fs.String("w", "", "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagConflicts(t *testing.T) {
	pair := [2]string{"stream", "suite-dedup"}

	// Both set: one clear error naming both flags.
	fs := conflictSet(t, "-stream", "events.ndjson", "-suite-dedup")
	err := FlagConflicts(fs, pair)
	if err == nil {
		t.Fatal("conflicting flags accepted")
	}
	if !strings.Contains(err.Error(), "-stream") || !strings.Contains(err.Error(), "-suite-dedup") {
		t.Errorf("error %q does not name both flags", err)
	}

	// Either alone is fine, as is neither; a set flag at its default value
	// still counts as set (the user typed it).
	for _, args := range [][]string{
		{"-stream", "events.ndjson"},
		{"-suite-dedup"},
		{"-w", "Rodinia/gauss_208"},
		{},
	} {
		fs := conflictSet(t, args...)
		if err := FlagConflicts(fs, pair); err != nil {
			t.Errorf("args %v: unexpected conflict: %v", args, err)
		}
	}

	// Multiple pairs: the first conflicting pair wins.
	fs = conflictSet(t, "-stream", "x", "-suite-dedup", "-w", "a/b")
	err = FlagConflicts(fs, [2]string{"w", "stream"}, pair)
	if err == nil || !strings.Contains(err.Error(), "-w") {
		t.Errorf("expected the first pair's error, got %v", err)
	}
}
