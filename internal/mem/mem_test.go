package mem

import (
	"testing"
	"testing/quick"

	"pka/internal/stats"
)

func TestCacheColdMissThenHit(t *testing.T) {
	c := NewCache(1024, 4, 64)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1030) { // same 64-byte line
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Error("next-line access hit cold")
	}
	if c.Hits() != 2 || c.Misses() != 2 || c.Accesses() != 4 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped, 2 sets of 64B: addresses 0 and 128 collide in set 0.
	c := NewCache(128, 1, 64)
	c.Access(0)
	c.Access(128) // evicts 0
	if c.Access(0) {
		t.Error("evicted line still resident")
	}
	// 2-way: both fit.
	c2 := NewCache(256, 2, 64)
	c2.Access(0)
	c2.Access(256)
	if !c2.Access(0) || !c2.Access(256) {
		t.Error("2-way set should retain both conflicting lines")
	}
	// Touch 0 to make 256 the LRU victim, then insert a third conflicting line.
	c2.Access(0)
	c2.Access(512)
	if !c2.Access(0) {
		t.Error("MRU line was evicted")
	}
	if c2.Access(256) {
		t.Error("LRU line was retained over MRU")
	}
}

func TestCacheWorkingSetBehaviour(t *testing.T) {
	// Working set smaller than cache: near-zero steady-state miss rate.
	c := NewCache(64*1024, 8, 128)
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 32*1024; addr += 128 {
			c.Access(addr)
		}
	}
	if c.MissRate() > 0.3 {
		t.Errorf("small working set miss rate = %v", c.MissRate())
	}
	// Streaming working set much larger than cache: high miss rate.
	c2 := NewCache(8*1024, 8, 128)
	for addr := uint64(0); addr < 4*1024*1024; addr += 128 {
		c2.Access(addr)
	}
	if c2.MissRate() < 0.99 {
		t.Errorf("streaming miss rate = %v", c2.MissRate())
	}
}

func TestCacheResetAndFlush(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Access(0)
	c.ResetStats()
	if c.Accesses() != 0 {
		t.Error("ResetStats left counters")
	}
	if !c.Access(0) {
		t.Error("ResetStats flushed contents")
	}
	c.Flush()
	if c.Access(0) {
		t.Error("Flush retained contents")
	}
	if c.MissRate() != 1 {
		t.Errorf("post-flush miss rate = %v", c.MissRate())
	}
}

func TestNewCachePanicsOnBadLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two line accepted")
		}
	}()
	NewCache(1024, 2, 96)
}

func TestCacheTinySizeStillWorks(t *testing.T) {
	c := NewCache(16, 4, 128) // smaller than one set: clamps to 1 set
	c.Access(0)
	if !c.Access(0) {
		t.Error("single-set cache broken")
	}
}

// Property: hit rate of a repeated scan over N distinct lines is 100% after
// warmup iff N fits in the cache; conflict-free because N <= ways*sets and
// addresses are consecutive lines.
func TestCacheResidencyProperty(t *testing.T) {
	f := func(linesRaw uint8) bool {
		ways, sets, lineB := 4, 16, 64
		c := NewCache(ways*sets*lineB, ways, lineB)
		n := int(linesRaw%uint8(ways*sets)) + 1
		for i := 0; i < n; i++ { // warm
			c.Access(uint64(i * lineB))
		}
		c.ResetStats()
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < n; i++ {
				c.Access(uint64(i * lineB))
			}
		}
		return c.MissRate() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMLatencyOnly(t *testing.T) {
	d := NewDRAM(64, 100)
	done := d.Request(0, 32)
	if done != 1+100 {
		t.Errorf("done = %d, want 101", done)
	}
	if d.BytesMoved() != 32 || d.Requests() != 1 {
		t.Error("counters wrong")
	}
}

func TestDRAMBandwidthQueueing(t *testing.T) {
	d := NewDRAM(32, 10) // one 32-byte sector per cycle
	// Issue 100 sector requests at cycle 0: the pipe serializes them.
	var last int64
	for i := 0; i < 100; i++ {
		last = d.Request(0, 32)
	}
	if last != 100+10 {
		t.Errorf("last completion = %d, want 110", last)
	}
	if u := d.Utilization(100); u < 0.99 {
		t.Errorf("utilization = %v, want ~1", u)
	}
}

func TestDRAMIdleGaps(t *testing.T) {
	d := NewDRAM(32, 0)
	d.Request(0, 32)
	d.Request(1000, 32)
	if u := d.Utilization(2000); u < 0.0009 || u > 0.0011 {
		t.Errorf("utilization = %v, want ~0.001", u)
	}
	if d.Utilization(0) != 0 {
		t.Error("zero elapsed should report 0")
	}
}

func TestDRAMZeroBytes(t *testing.T) {
	d := NewDRAM(10, 50)
	if done := d.Request(7, 0); done != 57 {
		t.Errorf("zero-byte request done = %d", done)
	}
	if d.Requests() != 0 {
		t.Error("zero-byte request counted")
	}
}

func TestDRAMResetStats(t *testing.T) {
	d := NewDRAM(10, 5)
	d.Request(0, 100)
	d.ResetStats()
	if d.BytesMoved() != 0 || d.Requests() != 0 || d.BusyCycles() != 0 {
		t.Error("ResetStats incomplete")
	}
	// Schedule persists: the next request queues behind the previous one.
	if done := d.Request(0, 10); done <= 5 {
		t.Errorf("pipe schedule was reset: done = %d", done)
	}
}

func TestDRAMPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive bandwidth accepted")
		}
	}()
	NewDRAM(0, 1)
}

// Property: completion times are monotonically non-decreasing for requests
// issued in time order, and utilization is always within [0, 1].
func TestDRAMMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := stats.NewRNG(uint64(seed))
		d := NewDRAM(16, 20)
		var now, prevDone int64
		for i := 0; i < 200; i++ {
			now += int64(rng.Intn(5))
			done := d.Request(now, 32*(1+rng.Intn(4)))
			if done < prevDone {
				return false
			}
			prevDone = done
		}
		u := d.Utilization(now + 1)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
