// Package mem models the GPU memory system used by the cycle-level
// simulator: set-associative LRU caches for L1/L2 and a latency+bandwidth
// DRAM channel. The models are deliberately structural — real tag arrays
// and a real bandwidth bottleneck — because Principal Kernel Projection's
// stability signal depends on memory contention emerging rather than being
// scripted.
package mem

// Cache is a set-associative cache with true-LRU replacement and
// write-allocate policy. It tracks hit/miss counts for miss-rate telemetry.
type Cache struct {
	ways      int
	numSets   int
	setMask   uint64 // numSets-1 when numSets is a power of two, else 0
	lineShift uint
	// tags[set*ways+way]; lru holds per-way recency (higher = more recent).
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64

	hits, misses int64
}

// NewCache builds a cache of sizeBytes organized as ways-associative with
// the given line size. Size is rounded down to a whole number of sets; the
// cache always has at least one set. Line size must be a power of two.
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if ways < 1 {
		ways = 1
	}
	if lineBytes < 1 || lineBytes&(lineBytes-1) != 0 {
		panic("mem: line size must be a positive power of two")
	}
	numSets := sizeBytes / (ways * lineBytes)
	if numSets < 1 {
		numSets = 1
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	n := numSets * ways
	c := &Cache{
		ways:      ways,
		numSets:   numSets,
		lineShift: shift,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		lru:       make([]uint64, n),
	}
	if numSets&(numSets-1) == 0 {
		c.setMask = uint64(numSets - 1)
	}
	return c
}

// Access looks up addr, allocating the line on a miss (for both reads and
// writes), and reports whether it hit. The tag scan doubles as the victim
// scan (invalid way first, else least recently used) so a miss walks the
// set once, and the per-set slices are carved out up front to keep bounds
// checks out of the way loop.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	var set int
	if c.setMask != 0 {
		set = int(line & c.setMask)
	} else {
		set = int(line % uint64(c.numSets))
	}
	base := set * c.ways
	c.clock++

	tags := c.tags[base : base+c.ways]
	valid := c.valid[base : base+c.ways]
	lru := c.lru[base : base+c.ways]
	firstInvalid := -1
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := range tags {
		if !valid[w] {
			if firstInvalid < 0 {
				firstInvalid = w
			}
			continue
		}
		if tags[w] == line {
			lru[w] = c.clock
			c.hits++
			return true
		}
		if lru[w] < oldest {
			oldest = lru[w]
			victim = w
		}
	}
	c.misses++
	if firstInvalid >= 0 {
		victim = firstInvalid
	}
	tags[victim] = line
	valid[victim] = true
	lru[victim] = c.clock
	return false
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses }

// Accesses returns hits + misses.
func (c *Cache) Accesses() int64 { return c.hits + c.misses }

// MissRate returns misses / accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// ResetStats zeroes the hit/miss counters without flushing cache contents,
// so per-kernel telemetry can be isolated while warmed state persists.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Flush invalidates every line and clears statistics.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.clock = 0
	c.ResetStats()
}
