package mem

// DRAM models a memory channel as a fixed access latency in series with a
// shared bandwidth pipe. Requests are serialized through the pipe at
// bytesPerCycle; completion time is the pipe drain time plus latency. The
// busy-time integral yields the DRAM utilization statistic that Table 4
// reports and that PKA projects.
type DRAM struct {
	bytesPerCycle float64
	latency       int64

	nextFree   float64 // first instant the pipe can accept a new request (fractional cycles)
	busyCycles float64
	bytesMoved int64
	requests   int64
}

// NewDRAM builds a channel with the given bandwidth (bytes per core cycle)
// and fixed access latency in cycles.
func NewDRAM(bytesPerCycle float64, latencyCycles int) *DRAM {
	if bytesPerCycle <= 0 {
		panic("mem: DRAM bandwidth must be positive")
	}
	if latencyCycles < 0 {
		latencyCycles = 0
	}
	return &DRAM{bytesPerCycle: bytesPerCycle, latency: int64(latencyCycles)}
}

// Request schedules a transfer of the given size starting no earlier than
// cycle now and returns the cycle at which the data is available. Requests
// queue behind earlier ones when the pipe is saturated, so a bandwidth-
// bound kernel sees its effective latency grow — the contention behaviour
// PKP's wave constraint exists to capture.
func (d *DRAM) Request(now int64, bytes int) int64 {
	if bytes <= 0 {
		return now + d.latency
	}
	start := float64(now)
	if d.nextFree > start {
		start = d.nextFree
	}
	transfer := float64(bytes) / d.bytesPerCycle
	d.nextFree = start + transfer
	d.busyCycles += transfer
	d.bytesMoved += int64(bytes)
	d.requests++
	done := d.nextFree + float64(d.latency)
	di := int64(done)
	if float64(di) < done {
		di++
	}
	return di
}

// Utilization returns the fraction of cycles in [0, elapsed) the pipe spent
// transferring data, clamped to [0, 1].
func (d *DRAM) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := d.busyCycles / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// BytesMoved returns the cumulative bytes transferred.
func (d *DRAM) BytesMoved() int64 { return d.bytesMoved }

// Requests returns the number of transfers serviced.
func (d *DRAM) Requests() int64 { return d.requests }

// BusyCycles returns the cumulative pipe-busy time in cycles.
func (d *DRAM) BusyCycles() float64 { return d.busyCycles }

// ResetStats zeroes counters but keeps the pipe schedule, letting
// per-kernel statistics be isolated mid-simulation.
func (d *DRAM) ResetStats() {
	d.busyCycles = 0
	d.bytesMoved = 0
	d.requests = 0
}

// Rebase re-aligns the pipe schedule to a new time origin. The simulator
// calls it when a kernel launch restarts the cycle clock at zero — without
// it, requests would queue behind the previous kernel's (absolute) drain
// time.
func (d *DRAM) Rebase() { d.nextFree = 0 }
