package pks

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pka/internal/trace"
)

// The paper's artifact persists each workload's selection — the number of
// principal groups, the principal kernel of each group and its weight — so
// that tracing and simulation can consume it without re-profiling. This
// file provides the equivalent as a stable JSON document.

// SelectionFile is the on-disk form of a Selection: everything a
// simulator integration needs to replay the sampled workload, without the
// profiler internals.
type SelectionFile struct {
	Version  int    `json:"version"`
	Workload string `json:"workload"`
	Device   string `json:"device"`

	K               int  `json:"k"`
	TwoLevel        bool `json:"two_level"`
	DetailedKernels int  `json:"detailed_kernels"`
	TotalKernels    int  `json:"total_kernels"`

	SelectionErrorPct float64 `json:"selection_error_pct"`
	SiliconSpeedup    float64 `json:"silicon_speedup"`

	Groups []GroupFile `json:"groups"`
}

// GroupFile is one group's persisted form.
type GroupFile struct {
	RepKernelID int     `json:"rep_kernel_id"`
	RepName     string  `json:"rep_name"`
	RepGrid     [3]int  `json:"rep_grid"`
	RepBlock    [3]int  `json:"rep_block"`
	RepCycles   int64   `json:"rep_cycles"`
	Count       int     `json:"count"`
	Weight      float64 `json:"weight"` // count / total kernels
}

// currentVersion of the selection file format.
const currentVersion = 1

// File converts a Selection into its serializable form.
func (s *Selection) File() SelectionFile {
	f := SelectionFile{
		Version:           currentVersion,
		Workload:          s.Workload,
		Device:            s.Device,
		K:                 s.K,
		TwoLevel:          s.TwoLevel,
		DetailedKernels:   s.DetailedKernels,
		TotalKernels:      s.TotalKernels,
		SelectionErrorPct: s.SelectionErrorPct,
		SiliconSpeedup:    s.SiliconSpeedup,
	}
	for _, g := range s.Groups {
		gf := GroupFile{
			RepKernelID: g.RepIndex,
			RepName:     g.Representative.Name,
			RepGrid:     [3]int{g.Representative.Grid.X, g.Representative.Grid.Y, g.Representative.Grid.Z},
			RepBlock:    [3]int{g.Representative.Block.X, g.Representative.Block.Y, g.Representative.Block.Z},
			RepCycles:   g.Representative.Cycles,
			Count:       g.Count(),
		}
		if s.TotalKernels > 0 {
			gf.Weight = float64(g.Count()) / float64(s.TotalKernels)
		}
		f.Groups = append(f.Groups, gf)
	}
	return f
}

// WriteJSON writes the selection as indented JSON.
func (s *Selection) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.File())
}

// SaveJSON writes the selection to a file.
func (s *Selection) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.WriteJSON(f)
}

// ReadJSON parses a selection file and validates its structure.
func ReadJSON(r io.Reader) (*SelectionFile, error) {
	var f SelectionFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("pks: parsing selection file: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// LoadJSON reads a selection file from disk.
func LoadJSON(path string) (*SelectionFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// Validate checks the invariants a consumer relies on.
func (f *SelectionFile) Validate() error {
	if f.Version != currentVersion {
		return fmt.Errorf("pks: unsupported selection file version %d", f.Version)
	}
	if f.K != len(f.Groups) {
		return fmt.Errorf("pks: K=%d but %d groups", f.K, len(f.Groups))
	}
	if len(f.Groups) == 0 {
		return fmt.Errorf("pks: selection file has no groups")
	}
	total := 0
	var weight float64
	for i, g := range f.Groups {
		if g.RepKernelID < 0 || g.RepKernelID >= f.TotalKernels {
			return fmt.Errorf("pks: group %d representative id %d out of range [0,%d)", i, g.RepKernelID, f.TotalKernels)
		}
		if g.Count <= 0 {
			return fmt.Errorf("pks: group %d has population %d", i, g.Count)
		}
		total += g.Count
		weight += g.Weight
	}
	if total != f.TotalKernels {
		return fmt.Errorf("pks: group populations sum to %d, want %d", total, f.TotalKernels)
	}
	if weight < 0.999 || weight > 1.001 {
		return fmt.Errorf("pks: group weights sum to %.4f, want 1", weight)
	}
	return nil
}

// RepresentativeDims returns the representative launch dims of group i as
// trace types, for reconstructing simulator inputs.
func (f *SelectionFile) RepresentativeDims(i int) (grid, block trace.Dim3) {
	g := f.Groups[i]
	return trace.Dim3{X: g.RepGrid[0], Y: g.RepGrid[1], Z: g.RepGrid[2]},
		trace.Dim3{X: g.RepBlock[0], Y: g.RepBlock[1], Z: g.RepBlock[2]}
}
