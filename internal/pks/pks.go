// Package pks implements Principal Kernel Selection, the paper's
// inter-kernel reduction (Section 3.1). Every kernel launch is profiled in
// silicon; the twelve microarchitecture-agnostic Table-2 metrics are
// reduced with PCA and clustered with K-Means; K is swept from 1 upward
// and the smallest K whose projected total-cycle error falls under the
// target (5%) wins; one representative kernel per group — the first
// chronologically — is selected and weighted by its group's population.
//
// For workloads whose detailed profiling would exceed the budget (one
// week), the two-level scheme kicks in: the first j kernels are profiled
// in detail and clustered, the remainder are profiled lightly (name +
// launch dims) and mapped onto the detailed groups by an ensemble of SGD,
// Gaussian Naive Bayes, and MLP classifiers.
package pks

import (
	"errors"
	"fmt"
	"math"

	"pka/internal/classify"
	"pka/internal/cluster"
	"pka/internal/gpu"
	"pka/internal/linalg"
	"pka/internal/obs"
	"pka/internal/profiler"
	"pka/internal/silicon"
	"pka/internal/stats"
	"pka/internal/trace"
	"pka/internal/workload"
)

// RepPolicy selects which member of a cluster becomes its representative.
type RepPolicy int

// Representative policies. The paper evaluated all three and chose
// first-chronological: random is inconsistent, center gains nothing over
// first, and first-chronological minimizes tracing cost.
const (
	RepFirstChronological RepPolicy = iota
	RepClusterCenter
	RepRandom
)

// String implements fmt.Stringer.
func (p RepPolicy) String() string {
	switch p {
	case RepFirstChronological:
		return "first"
	case RepClusterCenter:
		return "center"
	case RepRandom:
		return "random"
	default:
		return fmt.Sprintf("RepPolicy(%d)", int(p))
	}
}

// Options configures a selection run. The zero value reproduces the
// paper's settings.
type Options struct {
	// TargetErrorPct is the projected-cycle error threshold that ends the
	// K sweep (paper: 5%). Zero applies 5.
	TargetErrorPct float64
	// MaxK bounds the sweep (paper: ~20). Zero applies 20.
	MaxK int
	// PCAVarianceTarget is the explained-variance fraction kept (0.9).
	PCAVarianceTarget float64
	// Representative picks the per-group representative policy.
	Representative RepPolicy
	// DisablePCA clusters on raw standardized features (ablation).
	DisablePCA bool
	// DetailedBudgetSeconds bounds modeled detailed-profiling time before
	// two-level profiling engages. Zero applies the paper's one week.
	DetailedBudgetSeconds float64
	// MaxDetailed caps the number of detailed-profiled kernels outright
	// (0 = budget only).
	MaxDetailed int
	// ClusterSampleMax subsamples the detailed set for the K sweep when
	// it is enormous; unsampled kernels are still assigned to their
	// nearest center afterwards. Zero applies 20000.
	ClusterSampleMax int
	// Seed drives k-means++ and the random representative policy.
	Seed uint64

	// Audit, when non-nil, receives one "sweep-step" decision record per
	// K tried (K, projected error, target) and a "selected" record for
	// the chosen K — the inspectable trail of the K sweep.
	Audit *obs.Audit
	// Metrics, when non-nil, receives selection counters and chosen-K /
	// selection-error histograms.
	Metrics *obs.PKSMetrics

	// auditSubject labels audit records; Select fills it from the
	// workload name.
	auditSubject string
}

func (o Options) filled() Options {
	if o.TargetErrorPct <= 0 {
		o.TargetErrorPct = 5
	}
	if o.MaxK <= 0 {
		o.MaxK = 20
	}
	if o.PCAVarianceTarget <= 0 || o.PCAVarianceTarget > 1 {
		o.PCAVarianceTarget = 0.9
	}
	if o.DetailedBudgetSeconds <= 0 {
		o.DetailedBudgetSeconds = profiler.DefaultDetailedBudgetSeconds
	}
	if o.ClusterSampleMax <= 0 {
		o.ClusterSampleMax = 20000
	}
	return o
}

// Group is one cluster of similar kernels.
type Group struct {
	// Representative is the detailed profile of the selected kernel.
	Representative profiler.DetailedRecord
	// RepIndex is the representative's chronological kernel ID.
	RepIndex int
	// DetailedCount is the number of detailed-profiled members.
	DetailedCount int
	// MappedCount is the number of lightly-profiled kernels the
	// classifiers mapped into this group (two-level only).
	MappedCount int
	// NameCounts histograms the kernel names of the group's members —
	// the per-group composition view of the paper's Figure 4.
	NameCounts map[string]int
}

// Count returns the group's total population.
func (g *Group) Count() int { return g.DetailedCount + g.MappedCount }

// Selection is the output of Principal Kernel Selection.
type Selection struct {
	Workload string
	Device   string

	K      int
	Groups []Group

	TwoLevel        bool
	DetailedKernels int
	TotalKernels    int

	// SiliconTotalCycles is the ground-truth sum of per-kernel silicon
	// cycles over the whole application (launch overheads excluded).
	SiliconTotalCycles int64
	// ProjectedCycles is Σ (representative cycles × group population).
	ProjectedCycles int64
	// SelectionErrorPct is the silicon-vs-projection cycle error.
	SelectionErrorPct float64
	// SiliconSpeedup is total silicon time over the time to execute only
	// the representative kernels once each — the "Silicon SU" columns.
	SiliconSpeedup float64

	// ProfilingSeconds is the modeled wall time the profiling pass cost.
	ProfilingSeconds float64
	// ClassifierAccuracy is the ensemble's holdout accuracy on the
	// detailed set (two-level runs only; 0 otherwise).
	ClassifierAccuracy float64
	// SweepErrors records the projected error at each K tried (1-based:
	// SweepErrors[0] is K=1), for diagnostics and ablation.
	SweepErrors []float64
}

// Select runs Principal Kernel Selection for the workload on the device.
func Select(dev gpu.Device, w *workload.Workload, opts Options) (*Selection, error) {
	o := opts.filled()
	o.auditSubject = w.FullName()
	sel := &Selection{Workload: w.FullName(), Device: dev.Name, TotalKernels: w.N}

	// Pass 1: detailed profiling until the budget (or cap) is exhausted.
	detailed := make([]profiler.DetailedRecord, 0, minInt(w.N, 4096))
	sharedMem := make([]int, 0, minInt(w.N, 4096))
	next := w.Iterator()
	budget := o.DetailedBudgetSeconds
	for k := next(); k != nil; k = next() {
		rec, cost, err := profiler.Detailed(dev, k)
		if err != nil {
			return nil, fmt.Errorf("pks: detailed profiling: %w", err)
		}
		detailed = append(detailed, rec)
		sharedMem = append(sharedMem, k.SharedMemPerBlock)
		sel.ProfilingSeconds += cost
		budget -= cost
		if budget <= 0 || (o.MaxDetailed > 0 && len(detailed) >= o.MaxDetailed) {
			break
		}
	}
	return finishSelection(sel, detailed, sharedMem, o, func(i int) (profiler.LightRecord, float64, error) {
		k := w.Kernel(i)
		return profiler.Light(dev, &k)
	})
}

// lightSource yields the light profile of kernel launch i. Batch selection
// profiles live from the workload; the streaming path replays records it
// buffered while events arrived. Both feed the identical arithmetic in
// finishSelection, which is what keeps streaming output byte-identical to
// batch.
type lightSource func(i int) (profiler.LightRecord, float64, error)

// finishSelection runs everything downstream of the detailed-profiling
// pass: the PCA + K-Means sweep, two-level classifier mapping over the
// light records, and the final projection accounting, metrics, and audit
// trail. It is shared verbatim by Select and Stream.Finalize.
func finishSelection(sel *Selection, detailed []profiler.DetailedRecord, sharedMem []int, o Options, light lightSource) (*Selection, error) {
	if len(detailed) == 0 {
		return nil, errors.New("pks: workload has no kernels")
	}
	sel.DetailedKernels = len(detailed)
	sel.TwoLevel = sel.DetailedKernels < sel.TotalKernels

	// Cluster the detailed set and sweep K.
	groups, assignment, sweep, err := clusterDetailed(detailed, o)
	if err != nil {
		return nil, err
	}
	sel.Groups = groups
	sel.K = len(groups)
	sel.SweepErrors = sweep

	// Ground truth accumulates over the detailed prefix...
	for _, rec := range detailed {
		sel.SiliconTotalCycles += rec.Cycles
	}
	// ...and pass 2 (two-level only) light-profiles, maps, and accounts
	// for the rest.
	if sel.TwoLevel {
		if err := mapLightKernels(sel, detailed, sharedMem, assignment, o, light); err != nil {
			return nil, err
		}
	}

	var repCycles int64
	for _, g := range sel.Groups {
		sel.ProjectedCycles += g.Representative.Cycles * int64(g.Count())
		repCycles += g.Representative.Cycles
	}
	sel.SelectionErrorPct = stats.AbsPctErr(float64(sel.ProjectedCycles), float64(sel.SiliconTotalCycles))
	if repCycles > 0 {
		sel.SiliconSpeedup = float64(sel.SiliconTotalCycles) / float64(repCycles)
	}
	if m := o.Metrics; m != nil {
		m.Selections.Inc()
		m.ChosenK.Observe(float64(sel.K))
		m.ErrorPct.Observe(sel.SelectionErrorPct)
	}
	if o.Audit != nil {
		twoLevel := 0.0
		if sel.TwoLevel {
			twoLevel = 1
		}
		o.Audit.Record("pks", "selected", o.auditSubject, 0, map[string]float64{
			"k":                   float64(sel.K),
			"target_error_pct":    o.TargetErrorPct,
			"selection_error_pct": sel.SelectionErrorPct,
			"detailed_kernels":    float64(sel.DetailedKernels),
			"total_kernels":       float64(sel.TotalKernels),
			"two_level":           twoLevel,
		})
	}
	return sel, nil
}

// clusterDetailed runs the PCA + K-Means sweep over detailed records. It
// returns the chosen groups, a per-detailed-kernel group assignment, and
// the per-K sweep error trace.
func clusterDetailed(detailed []profiler.DetailedRecord, o Options) ([]Group, []int, []float64, error) {
	sample := SampleIndices(len(detailed), o.ClusterSampleMax)
	feat := linalg.NewMatrix(len(sample), trace.NumFeatures)
	for r, idx := range sample {
		ScaleFeatures(feat.Row(r), detailed[idx].Features)
	}

	// Project into cluster space: PCA by default, raw standardized
	// features for the ablation.
	var pca *linalg.PCA
	var points [][]float64
	if o.DisablePCA {
		std := feat.Standardize()
		points = make([][]float64, std.Rows)
		for i := range points {
			points[i] = std.Row(i)
		}
	} else {
		var err error
		pca, err = linalg.FitPCA(feat, o.PCAVarianceTarget, 2)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("pks: PCA: %w", err)
		}
		proj, err := pca.Transform(feat)
		if err != nil {
			return nil, nil, nil, err
		}
		points = make([][]float64, proj.Rows)
		for i := range points {
			points[i] = proj.Row(i)
		}
	}

	var totalSample int64
	for _, idx := range sample {
		totalSample += detailed[idx].Cycles
	}

	rng := stats.NewRNG(o.Seed ^ 0xBEE5)
	maxK := minInt(o.MaxK, len(points))
	// One Dataset for the whole K-sweep: every fit after the first reuses
	// the flattened points and the Lloyd scratch buffers.
	ds, err := cluster.NewDataset(points)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pks: kmeans dataset: %w", err)
	}
	best, sweep, err := ds.Sweep(maxK,
		func(k int) uint64 { return o.Seed + uint64(k) },
		func(k int, res *cluster.KMeansResult) (float64, bool) {
			errPct := projectionError(points, res, detailed, sample, totalSample, o, rng)
			if m := o.Metrics; m != nil {
				m.SweepSteps.Inc()
			}
			underTarget := errPct <= o.TargetErrorPct
			if o.Audit != nil {
				under := 0.0
				if underTarget {
					under = 1
				}
				o.Audit.Record("pks", "sweep-step", o.auditSubject, 0, map[string]float64{
					"k":                float64(k),
					"error_pct":        errPct,
					"target_error_pct": o.TargetErrorPct,
					"under_target":     under,
					"sampled_kernels":  float64(len(points)),
				})
			}
			return errPct, underTarget
		})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pks: kmeans sweep: %w", err)
	}

	// Assign every detailed kernel (sampled or not) to a cluster.
	clusterOf := make([]int, len(detailed))
	if len(sample) == len(detailed) {
		copy(clusterOf, best.Assignment)
	} else {
		samplePos := make(map[int]int, len(sample))
		for pos, idx := range sample {
			samplePos[idx] = pos
		}
		for i := range detailed {
			if pos, ok := samplePos[i]; ok {
				clusterOf[i] = best.Assignment[pos]
				continue
			}
			row := ScaleFeatures(nil, detailed[i].Features)
			p := row
			if pca != nil {
				var err error
				p, err = pca.TransformRow(row)
				if err != nil {
					return nil, nil, nil, err
				}
			}
			clusterOf[i] = best.NearestCenter(p)
		}
	}

	// Build groups, dropping empty clusters, and remap assignments.
	clusterToGroup := make(map[int]int, best.K)
	var groups []Group
	for c := 0; c < best.K; c++ {
		members := best.Members(c)
		if len(members) == 0 {
			continue
		}
		repPos := pickRepresentative(points, best, c, members, detailed, sample, o, rng)
		clusterToGroup[c] = len(groups)
		groups = append(groups, Group{
			Representative: detailed[sample[repPos]],
			RepIndex:       detailed[sample[repPos]].KernelID,
			NameCounts:     map[string]int{},
		})
	}
	if len(groups) == 0 {
		return nil, nil, nil, errors.New("pks: clustering produced no groups")
	}
	assignment := make([]int, len(detailed))
	for i, c := range clusterOf {
		g, ok := clusterToGroup[c]
		if !ok {
			// A nearest-center assignment can land on a cluster that was
			// empty in the sample; fold it into group 0.
			g = 0
		}
		assignment[i] = g
		groups[g].DetailedCount++
		groups[g].NameCounts[detailed[i].Name]++
	}
	return groups, assignment, sweep, nil
}

// projectionError computes the projected-vs-actual cycle error of one
// clustering over the sampled detailed population.
func projectionError(points [][]float64, res *cluster.KMeansResult, detailed []profiler.DetailedRecord, sample []int, total int64, o Options, rng *stats.RNG) float64 {
	var projected int64
	for c := 0; c < res.K; c++ {
		members := res.Members(c)
		if len(members) == 0 {
			continue
		}
		rep := pickRepresentative(points, res, c, members, detailed, sample, o, rng)
		projected += detailed[sample[rep]].Cycles * int64(len(members))
	}
	return stats.AbsPctErr(float64(projected), float64(total))
}

// pickRepresentative returns the sample position of cluster c's
// representative under the configured policy.
func pickRepresentative(points [][]float64, res *cluster.KMeansResult, c int, members []int, detailed []profiler.DetailedRecord, sample []int, o Options, rng *stats.RNG) int {
	switch o.Representative {
	case RepRandom:
		return members[rng.Intn(len(members))]
	case RepClusterCenter:
		best, bestD := members[0], math.Inf(1)
		for _, m := range members {
			var d float64
			for j, v := range points[m] {
				diff := v - res.Centers[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = m, d
			}
		}
		return best
	default: // RepFirstChronological
		best := members[0]
		for _, m := range members {
			if detailed[sample[m]].KernelID < detailed[sample[best]].KernelID {
				best = m
			}
		}
		return best
	}
}

// mapLightKernels performs the second pass of two-level profiling: train
// the classifier ensemble on the detailed prefix, then pull the remaining
// kernels' light profiles from the source and map each onto a group. It
// also extends the ground-truth cycle total over the full app.
func mapLightKernels(sel *Selection, detailed []profiler.DetailedRecord, sharedMem []int, assignment []int, o Options, light lightSource) error {
	// Classifier training cost grows linearly in rows while huge detailed
	// prefixes are massively redundant (the same layer kernels repeat
	// thousands of times), so cap the training set by strided sampling.
	const classifierTrainMax = 20000
	trainIdx := SampleIndices(len(detailed), classifierTrainMax)
	X := make([][]float64, len(trainIdx))
	labels := make([]int, len(trainIdx))
	for i, idx := range trainIdx {
		X[i] = profiler.FeaturesOfDetailed(detailed[idx], sharedMem[idx])
		labels[i] = assignment[idx]
	}
	assignment = labels
	numClasses := len(sel.Groups)

	// Holdout accuracy: train on 80%, test on the strided 20%.
	if len(detailed) >= 10 && numClasses > 1 {
		var trX, teX [][]float64
		var trY, teY []int
		for i := range X {
			if i%5 == 4 {
				teX, teY = append(teX, X[i]), append(teY, assignment[i])
			} else {
				trX, trY = append(trX, X[i]), append(trY, assignment[i])
			}
		}
		probe := classify.NewEnsemble(o.Seed)
		if err := probe.Fit(trX, trY, numClasses); err != nil {
			return fmt.Errorf("pks: classifier holdout: %w", err)
		}
		sel.ClassifierAccuracy = classify.Accuracy(probe, teX, teY)
	} else {
		sel.ClassifierAccuracy = 1
	}

	ens := classify.NewEnsemble(o.Seed)
	if err := ens.Fit(X, assignment, numClasses); err != nil {
		return fmt.Errorf("pks: classifier training: %w", err)
	}

	for i := sel.DetailedKernels; i < sel.TotalKernels; i++ {
		rec, cost, err := light(i)
		if err != nil {
			return fmt.Errorf("pks: light profiling kernel %d: %w", i, err)
		}
		sel.ProfilingSeconds += cost
		g := 0
		if numClasses > 1 {
			g = ens.Predict(profiler.FeaturesOfLight(rec))
		}
		sel.Groups[g].MappedCount++
		sel.Groups[g].NameCounts[rec.Name]++
		sel.SiliconTotalCycles += rec.Cycles
	}
	return nil
}

// CrossGenResult reports how a Volta-made selection fares on another
// device's silicon.
type CrossGenResult struct {
	// Projected is Σ representative-cycles-on-device × group population.
	Projected int64
	// Truth is the device's ground-truth total kernel cycles.
	Truth int64
	// RepCycles is the cost of executing each representative once — the
	// denominator of the silicon speedup columns.
	RepCycles int64
}

// ErrorPct returns the projection's cycle error.
func (r CrossGenResult) ErrorPct() float64 {
	return stats.AbsPctErr(float64(r.Projected), float64(r.Truth))
}

// Speedup returns the silicon execution-time reduction.
func (r CrossGenResult) Speedup() float64 {
	if r.RepCycles == 0 {
		return 0
	}
	return float64(r.Truth) / float64(r.RepCycles)
}

// ProjectOnDevice reuses a selection made on one device (the paper always
// selects on Volta) to project the workload's total kernel cycles on
// another device: the representatives are re-executed on the target
// silicon and weighted by their original group populations. This is the
// paper's cross-generation validation (Section 5.2.2).
func ProjectOnDevice(dev gpu.Device, w *workload.Workload, sel *Selection) (CrossGenResult, error) {
	var out CrossGenResult
	for _, g := range sel.Groups {
		k := w.Kernel(g.RepIndex)
		res, err := silicon.ExecuteKernel(dev, &k)
		if err != nil {
			return out, fmt.Errorf("pks: representative %d on %s: %w", g.RepIndex, dev.Name, err)
		}
		out.Projected += res.Cycles * int64(g.Count())
		out.RepCycles += res.Cycles
	}
	next := w.Iterator()
	for k := next(); k != nil; k = next() {
		res, err := silicon.ExecuteKernel(dev, k)
		if err != nil {
			return out, err
		}
		out.Truth += res.Cycles
	}
	return out, nil
}

// SampleIndices returns up to max indices evenly strided across n items.
// Exported for the suite-level dedup pass, which subsamples its pooled
// feature set the same way the per-workload sweep does.
func SampleIndices(n, max int) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, max)
	stride := float64(n) / float64(max)
	for i := range out {
		out[i] = int(float64(i) * stride)
	}
	return out
}

// ScaleFeature compresses count-type Table-2 features with log1p;
// ratio-type features (index 10, divergence efficiency) pass through.
// Exported so the suite-level dedup pass clusters in exactly the feature
// space PKS clusters in — the cross-workload clusters are only
// comparable to per-app ones because the scaling is shared.
func ScaleFeature(v float64, featureIdx int) float64 {
	if featureIdx == 10 {
		return v
	}
	return math.Log1p(v)
}

// ScaleFeatures scales one full Table-2 feature row with ScaleFeature,
// writing into dst when it already has the right length and allocating
// otherwise. Every consumer that builds a cluster-space row — per-app
// PKS, the streaming pipeline, suite-level dedup — goes through this one
// helper, so the feature spaces stay identical by construction.
func ScaleFeatures(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		dst = make([]float64, len(src))
	}
	for j, v := range src {
		dst[j] = ScaleFeature(v, j)
	}
	return dst
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
