package pks

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/workload"
)

func dev() gpu.Device { return gpu.VoltaV100() }

func TestSelectGaussianOneGroup(t *testing.T) {
	// gauss_208 launches 414 kernels of just two interleaved shapes; the
	// paper's Table 3 reports a single group with kernel 0 selected.
	w := workload.Find("Rodinia/gauss_208")
	sel, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.TwoLevel {
		t.Error("small workload should not trigger two-level profiling")
	}
	if sel.K > 3 {
		t.Errorf("K = %d, want <= 3 for gaussian", sel.K)
	}
	if sel.SelectionErrorPct > 5 {
		t.Errorf("selection error %.2f%% exceeds 5%% target", sel.SelectionErrorPct)
	}
	if sel.SiliconSpeedup < 50 {
		t.Errorf("silicon speedup %.1fx, want large for 414 similar kernels", sel.SiliconSpeedup)
	}
	total := 0
	for _, g := range sel.Groups {
		total += g.Count()
	}
	if total != 414 {
		t.Errorf("group populations sum to %d, want 414", total)
	}
}

func TestSelectFdtd2dFindsStructure(t *testing.T) {
	// fdtd2d: 1500 kernels, two near-identical field updates plus one
	// distinct kernel per step (Table 3: groups of 1000 and 500).
	w := workload.Find("Polybench/fdtd2d")
	sel, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K < 2 || sel.K > 6 {
		t.Errorf("K = %d, want a handful of groups", sel.K)
	}
	if sel.SelectionErrorPct > 5 {
		t.Errorf("selection error %.2f%%", sel.SelectionErrorPct)
	}
	if sel.SiliconSpeedup < 100 {
		t.Errorf("speedup %.0fx, want hundreds for 1500 kernels", sel.SiliconSpeedup)
	}
}

func TestSelectSingleKernelNoBenefit(t *testing.T) {
	w := workload.Find("Polybench/gemm")
	sel, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 || sel.SiliconSpeedup > 1.01 || sel.SiliconSpeedup < 0.99 {
		t.Errorf("single-kernel app: K=%d speedup=%.2f, want 1/1.0", sel.K, sel.SiliconSpeedup)
	}
	if sel.SelectionErrorPct > 1e-9 {
		t.Errorf("single-kernel selection error %.4f%%, want 0", sel.SelectionErrorPct)
	}
}

func TestSelectHistoFourGroups(t *testing.T) {
	// histo launches 4 distinct kernel shapes x 20 iterations (Table 3:
	// kernels 0,1,2,3 selected with 20 each).
	w := workload.Find("Parboil/histo")
	sel, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.SelectionErrorPct > 5 {
		t.Errorf("selection error %.2f%%", sel.SelectionErrorPct)
	}
	if sel.K < 2 || sel.K > 6 {
		t.Errorf("K = %d, want ~4", sel.K)
	}
}

func TestRepresentativeIsFirstChronological(t *testing.T) {
	w := workload.Find("Rodinia/gauss_208")
	sel, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every representative must be the smallest kernel ID in its group;
	// in particular the earliest group representative should be kernel 0
	// or 1 (the first Fan1/Fan2 instances).
	minRep := sel.Groups[0].RepIndex
	for _, g := range sel.Groups {
		if g.RepIndex < minRep {
			minRep = g.RepIndex
		}
	}
	if minRep > 1 {
		t.Errorf("earliest representative is kernel %d, want 0 or 1", minRep)
	}
}

func TestRepPoliciesProduceValidSelections(t *testing.T) {
	w := workload.Find("Polybench/gramschmidt")
	for _, pol := range []RepPolicy{RepFirstChronological, RepClusterCenter, RepRandom} {
		sel, err := Select(dev(), w, Options{Representative: pol, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		total := 0
		for _, g := range sel.Groups {
			total += g.Count()
			if g.Representative.Cycles <= 0 {
				t.Errorf("%v: representative with no cycles", pol)
			}
		}
		if total != w.N {
			t.Errorf("%v: populations sum to %d, want %d", pol, total, w.N)
		}
	}
}

func TestSweepPrefersSmallestK(t *testing.T) {
	w := workload.Find("Polybench/fdtd2d")
	sel, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every K before the chosen one must have missed the target.
	for i := 0; i < len(sel.SweepErrors)-1; i++ {
		if sel.SweepErrors[i] <= 5 {
			t.Errorf("sweep stopped late: K=%d already had error %.2f%%", i+1, sel.SweepErrors[i])
		}
	}
	if got := sel.SweepErrors[len(sel.SweepErrors)-1]; got > 5 && sel.K < 20 {
		t.Errorf("final sweep error %.2f%% with K=%d", got, sel.K)
	}
}

func TestTighterTargetNeedsMoreGroups(t *testing.T) {
	w := workload.Find("Polybench/gramschmidt")
	loose, err := Select(dev(), w, Options{TargetErrorPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Select(dev(), w, Options{TargetErrorPct: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.K < loose.K {
		t.Errorf("tight target K=%d < loose target K=%d", tight.K, loose.K)
	}
	if tight.SelectionErrorPct > loose.SelectionErrorPct+1e-9 && tight.K < 20 {
		t.Errorf("tight error %.2f%% worse than loose %.2f%%", tight.SelectionErrorPct, loose.SelectionErrorPct)
	}
}

func TestTwoLevelTriggersOnHugeWorkload(t *testing.T) {
	// Shrink the budget so two-level engages quickly, then verify the
	// mapping covers every kernel.
	w := workload.Find("Polybench/gramschmidt")
	sel, err := Select(dev(), w, Options{DetailedBudgetSeconds: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.TwoLevel {
		t.Fatal("600s budget should force two-level on 6144 kernels")
	}
	if sel.DetailedKernels >= w.N {
		t.Error("detailed count should be a prefix")
	}
	total, mapped := 0, 0
	for _, g := range sel.Groups {
		total += g.Count()
		mapped += g.MappedCount
	}
	if total != w.N {
		t.Errorf("populations sum to %d, want %d", total, w.N)
	}
	if mapped != w.N-sel.DetailedKernels {
		t.Errorf("mapped %d, want %d", mapped, w.N-sel.DetailedKernels)
	}
	if sel.ClassifierAccuracy < 0.6 {
		t.Errorf("classifier holdout accuracy %.2f, want >= 0.6 on template kernels", sel.ClassifierAccuracy)
	}
	// With an accurate mapping, two-level selection error should stay
	// moderate (the paper reports ~10-36% on two-level MLPerf workloads).
	if sel.SelectionErrorPct > 50 {
		t.Errorf("two-level selection error %.1f%%", sel.SelectionErrorPct)
	}
}

func TestMaxDetailedCap(t *testing.T) {
	w := workload.Find("Rodinia/gauss_208")
	sel, err := Select(dev(), w, Options{MaxDetailed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if sel.DetailedKernels != 50 || !sel.TwoLevel {
		t.Errorf("detailed = %d twoLevel = %v, want 50/true", sel.DetailedKernels, sel.TwoLevel)
	}
}

func TestDisablePCAStillWorks(t *testing.T) {
	w := workload.Find("Parboil/histo")
	sel, err := Select(dev(), w, Options{DisablePCA: true})
	if err != nil {
		t.Fatal(err)
	}
	if sel.SelectionErrorPct > 10 {
		t.Errorf("no-PCA selection error %.2f%%", sel.SelectionErrorPct)
	}
}

func TestSelectionDeterministic(t *testing.T) {
	w := workload.Find("Polybench/fdtd2d")
	a, err := Select(dev(), w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(dev(), w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || a.ProjectedCycles != b.ProjectedCycles || a.SelectionErrorPct != b.SelectionErrorPct {
		t.Error("identical seeds produced different selections")
	}
}

func TestCrossGenerationReuse(t *testing.T) {
	// Select on Volta, then project Turing runtimes with the same kernel
	// IDs — the paper's key generality claim (Section 5.2.2). Verify the
	// Volta-selected representative IDs reproduce Turing totals well.
	w := workload.Find("Rodinia/gauss_208")
	volta, err := Select(dev(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	turing := gpu.TuringRTX2060()
	cg, err := ProjectOnDevice(turing, w, volta)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4's Turing column spans 0-35.6% error on Volta-selected
	// kernels; anything in that band is faithful.
	if errPct := cg.ErrorPct(); errPct > 35 {
		t.Errorf("cross-generation error %.2f%%", errPct)
	}
	if cg.Speedup() < 50 {
		t.Errorf("cross-generation speedup %.1f, want large for 414 kernels", cg.Speedup())
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
