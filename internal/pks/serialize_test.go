package pks

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pka/internal/gpu"
	"pka/internal/workload"
)

func TestSelectionJSONRoundTrip(t *testing.T) {
	w := workload.Find("Parboil/histo")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Workload != sel.Workload || f.K != sel.K || f.TotalKernels != w.N {
		t.Errorf("round trip lost identity: %+v", f)
	}
	var weight float64
	for i, g := range f.Groups {
		if g.RepKernelID != sel.Groups[i].RepIndex || g.Count != sel.Groups[i].Count() {
			t.Errorf("group %d mismatch", i)
		}
		weight += g.Weight
	}
	if weight < 0.999 || weight > 1.001 {
		t.Errorf("weights sum to %v", weight)
	}
	grid, block := f.RepresentativeDims(0)
	k := w.Kernel(f.Groups[0].RepKernelID)
	if grid != k.Grid || block != k.Block {
		t.Error("representative dims do not reconstruct the launch")
	}
}

func TestSaveAndLoadJSON(t *testing.T) {
	w := workload.Find("Rodinia/gauss_mat4")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sel.json")
	if err := sel.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	f, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.K != sel.K {
		t.Errorf("K = %d, want %d", f.K, sel.K)
	}
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestReadJSONRejectsCorruptFiles(t *testing.T) {
	cases := map[string]string{
		"bad version":   `{"version":99,"workload":"x","k":1,"total_kernels":1,"groups":[{"rep_kernel_id":0,"count":1,"weight":1}]}`,
		"k mismatch":    `{"version":1,"workload":"x","k":2,"total_kernels":1,"groups":[{"rep_kernel_id":0,"count":1,"weight":1}]}`,
		"no groups":     `{"version":1,"workload":"x","k":0,"total_kernels":1,"groups":[]}`,
		"bad rep id":    `{"version":1,"workload":"x","k":1,"total_kernels":1,"groups":[{"rep_kernel_id":5,"count":1,"weight":1}]}`,
		"bad count":     `{"version":1,"workload":"x","k":1,"total_kernels":1,"groups":[{"rep_kernel_id":0,"count":0,"weight":1}]}`,
		"count sum":     `{"version":1,"workload":"x","k":1,"total_kernels":9,"groups":[{"rep_kernel_id":0,"count":1,"weight":1}]}`,
		"weight sum":    `{"version":1,"workload":"x","k":1,"total_kernels":1,"groups":[{"rep_kernel_id":0,"count":1,"weight":0.2}]}`,
		"unknown field": `{"version":1,"workload":"x","k":1,"total_kernels":1,"bogus":3,"groups":[{"rep_kernel_id":0,"count":1,"weight":1}]}`,
		"not json":      `hello`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
