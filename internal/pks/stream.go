package pks

import (
	"fmt"

	"pka/internal/cluster"
	"pka/internal/gpu"
	"pka/internal/linalg"
	"pka/internal/obs"
	"pka/internal/profiler"
	"pka/internal/stats"
	"pka/internal/trace"
)

// StreamOptions configures a streaming selection.
type StreamOptions struct {
	// Select is the batch selection configuration, applied verbatim by the
	// reconciliation pass at Finalize — which is why streaming output is
	// byte-identical to Select with the same options.
	Select Options
	// Window bounds how far ahead of the oldest unprocessed launch an
	// event may arrive (events are reordered within it, rejected beyond
	// it). Zero applies 1024.
	Window int
	// MinDetailed is how many detailed records accumulate before the
	// advisory clustering (and with it speculation) starts. Zero applies 32.
	MinDetailed int
	// ResweepDegradePct re-sweeps K when the running projection-error
	// estimate exceeds the last sweep's error by this many absolute
	// percentage points. Zero applies 2.
	ResweepDegradePct float64
	// ResweepEvery, when positive, forces a re-sweep after that many
	// detailed records regardless of the estimate — a staleness floor for
	// workloads whose drift the estimate misses, and the deterministic way
	// to exercise speculative misprediction in tests. Zero disables it.
	ResweepEvery int
	// Speculate, when non-nil, is called once per newly elected advisory
	// representative, while profiling is still running. Implementations
	// warm caches only — a demoted rep costs wasted simulation work, never
	// correctness.
	Speculate func(trace.KernelDesc)
	// Metrics, when non-nil, receives pka_stream_* counters.
	Metrics *obs.StreamMetrics
}

func (so StreamOptions) filled() StreamOptions {
	if so.Window <= 0 {
		so.Window = 1024
	}
	if so.MinDetailed <= 0 {
		so.MinDetailed = 32
	}
	if so.ResweepDegradePct <= 0 {
		so.ResweepDegradePct = 2
	}
	return so
}

// Stream is the incremental counterpart of Select: kernels are pushed one
// launch at a time, an online clustering tracks group structure as they
// arrive, and Finalize replays the exact batch arithmetic over the
// buffered records to produce a Selection byte-identical to Select.
//
// The streaming machinery splits into two strictly separated halves:
//
//   - The *exact* half: per-launch profiling (detailed until the budget
//     exhausts, light after — the same split, costs, and accumulation
//     order as the batch loop) and the Finalize reconciliation, which
//     calls the very functions Select calls. Nothing else touches the
//     returned Selection.
//   - The *advisory* half: a PCA projection fit on the first MinDetailed
//     records, an appendable Dataset of projections, an OnlineKMeans that
//     assigns and drifts per event, and a running projection-error
//     estimate that triggers full (deterministic) re-sweeps on
//     degradation. Its only output is Speculate callbacks that warm the
//     Exec ladder for likely representatives.
//
// Events may arrive out of order within Window; Push reorders them and
// processes the contiguous prefix, so all profiling arithmetic happens in
// launch order regardless of arrival order. Not safe for concurrent use.
type Stream struct {
	dev     gpu.Device
	o       Options // filled batch options, auditSubject set
	so      StreamOptions
	subject string
	n       int

	// Launch-order reordering.
	next    int
	pending map[int]trace.KernelDesc

	// Exact half: buffered profiling state, mirroring the batch loop.
	budget      float64
	budgetDone  bool
	detailed    []profiler.DetailedRecord
	sharedMem   []int
	kernels     []trace.KernelDesc // detailed-prefix descs, for speculation
	lightRecs   []profiler.LightRecord
	lightCosts  []float64
	profSeconds float64

	// Advisory half.
	pca        *linalg.PCA
	ds         *cluster.Dataset
	online     *cluster.OnlineKMeans
	repCycles  []int64 // advisory cluster -> its rep's detailed cycles
	projected  int64   // running Σ repCycles[assigned]
	actual     int64   // running Σ actual cycles over advisory-seen events
	sweepErr   float64 // projection error at the last advisory sweep
	sinceSweep int     // detailed records observed since the last sweep
	resweeps   int
	speculated map[int]bool // kernel IDs already handed to Speculate

	failed error
}

// NewStream starts a streaming selection for a workload named suite/name
// with n total kernel launches on dev.
func NewStream(dev gpu.Device, suite, name string, n int, so StreamOptions) (*Stream, error) {
	if n < 1 {
		return nil, fmt.Errorf("pks: stream needs at least one kernel, got %d", n)
	}
	o := so.Select.filled()
	subject := suite + "/" + name
	o.auditSubject = subject
	return &Stream{
		dev:        dev,
		o:          o,
		so:         so.filled(),
		subject:    subject,
		n:          n,
		pending:    map[int]trace.KernelDesc{},
		budget:     o.DetailedBudgetSeconds,
		detailed:   make([]profiler.DetailedRecord, 0, minInt(n, 4096)),
		sharedMem:  make([]int, 0, minInt(n, 4096)),
		speculated: map[int]bool{},
	}, nil
}

// Resweeps reports how many advisory K re-sweeps ran so far.
func (s *Stream) Resweeps() int { return s.resweeps }

// DetailedSoFar reports how many launches have been detailed-profiled.
func (s *Stream) DetailedSoFar() int { return len(s.detailed) }

// Push feeds one kernel launch event. k.ID is the launch index; events may
// arrive in any order within the reorder window. After any error the
// stream is poisoned and every later call returns the same error.
func (s *Stream) Push(k trace.KernelDesc) error {
	if s.failed != nil {
		return s.failed
	}
	if err := s.push(k); err != nil {
		s.failed = err
		return err
	}
	return nil
}

func (s *Stream) push(k trace.KernelDesc) error {
	if k.ID < s.next || k.ID >= s.n {
		return fmt.Errorf("pks: stream event launch %d outside [%d,%d)", k.ID, s.next, s.n)
	}
	if _, dup := s.pending[k.ID]; dup {
		return fmt.Errorf("pks: duplicate stream event for launch %d", k.ID)
	}
	if k.ID >= s.next+s.so.Window {
		return fmt.Errorf("pks: stream event launch %d beyond reorder window (oldest unprocessed %d, window %d)",
			k.ID, s.next, s.so.Window)
	}
	if m := s.so.Metrics; m != nil {
		m.Events.Inc()
	}
	s.pending[k.ID] = k
	for {
		kk, ok := s.pending[s.next]
		if !ok {
			return nil
		}
		delete(s.pending, s.next)
		s.next++
		if err := s.process(kk); err != nil {
			return err
		}
	}
}

// process consumes one launch in chronological order — the only place
// profiling runs, so the cost arithmetic is the batch loop's verbatim.
func (s *Stream) process(k trace.KernelDesc) error {
	if !s.budgetDone {
		rec, cost, err := profiler.Detailed(s.dev, &k)
		if err != nil {
			return fmt.Errorf("pks: detailed profiling: %w", err)
		}
		s.detailed = append(s.detailed, rec)
		s.sharedMem = append(s.sharedMem, k.SharedMemPerBlock)
		s.kernels = append(s.kernels, k)
		s.profSeconds += cost
		s.budget -= cost
		if s.budget <= 0 || (s.o.MaxDetailed > 0 && len(s.detailed) >= s.o.MaxDetailed) {
			s.budgetDone = true
		}
		s.observe(&s.detailed[len(s.detailed)-1])
		return nil
	}
	rec, cost, err := profiler.Light(s.dev, &k)
	if err != nil {
		return fmt.Errorf("pks: light profiling kernel %d: %w", k.ID, err)
	}
	s.lightRecs = append(s.lightRecs, rec)
	s.lightCosts = append(s.lightCosts, cost)
	return nil
}

// project maps a detailed record into the advisory cluster space.
func (s *Stream) project(rec *profiler.DetailedRecord) ([]float64, error) {
	row := ScaleFeatures(nil, rec.Features)
	if s.pca == nil {
		return row, nil
	}
	return s.pca.TransformRow(row)
}

// observe runs the advisory half on one freshly detailed record: start the
// clustering once warm, track the running error estimate, and re-sweep
// when it degrades. Advisory failures poison nothing — speculation simply
// stops and Finalize still reconciles exactly.
func (s *Stream) observe(rec *profiler.DetailedRecord) {
	if s.ds == nil {
		if len(s.detailed) < s.so.MinDetailed {
			return
		}
		if err := s.startAdvisory(); err != nil {
			s.ds = nil
			return
		}
		return
	}
	p, err := s.project(rec)
	if err != nil {
		return
	}
	if s.ds.Append(p) != nil {
		return
	}
	c := s.online.Observe(p)
	s.projected += s.repCycles[c]
	s.actual += rec.Cycles
	s.sinceSweep++
	est := stats.AbsPctErr(float64(s.projected), float64(s.actual))
	if est > s.sweepErr+s.so.ResweepDegradePct ||
		(s.so.ResweepEvery > 0 && s.sinceSweep >= s.so.ResweepEvery) {
		s.resweep()
	}
}

// startAdvisory fits the PCA on the warmup prefix, projects it into a
// fresh appendable dataset, and runs the first sweep.
func (s *Stream) startAdvisory() error {
	if !s.o.DisablePCA {
		feat := linalg.NewMatrix(len(s.detailed), trace.NumFeatures)
		for r := range s.detailed {
			ScaleFeatures(feat.Row(r), s.detailed[r].Features)
		}
		pca, err := linalg.FitPCA(feat, s.o.PCAVarianceTarget, 2)
		if err != nil {
			return err
		}
		s.pca = pca
	}
	dim := trace.NumFeatures
	if s.pca != nil {
		p, err := s.pca.TransformRow(make([]float64, trace.NumFeatures))
		if err != nil {
			return err
		}
		dim = len(p)
	}
	ds, err := cluster.NewEmptyDataset(dim)
	if err != nil {
		return err
	}
	for i := range s.detailed {
		p, err := s.project(&s.detailed[i])
		if err != nil {
			return err
		}
		if err := ds.Append(p); err != nil {
			return err
		}
	}
	s.ds = ds
	s.resweep()
	return nil
}

// advisoryError scores one clustering the way the batch sweep does —
// first-chronological rep per cluster, projected vs actual cycles — over
// every record the dataset holds.
func (s *Stream) advisoryError(res *cluster.KMeansResult) float64 {
	var projected, total int64
	for c := 0; c < res.K; c++ {
		members := res.Members(c)
		if len(members) == 0 {
			continue
		}
		rep := members[0]
		for _, m := range members {
			if m < rep {
				rep = m
			}
		}
		projected += s.detailed[rep].Cycles * int64(len(members))
	}
	for i := 0; i < s.ds.N(); i++ {
		total += s.detailed[i].Cycles
	}
	return stats.AbsPctErr(float64(projected), float64(total))
}

// resweep reruns the deterministic K sweep over everything streamed so
// far, re-elects representatives, speculates the new ones, and reseeds the
// online learner and the running estimate.
func (s *Stream) resweep() {
	s.resweeps++
	s.sinceSweep = 0
	if m := s.so.Metrics; m != nil {
		m.Resweeps.Inc()
	}
	maxK := minInt(s.o.MaxK, s.ds.N())
	best, _, err := s.ds.Sweep(maxK,
		func(k int) uint64 { return s.o.Seed + uint64(k) },
		func(k int, res *cluster.KMeansResult) (float64, bool) {
			e := s.advisoryError(res)
			return e, e <= s.o.TargetErrorPct
		})
	if err != nil {
		return
	}
	online, err := cluster.NewOnlineKMeans(best)
	if err != nil {
		return
	}
	s.online = online
	s.sweepErr = s.advisoryError(best)

	// Re-elect first-chronological reps, rebase the running estimate on
	// the fresh assignment, and speculate any rep not yet warmed.
	s.repCycles = make([]int64, best.K)
	s.projected, s.actual = 0, 0
	for c := 0; c < best.K; c++ {
		members := best.Members(c)
		if len(members) == 0 {
			continue
		}
		rep := members[0]
		for _, m := range members {
			if m < rep {
				rep = m
			}
		}
		s.repCycles[c] = s.detailed[rep].Cycles
		s.projected += s.repCycles[c] * int64(len(members))
		id := s.detailed[rep].KernelID
		if !s.speculated[id] {
			s.speculated[id] = true
			if s.so.Speculate != nil {
				s.so.Speculate(s.kernels[rep])
			}
		}
	}
	for i := 0; i < s.ds.N(); i++ {
		s.actual += s.detailed[i].Cycles
	}
}

// Finalize reconciles: it checks the stream is complete, then runs the
// exact batch selection tail — the same sweep, classifier mapping, and
// accounting Select runs — over the buffered records. The returned
// Selection is byte-identical to Select on the same workload and options,
// whatever the advisory half did along the way.
func (s *Stream) Finalize() (*Selection, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	if s.next < s.n {
		return nil, fmt.Errorf("pks: stream ended at launch %d of %d (%d buffered out of order)",
			s.next, s.n, len(s.pending))
	}
	sel := &Selection{
		Workload:         s.subject,
		Device:           s.dev.Name,
		TotalKernels:     s.n,
		ProfilingSeconds: s.profSeconds,
	}
	return finishSelection(sel, s.detailed, s.sharedMem, s.o, func(i int) (profiler.LightRecord, float64, error) {
		j := i - len(s.detailed)
		return s.lightRecs[j], s.lightCosts[j], nil
	})
}
