package pks

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/workload"
)

// The cluster-subsample path: when the detailed set exceeds
// ClusterSampleMax, unsampled kernels are assigned to their nearest center
// and every kernel must still land in exactly one group.
func TestClusterSubsamplePath(t *testing.T) {
	w := workload.Find("Polybench/gramschmidt") // 6144 kernels
	sel, err := Select(gpu.VoltaV100(), w, Options{ClusterSampleMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range sel.Groups {
		total += g.Count()
	}
	if total != w.N {
		t.Fatalf("subsampled clustering lost kernels: %d of %d", total, w.N)
	}
	// Accuracy degrades gracefully, not catastrophically.
	if sel.SelectionErrorPct > 25 {
		t.Errorf("subsampled selection error %.1f%%", sel.SelectionErrorPct)
	}
}

func TestNameCountsCoverPopulation(t *testing.T) {
	w := workload.Find("Parboil/histo")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	named := 0
	for _, g := range sel.Groups {
		for _, n := range g.NameCounts {
			named += n
		}
	}
	if named != w.N {
		t.Errorf("name histogram covers %d of %d kernels", named, w.N)
	}
}

func TestNameCountsWithTwoLevel(t *testing.T) {
	w := workload.Find("Polybench/fdtd2d")
	sel, err := Select(gpu.VoltaV100(), w, Options{MaxDetailed: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.TwoLevel {
		t.Fatal("expected two-level")
	}
	named := 0
	for _, g := range sel.Groups {
		for _, n := range g.NameCounts {
			named += n
		}
	}
	if named != w.N {
		t.Errorf("two-level name histogram covers %d of %d", named, w.N)
	}
}

// MLPerf-style template workloads must trigger two-level profiling under
// the paper's one-week budget and classify template kernels near-perfectly.
func TestMLPerfTwoLevelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("walks a large kernel stream")
	}
	w := workload.Find("MLPerf/gnmt_training")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.TwoLevel {
		t.Fatalf("GNMT (%d kernels) should exceed the one-week detailed budget", w.N)
	}
	if sel.ClassifierAccuracy < 0.8 {
		t.Errorf("classifier accuracy %.3f on template kernels", sel.ClassifierAccuracy)
	}
	if sel.SelectionErrorPct > 40 {
		t.Errorf("two-level selection error %.1f%% (paper's two-level MLPerf band is 10-36%%)", sel.SelectionErrorPct)
	}
	if sel.SiliconSpeedup < 1000 {
		t.Errorf("speedup %.0fx; MLPerf rows should reach thousands", sel.SiliconSpeedup)
	}
}

// The ResNet workloads are fully profileable within the budget, like the
// paper reports.
func TestResNetFullyProfiled(t *testing.T) {
	if testing.Short() {
		t.Skip("walks a large kernel stream")
	}
	w := workload.Find("MLPerf/resnet50_256b_inf")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.TwoLevel {
		t.Errorf("ResNet-256b (%d kernels) should fit the detailed budget", w.N)
	}
	if sel.SelectionErrorPct > 10 {
		t.Errorf("fully-profiled MLPerf selection error %.1f%%", sel.SelectionErrorPct)
	}
}
