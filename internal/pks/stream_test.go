package pks

import (
	"reflect"
	"testing"

	"pka/internal/gpu"
	"pka/internal/stats"
	"pka/internal/trace"
	"pka/internal/workload"
)

// pushAll streams every launch of w into s, shuffling arrival order within
// windows of the given size (shuffle=0 streams strictly in order).
func pushAll(t *testing.T, s *Stream, w *workload.Workload, shuffle int, seed uint64) {
	t.Helper()
	order := make([]int, w.N)
	for i := range order {
		order[i] = i
	}
	if shuffle > 1 {
		rng := stats.NewRNG(seed)
		for base := 0; base < w.N; base += shuffle {
			end := base + shuffle
			if end > w.N {
				end = w.N
			}
			for i := end - 1; i > base; i-- {
				j := base + rng.Intn(i-base+1)
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, i := range order {
		if err := s.Push(w.Kernel(i)); err != nil {
			t.Fatalf("push launch %d: %v", i, err)
		}
	}
}

// TestStreamMatchesSelect pins the reconciliation invariant at the
// selection layer: whatever arrival order the stream saw and however often
// the advisory clustering revised itself, Finalize returns a Selection
// deeply equal to batch Select — including the two-level classifier path.
func TestStreamMatchesSelect(t *testing.T) {
	dev := gpu.VoltaV100()
	cases := []struct {
		workload string
		opts     Options
	}{
		// Small app, fully detailed.
		{"Rodinia/gauss_208", Options{}},
		// Two-level: detailed prefix + classifier-mapped light tail.
		{"Polybench/fdtd2d", Options{MaxDetailed: 300}},
	}
	for _, tc := range cases {
		w := workload.Find(tc.workload)
		if w == nil {
			t.Fatalf("workload %s not registered", tc.workload)
		}
		want, err := Select(dev, w, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		arrivals := []struct {
			name    string
			shuffle int
			so      StreamOptions
		}{
			{"in-order", 0, StreamOptions{Select: tc.opts}},
			{"shuffled-window", 32, StreamOptions{Select: tc.opts, Window: 64}},
			// A tight re-sweep cadence forces advisory revisions
			// (speculative mispredictions) throughout the stream.
			{"forced-revisions", 16, StreamOptions{Select: tc.opts, Window: 64, MinDetailed: 8, ResweepEvery: 16}},
		}
		for _, a := range arrivals {
			var speculated []int
			a.so.Speculate = func(k trace.KernelDesc) { speculated = append(speculated, k.ID) }
			s, err := NewStream(dev, w.Suite, w.Name, w.N, a.so)
			if err != nil {
				t.Fatal(err)
			}
			pushAll(t, s, w, a.shuffle, 7)
			got, err := s.Finalize()
			if err != nil {
				t.Fatalf("%s/%s finalize: %v", tc.workload, a.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: streamed selection differs from batch\ngot:  %+v\nwant: %+v",
					tc.workload, a.name, got, want)
			}
			if a.name == "forced-revisions" {
				if s.Resweeps() < 2 {
					t.Errorf("%s: forced-revision arm re-swept only %d times", tc.workload, s.Resweeps())
				}
				if len(speculated) == 0 {
					t.Errorf("%s: forced-revision arm never speculated", tc.workload)
				}
			}
		}
	}
}

// TestStreamRejectsBadEvents pins the stream's event discipline: duplicate
// launches, out-of-window arrivals, and incomplete streams all error, and
// an error poisons the stream.
func TestStreamRejectsBadEvents(t *testing.T) {
	dev := gpu.VoltaV100()
	w := workload.Find("Rodinia/gauss_208")
	s, err := NewStream(dev, w.Suite, w.Name, w.N, StreamOptions{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(w.Kernel(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(w.Kernel(0)); err == nil {
		t.Fatal("duplicate launch accepted")
	}
	if err := s.Push(w.Kernel(1)); err == nil {
		t.Fatal("poisoned stream accepted another event")
	}
	if _, err := s.Finalize(); err == nil {
		t.Fatal("poisoned stream finalized")
	}

	s2, _ := NewStream(dev, w.Suite, w.Name, w.N, StreamOptions{Window: 4})
	if err := s2.Push(w.Kernel(10)); err == nil {
		t.Fatal("event beyond reorder window accepted")
	}
	s3, _ := NewStream(dev, w.Suite, w.Name, w.N, StreamOptions{})
	if err := s3.Push(w.Kernel(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Finalize(); err == nil {
		t.Fatal("incomplete stream finalized")
	}
}
