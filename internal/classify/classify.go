// Package classify implements the supervised models PKA's two-level
// profiling uses to map lightly-profiled kernels onto the groups discovered
// by detailed profiling: multiclass logistic regression trained with
// stochastic gradient descent, Gaussian Naive Bayes, and a one-hidden-layer
// multilayer perceptron, plus a majority-vote ensemble over all three
// (mirroring the paper, which runs all three models).
package classify

import (
	"errors"
	"math"

	"pka/internal/stats"
)

// Classifier is a multiclass model over dense feature vectors.
type Classifier interface {
	// Fit trains on rows X with labels y in [0, numClasses).
	Fit(X [][]float64, y []int, numClasses int) error
	// Predict returns the most likely class for x.
	Predict(x []float64) int
	// Name identifies the model in reports.
	Name() string
}

var (
	errNoData   = errors.New("classify: no training data")
	errBadLabel = errors.New("classify: label out of range")
	errRagged   = errors.New("classify: ragged feature dimensions")
	errNotFit   = errors.New("classify: model not fitted")
)

func validate(X [][]float64, y []int, numClasses int) (dim int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, errNoData
	}
	if numClasses < 1 {
		return 0, errors.New("classify: numClasses must be >= 1")
	}
	dim = len(X[0])
	for _, row := range X {
		if len(row) != dim {
			return 0, errRagged
		}
	}
	for _, label := range y {
		if label < 0 || label >= numClasses {
			return 0, errBadLabel
		}
	}
	return dim, nil
}

// argmax returns the index of the largest value.
func argmax(xs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Ensemble predicts with a majority vote over its members; ties break
// toward the member listed first (the paper's pipeline treats the three
// models as interchangeable, so tie policy only needs to be deterministic).
type Ensemble struct {
	Members []Classifier
}

// NewEnsemble builds the paper's three-model ensemble with a shared seed.
func NewEnsemble(seed uint64) *Ensemble {
	return &Ensemble{Members: []Classifier{
		NewSGD(seed),
		NewGaussianNB(),
		NewMLP(seed + 1),
	}}
}

// Name implements Classifier.
func (e *Ensemble) Name() string { return "ensemble(sgd,gnb,mlp)" }

// Fit trains every member on the same data.
func (e *Ensemble) Fit(X [][]float64, y []int, numClasses int) error {
	if len(e.Members) == 0 {
		return errors.New("classify: ensemble has no members")
	}
	for _, m := range e.Members {
		if err := m.Fit(X, y, numClasses); err != nil {
			return err
		}
	}
	return nil
}

// Predict returns the majority vote of the members.
func (e *Ensemble) Predict(x []float64) int {
	votes := map[int]int{}
	order := make([]int, 0, len(e.Members))
	for _, m := range e.Members {
		p := m.Predict(x)
		if votes[p] == 0 {
			order = append(order, p)
		}
		votes[p]++
	}
	best, bestV := order[0], votes[order[0]]
	for _, p := range order[1:] {
		if votes[p] > bestV {
			best, bestV = p, votes[p]
		}
	}
	return best
}

// Accuracy returns the fraction of rows the model classifies correctly.
func Accuracy(m Classifier, X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, row := range X {
		if m.Predict(row) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

// shuffledIndices returns a deterministic permutation for epoch shuffling.
func shuffledIndices(n int, rng *stats.RNG) []int { return rng.Perm(n) }
