package classify

import (
	"math"

	"pka/internal/stats"
)

// MLP is a one-hidden-layer perceptron with ReLU activations and a softmax
// output, trained by plain backpropagation with SGD.
type MLP struct {
	Hidden       int
	Epochs       int
	LearningRate float64

	seed       uint64
	numClasses int
	scaler     *Scaler
	w1         [][]float64 // hidden × dim
	b1         []float64
	w2         [][]float64 // classes × hidden
	b2         []float64
}

// NewMLP returns an MLP with defaults sized for profiler feature vectors.
func NewMLP(seed uint64) *MLP {
	return &MLP{Hidden: 32, Epochs: 80, LearningRate: 0.05, seed: seed}
}

// Name implements Classifier.
func (m *MLP) Name() string { return "mlp" }

// Fit implements Classifier.
func (m *MLP) Fit(X [][]float64, y []int, numClasses int) error {
	dim, err := validate(X, y, numClasses)
	if err != nil {
		return err
	}
	m.numClasses = numClasses
	m.scaler = FitScaler(X)
	scaled := make([][]float64, len(X))
	for i, row := range X {
		scaled[i] = m.scaler.Apply(row)
	}

	rng := stats.NewRNG(m.seed ^ 0xAB1E)
	initLayer := func(rows, cols int) [][]float64 {
		w := make([][]float64, rows)
		scale := math.Sqrt(2 / float64(cols))
		for r := range w {
			w[r] = make([]float64, cols)
			for c := range w[r] {
				w[r][c] = rng.NormFloat64() * scale
			}
		}
		return w
	}
	m.w1 = initLayer(m.Hidden, dim)
	m.b1 = make([]float64, m.Hidden)
	m.w2 = initLayer(numClasses, m.Hidden)
	m.b2 = make([]float64, numClasses)

	hidden := make([]float64, m.Hidden)
	probs := make([]float64, numClasses)
	dHidden := make([]float64, m.Hidden)

	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LearningRate / (1 + 0.02*float64(epoch))
		for _, i := range shuffledIndices(len(scaled), rng) {
			x := scaled[i]
			m.forward(x, hidden, probs)

			// Output layer gradient (softmax + cross entropy).
			for h := range dHidden {
				dHidden[h] = 0
			}
			for c := 0; c < numClasses; c++ {
				grad := probs[c]
				if c == y[i] {
					grad -= 1
				}
				w := m.w2[c]
				for h := 0; h < m.Hidden; h++ {
					dHidden[h] += grad * w[h]
					w[h] -= lr * grad * hidden[h]
				}
				m.b2[c] -= lr * grad
			}
			// Hidden layer gradient through ReLU.
			for h := 0; h < m.Hidden; h++ {
				if hidden[h] <= 0 {
					continue
				}
				w := m.w1[h]
				for j, v := range x {
					w[j] -= lr * dHidden[h] * v
				}
				m.b1[h] -= lr * dHidden[h]
			}
		}
	}
	return nil
}

// forward computes hidden activations and class probabilities in place.
func (m *MLP) forward(x, hidden, probs []float64) {
	for h := 0; h < m.Hidden; h++ {
		sum := m.b1[h]
		w := m.w1[h]
		for j, v := range x {
			sum += w[j] * v
		}
		if sum < 0 {
			sum = 0
		}
		hidden[h] = sum
	}
	maxLogit := math.Inf(-1)
	for c := 0; c < m.numClasses; c++ {
		sum := m.b2[c]
		w := m.w2[c]
		for h := 0; h < m.Hidden; h++ {
			sum += w[h] * hidden[h]
		}
		probs[c] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	var total float64
	for c := 0; c < m.numClasses; c++ {
		probs[c] = math.Exp(probs[c] - maxLogit)
		total += probs[c]
	}
	for c := 0; c < m.numClasses; c++ {
		probs[c] /= total
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if m.w1 == nil {
		return 0
	}
	hidden := make([]float64, m.Hidden)
	probs := make([]float64, m.numClasses)
	m.forward(m.scaler.Apply(x), hidden, probs)
	return argmax(probs)
}
