package classify

import (
	"math"

	"pka/internal/stats"
)

// SGD is multiclass logistic regression (softmax) trained with mini-batch
// stochastic gradient descent and L2 regularization.
type SGD struct {
	Epochs       int
	LearningRate float64
	L2           float64

	seed       uint64
	numClasses int
	scaler     *Scaler
	weights    [][]float64 // numClasses × (dim+1), last column is bias
}

// NewSGD returns an SGD classifier with defaults tuned for the small,
// well-separated feature spaces produced by kernel profiling.
func NewSGD(seed uint64) *SGD {
	return &SGD{Epochs: 60, LearningRate: 0.1, L2: 1e-4, seed: seed}
}

// Name implements Classifier.
func (s *SGD) Name() string { return "sgd" }

// Fit implements Classifier.
func (s *SGD) Fit(X [][]float64, y []int, numClasses int) error {
	dim, err := validate(X, y, numClasses)
	if err != nil {
		return err
	}
	s.numClasses = numClasses
	s.scaler = FitScaler(X)
	scaled := make([][]float64, len(X))
	for i, row := range X {
		scaled[i] = s.scaler.Apply(row)
	}

	s.weights = make([][]float64, numClasses)
	for c := range s.weights {
		s.weights[c] = make([]float64, dim+1)
	}

	rng := stats.NewRNG(s.seed ^ 0x5D6D)
	probs := make([]float64, numClasses)
	for epoch := 0; epoch < s.Epochs; epoch++ {
		lr := s.LearningRate / (1 + 0.05*float64(epoch))
		for _, i := range shuffledIndices(len(scaled), rng) {
			x := scaled[i]
			s.softmax(x, probs)
			for c := 0; c < numClasses; c++ {
				grad := probs[c]
				if c == y[i] {
					grad -= 1
				}
				w := s.weights[c]
				for j, v := range x {
					w[j] -= lr * (grad*v + s.L2*w[j])
				}
				w[dim] -= lr * grad
			}
		}
	}
	return nil
}

// softmax fills out with class probabilities for standardized features x.
func (s *SGD) softmax(x []float64, out []float64) {
	maxLogit := math.Inf(-1)
	for c := 0; c < s.numClasses; c++ {
		w := s.weights[c]
		logit := w[len(x)]
		for j, v := range x {
			logit += w[j] * v
		}
		out[c] = logit
		if logit > maxLogit {
			maxLogit = logit
		}
	}
	var sum float64
	for c := range out[:s.numClasses] {
		out[c] = math.Exp(out[c] - maxLogit)
		sum += out[c]
	}
	for c := range out[:s.numClasses] {
		out[c] /= sum
	}
}

// Predict implements Classifier.
func (s *SGD) Predict(x []float64) int {
	if s.weights == nil {
		return 0
	}
	probs := make([]float64, s.numClasses)
	s.softmax(s.scaler.Apply(x), probs)
	return argmax(probs)
}
