package classify

import (
	"testing"

	"pka/internal/stats"
)

// gaussianDataset builds a 3-class dataset with well-separated class means.
func gaussianDataset(perClass int, seed uint64) ([][]float64, []int) {
	centers := [][]float64{
		{0, 0, 0, 0},
		{6, 6, 0, -3},
		{-6, 3, 5, 4},
	}
	rng := stats.NewRNG(seed)
	var X [][]float64
	var y []int
	for c, ctr := range centers {
		for i := 0; i < perClass; i++ {
			row := make([]float64, len(ctr))
			for j, v := range ctr {
				row[j] = v + rng.NormFloat64()
			}
			X = append(X, row)
			y = append(y, c)
		}
	}
	return X, y
}

func allModels() []Classifier {
	return []Classifier{NewSGD(1), NewGaussianNB(), NewMLP(1), NewEnsemble(1)}
}

func TestClassifiersSeparateGaussians(t *testing.T) {
	Xtr, ytr := gaussianDataset(60, 11)
	Xte, yte := gaussianDataset(30, 99)
	for _, m := range allModels() {
		if err := m.Fit(Xtr, ytr, 3); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if acc := Accuracy(m, Xte, yte); acc < 0.9 {
			t.Errorf("%s held-out accuracy = %.2f, want >= 0.9", m.Name(), acc)
		}
	}
}

func TestClassifiersValidation(t *testing.T) {
	for _, m := range allModels() {
		if err := m.Fit(nil, nil, 2); err == nil {
			t.Errorf("%s accepted empty data", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []int{0, 1}, 2); err == nil {
			t.Errorf("%s accepted ragged rows", m.Name())
		}
		if err := m.Fit([][]float64{{1}, {2}}, []int{0, 5}, 2); err == nil {
			t.Errorf("%s accepted out-of-range label", m.Name())
		}
		if err := m.Fit([][]float64{{1}}, []int{0}, 0); err == nil {
			t.Errorf("%s accepted numClasses=0", m.Name())
		}
	}
}

func TestUnfittedPredictIsSafe(t *testing.T) {
	for _, m := range []Classifier{NewSGD(0), NewGaussianNB(), NewMLP(0)} {
		if got := m.Predict([]float64{1, 2, 3}); got != 0 {
			t.Errorf("%s unfitted Predict = %d, want 0", m.Name(), got)
		}
	}
}

func TestSingleClassDataset(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 3}, {0, 1}}
	y := []int{0, 0, 0}
	for _, m := range allModels() {
		if err := m.Fit(X, y, 1); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got := m.Predict([]float64{99, -42}); got != 0 {
			t.Errorf("%s single-class Predict = %d", m.Name(), got)
		}
	}
}

func TestGNBHandlesUnseenClass(t *testing.T) {
	// numClasses = 3 but class 2 never appears in training data.
	X := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}}
	y := []int{0, 0, 1, 1}
	g := NewGaussianNB()
	if err := g.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{0, 0.5}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
	if got := g.Predict([]float64{10, 10.5}); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
}

func TestGNBZeroVarianceFeature(t *testing.T) {
	// Feature 1 is constant; the variance floor must prevent Inf/NaN.
	X := [][]float64{{0, 7}, {1, 7}, {10, 7}, {11, 7}}
	y := []int{0, 0, 1, 1}
	g := NewGaussianNB()
	if err := g.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{0.5, 7}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, y := gaussianDataset(40, 3)
	probe, _ := gaussianDataset(10, 77)
	for _, build := range []func() Classifier{
		func() Classifier { return NewSGD(42) },
		func() Classifier { return NewMLP(42) },
	} {
		a, b := build(), build()
		if err := a.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		for _, p := range probe {
			if a.Predict(p) != b.Predict(p) {
				t.Errorf("%s: identical seeds diverged", a.Name())
				break
			}
		}
	}
}

func TestEnsembleMajority(t *testing.T) {
	// Stub members with fixed outputs to verify vote counting.
	e := &Ensemble{Members: []Classifier{fixed(2), fixed(1), fixed(1)}}
	if got := e.Predict(nil); got != 1 {
		t.Errorf("majority vote = %d, want 1", got)
	}
	// Tie: first-listed member wins.
	e = &Ensemble{Members: []Classifier{fixed(5), fixed(3)}}
	if got := e.Predict(nil); got != 5 {
		t.Errorf("tie break = %d, want 5", got)
	}
	empty := &Ensemble{}
	if err := empty.Fit([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Error("empty ensemble Fit did not error")
	}
}

type fixed int

func (f fixed) Fit([][]float64, []int, int) error { return nil }
func (f fixed) Predict([]float64) int             { return int(f) }
func (f fixed) Name() string                      { return "fixed" }

func TestAccuracyEmpty(t *testing.T) {
	if got := Accuracy(fixed(0), nil, nil); got != 0 {
		t.Errorf("Accuracy on empty = %v", got)
	}
}

// Grid-dimension-like integer features: the actual shape of the two-level
// mapping problem (lightweight profiles carry grid/block dims and name
// hashes). Verify the classifiers handle that distribution.
func TestClassifiersOnGridDimFeatures(t *testing.T) {
	rng := stats.NewRNG(5)
	var X [][]float64
	var y []int
	// Class 0: big grids, small blocks. Class 1: small grids, big blocks.
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			X = append(X, []float64{float64(4000 + rng.Intn(2000)), 64, 1, float64(rng.Intn(3))})
			y = append(y, 0)
		} else {
			X = append(X, []float64{float64(8 + rng.Intn(16)), 512, 2, float64(rng.Intn(3))})
			y = append(y, 1)
		}
	}
	for _, m := range allModels() {
		if err := m.Fit(X, y, 2); err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(m, X, y); acc < 0.95 {
			t.Errorf("%s training accuracy on grid features = %.2f", m.Name(), acc)
		}
	}
}
