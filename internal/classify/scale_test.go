package classify

import (
	"math"
	"testing"
)

// TestFitScalerConstantColumn is the regression test for the silent
// constant-column skew: with three copies of 0.1 the column sum rounds,
// the mean lands one ulp off 0.1, and the naive stddev comes out ~1e-17
// instead of 0 — so the old exact `scale == 0` guard never fired and
// standardizing divided the ulp-sized residual by the ulp-sized stddev,
// turning a zero-information column into ±1-magnitude noise.
func TestFitScalerConstantColumn(t *testing.T) {
	X := [][]float64{
		{0.1, 1.0},
		{0.1, 2.0},
		{0.1, 3.0},
	}
	// Confirm the premise: the naive mean of this column is not exactly 0.1.
	naiveMean := (0.1 + 0.1 + 0.1) / 3
	if naiveMean == 0.1 {
		t.Skip("platform sums 3×0.1 exactly; constant-column skew not reproducible")
	}

	s := FitScaler(X)
	if s.Scale[0] != 1 {
		t.Fatalf("constant column scale = %v, want exactly 1", s.Scale[0])
	}
	if s.Mean[0] != 0.1 {
		t.Fatalf("constant column mean = %v, want exactly 0.1", s.Mean[0])
	}
	for _, row := range X {
		got := s.Apply(row)
		if got[0] != 0 {
			t.Fatalf("standardized constant feature = %v, want exactly 0", got[0])
		}
	}

	// The varying column still standardizes normally.
	got := s.Apply(X[1])
	if math.Abs(got[1]) > 1e-12 {
		t.Fatalf("standardized middle value = %v, want ~0", got[1])
	}
	lo, hi := s.Apply(X[0])[1], s.Apply(X[2])[1]
	if lo >= 0 || hi <= 0 || math.Abs(lo+hi) > 1e-12 {
		t.Fatalf("varying column standardized to (%v, %v), want symmetric around 0", lo, hi)
	}
}

// TestFitScalerZeroColumn pins the easy case the old guard did handle: an
// all-zero column keeps Scale 1 and maps to exactly 0.
func TestFitScalerZeroColumn(t *testing.T) {
	X := [][]float64{{0, 5}, {0, 7}}
	s := FitScaler(X)
	if s.Scale[0] != 1 || s.Mean[0] != 0 {
		t.Fatalf("zero column: mean=%v scale=%v, want 0 and 1", s.Mean[0], s.Scale[0])
	}
	if got := s.Apply(X[0]); got[0] != 0 {
		t.Fatalf("standardized zero feature = %v, want 0", got[0])
	}
}
