package classify

import "math"

// GaussianNB is a Gaussian Naive Bayes classifier: per-class feature means
// and variances with a log-likelihood decision rule.
type GaussianNB struct {
	numClasses int
	dim        int
	priors     []float64   // log class priors
	means      [][]float64 // class × feature
	variances  [][]float64 // class × feature, floored
}

// NewGaussianNB returns an untrained Gaussian Naive Bayes model.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "gnb" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(X [][]float64, y []int, numClasses int) error {
	dim, err := validate(X, y, numClasses)
	if err != nil {
		return err
	}
	g.numClasses, g.dim = numClasses, dim
	counts := make([]float64, numClasses)
	g.means = make([][]float64, numClasses)
	g.variances = make([][]float64, numClasses)
	for c := range g.means {
		g.means[c] = make([]float64, dim)
		g.variances[c] = make([]float64, dim)
	}
	for i, row := range X {
		counts[y[i]]++
		for j, v := range row {
			g.means[y[i]][j] += v
		}
	}
	for c := 0; c < numClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.means[c] {
			g.means[c][j] /= counts[c]
		}
	}
	// Global variance floor keeps zero-variance features from producing
	// infinities; sklearn uses the same trick (var_smoothing).
	var globalVar float64
	for i, row := range X {
		for j, v := range row {
			d := v - g.means[y[i]][j]
			g.variances[y[i]][j] += d * d
			globalVar += d * d
		}
	}
	globalVar /= float64(len(X) * dim)
	floor := 1e-9*globalVar + 1e-12
	for c := 0; c < numClasses; c++ {
		for j := range g.variances[c] {
			if counts[c] > 0 {
				g.variances[c][j] /= counts[c]
			}
			if g.variances[c][j] < floor {
				g.variances[c][j] = floor
			}
		}
	}
	g.priors = make([]float64, numClasses)
	for c := range g.priors {
		if counts[c] == 0 {
			g.priors[c] = math.Inf(-1) // unseen class can never win
			continue
		}
		g.priors[c] = math.Log(counts[c] / float64(len(X)))
	}
	return nil
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) int {
	if g.means == nil {
		return 0
	}
	scores := make([]float64, g.numClasses)
	for c := 0; c < g.numClasses; c++ {
		ll := g.priors[c]
		if math.IsInf(ll, -1) {
			scores[c] = ll
			continue
		}
		for j, v := range x {
			if j >= g.dim {
				break
			}
			d := v - g.means[c][j]
			ll += -0.5*math.Log(2*math.Pi*g.variances[c][j]) - d*d/(2*g.variances[c][j])
		}
		scores[c] = ll
	}
	return argmax(scores)
}
