package classify

import "math"

// Scaler standardizes feature vectors with training-set statistics
// (subtract the column mean, divide by the column's population standard
// deviation). It is the one shared feature-scaling helper for every
// consumer of profiler feature spaces — the classifiers in this package
// and the learned outcome predictor — so "standardized features" means
// the same thing everywhere a model is trained or applied.
type Scaler struct {
	Mean  []float64 `json:"mean"`
	Scale []float64 `json:"scale"`
}

// FitScaler computes per-column standardization statistics over X.
//
// Constant columns get Scale 1 (and thus map to exactly 0), detected by
// comparing the column's min and max directly. The naive guard — "is the
// computed stddev zero?" — silently skews constant columns: summing n
// copies of a value like 0.1 rounds, the mean lands one ulp off the
// value, and the stddev comes out around 1e-17 instead of 0. Dividing by
// it blows the column up to ±1-magnitude noise (or worse), giving a
// feature that carries no information the same weight as a real one.
func FitScaler(X [][]float64) *Scaler {
	dim := len(X[0])
	s := &Scaler{Mean: make([]float64, dim), Scale: make([]float64, dim)}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, X[0])
	copy(hi, X[0])
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Scale[j] += d * d
		}
	}
	for j := range s.Scale {
		if lo[j] == hi[j] {
			// Constant column: pin the mean to the exact value so the
			// standardized feature is exactly 0, not FP-cancellation noise.
			s.Mean[j] = lo[j]
			s.Scale[j] = 1
			continue
		}
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] == 0 {
			s.Scale[j] = 1
		}
	}
	return s
}

// Apply standardizes one row into a fresh slice.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	s.ApplyInto(out, x)
	return out
}

// ApplyInto standardizes x into dst (which must have len(x)).
func (s *Scaler) ApplyInto(dst, x []float64) {
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Scale[j]
	}
}
