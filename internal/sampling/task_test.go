package sampling

import (
	"math"
	"testing"

	"pka/internal/artifact"
	"pka/internal/gpu"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/trace"
	"pka/internal/workload"
)

func testKernel(t *testing.T) trace.KernelDesc {
	t.Helper()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	return w.Kernel(0)
}

func TestTaskKeyIgnoresIdentity(t *testing.T) {
	dev := gpu.VoltaV100()
	k := testKernel(t)
	task := KernelTask{Mode: ModeFull}
	base := TaskKey(dev, &k, task)

	// Launch index and display name are identity, not content: two
	// launches with identical features must share one cache entry.
	k2 := k
	k2.ID = k.ID + 1000
	k2.Name = "renamed_" + k.Name
	if TaskKey(dev, &k2, task) != base {
		t.Fatal("kernel ID/name changed the content key")
	}
}

func TestTaskKeySensitivity(t *testing.T) {
	dev := gpu.VoltaV100()
	k := testKernel(t)
	task := KernelTask{Mode: ModePKA, MaxCycles: 12345, PKP: NewPKPSpec(pkp.Options{})}
	base := TaskKey(dev, &k, task)

	perturb := map[string]func() string{
		"device": func() string {
			d := dev
			d.NumSMs++
			return TaskKey(d, &k, task)
		},
		"grid": func() string {
			kk := k
			kk.Grid.X++
			return TaskKey(dev, &kk, task)
		},
		"mix": func() string {
			kk := k
			kk.Mix.Compute++
			return TaskKey(dev, &kk, task)
		},
		"coalescing": func() string {
			kk := k
			kk.CoalescingFactor = math.Nextafter(kk.CoalescingFactor, 2)
			return TaskKey(dev, &kk, task)
		},
		"seed": func() string {
			kk := k
			kk.Seed++
			return TaskKey(dev, &kk, task)
		},
		"mode": func() string {
			tt := task
			tt.Mode = ModePKS
			return TaskKey(dev, &k, tt)
		},
		"max-cycles": func() string {
			tt := task
			tt.MaxCycles++
			return TaskKey(dev, &k, tt)
		},
		"pkp-threshold": func() string {
			tt := task
			tt.PKP.Threshold *= 2
			return TaskKey(dev, &k, tt)
		},
	}
	for name, f := range perturb {
		if f() == base {
			t.Errorf("perturbing %s did not change the key", name)
		}
	}

	// PKP parameters are inert outside ModePKA: PKS tasks with different
	// thresholds are the same work.
	pksA := KernelTask{Mode: ModePKS, MaxCycles: 1, PKP: PKPSpec{Threshold: 0.1, Window: 7}}
	pksB := KernelTask{Mode: ModePKS, MaxCycles: 1, PKP: PKPSpec{Threshold: 0.9, Window: 9}}
	if TaskKey(dev, &k, pksA) != TaskKey(dev, &k, pksB) {
		t.Error("PKP spec leaked into a non-PKA key")
	}
}

func TestNewPKPSpecCanonicalizes(t *testing.T) {
	got := NewPKPSpec(pkp.Options{})
	want := PKPSpec{Threshold: pkp.DefaultThreshold, Window: pkp.DefaultWindow}
	if got != want {
		t.Fatalf("NewPKPSpec zero = %+v, want defaults %+v", got, want)
	}
	dev := gpu.VoltaV100()
	k := testKernel(t)
	explicit := KernelTask{Mode: ModePKA, PKP: want}
	implicit := KernelTask{Mode: ModePKA, PKP: NewPKPSpec(pkp.Options{})}
	if TaskKey(dev, &k, explicit) != TaskKey(dev, &k, implicit) {
		t.Fatal("default and explicit-default PKP specs key differently")
	}
}

func TestOutcomeCodecRoundtrip(t *testing.T) {
	cases := []KernelOutcome{
		{},
		{ProjCycles: 1 << 40, SimWarpInstrs: 7, ThreadInstrs: 3.25, DRAMUtil: 0.875},
		{ProjCycles: -1, ThreadInstrs: math.Inf(1), Capped: true},
		{DRAMUtil: math.Nextafter(0, 1), Truncated: true},
		{Capped: true, Truncated: true},
	}
	for _, oc := range cases {
		got, err := DecodeOutcome(EncodeOutcome(oc))
		if err != nil {
			t.Fatalf("roundtrip of %+v: %v", oc, err)
		}
		if got != oc {
			t.Fatalf("roundtrip of %+v = %+v", oc, got)
		}
	}
	for _, bad := range [][]byte{nil, make([]byte, outcomeSize-1), make([]byte, outcomeSize+1)} {
		if _, err := DecodeOutcome(bad); err == nil {
			t.Fatalf("decode accepted %d bytes", len(bad))
		}
	}
	withBadFlags := EncodeOutcome(KernelOutcome{})
	withBadFlags[32] = 4
	if _, err := DecodeOutcome(withBadFlags); err == nil {
		t.Fatal("decode accepted unknown flag bits")
	}
}

// TestExecCacheLayering: a disk entry written by one Exec satisfies a
// second Exec (fresh memory cache) from the store, and a third call on the
// second Exec from memory — all three byte-identical.
func TestExecCacheLayering(t *testing.T) {
	dev := gpu.VoltaV100()
	k := testKernel(t)
	kernels := []trace.KernelDesc{k}
	task := KernelTask{Mode: ModeFull}

	st, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cold := NewExec(nil, st)
	a, err := cold.RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Writes != 1 || s.Hits != 0 {
		t.Fatalf("cold run stats %+v, want one write and no hits", s)
	}

	warm := NewExec(nil, st)
	b, err := warm.RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Hits != 1 {
		t.Fatalf("warm run did not hit the store: %+v", s)
	}
	c, err := warm.RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := warm.MemStats(); h != 1 || m != 1 {
		t.Fatalf("mem stats = %d/%d, want 1 hit / 1 miss", h, m)
	}
	if s := st.Stats(); s.Hits != 1 {
		t.Fatalf("second warm call bypassed memory: %+v", s)
	}
	if a[0] != b[0] || b[0] != c[0] {
		t.Fatalf("outcomes diverge across layers: %+v %+v %+v", a[0], b[0], c[0])
	}

	// And a serial, uncached run agrees with all of them.
	d, err := (*Exec)(nil).RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != a[0] {
		t.Fatalf("uncached outcome %+v != cached %+v", d[0], a[0])
	}
}

// TestExecScheduledMatchesSerial: scheduling kernels across workers
// returns the same outcomes in the same order as the inline path.
func TestExecScheduledMatchesSerial(t *testing.T) {
	dev := gpu.VoltaV100()
	w := workload.Find("Rodinia/gauss_mat4")
	kernels := make([]trace.KernelDesc, w.N)
	for i := range kernels {
		kernels[i] = w.Kernel(i)
	}
	task := KernelTask{Mode: ModePKS, MaxCycles: 50_000}

	serial, err := (*Exec)(nil).RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewExec(parallel.NewScheduler(4), nil)
	par, err := sched.RunKernels(dev, task, kernels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("length mismatch: %d vs %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i] != serial[i] {
			t.Fatalf("kernel %d: scheduled %+v != serial %+v", i, par[i], serial[i])
		}
	}
}

// TestCorruptStoreEntryRecomputes: a corrupted disk entry must be
// recomputed transparently, yielding the same outcome as the clean run.
func TestCorruptStoreEntryRecomputes(t *testing.T) {
	dev := gpu.VoltaV100()
	k := testKernel(t)
	task := KernelTask{Mode: ModeFull}
	key := TaskKey(dev, &k, task)

	st, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	clean, err := NewExec(nil, st).RunKernels(dev, task, []trace.KernelDesc{k}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the entry with a validly-checksummed but undecodable
	// payload: wrong size for the outcome codec.
	if err := st.Put(key, []byte("schema drifted")); err != nil {
		t.Fatal(err)
	}
	again, err := NewExec(nil, st).RunKernels(dev, task, []trace.KernelDesc{k}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != clean[0] {
		t.Fatalf("recomputed outcome %+v != clean %+v", again[0], clean[0])
	}
}
