package sampling

import (
	"sync"

	"pka/internal/gpu"
	"pka/internal/trace"
)

// Speculator warms the Exec ladder for kernels that are *likely* to be
// elected representatives, while profiling is still running. It is pure
// cache-warming by construction: outcomes are pure functions of the
// content key, so a speculative run either lands in the mem/disk caches
// for the real fold to hit, or is joined in flight by the real run through
// the mem tier's singleflight — and a rep demoted by a later cluster
// revision costs only the warp instructions it simulated, never
// correctness.
//
// Speculate and Wait are safe for concurrent use; errors are swallowed
// (a failed warm just means the real run pays full price later).
type Speculator struct {
	exec  *Exec
	dev   gpu.Device
	tasks []KernelTask

	sem chan struct{}
	wg  sync.WaitGroup

	mu       sync.Mutex
	launched map[string]*specEntry
	sealed   bool
}

// specEntry tracks one speculative key's fate.
type specEntry struct {
	done       bool // simulation finished before Seal
	warpInstrs int64
}

// SpecStats summarizes how the speculation gamble went, resolved against
// the final representative set.
type SpecStats struct {
	// Launched is the number of (kernel, task) warms dispatched.
	Launched int
	// Hits is how many of the final keys were warmed before Seal.
	Hits int
	// Demoted is how many warmed keys were NOT in the final set.
	Demoted int
	// WastedWarpInstrs is the simulation work spent on demoted keys.
	WastedWarpInstrs int64
	// OverlapFraction is the fraction of the final keys' warms that
	// completed before Seal — the share of reconciliation work that
	// overlapped profiling.
	OverlapFraction float64
}

// NewSpeculator builds a Speculator that warms each speculated kernel
// under every task spec in tasks (one per sampled mode the study will
// fold), running at most workers warms concurrently.
func NewSpeculator(e *Exec, dev gpu.Device, tasks []KernelTask, workers int) *Speculator {
	if workers < 1 {
		workers = 1
	}
	return &Speculator{
		exec:     e,
		dev:      dev,
		tasks:    tasks,
		sem:      make(chan struct{}, workers),
		launched: map[string]*specEntry{},
	}
}

// Speculate warms the ladder for kernel k under every configured task
// spec. Each distinct content key is dispatched at most once per
// Speculator lifetime.
func (s *Speculator) Speculate(k trace.KernelDesc) {
	for _, task := range s.tasks {
		s.SpeculateTask(k, task)
	}
}

// SpeculateTask warms the ladder for one explicit (kernel, task) pair.
func (s *Speculator) SpeculateTask(k trace.KernelDesc, task KernelTask) {
	key := TaskKey(s.dev, &k, task)
	s.mu.Lock()
	if s.sealed || s.launched[key] != nil {
		s.mu.Unlock()
		return
	}
	ent := &specEntry{}
	s.launched[key] = ent
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		oc, err := s.exec.run(s.dev, k, task, TaskObs{Phase: "spec", Kernel: k.Name}, true)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err == nil {
			// Work is recorded whenever it happened; only the overlap
			// credit respects the Seal cutoff.
			ent.warpInstrs = oc.SimWarpInstrs
			if !s.sealed {
				ent.done = true
			}
		}
	}()
}

// Seal marks the reconciliation cutoff: warms completing after Seal no
// longer count as overlapped. Call it when the final selection is known,
// before the real fold starts.
func (s *Speculator) Seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
}

// Wait blocks until every dispatched warm has finished — in-flight
// speculative simulations keep the singleflight entry warm for the real
// fold, so waiting is cheap and never discards work.
func (s *Speculator) Wait() { s.wg.Wait() }

// Resolve scores the speculation against the final keys actually folded
// (as produced by TaskKey for each final representative × task). It does
// not wait for in-flight warms; call after Seal.
func (s *Speculator) Resolve(finalKeys map[string]bool) SpecStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SpecStats{Launched: len(s.launched)}
	completed := 0
	for key, ent := range s.launched {
		if finalKeys[key] {
			if ent.done {
				completed++
			}
			continue
		}
		st.Demoted++
		st.WastedWarpInstrs += ent.warpInstrs
	}
	st.Hits = completed
	if len(finalKeys) > 0 {
		st.OverlapFraction = float64(completed) / float64(len(finalKeys))
	}
	return st
}
