package sampling

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/sim"
	"pka/internal/workload"
)

// TestSpeculatorWarmsWithoutChangingOutcomes pins the cache-warming
// contract: a fold preceded by speculative warming returns exactly the
// outcomes of a cold fold, speculated keys resolve as hits, and keys for
// kernels never elected resolve as demoted with their simulated work
// counted as waste.
func TestSpeculatorWarmsWithoutChangingOutcomes(t *testing.T) {
	dev := gpu.VoltaV100()
	w := workload.Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("study workload missing")
	}
	task := KernelTask{Mode: ModePKS, MaxCycles: sim.DefaultMaxCycles}

	// Cold baseline.
	cold := NewExec(nil, nil)
	kept, demoted := w.Kernel(0), w.Kernel(2)
	want, err := cold.runKernel(dev, kept, task, TaskObs{})
	if err != nil {
		t.Fatal(err)
	}

	warm := NewExec(nil, nil)
	spec := NewSpeculator(warm, dev, []KernelTask{task}, 2)
	spec.Speculate(kept)
	spec.Speculate(demoted)
	spec.Speculate(kept) // duplicate must not double-launch
	spec.Wait()
	spec.Seal()

	got, err := warm.runKernel(dev, kept, task, TaskObs{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("warmed outcome %+v differs from cold %+v", got, want)
	}

	final := map[string]bool{TaskKey(dev, &kept, task): true}
	st := spec.Resolve(final)
	if st.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (duplicate deduped)", st.Launched)
	}
	if st.Hits != 1 || st.OverlapFraction != 1 {
		t.Errorf("Hits=%d OverlapFraction=%v, want 1 and 1", st.Hits, st.OverlapFraction)
	}
	if st.Demoted != 1 {
		t.Errorf("Demoted = %d, want 1", st.Demoted)
	}
	if st.WastedWarpInstrs <= 0 {
		t.Errorf("WastedWarpInstrs = %d, want > 0 for a demoted simulated rep", st.WastedWarpInstrs)
	}

	// Warms dispatched after Seal are dropped.
	spec.Speculate(w.Kernel(3))
	spec.Wait()
	if st2 := spec.Resolve(final); st2.Launched != st.Launched {
		t.Errorf("post-Seal speculation launched work: %d -> %d", st.Launched, st2.Launched)
	}
}
