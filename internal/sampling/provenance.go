// Per-kernel execution provenance: the study "flight recorder". Every
// kernel task the Exec ladder resolves gets one ProvEntry — which tier
// served it (learned predictor, mem singleflight, disk artifact store,
// owner-shard peer, remote worker, fresh sim), which peer, how long it
// queued and how long service took, and
// any hedge/retry/breaker events along the way. Entries fold
// deterministically in launch order regardless of execution
// interleaving, so the recorder is a faithful account of *where* each
// outcome came from while the outcomes themselves stay byte-identical.
// The paper's accounting argument — you can show exactly which kernels
// were simulated, which were projected, and at what cost — extends here
// across process boundaries.
package sampling

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pka/internal/obs"
)

// Tier is the Exec ladder level that satisfied a kernel task. Numeric
// values index obs.ExecMetrics and match obs.ExecTierNames.
type Tier uint8

// The six serving tiers, in ladder order.
const (
	TierPredict Tier = iota // tier-0 learned predictor (confidence-gated, opt-in)
	TierMem                 // in-memory singleflight (or waited on another caller's compute)
	TierDisk                // content-addressed artifact store
	TierShard               // owner-shard peer in the sharded fleet cache
	TierWorker              // remote pkad worker
	TierSim                 // fresh local simulation
)

// String names the tier; unknown values render as "tier<N>".
func (t Tier) String() string {
	if int(t) < len(obs.ExecTierNames) {
		return obs.ExecTierNames[t]
	}
	return fmt.Sprintf("tier%d", uint8(t))
}

// MarshalJSON renders the tier by name.
func (t Tier) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the name form written by MarshalJSON.
func (t *Tier) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range obs.ExecTierNames {
		if s == name {
			*t = Tier(i)
			return nil
		}
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "tier%d", &n); err != nil {
		return fmt.Errorf("unknown tier %q", s)
	}
	*t = Tier(n)
	return nil
}

// ProvEntry is one kernel task's provenance record.
type ProvEntry struct {
	// Phase is the study phase that launched the kernel ("full", "pks",
	// "pka"); Index is the launch index within that phase. Together they
	// give the deterministic fold order.
	Phase string `json:"phase"`
	Index int    `json:"index"`
	// Kernel is the launch's name (not part of the content key).
	Kernel string `json:"kernel,omitempty"`
	// Key is the task's content-addressed key.
	Key string `json:"key"`
	// Tier is the ladder level that produced the outcome.
	Tier Tier `json:"tier"`
	// Worker identifies the remote peer that served the task: the pkad
	// worker that executed it (TierWorker) or the shard that held its
	// cached outcome (TierShard).
	Worker string `json:"worker,omitempty"`
	// WaitNs is time from scheduler submission to execution start;
	// ServiceNs is execution time in the ladder.
	WaitNs    int64 `json:"wait_ns"`
	ServiceNs int64 `json:"service_ns"`
	// Remote-path event counts: hedged duplicate RPCs launched, extra
	// placement waves after failures, and workers skipped on an open
	// breaker while placing this task.
	Hedges       int `json:"hedges,omitempty"`
	Retries      int `json:"retries,omitempty"`
	BreakerSkips int `json:"breaker_skips,omitempty"`
}

// FlightRecorder accumulates provenance entries for one study run. Safe
// for concurrent use; Entries returns records sorted in (phase, launch
// index) order so reports are deterministic however execution interleaved.
type FlightRecorder struct {
	mu      sync.Mutex
	entries []ProvEntry
}

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder() *FlightRecorder { return &FlightRecorder{} }

// Record appends one entry. Nil-safe.
func (fr *FlightRecorder) Record(e ProvEntry) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.entries = append(fr.entries, e)
	fr.mu.Unlock()
}

// Len reports how many entries have been recorded.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.entries)
}

// Entries returns a copy of the records sorted by (phase, index).
func (fr *FlightRecorder) Entries() []ProvEntry {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	out := append([]ProvEntry(nil), fr.entries...)
	fr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// TierCounts returns how many entries each tier served, keyed by tier
// name. Values always sum to Len().
func (fr *FlightRecorder) TierCounts() map[string]int {
	counts := map[string]int{}
	for _, e := range fr.Entries() {
		counts[e.Tier.String()]++
	}
	return counts
}

// WorkerCounts returns how many entries each remote worker served.
func (fr *FlightRecorder) WorkerCounts() map[string]int {
	counts := map[string]int{}
	for _, e := range fr.Entries() {
		if e.Worker != "" {
			counts[e.Worker]++
		}
	}
	return counts
}

// WriteNDJSON writes one JSON object per entry in (phase, index) order —
// the flight-recorder artifact format.
func (fr *FlightRecorder) WriteNDJSON(w io.Writer) error {
	for _, e := range fr.Entries() {
		if _, err := fmt.Fprintf(w,
			`{"phase":%q,"index":%d,"kernel":%q,"key":%q,"tier":%q,"worker":%q,"wait_ns":%d,"service_ns":%d,"hedges":%d,"retries":%d,"breaker_skips":%d}`+"\n",
			e.Phase, e.Index, e.Kernel, e.Key, e.Tier.String(), e.Worker,
			e.WaitNs, e.ServiceNs, e.Hedges, e.Retries, e.BreakerSkips); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport renders the human-readable tier-attribution report: per-tier
// kernel counts with wait/service time totals, per-worker counts, and the
// remote-path event totals. Byte-deterministic for a given set of entries.
func (fr *FlightRecorder) WriteReport(w io.Writer) error {
	entries := fr.Entries()
	if _, err := fmt.Fprintf(w, "execution provenance: %d kernel launches\n", len(entries)); err != nil {
		return err
	}
	type agg struct {
		n               int
		waitNs, svcNs   int64
		hedges, retries int
		breakerSkips    int
	}
	tiers := map[Tier]*agg{}
	workers := map[string]int{}
	for _, e := range entries {
		a := tiers[e.Tier]
		if a == nil {
			a = &agg{}
			tiers[e.Tier] = a
		}
		a.n++
		a.waitNs += e.WaitNs
		a.svcNs += e.ServiceNs
		a.hedges += e.Hedges
		a.retries += e.Retries
		a.breakerSkips += e.BreakerSkips
		if e.Worker != "" {
			workers[e.Worker]++
		}
	}
	for t := TierPredict; t <= TierSim; t++ {
		a := tiers[t]
		if a == nil {
			a = &agg{}
		}
		if _, err := fmt.Fprintf(w, "  tier %-7s %6d launches  wait %12s  service %12s\n",
			t.String(), a.n,
			time.Duration(a.waitNs).Round(time.Microsecond),
			time.Duration(a.svcNs).Round(time.Microsecond)); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(workers))
	for n := range workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "  worker %s served %d\n", n, workers[n]); err != nil {
			return err
		}
	}
	var hedges, retries, skips int
	for _, a := range tiers {
		hedges += a.hedges
		retries += a.retries
		skips += a.breakerSkips
	}
	if hedges+retries+skips > 0 {
		if _, err := fmt.Fprintf(w, "  remote events: %d hedges, %d retries, %d breaker skips\n",
			hedges, retries, skips); err != nil {
			return err
		}
	}
	return nil
}

// RemoteObs is the observe-only context the Exec ladder hands the remote
// tier for one task: the trace context to propagate, the tracer to merge
// worker spans into, and — filled in by the tier — the identity of the
// worker that served the task plus the hedge/retry/breaker event counts
// accumulated while placing it. It never influences placement or results.
type RemoteObs struct {
	Trace  obs.TraceContext
	Tracer *obs.Tracer
	IDs    *obs.IDGen

	Worker       string
	Hedges       int
	Retries      int
	BreakerSkips int
}
