package sampling

import (
	"strings"
	"testing"

	"pka/internal/artifact"
	"pka/internal/gpu"
)

func TestFlightRecorderDeterministicFold(t *testing.T) {
	fr := NewFlightRecorder()
	// Record out of launch order, as parallel execution would.
	fr.Record(ProvEntry{Phase: "pks", Index: 1, Tier: TierSim})
	fr.Record(ProvEntry{Phase: "full", Index: 2, Tier: TierDisk})
	fr.Record(ProvEntry{Phase: "full", Index: 0, Tier: TierSim})
	fr.Record(ProvEntry{Phase: "pks", Index: 0, Tier: TierWorker, Worker: "http://w1"})

	es := fr.Entries()
	want := []struct {
		phase string
		index int
	}{{"full", 0}, {"full", 2}, {"pks", 0}, {"pks", 1}}
	if len(es) != len(want) {
		t.Fatalf("got %d entries, want %d", len(es), len(want))
	}
	for i, w := range want {
		if es[i].Phase != w.phase || es[i].Index != w.index {
			t.Fatalf("entry %d = %s/%d, want %s/%d", i, es[i].Phase, es[i].Index, w.phase, w.index)
		}
	}

	tiers := fr.TierCounts()
	sum := 0
	for _, n := range tiers {
		sum += n
	}
	if sum != fr.Len() {
		t.Fatalf("tier counts sum %d != %d launches", sum, fr.Len())
	}
	if tiers["sim"] != 2 || tiers["disk"] != 1 || tiers["worker"] != 1 {
		t.Fatalf("tier counts %v", tiers)
	}
	if wc := fr.WorkerCounts(); wc["http://w1"] != 1 {
		t.Fatalf("worker counts %v", wc)
	}
}

func TestFlightReportGolden(t *testing.T) {
	fr := NewFlightRecorder()
	fr.Record(ProvEntry{Phase: "full", Index: 0, Tier: TierSim,
		WaitNs: 1_000_000, ServiceNs: 2_000_000})
	fr.Record(ProvEntry{Phase: "pks", Index: 0, Tier: TierWorker,
		Worker: "http://w1", ServiceNs: 3_000_000, Hedges: 1})

	var sb strings.Builder
	if err := fr.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"execution provenance: 2 kernel launches",
		"  tier predict      0 launches  wait           0s  service           0s",
		"  tier mem          0 launches  wait           0s  service           0s",
		"  tier disk         0 launches  wait           0s  service           0s",
		"  tier shard        0 launches  wait           0s  service           0s",
		"  tier worker       1 launches  wait           0s  service          3ms",
		"  tier sim          1 launches  wait          1ms  service          2ms",
		"  worker http://w1 served 1",
		"  remote events: 1 hedges, 0 retries, 0 breaker skips",
	}, "\n") + "\n"
	if got := sb.String(); got != want {
		t.Errorf("report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	var nd strings.Builder
	if err := fr.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(nd.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON has %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"tier":"sim"`) || !strings.Contains(lines[1], `"tier":"worker"`) {
		t.Fatalf("NDJSON order/tiers wrong:\n%s", nd.String())
	}
}

// TestExecTierAttribution runs the same kernel task through the ladder
// three ways and checks each execution is attributed to the tier that
// actually served it: fresh sim, then the in-memory singleflight, then a
// cold process warming from the disk artifact store.
func TestExecTierAttribution(t *testing.T) {
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	dev := gpu.VoltaV100()
	k := testKernel(t)
	task := KernelTask{Mode: ModeFull}

	exec := NewExec(nil, store)
	fr := NewFlightRecorder()
	base, err := exec.RunKernelTaskObs(dev, &k, task, TaskObs{Flight: fr, Phase: "t", Index: 0, Kernel: k.Name})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunKernelTaskObs(dev, &k, task, TaskObs{Flight: fr, Phase: "t", Index: 1}); err != nil {
		t.Fatal(err)
	}

	cold := NewExec(nil, store)
	oc, err := cold.RunKernelTaskObs(dev, &k, task, TaskObs{Flight: fr, Phase: "t", Index: 2})
	if err != nil {
		t.Fatal(err)
	}
	if oc != base {
		t.Fatalf("disk-served outcome differs: %+v vs %+v", oc, base)
	}

	es := fr.Entries()
	if len(es) != 3 {
		t.Fatalf("recorded %d entries, want 3", len(es))
	}
	wantTiers := []Tier{TierSim, TierMem, TierDisk}
	for i, want := range wantTiers {
		if es[i].Tier != want {
			t.Errorf("launch %d attributed to %s, want %s", i, es[i].Tier, want)
		}
		if es[i].Key == "" {
			t.Errorf("launch %d has no content key", i)
		}
		if es[i].ServiceNs < 0 || es[i].WaitNs < 0 {
			t.Errorf("launch %d has negative durations: %+v", i, es[i])
		}
	}
	if es[0].Kernel != k.Name {
		t.Errorf("launch 0 kernel %q, want %q", es[0].Kernel, k.Name)
	}

	sum := 0
	for _, n := range fr.TierCounts() {
		sum += n
	}
	if sum != 3 {
		t.Fatalf("tier counts sum %d, want 3", sum)
	}
}
