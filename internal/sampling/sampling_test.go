package sampling

import (
	"errors"
	"testing"

	"pka/internal/gpu"
	"pka/internal/stats"
	"pka/internal/workload"
)

func TestFullSimSmallWorkload(t *testing.T) {
	w := workload.Find("Rodinia/gauss_mat4")
	res, err := FullSim(gpu.VoltaV100(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelsSimulated != w.N {
		t.Errorf("simulated %d kernels, want %d", res.KernelsSimulated, w.N)
	}
	if res.Truncated {
		t.Error("full sim should not truncate")
	}
	if res.ProjCycles <= 0 || res.SimWarpInstrs <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestFullSimInfeasibleOnHugeWorkload(t *testing.T) {
	w := workload.Find("MLPerf/ssd_training")
	_, err := FullSim(gpu.VoltaV100(), w, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// A tiny explicit budget makes even small apps infeasible.
	small := workload.Find("Rodinia/gauss_mat4")
	if _, err := FullSim(gpu.VoltaV100(), small, 10); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tiny budget: err = %v", err)
	}
}

func TestFullSimTracksSilicon(t *testing.T) {
	w := workload.Find("Parboil/histo")
	res, err := FullSim(gpu.VoltaV100(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	sil, err := SiliconTotal(gpu.VoltaV100(), w)
	if err != nil {
		t.Fatal(err)
	}
	errPct := stats.AbsPctErr(float64(res.ProjCycles), float64(sil.Cycles))
	// The paper's simulator baseline averages 26.7% error vs silicon
	// with individual apps up to ~150%; our two models should land in
	// the same regime.
	if errPct > 150 {
		t.Errorf("full-sim error vs silicon = %.1f%%", errPct)
	}
}

func TestFirstNCoversSmallAppExactly(t *testing.T) {
	w := workload.Find("Rodinia/gauss_mat4")
	full, err := FullSim(gpu.VoltaV100(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FirstN(gpu.VoltaV100(), w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("huge budget should cover the whole app")
	}
	if res.ProjCycles != full.ProjCycles {
		t.Errorf("FirstN with full budget = %d cycles, full sim = %d", res.ProjCycles, full.ProjCycles)
	}
}

func TestFirstNTruncatesAndProjects(t *testing.T) {
	w := workload.Find("Polybench/fdtd2d")
	res, err := FirstN(gpu.VoltaV100(), w, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("2M-instruction budget should truncate fdtd2d")
	}
	if res.KernelsSimulated >= w.N {
		t.Errorf("entered %d kernels of %d", res.KernelsSimulated, w.N)
	}
	if res.SimWarpInstrs > 2_100_000 {
		t.Errorf("simulated %d warp instrs, budget 2M", res.SimWarpInstrs)
	}
	if res.ProjCycles <= 0 {
		t.Error("no projection produced")
	}
	// The projection must at least account for every kernel's overhead.
	sil, _ := SiliconTotal(gpu.VoltaV100(), w)
	ratio := float64(res.ProjCycles) / float64(sil.Cycles)
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("projection wildly off: ratio %.2f vs silicon", ratio)
	}
}

func TestFirstNIsCheaperThanFullSim(t *testing.T) {
	w := workload.Find("Polybench/fdtd2d")
	full, err := FullSim(gpu.VoltaV100(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FirstN(gpu.VoltaV100(), w, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimWarpInstrs*2 > full.SimWarpInstrs {
		t.Errorf("FirstN simulated %d of %d warp instrs — not a meaningful reduction",
			res.SimWarpInstrs, full.SimWarpInstrs)
	}
}

func TestSiliconTotal(t *testing.T) {
	w := workload.Find("Rodinia/b+tree")
	app, err := SiliconTotal(gpu.VoltaV100(), w)
	if err != nil {
		t.Fatal(err)
	}
	if app.Kernels != w.N || app.Cycles <= 0 || app.TimeSeconds <= 0 {
		t.Errorf("silicon total: %+v", app)
	}
}
