// Package sampling provides the non-PKA simulation policies the paper
// compares against: full simulation of every kernel, and the widely used
// "simulate the first N instructions" heuristic (N = 1 billion in the
// paper's Figure 7/8 comparison).
package sampling

import (
	"errors"
	"fmt"

	"pka/internal/gpu"
	"pka/internal/pkp"
	"pka/internal/silicon"
	"pka/internal/sim"
	"pka/internal/trace"
	"pka/internal/workload"
)

// ErrInfeasible reports that a workload exceeds the harness's actual
// simulation budget — the reproduction's analogue of "this simulation
// would take months", which is precisely the situation the paper's MLPerf
// rows are in.
var ErrInfeasible = errors.New("sampling: workload exceeds full-simulation budget")

// DefaultFullSimBudget caps the warp instructions the harness will truly
// simulate for one workload's full simulation.
const DefaultFullSimBudget = 300_000_000

// DefaultFirstN is the instruction-budget baseline from the paper: the
// first one billion (warp) instructions. Our synthetic workloads carry
// fewer dynamic instructions than the originals by roughly the sim-rate
// ratio, so the default is scaled to keep the baseline's character — it
// covers small apps entirely and truncates large ones at their warmup.
const DefaultFirstN = 10_000_000

// Result summarizes an application-level simulation outcome.
type Result struct {
	// ProjCycles is the simulator's application cycle estimate (kernel
	// cycles plus launch overheads; truncation policies extrapolate).
	ProjCycles int64
	// SimWarpInstrs is the work actually simulated — the cost side.
	SimWarpInstrs int64
	// KernelsSimulated counts kernels that were at least entered.
	KernelsSimulated int
	// IPC is the aggregate thread-instruction IPC over simulated work.
	IPC float64
	// DRAMUtil is the cycle-weighted mean DRAM utilization.
	DRAMUtil float64
	// Truncated reports whether any extrapolation happened.
	Truncated bool
}

// FullSim simulates every kernel of the workload, each on a fresh
// simulator, serially and uncached. It returns ErrInfeasible when the
// workload exceeds budgetWarpInstrs (zero applies DefaultFullSimBudget).
// Use Exec.FullSim to run the same simulation through the kernel-task
// scheduler and caches; the result is byte-identical.
func FullSim(dev gpu.Device, w *workload.Workload, budgetWarpInstrs int64) (*Result, error) {
	return (*Exec)(nil).FullSim(dev, w, budgetWarpInstrs)
}

// FullSim simulates every kernel of the workload as independent kernel
// tasks on the exec's scheduler and cache layers, then folds the outcomes
// in launch order — so the result is byte-identical to the serial package
// function at any scheduler width, warm or cold.
func (e *Exec) FullSim(dev gpu.Device, w *workload.Workload, budgetWarpInstrs int64) (*Result, error) {
	return e.FullSimObs(dev, w, budgetWarpInstrs, nil)
}

// FullSimObs is FullSim with per-kernel observe-only wiring (tracing and
// provenance); a nil tobs is exactly FullSim.
func (e *Exec) FullSimObs(dev gpu.Device, w *workload.Workload, budgetWarpInstrs int64, tobs func(i int) TaskObs) (*Result, error) {
	if budgetWarpInstrs <= 0 {
		budgetWarpInstrs = DefaultFullSimBudget
	}
	if w.ApproxWarpInstructions(budgetWarpInstrs) > budgetWarpInstrs {
		return nil, fmt.Errorf("%w: %s", ErrInfeasible, w.FullName())
	}
	kernels := make([]trace.KernelDesc, w.N)
	for i := range kernels {
		kernels[i] = w.Kernel(i)
	}
	outs, err := e.RunKernels(dev, KernelTask{Mode: ModeFull}, kernels, tobs)
	if err != nil {
		return nil, fmt.Errorf("sampling: full sim of %s: %w", w.FullName(), err)
	}
	res := &Result{}
	var threadInstrs, dramWeighted float64
	var simCycles int64
	for _, oc := range outs {
		res.ProjCycles += oc.ProjCycles + silicon.KernelLaunchOverheadCycles
		res.SimWarpInstrs += oc.SimWarpInstrs
		res.KernelsSimulated++
		simCycles += oc.ProjCycles
		threadInstrs += oc.ThreadInstrs
		dramWeighted += oc.DRAMUtil * float64(oc.ProjCycles)
	}
	finalize(res, threadInstrs, dramWeighted, simCycles)
	return res, nil
}

// FirstN simulates kernels in launch order until nWarpInstrs have been
// issued (stopping mid-kernel if needed), then projects the application
// total by holding the observed IPC: the standard "first billion
// instructions" methodology, warmup bias and all. Zero applies
// DefaultFirstN.
func FirstN(dev gpu.Device, w *workload.Workload, nWarpInstrs int64) (*Result, error) {
	if nWarpInstrs <= 0 {
		nWarpInstrs = DefaultFirstN
	}
	res := &Result{}
	var threadInstrs, dramWeighted float64
	var simCycles, enteredWarp int64

	next := w.Iterator()
	for k := next(); k != nil && res.SimWarpInstrs < nWarpInstrs; k = next() {
		budgetLeft := nWarpInstrs - res.SimWarpInstrs
		ctl := sim.ControllerFunc(func(t *sim.Telemetry) bool {
			return t.WarpInstrs >= budgetLeft
		})
		// Fresh simulator per kernel, matching the kernel-task semantics
		// of every other policy (see task.go), so FirstN with an
		// exhaustive budget lands exactly on FullSim's numbers.
		kr, err := sim.New(dev).RunKernel(k, sim.Options{Controller: ctl})
		if err != nil {
			return nil, fmt.Errorf("sampling: first-N sim of %s kernel %d: %w", w.FullName(), k.ID, err)
		}
		pr := pkp.Project(kr) // lifetime-average extrapolation of a cut kernel
		res.ProjCycles += pr.Cycles + silicon.KernelLaunchOverheadCycles
		res.SimWarpInstrs += kr.WarpInstrs
		res.KernelsSimulated++
		simCycles += kr.Cycles
		enteredWarp += k.TotalWarpInstructions(dev)
		threadInstrs += kr.ThreadInstrs
		dramWeighted += kr.DRAMUtil * float64(kr.Cycles)
		if pr.Truncated {
			res.Truncated = true
		}
	}

	// Kernels never entered: project their cycles by holding the
	// observed warp-level IPC of the simulated prefix. Kernels that were
	// entered (even if cut mid-run) were already extrapolated above, so
	// only the never-entered instruction mass remains.
	totalWarp := int64(float64(w.ApproxWarpInstructions(1<<62)) * dev.ISAScale)
	if totalWarp > enteredWarp && res.SimWarpInstrs > 0 && simCycles > 0 {
		res.Truncated = true
		prefixWarpIPC := float64(res.SimWarpInstrs) / float64(simCycles)
		remaining := float64(totalWarp - enteredWarp)
		res.ProjCycles += int64(remaining / prefixWarpIPC)
		res.ProjCycles += int64(w.N-res.KernelsSimulated) * silicon.KernelLaunchOverheadCycles
	}
	finalize(res, threadInstrs, dramWeighted, simCycles)
	return res, nil
}

// finalize derives the aggregate IPC and DRAM utilization from the
// simulated-cycle-weighted accumulators.
func finalize(res *Result, threadInstrs, dramWeighted float64, simCycles int64) {
	if simCycles <= 0 {
		return
	}
	res.IPC = threadInstrs / float64(simCycles)
	res.DRAMUtil = dramWeighted / float64(simCycles)
}

// SiliconTotal executes the workload on the silicon model and returns the
// application total (kernel cycles plus launch overheads) — the ground
// truth every simulation error is measured against.
func SiliconTotal(dev gpu.Device, w *workload.Workload) (silicon.AppResult, error) {
	return silicon.ExecuteAll(dev, w.Iterator())
}
