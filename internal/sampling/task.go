// Kernel-granular task execution: every simulation the study layer runs —
// full-baseline kernels and PKS/PKA group representatives alike — is one
// KernelTask on one kernel, executed on a fresh simulator. That makes each
// task a pure function of (device, kernel feature vector, task spec), which
// buys the two properties this file exists for: tasks can be scheduled
// independently on the global longest-first scheduler, and their outcomes
// can be memoized — in memory with singleflight semantics and on disk in a
// content-addressed artifact store — because the content key fully
// determines the result.
package sampling

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"pka/internal/artifact"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/sim"
	"pka/internal/trace"
)

// TaskMode selects the per-kernel simulation policy.
type TaskMode uint8

// The three policies the study layer runs per kernel.
const (
	// ModeFull runs the kernel to completion (full-baseline semantics).
	ModeFull TaskMode = iota
	// ModePKS runs under the cycle cap and extrapolates capped kernels by
	// their lifetime average (sampled simulation without projection).
	ModePKS
	// ModePKA runs under Principal Kernel Projection's stability
	// controller and projects the truncated run.
	ModePKA
)

// PKPSpec is the semantic subset of pkp.Options — the fields that change
// results. Observe-only wiring (audit, metrics) deliberately lives in
// TaskObs instead, so telemetry can never split or poison cache keys.
type PKPSpec struct {
	Threshold             float64
	Window                int
	DisableWaveConstraint bool
}

// NewPKPSpec canonicalizes PKP parameters: zero values are resolved to the
// package defaults, so configurations that mean the same thing produce the
// same content key.
func NewPKPSpec(o pkp.Options) PKPSpec {
	sp := PKPSpec{Threshold: o.Threshold, Window: o.Window, DisableWaveConstraint: o.DisableWaveConstraint}
	if sp.Threshold <= 0 {
		sp.Threshold = pkp.DefaultThreshold
	}
	if sp.Window <= 0 {
		sp.Window = pkp.DefaultWindow
	}
	return sp
}

// KernelTask is one per-kernel unit of simulation work.
type KernelTask struct {
	Mode TaskMode
	// MaxCycles caps the simulated cycles (0 = simulator default). ModeFull
	// ignores it and runs with the simulator's own runaway guard.
	MaxCycles int64
	// PKP parameterizes the stability controller; only ModePKA reads it.
	PKP PKPSpec
}

// KernelOutcome is the cacheable result of one kernel task: exactly the
// values the study layer accumulates, and nothing tied to observation.
type KernelOutcome struct {
	// ProjCycles is the kernel's (projected, for sampled modes) cycles.
	ProjCycles int64
	// SimWarpInstrs is the work actually simulated — the cost side.
	SimWarpInstrs int64
	// ThreadInstrs is the (projected) executed thread instructions.
	ThreadInstrs float64
	// DRAMUtil is the kernel's DRAM utilization (a rate; no scaling).
	DRAMUtil float64
	// Capped reports the run hit the task's cycle cap.
	Capped bool
	// Truncated reports any extrapolation happened.
	Truncated bool
}

// TaskObs is the observe-only wiring for one kernel task. It is outside
// the content key and the cached payload by design: telemetry can never
// change a result, and cached runs simply skip it.
type TaskObs struct {
	Sim          *obs.SimObs
	Audit        *obs.Audit
	AuditSubject string
	PKPMetrics   *obs.PKPMetrics

	// Distributed-tracing context: the trace this task belongs to, the
	// tracer to record spans (and merge worker spans) into, and the ID
	// generator for child span IDs. All optional and observe-only.
	Trace  obs.TraceContext
	Tracer *obs.Tracer
	IDs    *obs.IDGen

	// Provenance: when Flight is set, the ladder records one ProvEntry per
	// task under (Phase, Index) with the launch's Kernel name. QueuedAt
	// marks scheduler submission so queue wait can be attributed; RunKernels
	// fills it (and Kernel) when the caller leaves them zero.
	Flight   *FlightRecorder
	Phase    string
	Index    int
	Kernel   string
	QueuedAt time.Time
}

// taskSchema salts every content key with the outcome encoding and task
// semantics version; bump it (or artifact.Version) whenever either
// changes meaning.
const taskSchema = "pka-kernel-task-v1"

// TaskKey derives the content-addressed key of one kernel task: a SHA-256
// over the device configuration, the kernel's semantic feature vector, and
// the task spec. The kernel's launch index and name are deliberately
// excluded — two launches with identical features are the same work, which
// is exactly the redundancy the paper's methodology exploits.
func TaskKey(dev gpu.Device, k *trace.KernelDesc, t KernelTask) string {
	var buf [8]byte
	u := func(b *[]byte, v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		*b = append(*b, buf[:]...)
	}
	i := func(b *[]byte, v int) { u(b, uint64(int64(v))) }
	f := func(b *[]byte, v float64) { u(b, math.Float64bits(v)) }

	devSec := deviceSection(dev)

	kSec := make([]byte, 0, 200)
	i(&kSec, k.Grid.X)
	i(&kSec, k.Grid.Y)
	i(&kSec, k.Grid.Z)
	i(&kSec, k.Block.X)
	i(&kSec, k.Block.Y)
	i(&kSec, k.Block.Z)
	i(&kSec, k.RegsPerThread)
	i(&kSec, k.SharedMemPerBlock)
	i(&kSec, k.Mix.GlobalLoads)
	i(&kSec, k.Mix.GlobalStores)
	i(&kSec, k.Mix.LocalLoads)
	i(&kSec, k.Mix.SharedLoads)
	i(&kSec, k.Mix.SharedStores)
	i(&kSec, k.Mix.GlobalAtomics)
	i(&kSec, k.Mix.Compute)
	i(&kSec, k.Mix.TensorOps)
	f(&kSec, k.CoalescingFactor)
	u(&kSec, uint64(k.WorkingSetBytes))
	f(&kSec, k.StridedFraction)
	f(&kSec, k.DivergenceEff)
	f(&kSec, k.BlockImbalance)
	u(&kSec, k.Seed)

	tSec := make([]byte, 0, 48)
	i(&tSec, int(t.Mode))
	u(&tSec, uint64(t.MaxCycles))
	if t.Mode == ModePKA {
		f(&tSec, t.PKP.Threshold)
		i(&tSec, t.PKP.Window)
		if t.PKP.DisableWaveConstraint {
			i(&tSec, 1)
		} else {
			i(&tSec, 0)
		}
	}

	return artifact.Key([]byte(taskSchema), devSec, kSec, tSec)
}

// deviceSection serializes every semantic device-configuration field — the
// device half of TaskKey's content key and of DeviceFingerprint.
func deviceSection(dev gpu.Device) []byte {
	var buf [8]byte
	u := func(b *[]byte, v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		*b = append(*b, buf[:]...)
	}
	i := func(b *[]byte, v int) { u(b, uint64(int64(v))) }
	f := func(b *[]byte, v float64) { u(b, math.Float64bits(v)) }

	devSec := []byte(dev.Name + "|" + dev.Generation.String())
	i(&devSec, dev.NumSMs)
	i(&devSec, dev.CoreClockMHz)
	i(&devSec, dev.WarpSize)
	i(&devSec, dev.MaxWarpsPerSM)
	i(&devSec, dev.MaxBlocksPerSM)
	i(&devSec, dev.MaxThreadsPerSM)
	i(&devSec, dev.RegistersPerSM)
	i(&devSec, dev.SharedMemPerSM)
	i(&devSec, dev.SchedulersPerSM)
	i(&devSec, dev.L1SizeBytes)
	i(&devSec, dev.L2SizeBytes)
	i(&devSec, dev.CacheLineBytes)
	f(&devSec, dev.DRAMBandwidthGBs)
	i(&devSec, dev.L1LatencyCycles)
	i(&devSec, dev.L2LatencyCycles)
	i(&devSec, dev.DRAMLatency)
	i(&devSec, dev.ALULatencyCycles)
	i(&devSec, dev.SMemLatency)
	if dev.HasTensorCores {
		i(&devSec, 1)
	} else {
		i(&devSec, 0)
	}
	f(&devSec, dev.ISAScale)
	return devSec
}

// deviceSchema versions DeviceFingerprint; bump it with deviceSection.
const deviceSchema = "pka-device-v1"

// DeviceFingerprint returns a stable content hash of the device
// configuration — the device half of every TaskKey. A model artifact
// trained against one device records this fingerprint so a predictor can
// refuse to score tasks for a differently-configured GPU.
func DeviceFingerprint(dev gpu.Device) string {
	return artifact.Key([]byte(deviceSchema), deviceSection(dev))
}

// outcomeSize is the fixed on-disk payload size of one KernelOutcome.
const outcomeSize = 8 + 8 + 8 + 8 + 1

// EncodeOutcome serializes an outcome exactly (floats as IEEE-754 bits).
// The encoding doubles as the disk-cache payload and the remote-worker
// wire format, so a worker's artifact store and the client's are
// interchangeable byte-for-byte.
func EncodeOutcome(oc KernelOutcome) []byte {
	b := make([]byte, outcomeSize)
	binary.LittleEndian.PutUint64(b[0:], uint64(oc.ProjCycles))
	binary.LittleEndian.PutUint64(b[8:], uint64(oc.SimWarpInstrs))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(oc.ThreadInstrs))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(oc.DRAMUtil))
	var flags byte
	if oc.Capped {
		flags |= 1
	}
	if oc.Truncated {
		flags |= 2
	}
	b[32] = flags
	return b
}

// DecodeOutcome parses EncodeOutcome's layout, rejecting anything else.
func DecodeOutcome(b []byte) (KernelOutcome, error) {
	if len(b) != outcomeSize || b[32] > 3 {
		return KernelOutcome{}, fmt.Errorf("sampling: outcome payload malformed (%d bytes)", len(b))
	}
	return KernelOutcome{
		ProjCycles:    int64(binary.LittleEndian.Uint64(b[0:])),
		SimWarpInstrs: int64(binary.LittleEndian.Uint64(b[8:])),
		ThreadInstrs:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		DRAMUtil:      math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		Capped:        b[32]&1 != 0,
		Truncated:     b[32]&2 != 0,
	}, nil
}

// RemoteTier executes one kernel task on a remote worker pool. It sits
// between the disk artifact cache and the fresh-local-sim fallback in the
// Exec ladder. Implementations must be safe for concurrent use and must
// never surface transport or worker failures to the study: ok=false means
// "could not obtain the outcome remotely, run it locally", whatever the
// reason. cost is the kernel's dynamic warp-instruction count — the same
// estimate the scheduler prioritizes by — and seeds least-loaded placement.
// ro is the observe-only trace/provenance context (nil when nothing
// observes); implementations propagate ro.Trace to workers, merge shipped
// spans into ro.Tracer, and report the serving worker plus
// hedge/retry/breaker counts back into it.
type RemoteTier interface {
	ExecTask(key string, dev gpu.Device, k *trace.KernelDesc, task KernelTask, cost int64, ro *RemoteObs) (KernelOutcome, bool)
}

// ShardTier is the fleet's sharded outcome cache: a consistent-hash ring
// over the pkad workers where each content key has a small owner set
// holding its cached payload. It sits between the local disk cache and
// the remote worker tier in the Exec ladder — a peer GET is far cheaper
// than re-simulating, and cheaper than a worker dispatch too, because it
// never executes anything. Implementations must be safe for concurrent
// use and must never surface transport failures: ok=false means "no
// reachable owner holds the key", whatever the reason.
type ShardTier interface {
	// Lookup fetches the payload cached under key from the key's owner
	// shard, falling back through its replicas. peer names the shard that
	// served a hit (for provenance).
	Lookup(key string) (payload []byte, peer string, ok bool)
	// Store replicates payload to key's owner shards, best-effort. Purity
	// of outcomes makes replication idempotent: owners may be written the
	// same bytes by any number of processes in any order.
	Store(key string, payload []byte)
}

// Predictor is the opt-in tier 0 of the Exec ladder: a learned model that
// maps (device, kernel features, task spec) to a KernelOutcome without
// simulating anything. Predict must be a pure function of its inputs and
// the predictor's configuration — the same task must predict identically
// however many times and on whatever goroutine it is asked — because a
// served prediction bypasses every cache and duplicate launches re-predict
// independently. ok=false means "fall through to the real ladder" (low
// confidence, unknown device, or the tier disabled itself); verify=true
// asks the Exec to re-simulate this served prediction asynchronously down
// the real ladder and report the ground truth back through Verified, which
// must be safe for concurrent use.
//
// Implementations must never store predicted outcomes anywhere the real
// ladder reads (and Exec never does): predictions are approximations, and
// the mem/disk/shard caches hold exact simulation results only.
type Predictor interface {
	Predict(dev gpu.Device, k *trace.KernelDesc, task KernelTask, key string) (oc KernelOutcome, verify bool, ok bool)
	Verified(key string, predicted, actual KernelOutcome)
}

// verifyWorkers bounds concurrently running async verification
// re-simulations so a high -predict-verify-frac cannot starve the study's
// own tasks.
const verifyWorkers = 4

// Exec bundles the execution resources one study run shares across all of
// its kernel tasks: the global scheduler, the persistent artifact store,
// an in-memory singleflight outcome cache layered above it, optional
// sharded-fleet-cache and remote worker tiers between the disk cache and
// local simulation, and an optional learned-predictor tier above
// everything. A nil *Exec is valid and degrades every entry point to the
// serial, uncached behaviour — one fresh simulator per kernel on the
// calling goroutine.
type Exec struct {
	sched  *parallel.Scheduler
	store  *artifact.Store
	shard  ShardTier
	remote RemoteTier
	pred   Predictor
	mem    parallel.Cache[string, KernelOutcome]
	execM  *obs.ExecMetrics

	verifyWG  sync.WaitGroup
	verifySem chan struct{}
}

// NewExec builds an Exec. Either resource may be nil: a nil scheduler runs
// tasks inline on the caller, a nil store caches in memory only.
func NewExec(sched *parallel.Scheduler, store *artifact.Store) *Exec {
	return &Exec{sched: sched, store: store}
}

// SetRemote installs (or, with nil, removes) the remote worker tier.
// Because outcomes are pure functions of the content key and the fold is
// in launch order, adding or removing a remote tier can never change a
// study's results — only where the simulation cycles are spent.
func (e *Exec) SetRemote(r RemoteTier) {
	if e != nil {
		e.remote = r
	}
}

// SetShard installs (or, with nil, removes) the sharded fleet-cache tier.
// Like the remote tier, it can only move where bytes come from, never
// what they are: payloads are validated by DecodeOutcome and anything
// unexpected falls through the ladder as a miss.
func (e *Exec) SetShard(s ShardTier) {
	if e != nil {
		e.shard = s
	}
}

// SetPredictor installs (or, with nil, removes) the learned-predictor
// tier. Unlike every other tier, the predictor can change results: a
// served prediction is a model output, not a simulation. The contract
// that keeps studies reproducible is weaker but still firm — Predict is
// pure, so a study's output is byte-identical at any parallelism and any
// cache state for a fixed model and gate; it just isn't the simulated
// output unless the prediction was exact.
func (e *Exec) SetPredictor(p Predictor) {
	if e == nil {
		return
	}
	e.pred = p
	if p != nil && e.verifySem == nil {
		e.verifySem = make(chan struct{}, verifyWorkers)
	}
}

// DrainVerify blocks until every asynchronous prediction verification
// spawned so far has finished. Call it before reading the predictor's
// online error estimate at end of run; without a predictor it returns
// immediately.
func (e *Exec) DrainVerify() {
	if e != nil {
		e.verifyWG.Wait()
	}
}

// SetMetrics installs (or, with nil, removes) the per-tier metrics bundle.
// Observe-only: tier counters and latency histograms, never results.
func (e *Exec) SetMetrics(m *obs.ExecMetrics) {
	if e != nil {
		e.execM = m
	}
}

// Scheduler returns the exec's scheduler (nil for inline execution).
func (e *Exec) Scheduler() *parallel.Scheduler {
	if e == nil {
		return nil
	}
	return e.sched
}

// Store returns the exec's artifact store (nil when not persisting).
func (e *Exec) Store() *artifact.Store {
	if e == nil {
		return nil
	}
	return e.store
}

// MemStats reports the in-memory outcome cache's singleflight counters.
func (e *Exec) MemStats() (hits, misses uint64) {
	if e == nil {
		return 0, 0
	}
	return e.mem.Stats()
}

// RunKernels executes task once per kernel through the scheduler and the
// cache layers and returns the outcomes in input order, so folding them is
// bit-identical to the serial loop they replace. tobs supplies the
// observe-only wiring per kernel (nil for none). The scheduler prioritizes
// by each kernel's dynamic warp-instruction count, longest-first.
func (e *Exec) RunKernels(dev gpu.Device, task KernelTask, kernels []trace.KernelDesc, tobs func(i int) TaskObs) ([]KernelOutcome, error) {
	noObs := func(int) TaskObs { return TaskObs{} }
	if tobs == nil {
		tobs = noObs
	}
	// All kernels are submitted to the scheduler here; queue wait is
	// measured from this point to each task's execution start.
	submitted := time.Now()
	cost := func(k trace.KernelDesc) int64 { return k.TotalWarpInstructions(dev) }
	return parallel.SchedMap(e.Scheduler(), kernels, cost, func(i int, k trace.KernelDesc) (KernelOutcome, error) {
		to := tobs(i)
		if to.Flight != nil {
			if to.QueuedAt.IsZero() {
				to.QueuedAt = submitted
			}
			if to.Kernel == "" {
				to.Kernel = k.Name
			}
		}
		return e.runKernel(dev, k, task, to)
	})
}

// runKernel computes one outcome through the cache layers: in-memory
// singleflight → artifact store → owner-shard peer → remote workers →
// fresh simulator.
func (e *Exec) runKernel(dev gpu.Device, k trace.KernelDesc, task KernelTask, to TaskObs) (KernelOutcome, error) {
	if e == nil {
		return simulateKernel(dev, k, task, to)
	}
	return e.run(dev, k, task, to, true)
}

// RunKernelTask executes one kernel task through the mem-singleflight and
// disk tiers but never the remote tier — it is the worker-side entry
// point, and skipping the remote hop is what keeps a misconfigured fleet
// (workers pointed at each other) from looping requests forever.
func (e *Exec) RunKernelTask(dev gpu.Device, k *trace.KernelDesc, task KernelTask) (KernelOutcome, error) {
	return e.RunKernelTaskObs(dev, k, task, TaskObs{})
}

// RunKernelTaskObs is RunKernelTask with observe-only wiring — the worker
// daemon passes a flight recorder so its response can say which tier
// (disk, shard peer, or sim, on the worker) actually produced the outcome.
func (e *Exec) RunKernelTaskObs(dev gpu.Device, k *trace.KernelDesc, task KernelTask, to TaskObs) (KernelOutcome, error) {
	if e == nil {
		return simulateKernel(dev, *k, task, to)
	}
	return e.run(dev, *k, task, to, false)
}

func (e *Exec) run(dev gpu.Device, k trace.KernelDesc, task KernelTask, to TaskObs, allowRemote bool) (KernelOutcome, error) {
	key := TaskKey(dev, &k, task)
	// observed gates all timing: with no flight recorder and no metrics
	// bundle the ladder takes no clock readings at all.
	observed := to.Flight != nil || e.execM != nil
	var start time.Time
	if observed {
		start = time.Now()
	}
	// Tier 0: the learned predictor, consulted before any cache. A served
	// prediction bypasses the singleflight entirely — Predict is pure, so
	// duplicate launches re-predict identically without coordination — and
	// is never written to any cache, which is what keeps the mem/disk/shard
	// tiers holding exact simulation results only.
	if p := e.pred; p != nil {
		if oc, verify, ok := p.Predict(dev, &k, task, key); ok {
			if verify {
				e.spawnVerify(dev, k, task, key, oc, p)
			}
			if observed {
				end := time.Now()
				e.execM.Observe(int(TierPredict), end.Sub(start).Seconds())
				e.record(to, key, TierPredict, start, end, nil, "")
			}
			return oc, nil
		}
	}
	oc, tier, ro, shardPeer, err := e.runLadder(dev, k, task, to, allowRemote)
	if err != nil {
		return oc, err
	}
	if observed {
		end := time.Now()
		e.execM.Observe(int(tier), end.Sub(start).Seconds())
		e.record(to, key, tier, start, end, ro, shardPeer)
	}
	return oc, nil
}

// record appends one provenance entry for a task served at tier. No-op
// without a flight recorder.
func (e *Exec) record(to TaskObs, key string, tier Tier, start, end time.Time, ro *RemoteObs, shardPeer string) {
	if to.Flight == nil {
		return
	}
	entry := ProvEntry{
		Phase:     to.Phase,
		Index:     to.Index,
		Kernel:    to.Kernel,
		Key:       key,
		Tier:      tier,
		ServiceNs: end.Sub(start).Nanoseconds(),
	}
	if !to.QueuedAt.IsZero() {
		if wait := start.Sub(to.QueuedAt); wait > 0 {
			entry.WaitNs = wait.Nanoseconds()
		}
	}
	if ro != nil {
		entry.Worker = ro.Worker
		entry.Hedges = ro.Hedges
		entry.Retries = ro.Retries
		entry.BreakerSkips = ro.BreakerSkips
	}
	if tier == TierShard {
		entry.Worker = shardPeer
	}
	to.Flight.Record(entry)
}

// spawnVerify re-simulates a served prediction down the real ladder on a
// bounded background worker and reports the exact outcome back to the
// predictor. Verification runs are deliberately unobserved — no exec-tier
// metrics, no provenance — so per-tier counts keep summing exactly to the
// launch count; they do warm the mem and disk caches with the exact
// outcome, which is pure gain. Failures are dropped: verification is an
// accuracy estimate, never a correctness dependency.
func (e *Exec) spawnVerify(dev gpu.Device, k trace.KernelDesc, task KernelTask, key string, predicted KernelOutcome, p Predictor) {
	e.verifyWG.Add(1)
	go func() {
		defer e.verifyWG.Done()
		e.verifySem <- struct{}{}
		defer func() { <-e.verifySem }()
		actual, _, _, _, err := e.runLadder(dev, k, task, TaskObs{}, true)
		if err != nil {
			return
		}
		p.Verified(key, predicted, actual)
	}()
}

// runLadder resolves one task through the real serving ladder (everything
// below the predictor): mem singleflight → disk → owner shard → remote
// workers → fresh sim. It takes no clock readings and records nothing —
// observation is the caller's business — so the verifier can reuse it
// without perturbing tier accounting.
func (e *Exec) runLadder(dev gpu.Device, k trace.KernelDesc, task KernelTask, to TaskObs, allowRemote bool) (KernelOutcome, Tier, *RemoteObs, string, error) {
	key := TaskKey(dev, &k, task)
	// tier and ro are closure-local per caller: the singleflight runs only
	// the winning caller's closure (on its own goroutine), so waiters keep
	// the TierMem default — they were indeed served from memory, even
	// though the tier split for duplicate keys depends on scheduling. The
	// per-tier counts always sum to the launch count either way.
	tier := TierMem
	var ro *RemoteObs
	var shardPeer string
	observed := to.Flight != nil || e.execM != nil
	oc, err := e.mem.Do(key, func() (KernelOutcome, error) {
		if raw, ok := e.store.Get(key); ok {
			if oc, err := DecodeOutcome(raw); err == nil {
				tier = TierDisk
				return oc, nil
			}
			// Undecodable payload under a valid checksum means schema
			// drift without a version bump; recompute and overwrite.
		}
		if e.shard != nil {
			// Owner-shard peer lookup: pure cache reads, so workers use it
			// too (a peer GET can never trigger further dispatch, unlike
			// the remote tier below).
			if raw, peer, ok := e.shard.Lookup(key); ok {
				if oc, err := DecodeOutcome(raw); err == nil {
					tier = TierShard
					shardPeer = peer
					_ = e.store.Put(key, raw) // warm the local disk tier too
					return oc, nil
				}
				// A peer served bytes the current schema can't decode:
				// treat as a miss and recompute.
			}
		}
		if allowRemote && e.remote != nil {
			if to.Tracer != nil || observed {
				ro = &RemoteObs{Trace: to.Trace, Tracer: to.Tracer, IDs: to.IDs}
			}
			if oc, ok := e.remote.ExecTask(key, dev, &k, task, k.TotalWarpInstructions(dev), ro); ok {
				tier = TierWorker
				raw := EncodeOutcome(oc)
				_ = e.store.Put(key, raw) // warm the local disk tier too
				if e.shard != nil {
					e.shard.Store(key, raw) // land the outcome on its owner shards
				}
				return oc, nil
			}
			// Pool empty, degraded, or the task failed everywhere it was
			// tried: fall through to the local simulator. Never an error.
		}
		tier = TierSim
		oc, err := simulateKernel(dev, k, task, to)
		if err != nil {
			return KernelOutcome{}, err
		}
		raw := EncodeOutcome(oc)
		_ = e.store.Put(key, raw) // best-effort persistence
		if e.shard != nil {
			e.shard.Store(key, raw)
		}
		return oc, nil
	})
	return oc, tier, ro, shardPeer, err
}

// simPool recycles simulators across kernel tasks. A cold-start simulator
// allocates every SM's warp/block/ready arrays plus all L1s and the L2 —
// ~730 allocations — and the study layer churns through one per task.
// Entries are stored flushed (cold caches), so acquireSim only has to
// verify the device matches before reuse.
var simPool sync.Pool

// acquireSim returns a cold simulator for dev: a flushed pooled one when
// the device matches, a fresh one otherwise.
func acquireSim(dev gpu.Device) *sim.Simulator {
	if s, ok := simPool.Get().(*sim.Simulator); ok && s.Device() == dev {
		return s
	}
	// Pool miss, or a simulator for a different device (multi-device
	// studies); the mismatched one is dropped and rebuilt on demand.
	return sim.New(dev)
}

// releaseSim flushes s back to the cold state and pools it.
func releaseSim(s *sim.Simulator) {
	s.Flush()
	simPool.Put(s)
}

// simulateKernel runs one kernel task on a cold simulator. Cold matters:
// starting every kernel from cold caches is what makes the outcome a pure
// function of the inputs in the key. Simulators are pooled and flushed
// between tasks, which is observationally identical to sim.New per task
// (see Simulator.Flush) without re-paying the construction allocations.
func simulateKernel(dev gpu.Device, k trace.KernelDesc, task KernelTask, to TaskObs) (KernelOutcome, error) {
	s := acquireSim(dev)
	defer releaseSim(s)
	switch task.Mode {
	case ModeFull:
		res, err := s.RunKernel(&k, sim.Options{Obs: to.Sim})
		if err != nil {
			return KernelOutcome{}, err
		}
		return KernelOutcome{
			ProjCycles:    res.Cycles,
			SimWarpInstrs: res.WarpInstrs,
			ThreadInstrs:  res.ThreadInstrs,
			DRAMUtil:      res.DRAMUtil,
		}, nil
	case ModePKS:
		res, err := s.RunKernel(&k, sim.Options{MaxCycles: task.MaxCycles, Obs: to.Sim})
		if err != nil {
			return KernelOutcome{}, err
		}
		return outcomeFromProjection(pkp.Project(res), res, task), nil
	case ModePKA:
		p := pkp.New(pkp.Options{
			Threshold:             task.PKP.Threshold,
			Window:                task.PKP.Window,
			DisableWaveConstraint: task.PKP.DisableWaveConstraint,
			Audit:                 to.Audit,
			AuditSubject:          to.AuditSubject,
			Metrics:               to.PKPMetrics,
		})
		res, err := s.RunKernel(&k, sim.Options{Controller: p, MaxCycles: task.MaxCycles, Obs: to.Sim})
		if err != nil {
			return KernelOutcome{}, err
		}
		return outcomeFromProjection(p.Projection(res), res, task), nil
	default:
		return KernelOutcome{}, fmt.Errorf("sampling: unknown task mode %d", task.Mode)
	}
}

// outcomeFromProjection folds a PKP projection into the cacheable outcome.
func outcomeFromProjection(pr pkp.Projection, res *sim.KernelResult, task KernelTask) KernelOutcome {
	return KernelOutcome{
		ProjCycles:    pr.Cycles,
		SimWarpInstrs: pr.SimulatedWarpInstrs,
		ThreadInstrs:  pr.ThreadInstrs,
		DRAMUtil:      pr.DRAMUtil,
		Capped:        task.MaxCycles > 0 && res.Cycles >= task.MaxCycles,
		Truncated:     pr.Truncated,
	}
}
