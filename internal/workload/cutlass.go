package workload

import (
	"fmt"

	"pka/internal/trace"
)

// cutlassShapes are the ten GEMM problem sizes used for both the SGEMM
// (CUDA-core) and WGEMM (tensor-core) CUTLASS perf workloads.
var cutlassShapes = [10][3]int{
	// The CUTLASS perf shapes, scaled 1/4 per dimension so single-kernel
	// simulations stay within this harness's compute budget (the shape
	// labels keep the original problem names).
	{640, 32, 640},
	{640, 128, 640},
	{640, 256, 640},
	{1024, 32, 1024},
	{1024, 256, 1024},
	{1024, 1024, 1024},
	{256, 256, 256},
	{2048, 32, 2048},
	{128, 128, 512},
	{1536, 256, 512},
}

// Cutlass returns the 20 CUTLASS perf workloads: 10 SGEMM inputs and 10
// tensor-core WGEMM inputs. Each launches the same GEMM seven times
// (warmup + timed repetitions), matching Table 3's "kernel 0, count 7".
func Cutlass() []*Workload {
	const suite = "Cutlass"
	var out []*Workload
	for _, tensor := range []bool{false, true} {
		variant := "sgemm"
		kname := "cutlass_sgemm_nn"
		if tensor {
			variant = "wgemm"
			kname = "cutlass_wmma_gemm_nn"
		}
		for _, shape := range cutlassShapes {
			m, n, kk := shape[0], shape[1], shape[2]
			name := fmt.Sprintf("%dx%dx%d_%s", m, n, kk, variant)
			useTensor := tensor
			out = append(out, &Workload{
				Suite: suite,
				Name:  name,
				N:     7,
				Gen: func(i int) trace.KernelDesc {
					k := gemmKernel(kname, m, n, kk, useTensor)
					k.Seed = seedOf(name, uint64(i))
					return k
				},
			})
		}
	}
	return out
}
