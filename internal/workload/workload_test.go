package workload

import (
	"testing"

	"pka/internal/gpu"
)

func TestStudyHas147Workloads(t *testing.T) {
	all := All()
	if len(all) != 147 {
		t.Fatalf("study has %d workloads, want 147", len(all))
	}
	counts := map[string]int{}
	for _, w := range all {
		counts[w.Suite]++
	}
	want := map[string]int{
		"Rodinia": 28, "Parboil": 8, "Polybench": 15,
		"Cutlass": 20, "DeepBench": 69, "MLPerf": 7,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("%s has %d workloads, want %d", suite, counts[suite], n)
		}
	}
}

func TestUniqueFullNames(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		fn := w.FullName()
		if seen[fn] {
			t.Errorf("duplicate workload name %q", fn)
		}
		seen[fn] = true
	}
}

func TestEveryWorkloadValidates(t *testing.T) {
	dev := gpu.VoltaV100()
	for _, w := range All() {
		if err := w.Validate(500); err != nil {
			t.Errorf("%s: %v", w.FullName(), err)
			continue
		}
		// Every sampled kernel must also be schedulable on the V100.
		n := w.N
		if n > 200 {
			n = 200
		}
		for i := 0; i < n; i++ {
			k := w.Kernel(i)
			if dev.ComputeOccupancy(k.Resources()).BlocksPerSM == 0 {
				t.Errorf("%s kernel %d (%s) cannot be scheduled", w.FullName(), i, k.Name)
				break
			}
		}
	}
}

func TestKernelIDsAreChronological(t *testing.T) {
	w := Find("Polybench/fdtd2d")
	if w == nil {
		t.Fatal("fdtd2d missing")
	}
	next := w.Iterator()
	for i := 0; i < 10; i++ {
		k := next()
		if k == nil {
			t.Fatal("stream ended early")
		}
		if k.ID != i {
			t.Fatalf("kernel %d has ID %d", i, k.ID)
		}
	}
}

func TestIteratorRestartsAndEnds(t *testing.T) {
	w := Find("Rodinia/gauss_mat4")
	if w == nil {
		t.Fatal("gauss_mat4 missing")
	}
	count := 0
	for next := w.Iterator(); next() != nil; {
		count++
	}
	if count != w.N {
		t.Errorf("iterator yielded %d kernels, want %d", count, w.N)
	}
	// A fresh iterator restarts from zero.
	if k := w.Iterator()(); k == nil || k.ID != 0 {
		t.Error("fresh iterator did not restart")
	}
}

func TestKernelDeterminism(t *testing.T) {
	w := Find("MLPerf/ssd_training")
	if w == nil {
		t.Fatal("ssd_training missing")
	}
	a := w.Kernel(12345)
	b := w.Kernel(12345)
	if a.Seed != b.Seed || a.Name != b.Name || a.Grid != b.Grid {
		t.Error("Kernel(i) is not deterministic")
	}
	c := w.Kernel(12346)
	if a.Seed == c.Seed {
		t.Error("adjacent kernels share a seed")
	}
}

func TestKernelPanicsOutOfRange(t *testing.T) {
	w := Find("Rodinia/nn")
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Kernel did not panic")
		}
	}()
	w.Kernel(w.N)
}

func TestPaperStructuralLandmarks(t *testing.T) {
	// gauss_208 launches 414 kernels (Table 3).
	if w := Find("Rodinia/gauss_208"); w == nil || w.N != 414 {
		t.Errorf("gauss_208 N = %v, want 414", w)
	}
	// bfs65536 launches 20 (Table 3).
	if w := Find("Rodinia/bfs65536"); w == nil || w.N != 20 {
		t.Errorf("bfs65536 N wrong: %+v", w)
	}
	// histo: 80 kernels in 4 repeating shapes (Table 3: 4 groups of 20).
	if w := Find("Parboil/histo"); w == nil || w.N != 80 {
		t.Errorf("histo N wrong")
	}
	// fdtd2d: 1500 kernels (Table 3: groups of 1000 + 500).
	if w := Find("Polybench/fdtd2d"); w == nil || w.N != 1500 {
		t.Errorf("fdtd2d N wrong")
	}
	// gramschmidt: 6144 launches across shrinking grids.
	if w := Find("Polybench/gramschmidt"); w == nil || w.N != 6144 {
		t.Errorf("gramschmidt N wrong")
	}
	// Cutlass workloads each launch the same kernel 7 times (Table 3).
	for _, w := range BySuite("Cutlass") {
		if w.N != 7 {
			t.Errorf("%s N = %d, want 7", w.FullName(), w.N)
		}
		k0, k6 := w.Kernel(0), w.Kernel(6)
		if k0.Name != k6.Name || k0.Grid != k6.Grid {
			t.Errorf("%s repetitions differ", w.FullName())
		}
	}
	// SSD training is the launch-count monster of the study.
	ssd := Find("MLPerf/ssd_training")
	if ssd == nil || ssd.N < 500_000 {
		t.Errorf("ssd_training should have >= 500k kernels at scale %d", MLPerfScale)
	}
	// MLPerf workloads dominate the launch-count distribution.
	for _, w := range BySuite("MLPerf") {
		if w.N < 2000 {
			t.Errorf("%s suspiciously small: %d kernels", w.FullName(), w.N)
		}
	}
}

func TestQuirksAssigned(t *testing.T) {
	if w := Find("Rodinia/myocyte"); w == nil || w.Quirk != "trace-mismatch" {
		t.Error("myocyte should carry the trace-mismatch quirk")
	}
	quirkCounts := map[string]int{}
	for _, w := range BySuite("DeepBench") {
		if w.Quirk != "" {
			quirkCounts[w.Quirk]++
		}
	}
	if quirkCounts["cudnn-autotune"] != 5 || quirkCounts["cudnn-autotune-tc"] != 5 {
		t.Errorf("conv training quirk counts = %v", quirkCounts)
	}
}

func TestBySuiteAndFind(t *testing.T) {
	if BySuite("NoSuchSuite") != nil {
		t.Error("unknown suite should return nil")
	}
	if Find("Rodinia/does-not-exist") != nil {
		t.Error("unknown workload should return nil")
	}
	if w := Find("Parboil/sgemm"); w == nil || w.Suite != "Parboil" {
		t.Error("Find failed for Parboil/sgemm")
	}
}

func TestApproxWarpInstructions(t *testing.T) {
	w := Find("Rodinia/nn")
	got := w.ApproxWarpInstructions(1 << 60)
	k := w.Kernel(0)
	want := int64(k.Grid.Count()) * int64(k.WarpsPerBlock()) * int64(k.Mix.Total())
	if got != want {
		t.Errorf("ApproxWarpInstructions = %d, want %d", got, want)
	}
	// The cap short-circuits on huge streams.
	ssd := Find("MLPerf/ssd_training")
	if v := ssd.ApproxWarpInstructions(1000); v <= 1000 {
		t.Errorf("capped walk returned %d, want > cap", v)
	}
}

func TestSuitesDifferInLaunchCounts(t *testing.T) {
	// The study's core premise: classic suites launch few kernels,
	// MLPerf launches orders of magnitude more.
	var classicMax, mlperfMin int
	mlperfMin = 1 << 30
	for _, w := range All() {
		switch w.Suite {
		case "MLPerf":
			if w.N < mlperfMin {
				mlperfMin = w.N
			}
		default:
			if w.N > classicMax {
				classicMax = w.N
			}
		}
	}
	if mlperfMin <= classicMax/3 {
		t.Errorf("MLPerf min %d should dwarf classic max %d", mlperfMin, classicMax)
	}
}

func TestKernelsMaterialization(t *testing.T) {
	w := Find("Parboil/mri")
	ks := w.Kernels()
	if len(ks) != w.N {
		t.Fatalf("Kernels len = %d", len(ks))
	}
	for i, k := range ks {
		if k.ID != i {
			t.Errorf("kernel %d has ID %d", i, k.ID)
		}
		if err := k.Validate(); err != nil {
			t.Error(err)
		}
	}
}
