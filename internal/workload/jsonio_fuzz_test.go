package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzz seed corpus: one valid document and the malformed shapes the loader
// must reject with an error — never a panic and never an unbounded
// allocation.
var jsonSeeds = []string{
	// Valid two-kernel pipeline.
	`{"suite":"mine","name":"pipeline","kernels":[
		{"name":"map","grid":[640,1,1],"block":[256,1,1],
		 "mix":{"compute":150,"global_loads":4},"coalescing_factor":4,
		 "working_set_bytes":8388608,"strided_fraction":0.95,"divergence_eff":1.0,"repeat":40},
		{"name":"reduce","grid":[512,1,1],"block":[256,1,1],
		 "mix":{"compute":12,"global_loads":24},"coalescing_factor":4,
		 "working_set_bytes":536870912,"strided_fraction":0.4,"divergence_eff":1.0,"repeat":20}]}`,
	// Malformed dims.
	`{"name":"bad","kernels":[{"name":"k","grid":[-4,1,1],"block":[256,1,1],"mix":{"compute":10}}]}`,
	`{"name":"bad","kernels":[{"name":"k","grid":[1,1,1],"block":[2048,1,1],"mix":{"compute":10}}]}`,
	`{"name":"bad","kernels":[{"name":"k","grid":[0,0,0],"block":[0,0,0],"mix":{"compute":10}}]}`,
	// Negative repeats must error, not silently clamp.
	`{"name":"bad","kernels":[{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":10},"repeat":-3}]}`,
	// Huge counts must error before allocating.
	`{"name":"bad","kernels":[{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":10},"repeat":2000000000}]}`,
	`{"name":"bad","kernels":[{"name":"k","grid":[2000000000,60000,60000],"block":[64,1,1],"mix":{"compute":10}}]}`,
	// Negative instruction mix.
	`{"name":"bad","kernels":[{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":20,"global_loads":-5}}]}`,
	// Structural junk.
	``, `{`, `[]`, `{"name":"x"}`, `{"name":"x","kernels":[]}`,
	`{"name":"x","kernels":[{"grid":[1,1,1]}]}`,
	`{"name":"x","unknown_field":1,"kernels":[{"name":"k","grid":[1,1,1],"block":[32,1,1],"mix":{"compute":1}}]}`,
}

// FuzzLoadWorkloadJSON fuzzes the user-workload JSON loader: any byte
// input must either parse into a bounded, fully-validated workload or
// return an error — panics and huge allocations are bugs.
func FuzzLoadWorkloadJSON(f *testing.F) {
	for _, s := range jsonSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := FromJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if w == nil {
			t.Fatal("nil workload with nil error")
		}
		if w.N < 1 || w.N > MaxJSONKernels {
			t.Fatalf("accepted workload with out-of-bounds kernel count %d", w.N)
		}
		// Every accepted kernel must satisfy the trace validator.
		if err := w.Validate(0); err != nil {
			t.Fatalf("accepted workload fails validation: %v", err)
		}
	})
}

// TestLoadJSONSeedCorpus runs the same corpus through the on-disk loader,
// pinning which seeds must load and which must error.
func TestLoadJSONSeedCorpus(t *testing.T) {
	dir := t.TempDir()
	for i, s := range jsonSeeds {
		path := filepath.Join(dir, "doc.json")
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := LoadJSON(path)
		if i == 0 {
			if err != nil {
				t.Fatalf("valid seed rejected: %v", err)
			}
			if w.N != 60 {
				t.Errorf("valid seed expanded to %d kernels, want 60 (40+20 repeats)", w.N)
			}
			if w.Suite != "mine" || w.Name != "pipeline" {
				t.Errorf("identity lost: %s/%s", w.Suite, w.Name)
			}
			continue
		}
		if err == nil {
			t.Errorf("malformed seed %d accepted:\n%s", i, s)
		}
	}
	if _, err := LoadJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
}

// TestLoadJSONRepeatBounds pins the exact boundary behavior of the repeat
// and total-kernel caps.
func TestLoadJSONRepeatBounds(t *testing.T) {
	doc := func(repeat int) string {
		return `{"name":"x","kernels":[{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":10},"repeat":` +
			strconv.Itoa(repeat) + `}]}`
	}
	if _, err := FromJSON(strings.NewReader(doc(MaxJSONRepeat + 1))); err == nil {
		t.Error("repeat above MaxJSONRepeat accepted")
	}
	w, err := FromJSON(strings.NewReader(doc(1000)))
	if err != nil || w.N != 1000 {
		t.Errorf("repeat=1000: N=%v err=%v", w, err)
	}
}
