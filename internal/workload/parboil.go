package workload

import "pka/internal/trace"

// Parboil returns the Parboil suite: scientific/throughput kernels with a
// mix of single-launch and heavily iterated applications.
func Parboil() []*Workload {
	const suite = "Parboil"
	var out []*Workload

	// bfs: one dominant expansion launch plus small frontier launches.
	out = append(out, bfsWorkload(suite, "bfs", 1_000_000, 12))

	// cutcp: cutoff Coulomb potential — three kernel shapes with counts
	// 2/3/6 (paper Table 3).
	var cutcp []trace.KernelDesc
	for i := 0; i < 2; i++ {
		cutcp = append(cutcp, stencilKernel("cuda_cutoff_potential_lattice", 528, 528, 8))
	}
	for i := 0; i < 3; i++ {
		cutcp = append(cutcp, elementwiseKernel("reset_atoms", 100000, 4))
	}
	for i := 0; i < 6; i++ {
		k := nbodyKernel("cutoff_lattice_block", 1200)
		k.Seed = seedOf("cutcp6", uint64(i))
		cutcp = append(cutcp, k)
	}
	out = append(out, fixedSeq(suite, "cutcp", cutcp))

	// histo: four distinct phases iterated 20 times (Table 3: groups of
	// 20/20/20/20 with kernels 0..3 selected). The phases differ in
	// atomic density and working set, which is what keeps them in
	// separate clusters.
	prescan := histogramKernel("histo_prescan_kernel", 996*1040, 256)
	prescan.Mix.GlobalAtomics = 0
	prescan.Mix.Compute = 24
	main := histogramKernel("histo_main_kernel", 996*1040, 4096)
	main.Mix.GlobalAtomics = 5
	main.Mix.SharedLoads = 8
	main.DivergenceEff = 0.6
	final := elementwiseKernel("histo_final_kernel", 4096*256, 3)
	final.Mix.GlobalStores = 3
	final.StridedFraction = 0.99
	var histo []trace.KernelDesc
	for iter := 0; iter < 20; iter++ {
		histo = append(histo,
			prescan,
			elementwiseKernel("histo_intermediates_kernel", 996*1040, 6),
			main,
			final,
		)
	}
	out = append(out, fixedSeq(suite, "histo", histo))

	// mri-q: three phases, FFT-like plus point-wise.
	out = append(out, fixedSeq(suite, "mri", []trace.KernelDesc{
		elementwiseKernel("ComputePhiMag_GPU", 3072, 6),
		matvecKernel("ComputeQ_GPU_1", 2048),
		matvecKernel("ComputeQ_GPU_2", 2048),
	}))

	// sad: three distinct single launches (no reduction possible).
	out = append(out, fixedSeq(suite, "sad", []trace.KernelDesc{
		stencilKernel("mb_sad_calc", 704, 528, 16),
		reductionKernel("larger_sad_calc_8", 704*528),
		reductionKernel("larger_sad_calc_16", 704*528/4),
	}))

	// sgemm: one large matrix multiply.
	out = append(out, fixedSeq(suite, "sgemm", []trace.KernelDesc{
		gemmKernel("mysgemmNT", 1024, 1040, 1024, false),
	}))

	// spmv: the same jds_kernel launched 50 times.
	out = append(out, &Workload{
		Suite: suite, Name: "spmv", N: 50,
		Gen: func(i int) trace.KernelDesc {
			k := spmvKernel("spmv_jds", 146689, 3977139)
			k.Seed = seedOf("parboil-spmv", uint64(i))
			return k
		},
	})

	// stencil: 7-point 3D Jacobi iterated 100 times.
	out = append(out, &Workload{
		Suite: suite, Name: "stencil", N: 100,
		Gen: func(i int) trace.KernelDesc {
			k := stencilKernel("block2D_hybrid_coarsen_x", 512, 512, 7)
			k.WorkingSetBytes = 512 * 512 * 64 * 4
			k.Seed = seedOf("parboil-stencil", uint64(i))
			return k
		},
	})

	return out
}
