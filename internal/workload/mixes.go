package workload

import "pka/internal/trace"

// Kernel archetype constructors. Each returns a KernelDesc whose mix,
// coalescing, divergence, and locality match a family of real GPU kernels;
// the suite files compose them into launch sequences. Seeds are derived
// from the name and launch parameters so every kernel's synthetic address
// stream is unique but reproducible.

func seedOf(name string, salt uint64) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h ^ (salt+1)*0x9E3779B97F4A7C15
}

// gemmKernel models a tiled dense matrix multiply C = A×B with shared-
// memory staging. Compute bound, perfectly coalesced, moderate footprint.
func gemmKernel(name string, m, n, k int, tensor bool) trace.KernelDesc {
	const tile = 32
	gridX := (n + tile - 1) / tile
	gridY := (m + tile - 1) / tile
	iters := (k + tile - 1) / tile
	mix := trace.InstrMix{
		GlobalLoads:  2 * iters,
		GlobalStores: 1,
		SharedLoads:  2 * tile * iters / 8,
		SharedStores: 2 * iters,
		Compute:      2 * tile * iters / 2,
	}
	if tensor {
		// Tensor-core path: MMA ops replace most scalar FMAs.
		mix.Compute = tile * iters / 4
		mix.TensorOps = iters
	}
	return trace.KernelDesc{
		Name:              name,
		Grid:              trace.D2(gridX, gridY),
		Block:             trace.D1(256),
		RegsPerThread:     96,
		SharedMemPerBlock: 2 * tile * tile * 4 * 2,
		Mix:               mix,
		CoalescingFactor:  4,
		WorkingSetBytes:   int64(m*k+k*n+m*n) * 4,
		StridedFraction:   0.95,
		DivergenceEff:     1.0,
		Seed:              seedOf(name, uint64(m*31+n*7+k)),
	}
}

// elementwiseKernel models a streaming map over n elements (axpy, relu,
// batch-norm apply, tensor add): bandwidth bound and perfectly regular.
func elementwiseKernel(name string, n int, opsPerElem int) trace.KernelDesc {
	blocks := (n + 255) / 256
	if blocks < 1 {
		blocks = 1
	}
	return trace.KernelDesc{
		Name:             name,
		Grid:             trace.D1(blocks),
		Block:            trace.D1(256),
		RegsPerThread:    24,
		Mix:              trace.InstrMix{GlobalLoads: 2, GlobalStores: 1, Compute: opsPerElem},
		CoalescingFactor: 4,
		WorkingSetBytes:  int64(n) * 12,
		StridedFraction:  1.0,
		DivergenceEff:    1.0,
		Seed:             seedOf(name, uint64(n)),
	}
}

// stencilKernel models a 2D/3D structured-grid sweep (hotspot, srad, fdtd):
// neighbour loads with high spatial locality, moderate compute.
func stencilKernel(name string, nx, ny, points int) trace.KernelDesc {
	gridX := (nx + 15) / 16
	gridY := (ny + 15) / 16
	if gridX < 1 {
		gridX = 1
	}
	if gridY < 1 {
		gridY = 1
	}
	return trace.KernelDesc{
		Name:              name,
		Grid:              trace.D2(gridX, gridY),
		Block:             trace.D2(16, 16),
		RegsPerThread:     40,
		SharedMemPerBlock: 18 * 18 * 4,
		Mix: trace.InstrMix{
			GlobalLoads: points, GlobalStores: 1,
			SharedLoads: points, SharedStores: 1,
			Compute: 4 * points,
		},
		CoalescingFactor: 5,
		WorkingSetBytes:  int64(nx) * int64(ny) * 8,
		StridedFraction:  0.9,
		DivergenceEff:    0.97,
		Seed:             seedOf(name, uint64(nx*ny+points)),
	}
}

// graphKernel models one frontier expansion of an irregular graph
// traversal: scattered gathers, heavy divergence, per-block imbalance.
func graphKernel(name string, frontier, graphBytes int, imbalance float64) trace.KernelDesc {
	blocks := (frontier + 255) / 256
	if blocks < 1 {
		blocks = 1
	}
	return trace.KernelDesc{
		Name:          name,
		Grid:          trace.D1(blocks),
		Block:         trace.D1(256),
		RegsPerThread: 32,
		Mix: trace.InstrMix{
			GlobalLoads: 8, GlobalStores: 2, GlobalAtomics: 1,
			Compute: 12,
		},
		CoalescingFactor: 16,
		WorkingSetBytes:  int64(graphBytes),
		StridedFraction:  0.15,
		DivergenceEff:    0.45,
		BlockImbalance:   imbalance,
		Seed:             seedOf(name, uint64(frontier)),
	}
}

// reductionKernel models a tree reduction over n elements.
func reductionKernel(name string, n int) trace.KernelDesc {
	blocks := (n + 511) / 512
	if blocks < 1 {
		blocks = 1
	}
	return trace.KernelDesc{
		Name:              name,
		Grid:              trace.D1(blocks),
		Block:             trace.D1(512),
		RegsPerThread:     20,
		SharedMemPerBlock: 512 * 4,
		Mix: trace.InstrMix{
			GlobalLoads: 1, GlobalStores: 1,
			SharedLoads: 9, SharedStores: 9,
			Compute: 14,
		},
		CoalescingFactor: 4,
		WorkingSetBytes:  int64(n) * 4,
		StridedFraction:  1.0,
		DivergenceEff:    0.8,
		Seed:             seedOf(name, uint64(n)),
	}
}

// convKernel models an implicit-GEMM convolution layer over an
// N×C×H×W input with K output channels and r×r filters.
func convKernel(name string, batch, c, h, w, k, r int, tensor bool) trace.KernelDesc {
	outPixels := batch * h * w
	blocks := (outPixels*k + 4095) / 4096
	if blocks < 1 {
		blocks = 1
	}
	iters := c * r * r / 4
	if iters < 4 {
		iters = 4
	}
	mix := trace.InstrMix{
		GlobalLoads:  iters / 2,
		GlobalStores: 1,
		SharedLoads:  iters,
		SharedStores: iters / 4,
		Compute:      3 * iters,
	}
	if tensor {
		mix.Compute = iters / 2
		mix.TensorOps = iters / 4
		if mix.TensorOps < 1 {
			mix.TensorOps = 1
		}
	}
	return trace.KernelDesc{
		Name:              name,
		Grid:              trace.D1(blocks),
		Block:             trace.D1(256),
		RegsPerThread:     128,
		SharedMemPerBlock: 24 * 1024,
		Mix:               mix,
		CoalescingFactor:  4,
		WorkingSetBytes:   int64(batch*c*h*w+k*c*r*r+batch*k*h*w) * 4,
		StridedFraction:   0.92,
		DivergenceEff:     1.0,
		Seed:              seedOf(name, uint64(batch*c+h*w+k*r)),
	}
}

// spmvKernel models sparse matrix-vector multiply: scattered vector
// gathers with row-length imbalance.
func spmvKernel(name string, rows, nnz int) trace.KernelDesc {
	blocks := (rows + 127) / 128
	if blocks < 1 {
		blocks = 1
	}
	avgRow := nnz / rows
	if avgRow < 1 {
		avgRow = 1
	}
	return trace.KernelDesc{
		Name:          name,
		Grid:          trace.D1(blocks),
		Block:         trace.D1(128),
		RegsPerThread: 28,
		Mix: trace.InstrMix{
			GlobalLoads: 2*avgRow + 1, GlobalStores: 1,
			Compute: 2 * avgRow,
		},
		CoalescingFactor: 12,
		WorkingSetBytes:  int64(nnz)*8 + int64(rows)*4,
		StridedFraction:  0.35,
		DivergenceEff:    0.6,
		BlockImbalance:   0.8,
		Seed:             seedOf(name, uint64(nnz)),
	}
}

// matvecKernel models dense matrix-vector products (atax, bicg, mvt,
// gesummv): streaming row reads, bandwidth bound.
func matvecKernel(name string, n int) trace.KernelDesc {
	blocks := (n + 255) / 256
	if blocks < 1 {
		blocks = 1
	}
	loads := n / 64
	if loads < 4 {
		loads = 4
	}
	if loads > 400 {
		loads = 400
	}
	return trace.KernelDesc{
		Name:             name,
		Grid:             trace.D1(blocks),
		Block:            trace.D1(256),
		RegsPerThread:    32,
		Mix:              trace.InstrMix{GlobalLoads: loads, GlobalStores: 1, Compute: 2 * loads},
		CoalescingFactor: 4,
		WorkingSetBytes:  int64(n) * int64(n) * 4,
		StridedFraction:  0.98,
		DivergenceEff:    1.0,
		Seed:             seedOf(name, uint64(n)),
	}
}

// rnnCellKernel models one recurrent-cell step: a medium GEMM plus
// elementwise gate math, launched thousands of times across timesteps.
func rnnCellKernel(name string, hidden, batch int, tensor bool) trace.KernelDesc {
	k := gemmKernel(name, batch, hidden, hidden, tensor)
	k.Mix.Compute += 24 // gate activations
	k.Seed = seedOf(name, uint64(hidden*batch))
	return k
}

// histogramKernel models atomic-heavy binning.
func histogramKernel(name string, n, bins int) trace.KernelDesc {
	blocks := (n + 511) / 512
	if blocks < 1 {
		blocks = 1
	}
	return trace.KernelDesc{
		Name:              name,
		Grid:              trace.D1(blocks),
		Block:             trace.D1(512),
		RegsPerThread:     18,
		SharedMemPerBlock: bins * 4,
		Mix: trace.InstrMix{
			GlobalLoads: 2, GlobalAtomics: 2, SharedLoads: 2, SharedStores: 2,
			Compute: 8,
		},
		CoalescingFactor: 6,
		WorkingSetBytes:  int64(n)*4 + int64(bins)*4,
		StridedFraction:  0.7,
		DivergenceEff:    0.85,
		Seed:             seedOf(name, uint64(n+bins)),
	}
}
