package workload

import (
	"fmt"

	"pka/internal/trace"
)

// DeepBench returns Baidu DeepBench: isolated, hand-tuned deep-learning
// primitives — convolution, GEMM, and RNN benches — in inference and
// training flavours, with and without tensor cores. These launch few,
// targeted kernels, so PKS speedups are muted (1-7x) compared to the
// kernel-storm suites; their value in the study is exactly that contrast.
func DeepBench() []*Workload {
	const suite = "DeepBench"
	var out []*Workload

	convShapes := [5][6]int{
		// batch, C, H, W, K, r — DeepBench layer shapes scaled to this
		// harness's compute budget.
		{8, 32, 56, 56, 64, 3},
		{4, 64, 28, 28, 128, 3},
		{8, 128, 14, 14, 256, 3},
		{4, 256, 7, 7, 256, 3},
		{8, 3, 112, 112, 32, 7},
	}
	for _, tensor := range []bool{false, true} {
		for _, train := range []bool{false, true} {
			for idx, s := range convShapes {
				out = append(out, convBenchWorkload(suite, idx, s, train, tensor))
			}
		}
	}

	gemmShapes := [5][3]int{
		{1281, 175, 512},
		{35, 175, 512},
		{1281, 375, 512},
		{1920, 2, 640},
		{768, 375, 256},
	}
	for _, tensor := range []bool{false, true} {
		for _, train := range []bool{false, true} {
			for idx, s := range gemmShapes {
				out = append(out, gemmBenchWorkload(suite, idx, s, train, tensor))
			}
		}
	}

	// RNN benches: (hidden, batch, timesteps). Inference CUDA has 9
	// inputs, inference TensorCore has 10, training variants 5 each —
	// matching the per-row input counts in Table 4.
	rnnInf := [10][3]int{
		{880, 16, 25}, {1024, 32, 12}, {1280, 32, 25}, {512, 16, 12},
		{1408, 32, 12}, {1536, 16, 12}, {1792, 32, 25}, {256, 16, 25},
		{768, 8, 25}, {1024, 16, 50},
	}
	for i := 0; i < 9; i++ {
		out = append(out, rnnBenchWorkload(suite, i, rnnInf[i], false, false))
	}
	for i := 0; i < 10; i++ {
		out = append(out, rnnBenchWorkload(suite, i, rnnInf[i], false, true))
	}
	rnnTrain := [5][3]int{
		{880, 32, 25}, {1024, 64, 12}, {1280, 64, 25}, {512, 32, 12}, {1536, 32, 12},
	}
	for i := 0; i < 5; i++ {
		out = append(out, rnnBenchWorkload(suite, i, rnnTrain[i], true, false))
		out = append(out, rnnBenchWorkload(suite, i, rnnTrain[i], true, true))
	}

	return out
}

func variantTag(train, tensor bool) string {
	tag := "inf"
	if train {
		tag = "train"
	}
	if tensor {
		tag += "_tc"
	}
	return tag
}

func convBenchWorkload(suite string, idx int, s [6]int, train, tensor bool) *Workload {
	name := fmt.Sprintf("conv_%s_%d", variantTag(train, tensor), idx)
	batch, c, h, w, k, r := s[0], s[1], s[2], s[3], s[4], s[5]
	var seq []trace.KernelDesc
	reps := 5
	for rep := 0; rep < reps; rep++ {
		fw := convKernel("volta_scudnn_128x64", batch, c, h, w, k, r, tensor)
		fw.Seed = seedOf(name+"fw", uint64(rep))
		seq = append(seq, fw)
		if train {
			bd := convKernel("volta_scudnn_bwd_data", batch, k, h, w, c, r, tensor)
			bd.Seed = seedOf(name+"bd", uint64(rep))
			bf := convKernel("volta_scudnn_bwd_filter", batch, c, h, w, k, r, tensor)
			bf.Seed = seedOf(name+"bf", uint64(rep))
			seq = append(seq, bd, bf)
		}
	}
	seq = append(seq, elementwiseKernel("add_bias", batch*k*h*w, 2))
	wl := fixedSeq(suite, name, seq)
	// The cudnnFind autotuner picks different algorithms under the
	// profiler, so kernel sequences mismatch between runs (paper §5.2.2,
	// §5.2.3 and the artifact appendix): CUDA training loses its
	// simulation columns, TensorCore training its Turing/Ampere silicon
	// columns.
	if train && !tensor {
		wl.Quirk = "cudnn-autotune"
	}
	if train && tensor {
		wl.Quirk = "cudnn-autotune-tc"
	}
	return wl
}

func gemmBenchWorkload(suite string, idx int, s [3]int, train, tensor bool) *Workload {
	name := fmt.Sprintf("gemm_%s_%d", variantTag(train, tensor), idx)
	m, n, k := s[0], s[1], s[2]
	var seq []trace.KernelDesc
	reps := 4
	for rep := 0; rep < reps; rep++ {
		fw := gemmKernel("volta_sgemm_128x128", m, n, k, tensor)
		fw.Seed = seedOf(name+"fw", uint64(rep))
		seq = append(seq, fw)
		if train {
			bw := gemmKernel("volta_sgemm_128x128_tn", k, n, m, tensor)
			bw.Seed = seedOf(name+"bw", uint64(rep))
			seq = append(seq, bw)
		}
	}
	return fixedSeq(suite, name, seq)
}

func rnnBenchWorkload(suite string, idx int, s [3]int, train, tensor bool) *Workload {
	name := fmt.Sprintf("rnn_%s_%d", variantTag(train, tensor), idx)
	hidden, batch, steps := s[0], s[1], s[2]
	perStep := 2 // gate GEMM + pointwise
	n := steps * perStep
	if train {
		n *= 2 // forward + backward passes
	}
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     n,
		Gen: func(i int) trace.KernelDesc {
			step := i / perStep
			if i%perStep == 0 {
				k := rnnCellKernel("volta_sgemm_rnn_cell", hidden, batch, tensor)
				k.Seed = seedOf(name+"cell", uint64(step))
				return k
			}
			k := elementwiseKernel("pointwise_gates", hidden*batch*4, 12)
			k.Seed = seedOf(name+"gates", uint64(step))
			return k
		},
	}
}
