package workload

import "pka/internal/trace"

// fixedSeq builds a workload from a fully materialized kernel sequence.
func fixedSeq(suite, name string, seq []trace.KernelDesc) *Workload {
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     len(seq),
		Gen:   func(i int) trace.KernelDesc { return seq[i] },
	}
}

// Rodinia returns the Rodinia 3.1 suite: short-running kernels sized so
// that full simulation completes, plus the heavily multi-kernel apps
// (gaussian, nw, srad, streamcluster) that make Principal Kernel Selection
// shine at 100-700x.
func Rodinia() []*Workload {
	const suite = "Rodinia"
	var out []*Workload

	// b+tree: two query kernels over a pre-built tree.
	out = append(out, fixedSeq(suite, "b+tree", []trace.KernelDesc{
		treeSearch("findK", 10000),
		treeSearch("findRangeK", 10000),
	}))

	// backprop: one forward and one weight-adjust layer pass.
	out = append(out, fixedSeq(suite, "backprop", []trace.KernelDesc{
		layerForward("bpnn_layerforward", 65536),
		layerForward("bpnn_adjust_weights", 65536),
	}))

	// BFS at three graph scales. Frontier grows then collapses; per-launch
	// grids differ wildly, and the biggest launch dominates runtime.
	out = append(out, bfsWorkload(suite, "bfs1MW", 1_000_000, 14))
	out = append(out, bfsWorkload(suite, "bfs4096", 4096, 8))
	out = append(out, bfsWorkload(suite, "bfs65536", 65536, 10))

	// dwt2d: multi-level wavelet decomposition.
	out = append(out, dwtWorkload(suite, "dwt2d_192", 192, 1))
	out = append(out, dwtWorkload(suite, "dwt2d_rgb", 1024, 3))

	// gaussian elimination: 2 kernels (Fan1/Fan2) per column, columns-1
	// iterations; the poster child for kernel-count reduction.
	out = append(out, gaussianWorkload(suite, "gauss_208", 208))
	out = append(out, gaussianWorkload(suite, "gauss_mat4", 4))
	out = append(out, gaussianWorkload(suite, "gauss_s16", 16))
	out = append(out, gaussianWorkload(suite, "gauss_s64", 64))
	out = append(out, gaussianWorkload(suite, "gauss_s256", 256))

	// hotspot: a single fused temperature-propagation kernel.
	out = append(out, fixedSeq(suite, "hots_1024", []trace.KernelDesc{
		stencilKernel("calculate_temp", 1024, 1024, 5),
	}))
	out = append(out, fixedSeq(suite, "hots_512", []trace.KernelDesc{
		stencilKernel("calculate_temp", 512, 512, 5),
	}))

	// hybridsort: bucket split, histogram, then merge passes.
	out = append(out, hybridsortWorkload(suite, "hstort_500k", 500_000, 10))
	out = append(out, hybridsortWorkload(suite, "hstort_r", 4_000_000, 14))

	// kmeans: alternating assignment and centroid phases.
	out = append(out, kmeansWorkload(suite, "kmeans_28k", 28_000, 3))
	out = append(out, kmeansWorkload(suite, "kmeans_819k", 819_200, 4))
	out = append(out, kmeansWorkload(suite, "kmeans_oi", 494_020, 4))

	// lavaMD: one large n-body-style kernel.
	out = append(out, fixedSeq(suite, "lavaMD", []trace.KernelDesc{
		nbodyKernel("kernel_gpu_cuda", 6000),
	}))

	// lud: diagonal/perimeter/internal kernel triple per step with a
	// shrinking active matrix.
	out = append(out, ludWorkload(suite, "lud_i", 1024))
	out = append(out, ludWorkload(suite, "lud_256", 256))

	// myocyte: the tracing/profiling runs launch mismatched kernel counts
	// (paper Section 5.2.3); excluded from result columns.
	myo := fixedSeq(suite, "myocyte", []trace.KernelDesc{
		odeSolver("solver_2", 1)})
	myo.Quirk = "trace-mismatch"
	out = append(out, myo)

	// nn: single nearest-neighbor distance kernel.
	out = append(out, fixedSeq(suite, "nn", []trace.KernelDesc{
		elementwiseKernel("euclid", 42764, 12),
	}))

	// nw: needleman-wunsch anti-diagonal wavefront; grids grow to the
	// diagonal then shrink, two kernels alternating.
	out = append(out, nwWorkload(suite, "nw", 2048))

	// streamcluster: pgain evaluated hundreds of times on similar grids.
	out = append(out, scWorkload(suite, "scluster", 65536, 600))

	// srad_v1: two alternating diffusion kernels over 100 iterations.
	out = append(out, sradWorkload(suite, "srad_v1", 502, 458, 100))

	// particlefilter: per-frame likelihood/resample kernel quartet.
	out = append(out, pfilterWorkload(suite, "particlefilter", 10))

	return out
}

func treeSearch(name string, queries int) trace.KernelDesc {
	k := graphKernel(name, queries, 64<<20, 0.3)
	k.DivergenceEff = 0.7
	k.Mix.GlobalAtomics = 0
	k.Mix.GlobalLoads = 12
	return k
}

func layerForward(name string, units int) trace.KernelDesc {
	k := reductionKernel(name, units)
	k.Mix.Compute += 10
	return k
}

func bfsWorkload(suite, name string, nodes, depth int) *Workload {
	// Frontier profile: exponential growth to a peak at depth/2, then decay.
	frontiers := make([]int, 0, 2*depth)
	f := 64
	for d := 0; d < depth; d++ {
		if d < depth/2 {
			f *= 4
		} else {
			f /= 3
		}
		if f > nodes {
			f = nodes
		}
		if f < 32 {
			f = 32
		}
		frontiers = append(frontiers, f, f) // Kernel and Kernel2 per level
	}
	seq := make([]trace.KernelDesc, len(frontiers))
	for i, fr := range frontiers {
		kname := "Kernel"
		if i%2 == 1 {
			kname = "Kernel2"
		}
		seq[i] = graphKernel(kname, fr, nodes*24, 1.0)
		seq[i].Seed = seedOf(name+kname, uint64(i))
	}
	return fixedSeq(suite, name, seq)
}

func dwtWorkload(suite, name string, dim, channels int) *Workload {
	var seq []trace.KernelDesc
	for c := 0; c < channels; c++ {
		for d := dim; d >= 32; d /= 2 {
			seq = append(seq, stencilKernel("fdwt53Kernel", d, d, 9))
			seq = append(seq, elementwiseKernel("c_CopySrcToComponents", d*d, 4))
		}
	}
	return fixedSeq(suite, name, seq)
}

func gaussianWorkload(suite, name string, n int) *Workload {
	iters := n - 1
	if iters < 1 {
		iters = 1
	}
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     2 * iters,
		Gen: func(i int) trace.KernelDesc {
			if i%2 == 0 {
				k := elementwiseKernel("Fan1", n, 6)
				k.Seed = seedOf(name+"fan1", uint64(i))
				return k
			}
			k := stencilKernel("Fan2", n, n, 2)
			k.Seed = seedOf(name+"fan2", uint64(i))
			return k
		},
	}
}

func hybridsortWorkload(suite, name string, n, passes int) *Workload {
	var seq []trace.KernelDesc
	seq = append(seq, histogramKernel("histogram1024Kernel", n, 1024))
	seq = append(seq, elementwiseKernel("bucketprefixoffset", 1024*128, 6))
	seq = append(seq, histogramKernel("bucketsort", n, 1024))
	for p := 0; p < passes; p++ {
		seq = append(seq, mergeKernel("mergeSortPass", n/(1<<p)))
	}
	seq = append(seq, elementwiseKernel("mergepack", n, 3))
	return fixedSeq(suite, name, seq)
}

func mergeKernel(name string, n int) trace.KernelDesc {
	if n < 1024 {
		n = 1024
	}
	k := reductionKernel(name, n)
	k.DivergenceEff = 0.65
	k.StridedFraction = 0.6
	return k
}

func kmeansWorkload(suite, name string, points, iters int) *Workload {
	var seq []trace.KernelDesc
	seq = append(seq, elementwiseKernel("invert_mapping", points, 3))
	for i := 0; i < iters; i++ {
		assign := matvecKernel("kmeansPoint", 1400)
		assign.Grid = trace.D1((points + 255) / 256)
		assign.WorkingSetBytes = int64(points) * 34 * 4
		assign.Seed = seedOf(name+"assign", uint64(i))
		seq = append(seq, assign)
	}
	return fixedSeq(suite, name, seq)
}

func nbodyKernel(name string, boxes int) trace.KernelDesc {
	return trace.KernelDesc{
		Name:              name,
		Grid:              trace.D1(boxes),
		Block:             trace.D1(128),
		RegsPerThread:     64,
		SharedMemPerBlock: 12 * 1024,
		Mix: trace.InstrMix{
			GlobalLoads: 40, GlobalStores: 4,
			SharedLoads: 160, SharedStores: 8,
			Compute: 700,
		},
		CoalescingFactor: 4,
		WorkingSetBytes:  int64(boxes) * 128 * 16 * 4,
		StridedFraction:  0.85,
		DivergenceEff:    0.95,
		Seed:             seedOf(name, uint64(boxes)),
	}
}

func ludWorkload(suite, name string, n int) *Workload {
	const tile = 16
	steps := n / tile
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     3 * steps,
		Gen: func(i int) trace.KernelDesc {
			step := i / 3
			active := n - step*tile
			if active < tile {
				active = tile
			}
			switch i % 3 {
			case 0:
				k := reductionKernel("lud_diagonal", tile*tile)
				k.Grid = trace.D1(1)
				k.Seed = seedOf(name+"diag", uint64(step))
				return k
			case 1:
				k := stencilKernel("lud_perimeter", active, tile, 4)
				k.Seed = seedOf(name+"perim", uint64(step))
				return k
			default:
				k := gemmKernel("lud_internal", active, active, tile, false)
				k.Seed = seedOf(name+"internal", uint64(step))
				return k
			}
		},
	}
}

func odeSolver(name string, workloads int) trace.KernelDesc {
	k := elementwiseKernel(name, workloads*512, 400)
	k.DivergenceEff = 0.35
	k.BlockImbalance = 0.6
	return k
}

func nwWorkload(suite, name string, n int) *Workload {
	const tile = 16
	diags := n / tile
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     2 * diags,
		Gen: func(i int) trace.KernelDesc {
			d := i / 2
			width := d + 1
			if d >= diags/2 {
				width = diags - d
			}
			if width < 1 {
				width = 1
			}
			kname := "needle_cuda_shared_1"
			if i%2 == 1 {
				kname = "needle_cuda_shared_2"
			}
			k := trace.KernelDesc{
				Name:              kname,
				Grid:              trace.D1(width),
				Block:             trace.D1(tile),
				RegsPerThread:     24,
				SharedMemPerBlock: (tile + 1) * (tile + 1) * 4 * 2,
				Mix: trace.InstrMix{
					GlobalLoads: 3, GlobalStores: 2,
					SharedLoads: 3 * tile, SharedStores: tile,
					Compute: 6 * tile,
				},
				CoalescingFactor: 6,
				WorkingSetBytes:  int64(n) * int64(n) * 4,
				StridedFraction:  0.8,
				DivergenceEff:    0.9,
				Seed:             seedOf(name+kname, uint64(d)),
			}
			return k
		},
	}
}

func scWorkload(suite, name string, points, launches int) *Workload {
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     launches,
		Gen: func(i int) trace.KernelDesc {
			k := matvecKernel("kernel_compute_cost", 256)
			k.Grid = trace.D1((points + 511) / 512)
			k.Block = trace.D1(512)
			k.WorkingSetBytes = int64(points) * 72
			k.DivergenceEff = 0.75
			k.Seed = seedOf(name, uint64(i))
			return k
		},
	}
}

func sradWorkload(suite, name string, rows, cols, iters int) *Workload {
	return &Workload{
		Suite: suite,
		Name:  name,
		N:     2 * iters,
		Gen: func(i int) trace.KernelDesc {
			kname := "srad_cuda_1"
			if i%2 == 1 {
				kname = "srad_cuda_2"
			}
			k := stencilKernel(kname, rows, cols, 4)
			k.Seed = seedOf(name+kname, uint64(i/2))
			return k
		},
	}
}

func pfilterWorkload(suite, name string, frames int) *Workload {
	var seq []trace.KernelDesc
	for f := 0; f < frames; f++ {
		seq = append(seq,
			elementwiseKernel("likelihood_kernel", 40000, 40),
			reductionKernel("sum_kernel", 40000),
			elementwiseKernel("normalize_weights_kernel", 40000, 8),
			graphKernel("find_index_kernel", 40000, 40000*8, 0.5),
		)
	}
	return fixedSeq(suite, name, seq)
}
