package workload

import "pka/internal/trace"

// Polybench returns the PolyBench/GPU suite: dense linear-algebra and
// stencil codes, including the very long single-kernel apps (correlation,
// covariance, syr2k) whose simulation the paper reports in days, and the
// kernel-storm apps (fdtd2d, gramschmidt) where PKS wins 500-700x.
func Polybench() []*Workload {
	const suite = "Polybench"
	var out []*Workload

	// 2Dcnn: one 2D convolution sweep.
	out = append(out, fixedSeq(suite, "2Dcnn", []trace.KernelDesc{
		stencilKernel("Convolution2D_kernel", 2048, 2048, 9),
	}))

	// 2mm / 3mm: chained matrix multiplies.
	out = append(out, fixedSeq(suite, "2mm", []trace.KernelDesc{
		gemmKernel("mm2_kernel1", 1024, 1024, 1024, false),
		gemmKernel("mm2_kernel2", 1024, 1024, 1024, false),
	}))
	out = append(out, fixedSeq(suite, "3mm", []trace.KernelDesc{
		gemmKernel("mm3_kernel1", 768, 768, 768, false),
		gemmKernel("mm3_kernel2", 768, 768, 768, false),
		gemmKernel("mm3_kernel3", 768, 768, 768, false),
	}))

	// 3dconvolution: one z-slice kernel per plane.
	out = append(out, &Workload{
		Suite: suite, Name: "3dconvolution", N: 254,
		Gen: func(i int) trace.KernelDesc {
			k := stencilKernel("convolution3D_kernel", 128, 128, 27)
			k.Seed = seedOf("poly-3dconv", uint64(i))
			return k
		},
	})

	// atax / bicg / mvt: paired matrix-vector products.
	out = append(out, fixedSeq(suite, "atax", []trace.KernelDesc{
		matvecKernel("atax_kernel1", 16384),
		matvecKernel("atax_kernel2", 16384),
	}))
	out = append(out, fixedSeq(suite, "bicg", []trace.KernelDesc{
		matvecKernel("bicg_kernel1", 16384),
		matvecKernel("bicg_kernel2", 16384),
	}))
	out = append(out, fixedSeq(suite, "mvt", []trace.KernelDesc{
		matvecKernel("mvt_kernel1", 16384),
		matvecKernel("mvt_kernel2", 16384),
	}))

	// correlation / covariance: dominated by one enormous O(n^3)-ish
	// kernel — the workloads whose full simulation takes ~500 hours.
	out = append(out, fixedSeq(suite, "correlation", []trace.KernelDesc{
		elementwiseKernel("mean_kernel", 1024, 30),
		elementwiseKernel("std_kernel", 1024, 40),
		elementwiseKernel("reduce_kernel", 1024*1024, 6),
		bigTriangular("corr_kernel", 1024),
	}))
	out = append(out, fixedSeq(suite, "covariance", []trace.KernelDesc{
		elementwiseKernel("mean_kernel", 1024, 30),
		elementwiseKernel("reduce_kernel", 1024*1024, 6),
		bigTriangular("covar_kernel", 1024),
	}))

	// fdtd2d: 3 kernels per timestep, 500 steps. Two of the kernels are
	// near-identical field updates (they cluster together), the third is
	// distinct — Table 3 reports groups of 1000 and 500.
	out = append(out, &Workload{
		Suite: suite, Name: "fdtd2d", N: 1500,
		Gen: func(i int) trace.KernelDesc {
			step := i / 3
			var k trace.KernelDesc
			switch i % 3 {
			case 0:
				k = stencilKernel("fdtd_step1_kernel", 192, 192, 3)
			case 1:
				k = stencilKernel("fdtd_step2_kernel", 192, 192, 3)
			default:
				// The third field update does the curl accumulation: far
				// more arithmetic and neighbour traffic than steps 1-2,
				// which is why it forms its own PKS group (Table 3).
				k = stencilKernel("fdtd_step3_kernel", 192, 192, 9)
				k.Mix.Compute += 150
				k.Mix.GlobalLoads += 6
			}
			k.Seed = seedOf("poly-fdtd"+k.Name, uint64(step))
			return k
		},
	})

	// gemm / gesummv / syrk / syr2k: single launches; syr2k is the
	// 50-day-simulation monster that PKP alone rescues.
	out = append(out, fixedSeq(suite, "gemm", []trace.KernelDesc{
		gemmKernel("gemm_kernel", 1024, 1024, 1024, false),
	}))
	out = append(out, fixedSeq(suite, "gsummv", []trace.KernelDesc{
		matvecKernel("gesummv_kernel", 16384),
	}))
	out = append(out, fixedSeq(suite, "syrk", []trace.KernelDesc{
		bigTriangular("syrk_kernel", 1024),
	}))
	out = append(out, fixedSeq(suite, "syr2k", []trace.KernelDesc{
		bigTriangular("syr2k_kernel", 1280),
	}))

	// gramschmidt: 3 kernels per column over 2048 columns; the column
	// vector shrinks, so instances spread across ~6 natural size groups.
	out = append(out, &Workload{
		Suite: suite, Name: "gramschmidt", N: 3 * 2048,
		Gen: func(i int) trace.KernelDesc {
			col := i / 3
			remaining := 2048 - col
			if remaining < 16 {
				remaining = 16
			}
			var k trace.KernelDesc
			switch i % 3 {
			case 0:
				k = reductionKernel("gramschmidt_kernel1", remaining*8)
			case 1:
				k = elementwiseKernel("gramschmidt_kernel2", remaining*8, 8)
			default:
				k = matvecKernel("gramschmidt_kernel3", remaining)
			}
			k.Seed = seedOf("poly-gs"+k.Name, uint64(col))
			return k
		},
	})

	return out
}

// bigTriangular models the enormous rank-update kernels (syrk, syr2k,
// correlation): every thread walks a long row, so single-kernel runtime is
// huge and intra-kernel (PKP) reduction is the only lever.
func bigTriangular(name string, n int) trace.KernelDesc {
	return trace.KernelDesc{
		Name:             name,
		Grid:             trace.D2(n/32, n/8),
		Block:            trace.D2(32, 8),
		RegsPerThread:    48,
		Mix:              trace.InstrMix{GlobalLoads: n / 8, GlobalStores: 1, Compute: n / 2},
		CoalescingFactor: 4,
		WorkingSetBytes:  int64(n) * int64(n) * 8,
		StridedFraction:  0.97,
		DivergenceEff:    0.98,
		Seed:             seedOf(name, uint64(n)),
	}
}
