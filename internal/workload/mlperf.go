package workload

import "pka/internal/trace"

// MLPerfScale shrinks the MLPerf kernel-launch counts relative to the
// paper's runs (SSD Training launched 5.3 million kernels). The default
// 1/5 scale keeps the structural story intact — these are still the only
// workloads with 10^5-10^6 launches, two-level profiling still triggers —
// while full silicon passes stay in seconds. EXPERIMENTS.md records the
// scale used for every measured number.
const MLPerfScale = 5

// MLPerf returns the seven reference-implementation workloads studied:
// three ResNet-50 inference batch sizes, SSD training, GNMT training, BERT
// offline inference, and 3D-Unet inference.
func MLPerf() []*Workload {
	return []*Workload{
		mlperfFromTemplate("bert_offline_inf", bertIteration(), 3_500_000/MLPerfScale),
		mlperfFromTemplate("ssd_training", ssdIteration(), 5_300_000/MLPerfScale),
		mlperfFromTemplate("resnet50_64b_inf", resnetIteration(64), 145_000/MLPerfScale),
		mlperfFromTemplate("resnet50_128b_inf", resnetIteration(128), 72_000/MLPerfScale),
		mlperfFromTemplate("resnet50_256b_inf", resnetIteration(256), 36_000/MLPerfScale),
		mlperfFromTemplate("gnmt_training", gnmtIteration(), 2_400_000/MLPerfScale),
		mlperfFromTemplate("3dunet_inf", unetIteration(), 14_000/MLPerfScale),
	}
}

// mlperfFromTemplate tiles a per-iteration kernel template to n launches.
// Kernel i is template[i % len] with a launch-unique seed, so instances of
// the same layer are near-identical (they should cluster) while address
// streams stay distinct.
func mlperfFromTemplate(name string, template []trace.KernelDesc, n int) *Workload {
	if n < len(template) {
		n = len(template)
	}
	return &Workload{
		Suite: "MLPerf",
		Name:  name,
		N:     n,
		Gen: func(i int) trace.KernelDesc {
			k := template[i%len(template)]
			k.Seed ^= uint64(i) * 0x9E3779B97F4A7C15
			return k
		},
	}
}

// resnetIteration builds one inference iteration of ResNet-50 at the given
// batch size. Kernel names follow the per-group composition of the paper's
// Figure 4: cuDNN convolution variants, Winograd kernels, fused ReLU
// kernels at several tensor sizes, batch-norm, pooling, the final GEMM and
// softmax, plus framework glue kernels.
func resnetIteration(batch int) []trace.KernelDesc {
	var seq []trace.KernelDesc
	add := func(k trace.KernelDesc) { seq = append(seq, k) }

	// Stem: 7x7 conv, bn, relu, maxpool.
	add(convKernel("implicit_con", batch, 3, 112, 112, 64, 7, true))
	add(elementwiseKernel("bn_fw_inf", batch*64*112*112/4, 6))
	add(elementwiseKernel("big_relu_interior", batch*64*112*112/4, 2))
	add(stencilKernel("MaxPool2D", 112, 112*batch/4, 9))

	// Four residual stages; channel counts double, spatial dims halve.
	stage := func(c, h, blocks int, reluName string) {
		for b := 0; b < blocks; b++ {
			add(convKernel("implicit_con", batch, c, h, h, c, 1, true))
			add(convKernel("winograd_big", batch, c, h, h, c, 3, true))
			add(elementwiseKernel("genWinograd", batch*c*h*h/8, 4))
			add(convKernel("implicit_con", batch, c, h, h, 4*c, 1, true))
			add(elementwiseKernel("bn_fw_inf", batch*c*h*h/4, 6))
			add(elementwiseKernel(reluName, batch*c*h*h/4, 2))
			add(elementwiseKernel("SimpleBinary", batch*c*h*h/4, 3))
		}
	}
	stage(64, 56, 3, "tiny_relu_1")
	stage(128, 28, 4, "tiny_relu_2")
	stage(256, 14, 6, "med_relu_small")
	stage(512, 7, 3, "tiny_relu_interior")

	// Head: pooling, FC, softmax and glue.
	add(reductionKernel("RowwiseReduce", batch*2048))
	add(gemmKernel("sgemm", batch, 1000, 2048, false))
	add(gemmKernel("gemv2N", batch, 1000, 2048, false))
	add(reductionKernel("splitKreduce", batch*1000))
	add(elementwiseKernel("somax_fw", batch*1000, 10))
	add(elementwiseKernel("op_tensor3", batch*2048, 3))
	add(elementwiseKernel("op_tensor4", batch*2048, 4))
	add(elementwiseKernel("Relu", batch*2048, 2))
	add(elementwiseKernel("RowwiseBinary", batch*1000, 3))
	add(elementwiseKernel("ComputeArg", batch*1000, 5))
	add(elementwiseKernel("computeOffsets", batch*64, 3))
	return seq
}

// ssdIteration builds one SSD-300 training step: a ResNet-34-ish backbone
// forward, detection heads, loss, and backward/optimizer kernels. Training
// steps launch far more (and more varied) kernels than inference.
func ssdIteration() []trace.KernelDesc {
	const batch = 16
	var seq []trace.KernelDesc
	add := func(k trace.KernelDesc) { seq = append(seq, k) }

	stage := func(c, h, blocks int) {
		for b := 0; b < blocks; b++ {
			add(convKernel("volta_scudnn_fw", batch, c, h, h, c, 3, true))
			add(elementwiseKernel("bn_fw_tr", batch*c*h*h/4, 8))
			add(elementwiseKernel("relu_fw", batch*c*h*h/4, 2))
			// Backward pair + weight gradients.
			add(convKernel("volta_scudnn_bwd_data", batch, c, h, h, c, 3, true))
			add(convKernel("volta_scudnn_bwd_filter", batch, c, h, h, c, 3, true))
			add(elementwiseKernel("bn_bw", batch*c*h*h/4, 10))
		}
	}
	stage(64, 75, 3)
	stage(128, 38, 4)
	stage(256, 19, 6)
	stage(512, 10, 3)

	// Detection heads, loss and optimizer sweep.
	for head := 0; head < 6; head++ {
		add(convKernel("loc_head_conv", batch, 256, 10, 10, 24, 3, true))
		add(convKernel("conf_head_conv", batch, 256, 10, 10, 324, 3, true))
	}
	add(elementwiseKernel("smooth_l1_loss", batch*8732*4, 14))
	add(reductionKernel("cross_entropy_loss", batch*8732))
	add(graphKernel("nms_kernel", batch*8732/4, 8732*16, 0.9))
	for p := 0; p < 8; p++ {
		add(elementwiseKernel("sgd_momentum_update", 3_200_000, 6))
	}
	return seq
}

// bertIteration builds one BERT-Large offline-inference batch: 24
// transformer layers of QKV projections, attention, and MLP blocks.
func bertIteration() []trace.KernelDesc {
	const (
		seqLen = 384
		hidden = 1024
		batch  = 2
	)
	var seq []trace.KernelDesc
	add := func(k trace.KernelDesc) { seq = append(seq, k) }
	for layer := 0; layer < 24; layer++ {
		add(gemmKernel("volta_h884gemm_qkv", batch*seqLen, 3*hidden, hidden, true))
		add(gemmKernel("volta_h884gemm_attn_score", batch*16*seqLen, seqLen, 64, true))
		add(elementwiseKernel("softmax_warp", batch*16*seqLen*seqLen/64, 8))
		add(gemmKernel("volta_h884gemm_attn_ctx", batch*16*seqLen, 64, seqLen, true))
		add(gemmKernel("volta_h884gemm_proj", batch*seqLen, hidden, hidden, true))
		add(elementwiseKernel("layernorm_fw", batch*seqLen*hidden/16, 12))
		add(gemmKernel("volta_h884gemm_mlp1", batch*seqLen, 4*hidden, hidden, true))
		add(elementwiseKernel("gelu_fw", batch*seqLen*4*hidden/16, 10))
		add(gemmKernel("volta_h884gemm_mlp2", batch*seqLen, hidden, 4*hidden, true))
		add(elementwiseKernel("layernorm_fw2", batch*seqLen*hidden/16, 12))
		add(elementwiseKernel("residual_add", batch*seqLen*hidden/16, 2))
		add(elementwiseKernel("dropout_mask", batch*seqLen*hidden/16, 4))
	}
	add(gemmKernel("squad_output_gemm", batch*seqLen, 2, hidden, false))
	return seq
}

// gnmtIteration builds one GNMT training step: bidirectional LSTM encoder,
// attention, LSTM decoder, and the giant vocabulary projection, each with
// backward passes.
func gnmtIteration() []trace.KernelDesc {
	const (
		hidden = 1024
		batch  = 64
		steps  = 25
	)
	var seq []trace.KernelDesc
	add := func(k trace.KernelDesc) { seq = append(seq, k) }
	for layer := 0; layer < 4; layer++ {
		for t := 0; t < steps; t++ {
			add(rnnCellKernel("lstm_cell_fw", hidden, batch, true))
			add(elementwiseKernel("lstm_pointwise", batch*hidden*4, 14))
		}
	}
	for t := 0; t < steps; t++ {
		add(gemmKernel("attention_score", batch, steps, hidden, true))
		add(elementwiseKernel("attention_softmax", batch*steps, 8))
		add(rnnCellKernel("lstm_cell_dec", hidden, batch, true))
	}
	add(gemmKernel("vocab_projection", batch*steps, 4000, hidden, true))
	add(reductionKernel("nll_loss", batch*steps*100))
	// Backward: roughly mirror the forward cell count.
	for layer := 0; layer < 4; layer++ {
		for t := 0; t < steps; t++ {
			add(rnnCellKernel("lstm_cell_bw", hidden, batch, true))
			add(elementwiseKernel("lstm_pointwise_bw", batch*hidden*4, 16))
		}
	}
	for p := 0; p < 6; p++ {
		add(elementwiseKernel("adam_update", 8_000_000, 10))
	}
	return seq
}

// unetIteration builds one 3D-Unet inference pass over a BRATS-style
// volume: large 3D convolutions in an encoder-decoder with skips.
func unetIteration() []trace.KernelDesc {
	const batch = 1
	var seq []trace.KernelDesc
	add := func(k trace.KernelDesc) { seq = append(seq, k) }
	dims := []struct{ c, h int }{{32, 128}, {64, 64}, {128, 32}, {256, 16}}
	for _, d := range dims { // encoder
		add(convKernel("conv3d_fw", batch, d.c, d.h, d.h*4, d.c*2, 3, true))
		add(elementwiseKernel("instancenorm_fw", batch*d.c*d.h*d.h*4, 10))
		add(elementwiseKernel("leaky_relu", batch*d.c*d.h*d.h*4, 2))
		add(stencilKernel("maxpool3d", d.h, d.h*2, 27))
	}
	for i := len(dims) - 1; i >= 0; i-- { // decoder
		d := dims[i]
		add(convKernel("conv3d_transpose", batch, d.c*2, d.h, d.h*4, d.c, 3, true))
		add(elementwiseKernel("skip_concat", batch*d.c*d.h*d.h*4, 3))
		add(convKernel("conv3d_fw_dec", batch, d.c, d.h, d.h*4, d.c, 3, true))
		add(elementwiseKernel("instancenorm_dec", batch*d.c*d.h*d.h*4, 10))
	}
	add(elementwiseKernel("softmax_volume", batch*4*128*128*128/8, 8))
	return seq
}
