package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pka/internal/trace"
)

const validDoc = `{
  "suite": "mine", "name": "pipeline",
  "kernels": [
    {"name": "map", "grid": [640,1,1], "block": [256,1,1],
     "mix": {"compute": 150, "global_loads": 4, "global_stores": 1},
     "coalescing_factor": 4, "working_set_bytes": 8388608,
     "strided_fraction": 0.95, "divergence_eff": 1.0, "repeat": 40},
    {"name": "reduce", "grid": [512,1,1],
     "mix": {"compute": 12, "global_loads": 24},
     "working_set_bytes": 536870912, "strided_fraction": 0.4, "repeat": 20}
  ]
}`

func TestFromJSONValid(t *testing.T) {
	w, err := FromJSON(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if w.FullName() != "mine/pipeline" || w.N != 60 {
		t.Fatalf("workload = %s with %d kernels", w.FullName(), w.N)
	}
	k0 := w.Kernel(0)
	if k0.Name != "map" || k0.Grid.Count() != 640 {
		t.Errorf("kernel 0 = %+v", k0)
	}
	// Defaults applied to the under-specified second entry.
	k40 := w.Kernel(40)
	if k40.Name != "reduce" || k40.Block.Count() != 256 || k40.DivergenceEff != 1 || k40.CoalescingFactor != 4 {
		t.Errorf("defaults not applied: %+v", k40)
	}
	// Repeated instances differ in seed but share shape.
	if w.Kernel(0).Seed == w.Kernel(1).Seed {
		t.Error("repeated instances share a seed")
	}
	if w.Kernel(0).Grid != w.Kernel(1).Grid {
		t.Error("repeated instances differ in shape")
	}
}

func TestFromJSONRejections(t *testing.T) {
	cases := map[string]string{
		"not json":      `nope`,
		"no name":       `{"kernels":[{"name":"k","grid":[1,1,1],"mix":{"compute":1}}]}`,
		"no kernels":    `{"name":"x","kernels":[]}`,
		"unnamed":       `{"name":"x","kernels":[{"grid":[1,1,1],"mix":{"compute":1}}]}`,
		"unknown field": `{"name":"x","bogus":1,"kernels":[{"name":"k","grid":[1,1,1],"mix":{"compute":1}}]}`,
		"no instrs":     `{"name":"x","kernels":[{"name":"k","grid":[1,1,1]}]}`,
		"huge block":    `{"name":"x","kernels":[{"name":"k","grid":[1,1,1],"block":[2048,1,1],"mix":{"compute":1}}]}`,
		"bad strided":   `{"name":"x","kernels":[{"name":"k","grid":[1,1,1],"strided_fraction":2,"mix":{"compute":1}}]}`,
	}
	for name, doc := range cases {
		if _, err := FromJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	if err := writeFile(path, validDoc); err != nil {
		t.Fatal(err)
	}
	w, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.N != 60 {
		t.Errorf("N = %d", w.N)
	}
	if _, err := LoadJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestFromJSONDefaultSuite(t *testing.T) {
	doc := `{"name":"solo","kernels":[{"name":"k","grid":[8,1,1],"mix":{"compute":10}}]}`
	w, err := FromJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Suite != "user" {
		t.Errorf("suite = %q, want user", w.Suite)
	}
	k := w.Kernel(0)
	if err := k.Validate(); err != nil {
		t.Error(err)
	}
	var _ trace.KernelDesc = k
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
