package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pka/internal/trace"
)

// JSON workload descriptions let downstream users run the PKA pipeline on
// their own applications without writing Go: a document lists kernel
// launches (optionally repeated), in launch order.
//
//	{
//	  "suite": "mine", "name": "pipeline",
//	  "kernels": [
//	    {"name": "map",    "grid": [640,1,1], "block": [256,1,1],
//	     "mix": {"compute": 150, "global_loads": 4, "global_stores": 1},
//	     "coalescing_factor": 4, "working_set_bytes": 8388608,
//	     "strided_fraction": 0.95, "divergence_eff": 1.0, "repeat": 40},
//	    {"name": "reduce", "grid": [512,1,1], "block": [256,1,1],
//	     "mix": {"compute": 12, "global_loads": 24},
//	     "coalescing_factor": 4, "working_set_bytes": 536870912,
//	     "strided_fraction": 0.4, "divergence_eff": 1.0, "repeat": 20}
//	  ]
//	}

// KernelJSON is one launch entry of a workload document.
type KernelJSON struct {
	Name  string `json:"name"`
	Grid  [3]int `json:"grid"`
	Block [3]int `json:"block"`

	Mix struct {
		GlobalLoads   int `json:"global_loads"`
		GlobalStores  int `json:"global_stores"`
		LocalLoads    int `json:"local_loads"`
		SharedLoads   int `json:"shared_loads"`
		SharedStores  int `json:"shared_stores"`
		GlobalAtomics int `json:"global_atomics"`
		Compute       int `json:"compute"`
		TensorOps     int `json:"tensor_ops"`
	} `json:"mix"`

	RegsPerThread     int     `json:"regs_per_thread"`
	SharedMemPerBlock int     `json:"shared_mem_per_block"`
	CoalescingFactor  float64 `json:"coalescing_factor"`
	WorkingSetBytes   int64   `json:"working_set_bytes"`
	StridedFraction   float64 `json:"strided_fraction"`
	DivergenceEff     float64 `json:"divergence_eff"`
	BlockImbalance    float64 `json:"block_imbalance"`

	// Repeat launches this kernel N consecutive times (default 1). Each
	// instance gets a distinct deterministic seed.
	Repeat int `json:"repeat"`
}

// WorkloadJSON is the document root.
type WorkloadJSON struct {
	Suite   string       `json:"suite"`
	Name    string       `json:"name"`
	Kernels []KernelJSON `json:"kernels"`
}

// Document bounds. JSON workloads expand eagerly (unlike the study's
// index-generated streams), so a hostile or typo'd document must not be
// able to allocate unbounded memory before validation rejects it.
const (
	// MaxJSONRepeat bounds one entry's repeat count.
	MaxJSONRepeat = 1 << 20
	// MaxJSONKernels bounds the total expanded launch count.
	MaxJSONKernels = 1 << 20
	// maxGridX / maxGridYZ mirror CUDA's launch-dimension limits.
	maxGridX  = 1<<31 - 1
	maxGridYZ = 65535
)

// FromJSON parses a workload document and validates every kernel.
func FromJSON(r io.Reader) (*Workload, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc WorkloadJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("workload: parsing JSON: %w", err)
	}
	if doc.Name == "" {
		return nil, fmt.Errorf("workload: document needs a name")
	}
	if doc.Suite == "" {
		doc.Suite = "user"
	}
	if len(doc.Kernels) == 0 {
		return nil, fmt.Errorf("workload: document has no kernels")
	}

	var seq []trace.KernelDesc
	for i, kj := range doc.Kernels {
		k, err := kj.toKernel(doc.Name, i)
		if err != nil {
			return nil, err
		}
		repeat := kj.Repeat
		if repeat < 0 {
			return nil, fmt.Errorf("workload: kernel %d of %q has negative repeat %d", i, doc.Name, repeat)
		}
		if repeat > MaxJSONRepeat {
			return nil, fmt.Errorf("workload: kernel %d of %q repeats %d times (max %d)", i, doc.Name, repeat, MaxJSONRepeat)
		}
		if repeat == 0 {
			repeat = 1
		}
		if len(seq)+repeat > MaxJSONKernels {
			return nil, fmt.Errorf("workload: document %q expands past %d kernel launches", doc.Name, MaxJSONKernels)
		}
		for r := 0; r < repeat; r++ {
			inst := k
			inst.Seed = seedOf(doc.Name+k.Name, uint64(i)<<20|uint64(r))
			seq = append(seq, inst)
		}
	}
	w := fixedSeq(doc.Suite, doc.Name, seq)
	if err := w.Validate(0); err != nil {
		return nil, err
	}
	return w, nil
}

// LoadJSON reads a workload document from disk.
func LoadJSON(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return FromJSON(f)
}

func (kj *KernelJSON) toKernel(doc string, idx int) (trace.KernelDesc, error) {
	if kj.Name == "" {
		return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q has no name", idx, doc)
	}
	// Bounds trace.Validate does not cover: dimension and count sanity
	// for documents arriving from outside the curated study set.
	for d, v := range kj.Grid {
		if v < 0 {
			return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q has negative grid dim %d", idx, doc, v)
		}
		max := maxGridYZ
		if d == 0 {
			max = maxGridX
		}
		if v > max {
			return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q grid dim %d exceeds %d", idx, doc, v, max)
		}
	}
	if blocks := int64(max64(kj.Grid[0], 1)) * int64(max64(kj.Grid[1], 1)) * int64(max64(kj.Grid[2], 1)); blocks > maxGridX {
		return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q launches %d blocks (max %d)", idx, doc, blocks, maxGridX)
	}
	for _, v := range kj.Block {
		if v < 0 {
			return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q has negative block dim %d", idx, doc, v)
		}
	}
	for name, v := range map[string]int{
		"global_loads": kj.Mix.GlobalLoads, "global_stores": kj.Mix.GlobalStores,
		"local_loads": kj.Mix.LocalLoads, "shared_loads": kj.Mix.SharedLoads,
		"shared_stores": kj.Mix.SharedStores, "global_atomics": kj.Mix.GlobalAtomics,
		"compute": kj.Mix.Compute, "tensor_ops": kj.Mix.TensorOps,
	} {
		if v < 0 {
			return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q has negative mix count %s=%d", idx, doc, name, v)
		}
	}
	if kj.RegsPerThread < 0 || kj.SharedMemPerBlock < 0 || kj.WorkingSetBytes < 0 {
		return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q has negative resource usage", idx, doc)
	}
	k := trace.KernelDesc{
		Name:              kj.Name,
		Grid:              trace.Dim3{X: kj.Grid[0], Y: kj.Grid[1], Z: kj.Grid[2]},
		Block:             trace.Dim3{X: kj.Block[0], Y: kj.Block[1], Z: kj.Block[2]},
		RegsPerThread:     kj.RegsPerThread,
		SharedMemPerBlock: kj.SharedMemPerBlock,
		Mix: trace.InstrMix{
			GlobalLoads:   kj.Mix.GlobalLoads,
			GlobalStores:  kj.Mix.GlobalStores,
			LocalLoads:    kj.Mix.LocalLoads,
			SharedLoads:   kj.Mix.SharedLoads,
			SharedStores:  kj.Mix.SharedStores,
			GlobalAtomics: kj.Mix.GlobalAtomics,
			Compute:       kj.Mix.Compute,
			TensorOps:     kj.Mix.TensorOps,
		},
		CoalescingFactor: kj.CoalescingFactor,
		WorkingSetBytes:  kj.WorkingSetBytes,
		StridedFraction:  kj.StridedFraction,
		BlockImbalance:   kj.BlockImbalance,
		DivergenceEff:    kj.DivergenceEff,
	}
	// Friendly defaults for under-specified documents.
	if k.Block == (trace.Dim3{}) {
		k.Block = trace.D1(256)
	}
	if k.Grid.Y == 0 {
		k.Grid.Y = 1
	}
	if k.Grid.Z == 0 {
		k.Grid.Z = 1
	}
	if k.Block.Y == 0 {
		k.Block.Y = 1
	}
	if k.Block.Z == 0 {
		k.Block.Z = 1
	}
	if k.CoalescingFactor == 0 {
		k.CoalescingFactor = 4
	}
	if k.DivergenceEff == 0 {
		k.DivergenceEff = 1
	}
	if k.WorkingSetBytes == 0 {
		k.WorkingSetBytes = 1 << 20
	}
	if err := k.Validate(); err != nil {
		return trace.KernelDesc{}, fmt.Errorf("workload: kernel %d of %q: %w", idx, doc, err)
	}
	return k, nil
}

func max64(v, lo int) int {
	if v > lo {
		return v
	}
	return lo
}
