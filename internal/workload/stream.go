package workload

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"pka/internal/trace"
)

// NDJSON kernel-event streams are the wire format of streaming PKS: one
// header line naming the workload, then one event line per kernel launch.
// Unlike the generator-style workload documents in jsonio.go, events carry
// the *exact* KernelDesc of each launch — every field the content key and
// the simulator read — so a stream written by WriteEvents and replayed
// through an EventDecoder reproduces the original workload byte for byte,
// which is what lets `pka -stream` promise output identical to the batch
// run.
//
//	{"stream":"pka-kernel-events-v1","suite":"Rodinia","name":"gauss_208","kernels":208}
//	{"launch":0,"kernel":{"name":"fan1","grid":[1,1,1],"block":[208,1,1],...,"seed":1234}}
//	{"launch":1,"kernel":{...}}

// StreamSchema identifies the event-stream format; bump it when the event
// layout changes meaning.
const StreamSchema = "pka-kernel-events-v1"

// MaxEventBytes bounds one NDJSON line. A kernel event is a few hundred
// bytes; anything near the cap is hostile or corrupt.
const MaxEventBytes = 1 << 20

// StreamHeader is the first line of an event stream.
type StreamHeader struct {
	Stream  string `json:"stream"`
	Suite   string `json:"suite"`
	Name    string `json:"name"`
	Kernels int    `json:"kernels"`
}

// kernelWire is the exact-roundtrip serialization of a KernelDesc. All
// fields are typed (uint64 seed, IEEE-754 floats through Go's shortest
// representation), so encode→decode is the identity.
type kernelWire struct {
	Name  string `json:"name"`
	Grid  [3]int `json:"grid"`
	Block [3]int `json:"block"`

	RegsPerThread     int `json:"regs"`
	SharedMemPerBlock int `json:"shared_mem"`

	Mix struct {
		GlobalLoads   int `json:"global_loads"`
		GlobalStores  int `json:"global_stores"`
		LocalLoads    int `json:"local_loads"`
		SharedLoads   int `json:"shared_loads"`
		SharedStores  int `json:"shared_stores"`
		GlobalAtomics int `json:"global_atomics"`
		Compute       int `json:"compute"`
		TensorOps     int `json:"tensor_ops"`
	} `json:"mix"`

	CoalescingFactor float64 `json:"coalescing"`
	WorkingSetBytes  int64   `json:"working_set"`
	StridedFraction  float64 `json:"strided"`
	DivergenceEff    float64 `json:"divergence"`
	BlockImbalance   float64 `json:"imbalance"`
	Seed             uint64  `json:"seed"`
}

func toWire(k *trace.KernelDesc) kernelWire {
	var w kernelWire
	w.Name = k.Name
	w.Grid = [3]int{k.Grid.X, k.Grid.Y, k.Grid.Z}
	w.Block = [3]int{k.Block.X, k.Block.Y, k.Block.Z}
	w.RegsPerThread = k.RegsPerThread
	w.SharedMemPerBlock = k.SharedMemPerBlock
	w.Mix.GlobalLoads = k.Mix.GlobalLoads
	w.Mix.GlobalStores = k.Mix.GlobalStores
	w.Mix.LocalLoads = k.Mix.LocalLoads
	w.Mix.SharedLoads = k.Mix.SharedLoads
	w.Mix.SharedStores = k.Mix.SharedStores
	w.Mix.GlobalAtomics = k.Mix.GlobalAtomics
	w.Mix.Compute = k.Mix.Compute
	w.Mix.TensorOps = k.Mix.TensorOps
	w.CoalescingFactor = k.CoalescingFactor
	w.WorkingSetBytes = k.WorkingSetBytes
	w.StridedFraction = k.StridedFraction
	w.DivergenceEff = k.DivergenceEff
	w.BlockImbalance = k.BlockImbalance
	w.Seed = k.Seed
	return w
}

func (w *kernelWire) toDesc(launch int) (trace.KernelDesc, error) {
	k := trace.KernelDesc{
		ID:                launch,
		Name:              w.Name,
		Grid:              trace.Dim3{X: w.Grid[0], Y: w.Grid[1], Z: w.Grid[2]},
		Block:             trace.Dim3{X: w.Block[0], Y: w.Block[1], Z: w.Block[2]},
		RegsPerThread:     w.RegsPerThread,
		SharedMemPerBlock: w.SharedMemPerBlock,
		CoalescingFactor:  w.CoalescingFactor,
		WorkingSetBytes:   w.WorkingSetBytes,
		StridedFraction:   w.StridedFraction,
		DivergenceEff:     w.DivergenceEff,
		BlockImbalance:    w.BlockImbalance,
		Seed:              w.Seed,
	}
	k.Mix = trace.InstrMix{
		GlobalLoads:   w.Mix.GlobalLoads,
		GlobalStores:  w.Mix.GlobalStores,
		LocalLoads:    w.Mix.LocalLoads,
		SharedLoads:   w.Mix.SharedLoads,
		SharedStores:  w.Mix.SharedStores,
		GlobalAtomics: w.Mix.GlobalAtomics,
		Compute:       w.Mix.Compute,
		TensorOps:     w.Mix.TensorOps,
	}
	// The same structural bounds the JSON workload loader enforces: a
	// hostile event must not construct a launch the substrates would choke
	// on. Validate covers blocks, mixes, and the ratio fields; the grid
	// caps mirror CUDA's launch limits.
	if k.Grid.X > maxGridX || k.Grid.Y > maxGridYZ || k.Grid.Z > maxGridYZ {
		return k, fmt.Errorf("kernel %q grid %v exceeds launch limits", k.Name, k.Grid)
	}
	if blocks := int64(max64(k.Grid.X, 1)) * int64(max64(k.Grid.Y, 1)) * int64(max64(k.Grid.Z, 1)); blocks > maxGridX {
		return k, fmt.Errorf("kernel %q launches %d blocks (max %d)", k.Name, blocks, maxGridX)
	}
	for _, m := range []int{k.Mix.GlobalLoads, k.Mix.GlobalStores, k.Mix.LocalLoads,
		k.Mix.SharedLoads, k.Mix.SharedStores, k.Mix.GlobalAtomics, k.Mix.Compute, k.Mix.TensorOps} {
		if m < 0 {
			return k, fmt.Errorf("kernel %q has a negative instruction-mix count", k.Name)
		}
	}
	if k.RegsPerThread < 0 || k.SharedMemPerBlock < 0 || k.WorkingSetBytes < 0 {
		return k, fmt.Errorf("kernel %q has negative resource usage", k.Name)
	}
	if err := k.Validate(); err != nil {
		return k, err
	}
	return k, nil
}

// eventWire is one event line.
type eventWire struct {
	Launch int        `json:"launch"`
	Kernel kernelWire `json:"kernel"`
}

// WriteEvents serializes the workload as an NDJSON event stream: header
// line, then one event per launch in chronological order.
func WriteEvents(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(StreamHeader{Stream: StreamSchema, Suite: wl.Suite, Name: wl.Name, Kernels: wl.N}); err != nil {
		return err
	}
	for i := 0; i < wl.N; i++ {
		k := wl.Kernel(i)
		if err := enc.Encode(eventWire{Launch: i, Kernel: toWire(&k)}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EventDecoder reads an NDJSON kernel-event stream with the same hostility
// assumptions as the JSON workload loader: bounded line length, unknown
// fields rejected, trailing garbage rejected, every kernel validated, and
// duplicate or out-of-range launch IDs refused. Events may arrive in any
// order within the producer's reorder window; the decoder only guarantees
// each launch ID appears exactly once.
type EventDecoder struct {
	sc     *bufio.Scanner
	header *StreamHeader
	seen   []bool
	got    int
	line   int
}

// NewEventDecoder wraps r. Call Header first (or let Next do it), then
// Next until io.EOF.
func NewEventDecoder(r io.Reader) *EventDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxEventBytes)
	return &EventDecoder{sc: sc}
}

// decodeStrict unmarshals one line rejecting unknown fields and trailing
// data.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// Header parses (and caches) the stream header.
func (d *EventDecoder) Header() (StreamHeader, error) {
	if d.header != nil {
		return *d.header, nil
	}
	line, err := d.nextLine()
	if err != nil {
		if err == io.EOF {
			err = errors.New("workload: event stream is empty")
		}
		return StreamHeader{}, err
	}
	var h StreamHeader
	if err := decodeStrict(line, &h); err != nil {
		return StreamHeader{}, fmt.Errorf("workload: event-stream header: %w", err)
	}
	if h.Stream != StreamSchema {
		return StreamHeader{}, fmt.Errorf("workload: unsupported event stream %q (want %q)", h.Stream, StreamSchema)
	}
	if h.Kernels < 1 || h.Kernels > MaxJSONKernels {
		return StreamHeader{}, fmt.Errorf("workload: event stream declares %d kernels (limit %d)", h.Kernels, MaxJSONKernels)
	}
	if h.Name == "" {
		h.Name = "stream"
	}
	if h.Suite == "" {
		h.Suite = "user"
	}
	d.header = &h
	d.seen = make([]bool, h.Kernels)
	return h, nil
}

func (d *EventDecoder) nextLine() ([]byte, error) {
	for d.sc.Scan() {
		d.line++
		line := d.sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		return line, nil
	}
	if err := d.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("workload: event line %d exceeds %d bytes", d.line+1, MaxEventBytes)
		}
		return nil, err
	}
	return nil, io.EOF
}

// Next returns the next kernel event. The returned desc has ID set to the
// launch index. At end of stream it returns io.EOF; any events the header
// promised but the stream never delivered surface from Missing.
func (d *EventDecoder) Next() (trace.KernelDesc, error) {
	if d.header == nil {
		if _, err := d.Header(); err != nil {
			return trace.KernelDesc{}, err
		}
	}
	line, err := d.nextLine()
	if err != nil {
		return trace.KernelDesc{}, err
	}
	var ev eventWire
	if err := decodeStrict(line, &ev); err != nil {
		return trace.KernelDesc{}, fmt.Errorf("workload: event line %d: %w", d.line, err)
	}
	if ev.Launch < 0 || ev.Launch >= d.header.Kernels {
		return trace.KernelDesc{}, fmt.Errorf("workload: event line %d: launch %d outside [0,%d)", d.line, ev.Launch, d.header.Kernels)
	}
	if d.seen[ev.Launch] {
		return trace.KernelDesc{}, fmt.Errorf("workload: event line %d: duplicate launch %d", d.line, ev.Launch)
	}
	k, err := ev.Kernel.toDesc(ev.Launch)
	if err != nil {
		return trace.KernelDesc{}, fmt.Errorf("workload: event line %d: %w", d.line, err)
	}
	d.seen[ev.Launch] = true
	d.got++
	return k, nil
}

// Missing returns how many launches the header declared but the stream
// never delivered. Zero after a complete stream.
func (d *EventDecoder) Missing() int {
	if d.header == nil {
		return 0
	}
	return d.header.Kernels - d.got
}

// FromKernels builds a workload over an explicit launch list — the
// materialized form an event stream decodes into. The slice is aliased,
// not copied; callers must not mutate it afterwards.
func FromKernels(suite, name string, kernels []trace.KernelDesc) (*Workload, error) {
	if len(kernels) == 0 {
		return nil, errors.New("workload: no kernels")
	}
	if suite == "" {
		suite = "user"
	}
	if name == "" {
		name = "stream"
	}
	w := &Workload{Suite: suite, Name: name, N: len(kernels), Gen: func(i int) trace.KernelDesc {
		return kernels[i]
	}}
	return w, nil
}
