package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"pka/internal/trace"
)

const streamHeaderSeed = `{"stream":"pka-kernel-events-v1","suite":"mine","name":"pipe","kernels":2}`

const streamEventSeed = `{"launch":0,"kernel":{"name":"map","grid":[640,1,1],"block":[256,1,1],` +
	`"regs":32,"shared_mem":0,"mix":{"global_loads":4,"global_stores":0,"local_loads":0,` +
	`"shared_loads":0,"shared_stores":0,"global_atomics":0,"compute":150,"tensor_ops":0},` +
	`"coalescing":4,"working_set":8388608,"strided":0.95,"divergence":1,"imbalance":0,"seed":7}}`

// fuzz seed corpus: one valid stream and the malformed shapes the event
// decoder must reject with an error — never a panic, never an unbounded
// allocation, never a silently-accepted bad launch.
var streamSeeds = []string{
	// Valid two-event stream.
	streamHeaderSeed + "\n" + streamEventSeed + "\n" +
		strings.Replace(streamEventSeed, `"launch":0`, `"launch":1`, 1) + "\n",
	// Duplicate launch id.
	streamHeaderSeed + "\n" + streamEventSeed + "\n" + streamEventSeed + "\n",
	// Launch id outside the declared range.
	streamHeaderSeed + "\n" + strings.Replace(streamEventSeed, `"launch":0`, `"launch":9`, 1) + "\n",
	streamHeaderSeed + "\n" + strings.Replace(streamEventSeed, `"launch":0`, `"launch":-1`, 1) + "\n",
	// Malformed dims.
	streamHeaderSeed + "\n" + strings.Replace(streamEventSeed, `"grid":[640,1,1]`, `"grid":[-4,1,1]`, 1) + "\n",
	streamHeaderSeed + "\n" + strings.Replace(streamEventSeed, `"block":[256,1,1]`, `"block":[2048,1,1]`, 1) + "\n",
	streamHeaderSeed + "\n" + strings.Replace(streamEventSeed, `"grid":[640,1,1]`, `"grid":[2000000000,60000,60000]`, 1) + "\n",
	// Negative instruction mix.
	streamHeaderSeed + "\n" + strings.Replace(streamEventSeed, `"global_loads":4`, `"global_loads":-4`, 1) + "\n",
	// Truncated event line.
	streamHeaderSeed + "\n" + streamEventSeed[:len(streamEventSeed)/2] + "\n",
	// Header problems: wrong schema, absurd kernel count, zero kernels,
	// unknown fields, trailing garbage, missing header.
	strings.Replace(streamHeaderSeed, "events-v1", "events-v9", 1) + "\n" + streamEventSeed + "\n",
	strings.Replace(streamHeaderSeed, `"kernels":2`, `"kernels":2000000000`, 1) + "\n",
	strings.Replace(streamHeaderSeed, `"kernels":2`, `"kernels":0`, 1) + "\n",
	strings.Replace(streamHeaderSeed, `"suite":"mine"`, `"suite":"mine","extra":1`, 1) + "\n",
	streamHeaderSeed + ` {"junk":1}` + "\n",
	streamEventSeed + "\n",
	// Structural junk.
	"", "{", "[]\n", "\n\n\n",
}

// drainStream decodes an entire stream, returning the kernels accepted
// before the first error (io.EOF excluded).
func drainStream(t *testing.T, data []byte) (StreamHeader, int, error) {
	t.Helper()
	d := NewEventDecoder(bytes.NewReader(data))
	h, err := d.Header()
	if err != nil {
		return h, 0, err
	}
	n := 0
	for {
		k, err := d.Next()
		if err == io.EOF {
			return h, n, nil
		}
		if err != nil {
			return h, n, err
		}
		// Every accepted event must already satisfy the trace validator and
		// carry its launch index as ID.
		if err := k.Validate(); err != nil {
			t.Fatalf("accepted event fails validation: %v", err)
		}
		if k.ID < 0 || k.ID >= h.Kernels {
			t.Fatalf("accepted event with out-of-range launch %d", k.ID)
		}
		n++
	}
}

// FuzzStreamEvents fuzzes the NDJSON kernel-event decoder: any byte input
// must either decode into bounded, fully-validated events or return an
// error — mirroring the FuzzLoadWorkloadJSON hardening contract.
func FuzzStreamEvents(f *testing.F) {
	for _, s := range streamSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := drainStream(t, data)
		if err != nil {
			return
		}
		if h.Kernels < 1 || h.Kernels > MaxJSONKernels {
			t.Fatalf("accepted header with out-of-bounds kernel count %d", h.Kernels)
		}
		if n > h.Kernels {
			t.Fatalf("decoded %d events from a stream declaring %d", n, h.Kernels)
		}
	})
}

// TestStreamSeedCorpus pins which seeds must decode cleanly and which must
// error.
func TestStreamSeedCorpus(t *testing.T) {
	for i, s := range streamSeeds {
		h, n, err := drainStream(t, []byte(s))
		if i == 0 {
			if err != nil {
				t.Fatalf("valid seed rejected: %v", err)
			}
			if n != 2 || h.Suite != "mine" || h.Name != "pipe" {
				t.Fatalf("valid seed decoded as %s/%s with %d events", h.Suite, h.Name, n)
			}
			continue
		}
		if err == nil {
			t.Errorf("malformed seed %d accepted:\n%s", i, s)
		}
	}
}

// TestStreamRoundTrip pins the core streaming invariant: WriteEvents
// followed by a full decode reproduces every KernelDesc exactly, so a
// replayed stream is indistinguishable from the generator workload.
func TestStreamRoundTrip(t *testing.T) {
	src := Find("Rodinia/gauss_208")
	if src == nil {
		t.Fatal("Rodinia/gauss_208 not registered")
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, src); err != nil {
		t.Fatal(err)
	}
	d := NewEventDecoder(bytes.NewReader(buf.Bytes()))
	h, err := d.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.Suite != src.Suite || h.Name != src.Name || h.Kernels != src.N {
		t.Fatalf("header %+v does not match workload %s (N=%d)", h, src.FullName(), src.N)
	}
	descs := make([]trace.KernelDesc, h.Kernels)
	for {
		k, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		descs[k.ID] = k
	}
	if d.Missing() != 0 {
		t.Fatalf("%d launches missing after full stream", d.Missing())
	}
	for i, k := range descs {
		if want := src.Kernel(i); k != want {
			t.Fatalf("launch %d round-tripped as %+v, want %+v", i, k, want)
		}
	}
	// And the reconstructed workload serves identical kernels by index.
	rebuilt, err := FromKernels(h.Suite, h.Name, descs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rebuilt.N; i++ {
		if got, want := rebuilt.Kernel(i), src.Kernel(i); got != want {
			t.Fatalf("rebuilt kernel %d differs", i)
		}
	}
}
