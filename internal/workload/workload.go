// Package workload synthesizes the 147 GPU workloads the paper studies
// across six suites: Rodinia, Parboil, Polybench, CUTLASS, DeepBench, and
// MLPerf. Real CUDA binaries cannot run here, so each workload reproduces
// the *kernel-launch structure* of its namesake — how many kernels launch,
// with what grid/block shapes, instruction mixes, coalescing, divergence
// and imbalance — which is the only thing Principal Kernel Analysis ever
// observes (see DESIGN.md for the substitution argument).
//
// Workloads are index-generated: kernel i is produced on demand, so
// MLPerf-style applications with hundreds of thousands of launches stream
// in O(1) memory through profiling, classification, and execution.
package workload

import (
	"fmt"

	"pka/internal/trace"
)

// Workload is one benchmark application: a named, deterministic stream of
// kernel launches.
type Workload struct {
	Suite string
	Name  string
	// N is the number of kernel launches.
	N int
	// Gen produces the i-th kernel (0 <= i < N). Implementations need not
	// set ID; the accessors stamp it.
	Gen func(i int) trace.KernelDesc
	// Quirk marks workloads whose profiling and tracing runs launch
	// mismatched kernel sequences on real systems, which the paper
	// excludes from some result columns ("*" cells in Table 4):
	//
	//	"trace-mismatch"       — myocyte: tracing ran a different kernel count
	//	"cudnn-autotune"       — DeepBench conv training (CUDA): the profiler
	//	                         perturbs cudnnFind* algorithm choice, so no
	//	                         simulation columns exist
	//	"cudnn-autotune-tc"    — DeepBench conv training (TensorCore): same
	//	                         effect on Turing/Ampere silicon runs
	Quirk string
}

// FullName returns "suite/name".
func (w *Workload) FullName() string { return w.Suite + "/" + w.Name }

// Kernel returns launch i with its ID stamped. It panics on out-of-range
// indices, which indicate a harness bug.
func (w *Workload) Kernel(i int) trace.KernelDesc {
	if i < 0 || i >= w.N {
		panic(fmt.Sprintf("workload %s: kernel index %d out of range [0,%d)", w.FullName(), i, w.N))
	}
	k := w.Gen(i)
	k.ID = i
	return k
}

// Iterator returns a fresh streaming cursor over the launches. Each call
// restarts from kernel 0; the cursor returns nil at end of stream.
func (w *Workload) Iterator() func() *trace.KernelDesc {
	i := 0
	return func() *trace.KernelDesc {
		if i >= w.N {
			return nil
		}
		k := w.Kernel(i)
		i++
		return &k
	}
}

// Kernels materializes every launch. Intended for the classic suites;
// MLPerf-scale workloads should stream via Iterator.
func (w *Workload) Kernels() []trace.KernelDesc {
	out := make([]trace.KernelDesc, w.N)
	for i := range out {
		out[i] = w.Kernel(i)
	}
	return out
}

// ApproxWarpInstructions sums Volta-ISA warp instructions across launches,
// stopping once the sum exceeds limit (returning limit+1 semantics: any
// value > limit means "at least this big"). Use it to decide full-
// simulation feasibility without walking millions of kernels.
func (w *Workload) ApproxWarpInstructions(limit int64) int64 {
	var sum int64
	for i := 0; i < w.N; i++ {
		k := w.Kernel(i)
		warps := int64(k.Grid.Count()) * int64(k.WarpsPerBlock())
		sum += warps * int64(k.Mix.Total())
		if sum > limit {
			return sum
		}
	}
	return sum
}

// Validate checks every kernel of the workload (capped at the first
// maxKernels to keep huge streams cheap; pass 0 to check everything).
func (w *Workload) Validate(maxKernels int) error {
	n := w.N
	if maxKernels > 0 && n > maxKernels {
		n = maxKernels
	}
	for i := 0; i < n; i++ {
		k := w.Kernel(i)
		if err := k.Validate(); err != nil {
			return fmt.Errorf("workload %s kernel %d: %w", w.FullName(), i, err)
		}
	}
	return nil
}

// All returns every workload in the study, grouped suite by suite in the
// order the paper's Table 4 lists them. The slice is freshly allocated;
// callers may reorder it.
func All() []*Workload {
	var out []*Workload
	out = append(out, Rodinia()...)
	out = append(out, Parboil()...)
	out = append(out, Polybench()...)
	out = append(out, Cutlass()...)
	out = append(out, DeepBench()...)
	out = append(out, MLPerf()...)
	return out
}

// BySuite returns the workloads of one suite ("Rodinia", "Parboil",
// "Polybench", "Cutlass", "DeepBench", "MLPerf"), or nil for an unknown
// suite name.
func BySuite(suite string) []*Workload {
	switch suite {
	case "Rodinia":
		return Rodinia()
	case "Parboil":
		return Parboil()
	case "Polybench":
		return Polybench()
	case "Cutlass":
		return Cutlass()
	case "DeepBench":
		return DeepBench()
	case "MLPerf":
		return MLPerf()
	default:
		return nil
	}
}

// Find returns the workload with the given full name ("suite/name"), or
// nil if absent.
func Find(fullName string) *Workload {
	for _, w := range All() {
		if w.FullName() == fullName {
			return w
		}
	}
	return nil
}
