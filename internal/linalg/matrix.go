// Package linalg implements the dense linear algebra the selection pipeline
// needs: row-major matrices, covariance, a Jacobi eigensolver for symmetric
// matrices, and principal component analysis with feature standardization.
// Everything is written against the standard library only.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows×cols matrix. It panics on non-positive
// dimensions, which indicate a programming error rather than bad data.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m × other, or an error on shape mismatch.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			ok := other.Row(k)
			for j := 0; j < other.Cols; j++ {
				oi[j] += a * ok[j]
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// ColMeans returns the mean of each column.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// ColStdDevs returns the population standard deviation of each column.
func (m *Matrix) ColStdDevs() []float64 {
	means := m.ColMeans()
	sds := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - means[j]
			sds[j] += d * d
		}
	}
	for j := range sds {
		sds[j] = math.Sqrt(sds[j] / float64(m.Rows))
	}
	return sds
}

// Covariance returns the Cols×Cols sample covariance matrix of the rows of
// m (dividing by N-1; with a single row it divides by 1 and is all zeros).
func (m *Matrix) Covariance() *Matrix {
	means := m.ColMeans()
	cov := NewMatrix(m.Cols, m.Cols)
	denom := float64(m.Rows - 1)
	if denom < 1 {
		denom = 1
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := 0; i < m.Cols; i++ {
			di := row[i] - means[i]
			if di == 0 {
				continue
			}
			ci := cov.Row(i)
			for j := i; j < m.Cols; j++ {
				ci[j] += di * (row[j] - means[j])
			}
		}
	}
	for i := 0; i < m.Cols; i++ {
		for j := i; j < m.Cols; j++ {
			v := cov.At(i, j) / denom
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// Standardize returns a copy of m with each column shifted to zero mean and
// scaled to unit standard deviation. Constant columns (zero stddev) are
// left centered but unscaled, so uninformative profiler metrics cannot blow
// up the PCA with division by zero.
func (m *Matrix) Standardize() *Matrix {
	means := m.ColMeans()
	sds := m.ColStdDevs()
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] -= means[j]
			if sds[j] > 0 {
				row[j] /= sds[j]
			}
		}
	}
	return out
}
