package linalg

import "errors"

// PCA holds a fitted principal component analysis: the standardization
// parameters of the training data and the projection basis. PKA fits a PCA
// over the microarchitecture-agnostic per-kernel feature vectors (Table 2 of
// the paper) and clusters in the reduced space, sidestepping the curse of
// dimensionality that hierarchical approaches like TBPoint suffer from.
type PCA struct {
	Means      []float64 // per-feature training means
	Scales     []float64 // per-feature training stddevs (0 kept as 1)
	Components *Matrix   // features × kept-components, column-major basis
	Explained  []float64 // fraction of variance explained per kept component
}

// FitPCA fits a PCA on the rows of data, keeping the smallest number of
// components whose cumulative explained variance reaches varTarget (e.g.
// 0.9). At least minComponents are always kept (clamped to the feature
// count). The input matrix is standardized internally; callers pass raw
// feature vectors.
func FitPCA(data *Matrix, varTarget float64, minComponents int) (*PCA, error) {
	if data.Rows < 1 {
		return nil, errors.New("linalg: FitPCA needs at least one sample")
	}
	if varTarget <= 0 || varTarget > 1 {
		return nil, errors.New("linalg: varTarget must be in (0, 1]")
	}

	means := data.ColMeans()
	sds := data.ColStdDevs()
	std := data.Standardize()
	cov := std.Covariance()
	vals, vecs, err := EigenSym(cov)
	if err != nil {
		return nil, err
	}

	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	keep := 0
	if total <= 0 {
		// Degenerate data (e.g. a single sample, or identical rows): keep
		// one component so projection is well-defined.
		keep = 1
	} else {
		var cum float64
		for _, v := range vals {
			keep++
			if v > 0 {
				cum += v
			}
			if cum/total >= varTarget {
				break
			}
		}
	}
	if keep < minComponents {
		keep = minComponents
	}
	if keep > data.Cols {
		keep = data.Cols
	}

	comps := NewMatrix(data.Cols, keep)
	explained := make([]float64, keep)
	for k := 0; k < keep; k++ {
		for r := 0; r < data.Cols; r++ {
			comps.Set(r, k, vecs.At(r, k))
		}
		if total > 0 && vals[k] > 0 {
			explained[k] = vals[k] / total
		}
	}

	scales := make([]float64, len(sds))
	for i, s := range sds {
		if s > 0 {
			scales[i] = s
		} else {
			scales[i] = 1
		}
	}
	return &PCA{Means: means, Scales: scales, Components: comps, Explained: explained}, nil
}

// NumComponents returns the number of kept components.
func (p *PCA) NumComponents() int { return p.Components.Cols }

// Transform projects raw feature rows into the principal component space,
// applying the training standardization first.
func (p *PCA) Transform(data *Matrix) (*Matrix, error) {
	if data.Cols != len(p.Means) {
		return nil, errors.New("linalg: PCA feature dimension mismatch")
	}
	out := NewMatrix(data.Rows, p.Components.Cols)
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for k := 0; k < p.Components.Cols; k++ {
			var dot float64
			for j, v := range row {
				dot += (v - p.Means[j]) / p.Scales[j] * p.Components.At(j, k)
			}
			out.Set(i, k, dot)
		}
	}
	return out, nil
}

// TransformRow projects a single raw feature vector.
func (p *PCA) TransformRow(row []float64) ([]float64, error) {
	if len(row) != len(p.Means) {
		return nil, errors.New("linalg: PCA feature dimension mismatch")
	}
	out := make([]float64, p.Components.Cols)
	for k := 0; k < p.Components.Cols; k++ {
		var dot float64
		for j, v := range row {
			dot += (v - p.Means[j]) / p.Scales[j] * p.Components.At(j, k)
		}
		out[k] = dot
	}
	return out, nil
}
