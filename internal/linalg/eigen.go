package linalg

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method. Eigenpairs are returned sorted by
// descending eigenvalue; column k of the returned matrix is the eigenvector
// for values[k]. The input must be square and (numerically) symmetric.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: EigenSym requires a square matrix")
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			scale := math.Max(math.Abs(a.At(i, j)), math.Abs(a.At(j, i)))
			if diff := math.Abs(a.At(i, j) - a.At(j, i)); diff > 1e-8*math.Max(scale, 1) {
				return nil, nil, errors.New("linalg: EigenSym requires a symmetric matrix")
			}
		}
	}

	w := a.Clone() // working copy, destroyed by rotations
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for k, p := range pairs {
		values[k] = p.val
		for r := 0; r < n; r++ {
			vectors.Set(r, k, v.At(r, p.col))
		}
	}
	return values, vectors, nil
}
