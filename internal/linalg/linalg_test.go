package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"pka/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("Set/At round-trip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original storage")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row should be a view, not a copy")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil || m.At(1, 0) != 3 {
		t.Fatalf("FromRows failed: %v", err)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
}

func TestColMeansAndStdDevs(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 10}})
	means := m.ColMeans()
	if !approx(means[0], 2, 1e-12) || !approx(means[1], 10, 1e-12) {
		t.Errorf("ColMeans = %v", means)
	}
	sds := m.ColStdDevs()
	if !approx(sds[0], 1, 1e-12) || sds[1] != 0 {
		t.Errorf("ColStdDevs = %v", sds)
	}
}

func TestCovariance(t *testing.T) {
	// Perfectly correlated columns.
	m, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := m.Covariance()
	if !approx(cov.At(0, 0), 1, 1e-12) {
		t.Errorf("var(x) = %v, want 1", cov.At(0, 0))
	}
	if !approx(cov.At(0, 1), 2, 1e-12) || !approx(cov.At(1, 0), 2, 1e-12) {
		t.Errorf("cov(x,y) = %v, want 2 (symmetric)", cov.At(0, 1))
	}
	if !approx(cov.At(1, 1), 4, 1e-12) {
		t.Errorf("var(y) = %v, want 4", cov.At(1, 1))
	}
}

func TestStandardize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 5}, {3, 5}, {5, 5}})
	s := m.Standardize()
	means := s.ColMeans()
	if !approx(means[0], 0, 1e-12) || !approx(means[1], 0, 1e-12) {
		t.Errorf("standardized means = %v", means)
	}
	sds := s.ColStdDevs()
	if !approx(sds[0], 1, 1e-12) {
		t.Errorf("standardized stddev = %v, want 1", sds[0])
	}
	// Constant column stays constant (no NaN).
	for i := 0; i < 3; i++ {
		if math.IsNaN(s.At(i, 1)) {
			t.Fatal("constant column produced NaN")
		}
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-9) || !approx(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector should align with e1.
	if !approx(math.Abs(vecs.At(0, 0)), 1, 1e-9) || !approx(vecs.At(1, 0), 0, 1e-9) {
		t.Errorf("first eigenvector = [%v %v]", vecs.At(0, 0), vecs.At(1, 0))
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-9) || !approx(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Verify A v = λ v for each pair.
	for k := 0; k < 2; k++ {
		for r := 0; r < 2; r++ {
			av := m.At(r, 0)*vecs.At(0, k) + m.At(r, 1)*vecs.At(1, k)
			if !approx(av, vals[k]*vecs.At(r, k), 1e-8) {
				t.Errorf("A·v != λ·v for pair %d row %d", k, r)
			}
		}
	}
}

func TestEigenSymRejectsNonSquareAndAsymmetric(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	m, _ := FromRows([][]float64{{1, 5}, {0, 1}})
	if _, _, err := EigenSym(m); err == nil {
		t.Error("asymmetric accepted")
	}
}

// Property: for random symmetric matrices, eigendecomposition reconstructs
// the matrix: A ≈ V diag(λ) Vᵀ, eigenvalues are sorted descending, and
// eigenvectors are orthonormal.
func TestEigenSymReconstructionProperty(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-9 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
		// Orthonormality.
		for c1 := 0; c1 < n; c1++ {
			for c2 := c1; c2 < n; c2++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += vecs.At(r, c1) * vecs.At(r, c2)
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if !approx(dot, want, 1e-7) {
					t.Fatalf("eigenvector columns %d,%d not orthonormal: %v", c1, c2, dot)
				}
			}
		}
		// Reconstruction.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += vecs.At(i, k) * vals[k] * vecs.At(j, k)
				}
				if !approx(sum, a.At(i, j), 1e-6) {
					t.Fatalf("reconstruction mismatch at (%d,%d): %v vs %v", i, j, sum, a.At(i, j))
				}
			}
		}
	}
}

func TestFitPCAOnCorrelatedData(t *testing.T) {
	rng := stats.NewRNG(7)
	rows := make([][]float64, 200)
	for i := range rows {
		x := rng.NormFloat64()
		// Second feature nearly duplicates the first; third is noise.
		rows[i] = []float64{x, 2*x + 0.01*rng.NormFloat64(), rng.NormFloat64() * 0.1}
	}
	m, _ := FromRows(rows)
	p, err := FitPCA(m, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumComponents() < 1 || p.NumComponents() > 3 {
		t.Fatalf("components = %d", p.NumComponents())
	}
	if p.Explained[0] < 0.5 {
		t.Errorf("first component explains only %v of variance", p.Explained[0])
	}
	proj, err := p.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Rows != 200 || proj.Cols != p.NumComponents() {
		t.Errorf("projection shape %dx%d", proj.Rows, proj.Cols)
	}
}

func TestPCATransformRowMatchesTransform(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}, {0, 1, 2}}
	m, _ := FromRows(rows)
	p, err := FitPCA(m, 0.99, 2)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := p.Transform(m)
	for i, r := range rows {
		single, err := p.TransformRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for k := range single {
			if !approx(single[k], all.At(i, k), 1e-9) {
				t.Fatalf("TransformRow mismatch at row %d comp %d", i, k)
			}
		}
	}
	if _, err := p.TransformRow([]float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFitPCADegenerate(t *testing.T) {
	// Identical rows: zero variance everywhere.
	m, _ := FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	p, err := FitPCA(m, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < proj.Rows; i++ {
		for j := 0; j < proj.Cols; j++ {
			if math.IsNaN(proj.At(i, j)) {
				t.Fatal("degenerate PCA produced NaN")
			}
		}
	}
	if _, err := FitPCA(m, 0, 1); err == nil {
		t.Error("varTarget 0 accepted")
	}
}

// Property: PCA projection preserves pairwise distances when all components
// are kept (it is an orthogonal transform of the standardized data).
func TestPCAIsometryProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := stats.NewRNG(uint64(seed))
		n, d := 20, 4
		m := NewMatrix(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		p, err := FitPCA(m, 1.0, d)
		if err != nil || p.NumComponents() != d {
			return false
		}
		std := m.Standardize()
		proj, err := p.Transform(m)
		if err != nil {
			return false
		}
		for a := 0; a < 5; a++ {
			for b := a + 1; b < 5; b++ {
				var d1, d2 float64
				for j := 0; j < d; j++ {
					diff := std.At(a, j) - std.At(b, j)
					d1 += diff * diff
					diff2 := proj.At(a, j) - proj.At(b, j)
					d2 += diff2 * diff2
				}
				if !approx(d1, d2, 1e-6*(d1+1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
