// Package silicon stands in for real GPU hardware. The paper validates
// Principal Kernel Analysis against silicon measurements from a V100, an
// RTX 2060, and an RTX 3070; this environment has none of those, so the
// repository substitutes a fast analytical performance model (documented in
// DESIGN.md). The model plays silicon's three roles exactly:
//
//  1. It is fast — evaluating a kernel costs nanoseconds, so full-scale
//     workloads with millions of launches "execute" in seconds, just as
//     hardware does.
//  2. It is the ground truth — per-kernel cycles from this model are what
//     the profiler reports and what every error percentage in the
//     experiment tables is computed against.
//  3. It is architecture-sensitive — SM count, clocks, bandwidth, cache
//     sizes, and per-generation ISA scaling all shift its output, so the
//     cross-generation and SM-halving case studies are meaningful.
//
// The cycle-level simulator (internal/sim) is an independent model of the
// same machine; the disagreement between the two is this repository's
// analogue of Accel-Sim's error versus silicon, and it is emergent rather
// than injected.
package silicon

import (
	"fmt"
	"math"

	"pka/internal/gpu"
	"pka/internal/trace"
)

// Result describes one kernel execution on the modeled hardware.
type Result struct {
	Cycles       int64
	TimeSeconds  float64
	ThreadInstrs float64
	IPC          float64
	DRAMUtil     float64
	L2MissRate   float64
}

// KernelLaunchOverheadCycles models the driver/runtime gap between
// consecutive kernel launches (a few microseconds on real systems).
const KernelLaunchOverheadCycles = 2500

// ExecuteKernel evaluates one kernel on the device. It returns an error if
// the kernel is invalid or cannot be scheduled.
func ExecuteKernel(dev gpu.Device, k *trace.KernelDesc) (Result, error) {
	if err := k.Validate(); err != nil {
		return Result{}, err
	}
	occ := dev.ComputeOccupancy(k.Resources())
	if occ.BlocksPerSM == 0 {
		return Result{}, fmt.Errorf("silicon: kernel %q does not fit on %s", k.Name, dev.Name)
	}

	wpb := k.WarpsPerBlock()
	blocks := k.Grid.Count()
	waveBlocks := occ.BlocksPerSM * dev.NumSMs
	fullWaves := blocks / waveBlocks
	partial := float64(blocks%waveBlocks) / float64(waveBlocks)

	warpInstrPerBlock := float64(wpb) * float64(k.Mix.Total()) * dev.ISAScale

	// --- Compute side: issue-throughput bound per SM, derated when too
	// few warps are resident to hide ALU latency, and when divergence
	// serializes the pipeline.
	warpsPerSM := float64(occ.WarpsPerSM)
	issueEff := warpsPerSM / float64(dev.SchedulersPerSM*dev.ALULatencyCycles)
	if issueEff > 1 {
		issueEff = 1
	}
	divPenalty := 1 + 0.25*(1-k.DivergenceEff)
	computeWave := float64(occ.BlocksPerSM) * warpInstrPerBlock /
		(float64(dev.SchedulersPerSM) * issueEff) * divPenalty

	// --- Memory side: DRAM traffic per wave through the cache hierarchy.
	sectorBytes := 32.0
	lineBytes := float64(dev.CacheLineBytes)
	globalOpsPerBlock := float64(wpb) * float64(k.Mix.GlobalOps()) * dev.ISAScale
	// Warp-level accesses split into a strided stream (whole lines) and a
	// scattered remainder (individual sectors).
	linesStrided := math.Max(1, k.CoalescingFactor*sectorBytes/lineBytes)
	l2ReqPerBlock := globalOpsPerBlock *
		(k.StridedFraction*linesStrided + (1-k.StridedFraction)*k.CoalescingFactor)

	ws := float64(k.WorkingSetBytes)
	if ws < lineBytes {
		ws = lineBytes
	}
	// Temporal reuse captured by each cache level; streaming (strided)
	// access defeats L1 temporal reuse at line granularity.
	l1Reuse := math.Min(1, float64(dev.L1SizeBytes)/ws) * (0.6 + 0.3*(1-k.StridedFraction))
	l1Miss := clamp01(1 - l1Reuse)
	l2Reuse := math.Min(1, float64(dev.L2SizeBytes)/ws) * 0.9
	l2Miss := clamp01(1 - l2Reuse)

	bytesPerReq := k.StridedFraction*lineBytes + (1-k.StridedFraction)*sectorBytes
	dramBytesPerBlock := l2ReqPerBlock * l1Miss * l2Miss * bytesPerReq
	memWave := float64(waveBlocks) * dramBytesPerBlock / dev.BytesPerCycle()

	// --- Wave time: the binding resource plus a latency ramp that the
	// first accesses of each wave expose.
	ramp := float64(dev.DRAMLatency + 100)
	waveCycles := math.Max(computeWave, memWave) + ramp

	// Straggler tail from per-block work imbalance.
	waveCycles *= 1 + 0.45*k.BlockImbalance

	total := float64(fullWaves)*waveCycles + 1500 // launch/drain overhead
	if partial > 0 {
		// A partial wave still pays the ramp but scales the throughput
		// portion by its occupancy of the machine.
		total += math.Max(computeWave*partial, memWave*partial) + ramp*(1+0.45*k.BlockImbalance)
	}

	cycles := int64(total)
	threadInstrs := float64(k.Threads()) * float64(k.Mix.Total()) * dev.ISAScale * k.DivergenceEff
	res := Result{
		Cycles:       cycles,
		TimeSeconds:  total / (float64(dev.CoreClockMHz) * 1e6),
		ThreadInstrs: threadInstrs,
		L2MissRate:   l1Miss * l2Miss,
		DRAMUtil:     math.Min(1, memWave/waveCycles),
	}
	if cycles > 0 {
		res.IPC = threadInstrs / float64(cycles)
	}
	return res, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// AppResult aggregates a whole application execution on silicon.
type AppResult struct {
	Kernels      int
	Cycles       int64 // kernel cycles plus launch overheads
	TimeSeconds  float64
	ThreadInstrs float64
}

// ExecuteAll runs every kernel produced by next (which returns nil at the
// end of the stream) and accumulates application totals, charging the
// launch overhead between kernels. It is the "run it on hardware" path
// used to establish ground-truth totals for full-scale workloads.
func ExecuteAll(dev gpu.Device, next func() *trace.KernelDesc) (AppResult, error) {
	var app AppResult
	for k := next(); k != nil; k = next() {
		r, err := ExecuteKernel(dev, k)
		if err != nil {
			return AppResult{}, fmt.Errorf("silicon: kernel %d: %w", app.Kernels, err)
		}
		app.Kernels++
		app.Cycles += r.Cycles + KernelLaunchOverheadCycles
		app.ThreadInstrs += r.ThreadInstrs
	}
	app.TimeSeconds = float64(app.Cycles) / (float64(dev.CoreClockMHz) * 1e6)
	return app, nil
}
