package silicon

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/sim"
	"pka/internal/trace"
)

func kern(blocks, compute, loads int, ws int64, strided float64) trace.KernelDesc {
	return trace.KernelDesc{
		Name: "k", Grid: trace.D1(blocks), Block: trace.D1(256),
		Mix:              trace.InstrMix{Compute: compute, GlobalLoads: loads},
		CoalescingFactor: 4, WorkingSetBytes: ws, StridedFraction: strided,
		DivergenceEff: 1, Seed: 1,
	}
}

func TestExecuteKernelBasics(t *testing.T) {
	k := kern(640, 200, 4, 1<<20, 0.8)
	r, err := ExecuteKernel(gpu.VoltaV100(), &k)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.TimeSeconds <= 0 || r.IPC <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
	if r.DRAMUtil < 0 || r.DRAMUtil > 1 || r.L2MissRate < 0 || r.L2MissRate > 1 {
		t.Errorf("rates out of range: %+v", r)
	}
}

func TestExecuteKernelRejectsBadInput(t *testing.T) {
	k := kern(10, 10, 1, 1<<20, 0.5)
	k.DivergenceEff = 2
	if _, err := ExecuteKernel(gpu.VoltaV100(), &k); err == nil {
		t.Error("invalid kernel accepted")
	}
	k2 := kern(10, 10, 1, 1<<20, 0.5)
	k2.SharedMemPerBlock = 1 << 30
	if _, err := ExecuteKernel(gpu.VoltaV100(), &k2); err == nil {
		t.Error("unschedulable kernel accepted")
	}
}

func TestMoreWorkMoreCycles(t *testing.T) {
	small := kern(80, 100, 2, 1<<20, 0.9)
	big := kern(8000, 100, 2, 1<<20, 0.9)
	rs, err := ExecuteKernel(gpu.VoltaV100(), &small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ExecuteKernel(gpu.VoltaV100(), &big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Cycles <= rs.Cycles*10 {
		t.Errorf("100x blocks gave %d vs %d cycles", rb.Cycles, rs.Cycles)
	}
}

func TestV100BeatsRTX2060(t *testing.T) {
	k := kern(4000, 150, 20, 256<<20, 0.4)
	v, err := ExecuteKernel(gpu.VoltaV100(), &k)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := ExecuteKernel(gpu.TuringRTX2060(), &k)
	if err != nil {
		t.Fatal(err)
	}
	if tu.TimeSeconds <= v.TimeSeconds {
		t.Errorf("2060 (%.2g s) should be slower than V100 (%.2g s)", tu.TimeSeconds, v.TimeSeconds)
	}
}

func TestSMHalvingHurtsComputeNotBandwidth(t *testing.T) {
	dev := gpu.VoltaV100()
	half := dev.WithSMs(40)

	compute := kern(6400, 400, 1, 1<<20, 1)
	cf, _ := ExecuteKernel(dev, &compute)
	ch, _ := ExecuteKernel(half, &compute)
	cSpeed := float64(ch.Cycles) / float64(cf.Cycles)
	if cSpeed < 1.6 {
		t.Errorf("compute-bound SM-halving slowdown = %.2f, want ~2", cSpeed)
	}

	memory := kern(6400, 5, 40, 1<<30, 0.2)
	mf, _ := ExecuteKernel(dev, &memory)
	mh, _ := ExecuteKernel(half, &memory)
	mSpeed := float64(mh.Cycles) / float64(mf.Cycles)
	if mSpeed > 1.3 {
		t.Errorf("bandwidth-bound SM-halving slowdown = %.2f, want ~1", mSpeed)
	}
}

func TestCacheFootprintMatters(t *testing.T) {
	inCache := kern(640, 20, 20, 512<<10, 0.5) // fits in L2
	streaming := kern(640, 20, 20, 1<<30, 0.5) // far exceeds L2
	ri, _ := ExecuteKernel(gpu.VoltaV100(), &inCache)
	rs, _ := ExecuteKernel(gpu.VoltaV100(), &streaming)
	if ri.L2MissRate >= rs.L2MissRate {
		t.Errorf("L2 miss: in-cache %.2f vs streaming %.2f", ri.L2MissRate, rs.L2MissRate)
	}
	if ri.Cycles >= rs.Cycles {
		t.Errorf("cycles: in-cache %d vs streaming %d", ri.Cycles, rs.Cycles)
	}
}

func TestImbalanceExtendsRuntime(t *testing.T) {
	reg := kern(640, 100, 5, 1<<24, 0.5)
	irr := reg
	irr.BlockImbalance = 1.2
	rr, _ := ExecuteKernel(gpu.VoltaV100(), &reg)
	ri, _ := ExecuteKernel(gpu.VoltaV100(), &irr)
	if ri.Cycles <= rr.Cycles {
		t.Error("imbalanced kernel should be slower")
	}
}

func TestISAScaleShiftsInstrCounts(t *testing.T) {
	k := kern(320, 100, 5, 1<<20, 0.8)
	v, _ := ExecuteKernel(gpu.VoltaV100(), &k)
	a, _ := ExecuteKernel(gpu.AmpereRTX3070(), &k)
	if a.ThreadInstrs <= v.ThreadInstrs {
		t.Error("Ampere ISA scale should raise instruction counts")
	}
}

func TestExecuteAll(t *testing.T) {
	ks := []trace.KernelDesc{kern(80, 50, 2, 1<<20, 0.9), kern(160, 80, 4, 1<<22, 0.7)}
	i := 0
	next := func() *trace.KernelDesc {
		if i >= len(ks) {
			return nil
		}
		k := &ks[i]
		i++
		return k
	}
	app, err := ExecuteAll(gpu.VoltaV100(), next)
	if err != nil {
		t.Fatal(err)
	}
	if app.Kernels != 2 {
		t.Errorf("kernels = %d", app.Kernels)
	}
	r0, _ := ExecuteKernel(gpu.VoltaV100(), &ks[0])
	r1, _ := ExecuteKernel(gpu.VoltaV100(), &ks[1])
	want := r0.Cycles + r1.Cycles + 2*KernelLaunchOverheadCycles
	if app.Cycles != want {
		t.Errorf("app cycles = %d, want %d", app.Cycles, want)
	}
	if app.TimeSeconds <= 0 {
		t.Error("zero app time")
	}
}

func TestExecuteAllPropagatesErrors(t *testing.T) {
	bad := kern(10, 10, 1, 1<<20, 0.5)
	bad.CoalescingFactor = 0
	served := false
	next := func() *trace.KernelDesc {
		if served {
			return nil
		}
		served = true
		return &bad
	}
	if _, err := ExecuteAll(gpu.VoltaV100(), next); err == nil {
		t.Error("invalid kernel not reported")
	}
}

// The load-bearing property of the whole reproduction: the analytical
// silicon model and the cycle-level simulator must broadly agree (they are
// two models of the same machine). The paper's Accel-Sim baseline shows
// ~27% mean error vs silicon; we accept a correlated relationship here and
// measure the actual error distribution in the experiments.
func TestSiliconTracksSimulator(t *testing.T) {
	kernels := []trace.KernelDesc{
		kern(640, 300, 3, 1<<20, 0.9),  // compute bound
		kern(640, 10, 40, 1<<30, 0.2),  // bandwidth bound
		kern(640, 60, 12, 16<<20, 0.6), // mixed
		kern(100, 150, 6, 4<<20, 0.8),  // partial wave
	}
	var silMax, simMax int
	var silBest, simBest int64
	for i := range kernels {
		k := kernels[i]
		k.Seed = uint64(i + 10)
		sil, err := ExecuteKernel(gpu.VoltaV100(), &k)
		if err != nil {
			t.Fatal(err)
		}
		simr, err := sim.New(gpu.VoltaV100()).RunKernel(&k, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(simr.Cycles) / float64(sil.Cycles)
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("kernel %d: simulator %d vs silicon %d cycles (ratio %.2f) — models diverged",
				i, simr.Cycles, sil.Cycles, ratio)
		}
		if sil.Cycles > silBest {
			silBest, silMax = sil.Cycles, i
		}
		if simr.Cycles > simBest {
			simBest, simMax = simr.Cycles, i
		}
	}
	// The two models must also agree on which kernel is the slowest.
	if silMax != simMax {
		t.Errorf("slowest kernel disagreement: silicon says %d, simulator says %d", silMax, simMax)
	}
}
