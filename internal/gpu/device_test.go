package gpu

import (
	"strings"
	"testing"
)

func TestDeviceConfigsSane(t *testing.T) {
	for _, d := range []Device{VoltaV100(), TuringRTX2060(), AmpereRTX3070()} {
		if d.NumSMs <= 0 || d.CoreClockMHz <= 0 || d.WarpSize != 32 {
			t.Errorf("%s: bad basic config %+v", d.Name, d)
		}
		if d.MaxWarpsPerSM*d.WarpSize < d.MaxThreadsPerSM {
			t.Errorf("%s: warp capacity %d below thread capacity %d",
				d.Name, d.MaxWarpsPerSM*d.WarpSize, d.MaxThreadsPerSM)
		}
		if d.ISAScale < 0.9 || d.ISAScale > 1.1 {
			t.Errorf("%s: implausible ISA scale %v", d.Name, d.ISAScale)
		}
		if d.BytesPerCycle() <= 0 {
			t.Errorf("%s: non-positive DRAM bytes/cycle", d.Name)
		}
	}
}

func TestGenerationString(t *testing.T) {
	if Volta.String() != "Volta" || Turing.String() != "Turing" || Ampere.String() != "Ampere" {
		t.Error("generation names wrong")
	}
	if !strings.Contains(Generation(9).String(), "9") {
		t.Error("unknown generation should include its number")
	}
}

func TestVoltaOutranksTuring(t *testing.T) {
	v, tu := VoltaV100(), TuringRTX2060()
	if v.NumSMs <= tu.NumSMs {
		t.Error("V100 should have more SMs than RTX 2060")
	}
	if v.DRAMBandwidthGBs <= tu.DRAMBandwidthGBs {
		t.Error("V100 should have more bandwidth than RTX 2060")
	}
}

func TestComputeOccupancyThreadLimited(t *testing.T) {
	d := VoltaV100()
	occ := d.ComputeOccupancy(KernelResources{ThreadsPerBlock: 1024})
	if occ.BlocksPerSM != 2 {
		t.Errorf("1024-thread blocks: %d blocks/SM, want 2", occ.BlocksPerSM)
	}
	if occ.LimitedBy != "threads" && occ.LimitedBy != "warps" {
		t.Errorf("limited by %q", occ.LimitedBy)
	}
	if occ.ThreadsPerSM != 2048 {
		t.Errorf("threads/SM = %d", occ.ThreadsPerSM)
	}
}

func TestComputeOccupancyRegisterLimited(t *testing.T) {
	d := VoltaV100()
	// 256 regs/thread * 256 threads = 65536 regs = exactly one block.
	occ := d.ComputeOccupancy(KernelResources{ThreadsPerBlock: 256, RegsPerThread: 256})
	if occ.BlocksPerSM != 1 || occ.LimitedBy != "registers" {
		t.Errorf("occ = %+v, want 1 block limited by registers", occ)
	}
}

func TestComputeOccupancySmemLimited(t *testing.T) {
	d := VoltaV100()
	occ := d.ComputeOccupancy(KernelResources{ThreadsPerBlock: 64, SharedMemPerBlock: 48 * 1024})
	if occ.BlocksPerSM != 2 || occ.LimitedBy != "smem" {
		t.Errorf("occ = %+v, want 2 blocks limited by smem", occ)
	}
}

func TestComputeOccupancyBlockLimited(t *testing.T) {
	d := VoltaV100()
	occ := d.ComputeOccupancy(KernelResources{ThreadsPerBlock: 32})
	if occ.BlocksPerSM != d.MaxBlocksPerSM || occ.LimitedBy != "blocks" {
		t.Errorf("tiny blocks: %+v", occ)
	}
}

func TestComputeOccupancyOversizedBlock(t *testing.T) {
	d := VoltaV100()
	// A block demanding more shared memory than the SM owns cannot run.
	occ := d.ComputeOccupancy(KernelResources{ThreadsPerBlock: 128, SharedMemPerBlock: d.SharedMemPerSM + 1})
	if occ.BlocksPerSM != 0 {
		t.Errorf("oversized block got %d blocks/SM", occ.BlocksPerSM)
	}
	occ = d.ComputeOccupancy(KernelResources{ThreadsPerBlock: 0})
	if occ.BlocksPerSM != 0 {
		t.Error("zero-thread block should not be schedulable")
	}
}

func TestWaveSize(t *testing.T) {
	d := VoltaV100()
	w := d.WaveSize(KernelResources{ThreadsPerBlock: 1024})
	if w != 2*d.NumSMs {
		t.Errorf("wave = %d, want %d", w, 2*d.NumSMs)
	}
}

func TestWithSMs(t *testing.T) {
	d := VoltaV100()
	half := d.WithSMs(40)
	if half.NumSMs != 40 {
		t.Errorf("NumSMs = %d", half.NumSMs)
	}
	if half.L2SizeBytes != d.L2SizeBytes || half.DRAMBandwidthGBs != d.DRAMBandwidthGBs {
		t.Error("MPS masking should not change memory-system resources")
	}
	if !strings.Contains(half.Name, "40") {
		t.Errorf("name %q should mention SM count", half.Name)
	}
	if d.WithSMs(0).NumSMs != 1 {
		t.Error("WithSMs clamps low to 1")
	}
	if d.WithSMs(10000).NumSMs != d.NumSMs {
		t.Error("WithSMs clamps high to device size")
	}
	if d.NumSMs != 80 {
		t.Error("WithSMs mutated the receiver")
	}
}
