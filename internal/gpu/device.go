// Package gpu models the hardware platforms the paper evaluates on: the
// Volta V100, Turing RTX 2060, and Ampere RTX 3070, plus the occupancy
// rules that determine how many thread blocks can be resident on a
// streaming multiprocessor at once. Occupancy is load-bearing for PKA: a
// "wave" — the number of blocks that fill the GPU — is both the unit of
// Principal Kernel Projection's stability constraint and the denominator of
// its cycle projection.
package gpu

import "fmt"

// Generation enumerates the NVIDIA architecture generations studied.
type Generation int

// Architecture generations, in chronological order.
const (
	Volta Generation = iota
	Turing
	Ampere
)

// String implements fmt.Stringer.
func (g Generation) String() string {
	switch g {
	case Volta:
		return "Volta"
	case Turing:
		return "Turing"
	case Ampere:
		return "Ampere"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// Device describes one GPU model. All capacities are per-SM unless noted.
type Device struct {
	Name       string
	Generation Generation

	NumSMs       int
	CoreClockMHz int
	WarpSize     int

	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	MaxThreadsPerSM int
	RegistersPerSM  int
	SharedMemPerSM  int // bytes

	// Issue structure: schedulers per SM, each issuing one warp
	// instruction per cycle.
	SchedulersPerSM int

	// Memory system.
	L1SizeBytes      int
	L2SizeBytes      int
	CacheLineBytes   int
	DRAMBandwidthGBs float64
	L1LatencyCycles  int
	L2LatencyCycles  int
	DRAMLatency      int // cycles
	ALULatencyCycles int
	SMemLatency      int // shared-memory access latency, cycles

	HasTensorCores bool

	// ISAScale models the paper's observation that different machine-ISA
	// generations execute slightly different instruction counts for the
	// same source program (Section 3.1). Dynamic instruction counts are
	// multiplied by this factor relative to Volta.
	ISAScale float64
}

// VoltaV100 returns the Tesla V100 (SXM2 16GB) configuration, the machine
// Principal Kernel Selection profiles on.
func VoltaV100() Device {
	return Device{
		Name:             "Tesla V100",
		Generation:       Volta,
		NumSMs:           80,
		CoreClockMHz:     1455,
		WarpSize:         32,
		MaxWarpsPerSM:    64,
		MaxBlocksPerSM:   32,
		MaxThreadsPerSM:  2048,
		RegistersPerSM:   65536,
		SharedMemPerSM:   96 * 1024,
		SchedulersPerSM:  4,
		L1SizeBytes:      128 * 1024,
		L2SizeBytes:      6 * 1024 * 1024,
		CacheLineBytes:   128,
		DRAMBandwidthGBs: 900,
		L1LatencyCycles:  28,
		L2LatencyCycles:  193,
		DRAMLatency:      400,
		ALULatencyCycles: 4,
		SMemLatency:      19,
		HasTensorCores:   true,
		ISAScale:         1.0,
	}
}

// TuringRTX2060 returns the GeForce RTX 2060 configuration used for the
// cross-generation silicon validation.
func TuringRTX2060() Device {
	return Device{
		Name:             "RTX 2060",
		Generation:       Turing,
		NumSMs:           30,
		CoreClockMHz:     1680,
		WarpSize:         32,
		MaxWarpsPerSM:    32,
		MaxBlocksPerSM:   16,
		MaxThreadsPerSM:  1024,
		RegistersPerSM:   65536,
		SharedMemPerSM:   64 * 1024,
		SchedulersPerSM:  4,
		L1SizeBytes:      96 * 1024,
		L2SizeBytes:      3 * 1024 * 1024,
		CacheLineBytes:   128,
		DRAMBandwidthGBs: 336,
		L1LatencyCycles:  32,
		L2LatencyCycles:  188,
		DRAMLatency:      420,
		ALULatencyCycles: 4,
		SMemLatency:      21,
		HasTensorCores:   true,
		ISAScale:         0.97,
	}
}

// AmpereRTX3070 returns the GeForce RTX 3070 configuration used for the
// cross-generation silicon validation.
func AmpereRTX3070() Device {
	return Device{
		Name:             "RTX 3070",
		Generation:       Ampere,
		NumSMs:           46,
		CoreClockMHz:     1725,
		WarpSize:         32,
		MaxWarpsPerSM:    48,
		MaxBlocksPerSM:   16,
		MaxThreadsPerSM:  1536,
		RegistersPerSM:   65536,
		SharedMemPerSM:   100 * 1024,
		SchedulersPerSM:  4,
		L1SizeBytes:      128 * 1024,
		L2SizeBytes:      4 * 1024 * 1024,
		CacheLineBytes:   128,
		DRAMBandwidthGBs: 448,
		L1LatencyCycles:  30,
		L2LatencyCycles:  200,
		DRAMLatency:      410,
		ALULatencyCycles: 4,
		SMemLatency:      20,
		HasTensorCores:   true,
		ISAScale:         1.04,
	}
}

// WithSMs returns a copy of the device restricted to n SMs, modeling the
// MPS-based SM masking the paper uses for its 80-vs-40-core case study
// (Figure 10). L2 and DRAM resources are unchanged, matching MPS behaviour.
func (d Device) WithSMs(n int) Device {
	if n < 1 {
		n = 1
	}
	if n > d.NumSMs {
		n = d.NumSMs
	}
	out := d
	out.NumSMs = n
	out.Name = fmt.Sprintf("%s (%d SMs)", d.Name, n)
	return out
}

// BytesPerCycle returns the DRAM bandwidth expressed in bytes per core
// clock cycle, the unit the simulator's DRAM channel model operates in.
func (d Device) BytesPerCycle() float64 {
	return d.DRAMBandwidthGBs * 1e9 / (float64(d.CoreClockMHz) * 1e6)
}

// Occupancy describes how one kernel's blocks map onto an SM.
type Occupancy struct {
	BlocksPerSM  int // resident blocks per SM (>= 1 if the block fits at all)
	WarpsPerSM   int // resident warps per SM
	ThreadsPerSM int
	// LimitedBy names the binding resource: "blocks", "threads", "warps",
	// "registers", or "smem".
	LimitedBy string
}

// KernelResources is the subset of a kernel launch that occupancy depends
// on. It lives here (rather than importing the trace package) so gpu stays
// a leaf dependency.
type KernelResources struct {
	ThreadsPerBlock   int
	RegsPerThread     int
	SharedMemPerBlock int
}

// ComputeOccupancy applies the standard CUDA occupancy rules. A kernel
// whose single block exceeds the SM's resources gets BlocksPerSM == 0.
func (d Device) ComputeOccupancy(k KernelResources) Occupancy {
	if k.ThreadsPerBlock <= 0 {
		return Occupancy{LimitedBy: "threads"}
	}
	warpsPerBlock := (k.ThreadsPerBlock + d.WarpSize - 1) / d.WarpSize

	limit := d.MaxBlocksPerSM
	limitedBy := "blocks"
	if byThreads := d.MaxThreadsPerSM / k.ThreadsPerBlock; byThreads < limit {
		limit, limitedBy = byThreads, "threads"
	}
	if byWarps := d.MaxWarpsPerSM / warpsPerBlock; byWarps < limit {
		limit, limitedBy = byWarps, "warps"
	}
	if k.RegsPerThread > 0 {
		regsPerBlock := k.RegsPerThread * warpsPerBlock * d.WarpSize
		if byRegs := d.RegistersPerSM / regsPerBlock; byRegs < limit {
			limit, limitedBy = byRegs, "registers"
		}
	}
	if k.SharedMemPerBlock > 0 {
		if bySmem := d.SharedMemPerSM / k.SharedMemPerBlock; bySmem < limit {
			limit, limitedBy = bySmem, "smem"
		}
	}
	if limit < 0 {
		limit = 0
	}
	return Occupancy{
		BlocksPerSM:  limit,
		WarpsPerSM:   limit * warpsPerBlock,
		ThreadsPerSM: limit * k.ThreadsPerBlock,
		LimitedBy:    limitedBy,
	}
}

// WaveSize returns the number of thread blocks that fill the whole GPU at
// this kernel's occupancy — the paper's "wave". A kernel that cannot fit
// even one block per SM reports a wave of 0.
func (d Device) WaveSize(k KernelResources) int {
	return d.ComputeOccupancy(k).BlocksPerSM * d.NumSMs
}
