package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Columns: []string{"App", "Err"},
		Notes:   []string{"hello"},
	}
	tb.AddRow("gauss", "1.6")
	tb.AddRow("a-much-longer-name") // short row padded
	s := tb.String()
	for _, want := range []string{"Demo", "App", "Err", "gauss", "a-much-longer-name", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Header and data rows align: the Err column starts at the same byte.
	idx := strings.Index(lines[2], "Err")
	if idx < 0 {
		t.Fatalf("header line wrong: %q", lines[2])
	}
	row := lines[4]
	if len(row) <= idx || row[:5] != "gauss" {
		t.Errorf("row misaligned: %q", row)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow(`x,y`, `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("CSV quoting wrong: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong: %s", csv)
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "Speedups",
		YLabel: "x",
		Series: []Series{
			{Name: "pka", Values: []float64{1, 10, 100}},
			{Name: "tbp", Values: []float64{1, 2, 4}},
		},
		LogY: true,
	}
	s := c.String()
	for _, want := range []string{"Speedups", "* pka", "o tbp", "log scale"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
}

func TestChartEmptyAndNonPositiveLog(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "empty"}}}
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	c2 := &Chart{LogY: true, Series: []Series{{Name: "zeros", Values: []float64{0, 0}}}}
	if !strings.Contains(c2.String(), "no data") {
		t.Error("all-non-positive log chart should degrade to no data")
	}
}

func TestChartWideInputDownsamples(t *testing.T) {
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	c := &Chart{Series: []Series{{Name: "wide", Values: vals}}}
	s := c.String()
	for _, line := range strings.Split(s, "\n") {
		if len(line) > 140 {
			t.Fatalf("chart line too wide: %d chars", len(line))
		}
	}
}

func TestF(t *testing.T) {
	if F(1.234, 1) != "1.2" {
		t.Errorf("F = %q", F(1.234, 1))
	}
	if F(math.NaN(), 2) != "*" || F(math.Inf(1), 0) != "*" {
		t.Error("NaN/Inf should render as *")
	}
}

func TestHoursLadder(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.001, "3.6 s"},
		{0.5, "30 m"},
		{5, "5.0 H"},
		{100, "4.2 D"},
		{24 * 400, "1.1 Y"},
		{24 * 365 * 250, "2.5 century"},
	}
	for _, c := range cases {
		if got := Hours(c.in); got != c.want {
			t.Errorf("Hours(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if Hours(math.NaN()) != "*" {
		t.Error("NaN hours should be *")
	}
}

func TestSecondsLadder(t *testing.T) {
	if got := Seconds(50e-6); got != "50 us" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Seconds(0.25); got != "250.0 ms" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Seconds(30); got != "30.0 s" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Seconds(7200); got != "2.0 H" {
		t.Errorf("Seconds = %q", got)
	}
}
