// Package report renders the experiment outputs: fixed-width ASCII tables
// (for the paper's Tables 3 and 4), log-scale ASCII charts (for the time
// and speedup figures), and CSV export for downstream plotting.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a multi-series plot rendered as ASCII. Values at the same index
// across series share an x position.
type Chart struct {
	Title  string
	YLabel string
	LogY   bool
	Series []Series
	Height int // rows; default 16
	Notes  []string
}

// String renders the chart: one glyph per series, log or linear y.
func (c *Chart) String() string {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	maxLen := 0
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if c.LogY && v <= 0 {
				continue
			}
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(c.Title)))
		b.WriteByte('\n')
	}
	if maxLen == 0 || math.IsInf(minV, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	width := maxLen
	const maxWidth = 110
	stride := 1
	for width/stride > maxWidth {
		stride++
	}
	width = (maxLen + stride - 1) / stride

	scale := func(v float64) float64 {
		if c.LogY {
			if v <= 0 {
				return 0
			}
			lo, hi := math.Log10(minV), math.Log10(maxV)
			if hi == lo {
				return 0.5
			}
			return (math.Log10(v) - lo) / (hi - lo)
		}
		if maxV == minV {
			return 0.5
		}
		return (v - minV) / (maxV - minV)
	}

	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		for x := 0; x < width; x++ {
			idx := x * stride
			if idx >= len(s.Values) {
				break
			}
			v := s.Values[idx]
			if c.LogY && v <= 0 {
				continue
			}
			row := height - 1 - int(scale(v)*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = g
		}
	}
	yTop, yBot := fmtAxis(maxV), fmtAxis(minV)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", pad))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	if c.YLabel != "" {
		fmt.Fprintf(&b, "y: %s", c.YLabel)
		if c.LogY {
			b.WriteString(" (log scale)")
		}
		b.WriteByte('\n')
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	for _, n := range c.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtAxis(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-2:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// F formats a float with the given decimals, rendering NaN/Inf as "*" (the
// paper's no-data marker).
func F(v float64, decimals int) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "*"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}

// Hours renders a duration given in hours the way the paper does: minutes
// below an hour, days above 72 hours, years beyond that.
func Hours(h float64) string {
	switch {
	case math.IsNaN(h) || math.IsInf(h, 0):
		return "*"
	case h < 1.0/60:
		return fmt.Sprintf("%.1f s", h*3600)
	case h < 1:
		return fmt.Sprintf("%.0f m", h*60)
	case h < 72:
		return fmt.Sprintf("%.1f H", h)
	case h < 24*365:
		return fmt.Sprintf("%.1f D", h/24)
	case h < 24*365*100:
		return fmt.Sprintf("%.1f Y", h/24/365)
	default:
		return fmt.Sprintf("%.1f century", h/24/365/100)
	}
}

// Seconds renders a duration in seconds with the same scale ladder.
func Seconds(s float64) string {
	switch {
	case math.IsNaN(s) || math.IsInf(s, 0):
		return "*"
	case s < 1e-3:
		return fmt.Sprintf("%.0f us", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1f ms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.1f s", s)
	default:
		return Hours(s / 3600)
	}
}
