package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pka/internal/obs"
	"pka/internal/sampling"
)

// Submission errors, mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull rejects a request when the bounded queue is at
	// capacity (HTTP 429). The client owns the retry policy.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining rejects new work while the server drains (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
)

// Options configures a Server. The zero value of every field has a
// usable default.
type Options struct {
	// Exec is the execution ladder study requests run on. Nil degrades
	// to serial uncached execution (results stay byte-identical).
	Exec *sampling.Exec
	// Workers bounds concurrently-executing studies (default 2). Note
	// this is request-level parallelism; each study may fan its kernels
	// out further on Exec's kernel-granular scheduler.
	Workers int
	// QueueDepth bounds requests waiting for a runner (default 64);
	// requests beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// TenantWeights sets per-tenant fair-share weights (missing tenants
	// weigh 1).
	TenantWeights map[string]int
	// LatencyWindow sizes the rolling latency-report window.
	LatencyWindow int
	// Obs, when non-nil, receives pka_serve_* metrics and per-request
	// spans.
	Obs *obs.Observer
	// Now is the clock (default time.Now); tests inject a fake one for
	// bit-stable latency reports.
	Now func() time.Time
	// Runner overrides study execution (tests stub it to control
	// timing). Nil runs Run on Exec.
	Runner func(*StudyRequest) (*StudyResponse, error)
	// TraceIDs generates trace and span IDs for traced requests; nil
	// builds a crypto-seeded one. Tests install a seeded generator for
	// deterministic IDs.
	TraceIDs *obs.IDGen
}

// provRingCap bounds the recent-study provenance ring behind
// ProvenancePath.
const provRingCap = 32

// provRecord is one completed study's provenance summary.
type provRecord struct {
	tenant, workload, mode string
	traceID                string
	flight                 *sampling.FlightRecorder
}

// pending is one admitted request moving through the queue.
type pending struct {
	req      *StudyRequest
	admitted time.Time
	resp     *StudyResponse
	err      error
	done     chan struct{}
}

// Server is the study service: a bounded weighted-fair admission queue in
// front of a spawn-on-demand runner pool, with rolling latency accounting
// and graceful drain. Create with New, submit with Do or over HTTP via
// Handler.
type Server struct {
	exec   *sampling.Exec
	width  int
	depth  int
	now    func() time.Time
	runner func(*StudyRequest) (*StudyResponse, error)
	o      *obs.Observer
	m      *obs.ServeMetrics
	rec    *Recorder
	ids    *obs.IDGen

	provMu   sync.Mutex
	provRing []provRecord

	mu       sync.Mutex
	cond     *sync.Cond
	q        *fairQueue
	running  int // runner goroutines alive
	inflight int // requests executing (queued studies and streams)
	streams  int // streaming studies in flight, capped at width
	draining bool

	// Plain counters mirror the metric bundle so Health works without an
	// observer.
	served, completed, failed, rejected, drainRejects, invalid int64
}

// New builds a Server from opts.
func New(opts Options) *Server {
	s := &Server{
		exec:   opts.Exec,
		width:  opts.Workers,
		depth:  opts.QueueDepth,
		now:    opts.Now,
		runner: opts.Runner,
		o:      opts.Obs,
		m:      opts.Obs.ServeMetrics(),
		rec:    NewRecorder(opts.LatencyWindow),
		q:      newFairQueue(opts.TenantWeights),
		ids:    opts.TraceIDs,
	}
	if s.ids == nil {
		s.ids = obs.NewIDGen(0)
	}
	if s.m == nil {
		// No observer: a zero-value bundle's nil instruments absorb every
		// report, so the hot path stays branch-free.
		s.m = &obs.ServeMetrics{}
	}
	if s.width < 1 {
		s.width = 2
	}
	if s.depth < 1 {
		s.depth = 64
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.runner == nil {
		s.runner = s.run
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Do admits one validated request, waits for its turn and execution, and
// returns the study outcome. It is safe for concurrent use.
func (s *Server) Do(req *StudyRequest) (*StudyResponse, error) {
	p := &pending{req: req, admitted: s.now(), done: make(chan struct{})}
	s.mu.Lock()
	if s.draining {
		s.drainRejects++
		s.mu.Unlock()
		s.m.DrainRejects.Inc()
		return nil, ErrDraining
	}
	if s.q.len() >= s.depth {
		s.rejected++
		s.mu.Unlock()
		s.m.Rejected.Inc()
		return nil, ErrQueueFull
	}
	s.q.push(p)
	s.served++
	spawn := s.running < s.width
	if spawn {
		s.running++
	}
	s.m.QueueDepth.Set(float64(s.q.len()))
	s.mu.Unlock()
	s.m.Requests.Inc()
	if spawn {
		go s.work()
	}
	<-p.done
	return p.resp, p.err
}

// work is one runner: it drains the fair queue and exits when the queue
// is empty, the same spawn-on-demand shape as parallel.Scheduler.
func (s *Server) work() {
	for {
		s.mu.Lock()
		p := s.q.pop()
		if p == nil {
			s.running--
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.inflight++
		s.m.QueueDepth.Set(float64(s.q.len()))
		s.m.InFlight.Set(float64(s.inflight))
		s.mu.Unlock()

		started := s.now()
		sp := s.o.StartSpan("serve", p.req.Tenant+":"+p.req.Mode)
		p.resp, p.err = s.runOne(p.req)
		sp.End()
		ended := s.now()

		queued := started.Sub(p.admitted)
		total := ended.Sub(p.admitted)
		s.rec.Observe(p.req.Tenant, queued, total, p.err != nil)
		s.m.QueueWait.Observe(queued.Seconds())
		s.m.Latency.Observe(total.Seconds())

		s.mu.Lock()
		s.inflight--
		if p.err != nil {
			s.failed++
		} else {
			s.completed++
		}
		s.m.InFlight.Set(float64(s.inflight))
		s.cond.Broadcast()
		s.mu.Unlock()
		if p.err != nil {
			s.m.Errors.Inc()
		} else {
			s.m.Completed.Inc()
		}
		close(p.done)
	}
}

// run is the default runner: it wires the server's span-ID generator and
// a flight recorder into the request, executes the study, and folds the
// completed study's provenance into the debug ring.
func (s *Server) run(req *StudyRequest) (*StudyResponse, error) {
	if req.ids == nil {
		req.ids = s.ids
	}
	if req.flight == nil {
		req.flight = sampling.NewFlightRecorder()
	}
	resp, err := Run(s.exec, s.o, req)
	if err == nil {
		traceID := ""
		if resp.Provenance != nil {
			traceID = resp.Provenance.TraceID
		}
		s.recordProvenance(provRecord{
			tenant:   req.Tenant,
			workload: resp.Workload,
			mode:     resp.Mode,
			traceID:  traceID,
			flight:   req.flight,
		})
	}
	return resp, err
}

// recordProvenance appends one study's summary to the bounded debug ring,
// evicting the oldest beyond provRingCap.
func (s *Server) recordProvenance(rec provRecord) {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if len(s.provRing) >= provRingCap {
		copy(s.provRing, s.provRing[1:])
		s.provRing = s.provRing[:len(s.provRing)-1]
	}
	s.provRing = append(s.provRing, rec)
}

// runOne isolates runner panics: one poisoned request must not take the
// server (or its sibling requests) down.
func (s *Server) runOne(req *StudyRequest) (resp *StudyResponse, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("serve: runner panic: %v", r)
		}
	}()
	return s.runner(req)
}

// Drain stops admitting (new submissions get ErrDraining) and waits for
// every queued and executing request to finish, or for ctx to expire.
// Queued work is completed, not dropped — a drained server has answered
// everything it accepted.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.q.len()+s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Wake the waiter goroutine eventually; it holds no resources.
		return ctx.Err()
	}
}

// LatencyReport summarizes the rolling latency window.
func (s *Server) LatencyReport() *Report { return s.rec.Report() }

// ServeHealth is the server's self-report.
type ServeHealth struct {
	QueueDepth   int           `json:"queue_depth"`
	InFlight     int           `json:"in_flight"`
	Workers      int           `json:"workers"`
	Draining     bool          `json:"draining"`
	Requests     int64         `json:"requests"`
	Completed    int64         `json:"completed"`
	Errors       int64         `json:"errors"`
	Invalid      int64         `json:"invalid"`
	Rejected     int64         `json:"rejected"`
	DrainRejects int64         `json:"drain_rejects"`
	Build        obs.BuildInfo `json:"build"`
}

// Health snapshots the server's counters.
func (s *Server) Health() ServeHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServeHealth{
		QueueDepth:   s.q.len(),
		InFlight:     s.inflight,
		Workers:      s.width,
		Draining:     s.draining,
		Requests:     s.served,
		Completed:    s.completed,
		Errors:       s.failed,
		Invalid:      s.invalid,
		Rejected:     s.rejected,
		DrainRejects: s.drainRejects,
		Build:        obs.Build(),
	}
}

// Handler returns the server's HTTP mux: POST /v1/study, GET /v1/latency,
// GET /v1/health, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(StudyPath, s.handleStudy)
	mux.HandleFunc(StreamPath, s.handleStream)
	mux.HandleFunc(LatencyPath, s.handleLatency)
	mux.HandleFunc(HealthPath, s.handleHealth)
	mux.HandleFunc(MetricsPath, s.handleMetrics)
	mux.HandleFunc(ProvenancePath, s.handleProvenance)
	return mux
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := DecodeStudyRequest(r.Body)
	if err != nil {
		s.mu.Lock()
		s.invalid++
		s.mu.Unlock()
		s.m.Invalid.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A valid traceparent header joins the request to the client's trace;
	// malformed or absent means "not traced" (the body's trace flag can
	// still start a fresh root trace).
	if tc, ok := obs.ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
		req.SetTraceParent(tc)
	}
	resp, err := s.Do(req)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, sampling.ErrInfeasible):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	rep := s.LatencyReport()
	if r.URL.Query().Get("text") != "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(rep.String()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Health())
}

// handleProvenance renders the tier-attribution reports of the most
// recent completed studies (oldest first), one flight-recorder report per
// study.
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	s.provMu.Lock()
	ring := append([]provRecord(nil), s.provRing...)
	s.provMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(ring) == 0 {
		fmt.Fprintf(w, "no studies completed yet\n")
		return
	}
	for i, rec := range ring {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "study tenant=%s workload=%s mode=%s", rec.tenant, rec.workload, rec.mode)
		if rec.traceID != "" {
			fmt.Fprintf(w, " trace=%s", rec.traceID)
		}
		fmt.Fprintln(w)
		_ = rec.flight.WriteReport(w)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.o == nil || s.o.Metrics == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	s.o.SyncCacheStats()
	s.o.SyncRemoteStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.o.Metrics.WritePrometheus(w)
}
