package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pka/internal/parallel"
	"pka/internal/sampling"
	"pka/internal/serve"
)

// stubResp is what gated stub runners answer with; tests that assert
// byte-identity use the real runner instead.
var stubResp = &serve.StudyResponse{Workload: "stub", Device: "volta", Mode: "pka"}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDecodeStudyRequest(t *testing.T) {
	// A minimal request picks up every batch-CLI default.
	req, err := serve.DecodeStudyRequest(strings.NewReader(`{"workload":"Rodinia/gauss_mat4"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Tenant != "anon" || req.Device != "volta" || req.Mode != "pka" ||
		req.TargetErrorPct != 5 || req.MaxK != 20 {
		t.Errorf("defaults not applied: %+v", req)
	}

	bad := []string{
		``, `{`, `[]`, `{}`,
		`{"workload":"Rodinia/no_such"}`,
		`{"workload":"Rodinia/gauss_mat4","unknown":1}`,
		`{"workload":"Rodinia/gauss_mat4"}{"workload":"Rodinia/gauss_mat4"}`,
		`{"workload":"Rodinia/gauss_mat4","device":"pentium"}`,
		`{"workload":"Rodinia/gauss_mat4","mode":"warp"}`,
		`{"workload":"Rodinia/gauss_mat4","target":-1}`,
		`{"workload":"Rodinia/gauss_mat4","target":99}`,
		`{"workload":"Rodinia/gauss_mat4","s":1.5}`,
		`{"workload":"Rodinia/gauss_mat4","n":-1}`,
		`{"workload":"Rodinia/gauss_mat4","maxk":10000}`,
		`{"workload":"Rodinia/gauss_mat4","tenant":"no spaces"}`,
		`{"workload":"Rodinia/gauss_mat4","workload_json":{"name":"x","kernels":[]}}`,
		`{"workload_json":{"name":"bad","kernels":[{"name":"k","grid":[-4,1,1],"block":[256,1,1],"mix":{"compute":10}}]}}`,
	}
	for _, doc := range bad {
		if _, err := serve.DecodeStudyRequest(strings.NewReader(doc)); err == nil {
			t.Errorf("accepted malformed request: %s", doc)
		}
	}

	// Inline workloads go through the hardened loader.
	req, err = serve.DecodeStudyRequest(strings.NewReader(
		`{"workload_json":{"name":"inline","kernels":[{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":10},"repeat":3}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Workload != "" || req.Mode != "pka" {
		t.Errorf("inline request misparsed: %+v", req)
	}
}

// TestFairQueueOrder pins the weighted-fair release order: with a 3:1
// weight split and all requests queued behind one in-flight filler, alpha
// drains three requests before beta's first, and the virtual-finish tie
// at 1.0 breaks FIFO (alpha enqueued first).
func TestFairQueueOrder(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	srv := serve.New(serve.Options{
		Workers:       1,
		QueueDepth:    32,
		TenantWeights: map[string]int{"alpha": 3, "beta": 1},
		Runner: func(req *serve.StudyRequest) (*serve.StudyResponse, error) {
			if req.Tenant == "filler" {
				<-release
				return stubResp, nil
			}
			mu.Lock()
			order = append(order, req.Tenant)
			mu.Unlock()
			return stubResp, nil
		},
	})
	var wg sync.WaitGroup
	submit := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Do(&serve.StudyRequest{Tenant: tenant}); err != nil {
				t.Errorf("%s: %v", tenant, err)
			}
		}()
	}
	submit("filler")
	waitFor(t, "filler in flight", func() bool { return srv.Health().InFlight == 1 })
	for i, tenant := range []string{"alpha", "alpha", "alpha", "alpha", "beta", "beta", "beta", "beta"} {
		submit(tenant)
		depth := i + 1
		waitFor(t, "queue depth", func() bool { return srv.Health().QueueDepth == depth })
	}
	close(release)
	wg.Wait()
	got := strings.Join(order, ",")
	want := "alpha,alpha,alpha,beta,alpha,beta,beta,beta"
	if got != want {
		t.Errorf("release order\n got %s\nwant %s", got, want)
	}
}

// TestBackpressure pins the bounded-queue contract: one executing, one
// queued, and the next submission is rejected immediately — never blocked.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	srv := serve.New(serve.Options{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(*serve.StudyRequest) (*serve.StudyResponse, error) {
			<-release
			return stubResp, nil
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Do(&serve.StudyRequest{Tenant: "t"}); err != nil {
				t.Errorf("admitted request failed: %v", err)
			}
		}()
		if i == 0 {
			waitFor(t, "first request in flight", func() bool { return srv.Health().InFlight == 1 })
		} else {
			waitFor(t, "second request queued", func() bool { return srv.Health().QueueDepth == 1 })
		}
	}
	if _, err := srv.Do(&serve.StudyRequest{Tenant: "t"}); err != serve.ErrQueueFull {
		t.Errorf("overflow submission: got %v, want ErrQueueFull", err)
	}
	close(release)
	wg.Wait()
	h := srv.Health()
	if h.Completed != 2 || h.Rejected != 1 {
		t.Errorf("health after run: %+v", h)
	}
}

// TestDrain pins graceful shutdown: draining finishes everything already
// admitted, rejects everything new, and unblocks the drainer.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	srv := serve.New(serve.Options{
		Workers:    1,
		QueueDepth: 8,
		Runner: func(*serve.StudyRequest) (*serve.StudyResponse, error) {
			<-release
			return stubResp, nil
		},
	})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Do(&serve.StudyRequest{Tenant: "t"})
		done <- err
	}()
	waitFor(t, "request in flight", func() bool { return srv.Health().InFlight == 1 })

	drained := make(chan error, 1)
	go func() {
		drained <- srv.Drain(context.Background())
	}()
	waitFor(t, "draining flag", func() bool { return srv.Health().Draining })
	if _, err := srv.Do(&serve.StudyRequest{Tenant: "t"}); err != serve.ErrDraining {
		t.Fatalf("submission while draining: got %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a request still in flight", err)
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A drain bounded by an already-expired context reports the deadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv2 := serve.New(serve.Options{Workers: 1, Runner: func(*serve.StudyRequest) (*serve.StudyResponse, error) {
		select {} // never finishes
	}})
	go srv2.Do(&serve.StudyRequest{Tenant: "t"}) //nolint:errcheck
	waitFor(t, "stuck request", func() bool { return srv2.Health().InFlight == 1 })
	if err := srv2.Drain(ctx); err == nil {
		t.Error("drain with expired context returned nil")
	}
}

// TestRunnerPanicIsContained pins that a panicking study poisons only its
// own request.
func TestRunnerPanicIsContained(t *testing.T) {
	calls := 0
	srv := serve.New(serve.Options{
		Workers: 1,
		Runner: func(*serve.StudyRequest) (*serve.StudyResponse, error) {
			calls++
			if calls == 1 {
				panic("poisoned request")
			}
			return stubResp, nil
		},
	})
	if _, err := srv.Do(&serve.StudyRequest{Tenant: "t"}); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("poisoned request: got %v, want panic error", err)
	}
	if _, err := srv.Do(&serve.StudyRequest{Tenant: "t"}); err != nil {
		t.Fatalf("request after panic failed: %v", err)
	}
}

// TestServeMatchesBatch is the tentpole's central claim: the HTTP path
// through decode → admission → fair queue → Exec ladder answers with
// exactly the bytes a direct serial, uncached run produces.
func TestServeMatchesBatch(t *testing.T) {
	srv := serve.New(serve.Options{
		Exec:    sampling.NewExec(parallel.NewScheduler(4), nil),
		Workers: 4,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, doc := range []string{
		`{"workload":"Rodinia/gauss_mat4"}`,
		`{"workload":"Rodinia/gauss_mat4","mode":"pks"}`,
		`{"workload":"Rodinia/gauss_mat4","mode":"full","silicon":true}`,
		`{"workload":"Rodinia/bfs4096","mode":"pka","target":2,"silicon":true,"tenant":"prod"}`,
		`{"workload_json":{"name":"inline","kernels":[{"name":"k","grid":[64,1,1],"block":[128,1,1],"mix":{"compute":40,"global_loads":4},"coalescing_factor":4,"working_set_bytes":1048576,"repeat":6}]},"mode":"full"}`,
	} {
		resp, err := http.Post(ts.URL+serve.StudyPath, "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s: %s", doc, resp.Status, body)
		}

		// The reference: same request, serial uncached execution.
		ref, err := serve.DecodeStudyRequest(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := serve.Run(nil, nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(body, want) {
			t.Errorf("%s:\nserver %s\ndirect %s", doc, body, want)
		}
	}
}

// TestHTTPStatuses pins the handler's error mapping.
func TestHTTPStatuses(t *testing.T) {
	release := make(chan struct{})
	srv := serve.New(serve.Options{
		Exec:       sampling.NewExec(nil, nil),
		Workers:    1,
		QueueDepth: 1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(doc string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+serve.StudyPath, "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}
	if resp := post(`{"workload":"Rodinia/nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid request: %s, want 400", resp.Status)
	}
	// Full simulation of an MLPerf workload blows the budget: the
	// infeasibility is detected before any cycle is simulated.
	if resp := post(`{"workload":"MLPerf/ssd_training","mode":"full"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible request: %s, want 422", resp.Status)
	}
	if resp, err := http.Get(ts.URL + serve.StudyPath); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET study: %s, want 405", resp.Status)
	}
	if h := srv.Health(); h.Invalid != 1 {
		t.Errorf("invalid counter: %+v", h)
	}

	// 429 carries Retry-After so clients can back off politely.
	blocked := serve.New(serve.Options{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(*serve.StudyRequest) (*serve.StudyResponse, error) {
			<-release
			return stubResp, nil
		},
	})
	tsb := httptest.NewServer(blocked.Handler())
	defer tsb.Close()
	defer close(release)                                      // before tsb.Close, which waits for the blocked requests
	go http.Post(tsb.URL+serve.StudyPath, "application/json", //nolint:errcheck
		strings.NewReader(`{"workload":"Rodinia/gauss_mat4"}`))
	waitFor(t, "first request executing", func() bool { return blocked.Health().InFlight == 1 })
	go http.Post(tsb.URL+serve.StudyPath, "application/json", //nolint:errcheck
		strings.NewReader(`{"workload":"Rodinia/gauss_mat4"}`))
	waitFor(t, "second request queued", func() bool { return blocked.Health().QueueDepth == 1 })
	resp, err := http.Post(tsb.URL+serve.StudyPath, "application/json", strings.NewReader(`{"workload":"Rodinia/gauss_mat4"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Errorf("overflow: %s retry-after=%q, want 429 with Retry-After", resp.Status, resp.Header.Get("Retry-After"))
	}
}
