package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultLatencyWindow is the rolling sample window the recorder keeps
// when the caller does not size it.
const DefaultLatencyWindow = 1 << 14

// sample is one completed request's timing.
type sample struct {
	tenant string
	queue  time.Duration // admission to execution start
	total  time.Duration // admission to completion
	failed bool
}

// Recorder accumulates per-request latency samples in a fixed ring and
// summarizes them as nearest-rank percentiles. It is goroutine-safe; the
// clock lives with the caller, so a test can drive it with a fake clock
// and get bit-stable reports.
type Recorder struct {
	mu   sync.Mutex
	ring []sample
	next int
	seen int // total observed, may exceed len(ring)
	errs int
}

// NewRecorder builds a recorder over a rolling window of n samples
// (DefaultLatencyWindow when n <= 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultLatencyWindow
	}
	return &Recorder{ring: make([]sample, 0, n)}
}

// Observe records one completed request.
func (r *Recorder) Observe(tenant string, queue, total time.Duration, failed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := sample{tenant: tenant, queue: queue, total: total, failed: failed}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.seen++
	if failed {
		r.errs++
	}
}

// TenantLatency is one tenant's slice of the report.
type TenantLatency struct {
	Tenant   string        `json:"tenant"`
	Requests int           `json:"requests"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// Report is a point-in-time latency summary over the recorder's window.
// Durations marshal as integer nanoseconds, so a report for a fixed
// request schedule on a fixed clock is byte-reproducible.
type Report struct {
	// Requests counts every request ever observed; Window is how many of
	// the most recent ones the percentiles cover.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Window   int `json:"window"`

	QueueP50 time.Duration `json:"queue_p50_ns"`
	QueueP95 time.Duration `json:"queue_p95_ns"`
	QueueP99 time.Duration `json:"queue_p99_ns"`

	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Mean time.Duration `json:"mean_ns"`
	Max  time.Duration `json:"max_ns"`

	Tenants []TenantLatency `json:"tenants,omitempty"`
}

// Report summarizes the current window.
func (r *Recorder) Report() *Report {
	r.mu.Lock()
	window := make([]sample, len(r.ring))
	copy(window, r.ring)
	rep := &Report{Requests: r.seen, Errors: r.errs, Window: len(window)}
	r.mu.Unlock()

	if len(window) == 0 {
		return rep
	}
	totals := make([]time.Duration, len(window))
	queues := make([]time.Duration, len(window))
	var sum time.Duration
	byTenant := map[string][]time.Duration{}
	for i, s := range window {
		totals[i], queues[i] = s.total, s.queue
		sum += s.total
		if s.total > rep.Max {
			rep.Max = s.total
		}
		byTenant[s.tenant] = append(byTenant[s.tenant], s.total)
	}
	sortDurations(totals)
	sortDurations(queues)
	rep.P50, rep.P95, rep.P99 = percentile(totals, 50), percentile(totals, 95), percentile(totals, 99)
	rep.QueueP50, rep.QueueP95, rep.QueueP99 = percentile(queues, 50), percentile(queues, 95), percentile(queues, 99)
	rep.Mean = sum / time.Duration(len(window))

	names := make([]string, 0, len(byTenant))
	for t := range byTenant {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		ds := byTenant[t]
		sortDurations(ds)
		rep.Tenants = append(rep.Tenants, TenantLatency{
			Tenant:   t,
			Requests: len(ds),
			P50:      percentile(ds, 50),
			P95:      percentile(ds, 95),
			P99:      percentile(ds, 99),
		})
	}
	return rep
}

// String renders the report for terminals and CI logs.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency report: %d requests (%d errors), window %d\n", r.Requests, r.Errors, r.Window)
	if r.Window == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "  queue wait  p50 %s  p95 %s  p99 %s\n", ms(r.QueueP50), ms(r.QueueP95), ms(r.QueueP99))
	fmt.Fprintf(&b, "  latency     p50 %s  p95 %s  p99 %s  mean %s  max %s\n", ms(r.P50), ms(r.P95), ms(r.P99), ms(r.Mean), ms(r.Max))
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %-12s %4d requests  p50 %s  p95 %s  p99 %s\n", t.Tenant, t.Requests, ms(t.P50), ms(t.P95), ms(t.P99))
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
