package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"pka/internal/obs"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/sim"
	"pka/internal/trace"
	"pka/internal/workload"
)

// The streaming endpoint is the serving tier's face of streaming PKS: the
// client POSTs a study request line followed by a kernel-event stream, and
// the server profiles, clusters, and speculatively simulates while the
// events are still arriving on the wire. The response is NDJSON —
// StreamLine progress while events are consumed, then one final line that
// is byte-identical to what StudyPath returns for the same workload and
// parameters, because the streamed selection is byte-identical to batch
// pks.Select and the fold reads the same content-keyed ladder.

// StreamProgress is the payload of one progress line: how far the intake
// has gotten and, on the final progress line, the speculation scorecard.
type StreamProgress struct {
	// Events is the number of launch events consumed so far.
	Events int `json:"events"`
	// Detailed is the number of kernels profiled in detail so far.
	Detailed int `json:"detailed"`
	// Resweeps counts advisory cluster revisions so far.
	Resweeps int `json:"resweeps"`
	// Speculated, Hits, Demoted, and WastedWarpInstrs appear on the final
	// progress line: warms dispatched, final keys warmed before the
	// reconciliation cutoff, warms the final selection discarded, and the
	// simulation work those discards burned.
	Speculated       int   `json:"speculated,omitempty"`
	Hits             int   `json:"hits,omitempty"`
	Demoted          int   `json:"demoted,omitempty"`
	WastedWarpInstrs int64 `json:"wasted_warp_instrs,omitempty"`
}

// StreamLine is one non-final NDJSON line of a StreamPath response.
// Exactly one field is set. The final line of a successful stream is a
// bare StudyResponse, distinguished by carrying neither key.
type StreamLine struct {
	Progress *StreamProgress `json:"progress,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// readLineCapped reads one newline-terminated line of at most max bytes,
// without buffering past it.
func readLineCapped(br *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > max {
			return nil, fmt.Errorf("serve: stream request line exceeds %d bytes", max)
		}
		switch err {
		case nil:
			return buf, nil
		case io.EOF:
			if len(bytes.TrimSpace(buf)) == 0 {
				return nil, io.EOF
			}
			return buf, nil
		case bufio.ErrBufferFull:
			// Keep accumulating up to the cap.
		default:
			return nil, err
		}
	}
}

// decodeStreamRequest parses and validates the request line of a
// streaming study.
func decodeStreamRequest(line []byte) (*StudyRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	req := &StudyRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("serve: malformed stream request: %w", err)
	}
	if dec.More() {
		return nil, errors.New("serve: trailing data after stream request")
	}
	if err := req.validateStream(); err != nil {
		return nil, err
	}
	return req, nil
}

// admitStream reserves one long-lived stream slot. Streams bypass the
// fair queue — their work arrives over the wire interleaved with
// execution, so there is nothing to reorder — but they respect drain and
// are capped at the runner width so a flood of streams cannot starve the
// queued tier.
func (s *Server) admitStream() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.drainRejects++
		s.m.DrainRejects.Inc()
		return ErrDraining
	}
	if s.streams >= s.width {
		s.rejected++
		s.m.Rejected.Inc()
		return ErrQueueFull
	}
	s.streams++
	s.inflight++
	s.served++
	s.m.Requests.Inc()
	s.m.InFlight.Set(float64(s.inflight))
	return nil
}

// finishStream releases the slot and settles the request counters; the
// broadcast wakes any drain waiting on in-flight work.
func (s *Server) finishStream(failed bool) {
	s.mu.Lock()
	s.streams--
	s.inflight--
	if failed {
		s.failed++
	} else {
		s.completed++
	}
	s.m.InFlight.Set(float64(s.inflight))
	s.cond.Broadcast()
	s.mu.Unlock()
	if failed {
		s.m.Errors.Inc()
	} else {
		s.m.Completed.Inc()
	}
}

// handleStream implements POST StreamPath.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	br := bufio.NewReaderSize(r.Body, 64*1024)
	line, err := readLineCapped(br, MaxStudyRequestBytes)
	if err == io.EOF {
		err = errors.New("serve: empty stream request")
	}
	var req *StudyRequest
	if err == nil {
		req, err = decodeStreamRequest(line)
	}
	if err != nil {
		s.mu.Lock()
		s.invalid++
		s.mu.Unlock()
		s.m.Invalid.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if tc, ok := obs.ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
		req.SetTraceParent(tc)
	}
	if err := s.admitStream(); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	started := s.now()
	sp := s.o.StartSpan("serve-stream", req.Tenant+":"+req.Mode)
	resp, err := s.runStream(req, br, func(p *StreamProgress) {
		_ = enc.Encode(StreamLine{Progress: p})
		if flusher != nil {
			flusher.Flush()
		}
	})
	sp.End()
	total := s.now().Sub(started)
	s.rec.Observe(req.Tenant, 0, total, err != nil)
	s.m.Latency.Observe(total.Seconds())
	s.finishStream(err != nil)
	if err != nil {
		// The status line already went out 200; the error travels in-band,
		// the NDJSON convention for mid-stream failure.
		_ = enc.Encode(StreamLine{Error: err.Error()})
		return
	}
	_ = enc.Encode(resp)
}

// runStream drives one streaming study: decode events, feed the streaming
// selector (which speculatively warms likely representatives through the
// Exec ladder), then reconcile and run the sampled fold on the finalized
// selection.
func (s *Server) runStream(req *StudyRequest, body io.Reader, progress func(*StreamProgress)) (*StudyResponse, error) {
	dec := workload.NewEventDecoder(body)
	h, err := dec.Header()
	if err != nil {
		return nil, err
	}

	// The speculative task spec must be byte-for-byte what RunSampled will
	// fold for this mode, or the content keys won't match and warming buys
	// nothing.
	task := sampling.KernelTask{Mode: sampling.ModePKS, MaxCycles: sim.DefaultMaxCycles}
	if req.Mode == "pka" {
		task = sampling.KernelTask{
			Mode: sampling.ModePKA, MaxCycles: sim.DefaultMaxCycles,
			PKP: sampling.NewPKPSpec(pkp.Options{Threshold: req.Threshold, Window: req.Window}),
		}
	}
	so := pks.StreamOptions{Select: pks.Options{TargetErrorPct: req.TargetErrorPct, MaxK: req.MaxK}}
	if s.o != nil {
		so.Metrics = s.o.StreamMetrics()
	}
	var spec *sampling.Speculator
	if s.exec != nil {
		spec = sampling.NewSpeculator(s.exec, req.dev, []sampling.KernelTask{task}, 2)
		so.Speculate = spec.Speculate
	}
	stream, err := pks.NewStream(req.dev, h.Suite, h.Name, h.Kernels, so)
	if err != nil {
		return nil, err
	}

	// Intake. Progress is buffered here rather than written: for HTTP/1.x,
	// writing any response byte may stop further reads of the request body,
	// so nothing goes on the wire until the event stream is fully consumed.
	// The buffered lines then flush before the reconciliation fold — which
	// is where the wall-clock goes — so the client still sees the intake
	// history well ahead of the final response.
	var pending []*StreamProgress
	kernels := make([]trace.KernelDesc, h.Kernels)
	events, lastResweeps := 0, 0
	for {
		k, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := stream.Push(k); err != nil {
			return nil, err
		}
		kernels[k.ID] = k
		events++
		if rs := stream.Resweeps(); rs != lastResweeps {
			lastResweeps = rs
			pending = append(pending, &StreamProgress{Events: events, Detailed: stream.DetailedSoFar(), Resweeps: rs})
		}
	}
	if n := dec.Missing(); n > 0 {
		return nil, fmt.Errorf("serve: event stream ended with %d of %d launches missing", n, h.Kernels)
	}
	for _, p := range pending {
		progress(p)
	}
	sel, err := stream.Finalize()
	if err != nil {
		return nil, err
	}
	wl, err := workload.FromKernels(h.Suite, h.Name, kernels)
	if err != nil {
		return nil, err
	}
	req.w = wl

	finalKeys := map[string]bool{}
	if spec != nil {
		// Warm the elected reps (duplicates of earlier warms dedupe away),
		// then mark the reconciliation cutoff.
		for _, g := range sel.Groups {
			spec.SpeculateTask(kernels[g.RepIndex], task)
			finalKeys[sampling.TaskKey(req.dev, &kernels[g.RepIndex], task)] = true
		}
		spec.Seal()
	}
	resp, err := RunWithSelection(s.exec, s.o, req, sel)
	if err != nil {
		return nil, err
	}
	final := &StreamProgress{Events: events, Detailed: stream.DetailedSoFar(), Resweeps: stream.Resweeps()}
	if spec != nil {
		spec.Wait()
		st := spec.Resolve(finalKeys)
		final.Speculated = st.Launched
		final.Hits = st.Hits
		final.Demoted = st.Demoted
		final.WastedWarpInstrs = st.WastedWarpInstrs
		if s.o != nil {
			if m := s.o.StreamMetrics(); m != nil {
				m.Speculated.Add(int64(st.Launched))
				m.SpecHits.Add(int64(st.Hits))
				m.SpecWastedInstr.Add(st.WastedWarpInstrs)
				m.OverlapFraction.Set(st.OverlapFraction)
			}
		}
	}
	progress(final)
	return resp, nil
}
