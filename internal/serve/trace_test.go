package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pka/internal/obs"
	"pka/internal/sampling"
	"pka/internal/serve"
)

func postStudy(t *testing.T, ts *httptest.Server, body string, traceparent string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+serve.StudyPath, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set(serve.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestTracedStudyDeterminism is the tentpole acceptance test at the serve
// tier: tracing and provenance only APPEND fields — every study byte is
// identical with them on or off — and the appended provenance accounts
// every kernel launch to exactly one tier.
func TestTracedStudyDeterminism(t *testing.T) {
	srv := serve.New(serve.Options{
		Exec:     sampling.NewExec(nil, nil),
		TraceIDs: obs.NewIDGen(11),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plain := postStudy(t, ts, `{"workload":"Rodinia/gauss_mat4","mode":"pka"}`, "")

	parent := obs.NewIDGen(3).NewTrace()
	traced := postStudy(t, ts,
		`{"workload":"Rodinia/gauss_mat4","mode":"pka","trace":true,"provenance":true}`,
		parent.Traceparent())

	// Byte-level: the traced response is the plain response with
	// provenance and trace appended before the closing brace.
	if !bytes.HasSuffix(plain, []byte("}\n")) {
		t.Fatalf("unexpected plain response tail: %q", plain[len(plain)-4:])
	}
	prefix := plain[:len(plain)-2]
	if !bytes.HasPrefix(traced, prefix) {
		t.Fatalf("traced response diverges from plain study bytes:\nplain:  %s\ntraced: %s", plain, traced)
	}
	if !bytes.HasPrefix(traced[len(prefix):], []byte(`,"provenance":`)) {
		t.Fatalf("traced response does not append provenance first: %s", traced[len(prefix):])
	}

	var got serve.StudyResponse
	if err := json.Unmarshal(traced, &got); err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil {
		t.Fatal("no provenance block on a provenance-requesting response")
	}
	if got.Provenance.TraceID != parent.TraceID {
		t.Errorf("provenance trace ID %s, want the client's %s", got.Provenance.TraceID, parent.TraceID)
	}
	sum := 0
	for _, n := range got.Provenance.Tiers {
		sum += n
	}
	if sum != got.Kernels || got.Provenance.Kernels != got.Kernels {
		t.Errorf("tier counts sum %d / provenance kernels %d, want the study's launch count %d",
			sum, got.Provenance.Kernels, got.Kernels)
	}
	if len(got.Trace) == 0 {
		t.Fatal("no merged trace on a traced response")
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got.Trace, &doc); err != nil {
		t.Fatalf("embedded trace is not valid JSON: %v", err)
	}
	foundProc, foundRoot := false, false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" && ev.Args["name"] == "pkaserve" {
			foundProc = true
		}
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "study ") {
			foundRoot = true
			if tid, _ := ev.Args["trace_id"].(string); tid != parent.TraceID {
				t.Errorf("root span trace_id %v, want %s", ev.Args["trace_id"], parent.TraceID)
			}
			if pid, _ := ev.Args["parent_id"].(string); pid != parent.SpanID {
				t.Errorf("root span parent_id %v, want the client's span %s", ev.Args["parent_id"], parent.SpanID)
			}
		}
	}
	if !foundProc || !foundRoot {
		t.Fatalf("merged trace missing pkaserve process (%v) or study root span (%v)", foundProc, foundRoot)
	}

	// The body flag alone (no header) starts a fresh root trace.
	rooted := postStudy(t, ts, `{"workload":"Rodinia/gauss_mat4","mode":"pka","trace":true}`, "")
	var fresh serve.StudyResponse
	if err := json.Unmarshal(rooted, &fresh); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Trace) == 0 {
		t.Fatal("body trace flag did not produce a trace")
	}
	if fresh.Provenance != nil {
		t.Fatal("provenance block present without being requested")
	}

	// The debug endpoint reports every completed study's tier attribution.
	dresp, err := http.Get(ts.URL + serve.ProvenancePath)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	db, _ := io.ReadAll(dresp.Body)
	report := string(db)
	if !strings.Contains(report, "execution provenance:") || !strings.Contains(report, "tier sim") {
		t.Fatalf("provenance report missing tier attribution:\n%s", report)
	}
	if !strings.Contains(report, "trace="+parent.TraceID) {
		t.Errorf("provenance report does not link the traced study:\n%s", report)
	}
}

// TestMalformedTraceparentIgnored pins "unparseable means not traced":
// garbage headers yield the plain response, never an error.
func TestMalformedTraceparentIgnored(t *testing.T) {
	srv := serve.New(serve.Options{Exec: sampling.NewExec(nil, nil)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plain := postStudy(t, ts, `{"workload":"Rodinia/gauss_mat4","mode":"pks"}`, "")
	garbled := postStudy(t, ts, `{"workload":"Rodinia/gauss_mat4","mode":"pks"}`, "00-zzzz-not-a-trace-01")
	if !bytes.Equal(plain, garbled) {
		t.Fatalf("malformed traceparent changed the response:\n%s\nvs\n%s", plain, garbled)
	}
}
