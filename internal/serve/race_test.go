package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pka/internal/artifact"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/sampling"
	"pka/internal/serve"
)

// TestServeRace hammers one server with concurrent mixed-tenant requests
// through the full stack — HTTP decode, weighted-fair admission, the Exec
// ladder with mem and disk caches, live metrics — and asserts every
// response is byte-identical to a serial, uncached reference run,
// whatever the interleaving. Run it under -race: the assertion here is
// "no data races anywhere in the ladder" as much as "same bytes".
func TestServeRace(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer; skipped in -short")
	}
	store, err := artifact.Open(t.TempDir(), artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exec := sampling.NewExec(parallel.NewScheduler(4), store)
	srv := serve.New(serve.Options{
		Exec:          exec,
		Workers:       4,
		QueueDepth:    256,
		TenantWeights: map[string]int{"prod": 3, "batch": 1},
		Obs:           obs.NewObserver(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unique study specs (workload × mode × params); tenants vary per
	// request but never the outcome — scheduling identity, not content.
	specs := []string{
		`"workload":"Rodinia/gauss_mat4"`,
		`"workload":"Rodinia/gauss_mat4","mode":"pks"`,
		`"workload":"Rodinia/bfs4096","target":2`,
		`"workload":"Rodinia/bfs4096","mode":"full"`,
		`"workload":"Rodinia/hots_512","mode":"full","silicon":true`,
		`"workload":"Rodinia/gauss_s16","n":5000`,
	}
	want := make([][]byte, len(specs))
	for i, spec := range specs {
		req, err := serve.DecodeStudyRequest(strings.NewReader("{" + spec + "}"))
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		direct, err := serve.Run(nil, nil, req)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if want[i], err = json.Marshal(direct); err != nil {
			t.Fatal(err)
		}
		want[i] = append(want[i], '\n')
	}

	// Three rounds: cold cache, warm mem+disk, warm again — the bytes may
	// never move. 3 tenants × 6 specs × round = 18 concurrent requests.
	tenants := []string{"prod", "batch", "anon"}
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for _, tenant := range tenants {
			for i, spec := range specs {
				wg.Add(1)
				go func(tenant string, i int, spec string) {
					defer wg.Done()
					doc := fmt.Sprintf(`{"tenant":%q,%s}`, tenant, spec)
					resp, err := http.Post(ts.URL+serve.StudyPath, "application/json", strings.NewReader(doc))
					if err != nil {
						t.Errorf("round %d %s spec %d: %v", round, tenant, i, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("round %d %s spec %d: %s %s (%v)", round, tenant, i, resp.Status, body, err)
						return
					}
					if !bytes.Equal(body, want[i]) {
						t.Errorf("round %d %s spec %d diverged:\n got %s\nwant %s", round, tenant, i, body, want[i])
					}
				}(tenant, i, spec)
			}
		}
		wg.Wait()
	}

	h := srv.Health()
	if wantN := int64(3 * len(tenants) * len(specs)); h.Completed != wantN {
		t.Errorf("completed %d requests, want %d (health %+v)", h.Completed, wantN, h)
	}
	if memHits, _ := exec.MemStats(); memHits == 0 {
		t.Error("mem cache never hit across identical concurrent requests")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Errorf("drain after hammer: %v", err)
	}
	if rep := srv.LatencyReport(); rep.Requests != 3*len(tenants)*len(specs) {
		t.Errorf("latency report covers %d requests, want %d", rep.Requests, 3*len(tenants)*len(specs))
	}
}

// TestServeRaceInputOrderIndependence reruns one spec set through two
// servers with opposite submission orders and different worker widths and
// diffs the collected responses — the outcome set must not depend on
// arrival order or parallelism.
func TestServeRaceInputOrderIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer; skipped in -short")
	}
	specs := []string{
		`{"workload":"Rodinia/gauss_mat4"}`,
		`{"workload":"Rodinia/bfs4096","mode":"pks"}`,
		`{"workload":"Rodinia/hots_512","mode":"full"}`,
		`{"workload":"Rodinia/gauss_s16","target":10}`,
	}
	run := func(workers int, reverse bool) [][]byte {
		t.Helper()
		srv := serve.New(serve.Options{
			Exec:    sampling.NewExec(parallel.NewScheduler(workers), nil),
			Workers: workers,
		})
		out := make([][]byte, len(specs))
		var wg sync.WaitGroup
		for i := range specs {
			idx := i
			if reverse {
				idx = len(specs) - 1 - i
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, err := serve.DecodeStudyRequest(strings.NewReader(specs[idx]))
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := srv.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				out[idx], _ = json.Marshal(resp)
			}()
		}
		wg.Wait()
		return out
	}
	a, b := run(1, false), run(4, true)
	for i := range specs {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("spec %d depends on order/parallelism:\n serial %s\n wide   %s", i, a[i], b[i])
		}
	}
}
