package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/remote"
	"pka/internal/sampling"
	"pka/internal/serve"
)

// Fault modes a worker can be switched into mid-test.
const (
	workerHealthy = iota
	workerBusy    // answer every exec with 429
	workerHang    // sit on the request until the client gives up
)

// faultWorker is a real pkad worker wrapped in a switchable fault
// injector.
func faultWorker(mode *atomic.Int32) *httptest.Server {
	h := remote.NewServer(sampling.NewExec(nil, nil), 8).Handler()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case workerBusy:
			http.Error(w, "worker at capacity", http.StatusTooManyRequests)
		case workerHang:
			<-r.Context().Done()
		default:
			h.ServeHTTP(w, r)
		}
	}))
}

// inlineDoc builds a unique multi-kernel inline workload per phase so no
// phase is satisfied from a cache warmed by an earlier one.
func inlineDoc(tag string, compute int) string {
	return fmt.Sprintf(`{"name":"fault_%s","kernels":[`+
		`{"name":"a","grid":[64,1,1],"block":[128,1,1],"mix":{"compute":%d,"global_loads":4},"coalescing_factor":4,"working_set_bytes":1048576,"repeat":4},`+
		`{"name":"b","grid":[32,1,1],"block":[64,1,1],"mix":{"compute":%d,"global_loads":8},"coalescing_factor":2,"working_set_bytes":4194304,"repeat":3}]}`,
		tag, compute, compute+7)
}

// TestServeFaultInjection drives the server's remote tier through a
// worker crash, a busy storm, a hang, and a recovery, asserting after
// each phase that the response still matches the serial reference
// byte-for-byte — degraded delivery may cost time, never correctness —
// and that the circuit breaker opens and then readmits the healed worker.
func TestServeFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-phase fault orchestration; skipped in -short")
	}
	var dyingMode, faultyMode atomic.Int32
	dying := faultWorker(&dyingMode)
	faulty := faultWorker(&faultyMode)

	observer := obs.NewObserver()
	rm := observer.RemoteMetrics()
	disp := remote.NewDispatcher(remote.DispatcherOptions{
		Workers:      []string{dying.URL, faulty.URL},
		CapPerWorker: 4,
		HedgeAfter:   25 * time.Millisecond,
		Timeout:      300 * time.Millisecond,
		BreakAfter:   2,
		Cooldown:     200 * time.Millisecond,
		Metrics:      rm,
	})
	exec := sampling.NewExec(parallel.NewScheduler(2), nil)
	exec.SetRemote(disp)
	srv := serve.New(serve.Options{Exec: exec, Workers: 2, Obs: observer})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	study := func(phase, doc string) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+serve.StudyPath, "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s %s (%v)", phase, resp.Status, body, err)
		}
		return body
	}
	// check runs one inline-workload study through the faulted stack and
	// diffs it against the serial, remote-free reference.
	check := func(phase, tag string, compute int) {
		t.Helper()
		doc := fmt.Sprintf(`{"mode":"full","workload_json":%s}`, inlineDoc(tag, compute))
		got := study(phase, doc)
		ref, err := serve.DecodeStudyRequest(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := serve.Run(nil, nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(direct)
		want = append(want, '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("%s: response diverged from serial reference\n got %s\nwant %s", phase, got, want)
		}
	}

	// Phase 1: healthy pool. The remote tier must actually serve RPCs.
	check("phase1-healthy", "p1", 20)
	if rm.RPCSuccess.Value() == 0 {
		t.Fatal("phase1: healthy pool served no RPCs")
	}

	// Phase 2: one worker dies mid-fleet (connections severed, socket
	// closed), the other answers only 429. Every task must fall back to
	// local simulation; busy responses must NOT trip the breaker.
	dying.CloseClientConnections()
	dying.Close()
	faultyMode.Store(workerBusy)
	busyBefore := rm.Busy.Value()
	check("phase2-dead+busy", "p2", 30)
	if rm.FallbackLocal.Value() == 0 {
		t.Error("phase2: no local fallbacks despite a dead+busy pool")
	}
	if rm.Busy.Value() == busyBefore {
		t.Error("phase2: busy worker was never consulted")
	}

	// Phase 3: the survivor hangs instead. RPC timeouts are consecutive
	// failures, so the breaker must open.
	faultyMode.Store(workerHang)
	check("phase3-hang", "p3", 40)
	if rm.BreakerOpens.Value() == 0 {
		t.Error("phase3: hanging worker never opened its breaker")
	}

	// Phase 4: the survivor heals. After the cooldown the breaker must
	// readmit it and remote successes must resume.
	faultyMode.Store(workerHealthy)
	time.Sleep(450 * time.Millisecond) // > Cooldown, with slack
	successBefore := rm.RPCSuccess.Value()
	check("phase4-recovered", "p4", 50)
	if rm.RPCSuccess.Value() == successBefore {
		t.Error("phase4: healed worker got no RPCs; breaker never recovered")
	}
}
