package serve

import "container/heap"

// fairQueue is a virtual-finish-time weighted-fair queue over unit-cost
// study requests. Each tenant advances a private virtual clock by
// 1/weight per queued request; the queue always releases the pending
// request with the smallest virtual finish time (FIFO on ties). A tenant
// with weight 3 therefore drains three requests for every one of a
// weight-1 tenant under contention, while an uncontended tenant is served
// immediately — the classic start-time fair queueing construction, here
// with unit cost because admission charges per request, not per cycle.
//
// The queue is not goroutine-safe; the Server serializes access under its
// own mutex.
type fairQueue struct {
	weights map[string]float64 // static per-tenant weights; missing = 1
	tenants map[string]*tenantClock
	items   wfqHeap
	vtime   float64 // global virtual time: vstart of the last release
	seq     uint64  // FIFO tiebreak
}

type tenantClock struct {
	weight      float64
	lastVFinish float64
}

type wfqItem struct {
	p       *pending
	vstart  float64
	vfinish float64
	seq     uint64
}

func newFairQueue(weights map[string]int) *fairQueue {
	q := &fairQueue{weights: map[string]float64{}, tenants: map[string]*tenantClock{}}
	for t, w := range weights {
		if w > 0 {
			q.weights[t] = float64(w)
		}
	}
	return q
}

func (q *fairQueue) clock(tenant string) *tenantClock {
	tc := q.tenants[tenant]
	if tc == nil {
		w := q.weights[tenant]
		if w <= 0 {
			w = 1
		}
		tc = &tenantClock{weight: w}
		q.tenants[tenant] = tc
	}
	return tc
}

// push enqueues one request. A tenant that went idle restarts at the
// current global virtual time (max clause), so sitting out earns no
// credit and a returning tenant cannot starve the backlog.
func (q *fairQueue) push(p *pending) {
	tc := q.clock(p.req.Tenant)
	vstart := q.vtime
	if tc.lastVFinish > vstart {
		vstart = tc.lastVFinish
	}
	vfinish := vstart + 1/tc.weight
	tc.lastVFinish = vfinish
	q.seq++
	heap.Push(&q.items, wfqItem{p: p, vstart: vstart, vfinish: vfinish, seq: q.seq})
}

// pop releases the most-entitled pending request, or nil when empty.
func (q *fairQueue) pop() *pending {
	if len(q.items) == 0 {
		return nil
	}
	it := heap.Pop(&q.items).(wfqItem)
	if it.vstart > q.vtime {
		q.vtime = it.vstart
	}
	return it.p
}

func (q *fairQueue) len() int { return len(q.items) }

type wfqHeap []wfqItem

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].vfinish != h[j].vfinish {
		return h[i].vfinish < h[j].vfinish
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wfqHeap) Push(x any)   { *h = append(*h, x.(wfqItem)) }
func (h *wfqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
