package serve_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pka/internal/obs"
	"pka/internal/serve"
)

// fakeClock is a manually-advanced clock; Sleep advances it instantly, so
// a whole load-generation run happens in zero wall time with fully
// deterministic timestamps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestGoldenLatencyReport pins the whole deterministic-serving story in
// one place: a fixed Poisson seed, a fake clock, and per-template service
// times produce a byte-pinned percentile report (text and JSON) and a
// byte-pinned pka_serve_* Prometheus exposition. If scheduling, the
// recorder, percentile math, or metric registration drifts, these bytes
// move.
func TestGoldenLatencyReport(t *testing.T) {
	clk := newFakeClock()
	observer := obs.NewObserverAt(clk.Now)
	// Deterministic service times per (tenant, workload).
	service := map[string]time.Duration{
		"alpha/Rodinia/gauss_mat4": 5 * time.Millisecond,
		"alpha/Rodinia/bfs4096":    12 * time.Millisecond,
		"beta/Rodinia/gauss_mat4":  30 * time.Millisecond,
	}
	srv := serve.New(serve.Options{
		Workers:       1,
		QueueDepth:    16,
		TenantWeights: map[string]int{"alpha": 3, "beta": 1},
		Obs:           observer,
		Now:           clk.Now,
		Runner: func(req *serve.StudyRequest) (*serve.StudyResponse, error) {
			d, ok := service[req.Tenant+"/"+req.Workload]
			if !ok {
				t.Errorf("unexpected request %s/%s", req.Tenant, req.Workload)
			}
			clk.Sleep(d)
			return &serve.StudyResponse{Workload: req.Workload, Device: req.Device, Mode: req.Mode}, nil
		},
	})
	gen := &serve.LoadGen{
		Rate:     50,
		Requests: 24,
		Seed:     7,
		Templates: []serve.StudyRequest{
			{Tenant: "alpha", Workload: "Rodinia/gauss_mat4"},
			{Tenant: "alpha", Workload: "Rodinia/bfs4096"},
			{Tenant: "beta", Workload: "Rodinia/gauss_mat4"},
		},
		Do:          func(req *serve.StudyRequest) error { _, err := srv.Do(req); return err },
		Now:         clk.Now,
		Sleep:       clk.Sleep,
		Synchronous: true, // closed-loop: full determinism, including execution order
	}
	clientRep, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}

	const wantClient = `latency report: 24 requests (0 errors), window 24
  queue wait  p50 0.00ms  p95 0.00ms  p99 0.00ms
  latency     p50 12.00ms  p95 30.00ms  p99 30.00ms  mean 13.29ms  max 30.00ms
  tenant alpha          18 requests  p50 5.00ms  p95 12.00ms  p99 12.00ms
  tenant beta            6 requests  p50 30.00ms  p95 30.00ms  p99 30.00ms
`
	if got := clientRep.String(); got != wantClient {
		t.Errorf("client report drifted:\n got:\n%s\nwant:\n%s", got, wantClient)
	}

	// The server-side report covers the same 24 requests (queue waits are
	// zero in closed-loop mode: each request starts the instant it is
	// admitted).
	serverRep := srv.LatencyReport()
	if got := serverRep.String(); got != wantClient {
		t.Errorf("server report drifted:\n got:\n%s\nwant:\n%s", got, wantClient)
	}

	// JSON form: integer nanoseconds, byte-reproducible.
	js, err := json.Marshal(serverRep)
	if err != nil {
		t.Fatal(err)
	}
	const wantJSON = `{"requests":24,"errors":0,"window":24,"queue_p50_ns":0,"queue_p95_ns":0,"queue_p99_ns":0,"p50_ns":12000000,"p95_ns":30000000,"p99_ns":30000000,"mean_ns":13291666,"max_ns":30000000,"tenants":[{"tenant":"alpha","requests":18,"p50_ns":5000000,"p95_ns":12000000,"p99_ns":12000000},{"tenant":"beta","requests":6,"p50_ns":30000000,"p95_ns":30000000,"p99_ns":30000000}]}`
	if string(js) != wantJSON {
		t.Errorf("JSON report drifted:\n got %s\nwant %s", js, wantJSON)
	}

	// The pka_serve_* exposition slice, byte-pinned.
	var sb strings.Builder
	if err := observer.Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var serveLines []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "pka_serve_") {
			serveLines = append(serveLines, line)
		}
	}
	got := strings.Join(serveLines, "\n") + "\n"
	const wantExpo = `# HELP pka_serve_completed_total study requests that returned a result
# TYPE pka_serve_completed_total counter
pka_serve_completed_total 24
# HELP pka_serve_drain_rejects_total requests rejected with 503 while draining
# TYPE pka_serve_drain_rejects_total counter
pka_serve_drain_rejects_total 0
# HELP pka_serve_errors_total admitted requests that failed in execution
# TYPE pka_serve_errors_total counter
pka_serve_errors_total 0
# HELP pka_serve_inflight study requests currently executing
# TYPE pka_serve_inflight gauge
pka_serve_inflight 0
# HELP pka_serve_invalid_total requests rejected by the decoder/validator
# TYPE pka_serve_invalid_total counter
pka_serve_invalid_total 0
# HELP pka_serve_latency_seconds time from admission to completion
# TYPE pka_serve_latency_seconds histogram
pka_serve_latency_seconds_bucket{le="0.001"} 0
pka_serve_latency_seconds_bucket{le="0.005"} 11
pka_serve_latency_seconds_bucket{le="0.025"} 18
pka_serve_latency_seconds_bucket{le="0.1"} 24
pka_serve_latency_seconds_bucket{le="0.25"} 24
pka_serve_latency_seconds_bucket{le="0.5"} 24
pka_serve_latency_seconds_bucket{le="1"} 24
pka_serve_latency_seconds_bucket{le="2.5"} 24
pka_serve_latency_seconds_bucket{le="10"} 24
pka_serve_latency_seconds_bucket{le="+Inf"} 24
pka_serve_latency_seconds_sum 0.31900000000000006
pka_serve_latency_seconds_count 24
# HELP pka_serve_queue_depth study requests waiting for a runner
# TYPE pka_serve_queue_depth gauge
pka_serve_queue_depth 0
# HELP pka_serve_queue_wait_seconds time from admission to execution start
# TYPE pka_serve_queue_wait_seconds histogram
pka_serve_queue_wait_seconds_bucket{le="0.0005"} 24
pka_serve_queue_wait_seconds_bucket{le="0.001"} 24
pka_serve_queue_wait_seconds_bucket{le="0.005"} 24
pka_serve_queue_wait_seconds_bucket{le="0.025"} 24
pka_serve_queue_wait_seconds_bucket{le="0.1"} 24
pka_serve_queue_wait_seconds_bucket{le="0.5"} 24
pka_serve_queue_wait_seconds_bucket{le="2.5"} 24
pka_serve_queue_wait_seconds_bucket{le="+Inf"} 24
pka_serve_queue_wait_seconds_sum 0
pka_serve_queue_wait_seconds_count 24
# HELP pka_serve_rejected_total requests rejected with 429 by the full queue
# TYPE pka_serve_rejected_total counter
pka_serve_rejected_total 0
# HELP pka_serve_requests_total study requests admitted to the queue
# TYPE pka_serve_requests_total counter
pka_serve_requests_total 24
`
	if got != wantExpo {
		t.Errorf("pka_serve_ exposition drifted:\n got:\n%s\nwant:\n%s", got, wantExpo)
	}

	// Replaying the identical run reproduces the identical client report
	// byte-for-byte — the seeded-load-generator acceptance criterion.
	clk2 := newFakeClock()
	srv2 := serve.New(serve.Options{
		Workers: 1, QueueDepth: 16,
		TenantWeights: map[string]int{"alpha": 3, "beta": 1},
		Now:           clk2.Now,
		Runner: func(req *serve.StudyRequest) (*serve.StudyResponse, error) {
			clk2.Sleep(service[req.Tenant+"/"+req.Workload])
			return &serve.StudyResponse{Workload: req.Workload, Device: req.Device, Mode: req.Mode}, nil
		},
	})
	gen2 := *gen
	gen2.Do = func(req *serve.StudyRequest) error { _, err := srv2.Do(req); return err }
	gen2.Now, gen2.Sleep = clk2.Now, clk2.Sleep
	rep2, err := gen2.Run()
	if err != nil {
		t.Fatal(err)
	}
	js1, _ := json.Marshal(clientRep)
	js2, _ := json.Marshal(rep2)
	if string(js1) != string(js2) {
		t.Errorf("replay diverged:\n first  %s\n second %s", js1, js2)
	}
}
