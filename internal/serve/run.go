package serve

import (
	"bytes"
	"fmt"

	"pka/internal/core"
	"pka/internal/obs"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/stats"
)

// Run executes one validated study request on the given Exec ladder and
// returns its response. It is a pure function of the request's study
// parameters: any exec (nil for serial uncached, or any mix of mem/disk/
// remote tiers) yields byte-identical responses, which is what lets the
// serving tier queue, reorder, and retry without changing results. The
// observer only adds telemetry, and tracing/provenance only append fields
// after the study results — every study field is byte-identical with them
// on or off.
func Run(exec *sampling.Exec, o *obs.Observer, req *StudyRequest) (*StudyResponse, error) {
	return RunWithSelection(exec, o, req, nil)
}

// RunWithSelection is Run with a precomputed Principal Kernel Selection,
// as the streaming endpoint produces while events are still arriving. A
// nil sel falls back to batch pks.Select; because the streaming selection
// is byte-identical to the batch one by construction, the response is
// byte-identical either way. Full mode ignores sel.
func RunWithSelection(exec *sampling.Exec, o *obs.Observer, req *StudyRequest, sel *pks.Selection) (*StudyResponse, error) {
	if req.w == nil {
		// Direct callers may build requests without going through
		// DecodeStudyRequest.
		if err := req.Validate(); err != nil {
			return nil, err
		}
	}
	// Tracing turns on when the client shipped a traceparent or asked in
	// the body; either way the request gets its own tracer so the merged
	// trace holds only this study's spans. Provenance recording turns on
	// with tracing (the root span reports tier counts), on request, or when
	// the server injected a recorder for its debug report.
	traced := req.Trace || req.parent.Valid()
	flight := req.flight
	if flight == nil && (traced || req.Provenance) {
		flight = sampling.NewFlightRecorder()
	}
	ids := req.ids
	if ids == nil && traced {
		ids = obs.NewIDGen(0)
	}
	var (
		tr   *obs.Tracer
		root *obs.Span
		tc   obs.TraceContext
	)
	if traced {
		tr = obs.NewTracer()
		tr.SetProcessName("pkaserve")
		if o != nil && o.Metrics != nil {
			tr.SetDropCounter(o.Metrics.Counter(
				"pka_trace_dropped_total", "trace events discarded at the tracer memory cap"))
		}
		if req.parent.Valid() {
			tc = req.parent.Child(ids)
		} else {
			tc = ids.NewTrace()
		}
		args := []obs.Arg{
			{Key: "trace_id", Val: tc.TraceID},
			{Key: "span_id", Val: tc.SpanID},
		}
		if req.parent.Valid() {
			args = append(args, obs.Arg{Key: "parent_id", Val: req.parent.SpanID})
		}
		args = append(args,
			obs.Arg{Key: "tenant", Val: req.Tenant},
			obs.Arg{Key: "mode", Val: req.Mode})
		root = tr.Track("serve").Start("study "+req.w.FullName(), args...)
	}
	resp := &StudyResponse{
		Workload: req.w.FullName(),
		Device:   req.Device,
		Mode:     req.Mode,
	}
	cfg := core.Config{
		Device:   req.dev,
		PKS:      pks.Options{TargetErrorPct: req.TargetErrorPct, MaxK: req.MaxK},
		PKP:      pkp.Options{Threshold: req.Threshold, Window: req.Window},
		Obs:      o,
		Exec:     exec,
		Trace:    tc,
		TraceIDs: ids,
		Tracer:   tr,
		Flight:   flight,
	}
	switch req.Mode {
	case "full":
		var tobs func(i int) sampling.TaskObs
		if flight != nil {
			tobs = func(i int) sampling.TaskObs {
				return sampling.TaskObs{
					Flight: flight, Phase: "full", Index: i,
					Tracer: tr, Trace: tc, IDs: ids,
				}
			}
		}
		full, err := exec.FullSimObs(req.dev, req.w, 0, tobs)
		if err != nil {
			root.End()
			return nil, fmt.Errorf("serve: full sim of %s: %w", req.w.FullName(), err)
		}
		resp.Kernels = full.KernelsSimulated
		resp.ProjCycles = full.ProjCycles
		resp.SimWarpInstrs = full.SimWarpInstrs
		resp.IPC = full.IPC
		resp.DRAMUtil = full.DRAMUtil
		resp.Truncated = full.Truncated
	default: // "pks", "pka"
		if sel == nil {
			var err error
			sel, err = pks.Select(req.dev, req.w, cfg.PKSOptions())
			if err != nil {
				root.End()
				return nil, fmt.Errorf("serve: selection for %s: %w", req.w.FullName(), err)
			}
		}
		ss, err := core.RunSampled(cfg, req.w, sel, req.Mode == "pka")
		if err != nil {
			root.End()
			return nil, err
		}
		resp.K = sel.K
		resp.Kernels = len(sel.Groups)
		resp.ProjCycles = ss.ProjCycles
		resp.SimWarpInstrs = ss.SimWarpInstrs
		resp.IPC = ss.IPC
		resp.DRAMUtil = ss.DRAMUtil
		resp.Capped = ss.Capped
	}
	resp.SimHours = cfg.SimHours(resp.SimWarpInstrs)
	if req.Silicon {
		sil, err := sampling.SiliconTotal(req.dev, req.w)
		if err != nil {
			root.End()
			return nil, fmt.Errorf("serve: silicon walk of %s: %w", req.w.FullName(), err)
		}
		resp.SiliconCycles = sil.Cycles
		resp.ErrorPct = stats.AbsPctErr(float64(resp.ProjCycles), float64(sil.Cycles))
	}
	if req.Provenance {
		resp.Provenance = &ProvenanceBlock{
			TraceID: tc.TraceID,
			Kernels: flight.Len(),
			Tiers:   flight.TierCounts(),
			Workers: flight.WorkerCounts(),
			Entries: flight.Entries(),
		}
	}
	if traced {
		root.Arg("kernels", resp.Kernels).End()
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			return nil, fmt.Errorf("serve: rendering trace: %w", err)
		}
		resp.Trace = buf.Bytes()
	}
	return resp, nil
}
