package serve

import (
	"fmt"

	"pka/internal/core"
	"pka/internal/obs"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/stats"
)

// Run executes one validated study request on the given Exec ladder and
// returns its response. It is a pure function of the request's study
// parameters: any exec (nil for serial uncached, or any mix of mem/disk/
// remote tiers) yields byte-identical responses, which is what lets the
// serving tier queue, reorder, and retry without changing results. The
// observer only adds telemetry.
func Run(exec *sampling.Exec, o *obs.Observer, req *StudyRequest) (*StudyResponse, error) {
	if req.w == nil {
		// Direct callers may build requests without going through
		// DecodeStudyRequest.
		if err := req.Validate(); err != nil {
			return nil, err
		}
	}
	resp := &StudyResponse{
		Workload: req.w.FullName(),
		Device:   req.Device,
		Mode:     req.Mode,
	}
	cfg := core.Config{
		Device: req.dev,
		PKS:    pks.Options{TargetErrorPct: req.TargetErrorPct, MaxK: req.MaxK},
		PKP:    pkp.Options{Threshold: req.Threshold, Window: req.Window},
		Obs:    o,
		Exec:   exec,
	}
	switch req.Mode {
	case "full":
		full, err := exec.FullSim(req.dev, req.w, 0)
		if err != nil {
			return nil, fmt.Errorf("serve: full sim of %s: %w", req.w.FullName(), err)
		}
		resp.Kernels = full.KernelsSimulated
		resp.ProjCycles = full.ProjCycles
		resp.SimWarpInstrs = full.SimWarpInstrs
		resp.IPC = full.IPC
		resp.DRAMUtil = full.DRAMUtil
		resp.Truncated = full.Truncated
	default: // "pks", "pka"
		sel, err := pks.Select(req.dev, req.w, cfg.PKSOptions())
		if err != nil {
			return nil, fmt.Errorf("serve: selection for %s: %w", req.w.FullName(), err)
		}
		ss, err := core.RunSampled(cfg, req.w, sel, req.Mode == "pka")
		if err != nil {
			return nil, err
		}
		resp.K = sel.K
		resp.Kernels = len(sel.Groups)
		resp.ProjCycles = ss.ProjCycles
		resp.SimWarpInstrs = ss.SimWarpInstrs
		resp.IPC = ss.IPC
		resp.DRAMUtil = ss.DRAMUtil
		resp.Capped = ss.Capped
	}
	resp.SimHours = cfg.SimHours(resp.SimWarpInstrs)
	if req.Silicon {
		sil, err := sampling.SiliconTotal(req.dev, req.w)
		if err != nil {
			return nil, fmt.Errorf("serve: silicon walk of %s: %w", req.w.FullName(), err)
		}
		resp.SiliconCycles = sil.Cycles
		resp.ErrorPct = stats.AbsPctErr(float64(resp.ProjCycles), float64(sil.Cycles))
	}
	return resp, nil
}
