package serve_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pka/internal/serve"
)

func genTemplates() []serve.StudyRequest {
	return []serve.StudyRequest{
		{Tenant: "alpha", Workload: "Rodinia/gauss_mat4"},
		{Tenant: "alpha", Workload: "Rodinia/bfs4096"},
		{Tenant: "beta", Workload: "Rodinia/gauss_mat4"},
	}
}

// TestLoadGenPlanDeterministic pins the open-loop generator's central
// contract: the schedule is a pure function of the seed.
func TestLoadGenPlanDeterministic(t *testing.T) {
	gen := &serve.LoadGen{Rate: 50, Requests: 64, Seed: 7, Templates: genTemplates()}
	plan1, plan2 := gen.Plan(), gen.Plan()
	if !reflect.DeepEqual(plan1, plan2) {
		t.Fatal("same seed produced different plans")
	}
	var last time.Duration
	templatesSeen := map[int]bool{}
	for i, a := range plan1 {
		if a.At < last {
			t.Fatalf("arrival %d goes backwards: %v after %v", i, a.At, last)
		}
		last = a.At
		if a.Template < 0 || a.Template >= len(gen.Templates) {
			t.Fatalf("arrival %d draws template %d of %d", i, a.Template, len(gen.Templates))
		}
		templatesSeen[a.Template] = true
	}
	if len(templatesSeen) != len(gen.Templates) {
		t.Errorf("64 draws hit only %d of %d templates", len(templatesSeen), len(gen.Templates))
	}
	gen.Seed = 8
	if reflect.DeepEqual(plan1, gen.Plan()) {
		t.Error("different seeds produced identical plans")
	}
}

// TestLoadGenOpenLoop runs the generator against a stub server and checks
// every planned request fires exactly once and lands in the report.
func TestLoadGenOpenLoop(t *testing.T) {
	var mu sync.Mutex
	perTenant := map[string]int{}
	gen := &serve.LoadGen{
		Rate:      5000, // effectively instantaneous on the real clock
		Requests:  40,
		Seed:      3,
		Templates: genTemplates(),
		Do: func(req *serve.StudyRequest) error {
			mu.Lock()
			perTenant[req.Tenant]++
			mu.Unlock()
			return nil
		},
	}
	rep, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 || rep.Errors != 0 || rep.Window != 40 {
		t.Fatalf("report header: %+v", rep)
	}
	total := 0
	for _, n := range perTenant {
		total += n
	}
	if total != 40 || perTenant["alpha"] == 0 || perTenant["beta"] == 0 {
		t.Errorf("fired %d requests across %v, want 40 across both tenants", total, perTenant)
	}
	if len(rep.Tenants) != 2 {
		t.Errorf("report breaks down %d tenants, want 2", len(rep.Tenants))
	}

	// Misconfiguration is an error, not a hang.
	if _, err := (&serve.LoadGen{}).Run(); err == nil {
		t.Error("zero-value LoadGen ran")
	}
	if _, err := (&serve.LoadGen{Rate: 1, Requests: 1, Templates: []serve.StudyRequest{{Workload: "Rodinia/nope"}}, Do: func(*serve.StudyRequest) error { return nil }}).Run(); err == nil {
		t.Error("unresolvable template accepted")
	}
}

// TestRecorderPercentiles pins the nearest-rank math on a tiny window.
func TestRecorderPercentiles(t *testing.T) {
	rec := serve.NewRecorder(100)
	for i := 1; i <= 100; i++ {
		rec.Observe("t", 0, time.Duration(i)*time.Millisecond, false)
	}
	rep := rec.Report()
	if rep.P50 != 50*time.Millisecond || rep.P95 != 95*time.Millisecond || rep.P99 != 99*time.Millisecond {
		t.Errorf("percentiles: p50=%v p95=%v p99=%v", rep.P50, rep.P95, rep.P99)
	}
	if rep.Max != 100*time.Millisecond || rep.Mean != 50500*time.Microsecond {
		t.Errorf("max=%v mean=%v", rep.Max, rep.Mean)
	}

	// The ring keeps only the newest window.
	small := serve.NewRecorder(4)
	for i := 1; i <= 10; i++ {
		small.Observe("t", 0, time.Duration(i)*time.Second, i == 1)
	}
	rep = small.Report()
	if rep.Requests != 10 || rep.Window != 4 || rep.Max != 10*time.Second || rep.P50 != 8*time.Second {
		t.Errorf("rolled window: %+v", rep)
	}
}
