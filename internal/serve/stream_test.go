package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pka/internal/parallel"
	"pka/internal/sampling"
	"pka/internal/serve"
	"pka/internal/workload"
)

// streamBody builds a StreamPath request: one study-request line followed
// by the workload's kernel-event stream.
func streamBody(t *testing.T, reqLine string, wname string) *bytes.Buffer {
	t.Helper()
	w := workload.Find(wname)
	if w == nil {
		t.Fatalf("workload %s not registered", wname)
	}
	var buf bytes.Buffer
	buf.WriteString(reqLine + "\n")
	if err := workload.WriteEvents(&buf, w); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestStreamEndpointMatchesStudy pins the progressive endpoint's core
// promise: the final NDJSON line is byte-identical to the StudyPath
// response for the same workload and parameters, with at least one
// progress line ahead of it.
func TestStreamEndpointMatchesStudy(t *testing.T) {
	srv := serve.New(serve.Options{
		Exec: sampling.NewExec(parallel.NewScheduler(2), nil),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	study, err := http.Post(ts.URL+serve.StudyPath, "application/json",
		strings.NewReader(`{"workload":"Rodinia/gauss_208","silicon":true}`))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(study.Body)
	study.Body.Close()
	if study.StatusCode != http.StatusOK {
		t.Fatalf("study: %d %s", study.StatusCode, want)
	}

	resp, err := http.Post(ts.URL+serve.StreamPath, "application/x-ndjson",
		streamBody(t, `{"silicon":true}`, "Rodinia/gauss_208"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(body, "\n"), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("expected progress lines before the response, got %d line(s): %s", len(lines), body)
	}
	var sawSpec bool
	for _, ln := range lines[:len(lines)-1] {
		var pl serve.StreamLine
		if err := json.Unmarshal(ln, &pl); err != nil || pl.Progress == nil {
			t.Fatalf("non-progress line before the final response: %s (err %v)", ln, err)
		}
		if pl.Error != "" {
			t.Fatalf("stream errored: %s", pl.Error)
		}
		if pl.Progress.Speculated > 0 {
			sawSpec = true
		}
	}
	if !sawSpec {
		t.Error("final progress line reports no speculative warms despite an Exec")
	}
	got := append(lines[len(lines)-1], '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("final stream line differs from the study response:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestStreamEndpointRejects covers the door: bad request lines, workloads
// named in the request line, full mode, and corrupt event streams.
func TestStreamEndpointRejects(t *testing.T) {
	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body io.Reader) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+serve.StreamPath, "application/x-ndjson", body)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Request-line rejections are plain HTTP 400s.
	for _, line := range []string{
		``,
		`{`,
		`{"workload":"Rodinia/gauss_mat4"}`,
		`{"mode":"full"}`,
		`{"unknown":1}`,
	} {
		resp := post(strings.NewReader(line + "\n"))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request line %q: status %d, want 400", line, resp.StatusCode)
		}
	}

	// Event-stream failures arrive in-band: 200, then an error line.
	resp := post(strings.NewReader("{}\n" + `{"stream":"wrong-schema","kernels":1}` + "\n"))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-band failure changed the status: %d", resp.StatusCode)
	}
	var pl serve.StreamLine
	if err := json.Unmarshal(bytes.TrimSpace(body), &pl); err != nil || pl.Error == "" {
		t.Errorf("expected an in-band error line, got %s", body)
	}

	// A truncated event stream (header promises more launches than arrive)
	// must fail rather than report a partial study.
	w := workload.Find("Rodinia/gauss_mat4")
	var buf bytes.Buffer
	buf.WriteString("{}\n")
	if err := workload.WriteEvents(&buf, w); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	truncated := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	resp = post(bytes.NewReader(append(truncated, '\n')))
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	pl = serve.StreamLine{}
	if err := json.Unmarshal(bytes.TrimSpace(body), &pl); err != nil || !strings.Contains(pl.Error, "missing") {
		t.Errorf("truncated stream: expected a missing-launches error, got %s", body)
	}
}
