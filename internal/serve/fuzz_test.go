package serve_test

import (
	"bytes"
	"strings"
	"testing"

	"pka/internal/serve"
	"pka/internal/workload"
)

// Fuzz seed corpus: two valid requests and the malformed shapes the
// decoder must reject with an error — never a panic, never an unbounded
// allocation (mirrors FuzzLoadWorkloadJSON one layer up the stack).
var requestSeeds = []string{
	// Valid: built-in workload, all defaults.
	`{"workload":"Rodinia/gauss_mat4"}`,
	// Valid: inline workload, explicit parameters.
	`{"tenant":"prod","mode":"full","workload_json":{"name":"inline","kernels":[
		{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":10},"repeat":3}]}}`,
	// Structural junk.
	``, `{`, `[]`, `{}`, `null`, `"workload"`,
	`{"workload":"Rodinia/gauss_mat4"}{"workload":"Rodinia/gauss_mat4"}`,
	// Unknown fields and wrong types.
	`{"workload":"Rodinia/gauss_mat4","qos":"gold"}`,
	`{"workload":42}`,
	`{"workload":"Rodinia/gauss_mat4","maxk":"twenty"}`,
	// Unknown names, out-of-range parameters.
	`{"workload":"Rodinia/no_such_workload"}`,
	`{"workload":"Rodinia/gauss_mat4","device":"z80"}`,
	`{"workload":"Rodinia/gauss_mat4","mode":"psychic"}`,
	`{"workload":"Rodinia/gauss_mat4","target":-3}`,
	`{"workload":"Rodinia/gauss_mat4","target":1e9}`,
	`{"workload":"Rodinia/gauss_mat4","s":2}`,
	`{"workload":"Rodinia/gauss_mat4","n":-7}`,
	`{"workload":"Rodinia/gauss_mat4","n":9999999}`,
	`{"workload":"Rodinia/gauss_mat4","maxk":65}`,
	`{"workload":"Rodinia/gauss_mat4","tenant":"../../etc"}`,
	// Ambiguous and empty workload selections.
	`{"workload":"Rodinia/gauss_mat4","workload_json":{"name":"x","kernels":[]}}`,
	`{"mode":"pka"}`,
	// Inline workloads that must die in the hardened loader: negative
	// grid, oversized dims, huge repeat, empty kernel list.
	`{"workload_json":{"name":"bad","kernels":[{"name":"k","grid":[-4,1,1],"block":[256,1,1],"mix":{"compute":10}}]}}`,
	`{"workload_json":{"name":"bad","kernels":[{"name":"k","grid":[2000000000,60000,60000],"block":[64,1,1],"mix":{"compute":10}}]}}`,
	`{"workload_json":{"name":"bad","kernels":[{"name":"k","grid":[8,1,1],"block":[64,1,1],"mix":{"compute":10},"repeat":2000000000}]}}`,
	`{"workload_json":{"name":"bad","kernels":[]}}`,
}

// FuzzServeRequest fuzzes the study-request decoder: any byte input must
// either produce a fully-normalized, in-bounds request or an error.
func FuzzServeRequest(f *testing.F) {
	for _, s := range requestSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := serve.DecodeStudyRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		// Everything the server trusts downstream must hold here.
		if req.Tenant == "" || len(req.Tenant) > serve.MaxTenantLen {
			t.Fatalf("accepted tenant %q", req.Tenant)
		}
		switch req.Mode {
		case "pka", "pks", "full":
		default:
			t.Fatalf("accepted mode %q", req.Mode)
		}
		if req.TargetErrorPct <= 0 || req.TargetErrorPct > serve.MaxTargetErrorPct {
			t.Fatalf("accepted target %v", req.TargetErrorPct)
		}
		if req.MaxK < 1 || req.MaxK > serve.MaxK {
			t.Fatalf("accepted maxk %d", req.MaxK)
		}
		if req.Window < 0 || req.Window > serve.MaxWindow {
			t.Fatalf("accepted window %d", req.Window)
		}
		if len(req.WorkloadJSON) > 0 {
			// Whatever the decoder accepted inline must satisfy the
			// workload loader's own validator.
			w, werr := workload.FromJSON(bytes.NewReader(req.WorkloadJSON))
			if werr != nil {
				t.Fatalf("accepted inline workload the loader rejects: %v", werr)
			}
			if w.N < 1 || w.N > workload.MaxJSONKernels {
				t.Fatalf("accepted inline workload with %d kernels", w.N)
			}
		}
	})
}

// TestServeRequestSeedCorpus pins which seeds must decode and which must
// error, so the corpus itself cannot rot.
func TestServeRequestSeedCorpus(t *testing.T) {
	for i, s := range requestSeeds {
		_, err := serve.DecodeStudyRequest(strings.NewReader(s))
		if i < 2 {
			if err != nil {
				t.Errorf("valid seed %d rejected: %v", i, err)
			}
		} else if err == nil {
			t.Errorf("malformed seed %d accepted:\n%s", i, s)
		}
	}
}
