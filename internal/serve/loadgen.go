package serve

import (
	"errors"
	"sync"
	"time"

	"pka/internal/stats"
)

// Arrival is one planned request: when it fires (offset from the run
// start) and which template it instantiates.
type Arrival struct {
	At       time.Duration `json:"at_ns"`
	Template int           `json:"template"`
}

// LoadGen is an open-loop Poisson load generator: request arrivals are
// scheduled up front from a seeded exponential interarrival process and
// fired on schedule whether or not earlier requests have completed — the
// arrival pattern a server faces from independent clients, which is what
// exposes queueing. The plan is a pure function of (Seed, Rate, Requests,
// len(Templates)), so a seeded run is byte-reproducible; the clock and
// sleeper are injectable so tests can pin full latency reports.
type LoadGen struct {
	// Rate is the mean arrival rate in requests per second (required).
	Rate float64
	// Requests is how many requests to fire (required).
	Requests int
	// Seed drives the interarrival and template draws.
	Seed uint64
	// Templates are the request bodies to draw from, uniformly
	// (required). Each firing deep-copies its template, so templates may
	// be shared across runs.
	Templates []StudyRequest
	// Do issues one request (required) — typically Server.Do directly or
	// an HTTP POST to a remote server. Its error marks the sample failed.
	Do func(*StudyRequest) error
	// Now and Sleep default to the real clock.
	Now   func() time.Time
	Sleep func(time.Duration)
	// Synchronous fires each request inline instead of in its own
	// goroutine — closed-loop, deterministic execution order, used by the
	// golden tests. Open-loop (false) is the realistic mode.
	Synchronous bool
	// Window sizes the result recorder (default all requests).
	Window int
}

// Plan derives the request schedule. Calling it twice yields identical
// slices; Run executes exactly this plan.
func (g *LoadGen) Plan() []Arrival {
	rng := stats.NewRNG(g.Seed)
	plan := make([]Arrival, g.Requests)
	at := time.Duration(0)
	for i := range plan {
		at += time.Duration(rng.ExpFloat64() / g.Rate * float64(time.Second))
		plan[i] = Arrival{At: at, Template: rng.Intn(len(g.Templates))}
	}
	return plan
}

// Run fires the plan and returns the client-side latency report (queue
// wait is unobservable from the client and reported as zero; the server's
// /v1/latency report has the split). Run returns after every request has
// completed.
func (g *LoadGen) Run() (*Report, error) {
	if g.Rate <= 0 || g.Requests <= 0 || len(g.Templates) == 0 || g.Do == nil {
		return nil, errors.New("serve: loadgen needs Rate > 0, Requests > 0, Templates, and Do")
	}
	now, sleep := g.Now, g.Sleep
	if now == nil {
		now = time.Now
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	for i := range g.Templates {
		if err := g.Templates[i].Validate(); err != nil {
			return nil, err
		}
	}
	window := g.Window
	if window <= 0 {
		window = g.Requests
	}
	rec := NewRecorder(window)
	plan := g.Plan()
	start := now()
	var wg sync.WaitGroup
	for _, a := range plan {
		if d := a.At - now().Sub(start); d > 0 {
			sleep(d)
		}
		req := g.Templates[a.Template] // value copy
		fire := func(req StudyRequest) {
			t0 := now()
			err := g.Do(&req)
			rec.Observe(req.Tenant, 0, now().Sub(t0), err != nil)
		}
		if g.Synchronous {
			fire(req)
			continue
		}
		wg.Add(1)
		go func(req StudyRequest) {
			defer wg.Done()
			fire(req)
		}(req)
	}
	wg.Wait()
	return rec.Report(), nil
}
