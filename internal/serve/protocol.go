// Package serve is the PKA study engine's request tier: a long-running
// HTTP/JSON service that accepts concurrent study requests, admits them
// through a bounded weighted-fair queue, executes them on the shared
// sampling.Exec ladder (mem singleflight → disk artifact store → remote
// workers → fresh simulation), and reports per-request latency
// percentiles.
//
// The tier inherits the purity property the task layer established: a
// study outcome is a function of (device, workload, study parameters) and
// nothing else. That makes the server free to reorder, queue, reject, or
// retry requests — fairness and backpressure change who waits, never what
// anyone gets. A response produced through the server is byte-identical
// to the batch pka CLI run on the same inputs.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pka/internal/cli"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/sampling"
	"pka/internal/workload"
)

// Protocol endpoints and limits.
const (
	// StudyPath runs one study request (POST, JSON body).
	StudyPath = "/v1/study"
	// StreamPath runs one streaming study (POST, NDJSON body): a study
	// request line, then a kernel-event stream in the workload event
	// format. The response is NDJSON too — progress lines while events are
	// consumed, then a final line byte-identical to the StudyPath response
	// for the same workload and parameters.
	StreamPath = "/v1/stream"
	// LatencyPath reports the rolling latency percentiles (GET; ?text=1
	// for the human-readable report).
	LatencyPath = "/v1/latency"
	// HealthPath reports queue occupancy and request counters (GET).
	HealthPath = "/v1/health"
	// MetricsPath serves the Prometheus exposition (GET).
	MetricsPath = "/metrics"
	// ProvenancePath reports the tier-attribution of recent studies as a
	// human-readable text report (GET).
	ProvenancePath = "/v1/debug/provenance"
	// TraceparentHeader carries the W3C-style trace context on study
	// requests; a valid value turns on distributed tracing for the request
	// and parents the study's spans under the client's span.
	TraceparentHeader = "traceparent"
	// MaxStudyRequestBytes bounds a study request body. A request naming
	// a built-in workload is under a kilobyte; the limit leaves room for
	// a large inline workload document, matching the remote tier's cap.
	MaxStudyRequestBytes = 1 << 20
)

// Study-parameter bounds. Requests outside these are rejected at the
// door, before any simulation work is admitted.
const (
	// MaxTargetErrorPct bounds the PKS sweep's stopping threshold.
	MaxTargetErrorPct = 50
	// MaxK bounds the requested cluster-count ceiling.
	MaxK = 64
	// MaxWindow bounds the PKP convergence window, matching the workload
	// loader's kernel bound.
	MaxWindow = 1 << 20
	// MaxTenantLen bounds the tenant identifier.
	MaxTenantLen = 64
)

// StudyRequest is one client study order. Exactly one of Workload (a
// built-in study-set name) or WorkloadJSON (an inline workload document in
// the cmd/pka -workload-json schema) must be set. Zero-valued parameters
// take the same defaults as the batch CLI, so a minimal request and the
// default pka invocation produce byte-identical numbers.
type StudyRequest struct {
	// Tenant attributes the request for weighted-fair scheduling and
	// per-tenant latency accounting. Empty means "anon".
	Tenant string `json:"tenant,omitempty"`
	// Workload names a built-in workload ("suite/name").
	Workload string `json:"workload,omitempty"`
	// WorkloadJSON is an inline workload document (same schema and
	// bounds as the workload JSON loader).
	WorkloadJSON json.RawMessage `json:"workload_json,omitempty"`
	// Device selects the modeled GPU (volta, turing, ampere, volta40).
	// Empty means volta.
	Device string `json:"device,omitempty"`
	// Mode is the study mode: "pka" (selection + projection, the
	// default), "pks" (selection only), or "full" (simulate everything).
	Mode string `json:"mode,omitempty"`
	// TargetErrorPct is the PKS sweep threshold (default 5).
	TargetErrorPct float64 `json:"target,omitempty"`
	// Threshold is the PKP convergence threshold (default per pkp).
	Threshold float64 `json:"s,omitempty"`
	// Window is the PKP convergence window (default per pkp).
	Window int `json:"n,omitempty"`
	// MaxK bounds the PKS sweep (default 20).
	MaxK int `json:"maxk,omitempty"`
	// Silicon also computes the silicon ground truth and reports the
	// projection error against it.
	Silicon bool `json:"silicon,omitempty"`
	// Trace turns on distributed tracing for this request even without a
	// traceparent header (the server starts a fresh root trace) and attaches
	// the merged cross-process Chrome trace to the response. Observe-only:
	// every other response field is byte-identical either way.
	Trace bool `json:"trace,omitempty"`
	// Provenance attaches the per-kernel execution provenance block — which
	// tier served each kernel launch, from which worker, at what cost — to
	// the response. Observe-only, like Trace.
	Provenance bool `json:"provenance,omitempty"`

	// Resolved by Validate.
	w   *workload.Workload
	dev gpu.Device

	// Trace plumbing, set by the HTTP handler (or SetTraceParent/SetIDGen
	// for direct callers): the client's parent context, the span-ID
	// generator, and the flight recorder the server shares with its debug
	// report.
	parent obs.TraceContext
	ids    *obs.IDGen
	flight *sampling.FlightRecorder
}

// SetTraceParent installs the client's trace context, as the HTTP handler
// does from the traceparent header. A valid context enables tracing for
// the request.
func (r *StudyRequest) SetTraceParent(tc obs.TraceContext) { r.parent = tc }

// SetIDGen installs the span-ID generator tracing draws from; tests
// install a seeded one for deterministic IDs. Nil keeps the default.
func (r *StudyRequest) SetIDGen(g *obs.IDGen) { r.ids = g }

// SetFlightRecorder installs the flight recorder provenance folds into,
// letting a caller keep the full recorder after Run returns. Nil lets Run
// build its own when needed.
func (r *StudyRequest) SetFlightRecorder(fr *sampling.FlightRecorder) { r.flight = fr }

// StudyResponse is the study outcome. Field order (and therefore byte
// layout) is fixed: responses for equal requests are byte-identical
// however they were executed.
type StudyResponse struct {
	Workload string `json:"workload"`
	Device   string `json:"device"`
	Mode     string `json:"mode"`
	// K is the selected cluster count (absent in full mode).
	K int `json:"k,omitempty"`
	// Kernels is the number of kernels actually simulated.
	Kernels       int     `json:"kernels"`
	ProjCycles    int64   `json:"proj_cycles"`
	SimWarpInstrs int64   `json:"sim_warp_instrs"`
	IPC           float64 `json:"ipc"`
	DRAMUtil      float64 `json:"dram_util"`
	// SimHours is the projected simulation wall time at the modeled
	// simulator rate.
	SimHours  float64 `json:"sim_hours"`
	Capped    bool    `json:"capped,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	// SiliconCycles and ErrorPct are present only when the request set
	// Silicon.
	SiliconCycles int64   `json:"silicon_cycles,omitempty"`
	ErrorPct      float64 `json:"error_pct,omitempty"`
	// Provenance is present only when the request set Provenance; Trace is
	// present only when the request was traced. Both are appended after
	// every study field so untraced responses keep their exact historical
	// byte layout.
	Provenance *ProvenanceBlock `json:"provenance,omitempty"`
	Trace      json.RawMessage  `json:"trace,omitempty"`
}

// ProvenanceBlock attributes a study's kernel launches to the Exec
// ladder's serving tiers. Tiers values always sum to Kernels — every
// launch is accounted to exactly one tier.
type ProvenanceBlock struct {
	// TraceID links the block to the request's distributed trace (empty
	// when the request was not traced).
	TraceID string `json:"trace_id,omitempty"`
	// Kernels is the number of kernel launches recorded.
	Kernels int `json:"kernels"`
	// Tiers counts launches per serving tier (predict, mem, disk, shard,
	// worker, sim).
	Tiers map[string]int `json:"tiers"`
	// Workers counts launches per remote worker (absent when none).
	Workers map[string]int `json:"workers,omitempty"`
	// Entries is the full flight-recorder content in (phase, launch index)
	// order.
	Entries []sampling.ProvEntry `json:"entries,omitempty"`
}

// DecodeStudyRequest reads, parses, and validates one study request. Any
// input either yields a fully-validated request with its workload and
// device resolved, or an error — never a panic and never an unbounded
// allocation (the body is capped at MaxStudyRequestBytes, unknown fields
// are rejected, and inline workloads go through the hardened JSON
// loader).
func DecodeStudyRequest(r io.Reader) (*StudyRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r, MaxStudyRequestBytes+1))
	if err != nil {
		return nil, fmt.Errorf("serve: unreadable request: %w", err)
	}
	if len(body) > MaxStudyRequestBytes {
		return nil, fmt.Errorf("serve: request exceeds %d bytes", MaxStudyRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	req := &StudyRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("serve: malformed request: %w", err)
	}
	// A second document after the first is garbage, not a batch.
	if dec.More() {
		return nil, errors.New("serve: trailing data after request")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// Validate normalizes defaults and rejects out-of-bounds parameters,
// resolving the workload and device in the process. It is idempotent.
func (r *StudyRequest) Validate() error {
	if err := r.validateParams(); err != nil {
		return err
	}
	switch {
	case r.Workload != "" && len(r.WorkloadJSON) > 0:
		return errors.New("serve: request sets both workload and workload_json")
	case r.Workload != "":
		w, err := cli.FindWorkload(r.Workload)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		r.w = w
	case len(r.WorkloadJSON) > 0:
		w, err := workload.FromJSON(bytes.NewReader(r.WorkloadJSON))
		if err != nil {
			return fmt.Errorf("serve: inline workload: %w", err)
		}
		r.w = w
	case r.w != nil:
		// Already resolved — stream requests get their workload from the
		// event stream, not the request line.
	default:
		return errors.New("serve: request names no workload")
	}
	return nil
}

// validateStream validates a StreamPath request line: the same parameter
// checks as Validate, except the workload comes from the event stream
// that follows — naming one in the request line is an error — and full
// mode is rejected (it has no selection to compute incrementally).
func (r *StudyRequest) validateStream() error {
	if r.Workload != "" || len(r.WorkloadJSON) > 0 {
		return errors.New("serve: stream request names a workload; the event-stream header does that")
	}
	if err := r.validateParams(); err != nil {
		return err
	}
	if r.Mode == "full" {
		return errors.New("serve: stream endpoint supports modes pks and pka")
	}
	return nil
}

// validateParams checks and defaults every study parameter except the
// workload.
func (r *StudyRequest) validateParams() error {
	if r.Tenant == "" {
		r.Tenant = "anon"
	}
	if len(r.Tenant) > MaxTenantLen {
		return fmt.Errorf("serve: tenant longer than %d bytes", MaxTenantLen)
	}
	for i := 0; i < len(r.Tenant); i++ {
		c := r.Tenant[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return fmt.Errorf("serve: tenant contains byte %q (want [A-Za-z0-9._-])", c)
		}
	}
	if r.Device == "" {
		r.Device = "volta"
	}
	dev, err := cli.Device(r.Device)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	r.dev = dev
	switch r.Mode {
	case "":
		r.Mode = "pka"
	case "pka", "pks", "full":
	default:
		return fmt.Errorf("serve: unknown mode %q (want pka, pks, or full)", r.Mode)
	}
	if r.TargetErrorPct < 0 || r.TargetErrorPct > MaxTargetErrorPct {
		return fmt.Errorf("serve: target error %.3g%% outside (0, %d]", r.TargetErrorPct, MaxTargetErrorPct)
	}
	if r.TargetErrorPct == 0 {
		r.TargetErrorPct = 5
	}
	if r.Threshold < 0 || r.Threshold >= 1 {
		return fmt.Errorf("serve: PKP threshold %.3g outside [0, 1)", r.Threshold)
	}
	if r.Window < 0 || r.Window > MaxWindow {
		return fmt.Errorf("serve: PKP window %d outside [0, %d]", r.Window, MaxWindow)
	}
	if r.MaxK < 0 || r.MaxK > MaxK {
		return fmt.Errorf("serve: maxk %d outside [0, %d]", r.MaxK, MaxK)
	}
	if r.MaxK == 0 {
		r.MaxK = 20
	}
	return nil
}
