//go:build !unix

package artifact

import (
	"os"
	"sync"
)

// dirLock on platforms without flock(2) degrades to process-local
// serialization: single-process caching stays fully safe, and the entry
// checksums still protect concurrent multi-process use (a torn state is
// detected and recomputed, never returned).
type dirLock struct {
	mu sync.Mutex
	f  *os.File
}

func newDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) exclusive()   { l.mu.Lock() }
func (l *dirLock) release()     { l.mu.Unlock() }
func (l *dirLock) close() error { return l.f.Close() }
