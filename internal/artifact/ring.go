// Consistent-hash ring for the sharded fleet cache. Every pkad worker
// and every dispatching client builds the same ring from the same member
// list, so "who owns this content key" is answered locally — no
// directory service, no coordination. Placement is a pure function of
// the sorted member list: restarts, differently-ordered flag values, and
// independent processes all agree on ownership, which is what lets a
// worker answer peer GETs for exactly the keys the clients will ask it
// for. Virtual nodes smooth the per-member load; replication ≥2 keeps a
// key reachable when its primary owner dies.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring defaults: 128 virtual nodes per member keeps the max/min owned
// fraction within 1.25 (pinned by test), and 2 replicas survive a single
// owner failure.
const (
	DefaultVNodes   = 128
	DefaultReplicas = 2
)

// Ring is an immutable consistent-hash ring over named members. Build
// one with NewRing; derive a smaller one with Without when a member is
// evicted. Safe for concurrent use.
type Ring struct {
	members  []string // sorted, unique
	vnodes   int
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// ringHash positions a label on the ring: the first 8 bytes of its
// SHA-256, big-endian. SHA-256 (not FNV) because vnode balance depends
// on high-quality dispersion, and the store's keys are already SHA-256
// hex so lookup cost is dominated by the peer RPC anyway.
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over members (order-insensitive; duplicates and
// empties dropped) with the given virtual-node count and replication
// factor. Zero or negative vnodes/replicas take the defaults; replicas
// is capped at the member count. Returns nil if members is empty.
func NewRing(members []string, vnodes, replicas int) *Ring {
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	if len(uniq) == 0 {
		return nil
	}
	sort.Strings(uniq)
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if replicas > len(uniq) {
		replicas = len(uniq)
	}
	r := &Ring{
		members:  uniq,
		vnodes:   vnodes,
		replicas: replicas,
		points:   make([]ringPoint, 0, 4*vnodes*len(uniq)),
	}
	var label []byte
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			// label = "<member>#<vnode>"; the separator keeps "ab"#1 and
			// "a"#b1 distinct. Ketama-style, each vnode digest yields four
			// ring points (32 bytes → 4×8), so 128 vnodes place 512 points
			// per member — enough dispersion to hold the 1.25 balance bound.
			label = append(label[:0], m...)
			label = append(label, '#')
			label = appendUint(label, uint64(v))
			sum := sha256.Sum256(label)
			for off := 0; off < len(sum); off += 8 {
				r.points = append(r.points, ringPoint{
					hash:   binary.BigEndian.Uint64(sum[off : off+8]),
					member: mi,
				})
			}
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by member index so placement
		// stays a pure function of the member list.
		return a.member < b.member
	})
	return r
}

func appendUint(b []byte, n uint64) []byte {
	if n == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, tmp[i:]...)
}

// Members returns the ring's sorted member list.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// Replicas returns the effective replication factor.
func (r *Ring) Replicas() int {
	if r == nil {
		return 0
	}
	return r.replicas
}

// Owners returns the members owning key, primary first: the first
// Replicas() distinct members clockwise from the key's ring position.
func (r *Ring) Owners(key string) []string {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, r.replicas)
	taken := make(map[int]bool, r.replicas)
	for n := 0; n < len(r.points) && len(owners) < r.replicas; n++ {
		p := r.points[(i+n)%len(r.points)]
		if taken[p.member] {
			continue
		}
		taken[p.member] = true
		owners = append(owners, r.members[p.member])
	}
	return owners
}

// Owner returns key's primary owner.
func (r *Ring) Owner(key string) string {
	if owners := r.Owners(key); len(owners) > 0 {
		return owners[0]
	}
	return ""
}

// OwnedFraction returns the share of the hash space for which member is
// the primary owner — 0 if member is not on the ring. Fractions sum to 1
// across members.
func (r *Ring) OwnedFraction(member string) float64 {
	if r == nil || len(r.points) == 0 {
		return 0
	}
	mi := sort.SearchStrings(r.members, member)
	if mi >= len(r.members) || r.members[mi] != member {
		return 0
	}
	// Each point owns the arc from the previous point (exclusive) to
	// itself (inclusive). Arcs accumulate in float64: a uint64 sum would
	// telescope to 2^64 ≡ 0 when one member owns the whole ring.
	var owned float64
	for i, p := range r.points {
		if p.member != mi {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		owned += float64(p.hash - prev) // each arc wraps correctly in uint64 for i == 0
	}
	return owned / float64(^uint64(0))
}

// ReplicaPeersOf returns the sorted set of other members that hold
// replicas of keys member primarily owns — the peers a fleet operator
// checks when member dies.
func (r *Ring) ReplicaPeersOf(member string) []string {
	if r == nil || r.replicas < 2 {
		return nil
	}
	mi := sort.SearchStrings(r.members, member)
	if mi >= len(r.members) || r.members[mi] != member {
		return nil
	}
	peers := map[int]bool{}
	for i, p := range r.points {
		if p.member != mi {
			continue
		}
		// Walk clockwise from this primary vnode collecting the next
		// replicas-1 distinct members.
		taken := map[int]bool{mi: true}
		for n := 1; n < len(r.points) && len(taken) < r.replicas; n++ {
			q := r.points[(i+n)%len(r.points)]
			if taken[q.member] {
				continue
			}
			taken[q.member] = true
			peers[q.member] = true
		}
	}
	out := make([]string, 0, len(peers))
	for mi := range peers {
		out = append(out, r.members[mi])
	}
	sort.Strings(out)
	return out
}

// Without returns a ring over the members minus the given one — the
// rebalance step after evicting an unreachable shard. Returns nil when
// no members remain; returns r itself if member is not on the ring.
func (r *Ring) Without(member string) *Ring {
	if r == nil {
		return nil
	}
	mi := sort.SearchStrings(r.members, member)
	if mi >= len(r.members) || r.members[mi] != member {
		return r
	}
	rest := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	return NewRing(rest, r.vnodes, r.replicas)
}
