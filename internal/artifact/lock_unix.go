//go:build unix

package artifact

import (
	"os"
	"sync"
	"syscall"
)

// dirLock serializes store mutation across processes with flock(2) on a
// lock file, and across goroutines of one process with a mutex (POSIX
// advisory locks are per file description, not per goroutine).
type dirLock struct {
	mu sync.Mutex
	f  *os.File
}

func newDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &dirLock{f: f}, nil
}

// exclusive takes the cross-process lock. flock failures (exotic
// filesystems without lock support) degrade to process-local locking
// rather than failing the cache.
func (l *dirLock) exclusive() {
	l.mu.Lock()
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_EX)
}

func (l *dirLock) release() {
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	l.mu.Unlock()
}

func (l *dirLock) close() error { return l.f.Close() }
