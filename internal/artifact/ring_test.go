package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"
)

// Pinned key→owner placements for a 3-member ring at the defaults. Any
// change to the point derivation silently reshuffles every fleet cache on
// upgrade (all peer lookups miss until re-replication), so placement is
// pinned byte-for-byte — if this test fails, the hash layout changed and
// that cost must be deliberate.
func TestRingGoldenPlacement(t *testing.T) {
	members := []string{"http://10.0.0.1:9377", "http://10.0.0.2:9377", "http://10.0.0.3:9377"}
	r := NewRing(members, DefaultVNodes, DefaultReplicas)
	golden := []struct {
		key    string
		owners []string
	}{
		{"5891b5b522d5df086d0ff0b110fbd9d21bb4fc7163af34d08286a2e846f6be03",
			[]string{"http://10.0.0.1:9377", "http://10.0.0.2:9377"}},
		{"e258d248fda94c63753607f7c4494ee0fcbe92f1a76bfdac795c9d84101eb317",
			[]string{"http://10.0.0.3:9377", "http://10.0.0.1:9377"}},
		{"4355a46b19d348dc2f57c046f8ef63d4538ebb936000f3c9ee954a27460dd865",
			[]string{"http://10.0.0.2:9377", "http://10.0.0.1:9377"}},
		{"c2356069e9d1e79ca924378153cfbbfb4d4416b1f99d41a2940bfdb66c5319db",
			[]string{"http://10.0.0.2:9377", "http://10.0.0.3:9377"}},
		{"7d1a54127b222502f5b79b5fb0803061152a44f92b37e23c6527baf665d4da9a",
			[]string{"http://10.0.0.2:9377", "http://10.0.0.1:9377"}},
	}
	for _, g := range golden {
		if got := r.Owners(g.key); !reflect.DeepEqual(got, g.owners) {
			t.Errorf("Owners(%s…) = %v, want %v", g.key[:12], got, g.owners)
		}
		if got := r.Owner(g.key); got != g.owners[0] {
			t.Errorf("Owner(%s…) = %q, want %q", g.key[:12], got, g.owners[0])
		}
	}
	// With 3 members at replication 2, every member replicates for both
	// others.
	for _, m := range members {
		want := make([]string, 0, 2)
		for _, p := range members {
			if p != m {
				want = append(want, p)
			}
		}
		if got := r.ReplicaPeersOf(m); !reflect.DeepEqual(got, want) {
			t.Errorf("ReplicaPeersOf(%s) = %v, want %v", m, got, want)
		}
	}
}

// Balance bound from the issue: at 128 vnodes the max/min primary-owned
// fraction stays ≤ 1.25 for fleet sizes 2..8, and the fractions sum to 1.
func TestRingBalance(t *testing.T) {
	for n := 2; n <= 8; n++ {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://10.0.0.%d:9377", i+1)
		}
		r := NewRing(members, 128, 2)
		min, max, sum := 1.0, 0.0, 0.0
		for _, m := range members {
			f := r.OwnedFraction(m)
			if f <= 0 {
				t.Fatalf("n=%d: member %s owns nothing", n, m)
			}
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
			sum += f
		}
		if ratio := max / min; ratio > 1.25 {
			t.Errorf("n=%d: max/min owned fraction %.3f > 1.25", n, ratio)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("n=%d: owned fractions sum to %.6f, want 1", n, sum)
		}
	}
}

// Placement is a pure function of the member *set*: shuffled order,
// duplicates, and independent rebuilds (process restarts) must agree on
// every owner list.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"w1", "w2", "w3", "w4"}, 64, 3)
	b := NewRing([]string{"w4", "w2", "w1", "w3", "w2", ""}, 64, 3)
	for i := 0; i < 500; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		key := hex.EncodeToString(sum[:])
		if ga, gb := a.Owners(key), b.Owners(key); !reflect.DeepEqual(ga, gb) {
			t.Fatalf("key %d: placement differs across rebuilds: %v vs %v", i, ga, gb)
		}
	}
}

// Without is the eviction rebalance: keys not owned by the evicted
// member keep their primary, and keys it did own move to their first
// surviving replica — that is the property the kill-one-worker smoke
// relies on for byte-identical studies.
func TestRingWithout(t *testing.T) {
	full := NewRing([]string{"w1", "w2", "w3"}, 128, 2)
	rest := full.Without("w2")
	if got := rest.Members(); !reflect.DeepEqual(got, []string{"w1", "w3"}) {
		t.Fatalf("Without members = %v", got)
	}
	moved := 0
	for i := 0; i < 500; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		key := hex.EncodeToString(sum[:])
		before := full.Owners(key)
		after := rest.Owners(key)
		if before[0] != "w2" {
			if after[0] != before[0] {
				t.Fatalf("key %d: primary moved from %s to %s though w2 didn't own it",
					i, before[0], after[0])
			}
		} else {
			moved++
			// The surviving replica becomes primary, so its bytes are
			// already there.
			if len(before) < 2 || after[0] != before[1] {
				t.Fatalf("key %d: expected replica %v to take over, got %v", i, before, after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("test keys never hit the evicted member; widen the key set")
	}
	// Evicting an unknown member is a no-op returning the same ring.
	if full.Without("nope") != full {
		t.Error("Without(unknown) should return the receiver")
	}
}

// Degenerate shapes: empty member lists, replication above the member
// count, and nil receivers must all stay total.
func TestRingEdgeCases(t *testing.T) {
	if NewRing(nil, 0, 0) != nil {
		t.Error("empty ring should be nil")
	}
	var nilRing *Ring
	if nilRing.Owners("k") != nil || nilRing.Owner("k") != "" || nilRing.OwnedFraction("k") != 0 {
		t.Error("nil ring lookups should be empty")
	}
	one := NewRing([]string{"solo"}, 16, 5)
	if got := one.Owners("anything"); !reflect.DeepEqual(got, []string{"solo"}) {
		t.Errorf("single-member owners = %v", got)
	}
	if one.Replicas() != 1 {
		t.Errorf("replicas should cap at member count, got %d", one.Replicas())
	}
	if f := one.OwnedFraction("solo"); f < 0.999 || f > 1.001 {
		t.Errorf("single member owns %.4f of the space, want 1", f)
	}
	if one.ReplicaPeersOf("solo") != nil {
		t.Error("single-member ring has no replica peers")
	}
}
