package artifact

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	key := Key([]byte("device"), []byte("kernel"), []byte("task"))
	payload := []byte("hello, cached world")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit before any Put")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 write / 1 entry", st)
	}

	// A second store on the same directory sees the entry (persistence).
	s2 := open(t, s.Dir(), Options{})
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("entry not visible to a second store on the same dir")
	}
}

func TestKeySectionsAreUnambiguous(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("section boundaries do not affect the key")
	}
	if Key([]byte("x")) == Key([]byte("y")) {
		t.Fatal("distinct content hashed to one key")
	}
	if Key([]byte("x")) != Key([]byte("x")) {
		t.Fatal("key is not deterministic")
	}
}

// entryPath locates the single .bin file a one-entry store wrote.
func entryPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	p, err := s.path(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCorruptEntriesRecompute: truncation, bit flips in the payload
// (checksum mismatch), bad magic, and garbage files must all read as
// misses, delete the bad entry, and leave the store usable.
func TestCorruptEntriesRecompute(t *testing.T) {
	payload := []byte("precious simulation outcome, 48 bytes or so....")
	corruptions := map[string]func([]byte) []byte{
		"truncated-header":  func(raw []byte) []byte { return raw[:3] },
		"truncated-payload": func(raw []byte) []byte { return raw[:len(raw)/2] },
		"checksum-flip": func(raw []byte) []byte {
			raw[10] ^= 0x40 // inside the payload: checksum mismatch
			return raw
		},
		"bad-magic": func(raw []byte) []byte {
			raw[0] = 'X'
			return raw
		},
		"garbage":      func([]byte) []byte { return []byte("not an entry at all") },
		"empty":        func([]byte) []byte { return nil },
		"grown-length": func(raw []byte) []byte { return append(raw, 0xEE) },
	}
	for name, mangle := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := open(t, t.TempDir(), Options{})
			key := Key([]byte(name))
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			p := entryPath(t, s, key)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry returned %q as a hit", got)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not deleted")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt count %d, want 1", st.Corrupt)
			}
			// Recompute path: a fresh Put over the dead entry works.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatal("store unusable after corruption recovery")
			}
		})
	}
}

// TestEvictionPastSizeBound: filling past MaxBytes evicts oldest-first and
// keeps the newest entries.
func TestEvictionPastSizeBound(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	entrySize := int64(entryOverhead + len(payload))
	s := open(t, t.TempDir(), Options{MaxBytes: 5 * entrySize})

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = Key([]byte(fmt.Sprintf("entry-%d", i)))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes make LRU order unambiguous on coarse-grained
		// filesystem clocks.
		p, _ := s.path(keys[i])
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Second)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// One more Put triggers eviction down to 90% of the bound.
	last := Key([]byte("the-last-one"))
	if err := s.Put(last, payload); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the size bound")
	}
	if st.SizeBytes > 5*entrySize {
		t.Fatalf("store still oversized: %d > %d", st.SizeBytes, 5*entrySize)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get(last); !ok {
		t.Fatal("newest entry was evicted")
	}
}

// TestConcurrentStores: two Stores on one directory (stand-ins for two
// processes) hammer overlapping keys; every Get must return either a miss
// or a correct payload, never torn bytes.
func TestConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{})

	payloadFor := func(k int) []byte {
		return bytes.Repeat([]byte{byte(k)}, 100+k)
	}
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				for k := 0; k < 8; k++ {
					key := Key([]byte{byte(k)})
					if got, ok := s.Get(key); ok && !bytes.Equal(got, payloadFor(k)) {
						t.Errorf("torn read for key %d: %d bytes", k, len(got))
						return
					}
					if err := s.Put(key, payloadFor(k)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k := 0; k < 8; k++ {
		if got, ok := a.Get(Key([]byte{byte(k)})); !ok || !bytes.Equal(got, payloadFor(k)) {
			t.Fatalf("final state wrong for key %d", k)
		}
	}
}

// TestOpenRestoresAccounting: a reopened store knows its size and evicts
// correctly without any Puts in the new session.
func TestOpenRestoresAccounting(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{1}, 500)
	s := open(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Put(Key([]byte{byte(i)}), payload); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Stats()
	s2 := open(t, dir, Options{})
	got := s2.Stats()
	if got.SizeBytes != want.SizeBytes || got.Entries != want.Entries {
		t.Fatalf("reopened accounting %+v, want size/entries from %+v", got, want)
	}
}

// TestNilStoreIsInert: the nil store misses and drops without panicking,
// so call sites never need to branch on cache configuration.
func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get(Key([]byte("x"))); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(Key([]byte("x")), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatal("nil store has stats")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, key := range []string{"", "ab", "../../../../etc/passwd", "ABCDEF", "zzzz", "ab/cd"} {
		if _, ok := s.Get(key); ok {
			t.Fatalf("bad key %q hit", key)
		}
		if err := s.Put(key, []byte("x")); err == nil {
			t.Fatalf("bad key %q accepted by Put", key)
		}
	}
}
