// Package artifact is an on-disk content-addressed result store: the
// persistence layer under the study engine's in-memory singleflight
// caches. Entries are keyed by the SHA-256 of everything that determines a
// result (device configuration, kernel feature vector, simulation options,
// and a code-version salt), so a second study run — or another process
// sharing the directory — skips re-simulation entirely, and any change to
// the simulator's semantics invalidates the whole store by construction
// (bump Version) rather than by deletion.
//
// The store is deliberately paranoid about its own contents: every entry
// carries a magic header, an explicit payload length, and an FNV-1a
// checksum, and anything that fails validation (truncated write, bit rot,
// schema drift) is deleted and reported as a miss — the caller recomputes,
// never crashes, and never sees stale bytes. Writes go through a temp file
// and an atomic rename, cross-process mutation is serialized by a lock
// file, and the store evicts least-recently-used entries (by file mtime,
// refreshed on hit) once it grows past its size bound.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Version is the store's format-and-semantics salt. Callers mix it into
// every key (see Key), so bumping it — on an entry-format change or any
// simulator-semantics change — orphans all previous entries instead of
// letting them decode into wrong results. Orphans age out via LRU.
const Version = "pka-artifact-v1"

// DefaultMaxBytes bounds the store's payload footprint when Options leaves
// MaxBytes zero: 256 MiB holds tens of millions of kernel outcomes.
const DefaultMaxBytes = 256 << 20

// entry layout: magic | uint32 payload length | payload | uint64 FNV-1a.
var entryMagic = [4]byte{'P', 'K', 'A', 'A'}

const entryOverhead = 4 + 4 + 8

// maxPayload rejects absurd length fields before allocating.
const maxPayload = 64 << 20

// Options configures Open.
type Options struct {
	// MaxBytes bounds the total size of stored entries (file sizes, not
	// disk blocks). Zero applies DefaultMaxBytes; eviction runs on Put.
	MaxBytes int64
}

// Stats is a snapshot of the store's counters since Open.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Writes    uint64 `json:"writes"`
	Evictions uint64 `json:"evictions"`
	// Corrupt counts entries deleted because they failed validation
	// (bad magic, short read, checksum mismatch). Each is also a miss.
	Corrupt   uint64 `json:"corrupt"`
	SizeBytes int64  `json:"size_bytes"`
	Entries   int64  `json:"entries"`
}

// Store is a content-addressed cache directory. All methods are safe for
// concurrent use; a nil *Store is inert (Get always misses, Put drops).
type Store struct {
	dir      string
	maxBytes int64
	lock     *dirLock

	hits, misses, writes, evictions, corrupt atomic.Uint64

	mu      sync.Mutex
	size    int64 // sum of entry file sizes, best-effort
	entries int64
}

// Open creates (if needed) and opens a store rooted at dir. The directory
// is scanned once to initialize size accounting; concurrent stores on the
// same directory coordinate mutation through dir/.lock.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	lock, err := newDirLock(filepath.Join(dir, ".lock"))
	if err != nil {
		return nil, fmt.Errorf("artifact: lock file: %w", err)
	}
	s := &Store{dir: dir, maxBytes: opts.MaxBytes, lock: lock}
	if s.maxBytes <= 0 {
		s.maxBytes = DefaultMaxBytes
	}
	size, n := s.scan()
	s.size, s.entries = size, n
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Close releases the store's lock file handle.
func (s *Store) Close() error {
	if s == nil || s.lock == nil {
		return nil
	}
	return s.lock.close()
}

// Key hashes the given byte sections into a store key with Version mixed
// in. Sections are length-prefixed before hashing so ("ab","c") and
// ("a","bc") cannot collide.
func Key(sections ...[]byte) string {
	h := sha256.New()
	h.Write([]byte(Version))
	for _, sec := range sections {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(sec)))
		h.Write(n[:])
		h.Write(sec)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the payload stored under key, refreshing its LRU recency.
// Any validation failure deletes the entry and reports a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	path, err := s.path(key)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(raw)
	if err != nil {
		// Truncated, corrupted, or foreign bytes: drop the entry so the
		// recomputed result can replace it, and never return stale data.
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.removeEntry(path, int64(len(raw)))
		return nil, false
	}
	s.hits.Add(1)
	touch(path) // best-effort LRU recency bump
	return payload, true
}

// Put stores payload under key (last write wins) and evicts
// least-recently-used entries if the store grew past its bound. Failures
// are returned but safe to ignore: the store is a cache, so a failed Put
// only costs a future recompute.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil {
		return nil
	}
	path, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	raw := encodeEntry(payload)

	needEvict, err := s.write(path, raw)
	if err != nil {
		return err
	}
	if needEvict {
		s.evict()
	}
	return nil
}

// write lands one framed entry under the cross-process lock and reports
// whether the store outgrew its bound.
func (s *Store) write(path string, raw []byte) (needEvict bool, err error) {
	s.lock.exclusive()
	defer s.lock.release()

	prev, _ := os.Stat(path)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return false, fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false, fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return false, fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false, fmt.Errorf("artifact: %w", err)
	}
	s.writes.Add(1)
	s.mu.Lock()
	s.size += int64(len(raw))
	s.entries++
	if prev != nil {
		s.size -= prev.Size()
		s.entries--
	}
	needEvict = s.size > s.maxBytes
	s.mu.Unlock()
	return needEvict, nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	size, entries := s.size, s.entries
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		SizeBytes: size,
		Entries:   entries,
	}
}

// path maps a hex key to its sharded file path. Keys are validated so a
// hostile key cannot escape the store directory.
func (s *Store) path(key string) (string, error) {
	if len(key) < 4 || len(key) > 128 {
		return "", fmt.Errorf("artifact: bad key length %d", len(key))
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("artifact: key %q is not lowercase hex", key)
		}
	}
	return filepath.Join(s.dir, key[:2], key+".bin"), nil
}

// removeEntry deletes one entry file and rolls the accounting back.
func (s *Store) removeEntry(path string, size int64) {
	if os.Remove(path) == nil {
		s.mu.Lock()
		s.size -= size
		s.entries--
		s.mu.Unlock()
	}
}

// evict deletes least-recently-used entries (oldest mtime first) until the
// store fits its bound again. The directory is rescanned under the
// cross-process lock so two stores sharing a directory agree on what
// exists before either deletes anything.
func (s *Store) evict() {
	s.lock.exclusive()
	defer s.lock.release()

	type ent struct {
		path  string
		size  int64
		mtime int64
	}
	var ents []ent
	var total int64
	shards, _ := os.ReadDir(s.dir)
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		for _, f := range files {
			info, err := f.Info()
			if err != nil || !info.Mode().IsRegular() || filepath.Ext(f.Name()) != ".bin" {
				continue
			}
			ents = append(ents, ent{
				path:  filepath.Join(s.dir, sh.Name(), f.Name()),
				size:  info.Size(),
				mtime: info.ModTime().UnixNano(),
			})
			total += info.Size()
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].mtime != ents[j].mtime {
			return ents[i].mtime < ents[j].mtime
		}
		return ents[i].path < ents[j].path
	})
	// Evict to 90% of the bound so Put bursts don't re-trigger immediately.
	target := s.maxBytes - s.maxBytes/10
	removed := int64(0)
	remaining := int64(len(ents))
	for _, e := range ents {
		if total <= target {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			removed++
			remaining--
			s.evictions.Add(1)
		}
	}
	s.mu.Lock()
	s.size = total
	s.entries = remaining
	s.mu.Unlock()
}

// scan walks the store once at Open to initialize size accounting.
func (s *Store) scan() (size, entries int64) {
	shards, _ := os.ReadDir(s.dir)
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		for _, f := range files {
			if info, err := f.Info(); err == nil && info.Mode().IsRegular() && filepath.Ext(f.Name()) == ".bin" {
				size += info.Size()
				entries++
			}
		}
	}
	return size, entries
}

// encodeEntry frames a payload: magic | len | payload | FNV-1a(payload).
func encodeEntry(payload []byte) []byte {
	raw := make([]byte, 0, entryOverhead+len(payload))
	raw = append(raw, entryMagic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	raw = append(raw, n[:]...)
	raw = append(raw, payload...)
	h := fnv.New64a()
	h.Write(payload)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	return append(raw, sum[:]...)
}

// decodeEntry validates a framed entry and returns its payload.
func decodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < entryOverhead {
		return nil, fmt.Errorf("artifact: entry truncated at %d bytes", len(raw))
	}
	if [4]byte(raw[:4]) != entryMagic {
		return nil, fmt.Errorf("artifact: bad entry magic")
	}
	n := binary.LittleEndian.Uint32(raw[4:8])
	if n > maxPayload || int(entryOverhead+n) != len(raw) {
		return nil, fmt.Errorf("artifact: entry length %d does not match file size %d", n, len(raw))
	}
	payload := raw[8 : 8+n]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(raw[8+n:]); got != want {
		return nil, fmt.Errorf("artifact: checksum mismatch")
	}
	return payload, nil
}

// touch refreshes an entry's mtime so eviction treats it as recently used.
func touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}
