// Package profiler models the two silicon profiling tools the paper's
// methodology is built around:
//
//   - Detailed profiling (Nsight Compute): per-kernel collection of the
//     twelve microarchitecture-agnostic Table-2 metrics plus cycle counts.
//     Kernel replay makes it enormously slow — the paper's Figure 1 shows
//     profiling times growing from hours to years — so the cost model
//     charges a large multiplicative replay overhead plus a fixed
//     per-kernel launch cost.
//
//   - Lightweight profiling (Nsight Systems, augmented with PyProf-style
//     NVTX annotations for ML workloads): only the kernel name and launch
//     dimensions, at near-native speed.
//
// PKA's two-level profiling falls out of this cost asymmetry: kernels are
// profiled in detail until a budget (default: one week of modeled wall
// time) is exhausted, and lightly afterwards.
package profiler

import (
	"pka/internal/gpu"
	"pka/internal/silicon"
	"pka/internal/trace"
)

// Cost-model constants for modeled profiling wall time.
const (
	// DetailedReplayOverhead multiplies kernel execution time under
	// Nsight-Compute-style replay (one pass per metric group).
	DetailedReplayOverhead = 2000.0
	// DetailedFixedSeconds is the per-kernel fixed cost of detailed
	// profiling (process attach, replay setup, counter readout). At this
	// cost the one-week budget covers ~240k kernels, which splits the
	// MLPerf suite the way the paper reports: ResNet and 3D-Unet profile
	// completely, SSD/BERT/GNMT trigger two-level profiling.
	DetailedFixedSeconds = 2.5
	// LightOverhead multiplies kernel execution time under lightweight
	// tracing.
	LightOverhead = 1.10
	// DefaultDetailedBudgetSeconds is one week, the paper's threshold for
	// "detailed silicon profiling is intractable".
	DefaultDetailedBudgetSeconds = 7 * 24 * 3600.0
)

// DetailedRecord is one kernel's detailed profile.
type DetailedRecord struct {
	KernelID int
	Name     string
	Grid     trace.Dim3
	Block    trace.Dim3

	Features    []float64 // Table-2 vector, trace.FeatureNames order
	Cycles      int64     // silicon cycles
	TimeSeconds float64
	DRAMUtil    float64
	L2MissRate  float64
}

// LightRecord is one kernel's lightweight profile: launch configuration,
// name, and the timeline duration — what an Nsight Systems trace exposes.
// No microarchitectural counters are available at this level.
type LightRecord struct {
	KernelID  int
	Name      string
	Grid      trace.Dim3
	Block     trace.Dim3
	SharedMem int
	// Cycles is the kernel's duration from the trace timeline. Two-level
	// selection uses it only for ground-truth totals, never as a
	// clustering feature.
	Cycles int64
}

// Detailed profiles one kernel in detail on the device, returning the
// record and the modeled profiling cost in seconds.
func Detailed(dev gpu.Device, k *trace.KernelDesc) (DetailedRecord, float64, error) {
	res, err := silicon.ExecuteKernel(dev, k)
	if err != nil {
		return DetailedRecord{}, 0, err
	}
	rec := DetailedRecord{
		KernelID:    k.ID,
		Name:        k.Name,
		Grid:        k.Grid,
		Block:       k.Block,
		Features:    k.FeatureVector(dev),
		Cycles:      res.Cycles,
		TimeSeconds: res.TimeSeconds,
		DRAMUtil:    res.DRAMUtil,
		L2MissRate:  res.L2MissRate,
	}
	cost := res.TimeSeconds*DetailedReplayOverhead + DetailedFixedSeconds
	return rec, cost, nil
}

// Light profiles one kernel lightly, returning the record and the modeled
// profiling cost in seconds.
func Light(dev gpu.Device, k *trace.KernelDesc) (LightRecord, float64, error) {
	res, err := silicon.ExecuteKernel(dev, k)
	if err != nil {
		return LightRecord{}, 0, err
	}
	rec := LightRecord{
		KernelID:  k.ID,
		Name:      k.Name,
		Grid:      k.Grid,
		Block:     k.Block,
		SharedMem: k.SharedMemPerBlock,
		Cycles:    res.Cycles,
	}
	return rec, res.TimeSeconds * LightOverhead, nil
}

// NumLightFeatures is the dimension of the classification feature space
// shared by detailed and light records.
const NumLightFeatures = 4 + nameHashBuckets

const nameHashBuckets = 6

// LightFeatures converts launch-configuration data into the feature vector
// the two-level classifiers consume. The same function applies to detailed
// records (via their launch info), so training features and inference
// features come from an identical space.
func LightFeatures(name string, grid, block trace.Dim3, sharedMem int) []float64 {
	f := make([]float64, NumLightFeatures)
	f[0] = float64(grid.Count())
	f[1] = float64(block.Count())
	f[2] = float64(grid.Count()) * float64(block.Count()) // total threads
	f[3] = float64(sharedMem)
	// Character-trigram hashing of the kernel name. Clusters are
	// name-independent, but names still carry signal for mapping light
	// kernels onto detailed groups (GT-Pin used names outright).
	for i := 0; i+3 <= len(name); i++ {
		h := uint32(2166136261)
		for j := i; j < i+3; j++ {
			h = (h ^ uint32(name[j])) * 16777619
		}
		f[4+int(h%nameHashBuckets)]++
	}
	return f
}

// FeaturesOfLight returns the classification features of a light record.
func FeaturesOfLight(r LightRecord) []float64 {
	return LightFeatures(r.Name, r.Grid, r.Block, r.SharedMem)
}

// FeaturesOfDetailed returns the classification features of a detailed
// record's launch configuration (not its Table-2 vector — the classifier
// must only see information that light profiling also provides).
func FeaturesOfDetailed(r DetailedRecord, sharedMem int) []float64 {
	return LightFeatures(r.Name, r.Grid, r.Block, sharedMem)
}
